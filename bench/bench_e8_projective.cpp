// E8 - Section 3.4: projective plane topology.  m(n) = 2(k+1) ~ 2*sqrt(n)
// for n = k^2+k+1, sqrt(n) caches, and resistance to line failures
// "provided no point has all lines passing through it removed".
#include <cmath>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/rendezvous_matrix.h"
#include "strategies/projective.h"

int main() {
    using namespace mm;
    bench::banner("E8: projective plane PG(2,k) (Section 3.4)",
                  "Servers post along one incident line, clients query along one; two\n"
                  "lines always share exactly one point.  m = 2(k+1) ~ 2*sqrt(n).");

    analysis::table sweep{{"k", "n=k^2+k+1", "m=2(k+1)", "2*sqrt(n)", "ratio", "cache-max"}};
    bool near_bound = true;
    for (const int k : {2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 19}) {
        const strategies::projective_strategy s{k};
        const net::node_id n = s.node_count();
        const double m = core::average_message_passes(s);
        const double bound = 2.0 * std::sqrt(static_cast<double>(n));
        if (m / bound > 1.15) near_bound = false;
        if (k == 19) {
            bench::metric("pg19_avg_message_passes", m, "messages");
            bench::metric("pg19_ratio_vs_bound", m / bound);
        }
        const auto cache = bench::measure_cache_load(s);
        sweep.add_row({analysis::table::num(static_cast<std::int64_t>(k)),
                       analysis::table::num(static_cast<std::int64_t>(n)),
                       analysis::table::num(m, 1), analysis::table::num(bound, 1),
                       analysis::table::num(m / bound, 3), analysis::table::num(cache.max)});
    }
    std::cout << sweep.to_string() << "\n";

    // Line-failure resilience: remove all points of one line; every
    // surviving pair can still match by rotating to an unaffected line.
    const int k = 5;
    const strategies::projective_strategy primary{k};
    const auto& plane = primary.plane();
    const auto dead_line = plane.points_on_line(0);
    const core::node_set dead{dead_line.begin(), dead_line.end()};
    int total = 0;
    int recovered = 0;
    for (net::node_id i = 0; i < plane.point_count(); i += 3) {
        for (net::node_id j = 1; j < plane.point_count(); j += 3) {
            if (std::binary_search(dead.begin(), dead.end(), i) ||
                std::binary_search(dead.begin(), dead.end(), j))
                continue;  // the endpoints themselves died
            ++total;
            // Try all line selector pairs until the rendezvous avoids the
            // dead line (k+1 incident lines each, at most one dies per node).
            bool ok = false;
            for (int a = 0; a <= k && !ok; ++a) {
                for (int b = 0; b <= k && !ok; ++b) {
                    const strategies::projective_strategy rotated{k, a, b};
                    const auto meet =
                        core::intersect_sets(rotated.post_set(i), rotated.query_set(j));
                    for (const net::node_id v : meet)
                        if (!std::binary_search(dead.begin(), dead.end(), v)) {
                            ok = true;
                            break;
                        }
                }
            }
            if (ok) ++recovered;
        }
    }
    std::cout << "Line-failure drill (k=" << k << "): " << recovered << "/" << total
              << " surviving pairs re-matched after killing one full line.\n\n";

    bench::metric("line_failure_recovered_pairs", static_cast<double>(recovered), "pairs");
    bench::metric("line_failure_total_pairs", static_cast<double>(total), "pairs");
    bench::shape_check("m stays within 1.15x of 2*sqrt(n) for all k", near_bound);
    bench::shape_check("all surviving pairs recover from a full line failure",
                       total > 0 && recovered == total);
    return 0;
}
