// E16 - concurrent load through the asynchronous operation-handle API.
// The paper sizes its algorithms for "heavy traffic from millions of users";
// the synchronous one-at-a-time harness could never exercise that regime.
// An open-loop burst drives 1000+ simultaneously in-flight locates (plus a
// register/migrate/crash admixture) through one simulator run and reports
// throughput, tail latency, and the per-operation message-pass accounting -
// the per-tag counters must sum exactly to the simulator's global hop
// counter, proving per-op isolation instead of read-off-global bookkeeping.
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "net/topologies.h"
#include "runtime/workload.h"
#include "strategies/grid.h"

int main() {
    using namespace mm;
    bench::banner("E16: concurrent load (async operation handles)",
                  "Open-loop burst of mixed operations on a 32x32 Manhattan grid: 1k+\n"
                  "locates in flight at once; per-op latency/hop accounting sums back to\n"
                  "the global counters.");

    constexpr int rows = 32;
    constexpr int cols = 32;
    const auto g = net::make_grid(rows, cols);
    sim::simulator sim{g};
    const strategies::manhattan_strategy strategy{rows, cols};
    runtime::name_service ns{sim, strategy};

    // Pure-locate burst first: every operation tagged, nothing else sending,
    // so per-op hops must partition the global counter exactly.
    runtime::workload_options burst;
    burst.seed = 20260731;
    burst.operations = 2000;
    burst.mean_interarrival = 0;  // all issued the same tick
    burst.ports = 32;
    burst.servers_per_port = 1;
    burst.locate_weight = 1.0;
    burst.register_weight = 0;
    burst.migrate_weight = 0;
    burst.crash_weight = 0;
    const auto b = runtime::run_workload(ns, burst);

    // Mixed open-loop stream on a fresh service: arrivals every ~2 ticks
    // with migrations and fail-stop crashes in the mix.
    sim::simulator sim2{g};
    runtime::name_service ns2{sim2, strategy};
    runtime::workload_options mixed;
    mixed.seed = 7;
    mixed.operations = 3000;
    mixed.mean_interarrival = 2.0;
    mixed.ports = 64;
    mixed.servers_per_port = 2;
    mixed.locate_weight = 0.90;
    mixed.register_weight = 0.04;
    mixed.migrate_weight = 0.04;
    mixed.crash_weight = 0.02;
    const auto m = runtime::run_workload(ns2, mixed);

    analysis::table t{{"workload", "ops", "max in flight", "p50", "p95", "p99", "max",
                       "ops/tick"}};
    const auto row = [&](const char* label, const runtime::workload_stats& s) {
        t.add_row({label, analysis::table::num(s.completed),
                   analysis::table::num(static_cast<std::int64_t>(s.max_in_flight)),
                   analysis::table::num(s.latency_p50), analysis::table::num(s.latency_p95),
                   analysis::table::num(s.latency_p99), analysis::table::num(s.latency_max),
                   analysis::table::num(s.throughput, 2)});
    };
    row("burst 2k locates", b);
    row("mixed open-loop", m);
    std::cout << t.to_string() << "\n";
    std::cout << "burst accounting: per-op hops " << b.per_op_message_passes << " vs global "
              << b.global_message_passes << "; " << b.locates_found << "/" << b.locates
              << " locates found.\n"
              << "mixed stream: " << m.crashes << " crashes, " << m.locates_found << "/"
              << m.locates << " locates found.\n\n";

    bench::metric("burst_max_in_flight", static_cast<double>(b.max_in_flight), "operations");
    bench::metric("burst_throughput", b.throughput, "ops/tick");
    bench::metric("burst_latency_p50", static_cast<double>(b.latency_p50), "ticks");
    bench::metric("burst_latency_p95", static_cast<double>(b.latency_p95), "ticks");
    bench::metric("burst_latency_p99", static_cast<double>(b.latency_p99), "ticks");
    bench::metric("burst_message_passes", static_cast<double>(b.per_op_message_passes),
                  "hops");
    bench::metric("mixed_max_in_flight", static_cast<double>(m.max_in_flight), "operations");
    bench::metric("mixed_throughput", m.throughput, "ops/tick");
    bench::metric("mixed_latency_p99", static_cast<double>(m.latency_p99), "ticks");

    bench::shape_check("burst drives >= 1000 simultaneously in-flight locates",
                       b.max_in_flight >= 1000);
    bench::shape_check("per-op message passes sum exactly to the global hop counter",
                       b.per_op_message_passes == b.global_message_passes &&
                           b.per_op_message_passes > 0);
    bench::shape_check("every burst locate completes and finds its server",
                       b.completed == 2000 && b.locates_found == b.locates);
    bench::shape_check("mixed stream completes every non-crash operation",
                       m.completed == m.issued);
    return 0;
}
