#!/bin/sh
# run_all.sh - execute every built bench binary and aggregate their
# machine-readable reports into one JSON file (BENCH_seed.json for the seed
# baseline; later PRs diff against it).
#
#   usage: run_all.sh <bench-bin-dir> <output-json> [bench-name...]
#
# When bench names are given (CMake passes its authoritative target list so
# stale binaries from renamed sources can't pollute the baseline), exactly
# those are run and a missing binary counts as a failure.  Without names the
# script falls back to globbing bench_* in the bin dir.
#
# Every bench binary (bench_a*/bench_e*/bench_micro) emits its own JSON via
# bench_util.h when MM_BENCH_JSON names a file.  Each entry in the aggregate
# records the binary name, its exit code, wall-clock seconds, and the
# embedded report (null when the binary crashed before writing one, or wrote
# invalid JSON).
#
# A bench counts as failed when it exits non-zero, when its report is
# missing or unparseable, or when the report says checks_failed > 0 — bench
# mains return 0 even when a paper-claim shape check flips, so the driver
# has to read the report to catch that rot.  Exits non-zero if any bench
# failed, so the CTest wrapper goes red.
set -u

BIN_DIR=${1:?usage: run_all.sh <bench-bin-dir> <output-json> [bench-name...]}
OUT=${2:?usage: run_all.sh <bench-bin-dir> <output-json> [bench-name...]}
shift 2

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

have_python3() { command -v python3 >/dev/null 2>&1; }

# Valid JSON we can safely splice into the aggregate?  Falls back to a cheap
# structural check (object opens '{' and closes '}') when python3 is absent,
# which still rejects the common truncated-mid-flush case.
json_ok() {
    [ -s "$1" ] || return 1
    if have_python3; then
        python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$1" \
            >/dev/null 2>&1 || return 1
    else
        [ "$(head -c 1 "$1")" = "{" ] || return 1
        [ "$(tail -c 2 "$1" | tr -d '[:space:]')" = "}" ] || return 1
    fi
    return 0
}

# Normalize both modes into the positional params as bench NAMES, so the
# main loop below is space-in-path safe (the bin dir is always quoted).
if [ "$#" -eq 0 ]; then
    for f in "$BIN_DIR"/bench_*; do
        [ -e "$f" ] || continue   # unmatched glob leaves the literal pattern
        [ -d "$f" ] && continue
        set -- "$@" "$(basename "$f")"
    done
fi

total=0
failed=0
first=1

{
    printf '{\n  "schema": "mm-bench-v1",\n  "generated_by": "bench/run_all.sh",\n  "results": [\n'
    for name in "$@"; do
        exe="$BIN_DIR/$name"
        total=$((total + 1))

        if [ -x "$exe" ]; then
            per="$TMP/$name.json"
            start=$(date +%s)
            MM_BENCH_JSON="$per" "$exe" >"$TMP/$name.out" 2>&1
            status=$?
            elapsed=$(( $(date +%s) - start ))
            if json_ok "$per"; then
                report_valid=1
                checks_failed=$(sed -n 's/.*"checks_failed": *\([0-9][0-9]*\).*/\1/p' "$per" | head -1)
            else
                report_valid=0
                checks_failed=""
            fi
        else
            per=""
            status=-1  # never ran: binary missing from the bin dir
            elapsed=0
            report_valid=0
            checks_failed=""
        fi

        bad=0
        [ "$status" -eq 0 ] || bad=1
        [ "$report_valid" -eq 1 ] || bad=1
        [ -n "$checks_failed" ] && [ "$checks_failed" -gt 0 ] && bad=1
        [ "$bad" -eq 0 ] || failed=$((failed + 1))
        echo "[$name] exit=$status report_valid=$report_valid checks_failed=${checks_failed:-n/a} wall=${elapsed}s" >&2

        [ "$first" -eq 1 ] || printf ',\n'
        first=0
        printf '    {"binary": "%s", "exit_code": %d, "failed": %s, "wall_seconds": %d, "report": ' \
            "$name" "$status" "$([ "$bad" -eq 0 ] && echo false || echo true)" "$elapsed"
        if [ "$report_valid" -eq 1 ]; then
            cat "$per"
        else
            printf 'null'
        fi
        printf '}'
    done
    printf '\n  ],\n  "total": %d,\n  "failed": %d\n}\n' "$total" "$failed"
} >"$OUT"

if have_python3 && ! json_ok "$OUT"; then
    echo "error: aggregate $OUT is not valid JSON" >&2
    exit 1
fi
echo "wrote $OUT ($total benches, $failed failed)" >&2
[ "$total" -gt 0 ] || { echo "error: no bench binaries found in $BIN_DIR" >&2; exit 1; }
[ "$failed" -eq 0 ] || exit 1
exit 0
