// E18 - sharded parallel simulation of the e17 workloads.
// The ROADMAP's next scaling step after batched delivery: the event loop
// itself goes shard-parallel (sim::simulator::set_worker_threads, one shard
// per worker over the paper's Erdos-Gerencser-Mate connected carve).  This
// bench sweeps worker threads in {1, 2, 4, 8} over the e17 grid / hypercube
// / hierarchical workloads at n = 10^5 and 10^6 and checks the two claims
// that matter:
//  * determinism - every global counter, per-op accounting sum, latency
//    percentile, and completion count is bit-identical across thread
//    counts (the 1-thread run is the serial reference), and
//  * speedup - the 10^6-node hypercube workload runs >= 2.5x faster at 8
//    threads than at 1 (asserted only on hardware with >= 8 CPUs; reported
//    as a metric everywhere).
// The 10^5 cases keep e17's fail-stop crashes (per-hop crash windows inside
// a parallel run); the 10^6 cases are crash-free and injected as one burst,
// the regime where per-tick parallelism - the BFS row builds of many
// concurrent operations - is actually available to the workers.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/table.h"
#include "bench_util.h"
#include "net/hierarchy.h"
#include "net/topologies.h"
#include "runtime/workload.h"
#include "strategies/cube.h"
#include "strategies/grid.h"
#include "strategies/hierarchical.h"

// Like e17: the 10^6-node cases are budget claims about release builds;
// under a sanitizer they would measure the sanitizer, so they are skipped.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MM_E18_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MM_E18_SANITIZED 1
#endif
#endif
#ifndef MM_E18_SANITIZED
#define MM_E18_SANITIZED 0
#endif

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

// Full sweep on release builds; under a sanitizer the 10^5 cases alone are
// expensive, so the sweep shrinks to the pair that still proves equality.
const std::vector<int>& thread_sweep() {
    static const std::vector<int> sweep =
        MM_E18_SANITIZED ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
    return sweep;
}

// The parallel engine's sequential-cutover knob, overridable per run so CI
// and local sweeps can probe the threshold without a rebuild.  Unset or
// unparsable -> the simulator's built-in default.
std::int64_t merge_threshold() {
    static const std::int64_t value = [] {
        if (const char* env = std::getenv("MM_MERGE_PARALLEL_THRESHOLD")) {
            const long long parsed = std::atoll(env);
            if (parsed > 0) return static_cast<std::int64_t>(parsed);
        }
        return std::int64_t{-1};
    }();
    return value;
}

struct run_result {
    int threads = 1;
    double setup_seconds = 0;
    double run_seconds = 0;
    std::int64_t hops = 0;
    std::int64_t sent = 0;
    std::int64_t delivered = 0;
    std::int64_t dropped = 0;
    std::int64_t per_op_passes = 0;
    std::int64_t global_passes = 0;
    std::int64_t issued = 0;
    std::int64_t completed = 0;
    std::int64_t locates_found = 0;
    mm::sim::time_point latency_p50 = 0;
    mm::sim::time_point latency_p99 = 0;
    mm::sim::time_point makespan = 0;
    // Barrier-pipeline instrumentation (sim/metrics.h).  Tick/round counts
    // are part of the determinism contract; the phase nanoseconds are wall
    // clock and only reported.
    std::int64_t parallel_ticks = 0;
    std::int64_t parallel_rounds = 0;
    std::int64_t merge_threshold = 0;  // effective knob value this run used
    std::int64_t phase_execute_ns = 0;
    std::int64_t phase_rank_ns = 0;
    std::int64_t phase_flush_ns = 0;
    std::int64_t phase_wait_ns = 0;

    [[nodiscard]] bool counters_equal(const run_result& other) const {
        return hops == other.hops && sent == other.sent && delivered == other.delivered &&
               dropped == other.dropped && per_op_passes == other.per_op_passes &&
               global_passes == other.global_passes && issued == other.issued &&
               completed == other.completed && locates_found == other.locates_found &&
               latency_p50 == other.latency_p50 && latency_p99 == other.latency_p99 &&
               makespan == other.makespan && parallel_ticks == other.parallel_ticks &&
               parallel_rounds == other.parallel_rounds;
    }
};

struct case_result {
    std::string label;
    mm::net::node_id n = 0;
    std::vector<run_result> runs;  // one per thread count, runs[0] is serial
    bool all_equal = true;

    [[nodiscard]] double speedup_at(int threads) const {
        for (const auto& r : runs)
            if (r.threads == threads && r.run_seconds > 0)
                return runs.front().run_seconds / r.run_seconds;
        return 0;
    }
};

mm::runtime::workload_options options_for(mm::net::node_id n, bool with_crashes) {
    mm::runtime::workload_options opts;
    opts.seed = 20260731;
    // Same mix as e17; burst-ish injection so many operations share a tick
    // and their route computation can actually fan out across shards.
    opts.operations = n >= 1'000'000 ? 96 : 240;
    opts.mean_interarrival = n >= 1'000'000 ? 0.0 : 0.25;
    opts.ports = 16;
    opts.servers_per_port = 1;
    opts.locate_weight = 0.90;
    opts.register_weight = 0.04;
    opts.migrate_weight = 0.04;
    opts.crash_weight = with_crashes ? 0.02 : 0.0;
    opts.crash_downtime = 30;
    return opts;
}

template <class Strategy>
case_result run_case(const std::string& label, const mm::net::graph& g,
                     const Strategy& strategy, bool with_crashes) {
    using namespace mm;
    case_result out;
    out.label = label;
    out.n = g.node_count();
    const auto opts = options_for(out.n, with_crashes);
    for (const int threads : thread_sweep()) {
        const auto setup_start = clock_type::now();
        sim::simulator sim{g};
        sim.set_worker_threads(threads);
        if (merge_threshold() > 0) sim.set_merge_parallel_threshold(merge_threshold());
        runtime::name_service ns{sim, strategy};
        run_result r;
        r.threads = threads;
        r.setup_seconds = seconds_since(setup_start);

        const auto run_start = clock_type::now();
        const auto stats = runtime::run_workload(ns, opts);
        r.run_seconds = seconds_since(run_start);

        r.hops = sim.stats().get(sim::counter_hops);
        r.sent = sim.stats().get(sim::counter_messages_sent);
        r.delivered = sim.stats().get(sim::counter_messages_delivered);
        r.dropped = sim.stats().get(sim::counter_messages_dropped);
        r.per_op_passes = stats.per_op_message_passes;
        r.global_passes = stats.global_message_passes;
        r.issued = stats.issued;
        r.completed = stats.completed;
        r.locates_found = stats.locates_found;
        r.latency_p50 = stats.latency_p50;
        r.latency_p99 = stats.latency_p99;
        r.makespan = stats.makespan;
        r.parallel_ticks = sim.stats().get(sim::counter_parallel_ticks);
        r.parallel_rounds = sim.stats().get(sim::counter_parallel_rounds);
        r.merge_threshold = sim.merge_parallel_threshold();
        r.phase_execute_ns = sim.stats().get(sim::counter_phase_round_execute_ns);
        r.phase_rank_ns = sim.stats().get(sim::counter_phase_rank_merge_ns);
        r.phase_flush_ns = sim.stats().get(sim::counter_phase_mailbox_flush_ns);
        r.phase_wait_ns = sim.stats().get(sim::counter_phase_barrier_wait_ns);
        if (!out.runs.empty()) out.all_equal = out.all_equal && r.counters_equal(out.runs.front());
        out.runs.push_back(r);
    }
    return out;
}

}  // namespace

int main() {
    using namespace mm;
    bench::banner("E18: sharded parallel simulation",
                  "set_worker_threads sweeps 1/2/4/8 workers over the e17 grid /\n"
                  "hypercube / hierarchical workloads at n = 10^5 and 10^6.  Every\n"
                  "counter must be bit-identical across thread counts; the 10^6\n"
                  "hypercube workload must reach >= 2.5x at 8 threads (asserted on\n"
                  ">= 8-CPU hosts).");

    std::vector<case_result> results;

    const auto grid_case = [&](net::node_id side, bool with_crashes) {
        const auto g = net::make_grid(side, side);
        const strategies::manhattan_strategy strategy{side, side};
        results.push_back(run_case("grid " + std::to_string(side) + "x" + std::to_string(side),
                                   g, strategy, with_crashes));
    };
    const auto cube_case = [&](int d, bool with_crashes) {
        const auto g = net::make_hypercube(d);
        const strategies::hypercube_strategy strategy{d};
        results.push_back(run_case("hypercube d=" + std::to_string(d), g, strategy, with_crashes));
    };
    const auto hierarchy_case = [&](int levels, bool with_crashes) {
        const net::hierarchy h{std::vector<int>(static_cast<std::size_t>(levels), 10)};
        const auto g = net::make_hierarchical_graph(h);
        const strategies::hierarchical_strategy strategy{h};
        results.push_back(
            run_case("hierarchy 10^" + std::to_string(levels), g, strategy, with_crashes));
    };

    grid_case(316, true);      // 99'856 nodes, with per-hop crash windows
    cube_case(17, true);       // 131'072 nodes
    hierarchy_case(5, true);   // 100'000 nodes
    if (!MM_E18_SANITIZED) {
        grid_case(1000, false);    // 10^6 nodes, crash-free burst
        cube_case(20, false);      // the speedup acceptance case
        hierarchy_case(6, false);
    } else {
        std::cout << "[sanitized build: skipping the 10^6-node sweep]\n";
    }

    analysis::table t{{"topology", "n", "threads", "run s", "speedup", "hops", "ops", "equal"}};
    for (const auto& c : results) {
        for (const auto& r : c.runs) {
            t.add_row({c.label, analysis::table::num(static_cast<std::int64_t>(c.n)),
                       analysis::table::num(static_cast<std::int64_t>(r.threads)),
                       analysis::table::num(r.run_seconds, 2),
                       analysis::table::num(c.runs.front().run_seconds /
                                                (r.run_seconds > 0 ? r.run_seconds : 1e-9),
                                            2),
                       analysis::table::num(r.hops), analysis::table::num(r.completed),
                       c.all_equal ? "yes" : "NO"});
        }
    }
    std::cout << t.to_string() << "\n";
    const unsigned hw = std::thread::hardware_concurrency();
    std::cout << "hardware_concurrency: " << hw << "\n\n";

    bool all_equal = true;
    bool all_completed = true;
    bool all_instrumented = true;
    for (const auto& c : results) {
        all_equal = all_equal && c.all_equal;
        for (const auto& r : c.runs) {
            all_completed = all_completed && r.completed == r.issued && r.completed > 0;
            // Every swept thread count runs the parallel engine (t = 1 is
            // the one-worker configuration), so the phase timers must be
            // live in every run.
            all_instrumented = all_instrumented && r.parallel_ticks > 0 &&
                               r.parallel_rounds >= r.parallel_ticks && r.phase_execute_ns > 0;
        }
        const std::string prefix =
            c.label.substr(0, c.label.find(' ')) + "_" + std::to_string(c.n);
        for (const auto& r : c.runs) {
            bench::metric(prefix + "_t" + std::to_string(r.threads) + "_run_seconds",
                          r.run_seconds, "s");
        }
        // t4 next to t8: standard GitHub-hosted runners report 4 vCPUs, so
        // t4 is the speedup trajectory CI can actually watch there (the
        // hard >= 2.5x gate below stays tied to >= 8 real CPUs).
        bench::metric(prefix + "_speedup_t4", c.speedup_at(4), "x");
        bench::metric(prefix + "_speedup_t8", c.speedup_at(8), "x");
        bench::metric(prefix + "_message_passes",
                      static_cast<double>(c.runs.front().global_passes), "hops");
        // Phase breakdown of the widest sweep point: where the wall time of
        // a tick goes (handler execution vs the merge/flush/wait residue
        // the barrier pipeline is supposed to keep off the coordinator).
        const auto& wide = c.runs.back();
        const std::string tp = prefix + "_t" + std::to_string(wide.threads);
        bench::metric(tp + "_phase_round_execute_s",
                      static_cast<double>(wide.phase_execute_ns) / 1e9, "s");
        bench::metric(tp + "_phase_rank_merge_s",
                      static_cast<double>(wide.phase_rank_ns) / 1e9, "s");
        bench::metric(tp + "_phase_mailbox_flush_s",
                      static_cast<double>(wide.phase_flush_ns) / 1e9, "s");
        bench::metric(tp + "_phase_barrier_wait_s",
                      static_cast<double>(wide.phase_wait_ns) / 1e9, "s");
        bench::metric(prefix + "_parallel_rounds",
                      static_cast<double>(wide.parallel_rounds), "rounds");
    }
    bench::metric("hardware_concurrency", static_cast<double>(hw), "cpus");
    if (!results.empty() && !results.front().runs.empty()) {
        // The engine's sequential-cutover knob (MM_MERGE_PARALLEL_THRESHOLD
        // env override, simulator default otherwise) next to the phase
        // timers it shapes, so perf artifacts record the configuration that
        // produced them.
        bench::metric("merge_parallel_threshold",
                      static_cast<double>(results.front().runs.front().merge_threshold),
                      "entries");
    }

    bench::shape_check("all counters bit-identical across 1/2/4/8 worker threads", all_equal);
    bench::shape_check("every workload completes all issued operations at every thread count",
                       all_completed);
    bench::shape_check("phase timers live (ticks > 0, rounds >= ticks, execute > 0) in every run",
                       all_instrumented);
    // The acceptance speedup only means something with the cores to run it.
    if (!MM_E18_SANITIZED && hw >= 8) {
        double cube_speedup = 0;
        for (const auto& c : results)
            if (c.label == "hypercube d=20") cube_speedup = c.speedup_at(8);
        bench::metric("cube_1M_speedup_t8", cube_speedup, "x");
        bench::shape_check("10^6 hypercube workload >= 2.5x at 8 threads", cube_speedup >= 2.5);
    } else {
        std::cout << "[speedup assertion skipped: "
                  << (MM_E18_SANITIZED ? "sanitized build" : "fewer than 8 CPUs") << "]\n";
    }
    return 0;
}
