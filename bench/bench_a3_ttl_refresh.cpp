// A3 (ablation) - soft-state TTL vs refresh period.  Section 2.1 timestamps
// posts; Section 5 has services "regularly poll their rendez-vous nodes".
// This sweep measures the operating envelope: refresh faster than the TTL
// and live services stay visible while crashed ones age out; refresh slower
// and even live services flicker.
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "net/topologies.h"
#include "runtime/name_service.h"
#include "strategies/checkerboard.h"

namespace {

using namespace mm;

struct envelope {
    double live_availability = 0;   // locate success rate for a live server
    double stale_rate = 0;          // success rate for a crashed server (want 0)
    std::int64_t post_messages = 0; // upkeep cost
};

envelope measure(sim::time_point ttl, sim::time_point period) {
    const auto g = net::make_complete(25);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{25};
    runtime::name_service ns{sim, strategy,
                             {.entry_ttl = ttl, .refresh_period = period}};
    const auto live_port = core::port_of("live");
    const auto dead_port = core::port_of("dead");
    ns.register_server(live_port, 3);
    ns.register_server(dead_port, 7);
    ns.run_for(2 * ttl);
    ns.crash_node(7);
    // A crashed host's bindings may legitimately keep answering until their
    // TTL lapses; the envelope claim is about what survives *after* that.
    ns.run_for(ttl + 1);

    const auto posts_before = sim.stats().get(sim::counter_messages_sent);
    envelope out;
    constexpr int probes = 40;
    int live_hits = 0;
    int stale_hits = 0;
    for (int k = 0; k < probes; ++k) {
        ns.run_for(ttl / 4 + 1);
        // Probe from varying clients, never from the crashed host itself.
        net::node_id live_client = (k * 7 + 1) % 25;
        net::node_id dead_client = (k * 11 + 2) % 25;
        if (live_client == 7) live_client = 8;
        if (dead_client == 7) dead_client = 8;
        if (ns.locate(live_port, live_client).found) ++live_hits;
        if (ns.locate(dead_port, dead_client).found) ++stale_hits;
    }
    out.live_availability = static_cast<double>(live_hits) / probes;
    out.stale_rate = static_cast<double>(stale_hits) / probes;
    out.post_messages = sim.stats().get(sim::counter_messages_sent) - posts_before;
    return out;
}

}  // namespace

int main() {
    bench::banner("A3 (ablation): entry TTL vs refresh period",
                  "Live-server availability, stale-binding rate for a crashed server, and\n"
                  "upkeep messages, across refresh/TTL ratios (TTL = 80 ticks).");

    analysis::table t{{"refresh period", "ttl/period", "live avail", "stale rate", "upkeep msgs"}};
    constexpr sim::time_point ttl = 80;
    double fast_avail = 0;
    double fast_stale = 1;
    double slow_avail = 1;
    for (const sim::time_point period : {10, 20, 40, 79, 120, 240}) {
        const auto e = measure(ttl, period);
        if (period == 10) {
            fast_avail = e.live_availability;
            fast_stale = e.stale_rate;
            bench::metric("upkeep_messages_period_10", static_cast<double>(e.post_messages),
                          "messages");
        }
        if (period == 240) {
            slow_avail = e.live_availability;
            bench::metric("upkeep_messages_period_240", static_cast<double>(e.post_messages),
                          "messages");
        }
        t.add_row({analysis::table::num(static_cast<std::int64_t>(period)),
                   analysis::table::num(static_cast<double>(ttl) / period, 2),
                   analysis::table::num(e.live_availability, 2),
                   analysis::table::num(e.stale_rate, 2),
                   analysis::table::num(e.post_messages)});
    }
    std::cout << t.to_string() << "\n";

    bench::metric("live_availability_fast_refresh", fast_avail, "fraction");
    bench::metric("stale_rate_fast_refresh", fast_stale, "fraction");
    bench::metric("live_availability_slow_refresh", slow_avail, "fraction");

    bench::shape_check("refresh faster than TTL: full availability, no stale bindings",
                       fast_avail == 1.0 && fast_stale == 0.0);
    bench::shape_check("refresh slower than TTL: live services flicker",
                       slow_avail < 1.0);
    return 0;
}
