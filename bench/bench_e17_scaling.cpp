// E17 - million-node scaling of the simulator hot path.
// The paper sizes match-making for networks "past 10^6 nodes"; this bench
// proves the simulator actually gets there.  It sweeps n in {10^4, 10^5,
// 10^6} over three Section-3 topologies (Manhattan grid, binary hypercube,
// hierarchical gateway network) and drives a mixed open-loop workload
// (locates / registers / migrates, plus fail-stop crashes at the smaller
// scales) through runtime::run_workload on each.  What makes this feasible
// is the batched-delivery fast path (one arrival event per message instead
// of one per hop), the LRU-bounded routing rows, and the calendar-queue
// scheduler - see sim/simulator.h.  Reported per case: wall time, nodes/sec,
// hops/sec, and resident memory; the 10^6 cases carry the repo's hard
// budget of 60 s / 4 GiB each.  A final 10^7-node case sweeps the raw
// simulator (bounded station population, echo round-trips) under the same
// budget - full name_service construction is out of budget at that scale,
// and what the paper's "past 10^6 nodes" argument needs bounded is the
// schedule/route/deliver path itself.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>

#include "analysis/table.h"
#include "bench_util.h"
#include "net/hierarchy.h"
#include "net/topologies.h"
#include "runtime/workload.h"
#include "strategies/cube.h"
#include "strategies/grid.h"
#include "strategies/hierarchical.h"

// The 60 s / 4 GiB budget is a claim about release builds; under
// AddressSanitizer (CI's asan+ubsan Debug job runs this same bench) the
// 10^6-node cases would measure the sanitizer, so they are skipped there.
#if defined(__SANITIZE_ADDRESS__)
#define MM_E17_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MM_E17_SANITIZED 1
#endif
#endif
#ifndef MM_E17_SANITIZED
#define MM_E17_SANITIZED 0
#endif

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

struct case_result {
    std::string label;
    mm::net::node_id n = 0;
    double setup_seconds = 0;  // graph + simulator + name_service construction
    double run_seconds = 0;    // the workload itself
    double nodes_per_sec = 0;  // n / (setup + run)
    double hops_per_sec = 0;   // message passes simulated per wall second
    std::int64_t issued = 0;
    std::int64_t completed = 0;
    std::int64_t message_passes = 0;
    bool accounting_exact = false;  // per-op hops == global hops (crash-free)
    double rss_mb = 0;              // process RSS after the run
};

mm::runtime::workload_options options_for(mm::net::node_id n, bool with_crashes) {
    mm::runtime::workload_options opts;
    opts.seed = 20260731;
    // Operation counts taper with n: the point is node-count scaling, not
    // operation-count scaling (bench_e16 covers operation concurrency).
    opts.operations = n >= 1'000'000 ? 100 : n >= 100'000 ? 200 : 400;
    opts.mean_interarrival = 1.0;
    opts.ports = 16;
    opts.servers_per_port = 1;
    opts.locate_weight = 0.90;
    opts.register_weight = 0.04;
    opts.migrate_weight = 0.04;
    opts.crash_weight = with_crashes ? 0.02 : 0.0;
    opts.crash_downtime = 30;
    return opts;
}

// Bounded-station echo handler for the raw 10^7-node case: replies once to
// every ping so each round exercises the full schedule -> route -> batched
// delivery path in both directions.
class echo_node final : public mm::sim::node_handler {
public:
    void on_message(mm::sim::simulator& sim, const mm::sim::message& msg) override {
        if (msg.kind != 1) return;  // an echo reply terminates here
        mm::sim::message reply = msg;
        reply.kind = 2;
        reply.source = msg.destination;
        reply.destination = msg.source;
        sim.send(reply);
    }
    void on_timer(mm::sim::simulator&, std::int64_t) override {}
    void on_crash(mm::sim::simulator&) override {}
};

// The 10^7-node budget case.  A full name_service workload is out of budget
// at this scale by construction cost alone (10^7 per-node handler objects
// plus ~one 10^7-entry BFS routing row per distinct message source), so this
// case bounds what the paper's scaling argument actually needs bounded: the
// simulator's schedule/route/deliver hot path on a 10^7-node topology, with
// the routing-row working set pinned to a fixed station population.
case_result run_raw_case(int stations, int rounds) {
    using namespace mm;
    const auto start = clock_type::now();
    const net::hierarchy h{std::vector<int>(7, 10)};  // exactly 10^7 nodes
    const auto g = net::make_hierarchical_graph(h);
    sim::simulator sim{g};

    case_result r;
    r.label = "hierarchy 10^7 raw";
    r.n = g.node_count();
    std::vector<net::node_id> where;
    const auto stride = r.n / static_cast<net::node_id>(stations);
    for (int s = 0; s < stations; ++s) {
        const auto v = static_cast<net::node_id>(s) * stride + stride / 2;
        where.push_back(v);
        sim.attach(v, std::make_shared<echo_node>());
    }
    r.setup_seconds = seconds_since(start);

    const auto run_start = clock_type::now();
    const std::int64_t sent_before = sim.stats().get(sim::counter_messages_sent);
    const std::int64_t delivered_before = sim.stats().get(sim::counter_messages_delivered);
    for (int round = 0; round < rounds; ++round) {
        for (int s = 0; s < stations; ++s) {
            sim::message msg;
            msg.kind = 1;
            msg.source = where[static_cast<std::size_t>(s)];
            msg.destination = where[static_cast<std::size_t>((s + 1) % stations)];
            msg.tag = round + 1;
            sim.send(msg);
        }
        sim.run();
    }
    r.run_seconds = seconds_since(run_start);

    r.issued = sim.stats().get(sim::counter_messages_sent) - sent_before;
    r.completed = sim.stats().get(sim::counter_messages_delivered) - delivered_before;
    r.message_passes = sim.stats().get(sim::counter_hops);
    const double total = r.setup_seconds + r.run_seconds;
    r.nodes_per_sec = total > 0 ? static_cast<double>(r.n) / total : 0;
    r.hops_per_sec =
        r.run_seconds > 0 ? static_cast<double>(r.message_passes) / r.run_seconds : 0;
    // Every ping echoes exactly once; both legs must have been delivered.
    r.accounting_exact =
        r.issued == 2 * static_cast<std::int64_t>(stations) * rounds && r.completed == r.issued;
    r.rss_mb = bench::read_rss().current_mb;
    return r;
}

template <class Strategy>
case_result run_case(const std::string& label, clock_type::time_point built_at,
                     const mm::net::graph& g, const Strategy& strategy, bool with_crashes) {
    using namespace mm;
    case_result r;
    r.label = label;
    r.n = g.node_count();
    sim::simulator sim{g};
    runtime::name_service ns{sim, strategy};
    r.setup_seconds = seconds_since(built_at);

    const auto run_start = clock_type::now();
    const auto opts = options_for(r.n, with_crashes);
    const auto stats = runtime::run_workload(ns, opts);
    r.run_seconds = seconds_since(run_start);

    r.issued = stats.issued;
    r.completed = stats.completed;
    r.message_passes = stats.global_message_passes;
    r.accounting_exact = stats.per_op_message_passes == stats.global_message_passes;
    const double total = r.setup_seconds + r.run_seconds;
    r.nodes_per_sec = total > 0 ? static_cast<double>(r.n) / total : 0;
    r.hops_per_sec =
        r.run_seconds > 0 ? static_cast<double>(r.message_passes) / r.run_seconds : 0;
    r.rss_mb = bench::read_rss().current_mb;
    return r;
}

}  // namespace

int main() {
    using namespace mm;
    bench::banner("E17: million-node simulator scaling",
                  "Mixed run_workload sweeps over grid / hypercube / hierarchical\n"
                  "topologies at n = 10^4, 10^5, 10^6.  Batched delivery + LRU routing\n"
                  "rows + calendar queue must hold every 10^6 case under 60 s / 4 GiB.");

    std::vector<case_result> results;

    const auto grid_case = [&](net::node_id side, bool with_crashes) {
        const auto start = clock_type::now();
        const auto g = net::make_grid(side, side);
        const strategies::manhattan_strategy strategy{side, side};
        results.push_back(run_case("grid " + std::to_string(side) + "x" + std::to_string(side),
                                   start, g, strategy, with_crashes));
    };
    const auto cube_case = [&](int d, bool with_crashes) {
        const auto start = clock_type::now();
        const auto g = net::make_hypercube(d);
        const strategies::hypercube_strategy strategy{d};
        results.push_back(
            run_case("hypercube d=" + std::to_string(d), start, g, strategy, with_crashes));
    };
    const auto hierarchy_case = [&](int levels, bool with_crashes) {
        const auto start = clock_type::now();
        const net::hierarchy h{std::vector<int>(static_cast<std::size_t>(levels), 10)};
        const auto g = net::make_hierarchical_graph(h);
        const strategies::hierarchical_strategy strategy{h};
        results.push_back(
            run_case("hierarchy 10^" + std::to_string(levels), start, g, strategy, with_crashes));
    };

    // Crashes exercise the slow path's per-hop crash windows; they stay off
    // at 10^6 where a single crash window over ~10^3-hop grid routes would
    // deliberately burn the per-hop budget this bench is bounding.
    grid_case(100, true);
    cube_case(13, true);          // 8'192 nodes
    hierarchy_case(4, true);      // 10'000 nodes
    grid_case(316, true);         // 99'856 nodes
    cube_case(17, true);          // 131'072 nodes
    hierarchy_case(5, true);      // 100'000 nodes
    if (!MM_E17_SANITIZED) {
        grid_case(1000, false);   // 1'000'000 nodes
        cube_case(20, false);     // 1'048'576 nodes
        hierarchy_case(6, false); // 1'000'000 nodes
        // 10^7 nodes: raw simulator sweep, same 60 s / 4 GiB budget.
        results.push_back(run_raw_case(/*stations=*/12, /*rounds=*/50));
    } else {
        std::cout << "[sanitized build: skipping the 10^6/10^7-node budget cases]\n";
    }

    analysis::table t{{"topology", "n", "setup s", "run s", "nodes/s", "hops/s", "ops",
                       "RSS MiB"}};
    for (const auto& r : results) {
        t.add_row({r.label, analysis::table::num(static_cast<std::int64_t>(r.n)),
                   analysis::table::num(r.setup_seconds, 2), analysis::table::num(r.run_seconds, 2),
                   analysis::table::num(r.nodes_per_sec, 0), analysis::table::num(r.hops_per_sec, 0),
                   analysis::table::num(r.completed), analysis::table::num(r.rss_mb, 0)});
    }
    std::cout << t.to_string() << "\n";

    const auto final_rss = bench::read_rss();
    std::cout << "peak RSS over the whole sweep: " << final_rss.peak_mb << " MiB\n\n";

    bool all_completed = true;
    bool million_in_budget = true;
    bool accounting_ok = true;
    for (const auto& r : results) {
        all_completed = all_completed && r.completed == r.issued && r.completed > 0;
        if (r.n >= 1'000'000) {
            million_in_budget =
                million_in_budget && (r.setup_seconds + r.run_seconds) < 60.0;
            // Crash-free cases must partition the hop counter exactly.
            accounting_ok = accounting_ok && r.accounting_exact;
        }
        const std::string prefix = r.label.substr(0, r.label.find(' ')) + "_" +
                                   std::to_string(r.n);
        bench::metric(prefix + "_nodes_per_sec", r.nodes_per_sec, "nodes/s");
        bench::metric(prefix + "_hops_per_sec", r.hops_per_sec, "hops/s");
        bench::metric(prefix + "_run_seconds", r.run_seconds, "s");
        bench::metric(prefix + "_setup_seconds", r.setup_seconds, "s");
        bench::metric(prefix + "_rss_mb", r.rss_mb, "MiB");
        bench::metric(prefix + "_message_passes", static_cast<double>(r.message_passes),
                      "hops");
    }
    bench::metric("peak_rss_mb", final_rss.peak_mb, "MiB");

    bench::shape_check("every workload completes all issued operations", all_completed);
    bench::shape_check("each 10^6/10^7-node budget case finishes inside 60 s",
                       million_in_budget);
    bench::shape_check("hop/delivery accounting is exact at the budget scales",
                       accounting_ok);
#if defined(__linux__)
    if (!MM_E17_SANITIZED)
        bench::shape_check("peak RSS stays under the 4 GiB budget",
                           final_rss.peak_mb > 0 && final_rss.peak_mb < 4096.0);
#endif
    return 0;
}
