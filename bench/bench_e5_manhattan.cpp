// E5 - Section 3.1: Manhattan networks.  The 9-node matrix, the p x q cost
// m = p + q with caches O(q), m(n) = 2*sqrt(n) at p = q, wrap-around
// (torus) routed costs, and the d-dimensional mesh generalization
// m(n) = 2 * n^((d-1)/d).
#include <cmath>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/rendezvous_matrix.h"
#include "net/topologies.h"
#include "strategies/grid.h"

int main() {
    using namespace mm;
    bench::banner("E5: Manhattan networks (Section 3.1)",
                  "Post along the row, query along the column; the rendezvous is the\n"
                  "crossing.  m = p + q, caches O(q); at p = q, m(n) = 2*sqrt(n).");

    // The paper's 9-node grid matrix.
    const strategies::manhattan_strategy nine{3, 3};
    std::cout << "Rendezvous matrix of the 3x3 Manhattan network (paper layout):\n"
              << core::rendezvous_matrix::from_strategy(nine).to_string() << "\n";

    analysis::table sweep{{"p", "q", "n", "m=p+q", "2*sqrt(n)", "routed(grid)", "routed(torus)",
                           "cache-max"}};
    bool square_optimal = true;
    for (const auto& [p, q] : {std::pair{3, 3}, {4, 4}, {8, 8}, {16, 16}, {4, 16}, {2, 32},
                               {8, 32}}) {
        const strategies::manhattan_strategy s{p, q};
        const auto grid = net::make_grid(p, q);
        const auto torus = net::make_grid(p, q, net::wrap_mode::torus);
        const net::routing_table grid_routes{grid};
        const net::routing_table torus_routes{torus};
        const double m = core::average_message_passes(s);
        const auto cache = bench::measure_cache_load(s);
        if (p == q && std::abs(m - 2.0 * p) > 1e-9) square_optimal = false;
        if (p == 16 && q == 16) {
            bench::metric("grid16_avg_message_passes", m, "messages");
            bench::metric("grid16_routed_cost", bench::routed_cost(grid_routes, s, 2), "hops");
            bench::metric("torus16_routed_cost", bench::routed_cost(torus_routes, s, 2), "hops");
            bench::metric("grid16_cache_max", static_cast<double>(cache.max), "entries");
        }
        sweep.add_row({analysis::table::num(static_cast<std::int64_t>(p)),
                       analysis::table::num(static_cast<std::int64_t>(q)),
                       analysis::table::num(static_cast<std::int64_t>(p * q)),
                       analysis::table::num(m, 1),
                       analysis::table::num(2.0 * std::sqrt(static_cast<double>(p * q)), 1),
                       analysis::table::num(bench::routed_cost(grid_routes, s, 2), 1),
                       analysis::table::num(bench::routed_cost(torus_routes, s, 2), 1),
                       analysis::table::num(cache.max)});
    }
    std::cout << sweep.to_string() << "\n";

    // d-dimensional meshes: m(n) = 2 n^((d-1)/d) with side a, n = a^d.
    analysis::table mesh{{"d", "side", "n", "m(n)", "2*n^((d-1)/d)", "ratio"}};
    bool exponent_ok = true;
    for (const int d : {1, 2, 3, 4}) {
        const net::node_id side = d == 1 ? 64 : (d == 2 ? 16 : (d == 3 ? 8 : 5));
        std::vector<net::node_id> dims(static_cast<std::size_t>(d), side);
        const net::mesh_shape shape{dims};
        const strategies::mesh_strategy s{shape};
        const double n = static_cast<double>(shape.node_count());
        const double m = core::average_message_passes(s);
        const double predicted = 2.0 * std::pow(n, (d - 1.0) / d);
        if (d >= 2 && std::abs(m / predicted - 1.0) > 0.01) exponent_ok = false;
        bench::metric("mesh_d" + std::to_string(d) + "_ratio_vs_bound", m / predicted);
        mesh.add_row({analysis::table::num(static_cast<std::int64_t>(d)),
                      analysis::table::num(static_cast<std::int64_t>(side)),
                      analysis::table::num(static_cast<std::int64_t>(shape.node_count())),
                      analysis::table::num(m, 1), analysis::table::num(predicted, 1),
                      analysis::table::num(m / predicted, 3)});
    }
    std::cout << mesh.to_string() << "\n";

    bench::shape_check("square grids meet m(n) = 2*sqrt(n) exactly", square_optimal);
    bench::shape_check("d-dimensional meshes follow m(n) = 2*n^((d-1)/d)", exponent_ok);
    return 0;
}
