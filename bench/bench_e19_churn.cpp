// E19 - dynamic membership churn at scale.
// The paper's network is "designed to support heavy traffic from millions
// of users" whose machines come and go; this bench drives the e18 parallel
// workloads with live join/leave/rejoin churn mixed into the operation
// stream and checks the three claims that make dynamic membership a
// first-class feature instead of a rebuild-the-world loop:
//  * determinism - every counter (hops, completions, latency percentiles,
//    membership event counts) is bit-identical across 1/2/4/8 worker
//    threads, and for the 10^5 cases also identical to the serial engine,
//  * repair locality - one pendant join into a ~10^5-node routing table
//    invalidates / rebuilds o(n) rows, not Theta(n) (the incremental-repair
//    contract of net::routing_table), and
//  * budget - the 10^6-node churn workload still fits the e17 envelope of
//    60 s / 4 GiB.
// The 10^5 cases churn with fail-stop crashes mixed in; the 10^6 case is
// crash-free burst injection, the regime where per-tick parallelism is
// actually available to the workers.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "bench_util.h"
#include "net/hierarchy.h"
#include "net/routing.h"
#include "net/topologies.h"
#include "runtime/workload.h"
#include "strategies/cube.h"
#include "strategies/grid.h"
#include "strategies/hierarchical.h"

// Like e17/e18: the 10^6-node case is a budget claim about release builds;
// under a sanitizer it would measure the sanitizer, so it is skipped.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MM_E19_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MM_E19_SANITIZED 1
#endif
#endif
#ifndef MM_E19_SANITIZED
#define MM_E19_SANITIZED 0
#endif

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

// As in e18, the 1-worker run is the serial-order reference every wider
// worker count must reproduce bit for bit.  (The plain serial engine keeps
// residency-dependent shortest-path tie-breaks, so once leaves/crashes
// decide which in-flight messages die, it is deliberately NOT part of this
// equality set - test_churn covers where it does and does not agree.)
const std::vector<int>& thread_sweep() {
    static const std::vector<int> sweep =
        MM_E19_SANITIZED ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
    return sweep;
}

struct run_result {
    int threads = 1;
    double setup_seconds = 0;
    double run_seconds = 0;
    std::int64_t hops = 0;
    std::int64_t sent = 0;
    std::int64_t delivered = 0;
    std::int64_t dropped = 0;
    std::int64_t membership_events = 0;
    std::int64_t joins = 0;
    std::int64_t leaves = 0;
    std::int64_t rejoins = 0;
    std::int64_t live_nodes = 0;
    std::int64_t per_op_passes = 0;
    std::int64_t global_passes = 0;
    std::int64_t issued = 0;
    std::int64_t completed = 0;
    std::int64_t locates_found = 0;
    mm::sim::time_point latency_p50 = 0;
    mm::sim::time_point latency_p99 = 0;
    mm::sim::time_point makespan = 0;

    [[nodiscard]] bool counters_equal(const run_result& other) const {
        return hops == other.hops && sent == other.sent && delivered == other.delivered &&
               dropped == other.dropped && membership_events == other.membership_events &&
               joins == other.joins && leaves == other.leaves && rejoins == other.rejoins &&
               live_nodes == other.live_nodes && per_op_passes == other.per_op_passes &&
               global_passes == other.global_passes && issued == other.issued &&
               completed == other.completed && locates_found == other.locates_found &&
               latency_p50 == other.latency_p50 && latency_p99 == other.latency_p99 &&
               makespan == other.makespan;
    }
};

struct case_result {
    std::string label;
    mm::net::node_id n = 0;
    std::vector<run_result> runs;
    bool all_equal = true;
};

mm::runtime::workload_options options_for(mm::net::node_id n, bool with_crashes) {
    mm::runtime::workload_options opts;
    opts.seed = 20260731;
    opts.operations = n >= 1'000'000 ? 96 : 240;
    opts.mean_interarrival = n >= 1'000'000 ? 0.0 : 0.25;
    opts.ports = 16;
    opts.servers_per_port = 1;
    // The e18 mix with ~12% of the dice reassigned to membership churn.
    opts.locate_weight = 0.80;
    opts.register_weight = 0.03;
    opts.migrate_weight = 0.03;
    opts.crash_weight = with_crashes ? 0.02 : 0.0;
    opts.crash_downtime = 30;
    opts.join_weight = 0.06;
    opts.leave_weight = 0.04;
    opts.rejoin_weight = 0.02;
    opts.join_edges = 2;
    return opts;
}

template <class Strategy>
case_result run_case(const std::string& label, const mm::net::graph& base,
                     const Strategy& strategy, bool with_crashes) {
    using namespace mm;
    case_result out;
    out.label = label;
    out.n = base.node_count();
    const auto opts = options_for(out.n, with_crashes);
    for (const int threads : thread_sweep()) {
        const auto setup_start = clock_type::now();
        // Churn mutates the graph, so every run starts from a fresh copy of
        // the pristine topology.
        net::graph g = base;
        sim::simulator sim{g};
        sim.set_worker_threads(threads);
        runtime::name_service ns{sim, strategy};
        run_result r;
        r.threads = threads;
        r.setup_seconds = seconds_since(setup_start);

        const auto run_start = clock_type::now();
        const auto stats = runtime::run_workload(ns, opts);
        r.run_seconds = seconds_since(run_start);

        r.hops = sim.stats().get(sim::counter_hops);
        r.sent = sim.stats().get(sim::counter_messages_sent);
        r.delivered = sim.stats().get(sim::counter_messages_delivered);
        r.dropped = sim.stats().get(sim::counter_messages_dropped);
        r.membership_events = sim.stats().get(sim::counter_membership_events);
        r.joins = stats.joins;
        r.leaves = stats.leaves;
        r.rejoins = stats.rejoins;
        r.live_nodes = g.live_node_count();
        r.per_op_passes = stats.per_op_message_passes;
        r.global_passes = stats.global_message_passes;
        r.issued = stats.issued;
        r.completed = stats.completed;
        r.locates_found = stats.locates_found;
        r.latency_p50 = stats.latency_p50;
        r.latency_p99 = stats.latency_p99;
        r.makespan = stats.makespan;
        if (!out.runs.empty()) out.all_equal = out.all_equal && r.counters_equal(out.runs.front());
        out.runs.push_back(r);
    }
    return out;
}

// Repair-locality measurement: warm a set of BFS rows in a ~10^5-node
// routing table, make one pendant join, re-query every warmed root, and
// count how many rows the table had to drop or rebuild.  The leaf-patch
// rule says: none - a new degree-1 node is patched into every resident row.
struct repair_measurement {
    mm::net::node_id n = 0;
    std::size_t warmed_rows = 0;
    std::int64_t builds_after_join = 0;
    std::int64_t invalidations_after_join = 0;
    std::int64_t builds_after_two_edge_join = 0;
    std::int64_t invalidations_after_two_edge_join = 0;
};

repair_measurement measure_repair_locality() {
    using namespace mm;
    repair_measurement out;
    const net::node_id side = 316;
    net::graph g = net::make_grid(side, side);
    out.n = g.node_count();
    net::routing_table routes{g};

    // Warm 64 rows at distinct roots spread over the grid.
    const net::node_id stride = out.n / 64;
    std::vector<net::node_id> roots;
    for (net::node_id r = 0; r < out.n && roots.size() < 64; r += stride) roots.push_back(r);
    // next_hop(from, to) materializes the row rooted at `to`; distance()
    // alone would answer via bidirectional BFS probes and warm nothing.
    for (const auto r : roots) (void)routes.next_hop(r == 0 ? 1 : 0, r);
    out.warmed_rows = routes.materialized_rows();

    // Single pendant join: one fresh node, one edge.
    auto builds = routes.row_builds();
    auto drops = routes.row_invalidations();
    const net::node_id v1 = g.add_node();
    g.add_edge(v1, out.n / 2);
    g.finalize();
    for (const auto r : roots) (void)routes.distance(r, v1);
    out.builds_after_join = routes.row_builds() - builds;
    out.invalidations_after_join = routes.row_invalidations() - drops;

    // Two-edge join for contrast: the second edge usually links nodes at
    // different BFS depths, so rows legitimately drop; reported, not gated.
    builds = routes.row_builds();
    drops = routes.row_invalidations();
    const net::node_id v2 = g.add_node();
    g.add_edge(v2, 1);
    g.add_edge(v2, out.n / 4);
    g.finalize();
    for (const auto r : roots) (void)routes.distance(r, v2);
    out.builds_after_two_edge_join = routes.row_builds() - builds;
    out.invalidations_after_two_edge_join = routes.row_invalidations() - drops;
    return out;
}

}  // namespace

int main() {
    using namespace mm;
    bench::banner("E19: dynamic membership churn",
                  "join/leave/rejoin churn mixed into the e18 workloads at n = 10^5\n"
                  "and 10^6.  Counters must be bit-identical across 1/2/4/8 worker\n"
                  "threads; one pendant join must repair o(n) routing rows; the\n"
                  "10^6-node churn workload must fit the 60 s / 4 GiB envelope.");

    const auto repair = measure_repair_locality();
    std::cout << "repair locality (grid 316x316, " << repair.warmed_rows << " warm rows):\n"
              << "  pendant join:  " << repair.builds_after_join << " rebuilds, "
              << repair.invalidations_after_join << " invalidations\n"
              << "  two-edge join: " << repair.builds_after_two_edge_join << " rebuilds, "
              << repair.invalidations_after_two_edge_join << " invalidations\n\n";

    std::vector<case_result> results;
    const auto grid_case = [&](net::node_id side, bool with_crashes) {
        const auto g = net::make_grid(side, side);
        const strategies::manhattan_strategy strategy{side, side};
        results.push_back(run_case("grid " + std::to_string(side) + "x" + std::to_string(side),
                                   g, strategy, with_crashes));
    };
    const auto cube_case = [&](int d, bool with_crashes) {
        const auto g = net::make_hypercube(d);
        const strategies::hypercube_strategy strategy{d};
        results.push_back(run_case("hypercube d=" + std::to_string(d), g, strategy, with_crashes));
    };
    const auto hierarchy_case = [&](int levels, bool with_crashes) {
        const net::hierarchy h{std::vector<int>(static_cast<std::size_t>(levels), 10)};
        const auto g = net::make_hierarchical_graph(h);
        const strategies::hierarchical_strategy strategy{h};
        results.push_back(
            run_case("hierarchy 10^" + std::to_string(levels), g, strategy, with_crashes));
    };

    grid_case(316, true);      // 99'856 nodes, churn + per-hop crash windows
    cube_case(17, true);       // 131'072 nodes
    hierarchy_case(5, true);   // 100'000 nodes
    if (!MM_E19_SANITIZED) {
        grid_case(1000, false);  // 10^6 nodes, crash-free churn burst
    } else {
        std::cout << "[sanitized build: skipping the 10^6-node budget case]\n";
    }

    analysis::table t{{"topology", "n", "threads", "run s", "hops", "ops", "join/leave/rejoin",
                       "live", "equal"}};
    for (const auto& c : results) {
        for (const auto& r : c.runs) {
            t.add_row({c.label, analysis::table::num(static_cast<std::int64_t>(c.n)),
                       analysis::table::num(static_cast<std::int64_t>(r.threads)),
                       analysis::table::num(r.run_seconds, 2), analysis::table::num(r.hops),
                       analysis::table::num(r.completed),
                       analysis::table::num(r.joins) + "/" + analysis::table::num(r.leaves) +
                           "/" + analysis::table::num(r.rejoins),
                       analysis::table::num(r.live_nodes), c.all_equal ? "yes" : "NO"});
        }
    }
    std::cout << t.to_string() << "\n";

    bool all_equal = true;
    bool all_completed = true;
    bool all_churned = true;
    for (const auto& c : results) {
        all_equal = all_equal && c.all_equal;
        const auto& front = c.runs.front();
        for (const auto& r : c.runs) {
            all_completed = all_completed && r.completed == r.issued && r.completed > 0;
            all_churned = all_churned &&
                          r.membership_events == r.joins + r.leaves + r.rejoins &&
                          r.joins > 0 && r.leaves > 0;
        }
        const std::string prefix =
            c.label.substr(0, c.label.find(' ')) + "_" + std::to_string(c.n);
        for (const auto& r : c.runs) {
            bench::metric(prefix + "_t" + std::to_string(r.threads) + "_run_seconds",
                          r.run_seconds, "s");
        }
        bench::metric(prefix + "_message_passes", static_cast<double>(front.global_passes),
                      "hops");
        bench::metric(prefix + "_membership_events",
                      static_cast<double>(front.membership_events), "operations");
        bench::metric(prefix + "_live_nodes", static_cast<double>(front.live_nodes), "nodes");
    }

    bench::metric("repair_warm_rows", static_cast<double>(repair.warmed_rows), "entries");
    bench::metric("repair_pendant_join_row_builds",
                  static_cast<double>(repair.builds_after_join), "entries");
    bench::metric("repair_pendant_join_invalidations",
                  static_cast<double>(repair.invalidations_after_join), "entries");
    bench::metric("repair_two_edge_join_row_builds",
                  static_cast<double>(repair.builds_after_two_edge_join), "entries");
    bench::metric("repair_two_edge_join_invalidations",
                  static_cast<double>(repair.invalidations_after_two_edge_join), "entries");

    bench::shape_check("counters bit-identical across 1/2/4/8 worker threads", all_equal);
    bench::shape_check("every churn workload completes all issued operations", all_completed);
    bench::shape_check("membership events fire and reconcile with workload stats", all_churned);
    // Repair locality: a pendant join into a 99'856-node table must touch a
    // bounded number of rows - o(n) in spirit, <= 4 in practice (the fresh
    // node's own row plus slack), against 64 warm rows it must NOT drop.
    bench::shape_check("pendant join repairs o(n) rows (builds + invalidations <= 4)",
                       repair.builds_after_join + repair.invalidations_after_join <= 4);

    if (!MM_E19_SANITIZED) {
        bool million_in_budget = true;
        for (const auto& c : results) {
            if (c.n < 1'000'000) continue;
            for (const auto& r : c.runs)
                million_in_budget =
                    million_in_budget && (r.setup_seconds + r.run_seconds) < 60.0;
        }
        bench::shape_check("each 10^6-node churn run finishes inside 60 s", million_in_budget);
        const auto rss = bench::read_rss();
        bench::metric("peak_rss", rss.peak_mb, "MiB");
        if (rss.peak_mb > 0)
            bench::shape_check("peak RSS stays under the 4 GiB budget", rss.peak_mb < 4096.0);
    }
    return 0;
}
