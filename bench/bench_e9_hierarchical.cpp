// E9 - Section 3.5: hierarchical networks.  m(n) = O(k * n^(1/2k)) for k
// levels of fanout a = n^(1/k); the minimum O(log n) is reached around
// k = (1/2) log n.  Staged locate resolves local traffic at low levels.
#include <cmath>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/rendezvous_matrix.h"
#include "net/hierarchy.h"
#include "runtime/name_service.h"
#include "strategies/hierarchical.h"

int main() {
    using namespace mm;
    bench::banner("E9: hierarchical networks (Section 3.5)",
                  "Post/query at sqrt(fanout) gateways per level on the path to the root.\n"
                  "m ~ 2k*sqrt(a) beats the flat 2*sqrt(n); staged locate keeps local\n"
                  "traffic local.");

    // Fixed n = 4096, vary the number of levels k (fanout a = n^(1/k)).
    analysis::table sweep{{"k levels", "fanout a", "n", "m(n)", "2k*sqrt(a)", "flat 2*sqrt(n)"}};
    double best_m = 1e18;
    int best_k = 0;
    for (const int k : {1, 2, 3, 4, 6, 12}) {
        const int a = static_cast<int>(std::lround(std::pow(4096.0, 1.0 / k)));
        std::vector<int> fanouts(static_cast<std::size_t>(k), a);
        const net::hierarchy h{fanouts};
        const strategies::hierarchical_strategy s{h};
        const double m = core::average_message_passes(s);
        if (m < best_m) {
            best_m = m;
            best_k = k;
        }
        sweep.add_row({analysis::table::num(static_cast<std::int64_t>(k)),
                       analysis::table::num(static_cast<std::int64_t>(a)),
                       analysis::table::num(static_cast<std::int64_t>(h.node_count())),
                       analysis::table::num(m, 1),
                       analysis::table::num(2.0 * k * std::sqrt(static_cast<double>(a)), 1),
                       analysis::table::num(2.0 * std::sqrt(4096.0), 1)});
    }
    std::cout << sweep.to_string() << "\n";

    // Staged locate: clients mostly talk to local services (the paper's
    // locality assumption), so most locates finish at level 1.
    const net::hierarchy h{{8, 8, 8}};
    const auto g = net::make_hierarchical_graph(h);
    sim::simulator sim{g};
    const strategies::hierarchical_strategy strategy{h};
    runtime::name_service ns{sim, strategy};

    analysis::table staged{{"traffic", "stages used", "nodes queried", "found"}};
    // Client 4's level-1 query set avoids node 0 (which doubles as the
    // cluster's higher-level gateway), so stage counts show pure escalation
    // rather than opportunistic gateway aliasing.
    const net::node_id client = 4;
    const core::port_id local_port = core::port_of("local-fs");
    const core::port_id campus_port = core::port_of("campus-db");
    const core::port_id global_port = core::port_of("global-auth");
    ns.register_server(local_port, 7);    // same level-1 cluster as the client
    ns.register_server(campus_port, 12);  // same level-2 cluster
    ns.register_server(global_port, 300); // other side of the hierarchy

    const auto report = [&](const char* label, core::port_id port) {
        const auto res = ns.locate_staged(port, client);
        staged.add_row({label, analysis::table::num(static_cast<std::int64_t>(res.stages)),
                        analysis::table::num(static_cast<std::int64_t>(res.nodes_queried)),
                        res.found ? "yes" : "NO"});
        return res;
    };
    const auto local = report("intra-cluster", local_port);
    const auto campus = report("intra-campus", campus_port);
    const auto global = report("global", global_port);
    std::cout << staged.to_string() << "\n";

    bench::metric("best_level_count", static_cast<double>(best_k), "levels");
    bench::metric("best_avg_message_passes", best_m, "messages");
    bench::metric("staged_local_nodes_queried", static_cast<double>(local.nodes_queried));
    bench::metric("staged_campus_nodes_queried", static_cast<double>(campus.nodes_queried));
    bench::metric("staged_global_nodes_queried", static_cast<double>(global.nodes_queried));
    bench::shape_check("the m(n) minimum lies at k >= 3 levels (toward (1/2)log n = 6)",
                       best_k >= 3);
    bench::shape_check("deep hierarchy beats the flat 2*sqrt(n) = 128",
                       best_m < 2.0 * std::sqrt(4096.0));
    bench::shape_check("staged locate: local < campus < global stages",
                       local.found && campus.found && global.found && local.stages == 1 &&
                           campus.stages == 2 && global.stages == 3);
    return 0;
}
