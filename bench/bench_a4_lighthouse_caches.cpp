// A4 (ablation) - Lighthouse cache capacity.  Section 2.1 assumes caches
// "large enough ... that they never have to discard"; Lighthouse Locate is
// the regime where they are not.  This sweep shrinks per-node caches on the
// network version and watches evictions rise and locate time degrade.
#include <algorithm>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "lighthouse/network_lighthouse.h"
#include "net/topologies.h"

namespace {

using namespace mm;

struct sweep_point {
    std::int64_t median_time = 0;
    std::int64_t evictions = 0;
    double located = 0;
};

sweep_point run_capacity(std::size_t capacity) {
    const auto g = net::make_grid(13, 13, net::wrap_mode::torus);
    const net::routing_table routes{g};
    std::vector<std::int64_t> times;
    std::int64_t evictions = 0;
    int located = 0;
    constexpr int runs = 15;
    for (int r = 0; r < runs; ++r) {
        lighthouse::network_lighthouse_params p;
        p.servers = {3, 40, 77, 100, 120, 150, 11, 64};
        p.client = 84;
        p.server_beam_length = 6;
        p.server_period = 6;
        p.trail_lifetime = 36;
        p.client_base_length = 2;
        p.client_period = 6;
        p.cache_capacity = capacity;
        p.max_time = 1 << 13;
        p.seed = 100u + static_cast<unsigned>(r);
        const auto result = run_network_lighthouse(g, routes, p);
        times.push_back(result.time_to_locate);
        evictions += result.cache_evictions;
        if (result.located) ++located;
    }
    std::sort(times.begin(), times.end());
    return {times[times.size() / 2], evictions / runs,
            static_cast<double>(located) / runs};
}

}  // namespace

int main() {
    bench::banner("A4 (ablation): Lighthouse per-node cache capacity",
                  "8 servers beam trails on a 13x13 torus; per-node LRU capacity sweeps\n"
                  "from ample to starved ('too-small caches can discard pairs').");

    analysis::table t{{"capacity", "median locate time", "mean evictions", "located"}};
    sweep_point ample{};
    sweep_point starved{};
    for (const std::size_t capacity : {64u, 8u, 4u, 2u, 1u}) {
        const auto point = run_capacity(capacity);
        if (capacity == 64u) ample = point;
        if (capacity == 1u) starved = point;
        t.add_row({analysis::table::num(static_cast<std::int64_t>(capacity)),
                   analysis::table::num(point.median_time),
                   analysis::table::num(point.evictions),
                   analysis::table::num(point.located, 2)});
        const std::string prefix = "capacity_" + std::to_string(capacity);
        bench::metric(prefix + "_median_locate_time", static_cast<double>(point.median_time),
                      "ticks");
        bench::metric(prefix + "_mean_evictions", static_cast<double>(point.evictions));
        bench::metric(prefix + "_located_fraction", point.located);
    }
    std::cout << t.to_string() << "\n";

    bench::shape_check("ample caches see no evictions", ample.evictions == 0);
    bench::shape_check("starved caches evict heavily yet still locate eventually",
                       starved.evictions > 0 && starved.located > 0.5);
    bench::shape_check("starvation does not beat ample capacity on median time",
                       starved.median_time >= ample.median_time);
    return 0;
}
