// bench_e20: real-transport daemon loopback - locate round-trip latency
// and throughput against a live mmd_server over 127.0.0.1 TCP.
//
// This is the repo's first wall-clock experiment on the real transport
// stack (everything up to e19 measures simulator ticks): one in-process
// daemon hosting a hash match-maker universe, then 1 / 8 / 64 concurrent
// clients - each its own thread, tcp_transport and mm_client, like real
// processes - hammering locate_fresh and recording per-operation RTTs.
//
// Reported metrics are latency percentiles (p50/p95/p99, microseconds)
// and aggregate ops/s per concurrency level.  All of them are wall-clock
// quantities: bench_diff tracks them warn-only, never as a blocking gate
// (counter metrics stay the gate; docs/BENCHMARKS.md).
//
// Shape checks are correctness, not speed: every locate finds the server
// at the right address, and the daemon thread shuts down cleanly.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "daemon/mm_client.h"
#include "daemon/mmd_server.h"
#include "daemon/strategy_factory.h"
#include "transport/tcp_transport.h"

// Under a sanitizer the measurements would measure the sanitizer; keep the
// shape checks but shrink the operation counts.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MM_E20_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MM_E20_SANITIZED 1
#endif
#endif
#ifndef MM_E20_SANITIZED
#define MM_E20_SANITIZED 0
#endif

namespace {

constexpr mm::net::node_id kNodes = 64;
constexpr int kReplicas = 3;
constexpr int kPorts = 16;
constexpr int kLocatesPerClient = MM_E20_SANITIZED ? 40 : 400;

double percentile(std::vector<double>& sorted, double p) {
    if (sorted.empty()) return 0.0;
    const auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
    return sorted[rank];
}

struct level_result {
    std::vector<double> rtt_us;
    double elapsed_s = 0;
    std::int64_t wrong = 0;  // locates that missed or found the wrong host
};

level_result run_level(std::uint16_t port, const mm::core::locate_strategy& strategy,
                       int clients) {
    level_result out;
    std::vector<std::vector<double>> per_client(static_cast<std::size_t>(clients));
    std::atomic<std::int64_t> wrong{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
            mm::transport::tcp_transport net;
            for (mm::net::node_id v = 0; v < kNodes; ++v)
                net.add_route(v, "127.0.0.1", port);
            mm::daemon::mm_client client{net, strategy};
            auto& samples = per_client[static_cast<std::size_t>(c)];
            samples.reserve(kLocatesPerClient);
            for (int i = 0; i < kLocatesPerClient; ++i) {
                const auto target_port = static_cast<mm::core::port_id>(1 + (c + i) % kPorts);
                const auto actor = static_cast<mm::net::node_id>((c * 7 + i) % kNodes);
                const auto begin = std::chrono::steady_clock::now();
                const auto res = client.locate_fresh(target_port, actor);
                const auto end = std::chrono::steady_clock::now();
                samples.push_back(
                    std::chrono::duration<double, std::micro>(end - begin).count());
                const auto expected =
                    static_cast<mm::core::address>(target_port % kNodes);
                if (!res.found || res.where != expected)
                    wrong.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto& w : workers) w.join();
    out.elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    for (auto& samples : per_client)
        out.rtt_us.insert(out.rtt_us.end(), samples.begin(), samples.end());
    std::sort(out.rtt_us.begin(), out.rtt_us.end());
    out.wrong = wrong.load();
    return out;
}

}  // namespace

int main() {
    mm::bench::banner(
        "e20: daemon loopback latency/throughput",
        "A real mmd daemon on 127.0.0.1 answers locates with the same visible results as "
        "the simulator oracle; RTT percentiles and ops/s at 1/8/64 concurrent clients.");

    const auto strategy = mm::daemon::make_strategy("hash", kNodes, kReplicas);

    // The daemon, exactly as tools/mmd.cpp runs it, in a background thread.
    mm::transport::tcp_transport daemon_net;
    const auto port = daemon_net.listen_on(0);
    mm::daemon::mmd_server server{daemon_net, *strategy};
    std::atomic<bool> stop{false};
    std::thread daemon_thread{[&] { server.serve(stop, 5); }};

    {
        // Seed one server binding per port: port p lives at node p % kNodes.
        mm::transport::tcp_transport net;
        for (mm::net::node_id v = 0; v < kNodes; ++v) net.add_route(v, "127.0.0.1", port);
        mm::daemon::mm_client seed{net, *strategy};
        for (int p = 1; p <= kPorts; ++p)
            seed.register_server(static_cast<mm::core::port_id>(p),
                                 static_cast<mm::net::node_id>(p % kNodes));
    }

    std::printf("%8s %10s %10s %10s %10s %12s\n", "clients", "locates", "p50_us", "p95_us",
                "p99_us", "ops/s");
    bool all_correct = true;
    for (const int clients : {1, 8, 64}) {
        auto level = run_level(port, *strategy, clients);
        const auto total = static_cast<double>(level.rtt_us.size());
        const double p50 = percentile(level.rtt_us, 0.50);
        const double p95 = percentile(level.rtt_us, 0.95);
        const double p99 = percentile(level.rtt_us, 0.99);
        const double ops = level.elapsed_s > 0 ? total / level.elapsed_s : 0;
        std::printf("%8d %10.0f %10.1f %10.1f %10.1f %12.0f\n", clients, total, p50, p95, p99,
                    ops);
        char name[64];
        std::snprintf(name, sizeof name, "locate_rtt_p50_c%d", clients);
        mm::bench::metric(name, p50, "us");
        std::snprintf(name, sizeof name, "locate_rtt_p95_c%d", clients);
        mm::bench::metric(name, p95, "us");
        std::snprintf(name, sizeof name, "locate_rtt_p99_c%d", clients);
        mm::bench::metric(name, p99, "us");
        std::snprintf(name, sizeof name, "locate_ops_per_s_c%d", clients);
        mm::bench::metric(name, ops, "ops/s");
        all_correct = all_correct && level.wrong == 0;
    }

    stop.store(true);
    daemon_thread.join();

    mm::bench::shape_check("every locate found its server at the registered address",
                           all_correct);
    mm::bench::shape_check("daemon served every frame it parsed (no bad frames)",
                           server.stat().bad_frames == 0);
    mm::bench::shape_check("daemon shut down cleanly on the stop flag", true);
    return all_correct ? 0 : 1;
}
