// E14 - Section 2.4: robustness and fault tolerance.  Redundant strategies
// (#(P n Q) >= f+1) keep matching under f in-place faults; singleton
// strategies do not.  Plus the Section 2.3.5 remark: on a ring no scheme
// beats broadcasting, m(n) = Omega(n).
#include <cmath>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/certify.h"
#include "core/rendezvous_matrix.h"
#include "net/topologies.h"
#include "runtime/name_service.h"
#include "sim/rng.h"
#include "strategies/basic.h"
#include "strategies/checkerboard.h"
#include "strategies/grid.h"

namespace {

using namespace mm;

// Locate success rate over random (server, client, f-crash-set) trials.
double survival_rate(const core::locate_strategy& strategy, const net::graph& g, int f,
                     std::uint64_t seed) {
    sim::rng random{seed};
    constexpr int trials = 60;
    int ok = 0;
    for (int trial = 0; trial < trials; ++trial) {
        sim::simulator sim{g};
        runtime::name_service ns{sim, strategy};
        const net::node_id n = g.node_count();
        const auto server = static_cast<net::node_id>(random.uniform(0, n - 1));
        auto client = static_cast<net::node_id>(random.uniform(0, n - 1));
        const core::port_id port = core::port_of("robustness");
        ns.register_server(port, server);
        // Crash f nodes, never the server or the client themselves.
        int down = 0;
        while (down < f) {
            const auto v = static_cast<net::node_id>(random.uniform(0, n - 1));
            if (v == server || v == client || sim.crashed(v)) continue;
            ns.crash_node(v);
            ++down;
        }
        if (ns.locate(port, client).found) ++ok;
    }
    return static_cast<double>(ok) / trials;
}

}  // namespace

int main() {
    bench::banner("E14: robustness under node crashes (Section 2.4)",
                  "Redundancy criterion: #(P n Q) >= f+1 tolerates f faults in place.\n"
                  "flood has n-fold redundancy, the 3-d mesh 3-fold, the checkerboard and\n"
                  "Manhattan grid only 1-fold (complete network, f random crashes).");

    const net::mesh_shape shape{{3, 3, 3}};
    const auto complete27 = net::make_complete(27);
    const strategies::checkerboard_strategy checker{27};
    const strategies::mesh_strategy mesh3{shape};
    const strategies::manhattan_strategy manhattan{3, 9};
    const strategies::flood_strategy flood{27};

    const strategies::checkerboard_strategy checker_r2{27, 0, 2};
    const strategies::checkerboard_strategy checker_r3{27, 0, 3};

    analysis::table t{{"strategy", "#(PnQ) min", "f=0", "f=1", "f=2", "f=4", "f=8"}};
    const auto add = [&](const core::locate_strategy& s) {
        const auto cert = core::certify(s);
        std::vector<std::string> row{s.name(), analysis::table::num(cert.min_overlap)};
        for (const int f : {0, 1, 2, 4, 8})
            row.push_back(analysis::table::num(
                survival_rate(s, complete27, f, 5u + static_cast<unsigned>(f)), 2));
        t.add_row(std::move(row));
    };
    add(checker);
    add(manhattan);
    add(checker_r2);
    add(mesh3);
    add(checker_r3);
    add(flood);
    std::cout << t.to_string() << "\n";

    const double mesh_f2 = survival_rate(mesh3, complete27, 2, 9u);
    const double flood_f8 = survival_rate(flood, complete27, 8, 9u);
    const double checker_f8 = survival_rate(checker, complete27, 8, 9u);

    // Ring remark: on a ring, reaching k addressed nodes costs Omega(k) hops
    // each in the worst case; no locate scheme beats broadcast's Theta(n).
    const auto ring = net::make_ring(64);
    const net::routing_table routes{ring};
    const strategies::checkerboard_strategy ring_checker{64};
    const strategies::broadcast_strategy ring_broadcast{64};
    const double routed_checker = bench::routed_cost(routes, ring_checker, 3);
    const double routed_broadcast = bench::routed_cost(routes, ring_broadcast, 3);
    std::cout << "Ring n=64 routed cost: checkerboard "
              << analysis::table::num(routed_checker, 1) << " vs broadcast "
              << analysis::table::num(routed_broadcast, 1)
              << " (both Omega(n); sqrt-schemes buy nothing on rings).\n\n";

    bench::metric("mesh3_survival_f2", mesh_f2, "fraction");
    bench::metric("flood_survival_f8", flood_f8, "fraction");
    bench::metric("checkerboard_survival_f8", checker_f8, "fraction");
    bench::metric("ring_routed_cost_checkerboard", routed_checker, "message passes");
    bench::metric("ring_routed_cost_broadcast", routed_broadcast, "message passes");

    bench::shape_check("3-fold redundant mesh survives every f=2 drill", mesh_f2 == 1.0);
    bench::shape_check("flood survives f=8 while the singleton checkerboard does not",
                       flood_f8 == 1.0 && checker_f8 < 1.0);
    bench::shape_check("on the ring the sqrt-scheme pays at least broadcast/4 routed passes",
                       routed_checker > routed_broadcast / 4.0);
    return 0;
}
