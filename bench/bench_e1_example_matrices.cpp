// E1 - Section 2.3.1: the six example rendezvous matrices, printed exactly
// as in the paper (1-based node numbers; the 3-cube in binary).
#include <bitset>
#include <iostream>

#include "bench_util.h"
#include "core/rendezvous_matrix.h"
#include "strategies/basic.h"
#include "strategies/checkerboard.h"
#include "strategies/cube.h"
#include "strategies/tree_path.h"

namespace {

using namespace mm;

void print_matrix(const std::string& title, const core::rendezvous_matrix& r) {
    std::cout << title << "\n" << r.to_string() << "\n";
}

}  // namespace

int main() {
    bench::banner("E1: rendezvous matrix examples 1-6 (Section 2.3.1)",
                  "Each matrix entry r_ij is the rendezvous node for server i, client j.");

    const core::port_id port = core::port_of("example");

    const strategies::broadcast_strategy broadcast{9};
    auto r1 = core::rendezvous_matrix::from_strategy(broadcast, port);
    print_matrix("Example 1 - Broadcasting (server stays put, client looks everywhere):", r1);

    const strategies::sweep_strategy sweep{9};
    auto r2 = core::rendezvous_matrix::from_strategy(sweep, port);
    print_matrix("Example 2 - Sweeping (client stays put, server looks for work):", r2);

    const strategies::central_strategy central{9, 2};
    auto r3 = core::rendezvous_matrix::from_strategy(central, port);
    print_matrix("Example 3 - Centralized name server (all traffic via node 3):", r3);

    const strategies::checkerboard_strategy checker{9};
    auto r4 = core::rendezvous_matrix::from_strategy(checker, port);
    print_matrix("Example 4 - Truly distributed name server (checkerboard):", r4);

    // Example 5: hierarchy 1,2,3 < 7; 4,5,6 < 8; 7,8 < 9; the paper prints
    // the effective (deepest) rendezvous of each pair.
    const std::vector<net::node_id> parent{6, 6, 6, 7, 7, 7, 8, 8, net::invalid_node};
    const strategies::tree_path_strategy tree{parent};
    std::cout << "Example 5 - Hierarchically distributed name server (1,2,3<7; 4,5,6<8; 7,8<9):\n";
    for (net::node_id i = 0; i < 9; ++i) {
        for (net::node_id j = 0; j < 9; ++j)
            std::cout << tree.effective_rendezvous(i, j) + 1 << (j == 8 ? "" : " ");
        std::cout << "\n";
    }
    std::cout << "\n";

    // Example 6: binary 3-cube, P(abc) = {axy}, Q(abc) = {xbc}.
    const strategies::hypercube_strategy cube{3, 2};
    auto r6 = core::rendezvous_matrix::from_strategy(cube, port);
    std::cout << "Example 6 - Distributed name server for the binary 3-cube:\n";
    for (net::node_id i = 0; i < 8; ++i) {
        for (net::node_id j = 0; j < 8; ++j) {
            const auto& e = r6.entry(i, j);
            std::cout << std::bitset<3>(static_cast<unsigned>(e.front())).to_string()
                      << (j == 7 ? "" : " ");
        }
        std::cout << "\n";
    }
    std::cout << "\n";

    bench::metric("broadcast_avg_message_passes", r1.average_message_passes(), "messages");
    bench::metric("sweep_avg_message_passes", r2.average_message_passes(), "messages");
    bench::metric("central_avg_message_passes", r3.average_message_passes(), "messages");
    bench::metric("checkerboard_avg_message_passes", r4.average_message_passes(), "messages");
    bench::metric("cube3_avg_message_passes", r6.average_message_passes(), "messages");
    bench::shape_check("examples 1-4, 6 are total singleton matrices",
                       r1.total() && r1.singleton() && r2.total() && r3.total() &&
                           r3.singleton() && r4.total() && r4.singleton() && r6.total() &&
                           r6.singleton());
    bench::shape_check("broadcast/sweep cost n+1 = 10, central costs 2, checkerboard 2*sqrt(n) = 6",
                       r1.average_message_passes() == 10.0 &&
                           r2.average_message_passes() == 10.0 &&
                           r3.average_message_passes() == 2.0 &&
                           r4.average_message_passes() == 6.0);
    bench::shape_check("3-cube pays 2^2 + 2^1 = 6 message passes per match",
                       r6.average_message_passes() == 6.0);
    return 0;
}
