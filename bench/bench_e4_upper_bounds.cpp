// E4 - Section 2.3.4, Propositions 3-4: the checkerboard construction
// (nearly) meets the 2*sqrt(n) lower bound at every n, and the lifting
// R -> R' scales any strategy to 4n nodes with m'(4n) = 2*m(n).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/lifting.h"
#include "core/lower_bound.h"
#include "strategies/checkerboard.h"

namespace {

using namespace mm;

core::rendezvous_matrix normalized(const core::locate_strategy& s) {
    const auto r = core::rendezvous_matrix::from_strategy(s);
    std::vector<core::node_set> entries;
    for (net::node_id i = 0; i < r.size(); ++i)
        for (net::node_id j = 0; j < r.size(); ++j) entries.push_back(r.entry(i, j));
    return core::rendezvous_matrix::from_entries(r.size(), std::move(entries));
}

}  // namespace

int main() {
    bench::banner("E4: upper bounds, Propositions 3-4 (Section 2.3.4)",
                  "Checkerboard m(n) vs the 2*sqrt(n) truly-distributed bound; lifting\n"
                  "doubles m while quadrupling n, preserving optimality.");

    analysis::table prop3{{"n", "m(n)", "2*sqrt(n)", "ratio"}};
    bool near_optimal = true;
    double worst_ratio = 0;
    for (const net::node_id n :
         {4, 9, 16, 25, 30, 36, 64, 77, 100, 144, 256, 500, 529, 1024, 2000, 2025, 4096}) {
        const strategies::checkerboard_strategy s{n};
        const double m = core::average_message_passes(s);
        const double bound = core::truly_distributed_bound(n);
        const double ratio = m / bound;
        worst_ratio = std::max(worst_ratio, ratio);
        if (n == 4096) bench::metric("checkerboard_4096_avg_message_passes", m, "messages");
        // Proposition 3: #P + #Q <= 2*ceil(sqrt(n)) + 1 slack for ragged n.
        if (ratio > 1.3) near_optimal = false;
        prop3.add_row({analysis::table::num(static_cast<std::int64_t>(n)),
                       analysis::table::num(m, 2), analysis::table::num(bound, 2),
                       analysis::table::num(ratio, 3)});
    }
    std::cout << "Proposition 3 - checkerboard vs the truly distributed bound:\n"
              << prop3.to_string() << "\n";

    analysis::table prop4{{"lift step", "n", "m(n)", "2*sqrt(n)", "m doubled?"}};
    auto matrix = normalized(strategies::checkerboard_strategy{4});
    double previous = matrix.average_message_passes();
    bool doubling_exact = true;
    prop4.add_row({"0", analysis::table::num(static_cast<std::int64_t>(matrix.size())),
                   analysis::table::num(previous, 2),
                   analysis::table::num(core::truly_distributed_bound(matrix.size()), 2), "-"});
    for (int step = 1; step <= 4; ++step) {
        matrix = core::lift(matrix);
        const double m = matrix.average_message_passes();
        const bool doubled = std::abs(m - 2.0 * previous) < 1e-9;
        doubling_exact = doubling_exact && doubled;
        prop4.add_row({analysis::table::num(static_cast<std::int64_t>(step)),
                       analysis::table::num(static_cast<std::int64_t>(matrix.size())),
                       analysis::table::num(m, 2),
                       analysis::table::num(core::truly_distributed_bound(matrix.size()), 2),
                       doubled ? "yes" : "NO"});
        previous = m;
    }
    std::cout << "Proposition 4 - lifting R (n=4 checkerboard) through 4 steps:\n"
              << prop4.to_string() << "\n";

    bench::metric("checkerboard_worst_ratio_vs_bound", worst_ratio);
    bench::metric("lifted_final_n", static_cast<double>(matrix.size()), "nodes");
    bench::metric("lifted_final_avg_message_passes", previous, "messages");
    bench::shape_check("checkerboard within 1.3x of 2*sqrt(n) at every n", near_optimal);
    bench::shape_check("each lift exactly doubles m(n) (m'(4n) = 2m(n))", doubling_exact);
    return 0;
}
