// A1 (ablation) - the checkerboard block width.  The paper fixes width
// ~sqrt(n); this sweep shows why: any other split pays more total messages,
// and the post/query balance shifts linearly while the product #P * #Q
// stays >= n (the Proposition 1 floor).
#include <cmath>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/lower_bound.h"
#include "core/rendezvous_matrix.h"
#include "strategies/checkerboard.h"

int main() {
    using namespace mm;
    bench::banner("A1 (ablation): checkerboard block width",
                  "Width w gives #P <= w, #Q <= ceil(n/w): the sum is minimized - and the\n"
                  "2*sqrt(n) bound met - only at w = sqrt(n).");

    const net::node_id n = 256;
    analysis::table t{{"width", "#P", "#Q", "#P*#Q", "m(n)", "vs 2*sqrt(n)", "cache-max"}};
    double best_m = 1e18;
    int best_w = 0;
    for (const int w : {1, 2, 4, 8, 12, 16, 20, 32, 64, 128, 256}) {
        const strategies::checkerboard_strategy s{n, w};
        const auto r = core::rendezvous_matrix::from_strategy(s);
        if (!r.total()) {
            std::cout << "width " << w << ": NOT TOTAL (bug)\n";
            return 1;
        }
        const double m = r.average_message_passes();
        if (m < best_m) {
            best_m = m;
            best_w = w;
        }
        const auto p = s.post_set(0).size();
        const auto q = s.query_set(0).size();
        const auto cache = bench::measure_cache_load(s);
        t.add_row({analysis::table::num(static_cast<std::int64_t>(w)),
                   analysis::table::num(static_cast<std::int64_t>(p)),
                   analysis::table::num(static_cast<std::int64_t>(q)),
                   analysis::table::num(static_cast<std::int64_t>(p * q)),
                   analysis::table::num(m, 1), analysis::table::num(m / 32.0, 2),
                   analysis::table::num(cache.max)});
    }
    std::cout << t.to_string() << "\n";

    bench::metric("best_width", best_w);
    bench::metric("best_avg_message_passes", best_m, "messages");
    bench::metric("bound_2sqrt_n", 2.0 * std::sqrt(static_cast<double>(n)), "messages");
    bench::shape_check("the optimum sits exactly at w = sqrt(n) = 16", best_w == 16);
    bench::shape_check("the optimal m equals the 2*sqrt(n) bound", best_m == 32.0);
    return 0;
}
