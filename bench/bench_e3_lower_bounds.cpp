// E3 - Sections 2.3.2-2.3.3, Propositions 1-2 and corollaries: every
// strategy's m(n) against its own lower bound (2/n) * sum sqrt(k_i).
// Centralized strategies bound at 2, truly distributed ones at 2*sqrt(n).
#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>
#include <string>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/lower_bound.h"
#include "net/hierarchy.h"
#include "strategies/basic.h"
#include "strategies/checkerboard.h"
#include "strategies/cube.h"
#include "strategies/grid.h"
#include "strategies/hash_locate.h"
#include "strategies/hierarchical.h"
#include "strategies/projective.h"

int main() {
    using namespace mm;
    bench::banner(
        "E3: lower bounds, Propositions 1-2 (Sections 2.3.2-2.3.3)",
        "m(n) >= (2/n) sum_i sqrt(k_i); ratio 1.00 means the strategy exactly meets\n"
        "its own load profile's bound.  Prop 1: sum #P#Q >= (sum sqrt(k_i))^2.");

    analysis::table t{{"strategy", "n", "m(n)", "bound", "ratio", "prop1-lhs", "prop1-rhs",
                       "holds"}};
    bool all_hold = true;
    bool optimal_meet = true;
    double worst_ratio = 0;

    const auto add = [&](const core::locate_strategy& s, bool expect_meets_bound = false) {
        const auto r = core::rendezvous_matrix::from_strategy(s, core::port_of("e3"));
        const auto report = core::check_bounds(r);
        all_hold = all_hold && report.all_hold();
        worst_ratio = std::max(worst_ratio, report.optimality_ratio());
        if (s.node_count() == 256)
            bench::metric(std::string{s.name()} + "_256_avg_message_passes",
                          report.average_messages, "messages");
        if (expect_meets_bound && report.optimality_ratio() > 1.0001) optimal_meet = false;
        t.add_row({s.name(), analysis::table::num(static_cast<std::int64_t>(s.node_count())),
                   analysis::table::num(report.average_messages, 2),
                   analysis::table::num(report.message_bound, 2),
                   analysis::table::num(report.optimality_ratio(), 2),
                   analysis::table::num(report.product_sum, 0),
                   analysis::table::num(report.product_sum_bound, 0),
                   report.all_hold() ? "yes" : "NO"});
    };

    for (const net::node_id n : {16, 64, 256}) {
        add(strategies::broadcast_strategy{n});
        add(strategies::sweep_strategy{n});
        add(strategies::central_strategy{n, 0}, /*expect_meets_bound=*/true);
        add(strategies::flood_strategy{n});
        add(strategies::checkerboard_strategy{n}, /*expect_meets_bound=*/true);
        const auto root = static_cast<net::node_id>(std::lround(std::sqrt(n)));
        add(strategies::manhattan_strategy{root, root}, /*expect_meets_bound=*/true);
        add(strategies::hash_locate_strategy{n});
    }
    add(strategies::hypercube_strategy{6}, true);
    add(strategies::projective_strategy{7});
    add(strategies::hierarchical_strategy{net::hierarchy{{4, 4, 4}}});

    std::cout << t.to_string() << "\n";
    bench::metric("worst_optimality_ratio", worst_ratio);
    bench::shape_check("Propositions 1 and 2 hold for every strategy", all_hold);
    bench::shape_check(
        "central, checkerboard, square manhattan and hypercube exactly meet their bounds",
        optimal_meet);
    return 0;
}
