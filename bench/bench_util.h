// bench_util.h - shared helpers for the experiment harness binaries.
//
// Every bench_eNN binary regenerates one table/figure/claim of the paper
// and prints it through these helpers so outputs are uniform: a banner
// naming the paper artifact, the table, and a PASS/FAIL shape check where
// the paper makes a sharp claim.  The emitted report schema is documented
// in docs/BENCHMARKS.md.
//
// Each helper also mirrors what it prints into a json_reporter singleton;
// when the environment variable MM_BENCH_JSON names a file, the report is
// flushed there at process exit.  bench/run_all.sh aggregates the
// per-binary files into BENCH_seed.json, the machine-readable baseline the
// perf trajectory is measured against.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/strategy.h"
#include "net/routing.h"

namespace mm::bench {

// Collects everything a bench binary reports and writes it as one JSON
// object at exit.  Opt-in: without MM_BENCH_JSON in the environment the
// reporter is inert and benches behave exactly as before.
class json_reporter {
public:
    static json_reporter& instance() {
        static json_reporter reporter;
        return reporter;
    }

    void set_experiment(std::string experiment, std::string claim) {
        experiment_ = std::move(experiment);
        claim_ = std::move(claim);
    }

    void add_check(const std::string& what, bool ok) { checks_.emplace_back(what, ok); }

    void add_metric(std::string name, double value, std::string unit) {
        metrics_.push_back(metric_row{std::move(name), value, std::move(unit)});
    }

    json_reporter(const json_reporter&) = delete;
    json_reporter& operator=(const json_reporter&) = delete;

    ~json_reporter() { flush(); }

private:
    struct metric_row {
        std::string name;
        double value;
        std::string unit;
    };

    json_reporter() = default;

    static std::string escape(const std::string& s) {
        std::string out;
        out.reserve(s.size() + 8);
        for (const char c : s) {
            switch (c) {
                case '"': out += "\\\""; break;
                case '\\': out += "\\\\"; break;
                case '\n': out += "\\n"; break;
                case '\t': out += "\\t"; break;
                case '\r': out += "\\r"; break;
                default:
                    if (static_cast<unsigned char>(c) < 0x20) {
                        char buf[8];
                        std::snprintf(buf, sizeof buf, "\\u%04x",
                                      static_cast<unsigned>(static_cast<unsigned char>(c)));
                        out += buf;
                    } else {
                        out += c;
                    }
            }
        }
        return out;
    }

    static void write_number(std::ofstream& out, double value) {
        if (std::isfinite(value))
            out << std::setprecision(17) << value;  // round-trip precision
        else
            out << "null";  // NaN/inf are not valid JSON
    }

    void flush() const {
        const char* path = std::getenv("MM_BENCH_JSON");
        if (path == nullptr || *path == '\0') return;
        std::ofstream out{path};
        if (!out) return;
        std::size_t passed = 0;
        for (const auto& [what, ok] : checks_)
            if (ok) ++passed;
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
        out << "{\n"
            << "  \"experiment\": \"" << escape(experiment_) << "\",\n"
            << "  \"claim\": \"" << escape(claim_) << "\",\n"
            << "  \"elapsed_seconds\": ";
        write_number(out, elapsed);
        out << ",\n"
            << "  \"checks_passed\": " << passed << ",\n"
            << "  \"checks_failed\": " << checks_.size() - passed << ",\n"
            << "  \"checks\": [";
        for (std::size_t i = 0; i < checks_.size(); ++i) {
            out << (i == 0 ? "\n" : ",\n") << "    {\"what\": \"" << escape(checks_[i].first)
                << "\", \"ok\": " << (checks_[i].second ? "true" : "false") << "}";
        }
        out << (checks_.empty() ? "]" : "\n  ]") << ",\n  \"metrics\": [";
        for (std::size_t i = 0; i < metrics_.size(); ++i) {
            const auto& m = metrics_[i];
            out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << escape(m.name)
                << "\", \"value\": ";
            write_number(out, m.value);
            out << ", \"unit\": \"" << escape(m.unit) << "\"}";
        }
        out << (metrics_.empty() ? "]" : "\n  ]") << "\n}\n";
    }

    std::string experiment_;
    std::string claim_;
    std::vector<std::pair<std::string, bool>> checks_;
    std::vector<metric_row> metrics_;
    std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
};

inline void banner(const std::string& experiment, const std::string& claim) {
    json_reporter::instance().set_experiment(experiment, claim);
    std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

inline void shape_check(const std::string& what, bool ok) {
    json_reporter::instance().add_check(what, ok);
    std::cout << (ok ? "[SHAPE OK]   " : "[SHAPE FAIL] ") << what << "\n";
}

// Record a named scalar result; it lands in the JSON report next to the
// shape checks so the perf trajectory can track real measured quantities.
inline void metric(const std::string& name, double value, const std::string& unit = "") {
    json_reporter::instance().add_metric(name, value, unit);
}

// Average routed message passes of one match-making instance on a real
// (non-complete) topology: posts and queries travel over the union of
// shortest paths (spanning subtree broadcast), sampled over node pairs.
inline double routed_cost(const net::routing_table& routes, const core::locate_strategy& s,
                          int stride = 1, core::port_id port = 0) {
    const net::node_id n = s.node_count();
    std::int64_t total = 0;
    std::int64_t pairs = 0;
    for (net::node_id i = 0; i < n; i += stride) {
        const auto p = s.post_set(i, port);
        const auto post_cost = routes.multicast_cost(i, p);
        for (net::node_id j = 0; j < n; j += stride) {
            total += post_cost + routes.multicast_cost(j, s.query_set(j, port));
            ++pairs;
        }
    }
    return pairs == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(pairs);
}

// Resident-set sizes in MiB read from /proc/self/status (Linux); 0 on other
// platforms.  current = VmRSS, peak = VmHWM (the high-water mark the kernel
// tracks for the whole process - it only ever grows, so per-phase readings
// of `peak` are cumulative).
struct rss_reading {
    double current_mb = 0;
    double peak_mb = 0;
};

inline rss_reading read_rss() {
    rss_reading out;
#if defined(__linux__)
    std::ifstream status{"/proc/self/status"};
    std::string line;
    while (std::getline(status, line)) {
        double* field = nullptr;
        if (line.rfind("VmRSS:", 0) == 0) field = &out.current_mb;
        if (line.rfind("VmHWM:", 0) == 0) field = &out.peak_mb;
        if (field != nullptr) {
            long kb = 0;
            if (std::sscanf(line.c_str() + 6, "%ld", &kb) == 1)
                *field = static_cast<double>(kb) / 1024.0;
        }
    }
#endif
    return out;
}

struct cache_load {
    double average = 0;  // mean entries per node, one server per node
    std::int64_t max = 0;
};

// Storage cost: if one server lives at every node, node v caches an entry
// for each server i with v in P(i).
inline cache_load measure_cache_load(const core::locate_strategy& s, core::port_id port = 0) {
    const net::node_id n = s.node_count();
    std::vector<std::int64_t> load(static_cast<std::size_t>(n), 0);
    for (net::node_id i = 0; i < n; ++i)
        for (const net::node_id v : s.post_set(i, port)) ++load[static_cast<std::size_t>(v)];
    cache_load out;
    for (const auto l : load) {
        out.average += static_cast<double>(l);
        out.max = std::max(out.max, l);
    }
    out.average /= static_cast<double>(n);
    return out;
}

}  // namespace mm::bench
