// bench_util.h - shared helpers for the experiment harness binaries.
//
// Every bench_eNN binary regenerates one table/figure/claim of the paper
// (see DESIGN.md's experiment index) and prints it through these helpers so
// outputs are uniform: a banner naming the paper artifact, the table, and a
// PASS/FAIL shape check where the paper makes a sharp claim.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "net/routing.h"

namespace mm::bench {

inline void banner(const std::string& experiment, const std::string& claim) {
    std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

inline void shape_check(const std::string& what, bool ok) {
    std::cout << (ok ? "[SHAPE OK]   " : "[SHAPE FAIL] ") << what << "\n";
}

// Average routed message passes of one match-making instance on a real
// (non-complete) topology: posts and queries travel over the union of
// shortest paths (spanning subtree broadcast), sampled over node pairs.
inline double routed_cost(const net::routing_table& routes, const core::locate_strategy& s,
                          int stride = 1, core::port_id port = 0) {
    const net::node_id n = s.node_count();
    std::int64_t total = 0;
    std::int64_t pairs = 0;
    for (net::node_id i = 0; i < n; i += stride) {
        const auto p = s.post_set(i, port);
        const auto post_cost = routes.multicast_cost(i, p);
        for (net::node_id j = 0; j < n; j += stride) {
            total += post_cost + routes.multicast_cost(j, s.query_set(j, port));
            ++pairs;
        }
    }
    return pairs == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(pairs);
}

struct cache_load {
    double average = 0;  // mean entries per node, one server per node
    std::int64_t max = 0;
};

// Storage cost: if one server lives at every node, node v caches an entry
// for each server i with v in P(i).
inline cache_load measure_cache_load(const core::locate_strategy& s, core::port_id port = 0) {
    const net::node_id n = s.node_count();
    std::vector<std::int64_t> load(static_cast<std::size_t>(n), 0);
    for (net::node_id i = 0; i < n; ++i)
        for (const net::node_id v : s.post_set(i, port)) ++load[static_cast<std::size_t>(v)];
    cache_load out;
    for (const auto l : load) {
        out.average += static_cast<double>(l);
        out.max = std::max(out.max, l);
    }
    out.average /= static_cast<double>(n);
    return out;
}

}  // namespace mm::bench
