// A5 (ablation) - locality-scoped Hash Locate (Section 5 opening).
// "Nearly every service will be a local service in some sense, with only
// few services being truly global.  Under these assumptions, the burden of
// the processing of locate postings and requests can be distributed more
// or less evenly over the hosts at each level of the network hierarchy."
// This bench registers a realistic service mix and measures exactly that
// load distribution, against a flat (global-only) hash for contrast.
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "net/hierarchy.h"
#include "runtime/name_service.h"
#include "sim/rng.h"
#include "strategies/hash_locate.h"
#include "strategies/scoped_hash.h"

namespace {

using namespace mm;

// 8 hosts x 8 LANs x 4 campuses.
const net::hierarchy topology{{8, 8, 4}};

int scope_policy(core::port_id port) {
    // Service mix: most ports local, some campus-wide, few global.
    const auto h = port % 10;
    if (h < 7) return 1;
    if (h < 9) return 2;
    return 3;
}

struct load_stats {
    std::int64_t busiest = 0;
    double mean = 0;
    int idle_nodes = 0;
};

template <typename Strategy>
load_stats run_mix(const Strategy& strategy) {
    const auto g = net::make_hierarchical_graph(topology);
    sim::simulator sim{g};
    runtime::name_service ns{sim, strategy};
    sim::rng random{13};

    // 96 services spread over the network; each gets 6 locates from clients
    // inside its scope (local traffic dominates, per the paper).
    for (int svc = 0; svc < 96; ++svc) {
        const auto port = core::port_of("svc" + std::to_string(svc));
        const auto host =
            static_cast<net::node_id>(random.uniform(0, topology.node_count() - 1));
        ns.register_server(port, host);
        const int level = scope_policy(port);
        const net::node_id cluster_size = topology.cluster_size(level);
        const net::node_id base =
            static_cast<net::node_id>(topology.cluster_of(level, host)) * cluster_size;
        for (int q = 0; q < 6; ++q) {
            const auto client =
                static_cast<net::node_id>(base + random.uniform(0, cluster_size - 1));
            (void)ns.locate(port, client);
        }
    }
    load_stats out;
    std::int64_t total = 0;
    for (net::node_id v = 0; v < g.node_count(); ++v) {
        const auto t = sim.traffic(v);
        total += t;
        out.busiest = std::max(out.busiest, t);
        if (t == 0) ++out.idle_nodes;
    }
    out.mean = static_cast<double>(total) / g.node_count();
    return out;
}

}  // namespace

int main() {
    bench::banner("A5 (ablation): locality-scoped vs flat hash locate (Section 5)",
                  "96 services (70% local, 20% campus, 10% global) on an 8x8x4 hierarchy;\n"
                  "traffic per node under scope-aware hashing vs one global hash.");

    const strategies::scoped_hash_strategy scoped{topology, 0, scope_policy, 1};
    const strategies::hash_locate_strategy flat{topology.node_count(), 1};

    const auto scoped_load = run_mix(scoped);
    const auto flat_load = run_mix(flat);

    analysis::table t{{"hashing", "busiest node", "mean traffic", "idle nodes", "peak/mean"}};
    t.add_row({"scoped (per level)", analysis::table::num(scoped_load.busiest),
               analysis::table::num(scoped_load.mean, 1),
               analysis::table::num(static_cast<std::int64_t>(scoped_load.idle_nodes)),
               analysis::table::num(scoped_load.busiest / scoped_load.mean, 1)});
    t.add_row({"flat (global)", analysis::table::num(flat_load.busiest),
               analysis::table::num(flat_load.mean, 1),
               analysis::table::num(static_cast<std::int64_t>(flat_load.idle_nodes)),
               analysis::table::num(flat_load.busiest / flat_load.mean, 1)});
    std::cout << t.to_string() << "\n";
    bench::metric("scoped_busiest_node_traffic", static_cast<double>(scoped_load.busiest),
                  "messages");
    bench::metric("flat_busiest_node_traffic", static_cast<double>(flat_load.busiest),
                  "messages");
    bench::metric("scoped_peak_over_mean", scoped_load.busiest / scoped_load.mean);
    bench::metric("flat_peak_over_mean", flat_load.busiest / flat_load.mean);
    bench::metric("scoped_mean_traffic", scoped_load.mean, "messages");
    bench::metric("flat_mean_traffic", flat_load.mean, "messages");
    std::cout << "Scoped hashing keeps local locate traffic inside its cluster: both the\n"
                 "busiest node's absolute load and the peak/mean imbalance drop - \"the\n"
                 "burden ... distributed more or less evenly over the hosts at each\n"
                 "level\".  (It also spends less total traffic, since local lookups take\n"
                 "short routes.)\n\n";

    bench::shape_check("scoped hashing lowers the busiest node's load",
                       scoped_load.busiest < flat_load.busiest);
    bench::shape_check("scoped hashing lowers the peak/mean imbalance",
                       scoped_load.busiest / scoped_load.mean <
                           flat_load.busiest / flat_load.mean);
    return 0;
}
