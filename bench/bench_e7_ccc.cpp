// E7 - Section 3.3: cube-connected cycles.  "An algorithm similar to that
// of the d-dimensional cube yields, appropriately tuned, for an n-node CCC
// network caches of size ~sqrt(n/log n) and m(n) ~ O(sqrt(n log n))."
#include <cmath>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/rendezvous_matrix.h"
#include "net/topologies.h"
#include "strategies/cube.h"

int main() {
    using namespace mm;
    bench::banner("E7: cube-connected cycles (Section 3.3)",
                  "Corner-splitting fanned over whole cycles.  Addressed nodes per match\n"
                  "track 2*sqrt(n*log n); rendezvous sets are whole d-cycles (built-in\n"
                  "d-fold redundancy).");

    analysis::table sweep{
        {"d", "n=d*2^d", "#P", "#Q", "m(n)", "2*sqrt(n log n)", "ratio", "routed", "cache-max"}};
    bool tracks = true;
    for (const int d : {3, 4, 5, 6, 7, 8, 9}) {
        const strategies::ccc_strategy s{d};
        const net::node_id n = s.node_count();
        const double m = core::average_message_passes(s);
        const double predicted =
            2.0 * std::sqrt(static_cast<double>(n) * std::log2(static_cast<double>(n)));
        const double ratio = m / predicted;
        if (ratio < 0.4 || ratio > 1.6) tracks = false;
        if (d == 9) {
            bench::metric("ccc_d9_avg_message_passes", m, "messages");
            bench::metric("ccc_d9_ratio_vs_sqrt_nlogn", ratio);
        }
        std::string routed = "-";
        if (d <= 6) {
            const auto g = net::make_ccc(d);
            const net::routing_table routes{g};
            routed = analysis::table::num(bench::routed_cost(routes, s, d >= 5 ? 16 : 4), 1);
        }
        const auto cache = bench::measure_cache_load(s);
        sweep.add_row({analysis::table::num(static_cast<std::int64_t>(d)),
                       analysis::table::num(static_cast<std::int64_t>(n)),
                       analysis::table::num(static_cast<std::int64_t>(s.post_set(0).size())),
                       analysis::table::num(static_cast<std::int64_t>(s.query_set(0).size())),
                       analysis::table::num(m, 1), analysis::table::num(predicted, 1),
                       analysis::table::num(ratio, 2), routed,
                       analysis::table::num(cache.max)});
    }
    std::cout << sweep.to_string() << "\n";

    bench::shape_check("m(n) tracks 2*sqrt(n log n) within [0.4, 1.6]x across d = 3..9", tracks);

    // Redundancy: rendezvous sets are full d-cycles.
    const strategies::ccc_strategy s{4};
    const auto r = core::rendezvous_matrix::from_strategy(s);
    bool cycles = true;
    for (net::node_id i = 0; i < s.node_count() && cycles; i += 7)
        for (net::node_id j = 0; j < s.node_count(); j += 5)
            if (r.entry(i, j).size() != 4u) {
                cycles = false;
                break;
            }
    bench::shape_check("every rendezvous set is a whole d-cycle (f+1 redundancy, f = d-1)",
                       cycles);
    return 0;
}
