// E11 - Section 3, opening: the generic scheme for arbitrary connected
// networks.  Partition into connected ~sqrt(n) parts with full label sets;
// servers post to their label everywhere (O(n) routed passes), clients
// broadcast inside their own part (<= ~sqrt(n)), caches stay O(sqrt(n)).
#include <cmath>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/rendezvous_matrix.h"
#include "net/partition.h"
#include "net/random_graphs.h"
#include "net/topologies.h"
#include "runtime/name_service.h"
#include "strategies/partition_strategy.h"

int main() {
    using namespace mm;
    bench::banner("E11: generic scheme on arbitrary connected graphs (Section 3)",
                  "Server: post to every node carrying its label, O(n) routed passes.\n"
                  "Client: broadcast in its own connected part, <= ~sqrt(n) passes.");

    struct topo_case {
        std::string label;
        net::graph graph;
    };
    std::vector<topo_case> cases;
    cases.push_back({"grid 16x16", net::make_grid(16, 16)});
    cases.push_back({"ring 256", net::make_ring(256)});
    cases.push_back({"tree b3 d5", net::make_balanced_tree(3, 5)});
    cases.push_back({"uucp-like 256", net::make_uucp_like(256, 128, 7u)});

    analysis::table t{{"topology", "n", "parts", "labels", "m(n) addr", "server routed",
                       "client routed", "cache-max"}};
    bool client_cheap = true;
    for (auto& c : cases) {
        const net::node_id n = c.graph.node_count();
        const auto part = net::partition_connected(c.graph);
        const strategies::partition_strategy s{part};
        const net::routing_table routes{c.graph};
        // Server-side routed cost: multicast posts to the label set.
        double server_cost = 0;
        double client_cost = 0;
        const int stride = 7;
        int samples = 0;
        for (net::node_id v = 0; v < n; v += stride) {
            server_cost += static_cast<double>(routes.multicast_cost(v, s.post_set(v)));
            client_cost += static_cast<double>(routes.multicast_cost(v, s.query_set(v)));
            ++samples;
        }
        server_cost /= samples;
        client_cost /= samples;
        // The client side must stay ~sqrt(n): parts are capped below
        // 2*ceil(sqrt(n)) nodes, so the routed broadcast is below ~2*sqrt(n).
        if (client_cost > 2.5 * std::sqrt(static_cast<double>(n))) client_cheap = false;
        const auto cache = bench::measure_cache_load(s);
        std::string prefix = c.label.substr(0, c.label.find(' '));
        bench::metric(prefix + "_server_routed_cost", server_cost, "hops");
        bench::metric(prefix + "_client_routed_cost", client_cost, "hops");
        t.add_row({c.label, analysis::table::num(static_cast<std::int64_t>(n)),
                   analysis::table::num(static_cast<std::int64_t>(part.part_count())),
                   analysis::table::num(static_cast<std::int64_t>(part.label_count)),
                   analysis::table::num(core::average_message_passes(s), 1),
                   analysis::table::num(server_cost, 1), analysis::table::num(client_cost, 1),
                   analysis::table::num(cache.max)});
    }
    std::cout << t.to_string() << "\n";

    // End-to-end: the runtime locates across the partition strategy on a grid.
    const auto grid = net::make_grid(10, 10);
    sim::simulator sim{grid};
    const strategies::partition_strategy strategy{net::partition_connected(grid)};
    runtime::name_service ns{sim, strategy};
    const core::port_id port = core::port_of("generic-service");
    ns.register_server(port, 57);
    int found = 0;
    for (net::node_id client = 0; client < 100; client += 9)
        if (ns.locate(port, client).found) ++found;
    std::cout << "Runtime locate drill on the 10x10 grid: " << found << "/12 clients found "
              << "the server.\n\n";

    bench::shape_check("client broadcast cost stays O(sqrt(n)) on all topologies", client_cheap);
    bench::shape_check("all runtime locates succeeded", found == 12);
    return 0;
}
