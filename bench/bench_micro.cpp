// Micro-benchmarks (google-benchmark): the hot paths of the library -
// strategy set generation, matrix construction, cache operations, routing
// table builds and simulator throughput.
#include <benchmark/benchmark.h>

#include "core/cache.h"
#include "core/certify.h"
#include "core/rendezvous_matrix.h"
#include "net/gf.h"
#include "net/partition.h"
#include "net/projective_plane.h"
#include "net/routing.h"
#include "net/topologies.h"
#include "runtime/name_service.h"
#include "sim/simulator.h"
#include "strategies/checkerboard.h"
#include "strategies/cube.h"
#include "strategies/grid.h"
#include "strategies/hash_locate.h"

namespace {

using namespace mm;

void bm_checkerboard_post_set(benchmark::State& state) {
    const strategies::checkerboard_strategy s{static_cast<net::node_id>(state.range(0))};
    net::node_id v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(s.post_set(v));
        v = (v + 1) % s.node_count();
    }
}
BENCHMARK(bm_checkerboard_post_set)->Arg(64)->Arg(1024)->Arg(16384);

void bm_hypercube_post_set(benchmark::State& state) {
    const strategies::hypercube_strategy s{static_cast<int>(state.range(0))};
    net::node_id v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(s.post_set(v));
        v = (v + 1) % s.node_count();
    }
}
BENCHMARK(bm_hypercube_post_set)->Arg(8)->Arg(12)->Arg(16);

void bm_hash_locate_set(benchmark::State& state) {
    const strategies::hash_locate_strategy s{1024, static_cast<int>(state.range(0))};
    core::port_id port = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(s.post_set(0, port));
        ++port;
    }
}
BENCHMARK(bm_hash_locate_set)->Arg(1)->Arg(4);

void bm_matrix_build(benchmark::State& state) {
    const strategies::checkerboard_strategy s{static_cast<net::node_id>(state.range(0))};
    for (auto _ : state)
        benchmark::DoNotOptimize(core::rendezvous_matrix::from_strategy(s));
}
BENCHMARK(bm_matrix_build)->Arg(16)->Arg(64)->Arg(256);

void bm_matrix_free_cost(benchmark::State& state) {
    const strategies::checkerboard_strategy s{static_cast<net::node_id>(state.range(0))};
    for (auto _ : state) benchmark::DoNotOptimize(core::average_message_passes(s));
}
BENCHMARK(bm_matrix_free_cost)->Arg(256)->Arg(4096);

void bm_cache_post_lookup(benchmark::State& state) {
    core::port_cache cache;
    std::uint64_t port = 0;
    for (auto _ : state) {
        core::port_entry e;
        e.port = port % 4096;
        e.where = static_cast<net::node_id>(port % 64);
        e.stamp = static_cast<std::int64_t>(port);
        cache.post(e);
        benchmark::DoNotOptimize(cache.lookup(port % 4096));
        ++port;
    }
}
BENCHMARK(bm_cache_post_lookup);

void bm_bounded_cache_post(benchmark::State& state) {
    core::bounded_port_cache cache{static_cast<std::size_t>(state.range(0))};
    std::uint64_t port = 0;
    for (auto _ : state) {
        core::port_entry e;
        e.port = port;
        e.stamp = static_cast<std::int64_t>(port);
        cache.post(e);
        ++port;
    }
}
BENCHMARK(bm_bounded_cache_post)->Arg(64)->Arg(4096);

void bm_routing_build(benchmark::State& state) {
    const auto g = net::make_grid(static_cast<net::node_id>(state.range(0)),
                                  static_cast<net::node_id>(state.range(0)));
    for (auto _ : state) {
        net::routing_table routes{g};
        // path() materializes one full BFS row; plain distance() would take
        // the row-free bidirectional fast path and build nothing.
        benchmark::DoNotOptimize(routes.path(0, g.node_count() - 1));
    }
}
BENCHMARK(bm_routing_build)->Arg(16)->Arg(32)->Arg(64);

void bm_routing_bidirectional_distance(benchmark::State& state) {
    const auto g = net::make_grid(static_cast<net::node_id>(state.range(0)),
                                  static_cast<net::node_id>(state.range(0)));
    const net::routing_table routes{g};  // cold: no rows ever materialize
    net::node_id a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(routes.distance(a, g.node_count() - 1 - a));
        a = (a + 1) % g.node_count();
    }
}
BENCHMARK(bm_routing_bidirectional_distance)->Arg(32)->Arg(64);

void bm_partition(benchmark::State& state) {
    const auto g = net::make_grid(static_cast<net::node_id>(state.range(0)),
                                  static_cast<net::node_id>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(net::partition_connected(g));
}
BENCHMARK(bm_partition)->Arg(8)->Arg(32);

// No-op receiver: an unattached destination would short-circuit the send.
class sink final : public sim::node_handler {
public:
    void on_message(sim::simulator&, const sim::message&) override {}
};

void bm_simulator_unicast(benchmark::State& state) {
    const auto g = net::make_grid(16, 16);
    const bool batched = state.range(0) != 0;
    for (auto _ : state) {
        state.PauseTiming();
        sim::simulator sim{g};
        sim.set_batched_delivery(batched);
        auto rx = std::make_shared<sink>();
        for (int k = 0; k < 64; ++k) sim.attach(static_cast<net::node_id>(255 - k), rx);
        state.ResumeTiming();
        for (int k = 0; k < 64; ++k) {
            sim::message msg;
            msg.source = static_cast<net::node_id>(k);
            msg.destination = static_cast<net::node_id>(255 - k);
            sim.send(msg);
        }
        sim.run();
    }
}
BENCHMARK(bm_simulator_unicast)->Arg(0)->Arg(1);

void bm_certify(benchmark::State& state) {
    const strategies::checkerboard_strategy s{static_cast<net::node_id>(state.range(0))};
    for (auto _ : state) benchmark::DoNotOptimize(core::certify(s));
}
BENCHMARK(bm_certify)->Arg(16)->Arg(64);

void bm_gf_construction(benchmark::State& state) {
    for (auto _ : state) benchmark::DoNotOptimize(net::finite_field{static_cast<int>(state.range(0))});
}
BENCHMARK(bm_gf_construction)->Arg(16)->Arg(64)->Arg(81);

void bm_projective_plane(benchmark::State& state) {
    for (auto _ : state)
        benchmark::DoNotOptimize(net::projective_plane{static_cast<int>(state.range(0))});
}
BENCHMARK(bm_projective_plane)->Arg(5)->Arg(9);

void bm_name_service_locate(benchmark::State& state) {
    const auto g = net::make_complete(static_cast<net::node_id>(state.range(0)));
    const strategies::checkerboard_strategy strategy{static_cast<net::node_id>(state.range(0))};
    sim::simulator sim{g};
    runtime::name_service ns{sim, strategy};
    ns.register_server(core::port_of("bench"), 0);
    net::node_id client = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ns.locate(core::port_of("bench"), client));
        client = (client + 1) % strategy.node_count();
    }
}
BENCHMARK(bm_name_service_locate)->Arg(64)->Arg(256);

}  // namespace

// main() comes from benchmark::benchmark_main (see bench/CMakeLists.txt).
