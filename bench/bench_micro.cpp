// Micro-benchmarks: the per-operation cost table (pose64-style).
//
// Each row times one primitive the simulator or runtime leans on per
// message / per operation - counter bumps, tag accounting, event
// schedule+pop through the calendar queue, a full message enqueue->deliver,
// routing-row builds, rendezvous intersections at several sizes, and
// hint-cache hits/misses - and reports best-of-reps ns/op through the
// standard json_reporter, so bench_diff tracks the trajectory of every row
// in BENCH_*.json.  Everything is measured through the public API of the
// real implementation (no mocks), so the table moves when the hot paths do.
//
// Alongside each timed row the harness emits deterministic companion
// metrics (result sizes, delivered counts, pop counts) under counter-style
// units; those gate at threshold 0 in CI while the ns/op rows stay
// warn-only (timing noise is expected, drift in results is not).
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/cache.h"
#include "core/strategy.h"
#include "net/routing.h"
#include "net/topologies.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "strategies/checkerboard.h"

namespace {

using namespace mm;
using clock_type = std::chrono::steady_clock;

// Keeps a value alive past the optimizer without a volatile write per use.
template <class T>
inline void escape(T& value) {
    asm volatile("" : : "g"(&value) : "memory");
}

// splitmix64: the repo-wide seeded generator idiom; fixed seeds per row so
// every companion metric is bit-stable run to run.
std::uint64_t mix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

// `body` runs `iters` operations; the row reports the best repetition
// (min-of-reps filters scheduler noise far better than the mean on a
// shared box).
template <class F>
double time_row(int reps, std::int64_t iters, F&& body) {
    double best_ns = 1e300;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = clock_type::now();
        body();
        const double ns =
            std::chrono::duration<double, std::nano>(clock_type::now() - t0).count();
        best_ns = std::min(best_ns, ns / static_cast<double>(iters));
    }
    return best_ns;
}

struct row_result {
    std::string name;
    double ns_per_op = 0;
};

std::vector<row_result> g_rows;

void row(const std::string& name, double ns) {
    g_rows.push_back({name, ns});
    bench::metric("op_" + name + "_ns", ns, "ns/op");
}

// Sorted random set of `size` distinct ids drawn from [0, universe).
core::node_set random_set(std::uint64_t seed, net::node_id size, net::node_id universe) {
    std::uint64_t state = seed;
    std::vector<bool> taken(static_cast<std::size_t>(universe), false);
    core::node_set out;
    out.reserve(static_cast<std::size_t>(size));
    while (out.size() < static_cast<std::size_t>(size)) {
        const auto v = static_cast<net::node_id>(mix64(state) % static_cast<std::uint64_t>(universe));
        if (!taken[static_cast<std::size_t>(v)]) {
            taken[static_cast<std::size_t>(v)] = true;
            out.push_back(v);
        }
    }
    core::normalize_set(out);
    return out;
}

// Reference scalar intersection the fast paths must agree with.
std::size_t reference_intersection_size(const core::node_set& a, const core::node_set& b) {
    std::size_t n = 0;
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
        if (*ia < *ib)
            ++ia;
        else if (*ib < *ia)
            ++ib;
        else
            ++n, ++ia, ++ib;
    }
    return n;
}

// No-op receiver; an unattached destination would short-circuit the send.
class sink final : public sim::node_handler {
public:
    void on_message(sim::simulator&, const sim::message&) override {}
    void on_timer(sim::simulator&, std::int64_t) override {}
};

// --- rows -------------------------------------------------------------------

void row_counter_bump() {
    sim::metrics m;
    constexpr std::int64_t iters = 2'000'000;
    const double ns = time_row(5, iters, [&] {
        for (std::int64_t i = 0; i < iters; ++i) m.add(sim::counter_hops);
    });
    row("counter_bump", ns);
    bench::metric("det_counter_bump_total", static_cast<double>(m.get(sim::counter_hops) / (5 * iters)),
                  "operations");
}

void row_counter_bump_dynamic() {
    sim::metrics m;
    std::vector<std::string> names;
    for (int i = 0; i < 64; ++i) names.push_back("dyn_counter_" + std::to_string(i));
    constexpr std::int64_t iters = 1'000'000;
    const double ns = time_row(5, iters, [&] {
        for (std::int64_t i = 0; i < iters; ++i)
            m.add(names[static_cast<std::size_t>(i & 63)]);
    });
    row("counter_bump_dynamic", ns);
    bench::metric("det_counter_dynamic_keys", 64.0, "entries");
}

// One full message: top-level send -> calendar queue -> (batched) delivery,
// counters and traffic credited.  The per-message figure includes its fair
// share of tick advancement.  The tagged variant additionally pays per-tag
// hop accounting plus the end-of-operation drop_tag, mirroring the
// name-service op lifecycle; the tag_account row is the difference.
double deliver_row(bool tagged) {
    const auto g = net::make_grid(16, 16);
    sim::simulator sim{g};
    auto rx = std::make_shared<sink>();
    for (int k = 0; k < 64; ++k) sim.attach(static_cast<net::node_id>(255 - k), rx);
    constexpr int rounds = 16;
    constexpr std::int64_t iters = rounds * 64;
    std::int64_t next_tag = 1;
    const double ns = time_row(5, iters, [&] {
        for (int r = 0; r < rounds; ++r) {
            for (int k = 0; k < 64; ++k) {
                sim::message msg;
                msg.source = static_cast<net::node_id>(k);
                msg.destination = static_cast<net::node_id>(255 - k);
                if (tagged) msg.tag = next_tag + k;
                sim.send(msg);
            }
            sim.run();
            if (tagged) {
                for (int k = 0; k < 64; ++k) sim.drop_tag(next_tag + k);
                next_tag += 64;
            }
        }
    });
    if (!tagged) {
        bench::metric("det_deliver_messages",
                      static_cast<double>(sim.stats().get(sim::counter_messages_delivered)),
                      "messages");
        bench::metric("det_deliver_hops", static_cast<double>(sim.stats().get(sim::counter_hops)),
                      "hops");
    }
    return ns;
}

void row_event_schedule_pop() {
    const auto g = net::make_grid(4, 4);
    sim::simulator sim{g};
    sim.attach(0, std::make_shared<sink>());
    constexpr std::int64_t timers = 8192;
    std::int64_t pops = 0;
    const double ns = time_row(5, timers, [&] {
        for (std::int64_t k = 0; k < timers; ++k)
            sim.set_timer(0, 1 + (k & 255), k);
        sim.run();
        pops += timers;
    });
    row("event_schedule_pop", ns);
    bench::metric("det_event_pops", static_cast<double>(pops / 5), "operations");
}

void row_routing() {
    const auto g = net::make_grid(32, 32);
    constexpr std::int64_t builds = 64;
    const double ns = time_row(5, builds, [&] {
        for (std::int64_t i = 0; i < builds; ++i) {
            net::routing_table routes{g};
            // path() materializes one full BFS row; plain distance() would
            // take the row-free bidirectional fast path and build nothing.
            auto p = routes.path(0, g.node_count() - 1);
            escape(p);
        }
    });
    row("routing_row_build", ns);

    const auto g64 = net::make_grid(64, 64);
    const net::routing_table routes{g64};  // cold: no rows ever materialize
    constexpr std::int64_t iters = 20'000;
    std::int64_t total = 0;
    const double ns2 = time_row(5, iters, [&] {
        net::node_id a = 0;
        for (std::int64_t i = 0; i < iters; ++i) {
            total += routes.distance(a, g64.node_count() - 1 - a);
            a = (a + 1) % g64.node_count();
        }
    });
    escape(total);
    row("routing_bidi_distance", ns2);
}

void row_intersections() {
    struct shape {
        const char* label;
        net::node_id size_a;
        net::node_id size_b;
    };
    // The {4..4096} balanced ladder of the cost table plus one skewed pair
    // (the galloping regime: a small query set against a big post set).
    const shape shapes[] = {
        {"4", 4, 4},         {"32", 32, 32},           {"256", 256, 256},
        {"4096", 4096, 4096}, {"skew_32_4096", 32, 4096},
    };
    bool sizes_ok = true;
    for (const auto& s : shapes) {
        const net::node_id universe = 16 * std::max(s.size_a, s.size_b);
        const auto a = random_set(0x1234u + static_cast<std::uint64_t>(s.size_a), s.size_a, universe);
        const auto b = random_set(0x9876u + static_cast<std::uint64_t>(s.size_b), s.size_b, universe);
        const std::int64_t iters = std::max<std::int64_t>(2000, 400'000 / (s.size_a + s.size_b));
        std::size_t last = 0;
        const double ns = time_row(5, iters, [&] {
            for (std::int64_t i = 0; i < iters; ++i) {
                auto out = core::intersect_sets(a, b);
                last = out.size();
                escape(out);
            }
        });
        row(std::string("intersect_") + s.label, ns);
        bench::metric(std::string("det_intersect_") + s.label + "_size",
                      static_cast<double>(last), "elements");
        sizes_ok = sizes_ok && last == reference_intersection_size(a, b);

        bool hit = false;
        const double ns_b = time_row(5, iters, [&] {
            for (std::int64_t i = 0; i < iters; ++i) {
                hit = core::sets_intersect(a, b);
                escape(hit);
            }
        });
        row(std::string("sets_intersect_") + s.label, ns_b);
        sizes_ok = sizes_ok && hit == (reference_intersection_size(a, b) > 0);
    }
    bench::shape_check("intersection fast paths agree with the scalar reference", sizes_ok);
}

void row_hint_cache() {
    core::port_cache cache;
    for (std::uint64_t p = 0; p < 4096; ++p) {
        core::port_entry e;
        e.port = p;
        e.where = static_cast<net::node_id>(p & 63);
        e.stamp = static_cast<std::int64_t>(p);
        cache.post(e);
    }
    constexpr std::int64_t iters = 2'000'000;
    std::int64_t hits = 0;
    const double ns_hit = time_row(5, iters, [&] {
        std::uint64_t p = 0;
        for (std::int64_t i = 0; i < iters; ++i) {
            hits += cache.lookup(p).has_value() ? 1 : 0;
            p = (p + 1) & 4095;
        }
    });
    row("hint_cache_hit", ns_hit);
    std::int64_t misses = 0;
    const double ns_miss = time_row(5, iters, [&] {
        std::uint64_t p = 4096;
        for (std::int64_t i = 0; i < iters; ++i) {
            misses += cache.lookup(p).has_value() ? 0 : 1;
            p = 4096 + ((p + 1) & 4095);
        }
    });
    row("hint_cache_miss", ns_miss);
    bench::shape_check("hint cache hits where populated, misses where not",
                       hits == 5 * iters && misses == 5 * iters);
}

void row_post_set() {
    const strategies::checkerboard_strategy s{1024};
    constexpr std::int64_t iters = 20'000;
    std::size_t total = 0;
    const double ns = time_row(5, iters, [&] {
        net::node_id v = 0;
        for (std::int64_t i = 0; i < iters; ++i) {
            auto p = s.post_set(v);
            total += p.size();
            escape(p);
            v = (v + 1) % s.node_count();
        }
    });
    escape(total);
    row("post_set_build_1024", ns);
}

}  // namespace

int main() {
    bench::banner("micro: per-operation cost table",
                  "ns/op for the simulator's per-message/per-op primitives:\n"
                  "counter bumps, tag accounting, event schedule+pop, message\n"
                  "enqueue->deliver, routing-row builds, rendezvous intersections,\n"
                  "hint-cache probes.  Deterministic companions gate at zero drift.");

    row_counter_bump();
    row_counter_bump_dynamic();
    const double untagged = deliver_row(false);
    row("msg_enqueue_deliver", untagged);
    const double tagged = deliver_row(true);
    row("msg_enqueue_deliver_tagged", tagged);
    row("tag_account", std::max(0.0, tagged - untagged));
    row_event_schedule_pop();
    row_routing();
    row_intersections();
    row_hint_cache();
    row_post_set();

    analysis::table t{{"operation", "ns/op"}};
    for (const auto& r : g_rows) t.add_row({r.name, analysis::table::num(r.ns_per_op, 1)});
    std::cout << "\n" << t.to_string() << "\n";

    bench::metric("det_table_rows", static_cast<double>(g_rows.size()), "entries");
    bench::shape_check("cost table covers every ISSUE row",
                       g_rows.size() >= 15);
    return 0;
}
