// E10 - Section 3.6: existing networks.  Reproduces the paper's UUCPnet
// degree table (August 15, 1984), checks its published totals, runs the
// path-to-root strategy on a synthetic UUCP-like tree, and evaluates the
// balanced-tree depth formulas.
#include <cmath>
#include <iostream>

#include "analysis/table.h"
#include "analysis/uucp.h"
#include "bench_util.h"
#include "core/rendezvous_matrix.h"
#include "net/degree_sequence.h"
#include "net/random_graphs.h"
#include "net/topologies.h"
#include "strategies/tree_path.h"

int main() {
    using namespace mm;
    bench::banner("E10: UUCPnet statistics and tree strategies (Section 3.6)",
                  "The paper's degree table (degrees 16-24 reconstructed from the published\n"
                  "totals, marked *), the path-to-root strategy cost m(n) = O(depth), and\n"
                  "the tree depth formulas.");

    // The degree table, two column pairs like the paper's layout.
    analysis::table degrees{{"#sites", "degree", "", "#sites ", "degree "}};
    const auto& rows = analysis::uucp_degree_table();
    const std::size_t half = (rows.size() + 1) / 2;
    for (std::size_t r = 0; r < half; ++r) {
        const auto left = rows[r];
        std::string ls = analysis::table::num(static_cast<std::int64_t>(left.sites)) +
                         (left.reconstructed ? "*" : "");
        std::string rs;
        std::string rd;
        if (half + r < rows.size()) {
            const auto right = rows[half + r];
            rs = analysis::table::num(static_cast<std::int64_t>(right.sites)) +
                 (right.reconstructed ? "*" : "");
            rd = analysis::table::num(static_cast<std::int64_t>(right.degree));
        }
        degrees.add_row({ls, analysis::table::num(static_cast<std::int64_t>(left.degree)), "",
                         rs, rd});
    }
    std::cout << degrees.to_string() << "\n";
    std::cout << "totals: " << analysis::table_site_count(rows) << " sites (paper: "
              << analysis::uucp_total_sites << "), degree sum "
              << analysis::table_degree_sum(rows) << " = 2 x " << analysis::uucp_total_edges
              << " edges; EUnet " << analysis::eunet_total_sites << " sites / "
              << analysis::eunet_total_edges << " edges.\n\n";

    // Path-to-root strategy on synthetic UUCP-like trees.
    analysis::table tree_costs{{"n", "tree depth l", "m(n)", "2l", "max cache"}};
    bool cost_tracks_depth = true;
    for (const net::node_id n : {128, 512, 1916}) {
        const auto parent = net::make_preferential_tree_parents(n, 84u);
        const strategies::tree_path_strategy s{parent, /*include_self=*/true};
        int depth = 0;
        for (net::node_id v = 0; v < n; ++v) depth = std::max(depth, s.depth_of(v));
        const double m = core::average_message_passes(s);
        if (m > 2.0 * (depth + 1)) cost_tracks_depth = false;
        const auto cache = bench::measure_cache_load(s);
        tree_costs.add_row({analysis::table::num(static_cast<std::int64_t>(n)),
                            analysis::table::num(static_cast<std::int64_t>(depth)),
                            analysis::table::num(m, 1),
                            analysis::table::num(static_cast<std::int64_t>(2 * depth)),
                            analysis::table::num(cache.max)});
    }
    std::cout << "Path-to-root match-making on preferential (UUCP-like) trees:\n"
              << tree_costs.to_string() << "\n";

    // Rebuild the 1984 UUCPnet with its exact degree sequence (Havel-Hakimi
    // + degree-preserving rewiring) and run the path-to-root strategy on a
    // BFS spanning tree rooted at the highest-degree site (ihnp4).
    {
        std::vector<std::pair<int, int>> histogram;
        for (const auto& row : rows) histogram.emplace_back(row.sites, row.degree);
        const auto degrees = net::degrees_from_histogram(histogram);
        const auto g = net::make_connected_graph_with_degrees(degrees);
        // Restrict to the connected positive-degree sites: relabel.
        net::node_id root = 0;
        for (net::node_id v = 0; v < g.node_count(); ++v)
            if (g.degree(v) > g.degree(root)) root = v;
        std::cout << "Exact-degree UUCPnet rebuild: " << g.summary() << ", hub degree "
                  << g.degree(root) << " (ihnp4's 641).\n";
        // Spanning tree over the giant component only.
        std::vector<net::node_id> sub;  // positive-degree nodes
        for (net::node_id v = 0; v < g.node_count(); ++v)
            if (g.degree(v) > 0) sub.push_back(v);
        // Build the induced relabeled graph.
        std::vector<net::node_id> relabel(static_cast<std::size_t>(g.node_count()),
                                          net::invalid_node);
        for (std::size_t i = 0; i < sub.size(); ++i)
            relabel[static_cast<std::size_t>(sub[i])] = static_cast<net::node_id>(i);
        net::graph giant{static_cast<net::node_id>(sub.size())};
        for (const net::node_id v : sub)
            for (const net::node_id w : g.neighbors(v))
                if (w > v)
                    giant.add_edge(relabel[static_cast<std::size_t>(v)],
                                   relabel[static_cast<std::size_t>(w)]);
        const auto parent =
            net::spanning_tree_parents(giant, relabel[static_cast<std::size_t>(root)]);
        const strategies::tree_path_strategy s{parent, /*include_self=*/true};
        int depth = 0;
        double depth_sum = 0;
        for (net::node_id v = 0; v < giant.node_count(); ++v) {
            depth = std::max(depth, s.depth_of(v));
            depth_sum += s.depth_of(v);
        }
        const double mean_depth = depth_sum / giant.node_count();
        const double m = core::average_message_passes(s);
        const double flat = 2.0 * std::sqrt(static_cast<double>(giant.node_count()));
        std::cout << "BFS tree from the hub: mean depth "
                  << analysis::table::num(mean_depth, 1) << " (max " << depth
                  << ", inflated by our degree-preserving component stitching); "
                  << "path-to-root m(n) = " << analysis::table::num(m, 2)
                  << " vs flat 2*sqrt(n) = " << analysis::table::num(flat, 1)
                  << " - the degree hierarchy makes the average locate cheap (Section 3.6).\n\n";
        bench::metric("uucp_rebuild_avg_message_passes", m, "messages");
        bench::metric("uucp_rebuild_flat_bound", flat, "messages");
        bench::metric("uucp_rebuild_mean_tree_depth", mean_depth, "hops");
        bench::shape_check("exact rebuild: 1916 sites, 3848 edges, hub 641",
                           g.node_count() == 1916 && g.edge_count() == 3848 &&
                               g.degree(root) == 641);
        bench::shape_check("average path-to-root locate beats the flat 2*sqrt(n)", m < flat);
    }

    // Tree depth formulas: d(i) = c*i^(1+eps) and d(i) = c*2^(eps*i).
    analysis::table formulas{{"n", "poly l (formula)", "poly l (exact)", "exp l (formula)",
                              "exp l (exact)"}};
    bool formulas_track = true;
    for (const double n : {1e4, 1e6, 1e9}) {
        const double pf = analysis::tree_depth_polynomial_profile(n, 1.0, 0.5);
        const int pe = analysis::tree_depth_empirical_polynomial(n, 1.0, 0.5);
        const double ef = analysis::tree_depth_exponential_profile(n, 1.0, 0.5);
        const int ee = analysis::tree_depth_empirical_exponential(n, 1.0, 0.5);
        if (std::abs(ef - ee) > 2.5) formulas_track = false;
        formulas.add_row({analysis::table::num(n, 0), analysis::table::num(pf, 1),
                          analysis::table::num(static_cast<std::int64_t>(pe)),
                          analysis::table::num(ef, 1),
                          analysis::table::num(static_cast<std::int64_t>(ee))});
    }
    std::cout << "Balanced-tree depth formulas vs the factorial relation:\n"
              << formulas.to_string() << "\n";

    bench::shape_check("table totals match the published 1916 sites / 3848 edges",
                       analysis::table_site_count(rows) == analysis::uucp_total_sites &&
                           analysis::table_degree_sum(rows) ==
                               2 * static_cast<std::int64_t>(analysis::uucp_total_edges));
    bench::shape_check("m(n) <= 2*depth on UUCP-like trees (O(l) claim)", cost_tracks_depth);
    bench::shape_check("exponential-profile depth formula matches the exact recursion",
                       formulas_track);
    return 0;
}
