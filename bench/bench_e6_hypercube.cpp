// E6 - Section 3.2: binary d-cubes.  m(n) = 2*sqrt(n) with sqrt(n) caches
// at the balanced split, plus the epsilon-split variant for "relative
// immobility of servers".
#include <cmath>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/rendezvous_matrix.h"
#include "net/topologies.h"
#include "strategies/cube.h"

int main() {
    using namespace mm;
    bench::banner("E6: binary d-cube match-making (Section 3.2)",
                  "P(s) spans a d/2-subcube keeping s's high bits; Q(c) keeps c's low\n"
                  "bits.  The singleton rendezvous is (high(s) | low(c)); m(n) = 2*sqrt(n).");

    analysis::table sweep{{"d", "n", "#P", "#Q", "m(n)", "2*sqrt(n)", "routed", "cache-max"}};
    bool meets_bound = true;
    for (const int d : {2, 4, 6, 8, 10, 12, 14}) {
        const strategies::hypercube_strategy s{d};
        const net::node_id n = s.node_count();
        const double m = core::average_message_passes(s);
        const double bound = 2.0 * std::sqrt(static_cast<double>(n));
        if (d % 2 == 0 && std::abs(m - bound) > 1e-9) meets_bound = false;
        if (d == 14) bench::metric("cube_d14_avg_message_passes", m, "messages");
        std::string routed = "-";
        if (d <= 8) {
            const auto g = net::make_hypercube(d);
            const net::routing_table routes{g};
            const double cost = bench::routed_cost(routes, s, d >= 7 ? 8 : 1);
            if (d == 8) bench::metric("cube_d8_routed_cost", cost, "hops");
            routed = analysis::table::num(cost, 1);
        }
        const auto cache = bench::measure_cache_load(s);
        sweep.add_row({analysis::table::num(static_cast<std::int64_t>(d)),
                       analysis::table::num(static_cast<std::int64_t>(n)),
                       analysis::table::num(static_cast<std::int64_t>(s.post_set(0).size())),
                       analysis::table::num(static_cast<std::int64_t>(s.query_set(0).size())),
                       analysis::table::num(m, 1), analysis::table::num(bound, 1), routed,
                       analysis::table::num(cache.max)});
    }
    std::cout << sweep.to_string() << "\n";

    // epsilon-split: vary how many bits the server side spans (d = 10).
    analysis::table split{{"post-varies h", "#P = 2^h", "#Q = 2^(d-h)", "m", "m weighted a=8"}};
    double best_weighted = 1e18;
    int best_h = -1;
    for (int h = 0; h <= 10; h += 2) {
        const strategies::hypercube_strategy s{10, h};
        const double m = core::average_message_passes(s);
        const double weighted = core::average_weighted_message_passes(s, 8.0);
        if (weighted < best_weighted) {
            best_weighted = weighted;
            best_h = h;
        }
        split.add_row({analysis::table::num(static_cast<std::int64_t>(h)),
                       analysis::table::num(static_cast<std::int64_t>(1 << h)),
                       analysis::table::num(static_cast<std::int64_t>(1 << (10 - h))),
                       analysis::table::num(m, 1), analysis::table::num(weighted, 1)});
    }
    std::cout << "epsilon-split on d = 10 (weighted: clients locate 8x more often):\n"
              << split.to_string() << "\n";

    bench::metric("epsilon_split_best_h", static_cast<double>(best_h));
    bench::metric("epsilon_split_best_weighted_m", best_weighted, "messages");
    bench::shape_check("even-d cubes meet m(n) = 2*sqrt(n) exactly", meets_bound);
    bench::shape_check("frequent clients push the optimum toward larger server sides (h > 5)",
                       best_h > 5);
    return 0;
}
