// E13 - Section 5: Hash Locate.  Two-message matches; fragility under node
// crashes versus the replication factor; rehash recovery through the
// runtime's fallback path.
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/rendezvous_matrix.h"
#include "net/topologies.h"
#include "runtime/name_service.h"
#include "sim/rng.h"
#include "strategies/checkerboard.h"
#include "strategies/hash_locate.h"

int main() {
    using namespace mm;
    bench::banner("E13: Hash Locate (Section 5)",
                  "P = Q = hash(port): 2 addressed nodes per match - cheaper than any\n"
                  "Shotgun scheme - but a service dies with its rendezvous nodes unless\n"
                  "replicated or rehashed.");

    const net::node_id n = 64;

    // Cost comparison against the truly distributed Shotgun optimum.
    analysis::table costs{{"strategy", "m(n)"}};
    const strategies::hash_locate_strategy hash1{n, 1};
    const strategies::checkerboard_strategy checker{n};
    costs.add_row({hash1.name(), analysis::table::num(core::average_message_passes(hash1), 1)});
    costs.add_row({checker.name(), analysis::table::num(core::average_message_passes(checker), 1)});
    std::cout << costs.to_string() << "\n";

    // Fragility: crash f random nodes; what fraction of 200 ports lost every
    // rendezvous replica?
    analysis::table fragility{{"replicas r", "f=4 crashed", "f=8 crashed", "f=16 crashed"}};
    std::vector<std::vector<double>> dead_rate(5, std::vector<double>(3, 0.0));
    bool replication_helps = true;
    for (int r = 1; r <= 4; ++r) {
        std::vector<std::string> row{analysis::table::num(static_cast<std::int64_t>(r))};
        for (int fi = 0; fi < 3; ++fi) {
            const int f = 4 << fi;
            sim::rng random{77u + static_cast<unsigned>(r * 31 + fi)};
            int dead_ports = 0;
            constexpr int trials = 40;
            constexpr int ports = 50;
            for (int trial = 0; trial < trials; ++trial) {
                // Crash f distinct random nodes.
                std::vector<char> crashed(static_cast<std::size_t>(n), 0);
                int down = 0;
                while (down < f) {
                    const auto v = static_cast<std::size_t>(random.uniform(0, n - 1));
                    if (!crashed[v]) {
                        crashed[v] = 1;
                        ++down;
                    }
                }
                const strategies::hash_locate_strategy s{n, r};
                for (int k = 0; k < ports; ++k) {
                    const auto port = core::port_of("svc" + std::to_string(k));
                    bool alive = false;
                    for (const net::node_id v : s.post_set(0, port))
                        if (!crashed[static_cast<std::size_t>(v)]) alive = true;
                    if (!alive) ++dead_ports;
                }
            }
            const double rate = static_cast<double>(dead_ports) / (trials * ports);
            dead_rate[static_cast<std::size_t>(r)][static_cast<std::size_t>(fi)] = rate;
            row.push_back(analysis::table::num(rate, 4));
        }
        fragility.add_row(std::move(row));
    }
    for (int fi = 0; fi < 3; ++fi)
        if (dead_rate[1][static_cast<std::size_t>(fi)] <
            dead_rate[4][static_cast<std::size_t>(fi)])
            replication_helps = false;
    std::cout << "Fraction of services with ALL rendezvous replicas crashed:\n"
              << fragility.to_string() << "\n";

    // Rehash recovery: kill the primary rendezvous, locate via fallbacks.
    const auto g = net::make_complete(n);
    sim::simulator sim{g};
    // Primary hash attempt plus two owned rehash backups (fallback_chain()).
    const strategies::hash_locate_strategy primary{n, 1, 0, 2};
    runtime::name_service ns{sim, primary};
    const core::port_id port = core::port_of("database");
    ns.register_server(port, 5);
    ns.crash_node(primary.rendezvous_node(port, 0));
    const auto recovered = ns.locate_with_fallback(port, 20);
    std::cout << "Rehash drill: primary rendezvous crashed; locate "
              << (recovered.found ? "succeeded" : "FAILED") << " after " << recovered.stages
              << " attempts (" << recovered.message_passes << " message passes).\n\n";

    bench::metric("hash_m_n", core::average_message_passes(hash1), "addressed nodes");
    bench::metric("checkerboard_m_n", core::average_message_passes(checker), "addressed nodes");
    bench::metric("dead_rate_r1_f16", dead_rate[1][2], "fraction");
    bench::metric("dead_rate_r4_f16", dead_rate[4][2], "fraction");
    bench::metric("rehash_recovery_stages", static_cast<double>(recovered.stages), "attempts");
    bench::metric("rehash_recovery_message_passes",
                  static_cast<double>(recovered.message_passes), "hops");
    bench::metric("rehash_recovery_latency", static_cast<double>(recovered.latency), "ticks");

    bench::shape_check("hash locate costs m = 2 vs checkerboard 2*sqrt(n) = 16",
                       core::average_message_passes(hash1) == 2.0);
    bench::shape_check("replication r=4 strictly reduces service-kill probability vs r=1",
                       replication_helps);
    bench::shape_check("rehash fallback recovers the service after a rendezvous crash",
                       recovered.found && recovered.stages > 1);
    return 0;
}
