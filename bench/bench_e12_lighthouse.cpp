// E12 - Section 4: Lighthouse Locate.  Doubling vs ruler client schedules
// across server densities, plus the reverse-routing-table network beams.
#include <algorithm>
#include <iostream>
#include <string>

#include "analysis/table.h"
#include "bench_util.h"
#include "lighthouse/lighthouse_sim.h"
#include "lighthouse/network_beam.h"
#include "net/topologies.h"

namespace {

using namespace mm;

struct aggregate {
    std::int64_t median_time = 0;
    double mean_messages = 0;
    double located_fraction = 0;
};

aggregate run_many(lighthouse::client_schedule schedule, double density, int runs,
                   double drift = 0.0) {
    std::vector<std::int64_t> times;
    double messages = 0;
    int located = 0;
    for (int r = 0; r < runs; ++r) {
        lighthouse::lighthouse_params p;
        p.width = 128;
        p.height = 128;
        p.server_density = density;
        p.server_beam_length = 24;
        p.server_period = 8;
        p.trail_lifetime = 48;
        p.client_base_length = 2;
        p.client_period = 8;
        p.schedule = schedule;
        p.server_drift = drift;
        p.max_time = 1 << 15;
        p.seed = 1000u + static_cast<unsigned>(r);
        const auto result = lighthouse::run_lighthouse(p);
        times.push_back(result.time_to_locate);
        messages += static_cast<double>(result.client_messages);
        if (result.located) ++located;
    }
    std::sort(times.begin(), times.end());
    return {times[times.size() / 2], messages / runs,
            static_cast<double>(located) / runs};
}

}  // namespace

int main() {
    bench::banner("E12: Lighthouse Locate (Section 4)",
                  "Servers beam trails that expire; clients probe with doubling or the\n"
                  "ruler schedule 1213121412131215... (binary-counter maintained).");

    analysis::table t{{"density s", "schedule", "median time", "mean client msgs", "located"}};
    constexpr int runs = 9;
    bool denser_is_faster = true;
    std::int64_t previous_median = -1;
    for (const double density : {0.02, 0.005, 0.00125}) {
        const auto doubling = run_many(lighthouse::client_schedule::doubling, density, runs);
        const auto ruler = run_many(lighthouse::client_schedule::ruler, density, runs);
        const auto tag = std::to_string(density);
        bench::metric("median_time_doubling_density_" + tag,
                      static_cast<double>(doubling.median_time), "ticks");
        bench::metric("median_time_ruler_density_" + tag,
                      static_cast<double>(ruler.median_time), "ticks");
        bench::metric("located_doubling_density_" + tag, doubling.located_fraction,
                      "fraction");
        t.add_row({analysis::table::num(density, 5), "doubling",
                   analysis::table::num(doubling.median_time),
                   analysis::table::num(doubling.mean_messages, 0),
                   analysis::table::num(doubling.located_fraction, 2)});
        t.add_row({analysis::table::num(density, 5), "ruler",
                   analysis::table::num(ruler.median_time),
                   analysis::table::num(ruler.mean_messages, 0),
                   analysis::table::num(ruler.located_fraction, 2)});
        if (previous_median >= 0 && doubling.median_time < previous_median)
            denser_is_faster = false;
        previous_median = doubling.median_time;
    }
    std::cout << t.to_string() << "\n";

    // Mobile servers: "the servers which drift nearer to the client are
    // located with less time-loss" - the ruler schedule keeps short beams
    // in play, so drifting worlds favor it even more.
    analysis::table drift_table{{"drift", "schedule", "median time", "located"}};
    for (const double drift : {0.0, 0.25}) {
        for (const auto schedule :
             {lighthouse::client_schedule::doubling, lighthouse::client_schedule::ruler}) {
            const auto agg = run_many(schedule, 0.002, runs, drift);
            drift_table.add_row(
                {analysis::table::num(drift, 2),
                 schedule == lighthouse::client_schedule::doubling ? "doubling" : "ruler",
                 analysis::table::num(agg.median_time),
                 analysis::table::num(agg.located_fraction, 2)});
        }
    }
    std::cout << "Mobile servers (drift = per-tick step probability):\n"
              << drift_table.to_string() << "\n";

    // Network beams: rasterized "straight lines" on a point-to-point net.
    const auto g = net::make_grid(15, 15);
    const net::routing_table routes{g};
    sim::rng random{5};
    int monotone = 0;
    constexpr int beams = 200;
    double mean_length = 0;
    for (int b = 0; b < beams; ++b) {
        const auto trace = lighthouse::trace_network_beam(g, routes, 112, 7, random);
        if (trace.monotone_away) ++monotone;
        mean_length += static_cast<double>(trace.nodes.size());
    }
    std::cout << "Network beams from the grid center: " << monotone << "/" << beams
              << " moved strictly away from the origin, mean length "
              << analysis::table::num(mean_length / beams, 2) << " hops of 7 requested.\n\n";

    bench::metric("beam_monotone_fraction",
                  static_cast<double>(monotone) / beams, "fraction");
    bench::metric("beam_mean_length", mean_length / beams, "hops");

    bench::shape_check("median locate time grows as density drops (doubling schedule)",
                       denser_is_faster);
    bench::shape_check("all reverse-routing beams move strictly away from their origin",
                       monotone == beams);
    return 0;
}
