// E2 - Section 2.2: the probabilistic analysis.  E[#(P n Q)] = pq/n, and
// one expected rendezvous requires p + q >= 2*sqrt(n).
#include <cmath>
#include <iostream>

#include "analysis/montecarlo.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "strategies/random_strategy.h"

int main() {
    using namespace mm;
    bench::banner("E2: probabilistic analysis of random P/Q (Section 2.2)",
                  "Monte-Carlo E[#(P n Q)] against the paper's pq/n; the hit rate crosses\n"
                  "~63% (1 - 1/e) where p + q reaches the 2*sqrt(n) threshold.");

    constexpr std::int64_t samples = 3000;
    analysis::table t{{"n", "p", "q", "p+q", "2*sqrt(n)", "pq/n", "measured", "stderr",
                       "hit-rate"}};
    bool expectation_ok = true;
    for (const net::node_id n : {64, 256, 1024}) {
        const int root = static_cast<int>(std::lround(std::sqrt(static_cast<double>(n))));
        for (const int scale : {root / 2, root, 2 * root}) {
            const int p = std::max(1, scale);
            const int q = std::max(1, scale);
            const strategies::random_strategy s{n, p, q, 1000u + static_cast<unsigned>(n)};
            const auto est = analysis::estimate_intersection(s, samples, 7u);
            t.add_row({analysis::table::num(static_cast<std::int64_t>(n)),
                       analysis::table::num(static_cast<std::int64_t>(p)),
                       analysis::table::num(static_cast<std::int64_t>(q)),
                       analysis::table::num(static_cast<std::int64_t>(p + q)),
                       analysis::table::num(2.0 * std::sqrt(static_cast<double>(n)), 1),
                       analysis::table::num(est.expected, 3),
                       analysis::table::num(est.mean, 3), analysis::table::num(est.stderr_mean, 3),
                       analysis::table::num(est.hit_rate, 3)});
            if (std::abs(est.mean - est.expected) > 6.0 * std::max(0.02, est.stderr_mean))
                expectation_ok = false;
        }
    }
    std::cout << t.to_string() << "\n";

    // Threshold scan at n = 256: where does the expected intersection pass 1?
    analysis::table scan{{"p=q", "p+q", "pq/n", "hit-rate"}};
    double crossing_sum = 0;
    for (int p = 4; p <= 32; p += 4) {
        const strategies::random_strategy s{256, p, p, 99u};
        const auto est = analysis::estimate_intersection(s, samples, 21u);
        scan.add_row({analysis::table::num(static_cast<std::int64_t>(p)),
                      analysis::table::num(static_cast<std::int64_t>(2 * p)),
                      analysis::table::num(est.expected, 3),
                      analysis::table::num(est.hit_rate, 3)});
        if (crossing_sum == 0 && est.expected >= 1.0) crossing_sum = 2 * p;
    }
    std::cout << scan.to_string() << "\n";

    bench::metric("crossing_p_plus_q_n256", crossing_sum);
    {
        // One representative accuracy figure for the trajectory: n = 256 at
        // the threshold p = q = sqrt(n).
        const strategies::random_strategy s{256, 16, 16, 1256u};
        const auto est = analysis::estimate_intersection(s, samples, 7u);
        bench::metric("n256_threshold_expected", est.expected);
        bench::metric("n256_threshold_measured", est.mean);
        bench::metric("n256_threshold_hit_rate", est.hit_rate);
    }
    bench::shape_check("measured E[#(P n Q)] matches pq/n within sampling error", expectation_ok);
    bench::shape_check("expected intersection reaches 1 at p+q = 2*sqrt(256) = 32",
                       crossing_sum == 32);
    return 0;
}
