// A2 (ablation) - two-phase (Valiant) relaying.  Section 3.2: "Excessive
// clogging at intermediate nodes may be prevented by sending messages to a
// random address first, to be forwarded to their true destination second
// [Valiant 1982]."  A skewed workload hammers one rendezvous region of a
// hypercube; the 2x2 grid {fixed, randomized routing} x {direct, relayed}
// shows that relaying pays off once per-hop tie-breaking is unbiased -
// exactly Valiant's precondition.
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "net/topologies.h"
#include "runtime/name_service.h"
#include "strategies/cube.h"

namespace {

using namespace mm;

struct load_profile {
    std::int64_t peak = 0;   // hottest node's transit (carried) traffic
    std::int64_t total = 0;  // all transit traffic
    double imbalance = 0;    // peak / mean
    bool all_found = true;
};

load_profile run_workload(bool relay, bool randomized_routing) {
    const int d = 6;
    const auto g = net::make_hypercube(d);
    sim::simulator sim{g};
    if (randomized_routing) sim.set_randomized_routing(17);
    const strategies::hypercube_strategy strategy{d};
    runtime::name_service ns{sim, strategy,
                             {.valiant_relay = relay, .valiant_seed = 99}};

    const auto port = core::port_of("hot-service");
    ns.register_server(port, 63);
    sim.reset_traffic();
    load_profile out;
    // A burst of clients clustered in one subcube, all locating the same
    // far-away service: the classic adversarial pattern.  Clogging =
    // *carried* traffic; deliveries are endpoint work no routing can move.
    for (int rep = 0; rep < 8; ++rep)
        for (net::node_id client = 0; client < 16; ++client)
            if (!ns.locate(port, client).found) out.all_found = false;

    for (net::node_id v = 0; v < g.node_count(); ++v) out.total += sim.transit_traffic(v);
    out.peak = sim.max_transit_traffic();
    out.imbalance = static_cast<double>(out.peak) /
                    (static_cast<double>(out.total) / g.node_count());
    return out;
}

}  // namespace

int main() {
    bench::banner("A2 (ablation): Valiant random relaying (Section 3.2 remark)",
                  "128 locates from one corner of a d=6 cube to one far service: peak\n"
                  "carried traffic under {fixed, randomized} routing x {direct, relay}.");

    const auto fixed_direct = run_workload(false, false);
    const auto fixed_relay = run_workload(true, false);
    const auto rand_direct = run_workload(false, true);
    const auto rand_relay = run_workload(true, true);

    analysis::table t{{"routing", "delivery", "peak transit", "total transit", "peak/mean"}};
    const auto row = [&](const char* r, const char* m, const load_profile& p) {
        t.add_row({r, m, analysis::table::num(p.peak), analysis::table::num(p.total),
                   analysis::table::num(p.imbalance, 2)});
    };
    row("fixed BFS", "direct", fixed_direct);
    row("fixed BFS", "valiant relay", fixed_relay);
    row("randomized", "direct", rand_direct);
    row("randomized", "valiant relay", rand_relay);
    std::cout << t.to_string() << "\n";
    std::cout << "Fixed tie-breaking funnels everything through low-numbered nodes, so\n"
                 "relaying alone cannot help; with unbiased per-hop choices the relay\n"
                 "spreads the load (lower peak/mean), at ~2x total traffic.\n\n";

    bench::metric("peak_transit_fixed_direct", static_cast<double>(fixed_direct.peak), "messages");
    bench::metric("peak_transit_rand_direct", static_cast<double>(rand_direct.peak), "messages");
    bench::metric("peak_transit_rand_relay", static_cast<double>(rand_relay.peak), "messages");
    bench::metric("total_transit_rand_relay", static_cast<double>(rand_relay.total), "messages");
    bench::metric("imbalance_rand_direct", rand_direct.imbalance, "peak/mean");
    bench::metric("imbalance_rand_relay", rand_relay.imbalance, "peak/mean");

    bench::shape_check("all locates succeed in all four configurations",
                       fixed_direct.all_found && fixed_relay.all_found &&
                           rand_direct.all_found && rand_relay.all_found);
    bench::shape_check("randomized routing alone already lowers the peak",
                       rand_direct.peak < fixed_direct.peak);
    bench::shape_check("with randomized routing, relaying lowers peak/mean further",
                       rand_relay.imbalance < rand_direct.imbalance);
    return 0;
}
