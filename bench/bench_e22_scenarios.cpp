// E22 - the scenario matrix: hostile & skewed traffic vs. adaptive
// match-making.
// The paper's uniform analysis assumes every port is equally popular; real
// deployments see Zipf skew, flash crowds, diurnal arrival waves, and
// correlated regional failures.  This bench runs the named scenario catalog
// (runtime/scenario.h, docs/SCENARIOS.md) against a 3-level hierarchy under
// two strategies - the static hierarchical parent and its load-aware
// wrapper (strategies/load_aware.h) - and reports, per cell: tail locate
// latency, staleness-served counts, and the hot port's share of locate
// hops.  Every cell is swept across 1/2/4/8 worker threads and all
// scenario counters must be bit-identical (the determinism contract the
// blocking bench_diff gate then pins across commits).  The headline shape
// check: the load-aware strategy must beat its static parent on p99 locate
// latency or hot-port hop share in at least one scenario.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "bench_util.h"
#include "net/hierarchy.h"
#include "runtime/scenario.h"
#include "strategies/hierarchical.h"
#include "strategies/load_aware.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MM_E22_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MM_E22_SANITIZED 1
#endif
#endif
#ifndef MM_E22_SANITIZED
#define MM_E22_SANITIZED 0
#endif

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

const std::vector<int>& thread_sweep() {
    static const std::vector<int> sweep =
        MM_E22_SANITIZED ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
    return sweep;
}

constexpr int kPorts = 16;
constexpr int kOperations = 360;
constexpr std::uint64_t kSeed = 20260807;

struct run_result {
    int threads = 1;
    double run_seconds = 0;
    std::int64_t hops = 0;
    std::int64_t sent = 0;
    std::int64_t delivered = 0;
    std::int64_t dropped = 0;
    std::int64_t issued = 0;
    std::int64_t completed = 0;
    std::int64_t locates = 0;
    std::int64_t locates_found = 0;
    std::int64_t stale_served = 0;
    std::int64_t per_op_passes = 0;
    mm::sim::time_point latency_p50 = 0;
    mm::sim::time_point latency_p99 = 0;
    mm::sim::time_point latency_max = 0;
    mm::sim::time_point makespan = 0;
    int hot_port = -1;
    std::int64_t hot_port_hops = 0;
    std::int64_t hot_port_locates = 0;
    double hot_hop_share = 0;
    std::int64_t promotions = 0;
    std::int64_t demotions = 0;
    std::int64_t hot_reposts = 0;
    std::int64_t region_crashes = 0;
    std::int64_t region_heals = 0;
    std::int64_t heal_reposts = 0;

    [[nodiscard]] bool counters_equal(const run_result& o) const {
        return hops == o.hops && sent == o.sent && delivered == o.delivered &&
               dropped == o.dropped && issued == o.issued && completed == o.completed &&
               locates == o.locates && locates_found == o.locates_found &&
               stale_served == o.stale_served && per_op_passes == o.per_op_passes &&
               latency_p50 == o.latency_p50 && latency_p99 == o.latency_p99 &&
               latency_max == o.latency_max && makespan == o.makespan &&
               hot_port == o.hot_port && hot_port_hops == o.hot_port_hops &&
               hot_port_locates == o.hot_port_locates && promotions == o.promotions &&
               demotions == o.demotions && hot_reposts == o.hot_reposts &&
               region_crashes == o.region_crashes && region_heals == o.region_heals &&
               heal_reposts == o.heal_reposts;
    }
};

struct cell_result {
    std::string scenario;
    std::string strategy;  // "static" | "adaptive"
    bool has_outages = false;
    std::vector<run_result> runs;
    bool all_equal = true;

    [[nodiscard]] const run_result& front() const { return runs.front(); }
};

cell_result run_cell(const std::string& scenario_name, bool adaptive) {
    using namespace mm;
    const net::hierarchy h{{10, 10, 10}};
    const net::graph base = net::make_hierarchical_graph(h);
    const strategies::hierarchical_strategy parent{h};
    // Locality carve for the load-aware wrapper: hot ports keep one replica
    // per region and clients query only their own region's.  Coarser than
    // the sqrt default on purpose - every hot post/refresh pays one message
    // per region, so fewer regions keep the write amplification modest.
    const net::graph_partition carve = net::partition_connected(base, 100);

    cell_result out;
    out.scenario = scenario_name;
    out.strategy = adaptive ? "adaptive" : "static";
    const runtime::scenario_spec spec =
        runtime::named_scenario(scenario_name, kPorts, kOperations, kSeed);
    out.has_outages = !spec.outages.empty();

    for (const int threads : thread_sweep()) {
        net::graph g = base;
        sim::simulator sim{g};
        sim.set_worker_threads(threads);
        // Fresh hot state per run: promotion schedules are part of the
        // per-run determinism contract, not carried across runs.
        strategies::load_aware_strategy tuned{
            parent, {.hot_threshold = 10, .cool_threshold = 3, .replicas = 4}};
        tuned.set_regions(carve);
        runtime::name_service::options policy;
        policy.entry_ttl = 600;
        policy.refresh_period = 150;
        policy.client_caching = true;
        runtime::name_service ns{sim, adaptive ? static_cast<const core::locate_strategy&>(tuned)
                                               : parent,
                                 policy};

        const auto run_start = clock_type::now();
        const runtime::scenario_stats st =
            runtime::run_scenario(ns, spec, adaptive ? &tuned : nullptr);
        run_result r;
        r.threads = threads;
        r.run_seconds = seconds_since(run_start);
        r.hops = sim.stats().get(sim::counter_hops);
        r.sent = sim.stats().get(sim::counter_messages_sent);
        r.delivered = sim.stats().get(sim::counter_messages_delivered);
        r.dropped = sim.stats().get(sim::counter_messages_dropped);
        r.issued = st.wl.issued;
        r.completed = st.wl.completed;
        r.locates = st.wl.locates;
        r.locates_found = st.wl.locates_found;
        r.stale_served = st.wl.stale_served;
        r.per_op_passes = st.wl.per_op_message_passes;
        r.latency_p50 = st.wl.latency_p50;
        r.latency_p99 = st.wl.latency_p99;
        r.latency_max = st.wl.latency_max;
        r.makespan = st.wl.makespan;
        r.hot_port = st.wl.hot_port;
        if (st.wl.hot_port >= 0) {
            const auto& hot = st.wl.per_port[static_cast<std::size_t>(st.wl.hot_port)];
            r.hot_port_hops = hot.hops;
            r.hot_port_locates = hot.locates;
        }
        r.hot_hop_share = st.wl.hot_port_hop_share;
        r.promotions = st.promotions;
        r.demotions = st.demotions;
        r.hot_reposts = st.hot_reposts;
        r.region_crashes = st.region_crashes;
        r.region_heals = st.region_heals;
        r.heal_reposts = st.heal_reposts;
        if (!out.runs.empty()) out.all_equal = out.all_equal && r.counters_equal(out.runs.front());
        out.runs.push_back(r);
    }
    return out;
}

}  // namespace

int main() {
    using namespace mm;
    bench::banner("E22: scenario matrix - hostile & skewed traffic",
                  "The named scenario catalog (Zipf skew, flash crowds, diurnal\n"
                  "arrivals, correlated regional outages, healing partitions) against\n"
                  "a 1000-node 3-level hierarchy, static hierarchical vs. the\n"
                  "load-aware wrapper.  Every cell swept across worker threads with\n"
                  "bit-identical counters; the adaptive strategy must beat its static\n"
                  "parent on p99 locate latency or hot-port hop share somewhere.");

    std::vector<cell_result> cells;
    for (const std::string& name : runtime::scenario_names()) {
        cells.push_back(run_cell(name, /*adaptive=*/false));
        cells.push_back(run_cell(name, /*adaptive=*/true));
    }

    analysis::table t{{"scenario", "strategy", "threads", "run s", "hops", "found/locates",
                       "stale", "p99", "hot hop%", "promo", "equal"}};
    for (const auto& c : cells) {
        for (const auto& r : c.runs) {
            t.add_row({c.scenario, c.strategy,
                       analysis::table::num(static_cast<std::int64_t>(r.threads)),
                       analysis::table::num(r.run_seconds, 2), analysis::table::num(r.hops),
                       analysis::table::num(r.locates_found) + "/" +
                           analysis::table::num(r.locates),
                       analysis::table::num(r.stale_served),
                       analysis::table::num(static_cast<std::int64_t>(r.latency_p99)),
                       analysis::table::num(100.0 * r.hot_hop_share, 1),
                       analysis::table::num(r.promotions), c.all_equal ? "yes" : "NO"});
        }
    }
    std::cout << t.to_string() << "\n";

    bool all_equal = true;
    bool all_accounted = true;
    bool adaptive_beats_parent = false;
    std::int64_t total_promotions = 0;
    std::int64_t total_hot_reposts = 0;
    bool outages_fired = true;
    bool heals_restore = false;
    std::int64_t outage_stale_served = 0;

    for (const auto& c : cells) {
        all_equal = all_equal && c.all_equal;
        const auto& r = c.front();
        // Region bursts legally kill in-flight operations (their actors
        // crash), so outage scenarios complete a subset of issued ops;
        // everything else completes exactly what it issued.
        all_accounted = all_accounted && r.completed > 0 &&
                        (c.has_outages ? r.completed <= r.issued : r.completed == r.issued);
        if (c.strategy == "adaptive") {
            total_promotions += r.promotions;
            total_hot_reposts += r.hot_reposts;
        }
        if (c.has_outages) {
            outages_fired = outages_fired && r.region_crashes > 0;
            heals_restore = heals_restore || r.heal_reposts > 0;
            outage_stale_served += r.stale_served;
        }

        const std::string prefix = c.scenario + "_" + c.strategy;
        for (const auto& run : c.runs)
            bench::metric(prefix + "_t" + std::to_string(run.threads) + "_run_seconds",
                          run.run_seconds, "s");
        bench::metric(prefix + "_hops", static_cast<double>(r.hops), "hops");
        bench::metric(prefix + "_completed", static_cast<double>(r.completed), "operations");
        bench::metric(prefix + "_locates_found", static_cast<double>(r.locates_found),
                      "operations");
        bench::metric(prefix + "_stale_served", static_cast<double>(r.stale_served),
                      "operations");
        bench::metric(prefix + "_latency_p99", static_cast<double>(r.latency_p99), "ticks");
        bench::metric(prefix + "_hot_port_hops", static_cast<double>(r.hot_port_hops), "hops");
        bench::metric(prefix + "_hot_hop_share", 100.0 * r.hot_hop_share, "ratio");
        if (c.strategy == "adaptive") {
            bench::metric(prefix + "_promotions", static_cast<double>(r.promotions),
                          "operations");
            bench::metric(prefix + "_hot_reposts", static_cast<double>(r.hot_reposts),
                          "operations");
        }
        if (c.has_outages) {
            bench::metric(prefix + "_region_crashes", static_cast<double>(r.region_crashes),
                          "nodes");
            bench::metric(prefix + "_region_heals", static_cast<double>(r.region_heals),
                          "nodes");
        }
    }

    // The headline comparison: same seed means static and adaptive cells
    // issue the identical operation stream, so these are paired samples.
    for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
        const auto& stat = cells[i].front();
        const auto& adpt = cells[i + 1].front();
        if (adpt.latency_p99 < stat.latency_p99 ||
            (stat.hot_port_hops > 0 && adpt.hot_port_hops < stat.hot_port_hops))
            adaptive_beats_parent = true;
    }

    bench::shape_check("counters bit-identical across the worker sweep", all_equal);
    bench::shape_check("every cell completes its issued operations (outages may shed)",
                       all_accounted);
    bench::shape_check("load-aware beats static parent on p99 or hot-port hops somewhere",
                       adaptive_beats_parent);
    bench::shape_check("skewed scenarios promote hot ports and re-home their bindings",
                       total_promotions > 0 && total_hot_reposts > 0);
    bench::shape_check("every outage scenario fires its region bursts", outages_fired);
    bench::shape_check("healing partitions re-post surviving bindings", heals_restore);
    bench::shape_check("outage scenarios serve stale answers (the staleness the paper pays)",
                       outage_stale_served > 0);
    return 0;
}
