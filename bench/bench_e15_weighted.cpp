// E15 - constraint (M3'): weighted match-making.  When clients locate
// alpha times more often than servers post, the optimal split is
// #P ~ sqrt(n*alpha), #Q ~ sqrt(n/alpha); the tuned checkerboard beats the
// balanced one on weighted cost at every alpha != 1.
#include <cmath>
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "core/rendezvous_matrix.h"
#include "strategies/checkerboard.h"

int main() {
    using namespace mm;
    bench::banner("E15: weighted match-making, (M3') (Section 2.3.2)",
                  "m(i,j) = #P + alpha*#Q.  The tuned checkerboard picks width ~\n"
                  "sqrt(n*alpha) and never loses to the balanced split.");

    const net::node_id n = 256;
    analysis::table t{{"alpha", "tuned width", "#P", "#Q", "tuned cost", "balanced cost",
                       "saving"}};
    const strategies::checkerboard_strategy balanced{n};
    bool never_worse = true;
    bool skews_right = true;
    for (const double alpha : {1.0 / 16, 1.0 / 4, 1.0, 4.0, 16.0, 64.0}) {
        const auto tuned = strategies::make_weighted_checkerboard(n, alpha);
        const double tuned_cost = core::average_weighted_message_passes(tuned, alpha);
        const double balanced_cost = core::average_weighted_message_passes(balanced, alpha);
        if (tuned_cost > balanced_cost + 1e-9) never_worse = false;
        const auto p = tuned.post_set(0).size();
        const auto q = tuned.query_set(0).size();
        if (alpha > 1.0 && p < q) skews_right = false;
        if (alpha < 1.0 && p > q) skews_right = false;
        if (alpha == 16.0) {
            bench::metric("alpha16_tuned_cost", tuned_cost, "messages");
            bench::metric("alpha16_balanced_cost", balanced_cost, "messages");
            bench::metric("alpha16_saving", balanced_cost - tuned_cost, "messages");
        }
        t.add_row({analysis::table::num(alpha, 4),
                   analysis::table::num(static_cast<std::int64_t>(tuned.width())),
                   analysis::table::num(static_cast<std::int64_t>(p)),
                   analysis::table::num(static_cast<std::int64_t>(q)),
                   analysis::table::num(tuned_cost, 1), analysis::table::num(balanced_cost, 1),
                   analysis::table::num(balanced_cost - tuned_cost, 1)});
    }
    std::cout << t.to_string() << "\n";

    bench::shape_check("the tuned split never loses to the balanced one", never_worse);
    bench::shape_check("alpha > 1 widens posts, alpha < 1 widens queries", skews_right);
    bench::shape_check("at alpha = 1 the tuned width equals the balanced sqrt(n) = 16",
                       strategies::weighted_checker_width(n, 1.0) == 16);
    return 0;
}
