// E21 - record/replay traces and the cross-engine differential canary.
// The four execution engines' equivalence claim (serial / sharded-parallel
// / batched / hop-by-hop) is enforced elsewhere test-by-test; this bench
// turns it into trajectory metrics: how large the delivery trace of a
// seeded workload is (records and digests are DETERMINISTIC counters - any
// drift means the delivery stream itself changed, so bench_diff gates them
// at threshold 0), how long recording and a full-sweep replay take, and
// shape checks that the canary machinery holds: every engine in each
// config's sweep replays the recorded trace, and re-recording is
// byte-identical (the property committed golden traces depend on).
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "bench_util.h"
#include "runtime/replay.h"

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

struct case_result {
    std::uint64_t seed = 0;
    std::string label;
    std::size_t records = 0;
    std::size_t digests = 0;
    std::size_t bytes = 0;
    std::size_t engines = 0;
    double record_seconds = 0;
    double replay_seconds = 0;  // whole sweep
    bool replays_ok = true;
    bool deterministic = true;
};

case_result run_case(std::uint64_t seed) {
    using namespace mm;
    case_result out;
    out.seed = seed;
    const runtime::replay_config cfg = runtime::random_config(seed);
    out.label = cfg.describe();
    const auto engines = runtime::engine_sweep(cfg);
    out.engines = engines.size();

    auto start = clock_type::now();
    const sim::trace reference = runtime::record_trace(cfg, engines.front());
    out.record_seconds = seconds_since(start);
    const auto bytes = sim::encode_trace(reference);
    out.records = reference.records.size();
    out.digests = reference.digests.size();
    out.bytes = bytes.size();

    start = clock_type::now();
    for (const auto& engine : engines) {
        const auto report = runtime::replay_trace(reference, engine);
        if (!report.ok) {
            out.replays_ok = false;
            std::cout << "  [" << out.label << "] " << engine.name() << " DIVERGED:\n"
                      << report.failure << "\n";
        }
    }
    out.replay_seconds = seconds_since(start);

    out.deterministic =
        sim::encode_trace(runtime::record_trace(cfg, engines.front())) == bytes;
    return out;
}

}  // namespace

int main() {
    using namespace mm;
    bench::banner("E21: record/replay traces + differential canary",
                  "Record seeded workloads' delivery traces, replay them across each\n"
                  "config's engine sweep, and track trace sizes as deterministic\n"
                  "trajectory counters (records/digests units gate at threshold 0).");

    // One config per regime the sweep policy distinguishes: clean (full
    // serial set), crash (par set + hop-by-hop), churn (batched-only set).
    // random_config is frozen, so these label the same workloads forever.
    const std::vector<std::uint64_t> seeds{1, 5, 4};
    std::vector<case_result> results;
    results.reserve(seeds.size());
    for (const auto seed : seeds) results.push_back(run_case(seed));

    analysis::table t{{"seed", "config", "engines", "records", "digests", "bytes",
                       "record s", "sweep replay s", "ok"}};
    for (const auto& r : results) {
        t.add_row({analysis::table::num(static_cast<std::int64_t>(r.seed)), r.label,
                   analysis::table::num(static_cast<std::int64_t>(r.engines)),
                   analysis::table::num(static_cast<std::int64_t>(r.records)),
                   analysis::table::num(static_cast<std::int64_t>(r.digests)),
                   analysis::table::num(static_cast<std::int64_t>(r.bytes)),
                   analysis::table::num(r.record_seconds, 3),
                   analysis::table::num(r.replay_seconds, 3),
                   r.replays_ok && r.deterministic ? "yes" : "NO"});
    }
    std::cout << t.to_string() << "\n";

    bool all_ok = true;
    bool all_deterministic = true;
    for (const auto& r : results) {
        const std::string prefix = "seed" + std::to_string(r.seed);
        bench::metric(prefix + "_trace_records", static_cast<double>(r.records), "records");
        bench::metric(prefix + "_trace_digests", static_cast<double>(r.digests), "digests");
        bench::metric(prefix + "_record_seconds", r.record_seconds, "s");
        bench::metric(prefix + "_sweep_replay_seconds", r.replay_seconds, "s");
        all_ok = all_ok && r.replays_ok;
        all_deterministic = all_deterministic && r.deterministic;
    }

    bench::shape_check("every engine in each config's sweep replays its trace", all_ok);
    bench::shape_check("re-recording a config is byte-identical", all_deterministic);
    return 0;
}
