// Tests for net/hierarchy: the gateway-cluster model of Section 3.5.
#include <gtest/gtest.h>

#include "net/hierarchy.h"

namespace mm::net {
namespace {

TEST(hierarchy, uniform_two_level) {
    const hierarchy h{{4, 3}};  // 3 clusters of 4 basic nodes
    EXPECT_EQ(h.levels(), 2);
    EXPECT_EQ(h.node_count(), 12);
    EXPECT_EQ(h.cluster_size(1), 4);
    EXPECT_EQ(h.cluster_size(2), 12);
    EXPECT_EQ(h.fanout(1), 4);
    EXPECT_EQ(h.fanout(2), 3);
}

TEST(hierarchy, cluster_membership) {
    const hierarchy h{{4, 3}};
    EXPECT_EQ(h.cluster_of(1, 0), 0);
    EXPECT_EQ(h.cluster_of(1, 3), 0);
    EXPECT_EQ(h.cluster_of(1, 4), 1);
    EXPECT_EQ(h.cluster_of(1, 11), 2);
    for (node_id v = 0; v < 12; ++v) EXPECT_EQ(h.cluster_of(2, v), 0);
}

TEST(hierarchy, child_index) {
    const hierarchy h{{4, 3}};
    EXPECT_EQ(h.child_index(1, 0), 0);
    EXPECT_EQ(h.child_index(1, 3), 3);
    EXPECT_EQ(h.child_index(1, 5), 1);
    EXPECT_EQ(h.child_index(2, 0), 0);
    EXPECT_EQ(h.child_index(2, 4), 1);
    EXPECT_EQ(h.child_index(2, 11), 2);
}

TEST(hierarchy, gateways_are_cluster_representatives) {
    const hierarchy h{{4, 3}};
    // Level-2 cluster 0 spans all nodes; its gateways are the lowest node of
    // each level-1 cluster: 0, 4, 8.
    EXPECT_EQ(h.gateways(2, 0), (std::vector<node_id>{0, 4, 8}));
    // Level-1 cluster 1's gateways are its own basic nodes 4..7.
    EXPECT_EQ(h.gateways(1, 1), (std::vector<node_id>{4, 5, 6, 7}));
}

TEST(hierarchy, three_levels) {
    const hierarchy h{{2, 3, 4}};
    EXPECT_EQ(h.node_count(), 24);
    EXPECT_EQ(h.cluster_size(2), 6);
    EXPECT_EQ(h.cluster_of(2, 13), 2);
    EXPECT_EQ(h.gateways(3, 0), (std::vector<node_id>{0, 6, 12, 18}));
}

TEST(hierarchy, validation) {
    EXPECT_THROW(hierarchy{std::vector<int>{}}, std::invalid_argument);
    EXPECT_THROW((hierarchy{{3, 0}}), std::invalid_argument);
    const hierarchy h{{2, 2}};
    EXPECT_THROW((void)h.fanout(0), std::out_of_range);
    EXPECT_THROW((void)h.fanout(3), std::out_of_range);
    EXPECT_THROW((void)h.cluster_of(1, 99), std::out_of_range);
    EXPECT_THROW((void)h.gateway(1, 0, 7), std::out_of_range);
}

TEST(hierarchy, graph_is_connected_and_layered) {
    const hierarchy h{{3, 3, 3}};
    const auto g = make_hierarchical_graph(h);
    EXPECT_EQ(g.node_count(), 27);
    EXPECT_TRUE(g.connected());
    // Basic nodes of one level-1 cluster form a clique.
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 2));
    // Level-2 gateways (0, 3, 6) are connected.
    EXPECT_TRUE(g.has_edge(0, 3));
    EXPECT_TRUE(g.has_edge(3, 6));
    // Level-3 gateways (0, 9, 18) are connected.
    EXPECT_TRUE(g.has_edge(0, 9));
    EXPECT_TRUE(g.has_edge(9, 18));
    // No edge between non-gateway nodes of different clusters.
    EXPECT_FALSE(g.has_edge(1, 4));
}

}  // namespace
}  // namespace mm::net
