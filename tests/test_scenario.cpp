// Tests for the scenario layer (runtime/scenario.h) and the load-aware
// strategy (strategies/load_aware.h): spec codec round-trips, flash-crowd
// window exactness, Zipf draw determinism, region outage/heal bookkeeping,
// worker-count bit-equality for every catalog entry, and the adaptive-vs-
// static oracle (hot-port hops drop under an identical operation stream).
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/hierarchy.h"
#include "net/partition.h"
#include "runtime/scenario.h"
#include "sim/simulator.h"
#include "strategies/hierarchical.h"
#include "strategies/load_aware.h"

namespace mm {
namespace {

// --- fixtures ---------------------------------------------------------------

const std::vector<int> kFanouts{4, 4, 4};  // 64 leaf/interior nodes total

struct scenario_run_out {
    runtime::scenario_stats st;
    std::int64_t hops = 0;
    std::vector<std::int64_t> draws;  // scenario_port_draws_<i> per port
};

// Runs `spec` over a fresh 64-node hierarchy.  With adaptive=true the
// service is built over a region-carved load_aware(hierarchical) strategy
// and the tuner is armed; otherwise the plain hierarchical parent runs.
scenario_run_out run_on_hierarchy(const runtime::scenario_spec& spec, bool adaptive) {
    net::graph g = net::make_hierarchical_graph(net::hierarchy{kFanouts});
    sim::simulator sim{g};
    sim.set_canonical_paths(true);
    strategies::hierarchical_strategy parent{net::hierarchy{kFanouts}};
    strategies::load_aware_strategy tuned{
        parent, {.hot_threshold = 12, .cool_threshold = 3, .replicas = 3}};
    tuned.set_regions(net::partition_connected(g));
    runtime::name_service::options policy;
    policy.entry_ttl = 400;
    policy.refresh_period = 0;
    policy.client_caching = true;
    scenario_run_out out;
    if (adaptive) {
        runtime::name_service ns{sim, tuned, policy};
        out.st = runtime::run_scenario(ns, spec, &tuned);
    } else {
        runtime::name_service ns{sim, parent, policy};
        out.st = runtime::run_scenario(ns, spec, nullptr);
    }
    out.hops = sim.stats().get(sim::counter_hops);
    for (int p = 0; p < spec.base.ports; ++p)
        out.draws.push_back(sim.stats().get("scenario_port_draws_" + std::to_string(p)));
    return out;
}

// A locate-only base (no registers/migrations/crashes from the mix), so a
// test's host bookkeeping is exactly what its own events dictate.
runtime::scenario_spec locate_only_spec(int ports, int operations, std::uint64_t seed) {
    runtime::scenario_spec spec;
    spec.base.seed = seed;
    spec.base.operations = operations;
    spec.base.ports = ports;
    spec.base.servers_per_port = 1;
    spec.base.locate_weight = 1;
    spec.base.register_weight = 0;
    spec.base.migrate_weight = 0;
    spec.base.crash_weight = 0;
    return spec;
}

// --- spec codec -------------------------------------------------------------

TEST(scenario_spec, codec_round_trips_every_field) {
    runtime::scenario_spec spec;
    spec.name = "round-trip";
    spec.base.seed = 0xDEADBEEFCAFEULL;
    spec.base.operations = 77;
    spec.base.mean_interarrival = 1.25;
    spec.base.ports = 5;
    spec.base.servers_per_port = 2;
    spec.base.locate_weight = 0.5;
    spec.base.register_weight = 0.25;
    spec.base.migrate_weight = 0.125;
    spec.base.crash_weight = 0.0625;
    spec.base.crash_downtime = 33;
    spec.phases = {{40, 2.0}, {37, 0.25}};
    spec.zipf_skew = 1;
    spec.crowds = {{3, 0.75, 10, 30}};
    spec.outages = {{12, 0, 25, false}, {50, 1, -1, true}};
    spec.region_target = 4;
    spec.rebalance_every = 16;

    const auto bytes = runtime::encode_scenario_spec(spec);
    runtime::scenario_spec back;
    ASSERT_TRUE(runtime::decode_scenario_spec(bytes, back));

    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.base.seed, spec.base.seed);
    EXPECT_EQ(back.base.operations, spec.base.operations);
    EXPECT_EQ(back.base.mean_interarrival, spec.base.mean_interarrival);
    EXPECT_EQ(back.base.ports, spec.base.ports);
    EXPECT_EQ(back.base.servers_per_port, spec.base.servers_per_port);
    EXPECT_EQ(back.base.locate_weight, spec.base.locate_weight);
    EXPECT_EQ(back.base.crash_downtime, spec.base.crash_downtime);
    ASSERT_EQ(back.phases.size(), 2u);
    EXPECT_EQ(back.phases[1].operations, 37);
    EXPECT_EQ(back.phases[1].mean_interarrival, 0.25);
    EXPECT_EQ(back.zipf_skew, 1);
    ASSERT_EQ(back.crowds.size(), 1u);
    EXPECT_EQ(back.crowds[0].port, 3);
    EXPECT_EQ(back.crowds[0].share, 0.75);
    EXPECT_EQ(back.crowds[0].first_op, 10);
    EXPECT_EQ(back.crowds[0].last_op, 30);
    ASSERT_EQ(back.outages.size(), 2u);
    EXPECT_EQ(back.outages[0].at_op, 12);
    EXPECT_EQ(back.outages[0].heal_after, 25);
    EXPECT_FALSE(back.outages[0].restore);
    EXPECT_EQ(back.outages[1].heal_after, -1);
    EXPECT_TRUE(back.outages[1].restore);
    EXPECT_EQ(back.region_target, 4);
    EXPECT_EQ(back.rebalance_every, 16);
    EXPECT_EQ(back.total_operations(), 77);

    // Re-encoding the decoded spec is byte-identical (canonical form).
    EXPECT_EQ(runtime::encode_scenario_spec(back), bytes);
}

TEST(scenario_spec, codec_rejects_truncation_trailing_and_invalid) {
    const auto spec = runtime::named_scenario("hostile", 8, 120, 9);
    auto bytes = runtime::encode_scenario_spec(spec);
    runtime::scenario_spec back;
    ASSERT_TRUE(runtime::decode_scenario_spec(bytes, back));

    auto truncated = bytes;
    truncated.pop_back();
    EXPECT_FALSE(runtime::decode_scenario_spec(truncated, back));

    auto trailing = bytes;
    trailing.push_back(0);
    EXPECT_FALSE(runtime::decode_scenario_spec(trailing, back));

    // Structurally well-formed bytes carrying an invalid spec are rejected
    // by the embedded validator (here: a crowd port outside the table).
    auto bad = spec;
    bad.crowds.push_back({/*port=*/99, 0.5, 0, 10});
    EXPECT_FALSE(runtime::decode_scenario_spec(runtime::encode_scenario_spec(bad), back));
}

TEST(scenario_spec, named_catalog_constructs_and_rejects_unknowns) {
    const auto names = runtime::scenario_names();
    ASSERT_EQ(names.size(), 7u);
    for (const auto& name : names) {
        const auto spec = runtime::named_scenario(name, 8, 120, 1);
        EXPECT_EQ(spec.name, name);
        EXPECT_EQ(spec.total_operations(), 120) << name;
        EXPECT_GT(spec.rebalance_every, 0) << name;
    }
    EXPECT_THROW((void)runtime::named_scenario("no_such_scenario", 8, 120, 1),
                 std::invalid_argument);
    EXPECT_THROW((void)runtime::named_scenario("zipf", 0, 120, 1), std::invalid_argument);
    EXPECT_THROW((void)runtime::named_scenario("zipf", 8, 0, 1), std::invalid_argument);
}

// --- traffic shaping --------------------------------------------------------

TEST(scenario_traffic, full_share_flash_crowd_pins_every_draw_in_window) {
    auto spec = locate_only_spec(4, 40, 11);
    spec.name = "pin";
    spec.crowds = {{2, 1.0, 0, 40}};
    const auto run = run_on_hierarchy(spec, false);
    EXPECT_EQ(run.draws[2], 40);
    EXPECT_EQ(run.draws[0] + run.draws[1] + run.draws[3], 0);
    // Window exactness at partial coverage: ops [10, 20) all hit the crowd
    // port, so its draw count is at least the window width.
    auto windowed = locate_only_spec(4, 40, 11);
    windowed.name = "window";
    windowed.crowds = {{3, 1.0, 10, 20}};
    const auto wrun = run_on_hierarchy(windowed, false);
    EXPECT_GE(wrun.draws[3], 10);
    EXPECT_EQ(wrun.draws[0] + wrun.draws[1] + wrun.draws[2] + wrun.draws[3], 40);
}

TEST(scenario_traffic, empty_crowd_window_is_bitwise_inert) {
    auto base = locate_only_spec(8, 60, 21);
    base.zipf_skew = 1;
    auto crowded = base;
    crowded.crowds = {{0, 0.9, 30, 30}};  // [30, 30) matches no operation
    const auto a = run_on_hierarchy(base, false);
    const auto b = run_on_hierarchy(crowded, false);
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_EQ(a.draws, b.draws);
    ASSERT_EQ(a.st.wl.results.size(), b.st.wl.results.size());
    for (std::size_t i = 0; i < a.st.wl.results.size(); ++i) {
        EXPECT_EQ(a.st.wl.results[i].where, b.st.wl.results[i].where) << "op " << i;
        EXPECT_EQ(a.st.wl.results[i].latency, b.st.wl.results[i].latency) << "op " << i;
    }
}

TEST(scenario_traffic, zipf_draws_follow_rank_and_repeat_bit_identically) {
    const auto spec = runtime::named_scenario("zipf", 8, 160, 31);
    const auto a = run_on_hierarchy(spec, false);
    const auto b = run_on_hierarchy(spec, false);
    // Rank 1 dominates the tail port (expected ~59 vs ~7 draws at s=1).
    EXPECT_GT(a.draws[0], a.draws[7]);
    EXPECT_EQ(a.st.wl.hot_port, 0);
    EXPECT_GT(a.st.wl.hot_port_locate_share, 0.2);
    // Same spec, fresh world: every draw and every hop identical.
    EXPECT_EQ(a.draws, b.draws);
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_EQ(a.st.wl.makespan, b.st.wl.makespan);
}

TEST(scenario_traffic, arrival_phases_shape_the_makespan) {
    auto sparse = locate_only_spec(4, 60, 41);
    sparse.phases = {{60, 2.5}};
    auto dense = locate_only_spec(4, 60, 41);
    dense.phases = {{60, 0.25}};
    const auto slow = run_on_hierarchy(sparse, false);
    const auto fast = run_on_hierarchy(dense, false);
    EXPECT_GT(slow.st.wl.makespan, fast.st.wl.makespan);
}

// --- region outages ---------------------------------------------------------

TEST(scenario_regions, crash_bursts_fire_and_heal_without_reposts) {
    const auto spec = runtime::named_scenario("regional_outage", 8, 120, 51);
    const auto run = run_on_hierarchy(spec, false);
    EXPECT_GT(run.st.region_crashes, 0);
    // heal_after is sized to the run (n/4 ticks at mean inter-arrival 1),
    // so every burst heals within the arrival window.
    EXPECT_EQ(run.st.region_heals, run.st.region_crashes);
    // Crash-burst semantics: machines reboot empty, nothing is re-posted.
    EXPECT_EQ(run.st.heal_reposts, 0);
    EXPECT_EQ(run.st.promotions, 0);  // no tuner armed
    // Bindings hosted in the burst regions are gone: some locates fail.
    EXPECT_LT(run.st.wl.locates_found, run.st.wl.locates);
}

TEST(scenario_regions, healing_partitions_repost_surviving_bindings) {
    const auto spec = runtime::named_scenario("partition_heal", 8, 120, 61);
    const auto run = run_on_hierarchy(spec, false);
    EXPECT_GT(run.st.region_crashes, 0);
    EXPECT_EQ(run.st.region_heals, run.st.region_crashes);
    EXPECT_GT(run.st.heal_reposts, 0);
    // Reposts are tracked operations: they settle like any other op before
    // the driver returns.
    EXPECT_EQ(run.st.wl.completed, run.st.wl.issued);
}

TEST(scenario_regions, outage_region_beyond_the_carve_throws) {
    auto spec = locate_only_spec(4, 20, 71);
    spec.name = "beyond";
    spec.outages = {{5, 1000, -1, false}};
    net::graph g = net::make_hierarchical_graph(net::hierarchy{kFanouts});
    sim::simulator sim{g};
    sim.set_canonical_paths(true);
    strategies::hierarchical_strategy parent{net::hierarchy{kFanouts}};
    runtime::name_service ns{sim, parent};
    EXPECT_THROW((void)runtime::run_scenario(ns, spec), std::invalid_argument);
}

// --- staleness bookkeeping --------------------------------------------------

TEST(workload_hooks, answers_pointing_at_a_crashed_host_count_as_stale) {
    // One port, one host, locate-only mix; the host fail-stops mid-run and
    // never recovers.  Entries at the rendezvous nodes keep answering with
    // the dead address, so at end-of-run every found locate was served a
    // stale answer - exactly the cached-hint price the paper concedes.
    net::graph g = net::make_hierarchical_graph(net::hierarchy{kFanouts});
    sim::simulator sim{g};
    sim.set_canonical_paths(true);
    strategies::hierarchical_strategy parent{net::hierarchy{kFanouts}};
    runtime::name_service ns{sim, parent};
    runtime::workload_options wl;
    wl.seed = 81;
    wl.operations = 40;
    wl.ports = 1;
    wl.servers_per_port = 1;
    wl.locate_weight = 1;
    wl.register_weight = 0;
    wl.migrate_weight = 0;
    wl.crash_weight = 0;
    runtime::workload_hooks hooks;
    hooks.at_arrival = [](int i, runtime::workload_view& v) {
        if (i == 20) v.crash(v.hosts[0][0]);
    };
    const auto st = runtime::run_workload(ns, wl, hooks);
    EXPECT_GT(st.locates_found, 0);
    EXPECT_EQ(st.stale_served, st.locates_found);
    ASSERT_EQ(st.per_port.size(), 1u);
    EXPECT_EQ(st.per_port[0].stale_served, st.stale_served);
    EXPECT_EQ(st.per_port[0].locates, st.locates);
    EXPECT_EQ(st.hot_port, 0);
    EXPECT_EQ(st.hot_port_locate_share, 1);
}

// --- load-aware strategy ----------------------------------------------------

TEST(load_aware, cold_ports_behave_exactly_like_the_parent) {
    const strategies::hierarchical_strategy h{net::hierarchy{kFanouts}};
    // The parent's port-taking overloads live on the locate_strategy base
    // (hierarchical is a port-independent shotgun strategy).
    const core::locate_strategy& parent = h;
    strategies::load_aware_strategy la{parent};
    const core::port_id port = core::port_of("svc");
    EXPECT_EQ(la.node_count(), parent.node_count());
    EXPECT_EQ(la.hot_count(), 0u);
    EXPECT_EQ(la.post_set(60, port), parent.post_set(60, port));
    EXPECT_EQ(la.query_set(5, port), parent.query_set(5, port));
    EXPECT_EQ(la.staged_levels(), parent.staged_levels());
    for (int level = 1; level <= parent.staged_levels(); ++level)
        EXPECT_EQ(la.staged_query_set(5, level, port),
                  parent.staged_query_set(5, level, port));
}

TEST(load_aware, promotion_rewires_demotion_reverts) {
    net::graph g = net::make_hierarchical_graph(net::hierarchy{kFanouts});
    const strategies::hierarchical_strategy h{net::hierarchy{kFanouts}};
    const core::locate_strategy& parent = h;
    strategies::load_aware_strategy la{
        parent, {.hot_threshold = 12, .cool_threshold = 3, .replicas = 3}};
    const auto carve = net::partition_connected(g);
    la.set_regions(carve);
    const core::port_id port = core::port_of("hot-svc");
    const net::node_id client = 5;
    const net::node_id server = 60;

    la.observe(port, 20);
    const auto up = la.rebalance();
    ASSERT_EQ(up.promoted.size(), 1u);
    EXPECT_EQ(up.promoted[0], port);
    EXPECT_TRUE(la.hot(port));

    // One home per carve region; the hot post set carries them all, and the
    // client's query collapses to its own region's home - so the rendezvous
    // intersection is guaranteed for every client/server pair.
    const auto homes = la.homes(port);
    EXPECT_EQ(homes.size(), carve.parts.size());
    const auto posts = la.post_set(server, port);
    for (const net::node_id h : homes)
        EXPECT_TRUE(std::binary_search(posts.begin(), posts.end(), h));
    const auto query = la.query_set(client, port);
    ASSERT_EQ(query.size(), 1u);
    EXPECT_EQ(query[0], la.home_for(port, client));
    EXPECT_EQ(carve.part_of[static_cast<std::size_t>(query[0])],
              carve.part_of[static_cast<std::size_t>(client)]);
    EXPECT_TRUE(core::sets_intersect(posts, query));
    // Staged querying gains the same rendezvous at stage 1.
    const auto stage1 = la.staged_query_set(client, 1, port);
    EXPECT_TRUE(std::binary_search(stage1.begin(), stage1.end(), query[0]));

    // A silent window demotes (0 observed <= cool_threshold 3) and the
    // parent's sets apply verbatim again.
    const auto down = la.rebalance();
    ASSERT_EQ(down.demoted.size(), 1u);
    EXPECT_EQ(down.demoted[0], port);
    EXPECT_FALSE(la.hot(port));
    EXPECT_EQ(la.query_set(client, port), parent.query_set(client, port));
    EXPECT_EQ(la.post_set(server, port), parent.post_set(server, port));
}

TEST(load_aware, strided_homes_still_rendezvous_without_a_carve) {
    const strategies::hierarchical_strategy parent{net::hierarchy{kFanouts}};
    strategies::load_aware_strategy la{
        parent, {.hot_threshold = 4, .cool_threshold = 1, .replicas = 4}};
    const core::port_id port = core::port_of("no-carve");
    la.observe(port, 10);
    (void)la.rebalance();
    ASSERT_TRUE(la.hot(port));
    const auto homes = la.homes(port);
    EXPECT_GE(homes.size(), 1u);
    EXPECT_LE(homes.size(), 4u);
    EXPECT_TRUE(core::sets_intersect(la.post_set(60, port), la.query_set(5, port)));
}

TEST(load_aware, rejects_inverted_options_and_mismatched_carves) {
    const strategies::hierarchical_strategy parent{net::hierarchy{kFanouts}};
    EXPECT_THROW((strategies::load_aware_strategy{parent, {.replicas = 0}}),
                 std::invalid_argument);
    EXPECT_THROW((strategies::load_aware_strategy{
                     parent, {.hot_threshold = 2, .cool_threshold = 5}}),
                 std::invalid_argument);
    strategies::load_aware_strategy la{parent};
    net::graph small = net::make_hierarchical_graph(net::hierarchy{{2, 2}});
    EXPECT_THROW(la.set_regions(net::partition_connected(small)), std::invalid_argument);
}

// --- adaptive vs static oracle ---------------------------------------------

TEST(scenario_adaptive, load_aware_cuts_hot_port_hops_on_an_identical_stream) {
    auto spec = runtime::named_scenario("zipf", 8, 240, 20260807);
    // Wide windows, so rank 1's ~37% share clears the fixture's promotion
    // threshold well inside the run.
    spec.rebalance_every = 60;
    const auto stat = run_on_hierarchy(spec, false);
    const auto adap = run_on_hierarchy(spec, true);
    // The tuner consumes no driver randomness, so both cells see the exact
    // same operation stream - the comparison is strategy-only.
    ASSERT_EQ(stat.draws, adap.draws);
    ASSERT_EQ(stat.st.wl.hot_port, adap.st.wl.hot_port);
    EXPECT_GT(adap.st.promotions, 0);
    EXPECT_GT(adap.st.hot_reposts, 0);
    const auto hp = static_cast<std::size_t>(stat.st.wl.hot_port);
    EXPECT_LT(adap.st.wl.per_port[hp].hops, stat.st.wl.per_port[hp].hops);
    EXPECT_LT(adap.st.wl.hot_port_hop_share, stat.st.wl.hot_port_hop_share);
}

// --- cross-engine differential ---------------------------------------------

TEST(scenario_diff, every_named_scenario_is_bit_identical_across_engines) {
    // par1 vs par2/par4/par8 and serial vs serial-nobatch, full stats and
    // counter maps - the same gate mm_fuzz --scenario runs per seed.
    for (const auto& name : runtime::scenario_names()) {
        const auto report = runtime::diff_scenario_engines(name, 20260807);
        EXPECT_TRUE(report.ok) << name << ": " << report.divergence;
    }
}

}  // namespace
}  // namespace mm
