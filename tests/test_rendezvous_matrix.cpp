// Tests for core/rendezvous_matrix, including exact reproduction of the
// paper's example matrices 1-4 (Section 2.3.1).
#include <gtest/gtest.h>

#include "core/rendezvous_matrix.h"
#include "strategies/basic.h"
#include "strategies/checkerboard.h"

namespace mm::core {
namespace {

using strategies::broadcast_strategy;
using strategies::central_strategy;
using strategies::checkerboard_strategy;
using strategies::sweep_strategy;

TEST(rendezvous_matrix, example1_broadcasting) {
    // "The server stays put and client looks everywhere": r_ij = {i}.
    const broadcast_strategy s{9};
    const auto r = rendezvous_matrix::from_strategy(s);
    EXPECT_TRUE(r.total());
    EXPECT_TRUE(r.singleton());
    for (net::node_id i = 0; i < 9; ++i)
        for (net::node_id j = 0; j < 9; ++j) EXPECT_EQ(r.entry(i, j), node_set{i});
    // m(i,j) = #P + #Q = 1 + 9.
    EXPECT_EQ(r.message_passes(0, 5), 10);
    EXPECT_DOUBLE_EQ(r.average_message_passes(), 10.0);
    // k_i = n for every node.
    for (const auto k : r.multiplicities()) EXPECT_EQ(k, 9);
}

TEST(rendezvous_matrix, example2_sweeping) {
    // "The client stays put and the server looks for work": r_ij = {j}.
    const sweep_strategy s{9};
    const auto r = rendezvous_matrix::from_strategy(s);
    EXPECT_TRUE(r.total());
    for (net::node_id i = 0; i < 9; ++i)
        for (net::node_id j = 0; j < 9; ++j) EXPECT_EQ(r.entry(i, j), node_set{j});
    EXPECT_DOUBLE_EQ(r.average_message_passes(), 10.0);
}

TEST(rendezvous_matrix, example3_centralized) {
    // All services post at node 3 (0-based 2), all clients query node 3.
    const central_strategy s{9, 2};
    const auto r = rendezvous_matrix::from_strategy(s);
    EXPECT_TRUE(r.total());
    EXPECT_TRUE(r.singleton());
    for (net::node_id i = 0; i < 9; ++i)
        for (net::node_id j = 0; j < 9; ++j) EXPECT_EQ(r.entry(i, j), node_set{2});
    EXPECT_DOUBLE_EQ(r.average_message_passes(), 2.0);
    const auto k = r.multiplicities();
    EXPECT_EQ(k[2], 81);
    EXPECT_EQ(k[0], 0);
}

TEST(rendezvous_matrix, example4_truly_distributed) {
    // The 9-node checkerboard: block (u, v) filled with node 3u + v.
    const checkerboard_strategy s{9};
    const auto r = rendezvous_matrix::from_strategy(s);
    EXPECT_TRUE(r.total());
    EXPECT_TRUE(r.singleton());
    for (net::node_id i = 0; i < 9; ++i)
        for (net::node_id j = 0; j < 9; ++j)
            EXPECT_EQ(r.entry(i, j), node_set{static_cast<net::node_id>(3 * (i / 3) + j / 3)});
    // Every node is the rendezvous of exactly n pairs.
    for (const auto k : r.multiplicities()) EXPECT_EQ(k, 9);
    // m(n) = 2*sqrt(9) = 6.
    EXPECT_DOUBLE_EQ(r.average_message_passes(), 6.0);
}

TEST(rendezvous_matrix, example1_prints_like_the_paper) {
    const broadcast_strategy s{9};
    const auto r = rendezvous_matrix::from_strategy(s);
    const auto text = r.to_string();
    EXPECT_NE(text.find("1 1 1 1 1 1 1 1 1"), std::string::npos);
    EXPECT_NE(text.find("9 9 9 9 9 9 9 9 9"), std::string::npos);
}

TEST(rendezvous_matrix, example3_prints_like_the_paper) {
    const central_strategy s{9, 2};
    const auto text = rendezvous_matrix::from_strategy(s).to_string();
    // Every row is the central node, 1-based "3".
    EXPECT_NE(text.find("3 3 3 3 3 3 3 3 3"), std::string::npos);
    EXPECT_EQ(text.find('1'), std::string::npos);
}

TEST(rendezvous_matrix, from_entries_recovers_row_and_column_unions) {
    // 2x2 matrix with singleton entries.
    std::vector<node_set> entries{{0}, {1}, {0}, {1}};
    const auto r = rendezvous_matrix::from_entries(2, std::move(entries));
    EXPECT_EQ(r.post_set(0), (node_set{0, 1}));
    EXPECT_EQ(r.post_set(1), (node_set{0, 1}));
    EXPECT_EQ(r.query_set(0), (node_set{0}));
    EXPECT_EQ(r.query_set(1), (node_set{1}));
    EXPECT_EQ(r.message_passes(0, 1), 3);
}

TEST(rendezvous_matrix, from_entries_validates_shape) {
    EXPECT_THROW((void)rendezvous_matrix::from_entries(2, {{0}, {1}}), std::invalid_argument);
}

TEST(rendezvous_matrix, total_detects_missing_rendezvous) {
    std::vector<node_set> entries{{0}, {}, {0}, {1}};
    const auto r = rendezvous_matrix::from_entries(2, std::move(entries));
    EXPECT_FALSE(r.total());
    EXPECT_FALSE(r.singleton());
}

TEST(rendezvous_matrix, multiplicities_sum_to_n_squared_for_singletons) {
    const checkerboard_strategy s{16};
    const auto r = rendezvous_matrix::from_strategy(s);
    ASSERT_TRUE(r.singleton());
    std::int64_t sum = 0;
    for (const auto k : r.multiplicities()) sum += k;
    EXPECT_EQ(sum, 16 * 16);  // constraint (M2) with equality
}

TEST(rendezvous_matrix, weighted_average_matches_m3_prime) {
    const broadcast_strategy s{4};  // #P = 1, #Q = 4
    const auto r = rendezvous_matrix::from_strategy(s);
    // m(i,j) = #P + alpha*#Q = 1 + 4*alpha.
    EXPECT_DOUBLE_EQ(r.average_weighted_message_passes(1.0), 5.0);
    EXPECT_DOUBLE_EQ(r.average_weighted_message_passes(2.0), 9.0);
    EXPECT_DOUBLE_EQ(r.average_weighted_message_passes(0.5), 3.0);
}

TEST(rendezvous_matrix, min_max_message_passes) {
    const central_strategy s{5, 0};
    const auto r = rendezvous_matrix::from_strategy(s);
    EXPECT_EQ(r.min_message_passes(), 2);
    EXPECT_EQ(r.max_message_passes(), 2);
    const broadcast_strategy b{5};
    const auto rb = rendezvous_matrix::from_strategy(b);
    EXPECT_EQ(rb.min_message_passes(), 6);
    EXPECT_EQ(rb.max_message_passes(), 6);
}

TEST(rendezvous_matrix, product_sum_factorizes) {
    const checkerboard_strategy s{9};
    const auto r = rendezvous_matrix::from_strategy(s);
    // Each #P = #Q = 3, so sum_ij #P#Q = (9*3)*(9*3).
    EXPECT_DOUBLE_EQ(r.product_sum(), 27.0 * 27.0);
}

TEST(rendezvous_matrix, occurrence_spans_known_values) {
    // Broadcast: node v fills its whole row: R_v = 1, C_v = n.
    const broadcast_strategy b{5};
    const auto spans = rendezvous_matrix::from_strategy(b).occurrence_spans();
    for (net::node_id v = 0; v < 5; ++v) {
        EXPECT_EQ(spans.rows[static_cast<std::size_t>(v)], 1);
        EXPECT_EQ(spans.columns[static_cast<std::size_t>(v)], 5);
    }
    // Central: the center appears in every row and column, others nowhere.
    const central_strategy c{5, 2};
    const auto cs = rendezvous_matrix::from_strategy(c).occurrence_spans();
    EXPECT_EQ(cs.rows[2], 5);
    EXPECT_EQ(cs.columns[2], 5);
    EXPECT_EQ(cs.rows[0], 0);
}

TEST(rendezvous_matrix, proposition1_lemma_ri_ci_bounds_ki) {
    // The inequality the Proposition 1 proof stands on: R_v * C_v >= k_v.
    for (const net::node_id n : {9, 16, 25}) {
        const checkerboard_strategy s{n};
        const auto r = rendezvous_matrix::from_strategy(s);
        const auto spans = r.occurrence_spans();
        const auto k = r.multiplicities();
        for (net::node_id v = 0; v < n; ++v)
            EXPECT_GE(spans.rows[static_cast<std::size_t>(v)] *
                          spans.columns[static_cast<std::size_t>(v)],
                      k[static_cast<std::size_t>(v)])
                << "node " << v << " at n = " << n;
    }
}

TEST(rendezvous_matrix, matrix_free_costs_agree_with_matrix) {
    for (const net::node_id n : {7, 16, 30}) {
        const checkerboard_strategy s{n};
        const auto r = rendezvous_matrix::from_strategy(s);
        EXPECT_DOUBLE_EQ(average_message_passes(s), r.average_message_passes());
        for (const double alpha : {0.5, 1.0, 4.0})
            EXPECT_DOUBLE_EQ(average_weighted_message_passes(s, alpha),
                             r.average_weighted_message_passes(alpha));
    }
}

TEST(rendezvous_matrix, index_bounds_checked) {
    const central_strategy s{3, 0};
    const auto r = rendezvous_matrix::from_strategy(s);
    EXPECT_THROW((void)r.entry(3, 0), std::out_of_range);
    EXPECT_THROW((void)r.entry(0, -1), std::out_of_range);
    EXPECT_THROW((void)r.post_set(3), std::out_of_range);
    EXPECT_THROW((void)r.query_set(-1), std::out_of_range);
}

}  // namespace
}  // namespace mm::core
