// Tests for dynamic membership under load: simulator join/leave/rejoin
// ordered against in-flight (batched) deliveries, the name_service churn
// hooks, and serial-vs-parallel bit-equality of churning workloads.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "net/topologies.h"
#include "runtime/workload.h"
#include "sim/simulator.h"
#include "strategies/grid.h"

namespace mm {
namespace {

class recorder final : public sim::node_handler {
public:
    std::vector<sim::message> delivered;
    void on_message(sim::simulator&, const sim::message& msg) override {
        delivered.push_back(msg);
    }
};

// --- simulator membership --------------------------------------------------

TEST(churn_sim, join_leave_rejoin_basics) {
    auto g = net::make_ring(6);
    sim::simulator sim{g};
    ASSERT_TRUE(sim.topology_mutable());

    const std::array<net::node_id, 2> attach{0, 3};
    const net::node_id v = sim.join(attach);
    EXPECT_EQ(v, 6);
    EXPECT_TRUE(g.present(v));
    EXPECT_EQ(g.degree(v), 2);
    EXPECT_FALSE(sim.crashed(v));

    sim.leave(v);
    EXPECT_TRUE(sim.departed(v));
    EXPECT_TRUE(sim.crashed(v));  // departed implies unreachable
    EXPECT_FALSE(g.present(v));
    EXPECT_EQ(g.live_node_count(), 6);

    const std::array<net::node_id, 1> fresh{2};
    sim.rejoin(v, fresh);
    EXPECT_FALSE(sim.departed(v));
    EXPECT_TRUE(g.present(v));
    EXPECT_EQ(g.degree(v), 1);
    EXPECT_EQ(sim.stats().get(sim::counter_membership_events), 3);
}

TEST(churn_sim, immutable_simulator_rejects_membership_calls) {
    const auto g = net::make_ring(4);
    sim::simulator sim{g};
    EXPECT_FALSE(sim.topology_mutable());
    const std::array<net::node_id, 1> attach{0};
    EXPECT_THROW((void)sim.join(attach), std::logic_error);
    EXPECT_THROW(sim.leave(0), std::logic_error);
}

TEST(churn_sim, join_validation) {
    auto g = net::make_ring(4);
    sim::simulator sim{g};
    EXPECT_THROW((void)sim.join({}), std::invalid_argument);  // no attach points
    sim.leave(1);
    const std::array<net::node_id, 1> gone{1};
    EXPECT_THROW((void)sim.join(gone), std::invalid_argument);  // absent anchor
    EXPECT_THROW(sim.rejoin(0, gone), std::invalid_argument);   // 0 never left
}

TEST(churn_sim, messages_route_through_joined_node) {
    // Ring 0..5 plus a joined chord node: 0 - v - 3 shortens the 0->3 walk.
    auto g = net::make_ring(6);
    sim::simulator sim{g};
    const std::array<net::node_id, 2> attach{0, 3};
    const net::node_id v = sim.join(attach);

    auto rx = std::make_shared<recorder>();
    sim.attach(3, rx);
    sim::message msg;
    msg.source = 0;
    msg.destination = 3;
    sim.send(msg);
    sim.run();
    ASSERT_EQ(rx->delivered.size(), 1u);
    EXPECT_EQ(sim.stats().get(sim::counter_hops), 2);  // via v, not 3 ring hops
    EXPECT_GT(sim.transit_traffic(v), 0);
}

TEST(churn_sim, leave_devolves_in_flight_batched_deliveries) {
    // A message already in flight across a node that then leaves must behave
    // identically whether the fast batched path or the slow per-hop path
    // carries it: hops made before the leave are counted, delivery fails.
    std::vector<std::vector<std::int64_t>> outcomes;
    for (const bool batched : {true, false}) {
        auto g = net::make_path(6);  // 0-1-2-3-4-5
        sim::simulator sim{g};
        sim.set_batched_delivery(batched);
        auto rx = std::make_shared<recorder>();
        sim.attach(5, rx);

        sim::message msg;
        msg.source = 0;
        msg.destination = 5;
        sim.send(msg);
        sim.run_until(2);  // the message sits mid-path, short of node 3
        sim.leave(3);
        sim.run();

        EXPECT_EQ(rx->delivered.size(), 0u) << "batched=" << batched;
        EXPECT_EQ(sim.stats().get(sim::counter_messages_dropped), 1) << "batched=" << batched;
        outcomes.push_back({sim.stats().get(sim::counter_hops),
                            sim.stats().get(sim::counter_messages_delivered), sim.now()});
    }
    EXPECT_EQ(outcomes[0], outcomes[1]);
}

TEST(churn_sim, rejoined_node_carries_new_traffic) {
    auto g = net::make_path(4);  // 0-1-2-3
    sim::simulator sim{g};
    sim.leave(1);                // splits the path
    const std::array<net::node_id, 2> attach{0, 2};
    sim.rejoin(1, attach);       // heals it

    auto rx = std::make_shared<recorder>();
    sim.attach(3, rx);
    sim::message msg;
    msg.source = 0;
    msg.destination = 3;
    sim.send(msg);
    sim.run();
    ASSERT_EQ(rx->delivered.size(), 1u);
    EXPECT_EQ(sim.stats().get(sim::counter_hops), 3);
}

// --- name_service churn hooks ----------------------------------------------

TEST(churn_name_service, joined_node_serves_and_leave_forgets) {
    auto g = net::make_grid(4, 4);
    sim::simulator sim{g};
    const strategies::manhattan_strategy strategy{4, 4};
    runtime::name_service ns{sim, strategy};

    const std::array<net::node_id, 2> attach{5, 6};
    const net::node_id v = ns.join_node(attach);
    EXPECT_EQ(v, 16);

    const auto port = core::port_of("churn-svc");
    ns.register_server(port, 5);
    EXPECT_TRUE(ns.locate(port, 10).found);

    ns.leave_node(5);  // the registration's host leaves for good
    const auto after = ns.locate(port, 10);
    EXPECT_FALSE(after.found);
}

TEST(churn_name_service, rejoined_node_starts_with_empty_state) {
    auto g = net::make_grid(4, 4);
    sim::simulator sim{g};
    const strategies::manhattan_strategy strategy{4, 4};
    runtime::name_service ns{sim, strategy};

    const auto port = core::port_of("churn-svc");
    ns.register_server(port, 9);
    ASSERT_TRUE(ns.locate(port, 2).found);

    ns.leave_node(9);
    const std::array<net::node_id, 1> attach{8};
    ns.rejoin_node(9, attach);
    // The machine at id 9 is back but remembers nothing.
    EXPECT_FALSE(ns.locate(port, 2).found);
    ns.register_server(port, 9);
    EXPECT_TRUE(ns.locate(port, 2).found);
}

// --- churning workloads: serial vs parallel bit-equality --------------------

struct churn_run {
    runtime::workload_stats stats;
    std::int64_t hops = 0;
    std::int64_t sent = 0;
    std::int64_t delivered = 0;
    std::int64_t dropped = 0;
    std::int64_t membership_events = 0;
    net::node_id live_nodes = 0;
};

churn_run run_churn_workload(int threads, const runtime::workload_options& wl) {
    const net::node_id side = 8;
    net::graph g = net::make_grid(side, side);
    sim::simulator sim{g};
    if (threads > 0) sim.set_worker_threads(threads);
    const strategies::manhattan_strategy strategy{side, side};
    runtime::name_service ns{sim, strategy};
    churn_run out;
    out.stats = runtime::run_workload(ns, wl);
    out.hops = sim.stats().get(sim::counter_hops);
    out.sent = sim.stats().get(sim::counter_messages_sent);
    out.delivered = sim.stats().get(sim::counter_messages_delivered);
    out.dropped = sim.stats().get(sim::counter_messages_dropped);
    out.membership_events = sim.stats().get(sim::counter_membership_events);
    out.live_nodes = g.live_node_count();
    return out;
}

void expect_equal_runs(const churn_run& a, const churn_run& b) {
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.membership_events, b.membership_events);
    EXPECT_EQ(a.live_nodes, b.live_nodes);
    const auto& sa = a.stats;
    const auto& sb = b.stats;
    EXPECT_EQ(sa.issued, sb.issued);
    EXPECT_EQ(sa.completed, sb.completed);
    EXPECT_EQ(sa.locates, sb.locates);
    EXPECT_EQ(sa.locates_found, sb.locates_found);
    EXPECT_EQ(sa.crashes, sb.crashes);
    EXPECT_EQ(sa.joins, sb.joins);
    EXPECT_EQ(sa.leaves, sb.leaves);
    EXPECT_EQ(sa.rejoins, sb.rejoins);
    EXPECT_EQ(sa.per_op_message_passes, sb.per_op_message_passes);
    EXPECT_EQ(sa.global_message_passes, sb.global_message_passes);
    EXPECT_EQ(sa.max_in_flight, sb.max_in_flight);
    EXPECT_EQ(sa.makespan, sb.makespan);
    EXPECT_EQ(sa.latency_p50, sb.latency_p50);
    EXPECT_EQ(sa.latency_p95, sb.latency_p95);
    EXPECT_EQ(sa.latency_p99, sb.latency_p99);
    EXPECT_EQ(sa.latency_max, sb.latency_max);
    ASSERT_EQ(sa.results.size(), sb.results.size());
    for (std::size_t i = 0; i < sa.results.size(); ++i) {
        const auto& ra = sa.results[i];
        const auto& rb = sb.results[i];
        EXPECT_EQ(ra.found, rb.found) << "op " << i;
        EXPECT_EQ(ra.where, rb.where) << "op " << i;
        EXPECT_EQ(ra.latency, rb.latency) << "op " << i;
        EXPECT_EQ(ra.message_passes, rb.message_passes) << "op " << i;
        EXPECT_EQ(ra.issued_at, rb.issued_at) << "op " << i;
        EXPECT_EQ(ra.completed_at, rb.completed_at) << "op " << i;
    }
}

runtime::workload_options churn_mix(std::uint64_t seed) {
    runtime::workload_options wl;
    wl.seed = seed;
    wl.operations = 200;
    wl.mean_interarrival = 1.0;
    wl.ports = 8;
    wl.servers_per_port = 2;
    wl.locate_weight = 0.70;
    wl.register_weight = 0.05;
    wl.migrate_weight = 0.05;
    wl.crash_weight = 0.04;
    wl.crash_downtime = 25;
    wl.join_weight = 0.08;
    wl.leave_weight = 0.05;
    wl.rejoin_weight = 0.03;
    wl.join_edges = 2;
    return wl;
}

TEST(churn_workload, worker_counts_bit_identical_under_churn) {
    // The determinism contract of the parallel engine: the 1-worker run is
    // the serial-order reference (as in e18/test_parallel_sim), and every
    // wider worker count must reproduce it bit for bit - here with joins,
    // leaves, rejoins and crashes all mixed into the stream.
    for (const std::uint64_t seed : {1ULL, 20260731ULL}) {
        const auto wl = churn_mix(seed);
        const auto reference = run_churn_workload(1, wl);
        EXPECT_GT(reference.stats.joins, 0);
        EXPECT_GT(reference.stats.leaves, 0);
        EXPECT_GT(reference.stats.rejoins, 0);
        EXPECT_EQ(reference.membership_events,
                  reference.stats.joins + reference.stats.leaves + reference.stats.rejoins);
        EXPECT_EQ(reference.live_nodes, 64 + reference.stats.joins - reference.stats.leaves +
                                            reference.stats.rejoins);
        for (const int threads : {2, 4}) {
            const auto par = run_churn_workload(threads, wl);
            expect_equal_runs(reference, par);
        }
    }
}

TEST(churn_workload, serial_engine_runs_churn_deterministically) {
    // The plain serial engine (no worker pool) is its own reference: two
    // identical churning runs must agree bit for bit.  (Cross-engine
    // equality is pinned at the 1-worker run instead - multicast trees
    // follow shortest-path tie-breaks, which the serial engine leaves
    // residency-dependent.)
    const auto wl = churn_mix(20260807);
    const auto first = run_churn_workload(0, wl);
    const auto second = run_churn_workload(0, wl);
    EXPECT_GT(first.stats.joins, 0);
    EXPECT_GT(first.stats.leaves, 0);
    expect_equal_runs(first, second);
}

TEST(churn_workload, churn_requires_a_mutable_graph) {
    const auto g = net::make_grid(4, 4);
    sim::simulator sim{g};  // const graph: topology is frozen
    const strategies::manhattan_strategy strategy{4, 4};
    runtime::name_service ns{sim, strategy};
    auto wl = churn_mix(1);
    wl.operations = 10;
    EXPECT_THROW((void)runtime::run_workload(ns, wl), std::invalid_argument);
}

TEST(churn_workload, zero_churn_weights_reproduce_the_static_mix) {
    // With churn weights at zero the dice stream and therefore the whole
    // run must be identical over mutable and immutable simulators.
    runtime::workload_options wl;
    wl.seed = 99;
    wl.operations = 120;
    const net::node_id side = 6;
    const strategies::manhattan_strategy strategy{side, side};

    const auto g_const = net::make_grid(side, side);
    sim::simulator sim_a{g_const};
    runtime::name_service ns_a{sim_a, strategy};
    const auto stats_a = runtime::run_workload(ns_a, wl);

    net::graph g_mut = net::make_grid(side, side);
    sim::simulator sim_b{g_mut};
    runtime::name_service ns_b{sim_b, strategy};
    const auto stats_b = runtime::run_workload(ns_b, wl);

    EXPECT_EQ(stats_a.issued, stats_b.issued);
    EXPECT_EQ(stats_a.completed, stats_b.completed);
    EXPECT_EQ(stats_a.global_message_passes, stats_b.global_message_passes);
    EXPECT_EQ(stats_a.makespan, stats_b.makespan);
    EXPECT_EQ(stats_b.joins, 0);
    EXPECT_EQ(stats_b.leaves, 0);
}

}  // namespace
}  // namespace mm
