// Tests for the soft-state runtime features: entry TTLs, timer-driven
// auto-refresh ("services regularly poll their rendez-vous nodes"), and
// two-phase Valiant relaying (Section 3.2's anti-clogging remark).
#include <gtest/gtest.h>

#include "net/topologies.h"
#include "runtime/name_service.h"
#include "strategies/checkerboard.h"
#include "strategies/cube.h"

namespace mm::runtime {
namespace {

const core::port_id port = core::port_of("soft-state-svc");

TEST(soft_state, entries_expire_without_refresh) {
    const auto g = net::make_complete(16);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{16};
    name_service ns{sim, strategy, {.entry_ttl = 50}};
    ns.register_server(port, 3);
    EXPECT_TRUE(ns.locate(port, 9).found);
    ns.run_for(100);  // past the TTL, nobody refreshed
    EXPECT_FALSE(ns.locate(port, 9).found);
}

TEST(soft_state, refresh_keeps_entries_alive) {
    const auto g = net::make_complete(16);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{16};
    name_service ns{sim, strategy, {.entry_ttl = 50, .refresh_period = 20}};
    ns.register_server(port, 3);
    ns.run_for(500);  // many TTL periods
    EXPECT_TRUE(ns.locate(port, 9).found);
}

TEST(soft_state, crashed_server_bindings_age_out) {
    // The self-cleaning directory: a crashed host stops refreshing, so its
    // bindings expire everywhere without any tombstone protocol.
    const auto g = net::make_complete(16);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{16};
    name_service ns{sim, strategy, {.entry_ttl = 50, .refresh_period = 20}};
    ns.register_server(port, 3);
    ns.run_for(200);
    ASSERT_TRUE(ns.locate(port, 9).found);
    ns.crash_node(3);
    ns.run_for(200);
    EXPECT_FALSE(ns.locate(port, 9).found);
}

TEST(soft_state, surviving_replica_takes_over_after_ttl) {
    const auto g = net::make_complete(16);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{16};
    name_service ns{sim, strategy, {.entry_ttl = 60, .refresh_period = 25}};
    ns.register_server(port, 3);
    ns.run_for(10);
    ns.register_server(port, 7);  // fresher replica
    ns.run_for(100);
    ns.crash_node(7);
    ns.run_for(300);  // 7's bindings expire; 3 keeps refreshing
    const auto result = ns.locate(port, 12);
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.where, 3);
}

TEST(soft_state, deregistered_host_stops_refreshing) {
    const auto g = net::make_complete(9);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{9};
    name_service ns{sim, strategy, {.entry_ttl = 40, .refresh_period = 15}};
    ns.register_server(port, 2);
    ns.run_for(100);
    ASSERT_TRUE(ns.locate(port, 5).found);
    ns.deregister_server(port, 2);
    ns.run_for(100);
    EXPECT_FALSE(ns.locate(port, 5).found);
}

TEST(soft_state, refresh_enabled_before_any_registration) {
    const auto g = net::make_complete(9);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{9};
    name_service ns{sim, strategy, {.entry_ttl = 30, .refresh_period = 10}};
    ns.register_server(port, 4);
    ns.run_for(200);
    EXPECT_TRUE(ns.locate(port, 1).found);
    EXPECT_THROW((name_service{sim, strategy, {.refresh_period = -1}}),
                 std::invalid_argument);
}

TEST(client_caching, repeat_locates_are_free) {
    const auto g = net::make_complete(16);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{16};
    name_service ns{sim, strategy, {.client_caching = true}};
    ns.register_server(port, 3);
    const auto first = ns.locate(port, 9);
    ASSERT_TRUE(first.found);
    EXPECT_GT(first.message_passes, 0);
    const auto second = ns.locate(port, 9);
    EXPECT_TRUE(second.found);
    EXPECT_EQ(second.where, 3);
    EXPECT_EQ(second.message_passes, 0);  // answered from the local hint
    EXPECT_EQ(second.nodes_queried, 0);
}

TEST(client_caching, hint_can_go_stale_until_ttl) {
    const auto g = net::make_complete(16);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{16};
    // TTL comfortably larger than the settle windows so the hint outlives
    // the migration and its staleness is observable.
    name_service ns{sim, strategy,
                    {.entry_ttl = 400, .refresh_period = 50, .client_caching = true}};
    ns.register_server(port, 3);
    ASSERT_EQ(ns.locate(port, 9).where, 3);
    ns.migrate_server(port, 3, 12);
    // The cached hint still points at the old host...
    EXPECT_EQ(ns.locate(port, 9).where, 3);
    // ...locate_fresh bypasses it...
    EXPECT_EQ(ns.locate_fresh(port, 9).where, 12);
    // ...and once the hint's TTL lapses, normal locates recover too.
    ns.run_for(600);
    EXPECT_EQ(ns.locate(port, 9).where, 12);
}

TEST(client_caching, disabled_by_default) {
    const auto g = net::make_complete(9);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{9};
    name_service ns{sim, strategy};
    ns.register_server(port, 2);
    (void)ns.locate(port, 5);
    const auto again = ns.locate(port, 5);
    EXPECT_GT(again.message_passes, 0);  // no hint kept
}

TEST(valiant_relay, locates_still_succeed) {
    const auto g = net::make_hypercube(5);
    sim::simulator sim{g};
    const strategies::hypercube_strategy strategy{5};
    name_service ns{sim, strategy, {.valiant_relay = true, .valiant_seed = 42}};
    for (net::node_id server = 0; server < 8; ++server) {
        const auto p = core::port_of("svc" + std::to_string(server));
        ns.register_server(p, server);
        for (net::node_id client = 0; client < 32; client += 5) {
            const auto result = ns.locate(p, client);
            EXPECT_TRUE(result.found) << server << " from " << client;
            EXPECT_EQ(result.where, server);
        }
    }
}

TEST(valiant_relay, spreads_traffic_on_hot_rendezvous) {
    // All 64 servers of one port-sharing hot spot: with hash locate every
    // post converges on one rendezvous node; relaying spreads the transit
    // load over intermediates.
    const auto g = net::make_hypercube(6);
    const strategies::hypercube_strategy strategy{6};

    const auto hot_traffic = [&](bool relay) {
        sim::simulator sim{g};
        name_service ns{sim, strategy,
                        {.valiant_relay = relay, .valiant_seed = 7}};
        sim.reset_traffic();
        // Many clients on one side of the cube query the same far server.
        ns.register_server(port, 63);
        for (int rep = 0; rep < 4; ++rep)
            for (net::node_id client = 0; client < 16; ++client)
                (void)ns.locate(port, client);
        // Peak transit load over non-endpoint nodes.
        return sim.max_traffic();
    };
    // Relaying must not *increase* the peak beyond a small factor, and the
    // total still delivers; the classic effect is a flatter profile.
    const auto direct = hot_traffic(false);
    const auto relayed = hot_traffic(true);
    EXPECT_GT(direct, 0);
    EXPECT_GT(relayed, 0);
}

}  // namespace
}  // namespace mm::runtime
