// Tests for lighthouse/network_lighthouse: the practical point-to-point
// version of Lighthouse Locate (end of Section 4).
#include <gtest/gtest.h>

#include "lighthouse/network_lighthouse.h"
#include "net/topologies.h"

namespace mm::lighthouse {
namespace {

network_lighthouse_params base_params() {
    network_lighthouse_params p;
    p.servers = {5, 77, 130};
    p.client = 112;  // grid center-ish
    p.server_beam_length = 8;
    p.server_period = 6;
    p.trail_lifetime = 48;
    p.client_base_length = 2;
    p.client_period = 6;
    p.cache_capacity = 8;
    p.max_time = 1 << 15;
    p.seed = 3;
    return p;
}

TEST(network_lighthouse, locates_on_a_grid) {
    const auto g = net::make_grid(15, 15);
    const net::routing_table routes{g};
    const auto result = run_network_lighthouse(g, routes, base_params());
    EXPECT_TRUE(result.located);
    EXPECT_NE(result.found_address, net::invalid_node);
    EXPECT_GT(result.client_messages, 0);
    EXPECT_GT(result.server_messages, 0);
}

TEST(network_lighthouse, ruler_schedule_locates_too) {
    const auto g = net::make_grid(15, 15);
    const net::routing_table routes{g};
    auto p = base_params();
    p.schedule = client_schedule::ruler;
    EXPECT_TRUE(run_network_lighthouse(g, routes, p).located);
}

TEST(network_lighthouse, no_servers_never_locates) {
    const auto g = net::make_grid(9, 9);
    const net::routing_table routes{g};
    auto p = base_params();
    p.servers.clear();
    p.client = 40;
    p.max_time = 2048;
    const auto result = run_network_lighthouse(g, routes, p);
    EXPECT_FALSE(result.located);
    EXPECT_EQ(result.time_to_locate, p.max_time);
    EXPECT_GT(result.client_trials, 0);
}

TEST(network_lighthouse, found_address_is_a_real_server) {
    const auto g = net::make_grid(15, 15, net::wrap_mode::torus);
    const net::routing_table routes{g};
    const auto p = base_params();
    const auto result = run_network_lighthouse(g, routes, p);
    ASSERT_TRUE(result.located);
    EXPECT_TRUE(std::find(p.servers.begin(), p.servers.end(), result.found_address) !=
                p.servers.end());
}

TEST(network_lighthouse, deterministic_per_seed) {
    const auto g = net::make_grid(13, 13);
    const net::routing_table routes{g};
    auto p = base_params();
    p.client = 84;
    const auto a = run_network_lighthouse(g, routes, p);
    const auto b = run_network_lighthouse(g, routes, p);
    EXPECT_EQ(a.time_to_locate, b.time_to_locate);
    EXPECT_EQ(a.client_messages, b.client_messages);
    EXPECT_EQ(a.found_address, b.found_address);
}

TEST(network_lighthouse, tiny_caches_cause_evictions) {
    // Many servers, capacity-1 caches: trails constantly evict each other
    // ("too-small caches can discard (port, address) pairs").
    const auto g = net::make_grid(11, 11);
    const net::routing_table routes{g};
    auto p = base_params();
    p.servers = {0, 10, 110, 120, 60, 55, 65};
    p.client = 60;
    p.cache_capacity = 1;
    const auto small = run_network_lighthouse(g, routes, p);
    EXPECT_GT(small.cache_evictions, 0);
    p.cache_capacity = 64;
    const auto big = run_network_lighthouse(g, routes, p);
    EXPECT_EQ(big.cache_evictions, 0);
}

TEST(network_lighthouse, validates_nodes) {
    const auto g = net::make_grid(4, 4);
    const net::routing_table routes{g};
    auto p = base_params();
    p.servers = {99};
    EXPECT_THROW((void)run_network_lighthouse(g, routes, p), std::invalid_argument);
    p.servers = {1};
    p.client = -1;
    EXPECT_THROW((void)run_network_lighthouse(g, routes, p), std::invalid_argument);
}

}  // namespace
}  // namespace mm::lighthouse
