// Tests for the Lighthouse Locate subsystem (Section 4): the ruler
// schedule, beam rasterization, trail expiry, and the end-to-end plane
// simulation.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "lighthouse/lighthouse_sim.h"
#include "lighthouse/plane.h"
#include "lighthouse/ruler.h"

namespace mm::lighthouse {
namespace {

TEST(ruler, matches_paper_prefix) {
    // "1213121412131215 1213121412131216 ..." - the first 16 values.
    const int expected[] = {1, 2, 1, 3, 1, 2, 1, 4, 1, 2, 1, 3, 1, 2, 1, 5};
    for (int t = 1; t <= 16; ++t)
        EXPECT_EQ(ruler_value(static_cast<std::uint64_t>(t)), expected[t - 1]) << "t = " << t;
}

TEST(ruler, counts_per_interval) {
    // "in a sequence of 2^k trials there are 2^(k-i) length i*l trials".
    const int k = 10;
    std::vector<int> count(k + 2, 0);
    for (std::uint64_t t = 1; t <= (1u << k); ++t) ++count[static_cast<std::size_t>(ruler_value(t))];
    for (int i = 1; i < k; ++i) EXPECT_EQ(count[static_cast<std::size_t>(i)], 1 << (k - i));
    EXPECT_EQ(count[static_cast<std::size_t>(k)], 1);      // one trial of length k*l
    EXPECT_EQ(count[static_cast<std::size_t>(k + 1)], 1);  // the 2^k-th trial
}

TEST(ruler, schedule_object_tracks_counter) {
    ruler_schedule s;
    EXPECT_EQ(s.next(), 1);
    EXPECT_EQ(s.next(), 2);
    EXPECT_EQ(s.next(), 1);
    EXPECT_EQ(s.next(), 3);
    EXPECT_EQ(s.trials_so_far(), 4u);
    s.reset();
    EXPECT_EQ(s.next(), 1);
}

TEST(ruler, rejects_trial_zero) { EXPECT_THROW((void)ruler_value(0), std::invalid_argument); }

TEST(beam, length_and_distinctness) {
    const auto cells = rasterize_beam(64, 64, {32, 32}, 0.0, 10);
    EXPECT_EQ(cells.size(), 10u);  // horizontal beam: one cell per step
    std::set<std::pair<int, int>> unique;
    for (const auto& c : cells) unique.insert({c.x, c.y});
    EXPECT_EQ(unique.size(), cells.size());
    // Straight east: y constant, x increasing.
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(cells[i].y, 32);
        EXPECT_EQ(cells[i].x, 33 + static_cast<int>(i));
    }
}

TEST(beam, wraps_on_torus) {
    const auto cells = rasterize_beam(16, 16, {14, 8}, 0.0, 4);
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0].x, 15);
    EXPECT_EQ(cells[1].x, 0);  // wrapped
    EXPECT_EQ(cells[2].x, 1);
}

TEST(beam, diagonal_never_repeats_cells) {
    const auto cells = rasterize_beam(128, 128, {0, 0}, 0.7853981634, 50);  // 45 degrees
    std::set<std::pair<int, int>> unique;
    for (const auto& c : cells) unique.insert({c.x, c.y});
    EXPECT_EQ(unique.size(), cells.size());
}

TEST(beam, zero_length_is_empty) {
    EXPECT_TRUE(rasterize_beam(8, 8, {1, 1}, 1.0, 0).empty());
}

TEST(trails, deposit_lookup_expire) {
    trail_map trails{32, 32};
    const core::port_id port = core::port_of("svc");
    trails.deposit({3, 4}, port, 7, /*expires_at=*/100);
    EXPECT_TRUE(trails.live_trail({3, 4}, port, 50).has_value());
    EXPECT_EQ(trails.live_trail({3, 4}, port, 50)->where, 7);
    EXPECT_FALSE(trails.live_trail({3, 4}, port, 100).has_value());  // expired
    EXPECT_FALSE(trails.live_trail({3, 5}, port, 50).has_value());   // wrong cell
    EXPECT_FALSE(trails.live_trail({3, 4}, port + 1, 50).has_value());
}

TEST(trails, fresher_beam_extends_lifetime) {
    trail_map trails{32, 32};
    const core::port_id port = core::port_of("svc");
    trails.deposit({0, 0}, port, 1, 50);
    trails.deposit({0, 0}, port, 1, 90);  // re-beam
    EXPECT_TRUE(trails.live_trail({0, 0}, port, 70).has_value());
}

TEST(trails, live_entries_prunes) {
    trail_map trails{32, 32};
    const core::port_id port = core::port_of("svc");
    trails.deposit({0, 0}, port, 1, 10);
    trails.deposit({1, 0}, port, 1, 100);
    EXPECT_EQ(trails.live_entries(5), 2u);
    EXPECT_EQ(trails.live_entries(50), 1u);
    EXPECT_EQ(trails.live_entries(1000), 0u);
}

lighthouse_params dense_params(client_schedule schedule, std::uint64_t seed) {
    lighthouse_params p;
    p.width = 96;
    p.height = 96;
    p.server_density = 0.01;  // ~92 servers
    p.server_beam_length = 24;
    p.server_period = 4;
    p.trail_lifetime = 64;
    p.client_base_length = 2;
    p.client_period = 4;
    p.schedule = schedule;
    p.max_time = 1 << 16;
    p.seed = seed;
    return p;
}

TEST(lighthouse_sim, dense_world_locates_quickly) {
    const auto result = run_lighthouse(dense_params(client_schedule::doubling, 7));
    EXPECT_TRUE(result.located);
    EXPECT_GT(result.server_count, 10);
    EXPECT_GT(result.client_messages, 0);
    EXPECT_LT(result.time_to_locate, 1 << 14);
}

TEST(lighthouse_sim, ruler_schedule_also_locates) {
    const auto result = run_lighthouse(dense_params(client_schedule::ruler, 7));
    EXPECT_TRUE(result.located);
}

TEST(lighthouse_sim, empty_world_never_locates) {
    auto p = dense_params(client_schedule::doubling, 3);
    p.server_density = 0.0;
    p.max_time = 4096;
    const auto result = run_lighthouse(p);
    EXPECT_FALSE(result.located);
    EXPECT_EQ(result.server_count, 0);
    EXPECT_EQ(result.time_to_locate, p.max_time);
    EXPECT_GT(result.client_trials, 0);
}

TEST(lighthouse_sim, deterministic_per_seed) {
    const auto a = run_lighthouse(dense_params(client_schedule::doubling, 11));
    const auto b = run_lighthouse(dense_params(client_schedule::doubling, 11));
    EXPECT_EQ(a.located, b.located);
    EXPECT_EQ(a.time_to_locate, b.time_to_locate);
    EXPECT_EQ(a.client_messages, b.client_messages);
    EXPECT_EQ(a.server_messages, b.server_messages);
}

TEST(lighthouse_sim, drifting_servers_still_get_located) {
    auto p = dense_params(client_schedule::ruler, 19);
    p.server_drift = 0.3;
    const auto result = run_lighthouse(p);
    EXPECT_TRUE(result.located);
}

TEST(lighthouse_sim, drift_is_deterministic_per_seed) {
    auto p = dense_params(client_schedule::doubling, 23);
    p.server_drift = 0.5;
    const auto a = run_lighthouse(p);
    const auto b = run_lighthouse(p);
    EXPECT_EQ(a.time_to_locate, b.time_to_locate);
    EXPECT_EQ(a.client_messages, b.client_messages);
}

TEST(lighthouse_sim, sparser_worlds_take_longer_on_average) {
    // Aggregate over seeds: locating in a 10x sparser world should not be
    // faster in the median.
    std::int64_t dense_total = 0;
    std::int64_t sparse_total = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        auto dense = dense_params(client_schedule::doubling, seed);
        auto sparse = dense;
        sparse.server_density = 0.0005;
        dense_total += run_lighthouse(dense).time_to_locate;
        sparse_total += run_lighthouse(sparse).time_to_locate;
    }
    EXPECT_LT(dense_total, sparse_total);
}

}  // namespace
}  // namespace mm::lighthouse
