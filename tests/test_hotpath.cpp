// test_hotpath.cpp - the mechanical-sympathy layer is bit-equal to the
// reference containers it replaced.
//
// PR-9 swapped the engine's hot-path containers: sim::metrics now keeps a
// fixed slot array for the known counters plus an open-addressing table for
// dynamic names (was: one string-keyed std::map), tag accounting and the
// name service's op index use core::flat_map (was: std::unordered_map),
// event payloads live in a core::soa_arena behind the calendar queue, and
// core::intersect_sets picks between galloping / bitmap / SIMD-block /
// scalar merges.  Every one of those is an internal representation change:
// this suite drives each against the container it replaced over randomized
// op streams (including the empty / disjoint / identical / skewed shapes
// the dispatch heuristics cut on) and requires exact agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/arena.h"
#include "core/flat_map.h"
#include "core/strategy.h"
#include "sim/metrics.h"

namespace {

using namespace mm;

std::uint64_t mix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

// --- metrics vs the string-keyed std::map it replaced ------------------------

const std::vector<std::string_view>& known_counter_names() {
    static const std::vector<std::string_view> names = {
        sim::counter_hops,
        sim::counter_messages_sent,
        sim::counter_messages_delivered,
        sim::counter_messages_dropped,
        sim::counter_membership_events,
        sim::counter_trace_records,
        sim::counter_trace_digests,
        sim::counter_parallel_ticks,
        sim::counter_parallel_rounds,
        sim::counter_phase_round_execute_ns,
        sim::counter_phase_rank_merge_ns,
        sim::counter_phase_mailbox_flush_ns,
        sim::counter_phase_barrier_wait_ns,
    };
    return names;
}

TEST(interned_metrics, randomized_ops_match_map_reference) {
    sim::metrics m;
    std::map<std::string, std::int64_t, std::less<>> ref;
    std::uint64_t rng = 20260807;
    const auto& known = known_counter_names();
    for (int op = 0; op < 20000; ++op) {
        const auto pick = mix64(rng) % 100;
        const auto amount = static_cast<std::int64_t>(mix64(rng) % 1000) - 200;
        if (pick < 45) {
            // Known counter through the string path.
            const auto& name = known[mix64(rng) % known.size()];
            m.add(name, amount);
            ref[std::string{name}] += amount;
        } else if (pick < 70) {
            // Known counter through the interned-id fast path.
            const auto id = static_cast<sim::metrics::known>(mix64(rng) %
                                                            sim::metrics::known_count);
            m.add(id, amount);
            ref[std::string{known[id]}] += amount;
        } else if (pick < 97) {
            const std::string name = "dyn_" + std::to_string(mix64(rng) % 200);
            m.add(name, amount);
            ref[name] += amount;
        } else {
            m.reset();
            ref.clear();
        }
    }
    EXPECT_EQ(m.counters(), ref);
    for (const auto& [name, value] : ref) EXPECT_EQ(m.get(name), value) << name;
    for (const auto& name : known)
        EXPECT_EQ(m.get(name), ref.count(std::string{name}) ? ref[std::string{name}] : 0);
    EXPECT_EQ(m.get("never_touched"), 0);
}

TEST(interned_metrics, id_and_string_paths_alias_the_same_slot) {
    sim::metrics m;
    m.add(sim::metrics::k_hops, 7);
    m.add(sim::counter_hops, 5);
    EXPECT_EQ(m.get(sim::counter_hops), 12);
    EXPECT_EQ(m.get(sim::metrics::k_hops), 12);
}

TEST(interned_metrics, touched_semantics_are_preserved) {
    sim::metrics m;
    EXPECT_TRUE(m.counters().empty());
    // A zero-amount add still creates a visible zero-valued entry (the old
    // map did; test_barrier_pipeline's serial-mode check depends on the
    // converse: untouched counters must NOT appear).
    m.add(sim::counter_hops, 0);
    m.add("custom", 0);
    const auto c = m.counters();
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c.at("hops"), 0);
    EXPECT_EQ(c.at("custom"), 0);
    m.reset();
    EXPECT_TRUE(m.counters().empty());
}

// --- flat_map vs std::unordered_map ------------------------------------------

template <class Ref>
void expect_flat_map_equals(const core::flat_map<std::int64_t>& fm, const Ref& ref) {
    ASSERT_EQ(fm.size(), ref.size());
    std::size_t seen = 0;
    fm.for_each([&](std::int64_t key, std::int64_t value) {
        ++seen;
        const auto it = ref.find(key);
        ASSERT_NE(it, ref.end()) << key;
        EXPECT_EQ(it->second, value) << key;
    });
    EXPECT_EQ(seen, ref.size());
}

TEST(flat_map, randomized_ops_match_unordered_map_reference) {
    core::flat_map<std::int64_t> fm;
    std::unordered_map<std::int64_t, std::int64_t> ref;
    std::uint64_t rng = 99;
    for (int op = 0; op < 50000; ++op) {
        // Mixed key ranges: dense sequential ids (the op-id pattern) and
        // sparse 48-bit ones (the tag pattern).
        const std::int64_t key = (mix64(rng) % 2 == 0)
                                     ? 1 + static_cast<std::int64_t>(mix64(rng) % 512)
                                     : 1 + static_cast<std::int64_t>(mix64(rng) >> 16);
        const auto pick = mix64(rng) % 10;
        if (pick < 6) {
            const auto amount = static_cast<std::int64_t>(mix64(rng) % 100);
            fm.ref(key) += amount;
            ref[key] += amount;
        } else if (pick < 8) {
            EXPECT_EQ(fm.erase(key), ref.erase(key) > 0);
        } else {
            const auto it = ref.find(key);
            EXPECT_EQ(fm.get(key), it == ref.end() ? 0 : it->second);
            EXPECT_EQ(fm.contains(key), it != ref.end());
        }
    }
    expect_flat_map_equals(fm, ref);
}

TEST(flat_map, insert_erase_churn_reclaims_tombstones) {
    // The tag lifecycle: monotonically increasing ids, erased shortly after
    // insertion.  The table must stay bounded (rehash collects tombstones)
    // and stay correct through many generations.
    core::flat_map<std::int64_t> fm;
    for (std::int64_t generation = 0; generation < 2000; ++generation) {
        const std::int64_t base = generation * 64 + 1;
        for (std::int64_t k = 0; k < 64; ++k) fm.ref(base + k) = k;
        for (std::int64_t k = 0; k < 64; ++k) EXPECT_EQ(fm.get(base + k), k);
        for (std::int64_t k = 0; k < 64; ++k) EXPECT_TRUE(fm.erase(base + k));
    }
    EXPECT_TRUE(fm.empty());
    EXPECT_EQ(fm.get(1), 0);
}

TEST(flat_map, clear_resets_everything) {
    core::flat_map<std::int64_t> fm;
    for (std::int64_t k = 1; k <= 100; ++k) fm.ref(k) = k;
    fm.clear();
    EXPECT_TRUE(fm.empty());
    EXPECT_FALSE(fm.contains(50));
    fm.ref(7) = 9;
    EXPECT_EQ(fm.get(7), 9);
    EXPECT_EQ(fm.size(), 1u);
}

// --- soa_arena ---------------------------------------------------------------

TEST(soa_arena, interleaved_alloc_release_keeps_rows_independent) {
    core::soa_arena<std::int64_t, std::string> arena;
    std::unordered_map<std::uint32_t, std::pair<std::int64_t, std::string>> model;
    std::vector<std::uint32_t> live;
    std::uint64_t rng = 7;
    for (int op = 0; op < 20000; ++op) {
        if (live.empty() || mix64(rng) % 3 != 0) {
            const auto h = arena.alloc();
            ASSERT_EQ(model.count(h), 0u) << "alloc returned a live handle";
            const auto v = static_cast<std::int64_t>(mix64(rng));
            arena.row<0>(h) = v;
            arena.row<1>(h) = std::to_string(v);
            model[h] = {v, std::to_string(v)};
            live.push_back(h);
        } else {
            const auto pick = mix64(rng) % live.size();
            const auto h = live[pick];
            EXPECT_EQ(arena.row<0>(h), model[h].first);
            EXPECT_EQ(arena.row<1>(h), model[h].second);
            arena.release(h);
            model.erase(h);
            live[pick] = live.back();
            live.pop_back();
        }
        ASSERT_EQ(arena.live(), model.size());
    }
    for (const auto h : live) {
        EXPECT_EQ(arena.row<0>(h), model[h].first);
        EXPECT_EQ(arena.row<1>(h), model[h].second);
    }
    // The slab never grows past the high-water mark of simultaneously live
    // slots (free slots are recycled before the arrays extend).
    EXPECT_LE(arena.capacity(), 20000u);
}

TEST(soa_arena, recycles_before_growing) {
    core::soa_arena<int> arena;
    const auto a = arena.alloc();
    const auto b = arena.alloc();
    EXPECT_EQ(arena.capacity(), 2u);
    arena.release(a);
    arena.release(b);
    (void)arena.alloc();
    (void)arena.alloc();
    EXPECT_EQ(arena.capacity(), 2u) << "free slots must be reused";
    (void)arena.alloc();
    EXPECT_EQ(arena.capacity(), 3u);
}

// --- intersect fast paths vs the scalar reference ----------------------------

core::node_set reference_intersection(const core::node_set& a, const core::node_set& b) {
    core::node_set out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
    return out;
}

core::node_set random_sorted_set(std::uint64_t& rng, std::size_t size, std::int64_t lo,
                                 std::int64_t hi) {
    core::node_set out;
    if (hi < lo) return out;
    const auto span = static_cast<std::uint64_t>(hi - lo + 1);
    for (std::size_t i = 0; i < size; ++i)
        out.push_back(static_cast<net::node_id>(
            lo + static_cast<std::int64_t>(mix64(rng) % span)));
    core::normalize_set(out);
    return out;
}

void expect_intersections_match(const core::node_set& a, const core::node_set& b,
                                const char* what) {
    const auto expected = reference_intersection(a, b);
    EXPECT_EQ(core::intersect_sets(a, b), expected) << what;
    EXPECT_EQ(core::intersect_sets(b, a), expected) << what << " (swapped)";
    EXPECT_EQ(core::sets_intersect(a, b), !expected.empty()) << what;
    EXPECT_EQ(core::sets_intersect(b, a), !expected.empty()) << what << " (swapped)";
}

TEST(intersect_fast_paths, fixed_shapes) {
    const core::node_set empty;
    const core::node_set one{42};
    core::node_set dense;
    for (net::node_id v = 0; v < 512; ++v) dense.push_back(v);
    core::node_set odds;
    for (net::node_id v = 1; v < 1024; v += 2) odds.push_back(v);
    core::node_set high;
    for (net::node_id v = 100000; v < 100512; ++v) high.push_back(v);

    expect_intersections_match(empty, empty, "empty x empty");
    expect_intersections_match(empty, dense, "empty x dense");
    expect_intersections_match(one, dense, "singleton x dense");
    expect_intersections_match(dense, dense, "identical");
    expect_intersections_match(dense, odds, "half-overlap");
    expect_intersections_match(dense, high, "disjoint windows");
    expect_intersections_match(one, high, "singleton below window");
}

TEST(intersect_fast_paths, randomized_shapes_cover_every_dispatch_regime) {
    std::uint64_t rng = 0xabcdef;
    const std::size_t sizes[] = {0, 1, 3, 4, 5, 31, 32, 33, 255, 256, 1000, 4096};
    for (const std::size_t sa : sizes) {
        for (const std::size_t sb : sizes) {
            const auto m = std::max<std::size_t>(1, std::max(sa, sb));
            // Dense windows (bitmap regime), sparse universes (merge/SIMD
            // regime), and offset windows (partial overlap after trimming).
            const std::int64_t universes[][2] = {
                {0, static_cast<std::int64_t>(2 * m)},
                {0, static_cast<std::int64_t>(64 * m)},
                {static_cast<std::int64_t>(m), static_cast<std::int64_t>(3 * m)},
            };
            for (const auto& u : universes) {
                const auto a = random_sorted_set(rng, sa, u[0], u[1]);
                const auto b = random_sorted_set(rng, sb, 0, static_cast<std::int64_t>(2 * m));
                expect_intersections_match(a, b, "randomized");
            }
        }
    }
}

TEST(intersect_fast_paths, skewed_galloping_regime) {
    std::uint64_t rng = 31337;
    for (int round = 0; round < 20; ++round) {
        const auto big = random_sorted_set(rng, 8192, 0, 1 << 20);
        const auto small = random_sorted_set(rng, 1 + round, 0, 1 << 20);
        expect_intersections_match(small, big, "skewed sparse");
        // Skewed but guaranteed-overlapping: every small element drawn from
        // the big set itself.
        core::node_set subset;
        for (int k = 0; k <= round; ++k)
            subset.push_back(big[mix64(rng) % big.size()]);
        core::normalize_set(subset);
        expect_intersections_match(subset, big, "skewed subset");
    }
}

}  // namespace
