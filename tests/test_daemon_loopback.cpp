// Sim-vs-daemon loopback oracle suite: identical operation scripts through
// the in-simulator runtime::name_service and through daemon::mm_client
// against a live mmd_server, asserting identical visible outcomes
// (found / where / nodes_queried) for every operation kind - the glue that
// keeps the real transport honest against the deterministic oracle.
//
// Three daemon substrates are exercised:
//  * mmd_server over tcp_transport in a background thread (the deployment
//    shape, real sockets on 127.0.0.1);
//  * mmd_server over sim_transport (single-threaded, proves the daemon is
//    transport-agnostic);
//  * the actual mmd binary in a separate process (MMD_BINARY_PATH), with a
//    clean SIGTERM shutdown asserted.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "daemon/mm_client.h"
#include "daemon/mmd_server.h"
#include "daemon/strategy_factory.h"
#include "loopback_script.h"
#include "strategies/basic.h"
#include "transport/sim_transport.h"
#include "transport/tcp_transport.h"

namespace mm {
namespace {

using testing::outcome;
using testing::script_op;

// An in-process daemon: mmd_server over real loopback TCP, served from a
// background thread exactly like the mmd binary's main loop.
class loopback_daemon {
public:
    explicit loopback_daemon(const core::locate_strategy& strategy)
        : port_{net_.listen_on(0)}, server_{net_, strategy} {
        thread_ = std::thread{[this] { server_.serve(stop_, 5); }};
    }
    ~loopback_daemon() {
        stop_.store(true);
        thread_.join();
    }

    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
    [[nodiscard]] const daemon::mmd_server::stats& stat() const noexcept { return server_.stat(); }

private:
    transport::tcp_transport net_;
    std::uint16_t port_;
    daemon::mmd_server server_;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

// Routes every node of the universe to the daemon and runs the script.
std::vector<outcome> run_via_tcp_daemon(const core::locate_strategy& strategy,
                                        std::span<const script_op> script,
                                        bool client_caching = false) {
    loopback_daemon daemon_box{strategy};
    transport::tcp_transport net;
    for (net::node_id v = 0; v < strategy.node_count(); ++v)
        net.add_route(v, "127.0.0.1", daemon_box.port());
    daemon::client_options opts;
    opts.client_caching = client_caching;
    daemon::mm_client client{net, strategy, opts};
    return run_via_client(client, script, [] {});
}

void expect_same(const std::vector<outcome>& via_sim, const std::vector<outcome>& via_daemon,
                 std::span<const script_op> script) {
    ASSERT_EQ(via_sim.size(), via_daemon.size());
    for (std::size_t i = 0; i < via_sim.size(); ++i) {
        EXPECT_EQ(via_sim[i], via_daemon[i])
            << "script op " << i << " (kind " << static_cast<int>(script[i].what) << ", port "
            << script[i].port << "): sim {" << via_sim[i].found << ", " << via_sim[i].where
            << ", " << via_sim[i].nodes_queried << "} daemon {" << via_daemon[i].found << ", "
            << via_daemon[i].where << ", " << via_daemon[i].nodes_queried << "}";
    }
}

// --- one scenario per operation kind (satellite: oracle coverage) -----------

TEST(DaemonLoopback, RegisterThenLocateAgrees) {
    const auto strategy = daemon::make_strategy("hash", 16, 3);
    const std::vector<script_op> script{
        {script_op::register_server, 7, 3, net::invalid_node},
        {script_op::locate, 7, 11, net::invalid_node},
        {script_op::locate, 99, 11, net::invalid_node},  // never registered: a miss
    };
    const auto via_sim = testing::run_via_simulator(*strategy, script);
    const auto via_daemon = run_via_tcp_daemon(*strategy, script);
    expect_same(via_sim, via_daemon, script);
    EXPECT_TRUE(via_sim[1].found);
    EXPECT_EQ(via_sim[1].where, 3);
    EXPECT_FALSE(via_sim[2].found);
}

TEST(DaemonLoopback, DeregisterAgrees) {
    const auto strategy = daemon::make_strategy("hash", 16, 3);
    const std::vector<script_op> script{
        {script_op::register_server, 5, 2, net::invalid_node},
        {script_op::deregister_server, 5, 2, net::invalid_node},
        {script_op::locate_fresh, 5, 9, net::invalid_node},
    };
    const auto via_sim = testing::run_via_simulator(*strategy, script);
    const auto via_daemon = run_via_tcp_daemon(*strategy, script);
    expect_same(via_sim, via_daemon, script);
    EXPECT_FALSE(via_sim[2].found);
}

TEST(DaemonLoopback, MigrateAgrees) {
    const auto strategy = daemon::make_strategy("hash", 16, 3);
    const std::vector<script_op> script{
        {script_op::register_server, 7, 3, net::invalid_node},
        {script_op::migrate_server, 7, 3, 9},
        {script_op::locate_fresh, 7, 1, net::invalid_node},
    };
    const auto via_sim = testing::run_via_simulator(*strategy, script);
    const auto via_daemon = run_via_tcp_daemon(*strategy, script);
    expect_same(via_sim, via_daemon, script);
    EXPECT_TRUE(via_sim[2].found);
    EXPECT_EQ(via_sim[2].where, 9);
}

TEST(DaemonLoopback, StaleHintThenLocateFreshAgrees) {
    // The paper's cache-as-hint discipline, end to end: a cached locate
    // serves the stale address for free; locate_fresh consults the network
    // and finds the migrated server.
    const auto strategy = daemon::make_strategy("hash", 16, 3);
    const std::vector<script_op> script{
        {script_op::register_server, 7, 3, net::invalid_node},
        {script_op::locate, 7, 11, net::invalid_node},       // network; deposits the hint
        {script_op::migrate_server, 7, 3, 9},                // hint at 11 is now stale
        {script_op::locate, 7, 11, net::invalid_node},       // cached: stale 3, 0 queried
        {script_op::locate_fresh, 7, 11, net::invalid_node},  // network: fresh 9
    };
    const auto via_sim = testing::run_via_simulator(*strategy, script, /*client_caching=*/true);
    const auto via_daemon = run_via_tcp_daemon(*strategy, script, /*client_caching=*/true);
    expect_same(via_sim, via_daemon, script);
    EXPECT_EQ(via_sim[3].where, 3);
    EXPECT_EQ(via_sim[3].nodes_queried, 0);
    EXPECT_EQ(via_sim[4].where, 9);
    EXPECT_GT(via_sim[4].nodes_queried, 0);
}

TEST(DaemonLoopback, BorderlineStrategiesAgree) {
    // Broadcast, sweep and central exercise the extreme P/Q shapes
    // (singleton posts + universal queries and vice versa).
    for (const char* name : {"broadcast", "sweep", "central"}) {
        SCOPED_TRACE(name);
        const auto strategy = daemon::make_strategy(name, 8);
        const std::vector<script_op> script{
            {script_op::register_server, 4, 2, net::invalid_node},
            {script_op::locate_fresh, 4, 6, net::invalid_node},
            {script_op::migrate_server, 4, 2, 5},
            {script_op::locate_fresh, 4, 0, net::invalid_node},
            {script_op::deregister_server, 4, 5, net::invalid_node},
            {script_op::locate_fresh, 4, 6, net::invalid_node},
        };
        const auto via_sim = testing::run_via_simulator(*strategy, script);
        const auto via_daemon = run_via_tcp_daemon(*strategy, script);
        expect_same(via_sim, via_daemon, script);
    }
}

// --- seeded mixed workload ---------------------------------------------------

TEST(DaemonLoopback, MixedSeededScriptAgrees) {
    const auto strategy = daemon::make_strategy("hash", 32, 3);
    const auto script = testing::make_mixed_script(0x20260807u, 32, 8, 60);
    const auto via_sim = testing::run_via_simulator(*strategy, script);
    const auto via_daemon = run_via_tcp_daemon(*strategy, script);
    expect_same(via_sim, via_daemon, script);
}

// --- daemon over the simulator transport ------------------------------------

TEST(DaemonLoopback, MmdServerIsTransportAgnostic) {
    // The same mmd_server, driven by sim_transport completions instead of
    // sockets: central match-making with the daemon hosting the center.
    strategies::central_strategy strategy{2, 0};
    const auto g = net::make_complete(2);
    sim::simulator sim{g};
    transport::sim_transport server_net{sim, 0};
    transport::sim_transport client_net{sim, 1};
    daemon::mmd_server server{server_net, strategy, 0, 1};
    daemon::mm_client client{client_net, strategy};

    const std::vector<script_op> script{
        {script_op::register_server, 3, 1, net::invalid_node},
        {script_op::locate_fresh, 3, 1, net::invalid_node},
        {script_op::deregister_server, 3, 1, net::invalid_node},
        {script_op::locate_fresh, 3, 1, net::invalid_node},
    };
    const auto via_daemon =
        testing::run_via_client(client, script, [&] { server.pump(0); });
    const auto via_sim = testing::run_via_simulator(strategy, script);
    expect_same(via_sim, via_daemon, script);
    EXPECT_EQ(server.stat().posts, 1);
    EXPECT_EQ(server.stat().removes, 1);
    EXPECT_EQ(server.stat().hits, 1);
    EXPECT_EQ(server.stat().misses, 1);
}

// --- concurrency over one daemon --------------------------------------------

TEST(DaemonLoopback, ConcurrentLocatesAllComplete) {
    const auto strategy = daemon::make_strategy("hash", 16, 3);
    loopback_daemon daemon_box{*strategy};
    transport::tcp_transport net;
    for (net::node_id v = 0; v < strategy->node_count(); ++v)
        net.add_route(v, "127.0.0.1", daemon_box.port());
    daemon::mm_client client{net, *strategy};

    for (core::port_id port = 1; port <= 8; ++port)
        client.register_server(port, static_cast<net::node_id>(port % 16));

    std::vector<runtime::op_id> ops;
    for (int i = 0; i < 32; ++i)
        ops.push_back(client.begin_locate_fresh(1 + (i % 8), static_cast<net::node_id>(i % 16)));
    client.run_until_complete(ops);
    for (int i = 0; i < 32; ++i) {
        const auto res = *client.poll(ops[static_cast<std::size_t>(i)]);
        EXPECT_TRUE(res.found) << "locate " << i;
        EXPECT_EQ(res.where, (1 + (i % 8)) % 16);
    }
    EXPECT_EQ(client.pending_ops(), 0u);
}

// --- the real binary, out of process ----------------------------------------

TEST(DaemonLoopback, OutOfProcessMmdServesAndShutsDownCleanly) {
    int out_pipe[2];
    ASSERT_EQ(::pipe(out_pipe), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::dup2(out_pipe[1], STDOUT_FILENO);
        ::close(out_pipe[0]);
        ::close(out_pipe[1]);
        ::execl(MMD_BINARY_PATH, "mmd", "--port", "0", "--nodes", "16", "--strategy", "hash",
                "--replicas", "3", static_cast<char*>(nullptr));
        _exit(127);
    }
    ::close(out_pipe[1]);

    // First line of output is the ephemeral-port announcement.
    FILE* from_daemon = ::fdopen(out_pipe[0], "r");
    ASSERT_NE(from_daemon, nullptr);
    unsigned port = 0;
    ASSERT_EQ(std::fscanf(from_daemon, "LISTENING %u", &port), 1) << "no LISTENING line";
    ASSERT_GT(port, 0u);

    {
        const auto strategy = daemon::make_strategy("hash", 16, 3);
        transport::tcp_transport net;
        for (net::node_id v = 0; v < 16; ++v)
            net.add_route(v, "127.0.0.1", static_cast<std::uint16_t>(port));
        daemon::mm_client client{net, *strategy};

        client.register_server(7, 3);
        auto found = client.locate(7, 11);
        EXPECT_TRUE(found.found);
        EXPECT_EQ(found.where, 3);

        client.migrate_server(7, 3, 9);
        found = client.locate_fresh(7, 11);
        EXPECT_TRUE(found.found);
        EXPECT_EQ(found.where, 9);

        client.deregister_server(7, 9);
        found = client.locate_fresh(7, 11);
        EXPECT_FALSE(found.found);
    }

    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status)) << "mmd did not exit (signal?)";
    EXPECT_EQ(WEXITSTATUS(status), 0) << "mmd shutdown was not clean";
    std::fclose(from_daemon);
}

}  // namespace
}  // namespace mm
