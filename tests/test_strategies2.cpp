// Tests for the projective, hierarchical, partition, random and hash
// strategy families.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/rendezvous_matrix.h"
#include "net/partition.h"
#include "net/random_graphs.h"
#include "net/topologies.h"
#include "strategies/hash_locate.h"
#include "strategies/hierarchical.h"
#include "strategies/partition_strategy.h"
#include "strategies/projective.h"
#include "strategies/random_strategy.h"

namespace mm::strategies {
namespace {

using core::rendezvous_matrix;

TEST(projective, cost_is_2k_plus_2) {
    for (const int k : {2, 3, 4, 5, 7}) {
        const projective_strategy s{k};
        const auto n = k * k + k + 1;
        EXPECT_EQ(s.node_count(), n);
        const auto r = rendezvous_matrix::from_strategy(s);
        EXPECT_TRUE(r.total());
        // m = #P + #Q = 2(k+1) ~ 2*sqrt(n).
        EXPECT_DOUBLE_EQ(r.average_message_passes(), 2.0 * (k + 1));
        EXPECT_NEAR(r.average_message_passes(), 2.0 * std::sqrt(static_cast<double>(n)),
                    2.0);
    }
}

TEST(projective, distinct_lines_meet_in_one_node) {
    const projective_strategy s{3};
    const auto r = rendezvous_matrix::from_strategy(s);
    for (net::node_id i = 0; i < s.node_count(); ++i) {
        for (net::node_id j = 0; j < s.node_count(); ++j) {
            const auto& e = r.entry(i, j);
            if (s.post_line(i) == s.query_line(j)) {
                EXPECT_EQ(e.size(), static_cast<std::size_t>(s.plane().order() + 1));
            } else {
                EXPECT_EQ(e.size(), 1u);
            }
        }
    }
}

TEST(projective, posts_lie_on_a_line_through_the_server) {
    const projective_strategy s{4};
    for (net::node_id v = 0; v < s.node_count(); v += 3) {
        const auto p = s.post_set(v);
        // The server's own node is on its chosen line.
        EXPECT_TRUE(std::find(p.begin(), p.end(), v) != p.end());
        EXPECT_EQ(p.size(), static_cast<std::size_t>(s.plane().order() + 1));
    }
}

TEST(projective, rotated_selectors_still_match) {
    // Different line choices (fault-tolerance rotation) still rendezvous.
    for (int sel = 0; sel < 3; ++sel) {
        const projective_strategy s{3, sel, 2 - sel};
        EXPECT_TRUE(rendezvous_matrix::from_strategy(s).total());
    }
}

TEST(hierarchical, per_level_sets_are_sqrt_of_fanout) {
    const net::hierarchy h{{16, 16}};
    const hierarchical_strategy s{h};
    for (const net::node_id v : {0, 5, 100, 255}) {
        EXPECT_EQ(s.level_post_set(v, 1).size(), 4u);
        EXPECT_EQ(s.level_query_set(v, 1).size(), 4u);
        EXPECT_EQ(s.level_post_set(v, 2).size(), 4u);
    }
}

TEST(hierarchical, matrix_total_at_various_shapes) {
    for (const auto& fanouts :
         {std::vector<int>{4}, {4, 4}, {2, 3, 4}, {9, 9}, {3, 3, 3, 3}}) {
        const hierarchical_strategy s{net::hierarchy{fanouts}};
        EXPECT_TRUE(rendezvous_matrix::from_strategy(s).total());
    }
}

TEST(hierarchical, cost_beats_flat_sqrt_for_deep_hierarchies) {
    // n = 4^4 = 256: hierarchical pays ~ k * 2*sqrt(4) = 16 versus the flat
    // 2*sqrt(256) = 32.
    const hierarchical_strategy s{net::hierarchy{{4, 4, 4, 4}}};
    const auto r = rendezvous_matrix::from_strategy(s);
    EXPECT_TRUE(r.total());
    EXPECT_LT(r.average_message_passes(), 2.0 * std::sqrt(256.0));
}

TEST(hierarchical, meeting_level_is_lowest_shared_cluster) {
    const net::hierarchy h{{4, 4}};
    const hierarchical_strategy s{h};
    EXPECT_EQ(s.meeting_level(0, 1), 1);
    EXPECT_EQ(s.meeting_level(0, 5), 2);
    EXPECT_EQ(s.meeting_level(0, 0), 1);
}

TEST(hierarchical, rendezvous_found_by_meeting_level_everywhere) {
    // Property: for every pair, the per-level sets intersect at the meeting
    // level (so the staged locate never has to go above it when the server
    // posted there).
    const net::hierarchy h{{3, 4, 2}};
    const hierarchical_strategy s{h};
    for (net::node_id a = 0; a < h.node_count(); a += 2) {
        for (net::node_id b = 1; b < h.node_count(); b += 3) {
            const int level = s.meeting_level(a, b);
            EXPECT_TRUE(core::sets_intersect(s.level_post_set(a, level),
                                             s.level_query_set(b, level)))
                << a << "," << b << " at level " << level;
        }
    }
}

TEST(hierarchical, rendezvous_happens_at_meeting_level) {
    const net::hierarchy h{{4, 4}};
    const hierarchical_strategy s{h};
    // Nodes in different level-1 clusters must meet via level-2 gateways.
    const auto p = s.level_post_set(0, 2);
    const auto q = s.level_query_set(5, 2);
    EXPECT_TRUE(core::sets_intersect(p, q));
}

TEST(partition_strategy_suite, grid_matches_always) {
    const auto g = net::make_grid(8, 8);
    const partition_strategy s{net::partition_connected(g)};
    const auto r = rendezvous_matrix::from_strategy(s);
    EXPECT_TRUE(r.total());
}

TEST(partition_strategy_suite, query_is_own_part_post_covers_own_label) {
    const auto g = net::make_grid(6, 6);
    const auto part = net::partition_connected(g);
    const partition_strategy s{part};
    for (net::node_id v = 0; v < 36; v += 5) {
        const auto q = s.query_set(v);
        EXPECT_EQ(q, part.parts[static_cast<std::size_t>(
                         part.part_of[static_cast<std::size_t>(v)])]);
        // Every post target covers v's label within its own part.
        const int label = part.label_of[static_cast<std::size_t>(v)];
        for (const net::node_id w : s.post_set(v))
            EXPECT_EQ(part.covering_node(part.part_of[static_cast<std::size_t>(w)], label), w);
    }
}

TEST(partition_strategy_suite, heavy_hub_graphs_still_match) {
    const auto g = net::make_uucp_like(120, 60, 5);
    const partition_strategy s{net::partition_connected(g)};
    const auto r = rendezvous_matrix::from_strategy(s);
    EXPECT_TRUE(r.total());
    // Client cost capped: every query set is below 2*sqrt(n) + slack.
    for (net::node_id v = 0; v < 120; v += 7)
        EXPECT_LT(s.query_set(v).size(), 2u * 11u + 2u);
}

TEST(partition_strategy_suite, cost_near_2_sqrt_n_on_grids) {
    const auto g = net::make_grid(10, 10);
    const partition_strategy s{net::partition_connected(g)};
    const auto r = rendezvous_matrix::from_strategy(s);
    // Addressed nodes per match ~ #parts + part size ~ 2*sqrt(n), within a
    // small constant factor from uneven part sizes.
    EXPECT_LE(r.average_message_passes(), 3.0 * 2.0 * std::sqrt(100.0));
    EXPECT_GE(r.average_message_passes(), 2.0 * std::sqrt(100.0) * 0.5);
}

TEST(random_strategy_suite, set_sizes_respected) {
    const random_strategy s{32, 5, 7, 99};
    for (net::node_id v = 0; v < 32; v += 3) {
        EXPECT_EQ(s.post_set(v).size(), 5u);
        EXPECT_EQ(s.query_set(v).size(), 7u);
    }
}

TEST(random_strategy_suite, deterministic_per_seed) {
    const random_strategy a{32, 5, 7, 99};
    const random_strategy b{32, 5, 7, 99};
    const random_strategy c{32, 5, 7, 100};
    EXPECT_EQ(a.post_set(3), b.post_set(3));
    EXPECT_EQ(a.query_set(9), b.query_set(9));
    EXPECT_NE(a.post_set(3), c.post_set(3));
}

TEST(random_strategy_suite, sets_are_subsets_of_universe) {
    const random_strategy s{16, 16, 16, 7};
    EXPECT_EQ(s.post_set(0), core::all_nodes(16));  // full-size sample = U
    const random_strategy t{16, 0, 4, 7};
    EXPECT_TRUE(t.post_set(0).empty());
}

TEST(random_strategy_suite, validation) {
    EXPECT_THROW((random_strategy{8, 9, 1, 1}), std::invalid_argument);
    EXPECT_THROW((random_strategy{8, 1, -1, 1}), std::invalid_argument);
    EXPECT_THROW((random_strategy{0, 0, 0, 1}), std::invalid_argument);
}

TEST(hash_locate_suite, p_equals_q_and_costs_two) {
    const hash_locate_strategy s{64};
    const core::port_id port = core::port_of("file-server");
    EXPECT_EQ(s.post_set(3, port), s.query_set(40, port));
    EXPECT_EQ(s.post_set(3, port).size(), 1u);
    // One post + one query: m = 2, matching the centralized lower bound,
    // but per-port instead of global.
}

TEST(hash_locate_suite, different_ports_spread_over_nodes) {
    const hash_locate_strategy s{64};
    std::set<net::node_id> used;
    for (int k = 0; k < 200; ++k)
        used.insert(s.rendezvous_node(core::port_of("svc" + std::to_string(k)), 0));
    // A good hash should hit a large fraction of the 64 nodes.
    EXPECT_GE(used.size(), 40u);
}

TEST(hash_locate_suite, replicas_give_distinct_nodes) {
    const hash_locate_strategy s{64, 4};
    const auto set = s.post_set(0, core::port_of("db"));
    EXPECT_GE(set.size(), 2u);  // double hashing: overwhelmingly distinct
    EXPECT_LE(set.size(), 4u);
}

TEST(hash_locate_suite, rehash_moves_the_rendezvous) {
    const hash_locate_strategy primary{64, 1, 0};
    const hash_locate_strategy backup{64, 1, 1};
    const core::port_id port = core::port_of("print-server");
    EXPECT_NE(primary.rendezvous_node(port, 0), backup.rendezvous_node(port, 1));
    EXPECT_EQ(backup.post_set(0, port).front(), primary.rendezvous_node(port, 1));
}

TEST(hash_locate_suite, matrix_is_total_and_cheap) {
    const hash_locate_strategy s{32};
    const auto r = rendezvous_matrix::from_strategy(s, core::port_of("x"));
    EXPECT_TRUE(r.total());
    EXPECT_TRUE(r.singleton());
    EXPECT_DOUBLE_EQ(r.average_message_passes(), 2.0);
}

TEST(hash_locate_suite, validation) {
    EXPECT_THROW((hash_locate_strategy{0}), std::invalid_argument);
    EXPECT_THROW((hash_locate_strategy{8, 9}), std::invalid_argument);
    EXPECT_THROW((hash_locate_strategy{8, 0}), std::invalid_argument);
    EXPECT_THROW((hash_locate_strategy{8, 1, -1}), std::invalid_argument);
}

}  // namespace
}  // namespace mm::strategies
