// Equivalence of the simulator's batched fast path and the hop-by-hop slow
// path (the contract in sim/simulator.h): identical scripts run against a
// batching simulator and a set_batched_delivery(false) simulator must
// produce bit-identical hop counters, per-tag hop counters, per-node
// traffic/transit, message counters, and delivery/completion times -
// including across mid-flight crash() windows, which force the fast path to
// devolve in-flight batched arrivals back to per-hop events.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "net/topologies.h"
#include "runtime/workload.h"
#include "sim/simulator.h"
#include "strategies/grid.h"

namespace mm {
namespace {

class recorder final : public sim::node_handler {
public:
    std::vector<std::pair<sim::time_point, int>> deliveries;  // (tick, msg.kind)

    void on_message(sim::simulator& s, const sim::message& msg) override {
        deliveries.emplace_back(s.now(), msg.kind);
    }
};

// Runs `script` against a batched and an unbatched simulator on `g` and
// asserts every observable counter matches.
void expect_equivalent(const net::graph& g,
                       const std::function<void(sim::simulator&, recorder&)>& script,
                       std::span<const std::int64_t> tags) {
    sim::simulator fast{g};
    sim::simulator slow{g};
    slow.set_batched_delivery(false);
    recorder fast_rx;
    recorder slow_rx;
    script(fast, fast_rx);
    script(slow, slow_rx);
    EXPECT_EQ(fast.now(), slow.now());
    for (const auto counter :
         {sim::counter_hops, sim::counter_messages_sent, sim::counter_messages_delivered,
          sim::counter_messages_dropped}) {
        EXPECT_EQ(fast.stats().get(counter), slow.stats().get(counter)) << counter;
    }
    for (const std::int64_t tag : tags)
        EXPECT_EQ(fast.tag_hops(tag), slow.tag_hops(tag)) << "tag " << tag;
    for (net::node_id v = 0; v < g.node_count(); ++v) {
        ASSERT_EQ(fast.traffic(v), slow.traffic(v)) << "traffic at " << v;
        ASSERT_EQ(fast.transit_traffic(v), slow.transit_traffic(v)) << "transit at " << v;
    }
    EXPECT_EQ(fast_rx.deliveries, slow_rx.deliveries);
}

TEST(sim_equivalence, crash_window_mid_flight) {
    // A message is in batched flight when a node on its path crashes: the
    // fast path must devolve it and drop it at the crashed hop's exact tick.
    const auto g = net::make_path(12);
    const std::int64_t tags[] = {1, 2, 3, 4};
    expect_equivalent(
        g,
        [](sim::simulator& s, recorder& rx) {
            auto handler = std::shared_ptr<recorder>(&rx, [](recorder*) {});
            s.attach(0, handler);
            s.attach(11, handler);
            sim::message msg;
            msg.kind = 1;
            msg.source = 0;
            msg.destination = 11;
            msg.tag = 1;
            s.send(msg);            // batched arrival would land at tick 11
            s.run_until(3);         // in flight, sitting at node 3
            s.crash(5);             // ahead of the message: it must die at 5
            sim::message back;      // sent inside the crash window: slow path
            back.kind = 2;
            back.source = 11;
            back.destination = 0;
            back.tag = 2;
            s.send(back);
            s.run_until(7);
            s.recover(5);
            sim::message again;     // clean network again: batched once more
            again.kind = 3;
            again.source = 0;
            again.destination = 11;
            again.tag = 3;
            s.send(again);
            s.run();
        },
        tags);
}

TEST(sim_equivalence, same_tick_send_then_crash) {
    // crash() immediately after send() with no run in between: the message
    // has not made its first hop yet, so it must die en route identically.
    const auto g = net::make_path(6);
    const std::int64_t tags[] = {1, 2};
    expect_equivalent(
        g,
        [](sim::simulator& s, recorder& rx) {
            auto handler = std::shared_ptr<recorder>(&rx, [](recorder*) {});
            s.attach(0, handler);
            s.attach(5, handler);
            sim::message msg;
            msg.kind = 1;
            msg.source = 0;
            msg.destination = 5;
            msg.tag = 1;
            s.send(msg);
            s.crash(1);    // first hop target dies in the same tick
            s.run_until(20);
            s.recover(1);
            sim::message retry;
            retry.kind = 2;
            retry.source = 0;
            retry.destination = 5;
            retry.tag = 2;
            s.send(retry);
            s.run();
        },
        tags);
}

TEST(sim_equivalence, crash_at_delivery_tick) {
    // The destination crashes while the batched arrival is pending at that
    // very tick horizon: both paths must drop at the destination after full
    // transit spend.
    const auto g = net::make_path(8);
    const std::int64_t tags[] = {1};
    expect_equivalent(
        g,
        [](sim::simulator& s, recorder& rx) {
            auto handler = std::shared_ptr<recorder>(&rx, [](recorder*) {});
            s.attach(7, handler);
            sim::message msg;
            msg.kind = 1;
            msg.source = 0;
            msg.destination = 7;
            msg.tag = 1;
            s.send(msg);
            s.run_until(6);  // one tick before arrival
            s.crash(7);
            s.run();
        },
        tags);
}

// Field-by-field comparison of completed operation results.
void expect_same_results(const runtime::workload_stats& a, const runtime::workload_stats& b) {
    EXPECT_EQ(a.issued, b.issued);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.locates, b.locates);
    EXPECT_EQ(a.locates_found, b.locates_found);
    EXPECT_EQ(a.crashes, b.crashes);
    EXPECT_EQ(a.per_op_message_passes, b.per_op_message_passes);
    EXPECT_EQ(a.max_in_flight, b.max_in_flight);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.latency_p50, b.latency_p50);
    EXPECT_EQ(a.latency_p95, b.latency_p95);
    EXPECT_EQ(a.latency_p99, b.latency_p99);
    EXPECT_EQ(a.latency_max, b.latency_max);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        const auto& ra = a.results[i];
        const auto& rb = b.results[i];
        EXPECT_EQ(ra.found, rb.found) << "op " << i;
        EXPECT_EQ(ra.where, rb.where) << "op " << i;
        EXPECT_EQ(ra.latency, rb.latency) << "op " << i;
        EXPECT_EQ(ra.message_passes, rb.message_passes) << "op " << i;
        EXPECT_EQ(ra.nodes_queried, rb.nodes_queried) << "op " << i;
        EXPECT_EQ(ra.stages, rb.stages) << "op " << i;
        EXPECT_EQ(ra.issued_at, rb.issued_at) << "op " << i;
        EXPECT_EQ(ra.completed_at, rb.completed_at) << "op " << i;
    }
}

TEST(sim_equivalence, seeded_mixed_workload_with_crashes) {
    // The acceptance scenario: a seeded open-loop mix of locates, registers,
    // migrates, and mid-flight fail-stop crashes, run to quiescence.  Per-op
    // hop counters, the global hop counter, per-node traffic, and every
    // completion time must match the hop-by-hop run exactly.
    constexpr int rows = 12;
    constexpr int cols = 12;
    const auto g = net::make_grid(rows, cols);
    const strategies::manhattan_strategy strategy{rows, cols};

    runtime::workload_options opts;
    opts.seed = 99;
    opts.operations = 500;
    opts.mean_interarrival = 1.5;
    opts.ports = 24;
    opts.servers_per_port = 2;
    opts.locate_weight = 0.82;
    opts.register_weight = 0.06;
    opts.migrate_weight = 0.06;
    opts.crash_weight = 0.06;
    opts.crash_downtime = 40;

    sim::simulator fast_sim{g};
    runtime::name_service fast_ns{fast_sim, strategy, {.client_caching = true}};
    const auto fast = runtime::run_workload(fast_ns, opts);

    sim::simulator slow_sim{g};
    slow_sim.set_batched_delivery(false);
    runtime::name_service slow_ns{slow_sim, strategy, {.client_caching = true}};
    const auto slow = runtime::run_workload(slow_ns, opts);

    ASSERT_GT(fast.crashes, 0) << "scenario must exercise mid-flight crashes";
    expect_same_results(fast, slow);
    EXPECT_EQ(fast.global_message_passes, slow.global_message_passes);
    EXPECT_EQ(fast_sim.now(), slow_sim.now());
    for (net::node_id v = 0; v < g.node_count(); ++v) {
        ASSERT_EQ(fast_sim.traffic(v), slow_sim.traffic(v)) << "traffic at " << v;
        ASSERT_EQ(fast_sim.transit_traffic(v), slow_sim.transit_traffic(v))
            << "transit at " << v;
    }
}

TEST(sim_equivalence, workload_with_soft_state_refresh) {
    // With TTL + periodic refresh the run never quiesces (timers re-arm), so
    // global counters are read with refresh posts still in flight - but
    // per-operation results and completion times must still match exactly.
    constexpr int rows = 10;
    constexpr int cols = 10;
    const auto g = net::make_grid(rows, cols);
    const strategies::manhattan_strategy strategy{rows, cols};
    const runtime::name_service::options policy{.entry_ttl = 300, .refresh_period = 120};

    runtime::workload_options opts;
    opts.seed = 5;
    opts.operations = 300;
    opts.mean_interarrival = 2.0;
    opts.ports = 16;
    opts.crash_weight = 0.04;

    sim::simulator fast_sim{g};
    runtime::name_service fast_ns{fast_sim, strategy, policy};
    const auto fast = runtime::run_workload(fast_ns, opts);

    sim::simulator slow_sim{g};
    slow_sim.set_batched_delivery(false);
    runtime::name_service slow_ns{slow_sim, strategy, policy};
    const auto slow = runtime::run_workload(slow_ns, opts);

    expect_same_results(fast, slow);
}

}  // namespace
}  // namespace mm
