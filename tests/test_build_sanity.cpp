// Build-contract tests: the version/feature macros advertised by
// src/core/version.h stay coherent, and one translation unit can link
// symbols from every layer of libmm (core, net, sim, strategies, runtime).
// If the CMake layer ever drops a src/ directory from the library, the
// link-layer test here fails to build rather than rotting silently.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "core/ids.h"
#include "core/version.h"
#include "net/topologies.h"
#include "runtime/name_service.h"
#include "sim/simulator.h"
#include "strategies/checkerboard.h"

namespace {

TEST(build_sanity, version_macros_are_coherent) {
    static_assert(MM_VERSION_MAJOR >= 0);
    static_assert(MM_VERSION_MINOR >= 0);
    static_assert(MM_VERSION_PATCH >= 0);
    const std::string triple = std::to_string(MM_VERSION_MAJOR) + "." +
                               std::to_string(MM_VERSION_MINOR) + "." +
                               std::to_string(MM_VERSION_PATCH);
    EXPECT_EQ(triple, MM_VERSION_STRING);
    EXPECT_EQ(mm::version(), std::string_view{MM_VERSION_STRING});
}

TEST(build_sanity, every_subsystem_feature_flag_is_on) {
#if !defined(MM_HAS_CORE) || !defined(MM_HAS_NET) || !defined(MM_HAS_SIM) ||     \
    !defined(MM_HAS_STRATEGIES) || !defined(MM_HAS_LIGHTHOUSE) ||                \
    !defined(MM_HAS_ANALYSIS) || !defined(MM_HAS_RUNTIME)
#error "a subsystem feature macro is missing from core/version.h"
#endif
    EXPECT_EQ(MM_HAS_CORE + MM_HAS_NET + MM_HAS_SIM + MM_HAS_STRATEGIES +
                  MM_HAS_LIGHTHOUSE + MM_HAS_ANALYSIS + MM_HAS_RUNTIME,
              7);
}

// Exercises mm::core (port_of), mm::net (make_complete), mm::sim
// (simulator), mm::strategies (checkerboard) and mm::runtime (name_service)
// from a single TU, so a partial library archive cannot link.
TEST(build_sanity, all_layers_link_from_one_translation_unit) {
    const auto g = mm::net::make_complete(9);
    mm::sim::simulator sim{g};
    const mm::strategies::checkerboard_strategy strategy{9};
    mm::runtime::name_service ns{sim, strategy};

    const mm::core::port_id port = mm::core::port_of("build-sanity");
    ns.register_server(port, 3);
    const auto result = ns.locate(port, 7);
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.where, 3);
}

}  // namespace
