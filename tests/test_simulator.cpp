// Tests for sim/simulator: hop-accurate delivery, timers, crashes, and the
// message-pass accounting the paper's complexity measure depends on.
#include <gtest/gtest.h>

#include "net/topologies.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace mm::sim {
namespace {

// Records every delivered message and timer.
class recorder final : public node_handler {
public:
    std::vector<message> delivered;
    std::vector<std::int64_t> timers;
    std::vector<time_point> delivery_times;

    void on_message(simulator& s, const message& msg) override {
        delivered.push_back(msg);
        delivery_times.push_back(s.now());
    }
    void on_timer(simulator&, std::int64_t id) override { timers.push_back(id); }
};

TEST(simulator, delivers_over_shortest_path) {
    const auto g = net::make_path(5);
    simulator sim{g};
    auto rx = std::make_shared<recorder>();
    sim.attach(4, rx);

    message msg;
    msg.kind = 7;
    msg.source = 0;
    msg.destination = 4;
    sim.send(msg);
    sim.run();

    ASSERT_EQ(rx->delivered.size(), 1u);
    EXPECT_EQ(rx->delivered[0].kind, 7);
    EXPECT_EQ(sim.now(), 4);                              // 4 hops, 1 tick each
    EXPECT_EQ(sim.stats().get(counter_hops), 4);          // message passes counted
    EXPECT_EQ(sim.stats().get(counter_messages_delivered), 1);
}

TEST(simulator, self_delivery_is_free) {
    const auto g = net::make_complete(3);
    simulator sim{g};
    auto rx = std::make_shared<recorder>();
    sim.attach(1, rx);
    message msg;
    msg.source = 1;
    msg.destination = 1;
    sim.send(msg);
    sim.run();
    EXPECT_EQ(rx->delivered.size(), 1u);
    EXPECT_EQ(sim.stats().get(counter_hops), 0);
}

TEST(simulator, crashed_destination_drops) {
    const auto g = net::make_complete(3);
    simulator sim{g};
    auto rx = std::make_shared<recorder>();
    sim.attach(2, rx);
    sim.crash(2);
    message msg;
    msg.source = 0;
    msg.destination = 2;
    sim.send(msg);
    sim.run();
    EXPECT_TRUE(rx->delivered.empty());
    EXPECT_EQ(sim.stats().get(counter_messages_dropped), 1);
}

TEST(simulator, crashed_intermediate_drops) {
    const auto g = net::make_path(3);  // 0-1-2, all routes via 1
    simulator sim{g};
    auto rx = std::make_shared<recorder>();
    sim.attach(2, rx);
    sim.crash(1);
    message msg;
    msg.source = 0;
    msg.destination = 2;
    sim.send(msg);
    sim.run();
    EXPECT_TRUE(rx->delivered.empty());
}

TEST(simulator, crashed_source_cannot_send) {
    const auto g = net::make_complete(3);
    simulator sim{g};
    auto rx = std::make_shared<recorder>();
    sim.attach(1, rx);
    sim.crash(0);
    message msg;
    msg.source = 0;
    msg.destination = 1;
    sim.send(msg);
    sim.run();
    EXPECT_TRUE(rx->delivered.empty());
    EXPECT_EQ(sim.stats().get(counter_messages_sent), 0);
}

TEST(simulator, recovery_restores_delivery) {
    const auto g = net::make_path(3);
    simulator sim{g};
    auto rx = std::make_shared<recorder>();
    sim.attach(2, rx);
    sim.crash(1);
    sim.recover(1);
    message msg;
    msg.source = 0;
    msg.destination = 2;
    sim.send(msg);
    sim.run();
    EXPECT_EQ(rx->delivered.size(), 1u);
}

TEST(simulator, crash_notifies_handler) {
    class crash_counter final : public node_handler {
    public:
        int crashes = 0;
        void on_message(simulator&, const message&) override {}
        void on_crash(simulator&) override { ++crashes; }
    };
    const auto g = net::make_complete(2);
    simulator sim{g};
    auto h = std::make_shared<crash_counter>();
    sim.attach(0, h);
    sim.crash(0);
    sim.crash(0);  // idempotent
    EXPECT_EQ(h->crashes, 1);
}

TEST(simulator, timers_fire_in_order) {
    const auto g = net::make_complete(2);
    simulator sim{g};
    auto rx = std::make_shared<recorder>();
    sim.attach(0, rx);
    sim.set_timer(0, 10, 1);
    sim.set_timer(0, 5, 2);
    sim.set_timer(0, 20, 3);
    sim.run();
    EXPECT_EQ(rx->timers, (std::vector<std::int64_t>{2, 1, 3}));
    EXPECT_EQ(sim.now(), 20);
}

TEST(simulator, run_until_stops_at_time) {
    const auto g = net::make_complete(2);
    simulator sim{g};
    auto rx = std::make_shared<recorder>();
    sim.attach(0, rx);
    sim.set_timer(0, 5, 1);
    sim.set_timer(0, 15, 2);
    sim.run_until(10);
    EXPECT_EQ(rx->timers.size(), 1u);
    EXPECT_FALSE(sim.idle());
    sim.run();
    EXPECT_EQ(rx->timers.size(), 2u);
    EXPECT_TRUE(sim.idle());
}

TEST(simulator, deterministic_tie_break_by_send_order) {
    const auto g = net::make_complete(3);
    simulator sim{g};
    auto rx = std::make_shared<recorder>();
    sim.attach(2, rx);
    for (int k = 0; k < 5; ++k) {
        message msg;
        msg.kind = k;
        msg.source = 0;
        msg.destination = 2;
        sim.send(msg);
    }
    sim.run();
    ASSERT_EQ(rx->delivered.size(), 5u);
    for (int k = 0; k < 5; ++k) EXPECT_EQ(rx->delivered[static_cast<std::size_t>(k)].kind, k);
}

TEST(simulator, event_cap_detects_loops) {
    // Two nodes bouncing a message forever trip the cap.
    class ping_pong final : public node_handler {
    public:
        void on_message(simulator& s, const message& msg) override {
            message reply = msg;
            reply.source = msg.destination;
            reply.destination = msg.source;
            s.send(reply);
        }
    };
    const auto g = net::make_complete(2);
    simulator sim{g};
    sim.attach(0, std::make_shared<ping_pong>());
    sim.attach(1, std::make_shared<ping_pong>());
    sim.set_event_cap(1000);
    message msg;
    msg.source = 0;
    msg.destination = 1;
    sim.send(msg);
    EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(simulator, randomized_routing_still_delivers_on_shortest_paths) {
    const auto g = net::make_hypercube(5);
    simulator sim{g};
    sim.set_randomized_routing(7);
    auto rx = std::make_shared<recorder>();
    sim.attach(31, rx);
    for (int k = 0; k < 20; ++k) {
        message msg;
        msg.kind = k;
        msg.source = 0;
        msg.destination = 31;
        sim.send(msg);
    }
    sim.run();
    EXPECT_EQ(rx->delivered.size(), 20u);
    // Every delivery took exactly the shortest-path hop count (5 bits).
    EXPECT_EQ(sim.stats().get(counter_hops), 20 * 5);
}

TEST(simulator, randomized_routing_spreads_transit) {
    // On a torus grid many shortest paths exist; randomization should use
    // more than one of them.
    const auto g = net::make_grid(6, 6, net::wrap_mode::torus);
    simulator fixed_sim{g};
    simulator random_sim{g};
    random_sim.set_randomized_routing(3);
    fixed_sim.attach(21, std::make_shared<recorder>());
    random_sim.attach(21, std::make_shared<recorder>());
    for (auto* sim : {&fixed_sim, &random_sim}) {
        for (int k = 0; k < 60; ++k) {
            message msg;
            msg.source = 0;
            msg.destination = 21;  // (3, 3): several shortest paths
            sim->send(msg);
        }
        sim->run();
    }
    int fixed_used = 0;
    int random_used = 0;
    for (net::node_id v = 0; v < 36; ++v) {
        if (fixed_sim.transit_traffic(v) > 0) ++fixed_used;
        if (random_sim.transit_traffic(v) > 0) ++random_used;
    }
    EXPECT_GT(random_used, fixed_used);
}

TEST(simulator, traffic_counters) {
    const auto g = net::make_path(4);
    simulator sim{g};
    sim.attach(3, std::make_shared<recorder>());
    message msg;
    msg.source = 0;
    msg.destination = 3;
    sim.send(msg);
    sim.run();
    // Nodes 0, 1, 2 carried the message; node 3 only received it.
    EXPECT_EQ(sim.transit_traffic(0), 1);
    EXPECT_EQ(sim.transit_traffic(1), 1);
    EXPECT_EQ(sim.transit_traffic(2), 1);
    EXPECT_EQ(sim.transit_traffic(3), 0);
    EXPECT_EQ(sim.traffic(3), 1);
    EXPECT_EQ(sim.max_traffic(), 1);
    sim.reset_traffic();
    EXPECT_EQ(sim.max_transit_traffic(), 0);
}

TEST(simulator, unattached_destination_short_circuits) {
    // Nobody listens at node 3: the message is dropped at the send itself -
    // no hops are spent walking the path, no traffic is credited.
    const auto g = net::make_path(4);
    for (const bool batched : {true, false}) {
        simulator sim{g};
        sim.set_batched_delivery(batched);
        message msg;
        msg.source = 0;
        msg.destination = 3;
        sim.send(msg);
        sim.run();
        EXPECT_EQ(sim.stats().get(counter_messages_sent), 1);
        EXPECT_EQ(sim.stats().get(counter_messages_dropped), 1);
        EXPECT_EQ(sim.stats().get(counter_hops), 0);
        EXPECT_EQ(sim.max_traffic(), 0);
        EXPECT_EQ(sim.now(), 0);
    }
}

TEST(simulator, batched_delivery_matches_timing_and_counters) {
    // The batched fast path must report the same clock, hop count, and
    // delivery order as a hop-by-hop run.
    const auto g = net::make_grid(5, 5);
    simulator fast{g};
    simulator slow{g};
    slow.set_batched_delivery(false);
    std::vector<std::shared_ptr<recorder>> received;
    for (auto* sim : {&fast, &slow}) {
        auto rx = std::make_shared<recorder>();
        received.push_back(rx);
        sim->attach(24, rx);
        for (int k = 0; k < 4; ++k) {
            message msg;
            msg.kind = k;
            msg.source = static_cast<net::node_id>(k);
            msg.destination = 24;
            msg.tag = 100 + k;
            sim->send(msg);
        }
        sim->run();
        ASSERT_EQ(rx->delivered.size(), 4u);
    }
    // Same delivery order and per-message arrival ticks in both runs.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(received[0]->delivered[i].kind, received[1]->delivered[i].kind);
        EXPECT_EQ(received[0]->delivery_times[i], received[1]->delivery_times[i]);
    }
    EXPECT_EQ(fast.now(), slow.now());
    EXPECT_EQ(fast.stats().get(counter_hops), slow.stats().get(counter_hops));
    for (int k = 0; k < 4; ++k) EXPECT_EQ(fast.tag_hops(100 + k), slow.tag_hops(100 + k));
    for (net::node_id v = 0; v < 25; ++v) {
        EXPECT_EQ(fast.traffic(v), slow.traffic(v)) << "node " << v;
        EXPECT_EQ(fast.transit_traffic(v), slow.transit_traffic(v)) << "node " << v;
    }
}

TEST(metrics, counters_accumulate) {
    metrics m;
    m.add("x");
    m.add("x", 4);
    EXPECT_EQ(m.get("x"), 5);
    EXPECT_EQ(m.get("missing"), 0);
    m.reset();
    EXPECT_EQ(m.get("x"), 0);
}

TEST(rng, deterministic_and_splittable) {
    rng a{42};
    rng b{42};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
    rng c{42};
    auto c1 = c.split(1);
    auto c2 = c.split(2);
    // Distinct streams should diverge quickly.
    int same = 0;
    for (int i = 0; i < 20; ++i)
        if (c1.uniform(0, 1 << 30) == c2.uniform(0, 1 << 30)) ++same;
    EXPECT_LT(same, 3);
}

TEST(rng, uniform01_in_range) {
    rng r{7};
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform01();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

}  // namespace
}  // namespace mm::sim
