// Cross-strategy property suite: every deterministic strategy in the
// library, over a range of sizes, must (a) return normalized subsets of the
// universe, (b) produce a total rendezvous matrix - deterministic
// match-making always succeeds - and (c) satisfy the Proposition 1/2 lower
// bounds.  This is the paper's core claim checked wholesale.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/certify.h"
#include "core/lower_bound.h"
#include "core/rendezvous_matrix.h"
#include "net/hierarchy.h"
#include "net/partition.h"
#include "net/topologies.h"
#include "strategies/basic.h"
#include "strategies/checkerboard.h"
#include "strategies/cube.h"
#include "strategies/grid.h"
#include "strategies/hash_locate.h"
#include "strategies/hierarchical.h"
#include "strategies/partition_strategy.h"
#include "strategies/projective.h"
#include "strategies/scoped_hash.h"
#include "strategies/tree_path.h"

namespace mm {
namespace {

struct strategy_case {
    std::string label;
    std::function<std::unique_ptr<core::locate_strategy>()> make;
};

std::vector<strategy_case> all_cases() {
    std::vector<strategy_case> cases;
    for (const net::node_id n : {5, 9, 16, 30}) {
        cases.push_back({"broadcast/" + std::to_string(n),
                         [n] { return std::make_unique<strategies::broadcast_strategy>(n); }});
        cases.push_back({"sweep/" + std::to_string(n),
                         [n] { return std::make_unique<strategies::sweep_strategy>(n); }});
        cases.push_back({"central/" + std::to_string(n), [n] {
                             return std::make_unique<strategies::central_strategy>(n, n / 2);
                         }});
        cases.push_back({"flood/" + std::to_string(n),
                         [n] { return std::make_unique<strategies::flood_strategy>(n); }});
        cases.push_back({"checkerboard/" + std::to_string(n), [n] {
                             return std::make_unique<strategies::checkerboard_strategy>(n);
                         }});
        cases.push_back({"hash/" + std::to_string(n), [n] {
                             return std::make_unique<strategies::hash_locate_strategy>(n, 2);
                         }});
        cases.push_back({"checkerboard-r2/" + std::to_string(n), [n] {
                             return std::make_unique<strategies::checkerboard_strategy>(n, 0, 2);
                         }});
    }
    cases.push_back({"projective-r2/k3", [] {
                         return std::make_unique<strategies::projective_strategy>(3, 0, 1, 2);
                     }});
    cases.push_back({"scoped-hash/4x4", [] {
                         return std::make_unique<strategies::scoped_hash_strategy>(
                             net::hierarchy{{4, 4}}, 2, nullptr, 2);
                     }});
    for (const auto& [p, q] : {std::pair{3, 3}, {2, 5}, {4, 7}}) {
        cases.push_back({"manhattan/" + std::to_string(p) + "x" + std::to_string(q),
                         [p, q] { return std::make_unique<strategies::manhattan_strategy>(p, q); }});
    }
    cases.push_back({"mesh/3^3", [] {
                         return std::make_unique<strategies::mesh_strategy>(
                             net::mesh_shape{{3, 3, 3}});
                     }});
    cases.push_back({"mesh/2x3x4", [] {
                         return std::make_unique<strategies::mesh_strategy>(
                             net::mesh_shape{{2, 3, 4}});
                     }});
    for (const int d : {2, 3, 4, 5}) {
        cases.push_back({"hypercube/d" + std::to_string(d),
                         [d] { return std::make_unique<strategies::hypercube_strategy>(d); }});
    }
    for (const int d : {2, 3, 4}) {
        cases.push_back({"ccc/d" + std::to_string(d),
                         [d] { return std::make_unique<strategies::ccc_strategy>(d); }});
    }
    for (const int k : {2, 3, 4}) {
        cases.push_back({"projective/k" + std::to_string(k),
                         [k] { return std::make_unique<strategies::projective_strategy>(k); }});
    }
    cases.push_back({"hierarchical/4x4", [] {
                         return std::make_unique<strategies::hierarchical_strategy>(
                             net::hierarchy{{4, 4}});
                     }});
    cases.push_back({"hierarchical/2x3x4", [] {
                         return std::make_unique<strategies::hierarchical_strategy>(
                             net::hierarchy{{2, 3, 4}});
                     }});
    cases.push_back({"tree/binary15", [] {
                         std::vector<net::node_id> parent(15);
                         parent[0] = net::invalid_node;
                         for (net::node_id v = 1; v < 15; ++v)
                             parent[static_cast<std::size_t>(v)] = (v - 1) / 2;
                         return std::make_unique<strategies::tree_path_strategy>(parent);
                     }});
    cases.push_back({"partition/grid6x6", [] {
                         return std::make_unique<strategies::partition_strategy>(
                             net::partition_connected(net::make_grid(6, 6)));
                     }});
    cases.push_back({"partition/ring24", [] {
                         return std::make_unique<strategies::partition_strategy>(
                             net::partition_connected(net::make_ring(24)));
                     }});
    return cases;
}

class strategy_properties : public ::testing::TestWithParam<strategy_case> {};

TEST_P(strategy_properties, sets_are_normalized_subsets_of_universe) {
    const auto strategy = GetParam().make();
    const net::node_id n = strategy->node_count();
    const core::port_id port = core::port_of("property-test");
    for (net::node_id v = 0; v < n; ++v) {
        for (const auto& set : {strategy->post_set(v, port), strategy->query_set(v, port)}) {
            EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
            EXPECT_EQ(std::adjacent_find(set.begin(), set.end()), set.end()) << "duplicates";
            for (const net::node_id w : set) {
                EXPECT_GE(w, 0);
                EXPECT_LT(w, n);
            }
        }
    }
}

TEST_P(strategy_properties, match_making_always_succeeds) {
    const auto strategy = GetParam().make();
    const auto r = core::rendezvous_matrix::from_strategy(*strategy, core::port_of("p"));
    EXPECT_TRUE(r.total()) << GetParam().label;
}

TEST_P(strategy_properties, lower_bounds_hold) {
    const auto strategy = GetParam().make();
    const auto r = core::rendezvous_matrix::from_strategy(*strategy, core::port_of("p"));
    const auto report = core::check_bounds(r);
    EXPECT_TRUE(report.proposition1_holds)
        << GetParam().label << ": " << report.product_sum << " < " << report.product_sum_bound;
    EXPECT_TRUE(report.proposition2_holds)
        << GetParam().label << ": " << report.average_messages << " < " << report.message_bound;
}

TEST_P(strategy_properties, proposition1_proof_lemma_holds) {
    // R_v * C_v >= k_v for every node, the load-vs-span inequality the
    // Proposition 1 proof rests on.
    const auto strategy = GetParam().make();
    const auto r = core::rendezvous_matrix::from_strategy(*strategy, core::port_of("p"));
    const auto spans = r.occurrence_spans();
    const auto k = r.multiplicities();
    for (net::node_id v = 0; v < r.size(); ++v)
        EXPECT_GE(spans.rows[static_cast<std::size_t>(v)] *
                      spans.columns[static_cast<std::size_t>(v)],
                  k[static_cast<std::size_t>(v)])
            << GetParam().label << " node " << v;
}

TEST_P(strategy_properties, deterministic_sets) {
    const auto strategy = GetParam().make();
    const core::port_id port = core::port_of("determinism");
    const net::node_id v = strategy->node_count() / 2;
    EXPECT_EQ(strategy->post_set(v, port), strategy->post_set(v, port));
    EXPECT_EQ(strategy->query_set(v, port), strategy->query_set(v, port));
}

TEST_P(strategy_properties, certificate_is_coherent) {
    const auto strategy = GetParam().make();
    const auto cert = core::certify(*strategy, core::port_of("p"));
    EXPECT_TRUE(cert.total);
    EXPECT_GE(cert.min_overlap, 1);
    EXPECT_GE(cert.fault_tolerance(), 0);
    EXPECT_GE(cert.optimality_ratio(), 1.0 - 1e-9);  // nobody beats the bound
    EXPECT_LE(cert.max_post_size, cert.nodes);
    EXPECT_LE(cert.max_query_size, cert.nodes);
    EXPECT_GE(cert.load_max, static_cast<std::int64_t>(cert.load_mean));
    if (cert.singleton) {
        EXPECT_EQ(cert.min_overlap, 1);
        // Singleton totals satisfy (M2) with equality: mean k = n.
        EXPECT_DOUBLE_EQ(cert.load_mean, static_cast<double>(cert.nodes));
    }
}

INSTANTIATE_TEST_SUITE_P(all_strategies, strategy_properties,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<strategy_case>& info) {
                             std::string name = info.param.label;
                             for (char& c : name)
                                 if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                             return name;
                         });

}  // namespace
}  // namespace mm
