// Tests for net/gf: field axioms of GF(p^m), verified exhaustively for all
// orders used by the projective-plane experiments.
#include <gtest/gtest.h>

#include "net/gf.h"

namespace mm::net {
namespace {

TEST(prime_power, classification) {
    int p = 0;
    int m = 0;
    EXPECT_TRUE(is_prime_power(2, &p, &m));
    EXPECT_EQ(p, 2);
    EXPECT_EQ(m, 1);
    EXPECT_TRUE(is_prime_power(8, &p, &m));
    EXPECT_EQ(p, 2);
    EXPECT_EQ(m, 3);
    EXPECT_TRUE(is_prime_power(27, &p, &m));
    EXPECT_EQ(p, 3);
    EXPECT_EQ(m, 3);
    EXPECT_TRUE(is_prime_power(25, &p, &m));
    EXPECT_EQ(p, 5);
    EXPECT_EQ(m, 2);
    EXPECT_FALSE(is_prime_power(1));
    EXPECT_FALSE(is_prime_power(6));
    EXPECT_FALSE(is_prime_power(12));
    EXPECT_FALSE(is_prime_power(100));
    EXPECT_FALSE(is_prime_power(0));
    EXPECT_FALSE(is_prime_power(-8));
}

TEST(finite_field, rejects_non_prime_powers) {
    EXPECT_THROW(finite_field{6}, std::invalid_argument);
    EXPECT_THROW(finite_field{1}, std::invalid_argument);
    EXPECT_THROW(finite_field{10}, std::invalid_argument);
}

TEST(finite_field, prime_field_is_modular_arithmetic) {
    const finite_field f{7};
    EXPECT_EQ(f.add(5, 4), 2);
    EXPECT_EQ(f.mul(3, 5), 1);
    EXPECT_EQ(f.inv(3), 5);
    EXPECT_EQ(f.neg(2), 5);
    EXPECT_EQ(f.sub(1, 3), 5);
    EXPECT_EQ(f.div(1, 3), 5);
    EXPECT_EQ(f.pow(3, 6), 1);  // Fermat
}

TEST(finite_field, gf4_structure) {
    // GF(4) = {0, 1, x, x+1} with x^2 = x + 1 (modulus x^2 + x + 1).
    const finite_field f{4};
    EXPECT_EQ(f.characteristic(), 2);
    EXPECT_EQ(f.degree(), 2);
    EXPECT_EQ(f.add(2, 3), 1);  // x + (x+1) = 1
    EXPECT_EQ(f.mul(2, 2), 3);  // x^2 = x + 1
    EXPECT_EQ(f.mul(2, 3), 1);  // x(x+1) = x^2 + x = 1
}

TEST(finite_field, element_range_checked) {
    const finite_field f{5};
    EXPECT_THROW((void)f.add(5, 0), std::out_of_range);
    EXPECT_THROW((void)f.mul(0, -1), std::out_of_range);
    EXPECT_THROW((void)f.inv(0), std::domain_error);
}

// Exhaustive field-axiom checks, parameterized over the order.
class field_axioms : public ::testing::TestWithParam<int> {};

TEST_P(field_axioms, additive_group) {
    const finite_field f{GetParam()};
    const int q = f.order();
    for (int a = 0; a < q; ++a) {
        EXPECT_EQ(f.add(a, 0), a);
        EXPECT_EQ(f.add(a, f.neg(a)), 0);
        for (int b = 0; b < q; ++b) {
            EXPECT_EQ(f.add(a, b), f.add(b, a));
            for (int c = 0; c < q; ++c)
                EXPECT_EQ(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
        }
    }
}

TEST_P(field_axioms, multiplicative_group) {
    const finite_field f{GetParam()};
    const int q = f.order();
    for (int a = 0; a < q; ++a) {
        EXPECT_EQ(f.mul(a, 1), a);
        EXPECT_EQ(f.mul(a, 0), 0);
        if (a != 0) {
            EXPECT_EQ(f.mul(a, f.inv(a)), 1);
        }
        for (int b = 0; b < q; ++b) {
            EXPECT_EQ(f.mul(a, b), f.mul(b, a));
            for (int c = 0; c < q; ++c)
                EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        }
    }
}

TEST_P(field_axioms, distributivity) {
    const finite_field f{GetParam()};
    const int q = f.order();
    for (int a = 0; a < q; ++a)
        for (int b = 0; b < q; ++b)
            for (int c = 0; c < q; ++c)
                EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
}

TEST_P(field_axioms, no_zero_divisors) {
    const finite_field f{GetParam()};
    const int q = f.order();
    for (int a = 1; a < q; ++a)
        for (int b = 1; b < q; ++b) EXPECT_NE(f.mul(a, b), 0);
}

TEST_P(field_axioms, multiplicative_order_divides_q_minus_1) {
    const finite_field f{GetParam()};
    for (int a = 1; a < f.order(); ++a) EXPECT_EQ(f.pow(a, f.order() - 1), 1);
}

TEST_P(field_axioms, frobenius_is_additive) {
    // The Frobenius map x -> x^p is a field automorphism in characteristic
    // p: (a + b)^p = a^p + b^p ("freshman's dream").
    const finite_field f{GetParam()};
    const int p = f.characteristic();
    for (int a = 0; a < f.order(); ++a)
        for (int b = 0; b < f.order(); ++b)
            EXPECT_EQ(f.pow(f.add(a, b), p), f.add(f.pow(a, p), f.pow(b, p)));
}

TEST_P(field_axioms, characteristic_annihilates) {
    // p * a = 0 for every element.
    const finite_field f{GetParam()};
    for (int a = 0; a < f.order(); ++a) {
        int sum = 0;
        for (int k = 0; k < f.characteristic(); ++k) sum = f.add(sum, a);
        EXPECT_EQ(sum, 0);
    }
}

INSTANTIATE_TEST_SUITE_P(orders, field_axioms,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27));

}  // namespace
}  // namespace mm::net
