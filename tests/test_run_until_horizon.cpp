// run_until horizon semantics (the PR-2 contract the simulator.h comment
// documents): run_until(t) advances now() all the way to t even when
// events remain pending beyond t - soft state ages on the clock, not on
// event arrival.  transport implementations mirror this in poll()
// (test_transport.cpp covers that side).
#include <gtest/gtest.h>

#include "net/topologies.h"
#include "sim/simulator.h"

namespace mm::sim {
namespace {

class noop final : public node_handler {
public:
    int timers = 0;
    void on_message(simulator&, const message&) override {}
    void on_timer(simulator&, std::int64_t) override { ++timers; }
};

TEST(run_until_horizon, clock_reaches_horizon_with_future_events_pending) {
    const auto g = net::make_complete(2);
    simulator sim{g};
    auto h = std::make_shared<noop>();
    sim.attach(0, h);
    sim.set_timer(0, 1000, 1);  // armed far beyond the horizon

    sim.run_until(50);
    EXPECT_EQ(sim.now(), 50) << "horizon not reached: soft state would stop aging";
    EXPECT_EQ(h->timers, 0) << "future event ran early";
    EXPECT_FALSE(sim.idle());

    // The pending timer still fires at its original deadline.
    sim.run_until(1000);
    EXPECT_EQ(sim.now(), 1000);
    EXPECT_EQ(h->timers, 1);
}

TEST(run_until_horizon, clock_reaches_horizon_on_empty_queue) {
    const auto g = net::make_complete(2);
    simulator sim{g};
    sim.run_until(123);
    EXPECT_EQ(sim.now(), 123);
    EXPECT_TRUE(sim.idle());
}

TEST(run_until_horizon, horizon_in_the_past_is_a_no_op) {
    const auto g = net::make_complete(2);
    simulator sim{g};
    sim.run_until(100);
    sim.run_until(40);  // never rewinds
    EXPECT_EQ(sim.now(), 100);
}

TEST(run_until_horizon, parallel_engine_matches) {
    const auto g = net::make_complete(4);
    simulator sim{g};
    sim.set_worker_threads(2);
    auto h = std::make_shared<noop>();
    sim.attach(1, h);
    sim.set_timer(1, 500, 1);

    sim.run_until(50);
    EXPECT_EQ(sim.now(), 50);
    EXPECT_EQ(h->timers, 0);
    sim.run_until(600);
    EXPECT_EQ(sim.now(), 600);
    EXPECT_EQ(h->timers, 1);
}

TEST(run_until_horizon, next_event_time_peeks_without_running) {
    const auto g = net::make_complete(2);
    simulator sim{g};
    sim.attach(0, std::make_shared<noop>());
    EXPECT_FALSE(sim.next_event_time().has_value());
    sim.set_timer(0, 70, 1);
    const auto t = sim.next_event_time();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 70);
    EXPECT_EQ(sim.now(), 0) << "peeking must not advance the clock";
}

}  // namespace
}  // namespace mm::sim
