// Tests for net/random_graphs: the synthetic UUCP-like generators of
// Section 3.6.
#include <gtest/gtest.h>

#include "net/random_graphs.h"
#include "net/topologies.h"

namespace mm::net {
namespace {

TEST(random_graphs, random_tree_is_a_tree) {
    for (const std::uint64_t seed : {1u, 7u, 99u}) {
        const auto g = make_random_tree(50, seed);
        EXPECT_EQ(g.node_count(), 50);
        EXPECT_EQ(g.edge_count(), 49);
        EXPECT_TRUE(g.connected());
    }
}

TEST(random_graphs, random_tree_deterministic_per_seed) {
    const auto a = make_random_tree(40, 5);
    const auto b = make_random_tree(40, 5);
    for (node_id v = 0; v < 40; ++v)
        EXPECT_EQ(std::vector<node_id>(a.neighbors(v).begin(), a.neighbors(v).end()),
                  std::vector<node_id>(b.neighbors(v).begin(), b.neighbors(v).end()));
}

TEST(random_graphs, preferential_tree_is_more_skewed_than_uniform) {
    // Preferential attachment should produce a larger hub than the uniform
    // random tree at the same size (statistically robust at n = 400).
    const auto pref = make_preferential_tree(400, 11);
    const auto unif = make_random_tree(400, 11);
    EXPECT_GT(pref.max_degree(), unif.max_degree() / 2);
    EXPECT_EQ(pref.edge_count(), 399);
    EXPECT_TRUE(pref.connected());
}

TEST(random_graphs, preferential_parents_valid) {
    const auto parent = make_preferential_tree_parents(64, 3);
    EXPECT_EQ(parent[0], invalid_node);
    for (node_id v = 1; v < 64; ++v) {
        EXPECT_GE(parent[static_cast<std::size_t>(v)], 0);
        EXPECT_LT(parent[static_cast<std::size_t>(v)], v);  // attaches to earlier node
    }
}

TEST(random_graphs, uucp_like_adds_shortcuts) {
    const auto g = make_uucp_like(100, 60, 17);
    EXPECT_EQ(g.node_count(), 100);
    EXPECT_EQ(g.edge_count(), 99 + 60);
    EXPECT_TRUE(g.connected());
}

TEST(random_graphs, random_connected_has_requested_extras) {
    const auto g = make_random_connected(64, 30, 23);
    EXPECT_EQ(g.edge_count(), 63 + 30);
    EXPECT_TRUE(g.connected());
}

TEST(random_graphs, degree_histogram_sums_to_node_count) {
    const auto g = make_uucp_like(200, 100, 9);
    const auto hist = degree_histogram(g);
    int total = 0;
    std::int64_t degree_sum = 0;
    for (std::size_t d = 0; d < hist.size(); ++d) {
        total += hist[d];
        degree_sum += static_cast<std::int64_t>(d) * hist[d];
    }
    EXPECT_EQ(total, 200);
    EXPECT_EQ(degree_sum, 2 * g.edge_count());
}

TEST(random_graphs, single_node_tree) {
    const auto g = make_random_tree(1, 1);
    EXPECT_EQ(g.node_count(), 1);
    EXPECT_EQ(g.edge_count(), 0);
    EXPECT_THROW(make_random_tree(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mm::net
