// test_barrier_pipeline.cpp - the parallel engine's barrier pipeline: the
// k-way merge helpers that replaced the coordinator's serial merges
// (net/shard_map.h), the shard-local future-mailbox flush contract, and the
// phase-instrumentation counters (sim/metrics.h).
//
// The merge-path tests pin the two claims the engine's determinism now
// rests on:
//  * kway_merge_ranks assigns every round event exactly the sequence number
//    the old coordinator-side global sort assigned (randomized rounds,
//    empty runs, single runs, odd run counts), and
//  * pushing a key-merged stream of future events into a calendar queue
//    reproduces, tick for tick and pop for pop, the old global
//    (at, key)-sorted flush - i.e. per-bucket FIFO stays key order across
//    barriers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/shard_map.h"
#include "net/topologies.h"
#include "sim/calendar_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace {

using namespace mm;

// Stand-in for the engine's event: only the ordering fields matter.
struct key_event {
    std::int64_t at = 0;
    std::int64_t key_seq = 0;
    std::int32_t key_idx = 0;
};

bool key_less(const key_event& a, const key_event& b) {
    return a.key_seq != b.key_seq ? a.key_seq < b.key_seq : a.key_idx < b.key_idx;
}

bool at_key_less(const key_event& a, const key_event& b) {
    if (a.at != b.at) return a.at < b.at;
    return key_less(a, b);
}

bool same_event(const key_event& a, const key_event& b) {
    return a.at == b.at && a.key_seq == b.key_seq && a.key_idx == b.key_idx;
}

// Builds `runs` key-sorted runs holding `total` events with globally unique
// (key_seq, key_idx) keys (duplicate key_seq values, disambiguated by
// key_idx, mimic sibling pushes of one parent event).  Distribution across
// runs is seeded-random, so some runs can come out empty.
std::vector<std::vector<key_event>> random_runs(std::size_t runs, std::size_t total,
                                                std::uint64_t seed) {
    std::vector<std::vector<key_event>> out(runs);
    std::uint64_t state = seed | 1;
    for (std::size_t i = 0; i < total; ++i) {
        key_event e;
        e.key_seq = static_cast<std::int64_t>(i / 3);  // duplicates across idx
        e.key_idx = static_cast<std::int32_t>(i % 3);
        state = sim::splitmix64(state);
        e.at = static_cast<std::int64_t>(state % 50);
        state = sim::splitmix64(state);
        out[state % runs].push_back(e);
    }
    // Runs receive events in ascending key order already, but keep the sort
    // explicit so the precondition is visible.
    for (auto& run : out) std::sort(run.begin(), run.end(), key_less);
    return out;
}

// --- kway_merge_ranks vs the serial sort -------------------------------------

TEST(barrier_pipeline, merge_ranks_equal_serial_sort_on_randomized_rounds) {
    for (const std::size_t runs : {1u, 2u, 3u, 5u, 7u, 8u}) {
        for (const std::size_t total : {0u, 1u, 2u, 17u, 400u}) {
            const auto boxes = random_runs(runs, total, runs * 1000 + total);
            // Reference: the old coordinator behavior - one global key sort.
            std::vector<key_event> all;
            for (const auto& run : boxes) all.insert(all.end(), run.begin(), run.end());
            std::sort(all.begin(), all.end(), key_less);
            // Each run ranks itself independently (as each shard does).
            for (std::size_t self = 0; self < runs; ++self) {
                std::vector<std::int64_t> ranks;
                net::kway_merge_ranks(
                    runs, [&boxes](std::size_t r) -> const std::vector<key_event>& {
                        return boxes[r];
                    },
                    self, key_less, ranks);
                ASSERT_EQ(ranks.size(), boxes[self].size());
                for (std::size_t i = 0; i < ranks.size(); ++i) {
                    ASSERT_GE(ranks[i], 0);
                    ASSERT_LT(ranks[i], static_cast<std::int64_t>(all.size()));
                    EXPECT_TRUE(same_event(all[static_cast<std::size_t>(ranks[i])],
                                           boxes[self][i]))
                        << "runs=" << runs << " total=" << total << " self=" << self
                        << " i=" << i;
                }
            }
        }
    }
}

TEST(barrier_pipeline, merge_ranks_with_all_events_in_one_run) {
    // Odd run count with every event in one run and the rest empty: ranks
    // must be the identity (the run is sorted), empty runs rank nothing.
    auto boxes = random_runs(1, 60, 9);
    boxes.resize(5);  // runs 1..4 stay empty
    for (std::size_t self = 0; self < 5; ++self) {
        std::vector<std::int64_t> ranks;
        net::kway_merge_ranks(
            5, [&boxes](std::size_t r) -> const std::vector<key_event>& { return boxes[r]; },
            self, key_less, ranks);
        if (self == 0) {
            ASSERT_EQ(ranks.size(), 60u);
            for (std::size_t i = 0; i < ranks.size(); ++i)
                EXPECT_EQ(ranks[i], static_cast<std::int64_t>(i));
        } else {
            EXPECT_TRUE(ranks.empty());
        }
    }
}

// --- kway_merge --------------------------------------------------------------

TEST(barrier_pipeline, kway_merge_equals_sorted_concatenation) {
    for (const std::size_t runs : {1u, 2u, 4u, 7u}) {
        auto boxes = random_runs(runs, 123, 7 * runs + 1);
        std::vector<key_event> expected;
        for (const auto& run : boxes) expected.insert(expected.end(), run.begin(), run.end());
        std::sort(expected.begin(), expected.end(), key_less);

        std::vector<key_event> merged;
        std::vector<std::size_t> cursors;
        net::kway_merge(
            runs, [&boxes](std::size_t r) -> std::vector<key_event>& { return boxes[r]; },
            key_less, [&merged](key_event&& e) { merged.push_back(e); }, cursors);
        ASSERT_EQ(merged.size(), expected.size());
        for (std::size_t i = 0; i < merged.size(); ++i)
            EXPECT_TRUE(same_event(merged[i], expected[i])) << "runs=" << runs << " i=" << i;
    }
}

// --- shard-local future flush vs the old coordinator flush -------------------

// Drives two calendar queues through the same sequence of barrier flushes
// and pops: one fed per-barrier by the new key-merged stream, one by the
// old global (at, key) sort.  Their pop sequences must be identical at
// every step - the engine's "per-bucket FIFO == key order" contract.
TEST(barrier_pipeline, shard_local_flush_preserves_at_key_fifo_across_ticks) {
    constexpr std::size_t boxes_per_barrier = 4;
    sim::calendar_queue<key_event> merged_queue;
    sim::calendar_queue<key_event> sorted_queue;
    std::uint64_t state = 20260731;
    std::int64_t next_seq = 0;

    const auto pop_until = [](sim::calendar_queue<key_event>& q, std::int64_t horizon) {
        std::vector<key_event> out;
        for (auto nt = q.next_time(); nt && *nt <= horizon; nt = q.next_time())
            out.push_back(q.pop());
        return out;
    };

    for (std::int64_t tick = 0; tick < 60; tick += 5) {
        // One barrier: the engine invariant is that every box is key-sorted
        // and all keys exceed every key of earlier barriers (sequence
        // numbers grow monotonically across rounds and ticks), while `at`
        // varies freely in the future (timers of arbitrary delay).
        std::vector<std::vector<key_event>> boxes(boxes_per_barrier);
        for (int i = 0; i < 40; ++i) {
            key_event e;
            e.key_seq = next_seq++;
            e.key_idx = 0;
            state = sim::splitmix64(state);
            e.at = tick + 1 + static_cast<std::int64_t>(state % 25);  // non-monotone at
            state = sim::splitmix64(state);
            boxes[state % boxes_per_barrier].push_back(e);
        }

        // New scheme: destination merges its boxes by key and pushes.
        std::vector<std::size_t> cursors;
        auto boxes_copy = boxes;
        net::kway_merge(
            boxes_per_barrier,
            [&boxes_copy](std::size_t r) -> std::vector<key_event>& { return boxes_copy[r]; },
            key_less, [&merged_queue](key_event&& e) { merged_queue.push(e); }, cursors);

        // Old scheme: concatenate everything, sort by (at, key), push.
        std::vector<key_event> flat;
        for (const auto& b : boxes) flat.insert(flat.end(), b.begin(), b.end());
        std::sort(flat.begin(), flat.end(), at_key_less);
        for (const auto& e : flat) sorted_queue.push(e);

        // Advance both queues to the next barrier's tick; pop order must
        // match event for event, including events pushed at older barriers.
        const auto a = pop_until(merged_queue, tick + 5);
        const auto b = pop_until(sorted_queue, tick + 5);
        ASSERT_EQ(a.size(), b.size()) << "tick " << tick;
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_TRUE(same_event(a[i], b[i])) << "tick " << tick << " pop " << i;
    }
    // Drain the tails.
    const auto a = pop_until(merged_queue, 1'000'000);
    const auto b = pop_until(sorted_queue, 1'000'000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(same_event(a[i], b[i]));
    EXPECT_TRUE(merged_queue.empty());
    EXPECT_TRUE(sorted_queue.empty());
}

// --- end-to-end: cross-shard timers with non-monotone delays -----------------

// Node 1 turns each incoming message into a timer whose delay varies
// non-monotonically with the message kind, and each timer fires a message
// to node 3 across the shard boundary - so the future mailboxes carry
// events whose `at` order disagrees with their key order, exactly the case
// the shard-local key-merge must still deliver in serial FIFO order.
class delay_fanout_handler final : public sim::node_handler {
public:
    void on_message(sim::simulator& sim, const sim::message& msg) override {
        // Delays 8, 3, 12, 7, 2, 11, 6, 1 for kinds 1..8: later sends fire
        // earlier timers.
        const std::int64_t delay = 1 + ((msg.kind * 5) % 13);
        sim.set_timer(1, delay, msg.kind);
    }
    void on_timer(sim::simulator& sim, std::int64_t timer_id) override {
        sim::message m;
        m.kind = 100 + static_cast<int>(timer_id);
        m.source = 1;
        m.destination = 3;
        sim.send(m);
    }
};

class recording_handler final : public sim::node_handler {
public:
    void on_message(sim::simulator& sim, const sim::message& msg) override {
        arrivals.emplace_back(sim.now(), msg.kind);
    }
    std::vector<std::pair<sim::time_point, int>> arrivals;
};

std::vector<std::pair<sim::time_point, int>> timer_fanout_arrivals(int threads) {
    net::graph g{4};
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    sim::simulator sim{g};
    if (threads > 0) sim.set_worker_threads(threads, net::shard_map{{0, 0, 1, 1}, 2});
    sim.attach(1, std::make_shared<delay_fanout_handler>());
    auto recorder = std::make_shared<recording_handler>();
    sim.attach(3, recorder);
    for (int kind = 1; kind <= 8; ++kind) {
        sim::message m;
        m.kind = kind;
        m.source = 0;
        m.destination = 1;
        sim.send(m);
    }
    sim.run();
    return recorder->arrivals;
}

TEST(barrier_pipeline, cross_shard_timer_fanout_matches_serial_engine) {
    const auto serial_engine = timer_fanout_arrivals(0);   // serial event loop
    const auto one_worker = timer_fanout_arrivals(1);      // parallel engine, 1 worker
    const auto two_workers = timer_fanout_arrivals(2);
    ASSERT_EQ(serial_engine.size(), 8u);
    EXPECT_EQ(one_worker, serial_engine);
    EXPECT_EQ(two_workers, serial_engine);
}

// --- phase instrumentation ---------------------------------------------------

std::vector<std::string_view> phase_counter_names() {
    return {sim::counter_parallel_ticks,         sim::counter_parallel_rounds,
            sim::counter_phase_round_execute_ns, sim::counter_phase_rank_merge_ns,
            sim::counter_phase_mailbox_flush_ns, sim::counter_phase_barrier_wait_ns};
}

TEST(phase_timers, all_zero_in_serial_mode) {
    const auto g = net::make_grid(6, 6);
    sim::simulator sim{g};
    auto recorder = std::make_shared<recording_handler>();
    sim.attach(35, recorder);
    for (net::node_id v = 0; v < 8; ++v) {
        sim::message m;
        m.kind = static_cast<int>(v);
        m.source = v;
        m.destination = 35;
        sim.send(m);
    }
    sim.run();
    ASSERT_EQ(recorder->arrivals.size(), 8u);
    for (const auto name : phase_counter_names())
        EXPECT_EQ(sim.stats().get(name), 0) << name;
    // Not even a zero-valued entry: the serial engine never touches them.
    for (const auto& [name, value] : sim.stats().counters()) {
        (void)value;
        EXPECT_EQ(name.rfind("phase_", 0), std::string::npos) << name;
        EXPECT_EQ(name.rfind("parallel_", 0), std::string::npos) << name;
    }
}

TEST(phase_timers, present_and_monotone_under_the_parallel_engine) {
    const auto g = net::make_grid(8, 8);
    sim::simulator sim{g};
    sim.set_worker_threads(2);
    auto recorder = std::make_shared<recording_handler>();
    sim.attach(63, recorder);
    const auto inject = [&](int base) {
        for (net::node_id v = 0; v < 16; ++v) {
            sim::message m;
            m.kind = base + static_cast<int>(v);
            m.source = v;
            m.destination = 63;
            sim.send(m);
        }
        sim.run();
    };
    inject(0);
    const auto ticks = sim.stats().get(sim::counter_parallel_ticks);
    const auto rounds = sim.stats().get(sim::counter_parallel_rounds);
    EXPECT_GT(ticks, 0);
    EXPECT_GE(rounds, ticks);  // every executed tick runs at least one round
    EXPECT_GT(sim.stats().get(sim::counter_phase_round_execute_ns), 0);
    EXPECT_GT(sim.stats().get(sim::counter_phase_rank_merge_ns), 0);
    EXPECT_GT(sim.stats().get(sim::counter_phase_mailbox_flush_ns), 0);
    EXPECT_GE(sim.stats().get(sim::counter_phase_barrier_wait_ns), 0);

    std::vector<std::int64_t> before;
    for (const auto name : phase_counter_names()) before.push_back(sim.stats().get(name));
    inject(1000);
    std::size_t i = 0;
    for (const auto name : phase_counter_names()) {
        EXPECT_GE(sim.stats().get(name), before[i]) << name;  // monotone
        ++i;
    }
    EXPECT_GT(sim.stats().get(sim::counter_parallel_ticks), ticks);
}

}  // namespace
