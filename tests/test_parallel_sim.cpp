// test_parallel_sim.cpp - determinism contract of the sharded parallel
// engine (sim::simulator::set_worker_threads).
//
// The headline guarantee: for any worker count k, the parallel engine
// produces bit-identical results - every global counter, per-tag counter,
// per-operation outcome, latency, and per-node traffic cell - because
// execution order is canonical (tick, merged key order), routing paths are
// pure functions of their endpoints (source-rooted mode), and all shared
// accumulation is commutative.  These tests run seeded mixed workloads
// (with crashes, TTL/refresh soft state, and Valiant relays) at 1 vs N
// worker threads and demand full equality, plus targeted tests for the
// cross-shard same-tick FIFO order and the zero-event-shard clock advance.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/shard_map.h"
#include "net/topologies.h"
#include "runtime/workload.h"
#include "strategies/cube.h"
#include "strategies/grid.h"

namespace {

using namespace mm;

// Everything observable about one workload run.
struct run_output {
    runtime::workload_stats stats;
    std::int64_t hops = 0;
    std::int64_t sent = 0;
    std::int64_t delivered = 0;
    std::int64_t dropped = 0;
    std::int64_t max_traffic = 0;
    std::int64_t max_transit = 0;
    std::vector<std::int64_t> traffic;
};

template <class Strategy>
run_output run_grid_workload(int threads, net::node_id side, const Strategy& strategy,
                             const net::graph& g, runtime::name_service::options ns_opts,
                             const runtime::workload_options& wl) {
    (void)side;
    sim::simulator sim{g};
    sim.set_worker_threads(threads);
    runtime::name_service ns{sim, strategy, ns_opts};
    run_output out;
    out.stats = runtime::run_workload(ns, wl);
    out.hops = sim.stats().get(sim::counter_hops);
    out.sent = sim.stats().get(sim::counter_messages_sent);
    out.delivered = sim.stats().get(sim::counter_messages_delivered);
    out.dropped = sim.stats().get(sim::counter_messages_dropped);
    out.max_traffic = sim.max_traffic();
    out.max_transit = sim.max_transit_traffic();
    out.traffic.reserve(static_cast<std::size_t>(g.node_count()));
    for (net::node_id v = 0; v < g.node_count(); ++v) out.traffic.push_back(sim.traffic(v));
    return out;
}

void expect_equal_runs(const run_output& a, const run_output& b) {
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.max_traffic, b.max_traffic);
    EXPECT_EQ(a.max_transit, b.max_transit);
    EXPECT_EQ(a.traffic, b.traffic);

    const auto& sa = a.stats;
    const auto& sb = b.stats;
    EXPECT_EQ(sa.issued, sb.issued);
    EXPECT_EQ(sa.completed, sb.completed);
    EXPECT_EQ(sa.locates, sb.locates);
    EXPECT_EQ(sa.locates_found, sb.locates_found);
    EXPECT_EQ(sa.crashes, sb.crashes);
    EXPECT_EQ(sa.per_op_message_passes, sb.per_op_message_passes);
    EXPECT_EQ(sa.global_message_passes, sb.global_message_passes);
    EXPECT_EQ(sa.max_in_flight, sb.max_in_flight);
    EXPECT_EQ(sa.makespan, sb.makespan);
    EXPECT_EQ(sa.latency_p50, sb.latency_p50);
    EXPECT_EQ(sa.latency_p95, sb.latency_p95);
    EXPECT_EQ(sa.latency_p99, sb.latency_p99);
    EXPECT_EQ(sa.latency_max, sb.latency_max);
    ASSERT_EQ(sa.results.size(), sb.results.size());
    for (std::size_t i = 0; i < sa.results.size(); ++i) {
        const auto& ra = sa.results[i];
        const auto& rb = sb.results[i];
        EXPECT_EQ(ra.found, rb.found) << "op " << i;
        EXPECT_EQ(ra.where, rb.where) << "op " << i;
        EXPECT_EQ(ra.latency, rb.latency) << "op " << i;
        EXPECT_EQ(ra.message_passes, rb.message_passes) << "op " << i;
        EXPECT_EQ(ra.nodes_queried, rb.nodes_queried) << "op " << i;
        EXPECT_EQ(ra.stages, rb.stages) << "op " << i;
        EXPECT_EQ(ra.issued_at, rb.issued_at) << "op " << i;
        EXPECT_EQ(ra.completed_at, rb.completed_at) << "op " << i;
    }
}

TEST(parallel_equivalence, mixed_workload_with_crashes) {
    const net::node_id side = 10;
    const auto g = net::make_grid(side, side);
    const strategies::manhattan_strategy strategy{side, side};
    for (const std::uint64_t seed : {1ULL, 20260731ULL}) {
        runtime::workload_options wl;
        wl.seed = seed;
        wl.operations = 150;
        wl.mean_interarrival = 1.0;
        wl.ports = 8;
        wl.servers_per_port = 2;
        wl.locate_weight = 0.80;
        wl.register_weight = 0.06;
        wl.migrate_weight = 0.06;
        wl.crash_weight = 0.08;
        wl.crash_downtime = 25;
        const auto serial = run_grid_workload(1, side, strategy, g, {}, wl);
        const auto par3 = run_grid_workload(3, side, strategy, g, {}, wl);
        const auto par4 = run_grid_workload(4, side, strategy, g, {}, wl);
        expect_equal_runs(serial, par3);
        expect_equal_runs(serial, par4);
        EXPECT_EQ(serial.stats.issued, serial.stats.completed);
        EXPECT_GT(serial.stats.locates_found, 0);
        EXPECT_GT(serial.stats.crashes, 0);
    }
}

TEST(parallel_equivalence, ttl_refresh_soft_state) {
    const net::node_id side = 8;
    const auto g = net::make_grid(side, side);
    const strategies::manhattan_strategy strategy{side, side};
    runtime::name_service::options opts;
    opts.entry_ttl = 60;
    opts.refresh_period = 24;
    runtime::workload_options wl;
    wl.seed = 99;
    wl.operations = 120;
    wl.mean_interarrival = 2.0;
    wl.ports = 6;
    wl.servers_per_port = 1;
    wl.locate_weight = 0.78;
    wl.register_weight = 0.08;
    wl.migrate_weight = 0.10;
    wl.crash_weight = 0.04;
    wl.crash_downtime = 40;
    const auto serial = run_grid_workload(1, side, strategy, g, opts, wl);
    const auto par = run_grid_workload(4, side, strategy, g, opts, wl);
    expect_equal_runs(serial, par);
    EXPECT_GT(serial.stats.locates_found, 0);
}

TEST(parallel_equivalence, valiant_relays) {
    const auto g = net::make_hypercube(6);
    const strategies::hypercube_strategy strategy{6};
    runtime::name_service::options opts;
    opts.valiant_relay = true;
    opts.valiant_seed = 42;
    runtime::workload_options wl;
    wl.seed = 5;
    wl.operations = 100;
    wl.mean_interarrival = 1.0;
    wl.ports = 8;
    wl.crash_weight = 0.05;
    wl.crash_downtime = 20;
    const auto serial = run_grid_workload(1, 0, strategy, g, opts, wl);
    const auto par = run_grid_workload(3, 0, strategy, g, opts, wl);
    expect_equal_runs(serial, par);
}

TEST(parallel_equivalence, burst_injection) {
    const net::node_id side = 12;
    const auto g = net::make_grid(side, side);
    const strategies::manhattan_strategy strategy{side, side};
    runtime::workload_options wl;
    wl.seed = 17;
    wl.operations = 200;
    wl.mean_interarrival = 0.0;  // all operations injected at one tick
    wl.ports = 12;
    wl.crash_weight = 0.0;
    const auto serial = run_grid_workload(1, side, strategy, g, {}, wl);
    const auto par2 = run_grid_workload(2, side, strategy, g, {}, wl);
    const auto par4 = run_grid_workload(4, side, strategy, g, {}, wl);
    expect_equal_runs(serial, par2);
    expect_equal_runs(serial, par4);
    EXPECT_GT(serial.stats.max_in_flight, 50);
}

TEST(parallel_equivalence, same_worker_count_is_reproducible) {
    const net::node_id side = 9;
    const auto g = net::make_grid(side, side);
    const strategies::manhattan_strategy strategy{side, side};
    runtime::workload_options wl;
    wl.seed = 3;
    wl.operations = 90;
    wl.crash_weight = 0.05;
    const auto a = run_grid_workload(4, side, strategy, g, {}, wl);
    const auto b = run_grid_workload(4, side, strategy, g, {}, wl);
    expect_equal_runs(a, b);
}

TEST(parallel_equivalence, randomized_routing_still_deterministic) {
    // Randomized routing forces rounds single-threaded (one sequential draw
    // stream) but stays canonical: any worker count gives the same run.
    const net::node_id side = 6;
    const auto g = net::make_grid(side, side);
    const strategies::manhattan_strategy strategy{side, side};
    const auto run = [&](int threads) {
        sim::simulator sim{g};
        sim.set_randomized_routing(77);
        sim.set_worker_threads(threads);
        runtime::name_service ns{sim, strategy};
        ns.register_server(1234, 21);
        std::vector<runtime::op_id> ids;
        for (net::node_id c = 0; c < g.node_count(); c += 5)
            ids.push_back(ns.begin_locate_fresh(1234, c));
        ns.run_until_complete(ids);
        sim.run();
        std::vector<std::int64_t> out{sim.stats().get(sim::counter_hops), sim.max_traffic()};
        for (const auto id : ids) {
            const auto r = ns.poll(id);
            out.push_back(r && r->found ? r->where : -1);
            out.push_back(r ? r->latency : -1);
        }
        return out;
    };
    EXPECT_EQ(run(1), run(2));
}

// --- cross-shard same-tick FIFO ordering ------------------------------------

// Records every message kind it sees, in arrival order.
class recording_handler final : public sim::node_handler {
public:
    void on_message(sim::simulator& sim, const sim::message& msg) override {
        (void)sim;
        seen.push_back(msg.kind);
    }
    std::vector<int> seen;
};

// Replies to each incoming message with kind + 100 to itself (a same-tick
// cascade), then records it.
class echo_handler final : public sim::node_handler {
public:
    explicit echo_handler(net::node_id self) : self_{self} {}
    void on_message(sim::simulator& sim, const sim::message& msg) override {
        seen.push_back(msg.kind);
        if (msg.kind < 100) {
            sim::message echo;
            echo.kind = msg.kind + 100;
            echo.source = self_;
            echo.destination = self_;
            sim.send(echo);
        }
    }
    std::vector<int> seen;

private:
    net::node_id self_;
};

std::vector<int> fifo_order(int threads) {
    // Line 0-1-2: node 1 receives from both neighbors, which live in
    // different shards of the explicit map below.
    net::graph g{3};
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    sim::simulator sim{g};
    sim.set_worker_threads(threads, net::shard_map{{0, 0, 1}, 2});
    auto recorder = std::make_shared<echo_handler>(1);
    sim.attach(1, recorder);
    sim.attach(0, std::make_shared<recording_handler>());
    sim.attach(2, std::make_shared<recording_handler>());
    // Same tick, alternating source shards; arrival distance is 1 for both
    // sources, so all six land at node 1 at tick 1 and FIFO order at the
    // destination must be exactly the send order.
    int kind = 1;
    for (const net::node_id source : {2, 0, 2, 0, 0, 2}) {
        sim::message m;
        m.kind = kind++;
        m.source = source;
        m.destination = 1;
        sim.send(m);
    }
    sim.run();
    return recorder->seen;
}

TEST(parallel_order, cross_shard_same_tick_fifo_matches_send_order) {
    const auto serial = fifo_order(1);
    // Arrivals in send order, then the same-tick echo cascade in the same
    // generation order.
    const std::vector<int> expected{1, 2, 3, 4, 5, 6, 101, 102, 103, 104, 105, 106};
    EXPECT_EQ(serial, expected);
    EXPECT_EQ(fifo_order(2), serial);
}

// --- zero-event shards and the run_until horizon -----------------------------

class counting_timer_handler final : public sim::node_handler {
public:
    void on_message(sim::simulator& sim, const sim::message& msg) override {
        (void)sim, (void)msg;
    }
    void on_timer(sim::simulator& sim, std::int64_t timer_id) override {
        ++fires;
        sim.set_timer(0, 7, timer_id);  // periodic re-arm
    }
    int fires = 0;
};

TEST(parallel_time, horizon_advances_with_idle_shards) {
    // Shard 1 never has a single event; the barrier must still advance the
    // clock to the horizon (the per-shard mirror of the PR 2 time-stall
    // fix), and the armed periodic timer must not stall it either.
    net::graph g{4};
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    sim::simulator sim{g};
    sim.set_worker_threads(2, net::shard_map{{0, 0, 1, 1}, 2});
    auto timers = std::make_shared<counting_timer_handler>();
    sim.attach(0, timers);
    sim.set_timer(0, 7, 1);
    sim.run_until(50);
    EXPECT_EQ(sim.now(), 50);
    EXPECT_EQ(timers->fires, 7);  // ticks 7, 14, ..., 49
    sim.run_until(70);
    EXPECT_EQ(sim.now(), 70);
    EXPECT_EQ(timers->fires, 10);
    EXPECT_FALSE(sim.idle());  // the re-armed timer is still pending
}

TEST(parallel_time, empty_engine_still_reaches_horizon) {
    net::graph g{2};
    g.add_edge(0, 1);
    sim::simulator sim{g};
    sim.set_worker_threads(2);
    sim.run_until(123);
    EXPECT_EQ(sim.now(), 123);
    EXPECT_TRUE(sim.idle());
}

// --- engine plumbing ---------------------------------------------------------

TEST(parallel_engine, pending_events_survive_switching_thread_counts) {
    net::graph g{4};
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    sim::simulator sim{g};
    auto recorder = std::make_shared<recording_handler>();
    sim.attach(3, recorder);
    sim.attach(0, std::make_shared<recording_handler>());
    for (int k = 1; k <= 3; ++k) {
        sim::message m;
        m.kind = k;
        m.source = 0;
        m.destination = 3;
        sim.send(m);
    }
    sim.set_worker_threads(2);  // re-distributes the three in-flight sends
    sim.run();
    EXPECT_EQ(recorder->seen, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.worker_threads(), 2);
    EXPECT_EQ(sim.shard_assignment().node_count(), 4);
}

TEST(parallel_engine, worker_threads_reports_engine_state) {
    net::graph g{2};
    g.add_edge(0, 1);
    sim::simulator sim{g};
    EXPECT_EQ(sim.worker_threads(), 0);
    EXPECT_FALSE(sim.parallel());
    EXPECT_THROW((void)sim.shard_assignment(), std::logic_error);
    sim.set_worker_threads(8);  // clamped to the 2-node graph's shard count
    EXPECT_TRUE(sim.parallel());
    EXPECT_LE(sim.worker_threads(), 2);
    EXPECT_THROW(sim.set_worker_threads(0), std::invalid_argument);
}

}  // namespace
