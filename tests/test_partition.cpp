// Tests for net/partition: connected size-capped parts with full label
// coverage, the substrate of the Section 3 generic scheme.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "net/partition.h"
#include "net/random_graphs.h"
#include "net/topologies.h"

namespace mm::net {
namespace {

// True if the nodes of `part` induce a connected subgraph of g.
bool part_connected(const graph& g, const std::vector<node_id>& part) {
    if (part.empty()) return false;
    std::set<node_id> members{part.begin(), part.end()};
    std::set<node_id> seen{part.front()};
    std::vector<node_id> stack{part.front()};
    while (!stack.empty()) {
        const node_id v = stack.back();
        stack.pop_back();
        for (const node_id w : g.neighbors(v)) {
            if (members.contains(w) && !seen.contains(w)) {
                seen.insert(w);
                stack.push_back(w);
            }
        }
    }
    return seen.size() == members.size();
}

void check_partition_invariants(const graph& g, const graph_partition& part, int target) {
    // Every node is in exactly one part.
    std::set<node_id> all;
    for (const auto& p : part.parts) {
        ASSERT_FALSE(p.empty());
        for (const node_id v : p) {
            EXPECT_TRUE(all.insert(v).second) << "node in two parts";
            EXPECT_EQ(&part.parts[static_cast<std::size_t>(
                          part.part_of[static_cast<std::size_t>(v)])],
                      &p);
        }
    }
    EXPECT_EQ(static_cast<node_id>(all.size()), g.node_count());

    // The label alphabet is the largest part.
    std::size_t largest = 0;
    for (const auto& p : part.parts) largest = std::max(largest, p.size());
    EXPECT_EQ(part.label_count, static_cast<int>(largest));

    for (int p = 0; p < part.part_count(); ++p) {
        const auto& nodes = part.parts[static_cast<std::size_t>(p)];
        // Size cap: below 2 * target.
        EXPECT_LT(static_cast<int>(nodes.size()), 2 * target)
            << "part " << p << " oversized";
        EXPECT_TRUE(part_connected(g, nodes));
        // Every part covers every label through covering_node.
        for (int label = 0; label < part.label_count; ++label) {
            const node_id cover = part.covering_node(p, label);
            EXPECT_EQ(part.part_of[static_cast<std::size_t>(cover)], p);
            EXPECT_EQ(part.label_of[static_cast<std::size_t>(cover)],
                      label % static_cast<int>(nodes.size()));
        }
    }
}

TEST(partition, grid_partition_invariants) {
    const auto g = make_grid(8, 8);
    const auto part = partition_connected(g);
    check_partition_invariants(g, part, 8);
    EXPECT_GE(part.part_count(), 4);
}

TEST(partition, ring_partition_invariants) {
    const auto g = make_ring(30);
    const auto part = partition_connected(g);
    check_partition_invariants(g, part, 6);
}

TEST(partition, path_partition_has_sqrt_n_parts) {
    const auto g = make_path(100);
    const auto part = partition_connected(g);
    check_partition_invariants(g, part, 10);
    // A path splits cleanly into ~sqrt(n) chunks.
    EXPECT_GE(part.part_count(), 8);
    EXPECT_LE(part.part_count(), 13);
}

TEST(partition, complete_graph_partition) {
    const auto g = make_complete(20);
    const auto part = partition_connected(g);
    check_partition_invariants(g, part, 5);
}

TEST(partition, balanced_tree_partition_invariants) {
    const auto g = make_balanced_tree(3, 4);  // 121 nodes
    const auto part = partition_connected(g);
    check_partition_invariants(g, part, 11);
}

TEST(partition, star_is_handled_by_small_parts) {
    // A star cannot be split into connected ~sqrt(n) parts without the hub;
    // the carve caps the hub's part and sheds leaves as singletons that
    // cover all labels by wrap-around.
    const auto g = make_star(50);
    const auto part = partition_connected(g);
    check_partition_invariants(g, part, 8);
    EXPECT_GE(part.part_count(), 5);
}

TEST(partition, heavy_hub_tree_parts_stay_capped) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        const auto g = make_preferential_tree(200, seed);
        const auto part = partition_connected(g);
        check_partition_invariants(g, part, 15);
    }
}

TEST(partition, random_graph_partition_invariants) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        const auto g = make_random_connected(64, 40, seed);
        const auto part = partition_connected(g);
        check_partition_invariants(g, part, 8);
    }
}

TEST(partition, custom_target_respected) {
    const auto g = make_grid(6, 6);
    const auto part = partition_connected(g, 12);
    check_partition_invariants(g, part, 12);
}

TEST(partition, target_one_gives_singletons) {
    const auto g = make_path(5);
    const auto part = partition_connected(g, 1);
    EXPECT_EQ(part.part_count(), 5);
    EXPECT_EQ(part.label_count, 1);
}

TEST(partition, tiny_graph_is_single_part) {
    const auto g = make_path(3);
    const auto part = partition_connected(g, 10);
    check_partition_invariants(g, part, 10);
    EXPECT_EQ(part.part_count(), 1);
    EXPECT_EQ(part.label_count, 3);
}

TEST(partition, disconnected_graph_rejected) {
    graph g{4};
    g.add_edge(0, 1);
    EXPECT_THROW(partition_connected(g), std::invalid_argument);
}

TEST(partition, nodes_with_label_has_one_covering_node_per_part) {
    const auto g = make_grid(8, 8);
    const auto part = partition_connected(g);
    for (int label = 0; label < part.label_count; ++label) {
        const auto nodes = part.nodes_with_label(label);
        EXPECT_LE(static_cast<int>(nodes.size()), part.part_count());
        // Every part contributed its covering node.
        std::set<int> covered_parts;
        for (const node_id v : nodes)
            covered_parts.insert(part.part_of[static_cast<std::size_t>(v)]);
        EXPECT_EQ(static_cast<int>(covered_parts.size()), part.part_count());
    }
}

TEST(partition, labels_covered_multiplier) {
    const auto g = make_star(20);
    const auto part = partition_connected(g, 4);
    // Some shed singleton part must cover the whole alphabet.
    bool found_wrap = false;
    for (net::node_id v = 0; v < 20; ++v)
        if (part.labels_covered_by(v) == part.label_count &&
            part.parts[static_cast<std::size_t>(part.part_of[static_cast<std::size_t>(v)])]
                    .size() == 1)
            found_wrap = true;
    EXPECT_TRUE(found_wrap);
    // A node in the largest part covers exactly one label.
    for (const auto& p : part.parts) {
        if (static_cast<int>(p.size()) == part.label_count) {
            EXPECT_EQ(part.labels_covered_by(p.front()), 1);
        }
    }
}

TEST(partition, covering_node_validates_label) {
    const auto g = make_path(9);
    const auto part = partition_connected(g);
    EXPECT_THROW((void)part.covering_node(0, part.label_count), std::out_of_range);
    EXPECT_THROW((void)part.covering_node(0, -1), std::out_of_range);
}

}  // namespace
}  // namespace mm::net
