// Tests for strategies/scoped_hash: locality-scoped Hash Locate (Section 5
// opening / the Amoeba local-services discussion in Section 3.5).
#include <gtest/gtest.h>

#include "net/hierarchy.h"
#include "runtime/name_service.h"
#include "strategies/scoped_hash.h"

namespace mm::strategies {
namespace {

const core::port_id os_port = core::port_of("os-service");        // per-host/local
const core::port_id fs_port = core::port_of("file-server");       // campus
const core::port_id auth_port = core::port_of("global-auth");     // global

int scope_policy(core::port_id port) {
    if (port == os_port) return 1;
    if (port == fs_port) return 2;
    return 3;
}

scoped_hash_strategy make_strategy() {
    return scoped_hash_strategy{net::hierarchy{{4, 4, 4}}, 0, scope_policy, 1};
}

TEST(scoped_hash, rendezvous_inside_the_scope_cluster) {
    const auto s = make_strategy();
    const net::hierarchy h{{4, 4, 4}};
    for (const net::node_id v : {0, 13, 37, 63}) {
        for (const auto port : {os_port, fs_port, auth_port}) {
            const int level = scope_policy(port);
            for (const net::node_id rv : s.rendezvous_nodes(v, port))
                EXPECT_EQ(h.cluster_of(level, rv), h.cluster_of(level, v))
                    << "node " << v << " level " << level;
        }
    }
}

TEST(scoped_hash, same_cluster_same_rendezvous) {
    const auto s = make_strategy();
    // Nodes 0 and 3 share the level-1 cluster: identical local rendezvous.
    EXPECT_EQ(s.rendezvous_nodes(0, os_port), s.rendezvous_nodes(3, os_port));
    // Nodes 0 and 5 do not: their local services resolve independently.
    EXPECT_NE(s.rendezvous_nodes(0, os_port), s.rendezvous_nodes(5, os_port));
    // Global scope: everyone agrees.
    EXPECT_EQ(s.rendezvous_nodes(0, auth_port), s.rendezvous_nodes(63, auth_port));
}

TEST(scoped_hash, local_service_visible_only_locally) {
    const net::hierarchy h{{4, 4, 4}};
    const auto g = net::make_hierarchical_graph(h);
    sim::simulator sim{g};
    const auto strategy = make_strategy();
    runtime::name_service ns{sim, strategy};
    ns.register_server(os_port, 1);  // OS service of host cluster {0..3}
    // Same level-1 cluster: found.
    EXPECT_TRUE(ns.locate(os_port, 2).found);
    // Another cluster: *not* found - "Operating System Service is a local
    // service, useful only to local clients".
    EXPECT_FALSE(ns.locate(os_port, 9).found);
    // But that cluster can run its own, under the same port.
    ns.register_server(os_port, 9);
    const auto mine = ns.locate(os_port, 10);
    EXPECT_TRUE(mine.found);
    EXPECT_EQ(mine.where, 9);
    // And the original cluster still sees its own server.
    EXPECT_EQ(ns.locate(os_port, 2).where, 1);
}

TEST(scoped_hash, campus_service_spans_level_two) {
    const net::hierarchy h{{4, 4, 4}};
    const auto g = net::make_hierarchical_graph(h);
    sim::simulator sim{g};
    const auto strategy = make_strategy();
    runtime::name_service ns{sim, strategy};
    ns.register_server(fs_port, 5);
    EXPECT_TRUE(ns.locate(fs_port, 14).found);   // same level-2 cluster {0..15}
    EXPECT_FALSE(ns.locate(fs_port, 20).found);  // different campus
}

TEST(scoped_hash, global_service_spans_everything) {
    const net::hierarchy h{{4, 4, 4}};
    const auto g = net::make_hierarchical_graph(h);
    sim::simulator sim{g};
    const auto strategy = make_strategy();
    runtime::name_service ns{sim, strategy};
    ns.register_server(auth_port, 42);
    for (const net::node_id client : {0, 15, 31, 63})
        EXPECT_TRUE(ns.locate(auth_port, client).found);
}

TEST(scoped_hash, cost_is_two_messages_regardless_of_scope) {
    const auto s = make_strategy();
    for (const auto port : {os_port, fs_port, auth_port}) {
        EXPECT_EQ(s.post_set(7, port).size(), 1u);
        EXPECT_EQ(s.query_set(7, port).size(), 1u);
    }
}

TEST(scoped_hash, load_spreads_across_each_level) {
    // Many level-1 ports hash across the 4 nodes of each host cluster.
    const auto s = make_strategy();
    std::vector<int> hits(64, 0);
    for (int k = 0; k < 400; ++k) {
        const auto port = core::port_of("local-svc" + std::to_string(k));
        // scope_policy sends unknown ports to level 3; make a local policy:
        const scoped_hash_strategy local{net::hierarchy{{4, 4, 4}}, 1, {}, 1};
        for (const net::node_id rv : local.rendezvous_nodes(0, port))
            ++hits[static_cast<std::size_t>(rv)];
    }
    // All 4 nodes of cluster {0..3} get a share; nothing leaks outside.
    for (net::node_id v = 0; v < 4; ++v) EXPECT_GT(hits[static_cast<std::size_t>(v)], 40);
    for (net::node_id v = 4; v < 64; ++v) EXPECT_EQ(hits[static_cast<std::size_t>(v)], 0);
}

TEST(scoped_hash, replicas_and_validation) {
    const scoped_hash_strategy redundant{net::hierarchy{{8, 8}}, 2, {}, 3};
    EXPECT_GE(redundant.post_set(0, auth_port).size(), 2u);
    EXPECT_THROW((scoped_hash_strategy{net::hierarchy{{4}}, 2}), std::invalid_argument);
    EXPECT_THROW((scoped_hash_strategy{net::hierarchy{{4}}, 1, {}, 0}), std::invalid_argument);
    const auto s = make_strategy();
    EXPECT_THROW((void)s.post_set(99, os_port), std::out_of_range);
}

}  // namespace
}  // namespace mm::strategies
