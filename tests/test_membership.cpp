// Tests for dynamic membership at the net layer: graph join/leave/rejoin
// with the change log, incremental routing-table repair against a
// rebuild-from-scratch oracle, and shard_map absorb/release.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/graph.h"
#include "net/routing.h"
#include "net/shard_map.h"
#include "net/topologies.h"
#include "sim/rng.h"

namespace mm::net {
namespace {

// --- graph membership ------------------------------------------------------

TEST(membership_graph, remove_node_detaches_and_marks_absent) {
    auto g = make_ring(5);
    ASSERT_TRUE(g.present(2));
    ASSERT_EQ(g.live_node_count(), 5);
    g.remove_node(2);
    EXPECT_FALSE(g.present(2));
    EXPECT_TRUE(g.valid_node(2));  // the id survives
    EXPECT_EQ(g.live_node_count(), 4);
    EXPECT_EQ(g.degree(2), 0);
    EXPECT_EQ(g.degree(1), 1);
    EXPECT_EQ(g.degree(3), 1);
    EXPECT_EQ(g.edge_count(), 3);
    EXPECT_TRUE(g.connected());  // ring minus a node is a path
}

TEST(membership_graph, add_node_appends_fresh_id) {
    auto g = make_ring(4);
    const node_id v = g.add_node();
    EXPECT_EQ(v, 4);
    EXPECT_EQ(g.node_count(), 5);
    EXPECT_EQ(g.live_node_count(), 5);
    EXPECT_TRUE(g.present(v));
    EXPECT_EQ(g.degree(v), 0);
    g.add_edge(v, 0);
    g.add_edge(v, 2);
    EXPECT_EQ(g.degree(v), 2);
    EXPECT_TRUE(g.connected());
}

TEST(membership_graph, rejoin_restores_id_with_no_edges) {
    auto g = make_ring(5);
    g.remove_node(2);
    g.add_node(2);
    EXPECT_TRUE(g.present(2));
    EXPECT_EQ(g.live_node_count(), 5);
    EXPECT_EQ(g.degree(2), 0);      // a rejoining machine starts bare
    EXPECT_FALSE(g.connected());    // until it attaches somewhere
    g.add_edge(2, 1);
    EXPECT_TRUE(g.connected());
}

TEST(membership_graph, generation_counts_every_change) {
    auto g = make_path(3);  // 2 edge_added records
    const auto gen0 = g.generation();
    g.add_edge(0, 2);       // +1
    g.remove_node(1);       // 2 edge_removed + 1 node_removed = +3
    EXPECT_EQ(g.generation(), gen0 + 4);
}

TEST(membership_graph, change_log_replays_in_order) {
    auto g = make_path(4);
    const auto gen = g.generation();
    g.remove_node(3);       // edge_removed{3,2}, node_removed{3}
    const node_id v = g.add_node();
    g.add_edge(v, 0);
    std::vector<change> log;
    ASSERT_TRUE(g.changes_since(gen, log));
    ASSERT_EQ(log.size(), 4u);
    EXPECT_EQ(log[0].kind, change_kind::edge_removed);
    EXPECT_EQ(log[1].kind, change_kind::node_removed);
    EXPECT_EQ(log[1].a, 3);
    EXPECT_EQ(log[2].kind, change_kind::node_added);
    EXPECT_EQ(log[2].a, v);
    EXPECT_EQ(log[3].kind, change_kind::edge_added);
}

TEST(membership_graph, change_log_window_is_bounded) {
    auto g = make_path(2);
    const auto gen = g.generation();
    for (int i = 0; i < 2100; ++i) {  // 4200 changes > the 4096-record window
        g.remove_edge(0, 1);
        g.add_edge(0, 1);
    }
    std::vector<change> log;
    EXPECT_FALSE(g.changes_since(gen, log));
    // A recent generation still replays.
    const auto recent = g.generation();
    g.remove_edge(0, 1);
    EXPECT_TRUE(g.changes_since(recent, log));
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].kind, change_kind::edge_removed);
}

TEST(membership_graph, validation) {
    auto g = make_ring(4);
    EXPECT_THROW(g.add_node(2), std::invalid_argument);   // already present
    g.remove_node(2);
    EXPECT_THROW(g.remove_node(2), std::invalid_argument);  // already absent
    EXPECT_THROW(g.add_edge(1, 2), std::invalid_argument);  // absent endpoint
    EXPECT_THROW(g.remove_node(99), std::out_of_range);
}

// --- incremental routing repair vs. full-rebuild oracle --------------------

// Compares the incrementally repaired table against a table built fresh on
// the mutated graph.  Both use source-rooted paths, so path() is a pure
// function of its endpoints and must agree exactly -- this is the row-purity
// invariant (a surviving row is bit-identical to a fresh BFS row).
void expect_matches_fresh(const graph& g, const routing_table& incremental) {
    routing_table fresh{g};
    fresh.set_source_rooted_paths(true);
    const node_id n = g.node_count();
    for (node_id a = 0; a < n; ++a) {
        if (!g.present(a)) continue;
        for (node_id b = 0; b < n; ++b) {
            if (!g.present(b)) continue;
            EXPECT_EQ(incremental.distance(a, b), fresh.distance(a, b))
                << "distance(" << a << ", " << b << ")";
            if (a != b) {
                EXPECT_EQ(incremental.path(a, b), fresh.path(a, b))
                    << "path(" << a << ", " << b << ")";
            }
        }
    }
}

TEST(membership_routing, repair_matches_rebuild_over_random_churn) {
    auto g = make_grid(5, 5);
    routing_table rt{g};
    rt.set_source_rooted_paths(true);
    sim::rng random{7};

    // Warm every row so repair has maximal state to keep consistent.
    for (node_id v = 1; v < g.node_count(); ++v) (void)rt.next_hop(0, v);

    std::vector<node_id> joined;
    for (int step = 0; step < 40; ++step) {
        const auto dice = random.uniform(0, 3);
        if (dice == 0) {  // join a fresh node at 1-2 attach points
            std::vector<node_id> attach;
            for (int tries = 0; tries < 16 && attach.size() < 2; ++tries) {
                const auto v = static_cast<node_id>(random.uniform(0, g.node_count() - 1));
                if (g.present(v) && std::find(attach.begin(), attach.end(), v) == attach.end())
                    attach.push_back(v);
            }
            if (attach.empty()) continue;
            const node_id v = g.add_node();
            for (const auto a : attach) g.add_edge(v, a);
            joined.push_back(v);
        } else if (dice == 1 && !joined.empty()) {  // leave a joined node
            const auto ji = static_cast<std::size_t>(
                random.uniform(0, static_cast<std::int64_t>(joined.size()) - 1));
            g.remove_node(joined[ji]);
            joined.erase(joined.begin() + static_cast<std::ptrdiff_t>(ji));
        } else {  // toggle a random extra edge between present base nodes
            const auto a = static_cast<node_id>(random.uniform(0, 24));
            const auto b = static_cast<node_id>(random.uniform(0, 24));
            if (a == b || !g.present(a) || !g.present(b)) continue;
            if (g.has_edge(a, b)) {
                g.remove_edge(a, b);
                if (!g.connected()) g.add_edge(a, b);  // keep the oracle total
            } else {
                g.add_edge(a, b);
            }
        }
        g.finalize();
        expect_matches_fresh(g, rt);
    }
}

TEST(membership_routing, pendant_join_is_leaf_patched_without_rebuilds) {
    auto g = make_grid(6, 6);
    routing_table rt{g};
    // Warm a handful of rows.
    for (node_id v : {1, 7, 14, 21, 35}) (void)rt.next_hop(0, v);
    const auto rows_before = rt.materialized_rows();
    const auto builds_before = rt.row_builds();

    const node_id v = g.add_node();
    g.add_edge(v, 14);
    g.finalize();

    // Every warmed row answers for the new node without a single rebuild.
    for (node_id root : {1, 7, 14, 21, 35})
        EXPECT_EQ(rt.distance(root, v), rt.distance(root, 14) + 1);
    EXPECT_EQ(rt.row_builds(), builds_before);
    EXPECT_EQ(rt.row_invalidations(), 0);
    EXPECT_EQ(rt.materialized_rows(), rows_before);
    EXPECT_EQ(rt.synced_generation(), g.generation());
}

TEST(membership_routing, log_overflow_falls_back_to_full_reset) {
    auto g = make_path(3);
    routing_table rt{g};
    (void)rt.next_hop(0, 2);  // one resident row
    for (int i = 0; i < 2100; ++i) {  // blow the 4096-record change window
        g.remove_edge(0, 1);
        g.add_edge(0, 1);
    }
    const node_id v = g.add_node();
    g.add_edge(v, 2);
    g.finalize();
    (void)rt.distance(0, 2);  // first query after the overflow triggers sync
    EXPECT_GE(rt.row_invalidations(), 1);  // dropped on reset, not repaired
    expect_matches_fresh(g, rt);
}

// --- shard_map absorb / release --------------------------------------------

TEST(membership_shard, absorb_follows_neighbor_majority) {
    // Two halves of a path, one shard each.
    auto g = make_path(8);
    shard_map m{std::vector<int>{0, 0, 0, 0, 1, 1, 1, 1}, 2};
    const node_id v = g.add_node();
    g.add_edge(v, 5);
    g.add_edge(v, 6);
    g.add_edge(v, 0);
    g.finalize();
    EXPECT_EQ(m.absorb(g, v), 1);  // two of three neighbors live in shard 1
    EXPECT_EQ(m.shard_of(v), 1);
}

TEST(membership_shard, absorb_overloaded_majority_goes_to_lightest) {
    // Shard 0 holds 7 of 9 nodes; with 3 shards that exceeds twice the mean
    // live load, so a joiner is re-balanced to the lightest shard even when
    // all its neighbors vote for shard 0.
    auto g = make_path(9);
    shard_map m{std::vector<int>{0, 0, 0, 0, 0, 0, 0, 1, 2}, 3};
    const node_id v = g.add_node();
    g.add_edge(v, 0);
    g.add_edge(v, 1);
    g.finalize();
    EXPECT_EQ(m.absorb(g, v), 1);  // lightest, ties broken to the lowest id
}

TEST(membership_shard, absorb_isolated_node_goes_to_lightest) {
    auto g = make_path(4);
    shard_map m{std::vector<int>{0, 0, 0, 1}, 2};
    const node_id v = g.add_node();  // no edges yet: zero votes everywhere
    EXPECT_EQ(m.absorb(g, v), 1);
}

TEST(membership_shard, absorb_release_is_deterministic) {
    auto g1 = make_grid(4, 4);
    auto g2 = make_grid(4, 4);
    auto m1 = make_shard_map(g1, 4);
    auto m2 = make_shard_map(g2, 4);
    for (int i = 0; i < 12; ++i) {
        const node_id v1 = g1.add_node();
        const node_id v2 = g2.add_node();
        ASSERT_EQ(v1, v2);
        g1.add_edge(v1, static_cast<node_id>(i % 16));
        g2.add_edge(v2, static_cast<node_id>(i % 16));
        ASSERT_EQ(m1.absorb(g1, v1), m2.absorb(g2, v2));
        if (i % 3 == 2) {
            m1.release(v1);
            m2.release(v2);
            g1.remove_node(v1);
            g2.remove_node(v2);
        }
    }
    for (node_id v = 0; v < g1.node_count(); ++v) EXPECT_EQ(m1.shard_of(v), m2.shard_of(v));
}

TEST(membership_shard, make_shard_map_rejects_churned_graph) {
    auto g = make_grid(4, 4);
    g.remove_node(5);
    EXPECT_THROW(make_shard_map(g, 2), std::invalid_argument);
}

}  // namespace
}  // namespace mm::net
