// Tests for sim/calendar_queue: the bucketed tick-keyed scheduler must pop
// in (tick, insertion order) exactly like the priority queue it replaced,
// including across window jumps to far-future ticks and pushes behind the
// scan cursor.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/calendar_queue.h"
#include "sim/rng.h"

namespace mm::sim {
namespace {

struct item {
    std::int64_t at = 0;
    int id = 0;
};

TEST(calendar_queue, pops_in_tick_then_fifo_order) {
    calendar_queue<item> q{16};
    q.push({5, 1});
    q.push({3, 2});
    q.push({5, 3});
    q.push({0, 4});
    q.push({3, 5});
    std::vector<int> order;
    while (!q.empty()) order.push_back(q.pop().id);
    EXPECT_EQ(order, (std::vector<int>{4, 2, 5, 1, 3}));
}

TEST(calendar_queue, empty_and_size_track_contents) {
    calendar_queue<item> q{16};
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.next_time(), std::nullopt);
    q.push({7, 1});
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.next_time(), 7);
    (void)q.pop();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.next_time(), std::nullopt);
}

TEST(calendar_queue, far_future_events_overflow_and_return) {
    // Ticks far beyond the 16-bucket window must survive the window jump.
    calendar_queue<item> q{16};
    q.push({1'000'000, 1});
    q.push({2, 2});
    q.push({1'000'000'000'000LL, 3});
    q.push({1'000'001, 4});
    std::vector<int> order;
    std::vector<std::int64_t> times;
    while (!q.empty()) {
        times.push_back(*q.next_time());
        order.push_back(q.pop().id);
    }
    EXPECT_EQ(order, (std::vector<int>{2, 1, 4, 3}));
    EXPECT_EQ(times, (std::vector<std::int64_t>{2, 1'000'000, 1'000'001, 1'000'000'000'000LL}));
}

TEST(calendar_queue, push_behind_cursor_after_peek_is_not_lost) {
    // Peeking at a far event advances the scan cursor; a later push at an
    // earlier tick (run_until(t) then send at t) must still pop first.
    calendar_queue<item> q{16};
    q.push({100, 1});
    EXPECT_EQ(q.next_time(), 100);  // cursor walks to 100
    q.push({4, 2});                 // behind the cursor, inside the window
    EXPECT_EQ(q.next_time(), 4);
    EXPECT_EQ(q.pop().id, 2);
    EXPECT_EQ(q.pop().id, 1);
}

TEST(calendar_queue, push_below_window_after_far_jump_rebases) {
    calendar_queue<item> q{16};
    q.push({1'000'000, 1});
    EXPECT_EQ(q.next_time(), 1'000'000);  // window jumped to the far tick
    q.push({50, 2});                      // below the jumped window: rebase
    q.push({1'000'000, 3});
    EXPECT_EQ(q.next_time(), 50);
    std::vector<int> order;
    while (!q.empty()) order.push_back(q.pop().id);
    EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(calendar_queue, interleaved_push_pop_at_current_tick) {
    // Events pushed for the tick being drained run after the ones already
    // queued there (the simulator's same-tick handler sends).
    calendar_queue<item> q{8};
    q.push({1, 1});
    q.push({1, 2});
    EXPECT_EQ(q.pop().id, 1);
    q.push({1, 3});  // same tick, mid-drain
    EXPECT_EQ(q.pop().id, 2);
    EXPECT_EQ(q.pop().id, 3);
    EXPECT_TRUE(q.empty());
}

TEST(calendar_queue, drain_in_order_empties_everything) {
    calendar_queue<item> q{8};
    q.push({9, 1});
    q.push({2, 2});
    q.push({40'000, 3});
    q.push({2, 4});
    auto all = q.drain_in_order();
    EXPECT_TRUE(q.empty());
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0].id, 2);
    EXPECT_EQ(all[1].id, 4);
    EXPECT_EQ(all[2].id, 1);
    EXPECT_EQ(all[3].id, 3);
    // The queue stays usable after a drain, including for earlier ticks.
    q.push({1, 5});
    EXPECT_EQ(q.pop().id, 5);
}

TEST(calendar_queue, random_interleaved_schedule_never_regresses_or_loses) {
    // Pushes interleaved with pops like a real simulation (pushes are always
    // at or after the pop clock).  Pops must never go back in time and every
    // element must come out exactly once.
    rng random{20260731};
    calendar_queue<item> q{64};
    int next_id = 0;
    std::int64_t clock = 0;
    std::vector<int> popped;
    for (int round = 0; round < 2000; ++round) {
        const int burst = static_cast<int>(random.uniform(0, 3));
        for (int b = 0; b < burst; ++b) {
            // Mostly near-future, occasionally far-future (timer-like).
            const std::int64_t delta = random.chance(0.05) ? random.uniform(1000, 100'000)
                                                           : random.uniform(0, 12);
            q.push({clock + delta, next_id++});
        }
        if (!q.empty() && random.chance(0.7)) {
            const auto it = q.pop();
            EXPECT_GE(it.at, clock);
            clock = it.at;
            popped.push_back(it.id);
        }
    }
    while (!q.empty()) popped.push_back(q.pop().id);
    std::sort(popped.begin(), popped.end());
    std::vector<int> all_ids(static_cast<std::size_t>(next_id));
    for (int i = 0; i < next_id; ++i) all_ids[static_cast<std::size_t>(i)] = i;
    EXPECT_EQ(popped, all_ids);
}

TEST(calendar_queue, drain_only_run_matches_reference_sort_exactly) {
    // With all pushes first and all pops after, the pop sequence must equal
    // the stable sort by tick.
    rng random{7};
    calendar_queue<item> q{32};
    std::vector<item> reference;
    for (int i = 0; i < 3000; ++i) {
        const std::int64_t at = random.chance(0.1) ? random.uniform(10'000, 1'000'000)
                                                   : random.uniform(0, 200);
        item it{at, i};
        q.push(it);
        reference.push_back(it);
    }
    std::stable_sort(reference.begin(), reference.end(),
                     [](const item& a, const item& b) { return a.at < b.at; });
    for (const auto& want : reference) {
        ASSERT_FALSE(q.empty());
        const auto got = q.pop();
        EXPECT_EQ(got.at, want.at);
        EXPECT_EQ(got.id, want.id);
    }
    EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace mm::sim
