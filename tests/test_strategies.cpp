// Tests for the individual strategy families: set shapes, formulas, and
// exact reproduction of the paper's Example 5 (hierarchy), Example 6
// (binary 3-cube) and the Section 3.1 Manhattan matrix.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rendezvous_matrix.h"
#include "strategies/basic.h"
#include "strategies/checkerboard.h"
#include "strategies/cube.h"
#include "strategies/grid.h"
#include "strategies/tree_path.h"

namespace mm::strategies {
namespace {

using core::node_set;
using core::rendezvous_matrix;

TEST(checkerboard, set_sizes_near_sqrt_n) {
    for (const net::node_id n : {4, 9, 16, 25, 100, 144}) {
        const checkerboard_strategy s{n};
        const auto root = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
        for (net::node_id v = 0; v < n; v += std::max(1, n / 7)) {
            EXPECT_LE(static_cast<int>(s.post_set(v).size()), root);
            EXPECT_LE(static_cast<int>(s.query_set(v).size()), root);
        }
    }
}

TEST(checkerboard, non_square_n_still_total) {
    for (const net::node_id n : {2, 3, 5, 7, 11, 13, 17, 23, 31, 60}) {
        const checkerboard_strategy s{n};
        const auto r = rendezvous_matrix::from_strategy(s);
        EXPECT_TRUE(r.total()) << "n = " << n;
    }
}

TEST(checkerboard, custom_width_changes_split) {
    const checkerboard_strategy wide{16, 8};
    EXPECT_EQ(wide.post_set(0).size(), 8u);
    EXPECT_EQ(wide.query_set(0).size(), 2u);
    EXPECT_TRUE(rendezvous_matrix::from_strategy(wide).total());
}

TEST(checkerboard, invalid_arguments) {
    EXPECT_THROW((checkerboard_strategy{0}), std::invalid_argument);
    EXPECT_THROW((checkerboard_strategy{4, 5}), std::invalid_argument);
    EXPECT_THROW((checkerboard_strategy{4, -1}), std::invalid_argument);
}

TEST(weighted_checkerboard, width_tracks_sqrt_n_alpha) {
    // alpha = 1: balanced.  alpha = 4: posts twice as wide, queries half.
    EXPECT_EQ(weighted_checker_width(100, 1.0), 10);
    EXPECT_EQ(weighted_checker_width(100, 4.0), 20);
    EXPECT_EQ(weighted_checker_width(100, 0.25), 5);
    EXPECT_THROW((void)weighted_checker_width(100, 0.0), std::invalid_argument);
}

TEST(weighted_checkerboard, reduces_weighted_cost) {
    const net::node_id n = 100;
    const double alpha = 16.0;  // clients locate 16x more often
    const auto balanced = rendezvous_matrix::from_strategy(checkerboard_strategy{n});
    const auto tuned = rendezvous_matrix::from_strategy(make_weighted_checkerboard(n, alpha));
    EXPECT_TRUE(tuned.total());
    EXPECT_LT(tuned.average_weighted_message_passes(alpha),
              balanced.average_weighted_message_passes(alpha));
}

TEST(manhattan, paper_9_node_matrix) {
    // Section 3.1: the 3x3 grid matrix "1 2 3 1 2 3 1 2 3 / ... / 7 8 9 ...".
    const manhattan_strategy s{3, 3};
    const auto r = rendezvous_matrix::from_strategy(s);
    ASSERT_TRUE(r.singleton());
    for (net::node_id i = 0; i < 9; ++i)
        for (net::node_id j = 0; j < 9; ++j)
            EXPECT_EQ(r.entry(i, j),
                      node_set{static_cast<net::node_id>(3 * (i / 3) + j % 3)});
    EXPECT_DOUBLE_EQ(r.average_message_passes(), 6.0);  // 2*sqrt(9)
}

TEST(manhattan, rectangular_costs) {
    // p x q grid: #P = q (the row), #Q = p (the column), m = p + q.
    const manhattan_strategy s{4, 7};
    EXPECT_EQ(s.post_set(0).size(), 7u);
    EXPECT_EQ(s.query_set(0).size(), 4u);
    const auto r = rendezvous_matrix::from_strategy(s);
    EXPECT_TRUE(r.total());
    EXPECT_DOUBLE_EQ(r.average_message_passes(), 11.0);
}

TEST(manhattan, rendezvous_of_matches_matrix) {
    const manhattan_strategy s{4, 5};
    const auto r = rendezvous_matrix::from_strategy(s);
    for (net::node_id i = 0; i < 20; ++i)
        for (net::node_id j = 0; j < 20; ++j)
            EXPECT_EQ(r.entry(i, j), node_set{s.rendezvous_of(i, j)});
}

TEST(mesh, two_dimensional_reduces_to_manhattan) {
    const mesh_strategy mesh{net::mesh_shape{{3, 3}}};
    const manhattan_strategy manhattan{3, 3};
    for (net::node_id v = 0; v < 9; ++v) {
        EXPECT_EQ(mesh.post_set(v), manhattan.post_set(v));
        EXPECT_EQ(mesh.query_set(v), manhattan.query_set(v));
    }
}

TEST(mesh, d_dimensional_cost_formula) {
    // m(n) = 2 * n^((d-1)/d) for a d-cube of side a: both sets are
    // hyperplanes of a^(d-1) nodes.
    const net::mesh_shape shape{{4, 4, 4}};
    const mesh_strategy s{shape};
    EXPECT_EQ(s.post_set(0).size(), 16u);
    EXPECT_EQ(s.query_set(0).size(), 16u);
    const auto r = rendezvous_matrix::from_strategy(s);
    EXPECT_TRUE(r.total());
    EXPECT_DOUBLE_EQ(r.average_message_passes(),
                     2.0 * std::pow(64.0, 2.0 / 3.0));
}

TEST(mesh, rendezvous_sets_are_d_minus_2_subgrids) {
    const mesh_strategy s{net::mesh_shape{{3, 3, 3}}};
    const auto r = rendezvous_matrix::from_strategy(s);
    // P fixes axis 0, Q fixes axis 1: intersection fixes both, leaving a
    // 3-node line - built-in redundancy (Section 2.4).
    for (net::node_id i = 0; i < 27; i += 5)
        for (net::node_id j = 0; j < 27; j += 7) EXPECT_EQ(r.entry(i, j).size(), 3u);
}

TEST(mesh, one_dimensional_degenerates_gracefully) {
    const mesh_strategy s{net::mesh_shape{{5}}};
    // Both axes collapse to axis 0: P = Q = the single point's hyperplane,
    // which is the whole line only when coordinates match... P(v) fixes
    // axis 0 at v: a singleton.
    EXPECT_EQ(s.post_set(2), node_set{2});
    EXPECT_EQ(s.query_set(2), node_set{2});
}

TEST(mesh, invalid_axes_rejected) {
    EXPECT_THROW((mesh_strategy{net::mesh_shape{{3, 3}}, 0, 0}), std::invalid_argument);
    EXPECT_THROW((mesh_strategy{net::mesh_shape{{3, 3}}, 2, 1}), std::invalid_argument);
}

TEST(hypercube, example6_matrix) {
    // Example 6: P(abc) = {axy}, Q(abc) = {xbc}; rendezvous = a s_2 s_3 of
    // the server's first bit and the client's last two bits.
    const hypercube_strategy s{3, 2};
    const auto r = rendezvous_matrix::from_strategy(s);
    ASSERT_TRUE(r.singleton());
    for (net::node_id i = 0; i < 8; ++i) {
        EXPECT_EQ(s.post_set(i).size(), 4u);
        EXPECT_EQ(s.query_set(i).size(), 2u);
        for (net::node_id j = 0; j < 8; ++j)
            EXPECT_EQ(r.entry(i, j), node_set{static_cast<net::node_id>((i & 4) | (j & 3))});
    }
}

TEST(hypercube, balanced_split_gives_2_sqrt_n) {
    for (const int d : {2, 4, 6, 8}) {
        const hypercube_strategy s{d};
        const auto n = static_cast<double>(net::node_id{1} << d);
        const auto r = rendezvous_matrix::from_strategy(s);
        EXPECT_TRUE(r.singleton());
        EXPECT_DOUBLE_EQ(r.average_message_passes(), 2.0 * std::sqrt(n)) << "d = " << d;
    }
}

TEST(hypercube, odd_dimension_split) {
    const hypercube_strategy s{5};
    const auto r = rendezvous_matrix::from_strategy(s);
    EXPECT_TRUE(r.singleton());
    // ceil/floor split: 2^3 + 2^2 = 12.
    EXPECT_DOUBLE_EQ(r.average_message_passes(), 12.0);
}

TEST(hypercube, epsilon_split_tradeoff) {
    // Smaller post side = cheaper for immobile servers, dearer for clients.
    const hypercube_strategy lazy_server{6, 1};
    EXPECT_EQ(lazy_server.post_set(0).size(), 2u);
    EXPECT_EQ(lazy_server.query_set(0).size(), 32u);
    EXPECT_TRUE(rendezvous_matrix::from_strategy(lazy_server).total());
}

TEST(hypercube, rendezvous_of_agrees) {
    const hypercube_strategy s{4};
    const auto r = rendezvous_matrix::from_strategy(s);
    for (net::node_id i = 0; i < 16; ++i)
        for (net::node_id j = 0; j < 16; ++j)
            EXPECT_EQ(r.entry(i, j), node_set{s.rendezvous_of(i, j)});
}

TEST(ccc, sets_fan_over_cycles) {
    const int d = 3;
    const ccc_strategy s{d};
    // Post set: d positions x 2^h corners.
    EXPECT_EQ(s.post_set(0).size(), static_cast<std::size_t>(d) * (1u << s.corner_varies()));
    const auto r = rendezvous_matrix::from_strategy(s);
    EXPECT_TRUE(r.total());
    // Rendezvous sets are whole d-cycles: size d.
    for (net::node_id i = 0; i < s.node_count(); i += 5)
        for (net::node_id j = 0; j < s.node_count(); j += 7)
            EXPECT_EQ(r.entry(i, j).size(), static_cast<std::size_t>(d));
}

TEST(ccc, cost_scales_like_sqrt_n_log_n) {
    // Addressed nodes = d*(2^h + 2^(d-h)) ~ 2*sqrt(n*d) for n = d*2^d.
    for (const int d : {4, 6}) {
        const ccc_strategy s{d};
        const auto r = rendezvous_matrix::from_strategy(s);
        const double n = static_cast<double>(s.node_count());
        const double predicted = 2.0 * std::sqrt(n * d);
        EXPECT_NEAR(r.average_message_passes(), predicted, predicted * 0.5) << "d = " << d;
    }
}

TEST(tree_path, example5_matrix) {
    // Example 5: nodes 1..9 (0-based 0..8), hierarchy 1,2,3 < 7; 4,5,6 < 8;
    // 7,8 < 9.  The effective rendezvous reproduces the printed matrix.
    const std::vector<net::node_id> parent{6, 6, 6, 7, 7, 7, 8, 8, net::invalid_node};
    const tree_path_strategy s{parent};
    const net::node_id paper[9][9] = {
        // clients 1..9 (0-based), servers top-to-bottom; paper values - 1.
        {6, 6, 6, 8, 8, 8, 8, 8, 8}, {6, 6, 6, 8, 8, 8, 8, 8, 8},
        {6, 6, 6, 8, 8, 8, 8, 8, 8}, {8, 8, 8, 7, 7, 7, 8, 8, 8},
        {8, 8, 8, 7, 7, 7, 8, 8, 8}, {8, 8, 8, 7, 7, 7, 8, 8, 8},
        {8, 8, 8, 8, 8, 8, 8, 8, 8}, {8, 8, 8, 8, 8, 8, 8, 8, 8},
        {8, 8, 8, 8, 8, 8, 8, 8, 8}};
    for (net::node_id i = 0; i < 9; ++i)
        for (net::node_id j = 0; j < 9; ++j)
            EXPECT_EQ(s.effective_rendezvous(i, j), paper[i][j]) << i << "," << j;
}

TEST(tree_path, strict_variant_posts_at_ancestors) {
    const std::vector<net::node_id> parent{6, 6, 6, 7, 7, 7, 8, 8, net::invalid_node};
    const tree_path_strategy s{parent};
    EXPECT_EQ(s.post_set(0), (node_set{6, 8}));
    EXPECT_EQ(s.post_set(6), (node_set{8}));
    EXPECT_EQ(s.post_set(8), (node_set{8}));  // the root posts at itself
}

TEST(tree_path, include_self_variant) {
    const std::vector<net::node_id> parent{6, 6, 6, 7, 7, 7, 8, 8, net::invalid_node};
    const tree_path_strategy s{parent, /*include_self=*/true};
    EXPECT_EQ(s.post_set(0), (node_set{0, 6, 8}));
    EXPECT_EQ(s.post_set(8), (node_set{8}));
    const auto r = rendezvous_matrix::from_strategy(s);
    EXPECT_TRUE(r.total());
}

TEST(tree_path, matrix_total_on_balanced_trees) {
    for (const bool include_self : {false, true}) {
        // Balanced binary tree of depth 3, BFS layout: parent(v) = (v-1)/2.
        std::vector<net::node_id> parent(15);
        parent[0] = net::invalid_node;
        for (net::node_id v = 1; v < 15; ++v) parent[static_cast<std::size_t>(v)] = (v - 1) / 2;
        const tree_path_strategy s{parent, include_self};
        EXPECT_TRUE(rendezvous_matrix::from_strategy(s).total());
    }
}

TEST(tree_path, depth_and_cost_track_tree_height) {
    std::vector<net::node_id> parent(15);
    parent[0] = net::invalid_node;
    for (net::node_id v = 1; v < 15; ++v) parent[static_cast<std::size_t>(v)] = (v - 1) / 2;
    const tree_path_strategy s{parent};
    EXPECT_EQ(s.depth_of(0), 0);
    EXPECT_EQ(s.depth_of(14), 3);
    // m(i,j) <= 2 * depth: O(l) messages per locate (Section 3.6).
    const auto r = core::rendezvous_matrix::from_strategy(s);
    EXPECT_LE(r.max_message_passes(), 2 * 3);
}

TEST(tree_path, validation) {
    EXPECT_THROW((tree_path_strategy{{}}), std::invalid_argument);
    EXPECT_THROW((tree_path_strategy{{net::invalid_node, net::invalid_node}}),
                 std::invalid_argument);
    EXPECT_THROW((tree_path_strategy{{0, 0}}), std::invalid_argument);  // no root
}

}  // namespace
}  // namespace mm::strategies
