// Tests for net/routing: the hop-count tables of Section 3 ("each node has
// a table containing ... the minimum cost to reach them and the neighbor at
// which the minimum cost path starts").
#include <gtest/gtest.h>

#include <cstdlib>

#include "net/routing.h"
#include "net/topologies.h"

namespace mm::net {
namespace {

TEST(routing, complete_graph_is_one_hop) {
    const auto g = make_complete(6);
    const routing_table rt{g};
    for (node_id a = 0; a < 6; ++a)
        for (node_id b = 0; b < 6; ++b) EXPECT_EQ(rt.distance(a, b), a == b ? 0 : 1);
}

TEST(routing, ring_distance_is_min_arc) {
    const int n = 10;
    const auto g = make_ring(n);
    const routing_table rt{g};
    for (node_id a = 0; a < n; ++a) {
        for (node_id b = 0; b < n; ++b) {
            const int around = std::abs(a - b);
            EXPECT_EQ(rt.distance(a, b), std::min(around, n - around));
        }
    }
}

TEST(routing, grid_distance_is_manhattan) {
    const auto g = make_grid(5, 7);
    const routing_table rt{g};
    for (node_id a = 0; a < 35; ++a)
        for (node_id b = 0; b < 35; ++b)
            EXPECT_EQ(rt.distance(a, b), std::abs(a / 7 - b / 7) + std::abs(a % 7 - b % 7));
}

TEST(routing, hypercube_distance_is_hamming) {
    const auto g = make_hypercube(5);
    const routing_table rt{g};
    for (node_id a = 0; a < 32; ++a)
        for (node_id b = 0; b < 32; ++b)
            EXPECT_EQ(rt.distance(a, b), __builtin_popcount(a ^ b));
}

TEST(routing, distance_is_symmetric_and_triangle) {
    const auto g = make_grid(4, 4, wrap_mode::torus);
    const routing_table rt{g};
    for (node_id a = 0; a < 16; ++a) {
        for (node_id b = 0; b < 16; ++b) {
            EXPECT_EQ(rt.distance(a, b), rt.distance(b, a));
            for (node_id c = 0; c < 16; ++c)
                EXPECT_LE(rt.distance(a, c), rt.distance(a, b) + rt.distance(b, c));
        }
    }
}

TEST(routing, next_hop_decreases_distance) {
    const auto g = make_ccc(3);
    const routing_table rt{g};
    for (node_id a = 0; a < g.node_count(); ++a) {
        for (node_id b = 0; b < g.node_count(); ++b) {
            if (a == b) continue;
            const node_id hop = rt.next_hop(a, b);
            EXPECT_TRUE(g.has_edge(a, hop));
            EXPECT_EQ(rt.distance(hop, b), rt.distance(a, b) - 1);
        }
    }
}

TEST(routing, next_hop_to_self_throws) {
    const auto g = make_complete(3);
    const routing_table rt{g};
    EXPECT_THROW((void)rt.next_hop(1, 1), std::invalid_argument);
}

TEST(routing, path_endpoints_and_length) {
    const auto g = make_grid(4, 6);
    const routing_table rt{g};
    const auto p = rt.path(0, 23);
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), 23);
    EXPECT_EQ(static_cast<int>(p.size()) - 1, rt.distance(0, 23));
    for (std::size_t i = 0; i + 1 < p.size(); ++i) EXPECT_TRUE(g.has_edge(p[i], p[i + 1]));
}

TEST(routing, disconnected_pairs_throw) {
    graph g{4};
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    const routing_table rt{g};
    EXPECT_EQ(rt.distance(0, 1), 1);
    EXPECT_THROW((void)rt.distance(0, 2), std::invalid_argument);
}

TEST(routing, multicast_cost_on_a_path_graph) {
    // Path 0-1-2-3-4: multicast from 0 to {2, 4} shares the prefix.
    const auto g = make_path(5);
    const routing_table rt{g};
    const std::vector<node_id> targets{2, 4};
    EXPECT_EQ(rt.multicast_cost(0, targets), 4);       // edges 0-1,1-2,2-3,3-4 once each
    EXPECT_EQ(rt.unicast_cost(0, targets), 2 + 4);     // separate messages
}

TEST(routing, multicast_cost_never_exceeds_unicast) {
    const auto g = make_grid(5, 5);
    const routing_table rt{g};
    const std::vector<node_id> targets{4, 20, 24, 12};
    EXPECT_LE(rt.multicast_cost(0, targets), rt.unicast_cost(0, targets));
}

TEST(routing, multicast_cost_of_empty_target_set_is_zero) {
    const auto g = make_complete(4);
    const routing_table rt{g};
    EXPECT_EQ(rt.multicast_cost(1, {}), 0);
}

TEST(routing, multicast_to_all_nodes_is_spanning_tree) {
    // Reaching every node over shortest paths uses exactly n-1 edges.
    const auto g = make_grid(4, 4);
    const routing_table rt{g};
    std::vector<node_id> all;
    for (node_id v = 0; v < 16; ++v) all.push_back(v);
    EXPECT_EQ(rt.multicast_cost(3, all), 15);
}

TEST(routing, row_cache_respects_lru_limit) {
    const auto g = make_grid(6, 6);
    routing_table rt{g};
    rt.set_row_cache_limit(3);
    EXPECT_EQ(rt.materialized_rows(), 0u);
    for (node_id v = 0; v < 10; ++v) (void)rt.next_hop(0, v == 0 ? 1 : v);
    EXPECT_LE(rt.materialized_rows(), 3u);
    // Shrinking the cap evicts immediately.
    rt.set_row_cache_limit(1);
    EXPECT_LE(rt.materialized_rows(), 1u);
}

TEST(routing, answers_identical_under_tiny_row_cache) {
    // Evicted rows are rebuilt transparently: every distance and every path
    // stays a valid shortest path whatever the cap.
    const auto g = make_grid(5, 5, wrap_mode::torus);
    routing_table unbounded{g};
    unbounded.set_row_cache_limit(0);
    routing_table tiny{g};
    tiny.set_row_cache_limit(1);
    for (node_id a = 0; a < 25; ++a) {
        for (node_id b = 0; b < 25; ++b) {
            EXPECT_EQ(tiny.distance(a, b), unbounded.distance(a, b));
            const auto p = tiny.path(a, b);
            EXPECT_EQ(p.front(), a);
            EXPECT_EQ(p.back(), b);
            EXPECT_EQ(static_cast<int>(p.size()) - 1, unbounded.distance(a, b));
            for (std::size_t i = 0; i + 1 < p.size(); ++i)
                EXPECT_TRUE(g.has_edge(p[i], p[i + 1]));
        }
    }
    EXPECT_LE(tiny.materialized_rows(), 1u);
    // The build counter is the thrash signal: the tiny cache rebuilt rows
    // over and over, the unbounded one built each root at most once.
    EXPECT_LE(unbounded.row_builds(),
              static_cast<std::int64_t>(g.node_count()));
    EXPECT_GT(tiny.row_builds(), unbounded.row_builds());
}

TEST(routing, bidirectional_distance_needs_no_rows) {
    // distance() on a cold table answers via bidirectional BFS without
    // materializing anything.
    const auto g = make_ccc(4);
    const routing_table rt{g};
    const auto g2 = make_ccc(4);
    const routing_table reference{g2};
    for (node_id a = 0; a < g.node_count(); a += 3) {
        for (node_id b = 0; b < g.node_count(); b += 5) {
            // Reference: force a materialized row via next_hop's table walk.
            const int expect = a == b ? 0 : 1 + reference.distance(reference.next_hop(a, b), b);
            EXPECT_EQ(rt.distance(a, b), expect);
        }
    }
    EXPECT_EQ(rt.materialized_rows(), 0u);
    EXPECT_EQ(rt.row_builds(), 0);
}

TEST(routing, path_choice_is_deterministic_per_call_sequence) {
    // Two tables replaying the same call sequence return identical paths
    // (the simulator's batched/hop-by-hop equivalence relies on this).
    const auto g = make_grid(7, 7);
    routing_table a{g};
    routing_table b{g};
    a.set_row_cache_limit(2);
    b.set_row_cache_limit(2);
    const std::pair<node_id, node_id> calls[] = {{0, 48}, {48, 0}, {3, 45}, {10, 38},
                                                 {0, 48}, {45, 3}, {24, 0}, {0, 24}};
    for (const auto& [from, to] : calls) EXPECT_EQ(a.path(from, to), b.path(from, to));
}

}  // namespace
}  // namespace mm::net
