// Tests for net/degree_sequence: Erdos-Gallai, Havel-Hakimi realization,
// and degree-preserving connectivity rewiring - used to rebuild the
// UUCPnet of Section 3.6 with its exact degree table.
#include <gtest/gtest.h>

#include "analysis/uucp.h"
#include "net/degree_sequence.h"
#include "net/random_graphs.h"

namespace mm::net {
namespace {

TEST(degree_sequence, graphical_classification) {
    EXPECT_TRUE(degree_sequence_graphical({1, 1}));
    EXPECT_TRUE(degree_sequence_graphical({2, 2, 2}));            // triangle
    EXPECT_TRUE(degree_sequence_graphical({3, 3, 3, 3}));         // K4
    EXPECT_TRUE(degree_sequence_graphical({0, 0, 0}));            // empty
    EXPECT_TRUE(degree_sequence_graphical({3, 2, 2, 2, 1}));
    EXPECT_FALSE(degree_sequence_graphical({1}));                 // odd sum
    EXPECT_FALSE(degree_sequence_graphical({3, 1}));              // degree >= n
    EXPECT_FALSE(degree_sequence_graphical({3, 3, 1, 1}));        // Erdos-Gallai fails
    EXPECT_FALSE(degree_sequence_graphical({-1, 1}));
}

TEST(degree_sequence, realization_matches_exactly) {
    const std::vector<int> degrees{4, 3, 3, 2, 2, 1, 1};
    ASSERT_TRUE(degree_sequence_graphical(degrees));
    const auto g = make_graph_with_degrees(degrees);
    for (node_id v = 0; v < g.node_count(); ++v)
        EXPECT_EQ(g.degree(v), degrees[static_cast<std::size_t>(v)]);
}

TEST(degree_sequence, rejects_non_graphical) {
    EXPECT_THROW((void)make_graph_with_degrees({3, 1}), std::invalid_argument);
}

TEST(degree_sequence, star_and_cycle) {
    const auto star = make_graph_with_degrees({4, 1, 1, 1, 1});
    EXPECT_EQ(star.degree(0), 4);
    EXPECT_TRUE(star.connected());
    const auto cycle = make_graph_with_degrees({2, 2, 2, 2, 2});
    for (node_id v = 0; v < 5; ++v) EXPECT_EQ(cycle.degree(v), 2);
}

TEST(degree_sequence, connectivity_rewiring) {
    // 2+2+2 twice realizes as two triangles by Havel-Hakimi... or one
    // 6-cycle after rewiring; either way all degrees stay 2 and the
    // positive-degree nodes end connected.
    const std::vector<int> degrees{2, 2, 2, 2, 2, 2};
    const auto g = make_connected_graph_with_degrees(degrees);
    EXPECT_TRUE(g.connected());
    for (node_id v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2);
}

TEST(degree_sequence, connectivity_ignores_isolated_nodes) {
    const std::vector<int> degrees{2, 2, 2, 0, 0};
    const auto g = make_connected_graph_with_degrees(degrees);
    EXPECT_EQ(g.degree(3), 0);
    EXPECT_EQ(g.degree(4), 0);
    EXPECT_FALSE(g.connected());  // the isolated sites stay isolated
}

TEST(degree_sequence, histogram_expansion) {
    const auto degrees = degrees_from_histogram({{3, 1}, {2, 4}, {1, 7}});
    EXPECT_EQ(degrees, (std::vector<int>{7, 4, 4, 1, 1, 1}));
    EXPECT_THROW((void)degrees_from_histogram({{-1, 2}}), std::invalid_argument);
}

TEST(degree_sequence, rebuilds_the_uucp_network_exactly) {
    // The paper's degree table realizes as a simple graph with 1916 sites
    // and 3848 edges, hubs included (ihnp4 = 641).
    std::vector<std::pair<int, int>> histogram;
    for (const auto& row : analysis::uucp_degree_table())
        histogram.emplace_back(row.sites, row.degree);
    const auto degrees = degrees_from_histogram(histogram);
    ASSERT_EQ(static_cast<int>(degrees.size()), analysis::uucp_total_sites);
    ASSERT_TRUE(degree_sequence_graphical(degrees));

    const auto g = make_connected_graph_with_degrees(degrees);
    EXPECT_EQ(g.node_count(), analysis::uucp_total_sites);
    EXPECT_EQ(g.edge_count(), analysis::uucp_total_edges);
    EXPECT_EQ(g.max_degree(), 641);
    // All 1891 positive-degree sites form one component (25 "loyalists"
    // have degree 0).
    const auto hist = degree_histogram(g);
    EXPECT_EQ(hist[0], 25);
    EXPECT_EQ(hist[1], 840);
}

TEST(graph_edges, remove_edge) {
    graph g{3};
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.remove_edge(0, 1);
    EXPECT_FALSE(g.has_edge(0, 1));
    EXPECT_EQ(g.edge_count(), 1);
    EXPECT_EQ(g.degree(1), 1);
    EXPECT_THROW(g.remove_edge(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mm::net
