// Tests for core/lower_bound: Propositions 1-2 and their corollaries.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lower_bound.h"
#include "strategies/basic.h"
#include "strategies/checkerboard.h"
#include "strategies/random_strategy.h"

namespace mm::core {
namespace {

TEST(lower_bound, centralized_corollary) {
    // k_1 = n^2, rest 0  =>  m(n) >= 2; the central strategy achieves it.
    const strategies::central_strategy s{16, 3};
    const auto r = rendezvous_matrix::from_strategy(s);
    const auto report = check_bounds(r);
    EXPECT_TRUE(report.all_hold());
    EXPECT_DOUBLE_EQ(report.message_bound, 2.0);
    EXPECT_DOUBLE_EQ(report.average_messages, 2.0);
    EXPECT_DOUBLE_EQ(report.optimality_ratio(), 1.0);
}

TEST(lower_bound, truly_distributed_corollary) {
    // All k_i = n  =>  m(n) >= 2*sqrt(n); the checkerboard achieves it for
    // square n.
    const strategies::checkerboard_strategy s{16};
    const auto r = rendezvous_matrix::from_strategy(s);
    const auto report = check_bounds(r);
    EXPECT_TRUE(report.all_hold());
    EXPECT_DOUBLE_EQ(report.message_bound, 8.0);
    EXPECT_DOUBLE_EQ(report.average_messages, 8.0);
}

TEST(lower_bound, truly_distributed_bound_formula) {
    EXPECT_DOUBLE_EQ(truly_distributed_bound(9), 6.0);
    EXPECT_DOUBLE_EQ(truly_distributed_bound(100), 20.0);
}

TEST(lower_bound, broadcast_satisfies_but_does_not_meet_bound) {
    const strategies::broadcast_strategy s{16};
    const auto r = rendezvous_matrix::from_strategy(s);
    const auto report = check_bounds(r);
    EXPECT_TRUE(report.all_hold());
    // Broadcast pays n+1 = 17 against a 2*sqrt(n) = 8 bound.
    EXPECT_DOUBLE_EQ(report.average_messages, 17.0);
    EXPECT_DOUBLE_EQ(report.message_bound, 8.0);
    EXPECT_GT(report.optimality_ratio(), 2.0);
}

TEST(lower_bound, message_bound_for_multiplicities) {
    // (2/n) * sum sqrt(k_i): n = 4, k = {16, 0, 0, 0} -> 2.
    const std::vector<std::int64_t> central{16, 0, 0, 0};
    EXPECT_DOUBLE_EQ(message_bound_for(central, 4), 2.0);
    // k = {4, 4, 4, 4} -> (2/4) * 4 * 2 = 4 = 2*sqrt(4).
    const std::vector<std::int64_t> uniform{4, 4, 4, 4};
    EXPECT_DOUBLE_EQ(message_bound_for(uniform, 4), 4.0);
}

TEST(lower_bound, uneven_load_lowers_the_bound) {
    // Concentrating rendezvous load reduces the lower bound (Section 2.3.2:
    // hierarchical networks can go below 2*sqrt(n)).
    const std::vector<std::int64_t> uneven{13, 1, 1, 1};
    const std::vector<std::int64_t> even{4, 4, 4, 4};
    EXPECT_LT(message_bound_for(uneven, 4), message_bound_for(even, 4));
}

// Property: Propositions 1 and 2 hold for arbitrary (random) strategies.
class bounds_hold_for_random : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(bounds_hold_for_random, propositions_hold) {
    const auto [n, p, q] = GetParam();
    const strategies::random_strategy s{n, p, q, 1234u + static_cast<unsigned>(n)};
    const auto r = rendezvous_matrix::from_strategy(s);
    const auto report = check_bounds(r);
    EXPECT_TRUE(report.proposition1_holds)
        << report.product_sum << " < " << report.product_sum_bound;
    EXPECT_TRUE(report.proposition2_holds)
        << report.average_messages << " < " << report.message_bound;
}

INSTANTIATE_TEST_SUITE_P(random_strategies, bounds_hold_for_random,
                         ::testing::Values(std::tuple{8, 2, 3}, std::tuple{8, 3, 3},
                                           std::tuple{16, 4, 4}, std::tuple{16, 1, 16},
                                           std::tuple{32, 6, 6}, std::tuple{32, 32, 1},
                                           std::tuple{64, 8, 8}, std::tuple{64, 2, 40}));

}  // namespace
}  // namespace mm::core
