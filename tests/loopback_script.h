// loopback_script.h - the shared sim-vs-daemon oracle harness: one
// operation-script vocabulary executed either through runtime::name_service
// inside the simulator (the oracle) or through daemon::mm_client against a
// live mmd_server, with the visible outcome (found / where / nodes_queried)
// captured per operation for exact comparison.
//
// Latency and hop counts are deliberately NOT compared: the simulator's
// clock counts topology hops, the daemon's counts wall milliseconds.  What
// the paper's protocol promises - who is found, where, and how many
// rendezvous nodes were consulted - must agree bit-for-bit.
#pragma once

#include <functional>
#include <random>
#include <span>
#include <unordered_map>
#include <vector>

#include "daemon/mm_client.h"
#include "net/topologies.h"
#include "runtime/name_service.h"
#include "sim/simulator.h"

namespace mm::testing {

struct script_op {
    enum kind { register_server, deregister_server, migrate_server, locate, locate_fresh };
    kind what = locate;
    core::port_id port = 0;
    net::node_id a = net::invalid_node;  // host / client
    net::node_id b = net::invalid_node;  // migrate target
};

struct outcome {
    bool found = false;
    core::address where = net::invalid_node;
    int nodes_queried = 0;

    bool operator==(const outcome&) const = default;
};

// Runs the script sequentially through the in-simulator name service on a
// complete graph over the strategy's universe - the deterministic oracle.
inline std::vector<outcome> run_via_simulator(const core::locate_strategy& strategy,
                                              std::span<const script_op> script,
                                              bool client_caching = false) {
    const auto g = net::make_complete(strategy.node_count());
    sim::simulator sim{g};
    runtime::name_service::options opts;
    opts.client_caching = client_caching;
    runtime::name_service svc{sim, strategy, opts};

    std::vector<outcome> results;
    results.reserve(script.size());
    for (const auto& op : script) {
        runtime::op_id id = 0;
        switch (op.what) {
            case script_op::register_server:
                id = svc.begin_register(op.port, op.a);
                break;
            case script_op::deregister_server:
                id = svc.begin_deregister(op.port, op.a);
                break;
            case script_op::migrate_server:
                id = svc.begin_migrate(op.port, op.a, op.b);
                break;
            case script_op::locate:
                id = svc.begin_locate(op.port, op.a);
                break;
            case script_op::locate_fresh:
                id = svc.begin_locate_fresh(op.port, op.a);
                break;
        }
        svc.run_until_complete({id});
        const auto res = *svc.poll(id);
        results.push_back({res.found, res.where, res.nodes_queried});
        svc.forget(id);
    }
    return results;
}

// Runs the script sequentially through an mm_client.  `pump_server` is
// called between client pumps for single-threaded daemon setups (pass a
// no-op when the daemon runs in its own thread or process).
inline std::vector<outcome> run_via_client(daemon::mm_client& client,
                                           std::span<const script_op> script,
                                           const std::function<void()>& pump_server) {
    std::vector<outcome> results;
    results.reserve(script.size());
    for (const auto& op : script) {
        runtime::op_id id = 0;
        switch (op.what) {
            case script_op::register_server:
                id = client.begin_register(op.port, op.a);
                break;
            case script_op::deregister_server:
                id = client.begin_deregister(op.port, op.a);
                break;
            case script_op::migrate_server:
                id = client.begin_migrate(op.port, op.a, op.b);
                break;
            case script_op::locate:
                id = client.begin_locate(op.port, op.a);
                break;
            case script_op::locate_fresh:
                id = client.begin_locate_fresh(op.port, op.a);
                break;
        }
        while (!client.poll(id)) {
            client.pump(2);
            pump_server();
        }
        const auto res = *client.poll(id);
        results.push_back({res.found, res.where, res.nodes_queried});
        client.forget(id);
    }
    return results;
}

// A seeded mixed workload: registrations, locates (hit and miss), migrates
// and deregistrations over `ports` ports and the strategy's universe.
// Sequential and conflict-free by construction, so both substrates must
// produce identical outcomes regardless of reply interleaving.
inline std::vector<script_op> make_mixed_script(std::uint32_t seed, net::node_id n, int ports,
                                                int length) {
    std::mt19937 rng{seed};
    const auto node = [&] { return static_cast<net::node_id>(rng() % static_cast<unsigned>(n)); };
    std::unordered_map<core::port_id, net::node_id> live;  // port -> current host
    std::vector<script_op> script;
    script.reserve(static_cast<std::size_t>(length));
    for (int i = 0; i < length; ++i) {
        const auto port = static_cast<core::port_id>(1 + rng() % static_cast<unsigned>(ports));
        const auto it = live.find(port);
        switch (rng() % 4) {
            case 0:
                if (it == live.end()) {
                    const auto host = node();
                    script.push_back({script_op::register_server, port, host, net::invalid_node});
                    live[port] = host;
                } else {
                    script.push_back({script_op::locate_fresh, port, node(), net::invalid_node});
                }
                break;
            case 1:
                script.push_back({script_op::locate_fresh, port, node(), net::invalid_node});
                break;
            case 2:
                if (it != live.end()) {
                    const auto to = node();
                    script.push_back({script_op::migrate_server, port, it->second, to});
                    live[port] = to;
                } else {
                    script.push_back({script_op::locate_fresh, port, node(), net::invalid_node});
                }
                break;
            default:
                if (it != live.end()) {
                    script.push_back({script_op::deregister_server, port, it->second,
                                      net::invalid_node});
                    live.erase(it);
                } else {
                    script.push_back({script_op::locate_fresh, port, node(), net::invalid_node});
                }
                break;
        }
    }
    return script;
}

}  // namespace mm::testing
