// Tests for the asynchronous operation-handle API: overlapping operations
// in one simulator run, per-operation message-pass isolation (tag counters
// partition the global hop counter), poll/run_until_complete semantics,
// same-seed determinism of concurrent mixed workloads, and the capability
// interface (staged_levels / fallback_chain) that replaced concrete-type
// coupling.
#include <gtest/gtest.h>

#include <vector>

#include "net/hierarchy.h"
#include "net/topologies.h"
#include "runtime/name_service.h"
#include "runtime/workload.h"
#include "strategies/checkerboard.h"
#include "strategies/grid.h"
#include "strategies/hash_locate.h"
#include "strategies/hierarchical.h"

namespace mm::runtime {
namespace {

const core::port_id file_port = core::port_of("file-server");

TEST(async_api, begin_poll_run_until_complete_roundtrip) {
    const auto g = net::make_grid(4, 4);
    sim::simulator sim{g};
    const strategies::manhattan_strategy strategy{4, 4};
    name_service ns{sim, strategy};

    const op_id reg = ns.begin_register(file_port, 5);
    EXPECT_FALSE(ns.poll(reg).has_value());  // posts still in flight
    ns.run_until_complete({reg});
    const auto posted = ns.poll(reg);
    ASSERT_TRUE(posted.has_value());
    EXPECT_TRUE(posted->found);
    EXPECT_EQ(posted->where, 5);

    const op_id loc = ns.begin_locate(file_port, 10);
    EXPECT_FALSE(ns.poll(loc).has_value());
    ns.run_until_complete({loc});
    const auto result = ns.poll(loc);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->found);
    EXPECT_EQ(result->where, 5);
    EXPECT_GT(result->message_passes, 0);
    EXPECT_GE(result->completed_at, result->issued_at);
    EXPECT_EQ(result->latency, result->completed_at - result->issued_at);
    EXPECT_THROW((void)ns.poll(999), std::out_of_range);
}

TEST(async_api, hundred_overlapping_locates_isolate_message_passes) {
    const auto g = net::make_complete(100);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{100};
    name_service ns{sim, strategy};
    for (int s = 0; s < 10; ++s)
        ns.register_server(core::port_of("svc" + std::to_string(s)),
                           static_cast<net::node_id>(s * 7 % 100));

    const auto hops_before = sim.stats().get(sim::counter_hops);
    std::vector<op_id> ids;
    for (int k = 0; k < 100; ++k) {
        const auto port = core::port_of("svc" + std::to_string(k % 10));
        ids.push_back(ns.begin_locate(port, static_cast<net::node_id>(k)));
    }
    ns.run_until_complete(ids);
    sim.run();  // land stragglers so per-tag counts are final

    std::int64_t per_op_total = 0;
    for (std::size_t k = 0; k < ids.size(); ++k) {
        const auto result = ns.poll(ids[k]);
        ASSERT_TRUE(result.has_value());
        EXPECT_TRUE(result->found) << k;
        EXPECT_EQ(result->where, static_cast<net::node_id>((k % 10) * 7 % 100));
        EXPECT_GT(result->message_passes, 0) << k;
        per_op_total += result->message_passes;
    }
    // The tag counters partition the global hop counter exactly: nothing is
    // double-charged across the 100 concurrent operations and nothing leaks.
    EXPECT_EQ(per_op_total, sim.stats().get(sim::counter_hops) - hops_before);
}

TEST(async_api, thousand_in_flight_locates_share_one_run) {
    const auto g = net::make_complete(64);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{64};
    name_service ns{sim, strategy};
    ns.register_server(file_port, 9);

    std::vector<op_id> ids;
    for (int k = 0; k < 1200; ++k)
        ids.push_back(ns.begin_locate(file_port, static_cast<net::node_id>(k % 64)));
    // All issued at the same tick and none completed: 1200 in flight.
    for (const op_id id : ids) EXPECT_FALSE(ns.poll(id).has_value());
    ns.run_until_complete(ids);
    for (const op_id id : ids) {
        const auto result = ns.poll(id);
        ASSERT_TRUE(result.has_value());
        EXPECT_TRUE(result->found);
        EXPECT_EQ(result->where, 9);
    }
}

TEST(async_api, concurrent_posts_and_locates_interleave) {
    const auto g = net::make_complete(25);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{25};
    name_service ns{sim, strategy};
    ns.register_server(file_port, 3);

    // A migrate and a locate of the same port in flight together: the
    // locate resolves against whichever binding its reply raced to, but
    // both operations complete and the post-migration state is consistent.
    const op_id mig = ns.begin_migrate(file_port, 3, 21);
    const op_id loc = ns.begin_locate(file_port, 12);
    std::vector<op_id> both{mig, loc};
    ns.run_until_complete(both);
    ASSERT_TRUE(ns.poll(mig)->found);
    ASSERT_TRUE(ns.poll(loc).has_value());
    EXPECT_EQ(ns.locate(file_port, 12).where, 21);
}

TEST(async_api, failed_locate_completes_at_exact_deadline) {
    const auto g = net::make_grid(3, 3);
    sim::simulator sim{g};
    const strategies::manhattan_strategy strategy{3, 3};
    name_service ns{sim, strategy};
    const op_id id = ns.begin_locate(core::port_of("nobody"), 4);
    ns.run_until_complete({id});
    const auto result = ns.poll(id);
    ASSERT_TRUE(result.has_value());
    EXPECT_FALSE(result->found);
    EXPECT_EQ(result->latency, 0);
    EXPECT_GT(result->nodes_queried, 0);
}

TEST(async_api, locate_from_crashed_client_resolves_as_failure) {
    const auto g = net::make_complete(9);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{9};
    name_service ns{sim, strategy};
    ns.register_server(file_port, 2);
    ns.crash_node(5);
    const op_id id = ns.begin_locate(file_port, 5);
    ns.run_until_complete({id});  // must terminate, not hang
    const auto result = ns.poll(id);
    ASSERT_TRUE(result.has_value());
    EXPECT_FALSE(result->found);
}

TEST(async_api, stale_client_hints_never_answer_network_queries) {
    // Manhattan clients sit in their own query column, so a stale reply
    // hint stored at the client would win the reply race against the
    // migrated server's farther rendezvous - unless hints are kept out of
    // the rendezvous directory, which is exactly what locate_fresh's
    // "bypass the hint" contract requires.
    const auto g = net::make_grid(4, 4);
    sim::simulator sim{g};
    const strategies::manhattan_strategy strategy{4, 4};
    name_service ns{sim, strategy, {.client_caching = true}};
    ns.register_server(file_port, 5);
    ASSERT_EQ(ns.locate(file_port, 10).where, 5);  // hint cached at client 10
    ns.migrate_server(file_port, 5, 15);
    EXPECT_EQ(ns.locate(file_port, 10).where, 5);  // the hint, locally
    EXPECT_EQ(ns.locate_fresh(file_port, 10).where, 15);  // the network
}

TEST(async_api, forget_refuses_in_flight_operations) {
    const auto g = net::make_complete(9);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{9};
    name_service ns{sim, strategy};
    const op_id mig = ns.begin_migrate(file_port, 1, 8);
    EXPECT_THROW(ns.forget(mig), std::logic_error);  // withdrawal leg pending
    ns.run_until_complete({mig});
    ns.forget(mig);  // completed: fine
    EXPECT_THROW((void)ns.poll(mig), std::out_of_range);
}

TEST(async_api, options_validation) {
    const auto g = net::make_complete(4);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{4};
    EXPECT_THROW((name_service{sim, strategy, {.refresh_period = -1}}),
                 std::invalid_argument);
    EXPECT_THROW((name_service{sim, strategy, {.entry_ttl = -2}}), std::invalid_argument);
}

TEST(capability, staged_locate_needs_no_concrete_type) {
    const net::hierarchy h{{4, 4}};
    const auto g = net::make_hierarchical_graph(h);
    sim::simulator sim{g};
    const strategies::hierarchical_strategy strategy{h};
    EXPECT_EQ(strategy.staged_levels(), 2);
    // Through the base interface only.
    const core::locate_strategy& base = strategy;
    EXPECT_EQ(base.staged_query_set(2, 1, 0), strategy.level_query_set(2, 1));

    name_service ns{sim, base};
    ns.register_server(file_port, 1);
    const auto local = ns.locate_staged(file_port, 2);
    EXPECT_TRUE(local.found);
    EXPECT_EQ(local.stages, 1);
    const auto remote = ns.locate_staged(file_port, 9);
    EXPECT_TRUE(remote.found);
    EXPECT_EQ(remote.stages, 2);
}

TEST(capability, staged_locate_degenerates_without_staging) {
    const auto g = net::make_complete(16);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{16};
    EXPECT_EQ(strategy.staged_levels(), 1);
    name_service ns{sim, strategy};
    ns.register_server(file_port, 3);
    const auto result = ns.locate_staged(file_port, 7);
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.stages, 1);
    EXPECT_EQ(result.where, 3);
}

TEST(capability, fallback_chain_is_owned_by_the_strategy) {
    const strategies::hash_locate_strategy primary{32, 1, 0, 2};
    const auto chain = primary.fallback_chain();
    ASSERT_EQ(chain.size(), 2u);
    // Attempts shift by one per fallback.
    EXPECT_EQ(chain[0]->post_set(0, 42),
              (strategies::hash_locate_strategy{32, 1, 1}.post_set(0, 42)));
    EXPECT_EQ(chain[1]->post_set(0, 42),
              (strategies::hash_locate_strategy{32, 1, 2}.post_set(0, 42)));
    // Default capability: no fallbacks.
    const strategies::checkerboard_strategy plain{16};
    EXPECT_TRUE(plain.fallback_chain().empty());
}

TEST(workload, same_seed_is_deterministic) {
    const auto run = [] {
        const auto g = net::make_grid(8, 8);
        sim::simulator sim{g};
        const strategies::manhattan_strategy strategy{8, 8};
        name_service ns{sim, strategy};
        workload_options opts;
        opts.seed = 42;
        opts.operations = 400;
        opts.mean_interarrival = 1.5;
        opts.ports = 8;
        opts.servers_per_port = 2;
        opts.locate_weight = 0.85;
        opts.register_weight = 0.05;
        opts.migrate_weight = 0.06;
        opts.crash_weight = 0.04;
        return run_workload(ns, opts);
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.results.size(), b.results.size());
    EXPECT_GT(a.completed, 0);
    EXPECT_GT(a.crashes, 0);
    for (std::size_t k = 0; k < a.results.size(); ++k) {
        EXPECT_EQ(a.results[k].found, b.results[k].found) << k;
        EXPECT_EQ(a.results[k].where, b.results[k].where) << k;
        EXPECT_EQ(a.results[k].latency, b.results[k].latency) << k;
        EXPECT_EQ(a.results[k].message_passes, b.results[k].message_passes) << k;
        EXPECT_EQ(a.results[k].issued_at, b.results[k].issued_at) << k;
        EXPECT_EQ(a.results[k].completed_at, b.results[k].completed_at) << k;
    }
    EXPECT_EQ(a.per_op_message_passes, b.per_op_message_passes);
    EXPECT_EQ(a.global_message_passes, b.global_message_passes);
    EXPECT_EQ(a.max_in_flight, b.max_in_flight);
    EXPECT_EQ(a.latency_p99, b.latency_p99);
}

TEST(workload, burst_reaches_thousand_in_flight_and_accounts_exactly) {
    const auto g = net::make_complete(128);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{128};
    name_service ns{sim, strategy};
    workload_options opts;
    opts.seed = 9;
    opts.operations = 1100;
    opts.mean_interarrival = 0;  // burst: all in flight together
    opts.ports = 16;
    opts.locate_weight = 1.0;
    opts.register_weight = 0;
    opts.migrate_weight = 0;
    opts.crash_weight = 0;
    const auto stats = run_workload(ns, opts);
    EXPECT_EQ(stats.completed, 1100);
    EXPECT_GE(stats.max_in_flight, 1000);
    EXPECT_EQ(stats.locates_found, stats.locates);
    // Every message of the run is tagged by exactly one operation.
    EXPECT_EQ(stats.per_op_message_passes, stats.global_message_passes);
    EXPECT_GT(stats.per_op_message_passes, 0);
    EXPECT_GE(stats.latency_p99, stats.latency_p50);
}

}  // namespace
}  // namespace mm::runtime
