// Tests for lighthouse/network_beam: the reverse-routing-table "straight
// line" trick at the end of Section 4.
#include <gtest/gtest.h>

#include <set>

#include "lighthouse/network_beam.h"
#include "net/topologies.h"

namespace mm::lighthouse {
namespace {

TEST(network_beam, moves_strictly_away_from_origin) {
    const auto g = net::make_grid(9, 9);
    const net::routing_table rt{g};
    sim::rng random{5};
    for (int trial = 0; trial < 50; ++trial) {
        const auto trace = trace_network_beam(g, rt, 40, 6, random);  // center
        EXPECT_TRUE(trace.monotone_away);
        EXPECT_FALSE(trace.nodes.empty());
    }
}

TEST(network_beam, respects_requested_length_when_possible) {
    // On a large torus every beam of length 4 from the center can extend.
    const auto g = net::make_grid(16, 16, net::wrap_mode::torus);
    const net::routing_table rt{g};
    sim::rng random{9};
    for (int trial = 0; trial < 20; ++trial) {
        const auto nodes = network_beam(g, rt, 0, 4, random);
        EXPECT_EQ(nodes.size(), 4u);
    }
}

TEST(network_beam, stops_at_network_edge) {
    // From a path end, a beam can run at most n-1 hops.
    const auto g = net::make_path(5);
    const net::routing_table rt{g};
    sim::rng random{2};
    const auto nodes = network_beam(g, rt, 0, 10, random);
    EXPECT_EQ(nodes.size(), 4u);
    EXPECT_EQ(nodes.back(), 4);
}

TEST(network_beam, zero_length_is_empty) {
    const auto g = net::make_ring(6);
    const net::routing_table rt{g};
    sim::rng random{2};
    EXPECT_TRUE(network_beam(g, rt, 0, 0, random).empty());
}

TEST(network_beam, never_revisits_nodes_on_trees) {
    // On a tree, reverse-path beams follow simple root-to-leaf paths.
    const auto g = net::make_balanced_tree(3, 4);
    const net::routing_table rt{g};
    sim::rng random{13};
    for (int trial = 0; trial < 30; ++trial) {
        const auto nodes = network_beam(g, rt, 0, 10, random);
        std::set<net::node_id> unique{nodes.begin(), nodes.end()};
        EXPECT_EQ(unique.size(), nodes.size());
    }
}

TEST(network_beam, covers_different_directions) {
    // Repeated beams from the same origin should fan out over distinct
    // endpoints (the random-direction property the locate relies on).
    const auto g = net::make_grid(11, 11);
    const net::routing_table rt{g};
    sim::rng random{21};
    std::set<net::node_id> endpoints;
    for (int trial = 0; trial < 60; ++trial) {
        const auto nodes = network_beam(g, rt, 60, 5, random);
        if (!nodes.empty()) endpoints.insert(nodes.back());
    }
    EXPECT_GE(endpoints.size(), 8u);
}

}  // namespace
}  // namespace mm::lighthouse
