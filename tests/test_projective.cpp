// Tests for net/projective_plane: the axioms quoted in Section 3.4 -
// "PG(2,k) has n = k^2+k+1 points and equally many lines.  Each line
// consists of k+1 points and k+1 lines pass through each point.  Each pair
// of lines has exactly one point in common."
#include <gtest/gtest.h>

#include "net/projective_plane.h"

namespace mm::net {
namespace {

class plane_axioms : public ::testing::TestWithParam<int> {};

TEST_P(plane_axioms, counts) {
    const int q = GetParam();
    const projective_plane pg{q};
    EXPECT_EQ(pg.order(), q);
    EXPECT_EQ(pg.point_count(), q * q + q + 1);
    EXPECT_EQ(pg.line_count(), q * q + q + 1);
}

TEST_P(plane_axioms, each_line_has_q_plus_1_points) {
    const projective_plane pg{GetParam()};
    for (int line = 0; line < pg.line_count(); ++line)
        EXPECT_EQ(static_cast<int>(pg.points_on_line(line).size()), pg.order() + 1);
}

TEST_P(plane_axioms, each_point_on_q_plus_1_lines) {
    const projective_plane pg{GetParam()};
    for (node_id point = 0; point < pg.point_count(); ++point)
        EXPECT_EQ(static_cast<int>(pg.lines_through_point(point).size()), pg.order() + 1);
}

TEST_P(plane_axioms, distinct_lines_share_exactly_one_point) {
    const projective_plane pg{GetParam()};
    for (int a = 0; a < pg.line_count(); ++a) {
        for (int b = a + 1; b < pg.line_count(); ++b) {
            int shared = 0;
            for (const node_id p : pg.points_on_line(a))
                if (pg.incident(p, b)) ++shared;
            ASSERT_EQ(shared, 1) << "lines " << a << ", " << b;
            // common_point agrees with the exhaustive count.
            EXPECT_TRUE(pg.incident(pg.common_point(a, b), a));
            EXPECT_TRUE(pg.incident(pg.common_point(a, b), b));
        }
    }
}

TEST_P(plane_axioms, two_points_lie_on_one_common_line) {
    const projective_plane pg{GetParam()};
    for (node_id p = 0; p < pg.point_count(); ++p) {
        for (node_id r = static_cast<node_id>(p) + 1; r < pg.point_count(); ++r) {
            int shared = 0;
            for (const int line : pg.lines_through_point(p))
                if (pg.incident(r, line)) ++shared;
            ASSERT_EQ(shared, 1) << "points " << p << ", " << r;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(orders, plane_axioms, ::testing::Values(2, 3, 4, 5, 7, 8, 9));

TEST(projective_plane, fano_plane_is_pg_2_2) {
    const projective_plane fano{2};
    EXPECT_EQ(fano.point_count(), 7);
    EXPECT_EQ(fano.line_count(), 7);
}

TEST(projective_plane, common_point_of_identical_lines_throws) {
    const projective_plane pg{2};
    EXPECT_THROW((void)pg.common_point(3, 3), std::invalid_argument);
}

TEST(projective_plane, rejects_non_prime_power_order) {
    EXPECT_THROW(projective_plane{6}, std::invalid_argument);
}

TEST(projective_plane, coords_are_normalized) {
    const projective_plane pg{3};
    for (node_id p = 0; p < pg.point_count(); ++p) {
        const auto c = pg.point_coords(p);
        // First nonzero coordinate is 1.
        for (const int v : c) {
            if (v == 0) continue;
            EXPECT_EQ(v, 1);
            break;
        }
    }
}

}  // namespace
}  // namespace mm::net
