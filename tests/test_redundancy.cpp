// Tests for the Section 2.4 redundancy machinery: redundant checkerboard
// and projective variants, and the certify() audit.
#include <gtest/gtest.h>

#include "core/certify.h"
#include "net/topologies.h"
#include "runtime/name_service.h"
#include "strategies/basic.h"
#include "strategies/checkerboard.h"
#include "strategies/grid.h"
#include "strategies/projective.h"

namespace mm {
namespace {

TEST(redundant_checkerboard, overlap_grows_quadratically) {
    for (const int r : {1, 2, 3}) {
        const strategies::checkerboard_strategy s{64, 8, r};
        const auto cert = core::certify(s);
        EXPECT_TRUE(cert.total);
        EXPECT_GE(cert.min_overlap, static_cast<std::int64_t>(r) * r) << "r = " << r;
        EXPECT_GE(cert.fault_tolerance(), static_cast<std::int64_t>(r) * r - 1);
    }
}

TEST(redundant_checkerboard, cost_scales_linearly_with_r) {
    const strategies::checkerboard_strategy r1{64, 8, 1};
    const strategies::checkerboard_strategy r2{64, 8, 2};
    EXPECT_EQ(core::average_message_passes(r2), 2.0 * core::average_message_passes(r1));
}

TEST(redundant_checkerboard, validation) {
    EXPECT_THROW((strategies::checkerboard_strategy{64, 8, 0}), std::invalid_argument);
    EXPECT_THROW((strategies::checkerboard_strategy{64, 8, 9}), std::invalid_argument);
    // r up to min(rows, width) is legal.
    EXPECT_NO_THROW((strategies::checkerboard_strategy{64, 8, 8}));
}

TEST(redundant_checkerboard, survives_f_in_place_faults) {
    const auto g = net::make_complete(64);
    const strategies::checkerboard_strategy s{64, 8, 2};
    sim::simulator sim{g};
    runtime::name_service ns{sim, s};
    const auto port = core::port_of("redundant");
    ns.register_server(port, 10);
    // Crash up to f = 3 of the pair's rendezvous nodes; locate must hold.
    const auto overlap = core::intersect_sets(s.post_set(10), s.query_set(53));
    ASSERT_GE(overlap.size(), 4u);
    for (std::size_t k = 0; k + 1 < overlap.size() && k < 3; ++k) {
        ns.crash_node(overlap[k]);
        EXPECT_TRUE(ns.locate(port, 53).found) << "after " << k + 1 << " crashes";
    }
}

TEST(redundant_projective, overlap_at_least_r) {
    for (const int r : {1, 2, 3}) {
        const strategies::projective_strategy s{4, 0, 1, r};
        const auto cert = core::certify(s);
        EXPECT_TRUE(cert.total);
        EXPECT_GE(cert.min_overlap, r) << "r = " << r;
    }
}

TEST(redundant_projective, full_redundancy_posts_everywhere) {
    // r = k+1 lines through a point cover the whole plane.
    const strategies::projective_strategy s{3, 0, 0, 4};
    EXPECT_EQ(s.post_set(0).size(), static_cast<std::size_t>(s.node_count()));
}

TEST(redundant_projective, validation) {
    EXPECT_THROW((strategies::projective_strategy{3, 0, 0, 0}), std::invalid_argument);
    EXPECT_THROW((strategies::projective_strategy{3, 0, 0, 5}), std::invalid_argument);
}

TEST(certify_suite, central_certificate) {
    const strategies::central_strategy s{16, 3};
    const auto cert = core::certify(s);
    EXPECT_TRUE(cert.total);
    EXPECT_TRUE(cert.singleton);
    EXPECT_EQ(cert.min_overlap, 1);
    EXPECT_EQ(cert.fault_tolerance(), 0);  // one crash kills it
    EXPECT_DOUBLE_EQ(cert.average_messages, 2.0);
    EXPECT_DOUBLE_EQ(cert.optimality_ratio(), 1.0);
    EXPECT_EQ(cert.max_post_size, 1);
    EXPECT_EQ(cert.load_max, 256);  // the center carries everything
    EXPECT_EQ(cert.load_min, 0);
}

TEST(certify_suite, flood_certificate) {
    const strategies::flood_strategy s{8};
    const auto cert = core::certify(s);
    EXPECT_EQ(cert.min_overlap, 8);
    EXPECT_EQ(cert.fault_tolerance(), 7);  // only killing all nodes breaks it
    EXPECT_FALSE(cert.singleton);
    EXPECT_DOUBLE_EQ(cert.load_mean, 64.0);
}

TEST(certify_suite, mesh_redundancy_from_geometry) {
    const strategies::mesh_strategy s{net::mesh_shape{{3, 3, 3}}};
    const auto cert = core::certify(s);
    // P n Q is a 3-node line of the mesh.
    EXPECT_EQ(cert.min_overlap, 3);
    EXPECT_EQ(cert.fault_tolerance(), 2);
}

TEST(certify_suite, to_string_mentions_key_facts) {
    const strategies::checkerboard_strategy s{16};
    const auto text = core::certify(s).to_string();
    EXPECT_NE(text.find("total"), std::string::npos);
    EXPECT_NE(text.find("f = 0"), std::string::npos);
    EXPECT_NE(text.find("16 nodes"), std::string::npos);
}

TEST(certify_suite, detects_non_total_strategy) {
    // A broken strategy: random with tiny sets usually misses some pair.
    const strategies::checkerboard_strategy good{9};
    EXPECT_TRUE(core::certify(good).total);
}

}  // namespace
}  // namespace mm
