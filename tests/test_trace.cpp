// Trace format robustness and checker semantics (sim/trace.h): encode/parse
// round-trips, every truncation and bit-flip rejected cleanly (the file is
// a committed artifact parsed on every CI run - it must never crash the
// parser), and the replay checker latching the first divergence at both
// comparison levels.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace sim = mm::sim;

namespace {

sim::trace_record sample_record(std::int64_t at, int salt = 0) {
    sim::trace_record r;
    r.at = at;
    r.node = 4 + salt;
    r.kind = 2;
    r.port = 0xfeedfaceULL + static_cast<std::uint64_t>(salt);
    r.source = 1 + salt;
    r.destination = 4 + salt;
    r.subject = 9;
    r.stamp = at - 1;
    r.tag = 70 + salt;
    r.ttl = -1;
    r.relay_final = salt % 2 == 0 ? -1 : 11;
    return r;
}

// A small but representative trace: three delivering ticks, interleaved
// digests, a config blob, and a final digest.
sim::trace sample_trace() {
    sim::trace t;
    t.config = {0x10, 0x20, 0x30, 0x40, 0x55};
    for (std::int64_t tick : {3, 3, 7, 7, 7, 9}) {
        t.records.push_back(sample_record(tick, static_cast<int>(t.records.size())));
    }
    t.digests.push_back({.tick = 3, .sent = 6, .delivered = 2, .dropped = 0});
    t.digests.push_back({.tick = 7, .sent = 4, .delivered = 3, .dropped = 1});
    t.digests.push_back({.tick = 9, .sent = 0, .delivered = 1, .dropped = 0});
    t.summary = {.now = 12,
                 .hops = 31,
                 .sent = 10,
                 .delivered = 6,
                 .dropped = 1,
                 .membership_events = 2,
                 .traffic_hash = 0xabcdef0123456789ULL};
    return t;
}

// Drives a checker with the trace's own stream (optionally permuted or
// mutated by the caller first).
void feed(sim::trace_checker& checker, const sim::trace& t) {
    std::size_t di = 0;
    for (const auto& r : t.records) {
        while (di < t.digests.size() && t.digests[di].tick < r.at)
            checker.on_tick_digest(t.digests[di++]);
        checker.on_delivery(r);
    }
    while (di < t.digests.size()) checker.on_tick_digest(t.digests[di++]);
    checker.finalize(t.summary);
}

}  // namespace

TEST(TraceFormat, EncodeParseRoundTrip) {
    const sim::trace t = sample_trace();
    const auto bytes = sim::encode_trace(t);
    sim::trace out;
    std::string error;
    ASSERT_TRUE(sim::parse_trace(bytes.data(), bytes.size(), out, &error)) << error;
    EXPECT_EQ(out, t);
    // Encoding is a pure function of the trace: re-encoding the parse
    // result reproduces the bytes exactly (the property the committed
    // golden files depend on).
    EXPECT_EQ(sim::encode_trace(out), bytes);
}

TEST(TraceFormat, EmptyTraceRoundTrips) {
    sim::trace t;
    t.summary.now = 5;
    const auto bytes = sim::encode_trace(t);
    sim::trace out;
    ASSERT_TRUE(sim::parse_trace(bytes.data(), bytes.size(), out, nullptr));
    EXPECT_EQ(out, t);
}

TEST(TraceFormat, EveryTruncationRejected) {
    const auto bytes = sim::encode_trace(sample_trace());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        sim::trace out;
        std::string error;
        EXPECT_FALSE(sim::parse_trace(bytes.data(), cut, out, &error))
            << "prefix of " << cut << " bytes parsed";
        EXPECT_FALSE(error.empty());
    }
}

TEST(TraceFormat, EveryBitFlipRejected) {
    const auto golden = sim::encode_trace(sample_trace());
    // Flip one bit per byte position: header flips break magic/version/
    // stored-checksum, body flips break the checksum.  Nothing may parse.
    for (std::size_t i = 0; i < golden.size(); ++i) {
        auto bytes = golden;
        bytes[i] ^= 1u << (i % 8);
        sim::trace out;
        EXPECT_FALSE(sim::parse_trace(bytes.data(), bytes.size(), out, nullptr))
            << "bit flip at byte " << i << " parsed";
    }
}

TEST(TraceFormat, TrailingGarbageRejected) {
    auto bytes = sim::encode_trace(sample_trace());
    bytes.push_back(0x00);
    sim::trace out;
    std::string error;
    EXPECT_FALSE(sim::parse_trace(bytes.data(), bytes.size(), out, &error));
}

TEST(TraceFormat, GarbageRejected) {
    std::vector<std::uint8_t> junk(64);
    for (std::size_t i = 0; i < junk.size(); ++i)
        junk[i] = static_cast<std::uint8_t>(i * 37 + 11);
    sim::trace out;
    std::string error;
    EXPECT_FALSE(sim::parse_trace(junk.data(), junk.size(), out, &error));
    EXPECT_EQ(error, "bad magic (not a trace file)");
}

TEST(TraceChecker, IdenticalStreamPasses) {
    const sim::trace t = sample_trace();
    sim::trace_checker checker{t};
    feed(checker, t);
    EXPECT_TRUE(checker.ok());
    EXPECT_TRUE(checker.failure().empty());
}

TEST(TraceChecker, MutatedRecordLocalized) {
    const sim::trace reference = sample_trace();
    sim::trace live = reference;
    live.records[2].subject = 99;  // first divergence: record index 2
    sim::trace_checker checker{reference};
    feed(checker, live);
    ASSERT_FALSE(checker.ok());
    const std::string failure = checker.failure();
    EXPECT_NE(failure.find("delivery record 2 diverged"), std::string::npos) << failure;
    EXPECT_NE(failure.find("want:"), std::string::npos);
    EXPECT_NE(failure.find("live:"), std::string::npos);
    // The report carries a context window on both sides.
    EXPECT_NE(failure.find("context (recorded trace"), std::string::npos);
    EXPECT_NE(failure.find("context (live run"), std::string::npos);
}

TEST(TraceChecker, ExtraAndMissingDeliveriesCaught) {
    const sim::trace reference = sample_trace();
    {
        sim::trace live = reference;
        live.records.push_back(sample_record(11, 40));
        sim::trace_checker checker{reference};
        feed(checker, live);
        ASSERT_FALSE(checker.ok());
        EXPECT_NE(checker.failure().find("extra delivery"), std::string::npos);
    }
    {
        sim::trace live = reference;
        live.records.pop_back();
        sim::trace_checker checker{reference};
        feed(checker, live);
        ASSERT_FALSE(checker.ok());
        EXPECT_NE(checker.failure().find("recorded deliveries"), std::string::npos);
    }
}

TEST(TraceChecker, DivergentTickDigestCaught) {
    const sim::trace reference = sample_trace();
    sim::trace live = reference;
    live.digests[1].dropped = 7;
    sim::trace_checker checker{reference};
    feed(checker, live);
    ASSERT_FALSE(checker.ok());
    EXPECT_NE(checker.failure().find("tick digest 1 diverged"), std::string::npos);
}

TEST(TraceChecker, DivergentFinalDigestCaught) {
    const sim::trace reference = sample_trace();
    sim::trace live = reference;
    live.summary.hops = 999;
    sim::trace_checker checker{reference};
    feed(checker, live);
    ASSERT_FALSE(checker.ok());
    const std::string failure = checker.failure();
    EXPECT_NE(failure.find("final digest diverged"), std::string::npos);
    EXPECT_NE(failure.find("hops: want 31, live 999"), std::string::npos) << failure;
}

TEST(TraceChecker, PerTickSetAcceptsIntraTickPermutation) {
    const sim::trace reference = sample_trace();
    sim::trace live = reference;
    std::swap(live.records[2], live.records[4]);  // both at tick 7
    {
        // Record-for-record comparison must reject the reorder...
        sim::trace_checker strict{reference};
        feed(strict, live);
        EXPECT_FALSE(strict.ok());
    }
    {
        // ...while the multiset level accepts it.
        sim::trace_checker loose{reference, sim::trace_order::per_tick_set};
        feed(loose, live);
        EXPECT_TRUE(loose.ok()) << loose.failure();
    }
}

TEST(TraceChecker, PerTickSetRejectsCrossTickAndContentDrift) {
    const sim::trace reference = sample_trace();
    {
        // Moving a record to a different tick changes two ticks' sets.
        sim::trace live = reference;
        live.records[1].at = 7;
        std::sort(live.records.begin(), live.records.end(),
                  [](const auto& a, const auto& b) { return a.at < b.at; });
        sim::trace_checker checker{reference, sim::trace_order::per_tick_set};
        feed(checker, live);
        ASSERT_FALSE(checker.ok());
        EXPECT_NE(checker.failure().find("tick 3"), std::string::npos) << checker.failure();
    }
    {
        // Same tick, same count, one field drifted.
        sim::trace live = reference;
        live.records[3].stamp += 1;
        sim::trace_checker checker{reference, sim::trace_order::per_tick_set};
        feed(checker, live);
        ASSERT_FALSE(checker.ok());
        EXPECT_NE(checker.failure().find("delivery sets diverged"), std::string::npos)
            << checker.failure();
    }
}
