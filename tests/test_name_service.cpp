// Integration tests for runtime/name_service: registration, locate,
// migration with timestamp conflict resolution, staged hierarchical locate,
// crash handling and f+1 redundancy (Sections 1.5, 2.4, 3.5, 5).
#include <gtest/gtest.h>

#include "net/hierarchy.h"
#include "net/topologies.h"
#include "runtime/name_service.h"
#include "strategies/basic.h"
#include "strategies/checkerboard.h"
#include "strategies/grid.h"
#include "strategies/hash_locate.h"
#include "strategies/hierarchical.h"

namespace mm::runtime {
namespace {

const core::port_id file_port = core::port_of("file-server");
const core::port_id db_port = core::port_of("database");

TEST(name_service_suite, register_then_locate_on_grid) {
    const auto g = net::make_grid(4, 4);
    sim::simulator sim{g};
    const strategies::manhattan_strategy strategy{4, 4};
    name_service ns{sim, strategy};

    ns.register_server(file_port, 5);
    const auto result = ns.locate(file_port, 10);
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.where, 5);
    EXPECT_EQ(result.nodes_queried, 4);  // the client's column
    EXPECT_GT(result.message_passes, 0);
}

TEST(name_service_suite, locate_unknown_port_fails_cleanly) {
    const auto g = net::make_grid(3, 3);
    sim::simulator sim{g};
    const strategies::manhattan_strategy strategy{3, 3};
    name_service ns{sim, strategy};
    const auto result = ns.locate(core::port_of("nonexistent"), 4);
    EXPECT_FALSE(result.found);
    EXPECT_EQ(result.where, net::invalid_node);
}

TEST(name_service_suite, every_client_can_locate_every_server) {
    const auto g = net::make_complete(9);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{9};
    name_service ns{sim, strategy};
    for (net::node_id server = 0; server < 9; ++server) {
        const core::port_id port = core::port_of("svc" + std::to_string(server));
        ns.register_server(port, server);
        for (net::node_id client = 0; client < 9; ++client) {
            const auto result = ns.locate(port, client);
            EXPECT_TRUE(result.found) << server << " from " << client;
            EXPECT_EQ(result.where, server);
        }
    }
}

TEST(name_service_suite, caches_hold_the_posted_bindings) {
    const auto g = net::make_complete(16);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{16};
    name_service ns{sim, strategy};
    ns.register_server(file_port, 3);
    // Exactly the P(3) nodes hold the entry.
    const auto posts = strategy.post_set(3);
    EXPECT_EQ(ns.total_cache_entries(), posts.size());
    for (const net::node_id v : posts)
        EXPECT_TRUE(ns.node(v).directory().lookup(file_port).has_value());
}

TEST(name_service_suite, deregister_removes_bindings) {
    const auto g = net::make_complete(9);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{9};
    name_service ns{sim, strategy};
    ns.register_server(file_port, 2);
    ns.deregister_server(file_port, 2);
    EXPECT_EQ(ns.total_cache_entries(), 0u);
    EXPECT_FALSE(ns.locate(file_port, 7).found);
}

TEST(name_service_suite, migration_updates_address) {
    const auto g = net::make_complete(9);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{9};
    name_service ns{sim, strategy};
    ns.register_server(file_port, 1);
    ASSERT_EQ(ns.locate(file_port, 5).where, 1);
    ns.migrate_server(file_port, 1, 8);
    const auto result = ns.locate(file_port, 5);
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.where, 8);
}

TEST(name_service_suite, stale_posts_lose_to_fresh_ones) {
    // Timestamp conflict resolution: an old binding cannot clobber a newer
    // one even if its post is replayed afterwards.
    const auto g = net::make_complete(4);
    sim::simulator sim{g};
    const strategies::flood_strategy strategy{4};
    name_service ns{sim, strategy};
    ns.register_server(file_port, 0);
    sim.run_until(sim.now() + 10);
    ns.register_server(file_port, 2);  // fresher binding everywhere
    core::port_entry stale;
    stale.port = file_port;
    stale.where = 0;
    stale.stamp = 0;  // as if delayed from the first registration
    EXPECT_FALSE(ns.node(3).directory().post(stale));
    EXPECT_EQ(ns.locate(file_port, 3).where, 2);
}

TEST(name_service_suite, rendezvous_crash_breaks_singleton_strategy) {
    const auto g = net::make_complete(9);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{9};
    name_service ns{sim, strategy};
    ns.register_server(file_port, 0);
    // The unique rendezvous for server 0 / client 0 is node 0's block.
    const auto rendezvous = core::intersect_sets(strategy.post_set(0), strategy.query_set(8));
    ASSERT_EQ(rendezvous.size(), 1u);
    ns.crash_node(rendezvous.front());
    EXPECT_FALSE(ns.locate(file_port, 8).found);
}

TEST(name_service_suite, f_plus_1_redundancy_survives_f_faults) {
    // Mesh strategy in 3 dimensions: rendezvous sets have 3 nodes, so any 2
    // crashes leave a live rendezvous (Section 2.4).
    const net::mesh_shape shape{{3, 3, 3}};
    const auto g = net::make_mesh(shape);
    sim::simulator sim{g};
    const strategies::mesh_strategy strategy{shape};
    name_service ns{sim, strategy};
    ns.register_server(db_port, 0);
    const auto rendezvous = core::intersect_sets(strategy.post_set(0), strategy.query_set(26));
    ASSERT_EQ(rendezvous.size(), 3u);
    ns.crash_node(rendezvous[0]);
    ns.crash_node(rendezvous[1]);
    const auto result = ns.locate(db_port, 26);
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.where, 0);
}

TEST(name_service_suite, crash_wipes_cache_and_repost_recovers) {
    const auto g = net::make_complete(9);
    sim::simulator sim{g};
    const strategies::flood_strategy strategy{9};  // posts everywhere
    name_service ns{sim, strategy};
    ns.register_server(file_port, 4);
    ns.crash_node(7);
    ns.recover_node(7);
    EXPECT_FALSE(ns.node(7).directory().lookup(file_port).has_value());
    ns.repost_all();
    EXPECT_TRUE(ns.node(7).directory().lookup(file_port).has_value());
}

TEST(name_service_suite, staged_locate_stays_local_for_local_services) {
    const net::hierarchy h{{4, 4}};
    const auto g = net::make_hierarchical_graph(h);
    sim::simulator sim{g};
    const strategies::hierarchical_strategy strategy{h};
    name_service ns{sim, strategy};
    // Server and client in the same level-1 cluster.
    ns.register_server(file_port, 1);
    const auto local = ns.locate_staged(file_port, 2);
    EXPECT_TRUE(local.found);
    EXPECT_EQ(local.stages, 1);  // resolved inside the cluster
    // Remote client needs the second level.
    const auto remote = ns.locate_staged(file_port, 9);
    EXPECT_TRUE(remote.found);
    EXPECT_EQ(remote.stages, 2);
    EXPECT_EQ(remote.where, 1);
}

TEST(name_service_suite, staged_locate_costs_less_for_local_traffic) {
    const net::hierarchy h{{8, 8}};
    const auto g = net::make_hierarchical_graph(h);
    sim::simulator sim{g};
    const strategies::hierarchical_strategy strategy{h};
    name_service ns{sim, strategy};
    ns.register_server(file_port, 0);
    const auto staged = ns.locate_staged(file_port, 1);
    const auto flat = ns.locate(file_port, 2);
    EXPECT_TRUE(staged.found);
    EXPECT_TRUE(flat.found);
    EXPECT_LT(staged.nodes_queried, flat.nodes_queried);
}

TEST(name_service_suite, hash_locate_with_rehash_fallback) {
    const auto g = net::make_complete(32);
    sim::simulator sim{g};
    // Two rehash backups (attempts 1 and 2) exposed via fallback_chain().
    const strategies::hash_locate_strategy primary{32, 1, 0, 2};
    name_service ns{sim, primary};
    ns.register_server(db_port, 3);

    // Healthy: resolved at the primary rendezvous in one stage.
    auto result = ns.locate_with_fallback(db_port, 9);
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.stages, 1);

    // Kill the primary rendezvous node: the fallback rehash must kick in.
    ns.crash_node(primary.rendezvous_node(db_port, 0));
    result = ns.locate_with_fallback(db_port, 9);
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.where, 3);
    EXPECT_GT(result.stages, 1);
}

TEST(name_service_suite, purge_binding_unmasks_surviving_replica) {
    // Two replicas of one port; the fresher registration shadows the older
    // one at shared rendezvous nodes.  After the fresh replica crashes, a
    // purge removes its stale binding and locates fall through to the
    // survivor.
    const auto g = net::make_complete(16);
    sim::simulator sim{g};
    const strategies::flood_strategy strategy{16};  // fully shared rendezvous
    name_service ns{sim, strategy};
    ns.register_server(db_port, 2);
    sim.run_until(sim.now() + 5);
    ns.register_server(db_port, 9);  // fresher, wins everywhere
    ASSERT_EQ(ns.locate(db_port, 0).where, 9);

    ns.crash_node(9);
    // Stale caches still answer 9 (fail-stop servers cannot deregister).
    EXPECT_EQ(ns.locate(db_port, 0).where, 9);
    ns.purge_binding(db_port, 9);
    // The purge leaves no binding (9's posts had shadowed 2's)...
    EXPECT_FALSE(ns.locate(db_port, 0).found);
    // ...until the surviving replica's periodic refresh re-advertises it.
    ns.repost_all();
    const auto result = ns.locate(db_port, 0);
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.where, 2);
}

TEST(name_service_suite, purge_binding_leaves_other_ports_alone) {
    const auto g = net::make_complete(9);
    sim::simulator sim{g};
    const strategies::checkerboard_strategy strategy{9};
    name_service ns{sim, strategy};
    ns.register_server(file_port, 1);
    ns.register_server(db_port, 1);
    ns.purge_binding(file_port, 1);
    EXPECT_FALSE(ns.locate(file_port, 5).found);
    EXPECT_TRUE(ns.locate(db_port, 5).found);
}

TEST(name_service_suite, locate_latency_reflects_routing_distance) {
    // On a path, query + reply must cross the network: latency >= distance.
    const auto g = net::make_path(8);
    sim::simulator sim{g};
    const strategies::central_strategy strategy{8, 0};
    name_service ns{sim, strategy};
    ns.register_server(file_port, 0);
    const auto result = ns.locate(file_port, 7);
    EXPECT_TRUE(result.found);
    EXPECT_GE(result.latency, 7);  // 7 hops to the center, replies come back
}

TEST(name_service_suite, broadcast_strategy_message_cost_scales_with_n) {
    const auto g = net::make_complete(16);
    sim::simulator sim{g};
    const strategies::broadcast_strategy strategy{16};
    name_service ns{sim, strategy};
    ns.register_server(file_port, 3);
    const auto result = ns.locate(file_port, 9);
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.nodes_queried, 16);
    EXPECT_GE(result.message_passes, 15);
}

}  // namespace
}  // namespace mm::runtime
