// Tests for core/lifting: Proposition 4, m'(4n) = 2*m(n) and
// k'_i = 4*k_(i mod n).
#include <gtest/gtest.h>

#include "core/lifting.h"
#include "core/lower_bound.h"
#include "strategies/basic.h"
#include "strategies/checkerboard.h"

namespace mm::core {
namespace {

// Normalizes a strategy matrix through from_entries so P/Q are the row and
// column unions ((M1) with equality), the setting of Proposition 4.
rendezvous_matrix normalized(const locate_strategy& s) {
    const auto r = rendezvous_matrix::from_strategy(s);
    std::vector<node_set> entries;
    entries.reserve(static_cast<std::size_t>(r.size()) * static_cast<std::size_t>(r.size()));
    for (net::node_id i = 0; i < r.size(); ++i)
        for (net::node_id j = 0; j < r.size(); ++j) entries.push_back(r.entry(i, j));
    return rendezvous_matrix::from_entries(r.size(), std::move(entries));
}

TEST(lifting, quadruples_size) {
    const auto base = normalized(strategies::checkerboard_strategy{4});
    const auto lifted = lift(base);
    EXPECT_EQ(lifted.size(), 16);
}

TEST(lifting, doubles_average_message_passes) {
    const auto base = normalized(strategies::checkerboard_strategy{4});
    const auto lifted = lift(base);
    EXPECT_DOUBLE_EQ(lifted.average_message_passes(), 2.0 * base.average_message_passes());
}

TEST(lifting, multiplicities_scale_by_four) {
    const auto base = normalized(strategies::checkerboard_strategy{4});
    const auto k = base.multiplicities();
    const auto lifted = lift(base);
    const auto k4 = lifted.multiplicities();
    ASSERT_EQ(k4.size(), 16u);
    for (net::node_id v = 0; v < 16; ++v)
        EXPECT_EQ(k4[static_cast<std::size_t>(v)], 4 * k[static_cast<std::size_t>(v % 4)]);
}

TEST(lifting, preserves_totality_and_singletons) {
    const auto base = normalized(strategies::checkerboard_strategy{4});
    ASSERT_TRUE(base.total());
    ASSERT_TRUE(base.singleton());
    const auto lifted = lift(base);
    EXPECT_TRUE(lifted.total());
    EXPECT_TRUE(lifted.singleton());
}

TEST(lifting, lifted_matrix_still_satisfies_lower_bounds) {
    const auto base = normalized(strategies::checkerboard_strategy{4});
    const auto lifted = lift(base, 2);  // 64 nodes
    const auto report = check_bounds(lifted);
    EXPECT_TRUE(report.all_hold());
}

TEST(lifting, repeated_lifting_preserves_optimality) {
    // Base: n = 4, m = 4 = 2*sqrt(4) (optimal).  After k lifts n = 4^k * 4
    // and m = 2^k * 4 = 2*sqrt(n): the lifted strategy stays optimal.
    const auto base = normalized(strategies::checkerboard_strategy{4});
    ASSERT_DOUBLE_EQ(base.average_message_passes(), 4.0);
    const auto lifted = lift(base, 3);  // 256 nodes
    EXPECT_EQ(lifted.size(), 256);
    EXPECT_DOUBLE_EQ(lifted.average_message_passes(), 32.0);  // 2*sqrt(256)
}

TEST(lifting, centralized_lifts_to_four_centers) {
    // Lifting the centralized matrix yields one center per quadrant copy.
    const auto base = normalized(strategies::central_strategy{3, 0});
    const auto lifted = lift(base);
    const auto k = lifted.multiplicities();
    int centers = 0;
    for (const auto ki : k)
        if (ki > 0) ++centers;
    EXPECT_EQ(centers, 4);
    EXPECT_DOUBLE_EQ(lifted.average_message_passes(), 4.0);
}

TEST(lifting, zero_steps_is_identity) {
    const auto base = normalized(strategies::checkerboard_strategy{4});
    const auto same = lift(base, 0);
    EXPECT_EQ(same.size(), base.size());
    EXPECT_DOUBLE_EQ(same.average_message_passes(), base.average_message_passes());
}

TEST(lifting, negative_steps_rejected) {
    const auto base = normalized(strategies::central_strategy{2, 0});
    EXPECT_THROW((void)lift(base, -1), std::invalid_argument);
}

}  // namespace
}  // namespace mm::core
