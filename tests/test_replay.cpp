// Replay-layer behavior (runtime/replay.h): the config codec that makes
// trace files self-describing, the engine-sweep policy, the differential
// driver mm_fuzz builds on (N seeded configs, zero drift), and divergence
// localization when a trace is deliberately corrupted.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/replay.h"

namespace runtime = mm::runtime;
namespace sim = mm::sim;

TEST(ReplayConfig, CodecRoundTripsEverySeed) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const runtime::replay_config cfg = runtime::random_config(seed);
        const auto bytes = runtime::encode_replay_config(cfg);
        runtime::replay_config out;
        ASSERT_TRUE(runtime::decode_replay_config(bytes, out)) << "seed " << seed;
        // decode is exact: re-encoding reproduces the bytes bit-for-bit
        // (doubles travel as IEEE patterns), and the human description -
        // which reads every policy field - agrees.
        EXPECT_EQ(runtime::encode_replay_config(out), bytes) << "seed " << seed;
        EXPECT_EQ(out.describe(), cfg.describe()) << "seed " << seed;
    }
}

TEST(ReplayConfig, DecodeRejectsTruncationAndJunk) {
    const auto bytes = runtime::encode_replay_config(runtime::random_config(3));
    runtime::replay_config out;
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + static_cast<std::ptrdiff_t>(cut));
        EXPECT_FALSE(runtime::decode_replay_config(prefix, out)) << "prefix " << cut;
    }
    auto padded = bytes;
    padded.push_back(0);
    EXPECT_FALSE(runtime::decode_replay_config(padded, out));
    auto bad_enum = bytes;
    bad_enum[0] = 200;  // topology out of range
    EXPECT_FALSE(runtime::decode_replay_config(bad_enum, out));
}

TEST(ReplaySweep, PolicyMatchesConfigRegime) {
    runtime::replay_config clean;  // defaults: no valiant, no crash, no churn
    clean.workload.crash_weight = 0;
    const auto clean_sweep = runtime::engine_sweep(clean);
    ASSERT_EQ(clean_sweep.size(), 5u);
    EXPECT_EQ(clean_sweep[0].name(), "serial");
    EXPECT_EQ(clean_sweep[1].name(), "serial-nobatch");
    EXPECT_EQ(clean_sweep[4].name(), "par8");

    // Crash configs: the serial-regime protocol differs (deferred fan-out
    // timers), so par1 stands in; the hop-by-hop engine stays.
    runtime::replay_config crash = clean;
    crash.workload.crash_weight = 0.05;
    const auto crash_sweep = runtime::engine_sweep(crash);
    ASSERT_EQ(crash_sweep.size(), 5u);
    EXPECT_EQ(crash_sweep[0].name(), "par1");
    EXPECT_EQ(crash_sweep[1].name(), "par-nobatch1");

    // Churn configs additionally drop the hop-by-hop engine: devolution
    // re-keying defines the batched engines' canonical order.
    runtime::replay_config churn = clean;
    churn.workload.join_weight = 0.05;
    churn.workload.leave_weight = 0.03;
    const auto churn_sweep = runtime::engine_sweep(churn);
    ASSERT_EQ(churn_sweep.size(), 4u);
    EXPECT_EQ(churn_sweep[0].name(), "par1");
    EXPECT_EQ(churn_sweep[1].name(), "par2");

    runtime::replay_config valiant = clean;
    valiant.policy.valiant_relay = true;
    EXPECT_EQ(runtime::engine_sweep(valiant)[0].name(), "par1");

    // Comparison level: batched engines record-for-record, hop-by-hop at
    // per-tick multisets.
    EXPECT_EQ(runtime::replay_order(clean, clean_sweep[0]), sim::trace_order::ordered);
    EXPECT_EQ(runtime::replay_order(clean, clean_sweep[1]), sim::trace_order::per_tick_set);
}

TEST(ReplayDifferential, EightSeededConfigsZeroDrift) {
    // The fuzz_smoke property in-process: every seeded config agrees
    // across its whole engine sweep - trace, digests, counters, per-op
    // results, and latency sets.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const runtime::replay_config cfg = runtime::random_config(seed);
        const runtime::diff_report report = runtime::diff_engines(cfg);
        EXPECT_TRUE(report.ok) << "seed " << seed << " (" << cfg.describe()
                               << "):\n" << report.divergence;
    }
}

TEST(ReplayDifferential, RecordIsDeterministicByteForByte) {
    // record -> re-record must produce identical bytes: the property that
    // lets a committed golden trace stand forever.
    for (std::uint64_t seed : {1ULL, 4ULL, 5ULL}) {
        const runtime::replay_config cfg = runtime::random_config(seed);
        const auto engine = runtime::engine_sweep(cfg).front();
        const auto once = sim::encode_trace(runtime::record_trace(cfg, engine));
        const auto twice = sim::encode_trace(runtime::record_trace(cfg, engine));
        EXPECT_EQ(once, twice) << "seed " << seed;
    }
}

TEST(ReplayDifferential, InjectedDivergenceIsLocalized) {
    // Corrupt one record of a recorded trace and replay it: the checker
    // must name that exact record, not just fail.
    const runtime::replay_config cfg = runtime::random_config(1);
    const auto engine = runtime::engine_sweep(cfg).front();
    sim::trace reference = runtime::record_trace(cfg, engine);
    ASSERT_GT(reference.records.size(), 60u);
    reference.records[50].subject ^= 1;
    const runtime::replay_report report = runtime::replay_trace(reference, engine);
    ASSERT_FALSE(report.ok);
    EXPECT_NE(report.failure.find("delivery record 50 diverged"), std::string::npos)
        << report.failure;
    EXPECT_NE(report.failure.find("context (recorded trace"), std::string::npos);
}

TEST(ReplayDifferential, TraceEmbedsItsConfig) {
    const runtime::replay_config cfg = runtime::random_config(2);
    const auto engine = runtime::engine_sweep(cfg).front();
    const sim::trace t = runtime::record_trace(cfg, engine);
    runtime::replay_config out;
    ASSERT_TRUE(runtime::decode_replay_config(t.config, out));
    EXPECT_EQ(out.describe(), cfg.describe());
    // And the full encode/parse cycle preserves replayability.
    const auto bytes = sim::encode_trace(t);
    sim::trace parsed;
    std::string error;
    ASSERT_TRUE(sim::parse_trace(bytes.data(), bytes.size(), parsed, &error)) << error;
    const runtime::replay_report report = runtime::replay_trace(parsed, engine);
    EXPECT_TRUE(report.ok) << report.failure;
}
