// test_shard_map.cpp - node -> shard assignment for the parallel engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "net/hierarchy.h"
#include "net/shard_map.h"
#include "net/topologies.h"

namespace {

using namespace mm;

void expect_valid_cover(const net::shard_map& map, net::node_id n, int shards) {
    EXPECT_EQ(map.shard_count(), shards);
    EXPECT_EQ(map.node_count(), n);
    std::vector<net::node_id> counted(static_cast<std::size_t>(shards), 0);
    for (net::node_id v = 0; v < n; ++v) {
        const int s = map.shard_of(v);
        ASSERT_GE(s, 0);
        ASSERT_LT(s, shards);
        ++counted[static_cast<std::size_t>(s)];
    }
    EXPECT_EQ(counted, map.shard_sizes());
    EXPECT_EQ(std::accumulate(counted.begin(), counted.end(), net::node_id{0}), n);
}

TEST(shard_map, covers_and_balances_a_grid) {
    const auto g = net::make_grid(20, 20);
    const auto map = net::make_shard_map(g, 4);
    expect_valid_cover(map, 400, 4);
    // LPT over parts of <= n/(2*shards) nodes keeps shards near n/shards.
    const auto sizes = map.shard_sizes();
    const auto largest = *std::max_element(sizes.begin(), sizes.end());
    const auto smallest = *std::min_element(sizes.begin(), sizes.end());
    EXPECT_LE(largest, 400 / 4 + 400 / (2 * 4) + 1);
    EXPECT_GT(smallest, 0);
}

TEST(shard_map, covers_a_hypercube_and_a_hierarchy) {
    const auto cube = net::make_hypercube(8);
    expect_valid_cover(net::make_shard_map(cube, 8), 256, 8);

    const net::hierarchy h{{4, 5, 6}};
    const auto g = net::make_hierarchical_graph(h);
    expect_valid_cover(net::make_shard_map(g, 3), g.node_count(), 3);
}

TEST(shard_map, deterministic_across_builds) {
    const auto g = net::make_grid(13, 9);
    const auto a = net::make_shard_map(g, 5);
    const auto b = net::make_shard_map(g, 5);
    for (net::node_id v = 0; v < g.node_count(); ++v) EXPECT_EQ(a.shard_of(v), b.shard_of(v));
}

TEST(shard_map, shard_count_clamps_to_node_count) {
    const auto g = net::make_grid(2, 2);
    const auto map = net::make_shard_map(g, 16);
    expect_valid_cover(map, 4, 4);
    const auto one = net::make_shard_map(g, 0);
    expect_valid_cover(one, 4, 1);
}

TEST(shard_map, explicit_owner_vector_is_validated) {
    net::shard_map ok{{0, 1, 0, 1}, 2};
    EXPECT_EQ(ok.shard_count(), 2);
    EXPECT_EQ(ok.shard_of(3), 1);
    EXPECT_THROW((net::shard_map{{0, 2}, 2}), std::invalid_argument);
    EXPECT_THROW((net::shard_map{{0, -1}, 2}), std::invalid_argument);
    EXPECT_THROW((net::shard_map{{0}, 0}), std::invalid_argument);
}

}  // namespace
