// Wire-format robustness: the framed codec of transport/wire.h against
// well-formed frames, hostile bytes, and every truncation the TCP stream
// can produce.  The frame_splitter must never crash, never mis-frame, and
// must refuse (stickily) to parse past a corrupt prefix - a real socket
// feeds it attacker-controlled bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "core/codec.h"
#include "transport/wire.h"

namespace wire = mm::transport::wire;

namespace {

wire::frame sample_frame(int salt = 0) {
    wire::frame f;
    f.kind = wire::v_post;
    f.port = 0xdeadbeefULL + static_cast<std::uint64_t>(salt);
    f.source = 3 + salt;
    f.destination = 7;
    f.subject_address = 3 + salt;
    f.stamp = 123456789 + salt;
    f.tag = -42;
    f.ttl = 1000;
    return f;
}

}  // namespace

TEST(WireFormat, EncodeDecodeRoundTrip) {
    for (std::uint8_t kind = wire::v_post; kind <= wire::v_miss; ++kind) {
        auto f = sample_frame(kind);
        f.kind = kind;
        std::vector<std::uint8_t> buf;
        wire::encode(f, buf);
        ASSERT_EQ(buf.size(), 4 + wire::payload_bytes);

        wire::frame out;
        std::size_t pos = 0;
        ASSERT_EQ(wire::decode(buf.data(), buf.size(), pos, out), wire::decode_status::ok);
        EXPECT_EQ(pos, buf.size());
        EXPECT_EQ(out, f);
    }
}

TEST(WireFormat, NegativeAndExtremeFieldsSurvive) {
    wire::frame f;
    f.kind = wire::v_reply;
    f.port = ~0ULL;
    f.source = -1;
    f.destination = std::numeric_limits<std::int32_t>::min();
    f.subject_address = std::numeric_limits<std::int32_t>::max();
    f.stamp = std::numeric_limits<std::int64_t>::min();
    f.tag = std::numeric_limits<std::int64_t>::max();
    f.ttl = -1;
    std::vector<std::uint8_t> buf;
    wire::encode(f, buf);
    wire::frame out;
    std::size_t pos = 0;
    ASSERT_EQ(wire::decode(buf.data(), buf.size(), pos, out), wire::decode_status::ok);
    EXPECT_EQ(out, f);
}

TEST(WireFormat, TruncatedFrameNeedsMore) {
    std::vector<std::uint8_t> buf;
    wire::encode(sample_frame(), buf);
    // Every proper prefix - including a torn length prefix - is need_more.
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
        wire::frame out;
        std::size_t pos = 0;
        EXPECT_EQ(wire::decode(buf.data(), cut, pos, out), wire::decode_status::need_more);
        EXPECT_EQ(pos, 0u);
    }
}

TEST(WireFormat, WrongLengthPrefixIsError) {
    std::vector<std::uint8_t> buf;
    wire::encode(sample_frame(), buf);
    // Undersized: claims fewer payload bytes than the fixed layout.
    buf[0] = static_cast<std::uint8_t>(wire::payload_bytes - 1);
    wire::frame out;
    std::size_t pos = 0;
    EXPECT_EQ(wire::decode(buf.data(), buf.size(), pos, out), wire::decode_status::error);

    // Oversized but under the cap: still a protocol error, not need_more -
    // the fixed layout admits exactly payload_bytes.
    buf[0] = static_cast<std::uint8_t>(wire::payload_bytes + 1);
    pos = 0;
    EXPECT_EQ(wire::decode(buf.data(), buf.size(), pos, out), wire::decode_status::error);
}

TEST(WireFormat, OversizedLengthPrefixIsErrorNotBuffering) {
    // A hostile length prefix (e.g. 0xffffffff) must be rejected from the
    // prefix alone - buffering toward it would let one peer pin 4 GiB.
    std::vector<std::uint8_t> buf(4, 0xff);
    wire::frame out;
    std::size_t pos = 0;
    EXPECT_EQ(wire::decode(buf.data(), buf.size(), pos, out), wire::decode_status::error);

    wire::frame_splitter sp;
    sp.feed(buf.data(), buf.size());
    EXPECT_EQ(sp.next(out), wire::decode_status::error);
    EXPECT_TRUE(sp.corrupt());
}

TEST(WireFormat, UnknownVerbIsError) {
    auto f = sample_frame();
    std::vector<std::uint8_t> buf;
    wire::encode(f, buf);
    buf[4] = 0;  // verb byte is the first payload byte
    wire::frame out;
    std::size_t pos = 0;
    EXPECT_EQ(wire::decode(buf.data(), buf.size(), pos, out), wire::decode_status::error);
    buf[4] = 200;
    pos = 0;
    EXPECT_EQ(wire::decode(buf.data(), buf.size(), pos, out), wire::decode_status::error);
}

TEST(WireFormat, SplitterReassemblesByteAtATime) {
    std::vector<std::uint8_t> buf;
    const auto a = sample_frame(1);
    const auto b = sample_frame(2);
    wire::encode(a, buf);
    wire::encode(b, buf);

    wire::frame_splitter sp;
    std::vector<wire::frame> got;
    for (const auto byte : buf) {
        sp.feed(&byte, 1);
        wire::frame out;
        while (sp.next(out) == wire::decode_status::ok) got.push_back(out);
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], a);
    EXPECT_EQ(got[1], b);
    EXPECT_EQ(sp.buffered(), 0u);
    EXPECT_FALSE(sp.corrupt());
}

TEST(WireFormat, SplitterErrorIsSticky) {
    wire::frame_splitter sp;
    const std::uint8_t garbage[] = {0x01, 0x00, 0x00, 0x00, 0x99};
    sp.feed(garbage, sizeof garbage);
    wire::frame out;
    EXPECT_EQ(sp.next(out), wire::decode_status::error);
    // A valid frame after the corruption must NOT resynchronize: framing is
    // lost for good and the connection owner has to drop it.
    std::vector<std::uint8_t> buf;
    wire::encode(sample_frame(), buf);
    sp.feed(buf.data(), buf.size());
    EXPECT_EQ(sp.next(out), wire::decode_status::error);
    EXPECT_TRUE(sp.corrupt());
}

TEST(WireFormat, MidFrameDisconnectLeavesBufferedBytes) {
    std::vector<std::uint8_t> buf;
    wire::encode(sample_frame(), buf);
    wire::frame_splitter sp;
    sp.feed(buf.data(), buf.size() - 5);  // peer vanished mid-frame
    wire::frame out;
    EXPECT_EQ(sp.next(out), wire::decode_status::need_more);
    EXPECT_GT(sp.buffered(), 0u);  // the dirty-disconnect detector's signal
    EXPECT_FALSE(sp.corrupt());
}

TEST(WireFormat, SplitterCompactsLongStreams) {
    // Push enough frames through one splitter that the internal prefix
    // compaction must have triggered; every frame still parses.
    wire::frame_splitter sp;
    std::vector<std::uint8_t> buf;
    std::size_t got = 0;
    for (int i = 0; i < 2000; ++i) {
        buf.clear();
        wire::encode(sample_frame(i), buf);
        sp.feed(buf.data(), buf.size());
        wire::frame out;
        while (sp.next(out) == wire::decode_status::ok) {
            EXPECT_EQ(out.source, 3 + static_cast<int>(got));
            ++got;
        }
    }
    EXPECT_EQ(got, 2000u);
    EXPECT_EQ(sp.buffered(), 0u);
}

TEST(WireFormat, FuzzRandomBytesNeverCrash) {
    // Seeded random garbage in random-size chunks: the splitter may report
    // error or starve, but must never crash, loop, or read out of bounds
    // (asan/ubsan CI runs this file).
    std::mt19937 rng{20260807};
    for (int round = 0; round < 200; ++round) {
        wire::frame_splitter sp;
        std::vector<std::uint8_t> noise(512);
        for (auto& byte : noise) byte = static_cast<std::uint8_t>(rng());
        std::size_t pos = 0;
        while (pos < noise.size()) {
            const auto n = std::min<std::size_t>(1 + rng() % 64, noise.size() - pos);
            sp.feed(noise.data() + pos, n);
            pos += n;
            wire::frame out;
            for (int k = 0; k < 16 && sp.next(out) == wire::decode_status::ok; ++k) {
                EXPECT_TRUE(wire::verb_valid(out.kind));
            }
        }
    }
}

TEST(WireFormat, FuzzBitFlippedFramesParseOrFailCleanly) {
    // Valid frame streams with random single-byte corruption: decode either
    // succeeds (the flip hit a value byte) or errors (length/verb) - and a
    // successful parse of a corrupted length never mis-frames the stream.
    std::mt19937 rng{7};
    for (int round = 0; round < 500; ++round) {
        std::vector<std::uint8_t> buf;
        for (int i = 0; i < 4; ++i) wire::encode(sample_frame(i), buf);
        buf[rng() % buf.size()] = static_cast<std::uint8_t>(rng());

        wire::frame_splitter sp;
        sp.feed(buf.data(), buf.size());
        wire::frame out;
        int frames = 0;
        while (sp.next(out) == wire::decode_status::ok) {
            ASSERT_LE(++frames, 4);
            EXPECT_TRUE(wire::verb_valid(out.kind));
        }
    }
}

TEST(ByteCodec, WriterReaderRoundTrip) {
    mm::core::byte_writer w;
    w.u8(0xab);
    w.u16(0x1234);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefULL);
    w.i32(-7);
    w.i64(std::numeric_limits<std::int64_t>::min());

    mm::core::byte_reader r{w.bytes().data(), w.size()};
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0x1234);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.i32(), -7);
    EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.exhausted());
}

TEST(ByteCodec, ReaderUnderflowLatches) {
    const std::uint8_t two[] = {1, 2};
    mm::core::byte_reader r{two, sizeof two};
    EXPECT_EQ(r.u32(), 0u);  // underflow: zero value, ok() drops
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u8(), 0u);  // stays failed - no partial reads after underflow
    EXPECT_FALSE(r.ok());
}
