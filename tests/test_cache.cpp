// Tests for core/cache: timestamped (port, address) caches (Section 2.1)
// and the LRU-bounded variant used by Lighthouse Locate.
#include <gtest/gtest.h>

#include "core/cache.h"

namespace mm::core {
namespace {

port_entry entry(port_id port, address where, std::int64_t stamp = 0,
                 std::int64_t expires = -1) {
    return port_entry{port, where, stamp, expires};
}

TEST(port_cache, post_and_lookup) {
    port_cache cache;
    EXPECT_TRUE(cache.post(entry(1, 10)));
    const auto hit = cache.lookup(1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->where, 10);
    EXPECT_FALSE(cache.lookup(2).has_value());
}

TEST(port_cache, newer_stamp_wins) {
    port_cache cache;
    EXPECT_TRUE(cache.post(entry(1, 10, 5)));
    EXPECT_TRUE(cache.post(entry(1, 20, 9)));  // migration: fresher address
    EXPECT_EQ(cache.lookup(1)->where, 20);
    // A stale post (out-of-order delivery) must not clobber the newer one.
    EXPECT_FALSE(cache.post(entry(1, 30, 7)));
    EXPECT_EQ(cache.lookup(1)->where, 20);
}

TEST(port_cache, equal_stamp_updates) {
    port_cache cache;
    EXPECT_TRUE(cache.post(entry(1, 10, 5)));
    EXPECT_TRUE(cache.post(entry(1, 11, 5)));
    EXPECT_EQ(cache.lookup(1)->where, 11);
}

TEST(port_cache, remove_requires_matching_address) {
    port_cache cache;
    cache.post(entry(1, 10));
    EXPECT_FALSE(cache.remove(1, 99));  // someone else's deregistration
    EXPECT_TRUE(cache.lookup(1).has_value());
    EXPECT_TRUE(cache.remove(1, 10));
    EXPECT_FALSE(cache.lookup(1).has_value());
    EXPECT_FALSE(cache.remove(1, 10));  // already gone
}

TEST(port_cache, expiry) {
    port_cache cache;
    cache.post(entry(1, 10, 0, 100));
    EXPECT_TRUE(cache.lookup(1, 99).has_value());
    EXPECT_FALSE(cache.lookup(1, 100).has_value());  // expired at its deadline
    EXPECT_EQ(cache.expire(100), 1u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(port_cache, high_water_mark_tracks_peak) {
    port_cache cache;
    for (port_id p = 0; p < 5; ++p) cache.post(entry(p, 1));
    cache.remove(0, 1);
    cache.remove(1, 1);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.high_water_mark(), 5u);
}

TEST(port_cache, clear_empties) {
    port_cache cache;
    cache.post(entry(1, 10));
    cache.clear();
    EXPECT_TRUE(cache.empty());
    EXPECT_FALSE(cache.lookup(1).has_value());
}

TEST(bounded_cache, lru_eviction) {
    bounded_port_cache cache{2};
    cache.post(entry(1, 10));
    cache.post(entry(2, 20));
    // Touch port 1 so port 2 is the LRU victim.
    EXPECT_TRUE(cache.lookup(1).has_value());
    cache.post(entry(3, 30));
    EXPECT_TRUE(cache.lookup(1).has_value());
    EXPECT_FALSE(cache.lookup(2).has_value());
    EXPECT_TRUE(cache.lookup(3).has_value());
    EXPECT_EQ(cache.evictions(), 1);
}

TEST(bounded_cache, update_does_not_evict) {
    bounded_port_cache cache{2};
    cache.post(entry(1, 10, 1));
    cache.post(entry(2, 20, 1));
    cache.post(entry(1, 11, 2));  // same port, newer: in-place update
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 0);
    EXPECT_EQ(cache.lookup(1)->where, 11);
}

TEST(bounded_cache, stale_update_rejected) {
    bounded_port_cache cache{2};
    cache.post(entry(1, 10, 5));
    EXPECT_FALSE(cache.post(entry(1, 9, 3)));
    EXPECT_EQ(cache.lookup(1)->where, 10);
}

TEST(bounded_cache, zero_capacity_stores_nothing) {
    bounded_port_cache cache{0};
    EXPECT_FALSE(cache.post(entry(1, 10)));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(bounded_cache, expired_entries_pruned_on_lookup) {
    bounded_port_cache cache{4};
    cache.post(entry(1, 10, 0, 50));
    EXPECT_FALSE(cache.lookup(1, 60).has_value());
    EXPECT_EQ(cache.size(), 0u);
}

TEST(bounded_cache, expire_sweeps) {
    bounded_port_cache cache{4};
    cache.post(entry(1, 10, 0, 50));
    cache.post(entry(2, 20, 0, 80));
    cache.post(entry(3, 30, 0, -1));
    EXPECT_EQ(cache.expire(60), 1u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.expire(1000), 1u);  // the never-expiring entry survives
    EXPECT_EQ(cache.size(), 1u);
}

TEST(port_of, stable_and_distinct) {
    EXPECT_EQ(port_of("file-server"), port_of("file-server"));
    EXPECT_NE(port_of("file-server"), port_of("print-server"));
    EXPECT_NE(port_of(""), port_of("x"));
}

}  // namespace
}  // namespace mm::core
