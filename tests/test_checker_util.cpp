// Tests for strategies/checker_util: the block row/column rendezvous
// guarantee that the checkerboard and hierarchical strategies rely on.
#include <gtest/gtest.h>

#include <numeric>

#include "strategies/checker_util.h"

namespace mm::strategies {
namespace {

std::vector<net::node_id> pool_of(int size, net::node_id base = 0) {
    std::vector<net::node_id> pool(static_cast<std::size_t>(size));
    std::iota(pool.begin(), pool.end(), base);
    return pool;
}

TEST(checker_util, balanced_width) {
    EXPECT_EQ(balanced_checker_width(1), 1);
    EXPECT_EQ(balanced_checker_width(4), 2);
    EXPECT_EQ(balanced_checker_width(9), 3);
    EXPECT_EQ(balanced_checker_width(10), 4);
    EXPECT_EQ(balanced_checker_width(16), 4);
    EXPECT_THROW((void)balanced_checker_width(0), std::invalid_argument);
}

TEST(checker_util, post_and_query_always_intersect) {
    // The defining property, exhaustively over sizes, widths and indices.
    for (const int size : {1, 2, 3, 5, 8, 9, 12, 16, 17}) {
        const auto pool = pool_of(size, 100);
        for (int width = 1; width <= size; ++width) {
            for (int a = 0; a < size; ++a) {
                const auto post = checker_post(pool, a, width);
                for (int b = 0; b < size; ++b) {
                    const auto query = checker_query(pool, b, width);
                    const net::node_id promised = checker_rendezvous(pool, a, b, width);
                    EXPECT_TRUE(std::find(post.begin(), post.end(), promised) != post.end())
                        << size << "/" << width << "/" << a << "/" << b;
                    EXPECT_TRUE(std::find(query.begin(), query.end(), promised) != query.end())
                        << size << "/" << width << "/" << a << "/" << b;
                }
            }
        }
    }
}

TEST(checker_util, set_sizes_bounded_by_width_and_rows) {
    const auto pool = pool_of(10);
    for (int width = 1; width <= 10; ++width) {
        const int rows = (10 + width - 1) / width;
        for (int idx = 0; idx < 10; ++idx) {
            EXPECT_LE(static_cast<int>(checker_post(pool, idx, width).size()), width);
            EXPECT_LE(static_cast<int>(checker_query(pool, idx, width).size()), rows);
        }
    }
}

TEST(checker_util, pool_members_pass_through) {
    // Sets contain only pool members (not indices).
    const auto pool = pool_of(6, 50);
    const auto post = checker_post(pool, 4, 2);
    for (const net::node_id v : post) {
        EXPECT_GE(v, 50);
        EXPECT_LT(v, 56);
    }
}

TEST(checker_util, argument_validation) {
    const auto pool = pool_of(4);
    EXPECT_THROW((void)checker_post(pool, 4, 2), std::out_of_range);
    EXPECT_THROW((void)checker_post(pool, -1, 2), std::out_of_range);
    EXPECT_THROW((void)checker_post(pool, 0, 0), std::invalid_argument);
    EXPECT_THROW((void)checker_post(pool, 0, 5), std::invalid_argument);
    EXPECT_THROW((void)checker_query({}, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mm::strategies
