// Tests for net/graph and net/topologies: structural invariants of every
// topology the paper's schemes run on.
#include <gtest/gtest.h>

#include <numeric>

#include "net/graph.h"
#include "net/topologies.h"

namespace mm::net {
namespace {

TEST(graph, empty_graph_has_no_nodes) {
    const graph g;
    EXPECT_EQ(g.node_count(), 0);
    EXPECT_EQ(g.edge_count(), 0);
    EXPECT_FALSE(g.connected());
}

TEST(graph, add_edge_updates_both_endpoints) {
    graph g{3};
    g.add_edge(0, 2);
    EXPECT_TRUE(g.has_edge(0, 2));
    EXPECT_TRUE(g.has_edge(2, 0));
    EXPECT_FALSE(g.has_edge(0, 1));
    EXPECT_EQ(g.degree(0), 1);
    EXPECT_EQ(g.degree(2), 1);
    EXPECT_EQ(g.degree(1), 0);
    EXPECT_EQ(g.edge_count(), 1);
}

TEST(graph, rejects_self_loops_and_parallel_edges) {
    graph g{3};
    EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
    g.add_edge(0, 1);
    EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
}

TEST(graph, rejects_invalid_nodes) {
    graph g{2};
    EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
    EXPECT_THROW(g.add_edge(-1, 0), std::out_of_range);
    EXPECT_THROW((void)g.degree(5), std::out_of_range);
    EXPECT_THROW((void)g.neighbors(-1), std::out_of_range);
}

TEST(graph, neighbors_are_sorted_after_finalize) {
    graph g{4};
    g.add_edge(0, 3);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    const auto nb = g.neighbors(0);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    EXPECT_EQ(nb.size(), 3u);
}

TEST(graph, connectivity_detection) {
    graph g{4};
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    EXPECT_FALSE(g.connected());
    g.add_edge(1, 2);
    EXPECT_TRUE(g.connected());
}

TEST(graph, summary_mentions_counts) {
    graph g{5};
    g.add_edge(0, 1);
    EXPECT_EQ(g.summary(), "graph(n=5, m=1)");
}

TEST(graph, dot_export) {
    graph g{3};
    g.add_edge(0, 1);
    const auto dot = g.to_dot();
    EXPECT_NE(dot.find("graph g {"), std::string::npos);
    EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
    EXPECT_NE(dot.find("2;"), std::string::npos);  // isolated node listed
    EXPECT_EQ(dot.find("1 -- 0"), std::string::npos);  // each edge once
}

TEST(topologies, complete_graph_shape) {
    const auto g = make_complete(7);
    EXPECT_EQ(g.node_count(), 7);
    EXPECT_EQ(g.edge_count(), 21);
    for (node_id v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 6);
    EXPECT_TRUE(g.connected());
}

TEST(topologies, ring_shape) {
    const auto g = make_ring(9);
    EXPECT_EQ(g.node_count(), 9);
    EXPECT_EQ(g.edge_count(), 9);
    for (node_id v = 0; v < 9; ++v) EXPECT_EQ(g.degree(v), 2);
    EXPECT_TRUE(g.connected());
    EXPECT_THROW(make_ring(2), std::invalid_argument);
}

TEST(topologies, path_and_star) {
    const auto p = make_path(5);
    EXPECT_EQ(p.edge_count(), 4);
    EXPECT_EQ(p.degree(0), 1);
    EXPECT_EQ(p.degree(2), 2);
    const auto s = make_star(6);
    EXPECT_EQ(s.degree(0), 5);
    for (node_id v = 1; v < 6; ++v) EXPECT_EQ(s.degree(v), 1);
}

TEST(topologies, grid_plain) {
    const auto g = make_grid(3, 4);
    EXPECT_EQ(g.node_count(), 12);
    // 3 rows x 3 horizontal edges + 2 x 4 vertical edges.
    EXPECT_EQ(g.edge_count(), 3 * 3 + 2 * 4);
    EXPECT_EQ(g.degree(0), 2);   // corner
    EXPECT_EQ(g.degree(1), 3);   // edge
    EXPECT_EQ(g.degree(5), 4);   // interior
    EXPECT_TRUE(g.connected());
}

TEST(topologies, grid_torus_is_regular) {
    const auto g = make_grid(4, 5, wrap_mode::torus);
    for (node_id v = 0; v < g.node_count(); ++v) EXPECT_EQ(g.degree(v), 4);
    EXPECT_EQ(g.edge_count(), 2 * 4 * 5);
}

TEST(topologies, grid_cylinder_wraps_rows_only) {
    const auto g = make_grid(3, 4, wrap_mode::cylinder);
    // Row wrap: node (r, 0) adjacent to (r, 3).
    EXPECT_TRUE(g.has_edge(0, 3));
    // No column wrap: (0, c) not adjacent to (2, c).
    EXPECT_FALSE(g.has_edge(0, 8));
}

TEST(topologies, mesh_shape_roundtrip) {
    const mesh_shape shape{{3, 4, 5}};
    EXPECT_EQ(shape.node_count(), 60);
    for (node_id v = 0; v < 60; ++v) EXPECT_EQ(shape.index(shape.coords(v)), v);
    EXPECT_THROW((void)shape.coords(60), std::out_of_range);
    EXPECT_THROW((void)shape.index({0, 0}), std::invalid_argument);
    EXPECT_THROW((void)shape.index({0, 0, 9}), std::out_of_range);
}

TEST(topologies, mesh_edges_match_manhattan_distance) {
    const mesh_shape shape{{3, 3, 3}};
    const auto g = make_mesh(shape);
    for (node_id a = 0; a < 27; ++a) {
        for (node_id b = a + 1; b < 27; ++b) {
            const auto ca = shape.coords(a);
            const auto cb = shape.coords(b);
            int dist = 0;
            for (std::size_t d = 0; d < 3; ++d) dist += std::abs(ca[d] - cb[d]);
            EXPECT_EQ(g.has_edge(a, b), dist == 1);
        }
    }
}

TEST(topologies, mesh_matches_grid_in_two_dimensions) {
    const auto m = make_mesh(mesh_shape{{3, 4}});
    const auto g = make_grid(3, 4);
    EXPECT_EQ(m.edge_count(), g.edge_count());
    for (node_id a = 0; a < 12; ++a)
        for (node_id b = a + 1; b < 12; ++b) EXPECT_EQ(m.has_edge(a, b), g.has_edge(a, b));
}

TEST(topologies, hypercube_shape) {
    const auto g = make_hypercube(4);
    EXPECT_EQ(g.node_count(), 16);
    EXPECT_EQ(g.edge_count(), 4 * 8);  // d * 2^(d-1)
    for (node_id v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4);
    // Edges differ in exactly one bit.
    for (node_id v = 0; v < 16; ++v)
        for (const node_id w : g.neighbors(v)) EXPECT_EQ(__builtin_popcount(v ^ w), 1);
}

TEST(topologies, hypercube_degenerate) {
    EXPECT_EQ(make_hypercube(0).node_count(), 1);
    EXPECT_THROW(make_hypercube(-1), std::invalid_argument);
}

TEST(topologies, ccc_shape) {
    const int d = 4;
    const auto g = make_ccc(d);
    EXPECT_EQ(g.node_count(), d * 16);
    EXPECT_TRUE(g.connected());
    // Every node has degree 3 for d >= 3: two cycle neighbors + one cube.
    for (node_id v = 0; v < g.node_count(); ++v) EXPECT_EQ(g.degree(v), 3);
}

TEST(topologies, ccc_index_roundtrip) {
    const int d = 5;
    for (int p = 0; p < d; ++p) {
        for (std::uint32_t x = 0; x < 32; ++x) {
            const node_id v = ccc_index(d, p, x);
            EXPECT_EQ(ccc_position(d, v), p);
            EXPECT_EQ(ccc_corner(d, v), x);
        }
    }
}

TEST(topologies, balanced_tree_shape) {
    const auto g = make_balanced_tree(3, 2);
    EXPECT_EQ(g.node_count(), 1 + 3 + 9);
    EXPECT_EQ(g.edge_count(), 12);
    EXPECT_EQ(g.degree(0), 3);
    EXPECT_TRUE(g.connected());
}

TEST(topologies, tree_from_parent_array) {
    const std::vector<node_id> parent{invalid_node, 0, 0, 1};
    const auto g = make_tree(parent);
    EXPECT_EQ(g.edge_count(), 3);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 3));
    EXPECT_THROW(make_tree({invalid_node, invalid_node}), std::invalid_argument);
}

TEST(topologies, spanning_tree_covers_graph) {
    const auto g = make_grid(4, 4);
    const auto parent = spanning_tree_parents(g, 5);
    EXPECT_EQ(parent[5], invalid_node);
    int roots = 0;
    for (node_id v = 0; v < 16; ++v) {
        if (parent[static_cast<std::size_t>(v)] == invalid_node) {
            ++roots;
        } else {
            EXPECT_TRUE(g.has_edge(v, parent[static_cast<std::size_t>(v)]));
        }
    }
    EXPECT_EQ(roots, 1);
}

TEST(topologies, spanning_tree_requires_connected) {
    graph g{4};
    g.add_edge(0, 1);
    EXPECT_THROW(spanning_tree_parents(g, 0), std::invalid_argument);
}

TEST(topologies, tree_depths_match_bfs_levels) {
    const auto g = make_balanced_tree(2, 3);
    const auto parent = spanning_tree_parents(g, 0);
    const auto depth = tree_depths(parent);
    EXPECT_EQ(depth[0], 0);
    EXPECT_EQ(depth[1], 1);
    EXPECT_EQ(depth[2], 1);
    EXPECT_EQ(depth[static_cast<std::size_t>(g.node_count()) - 1], 3);
}

// Parameterized: every designed topology is connected at a range of sizes.
class topology_connectivity : public ::testing::TestWithParam<int> {};

TEST_P(topology_connectivity, all_designed_topologies_connected) {
    const int k = GetParam();
    EXPECT_TRUE(make_complete(k + 2).connected());
    EXPECT_TRUE(make_ring(k + 3).connected());
    EXPECT_TRUE(make_grid(k + 1, k + 2).connected());
    EXPECT_TRUE(make_grid(k + 1, k + 2, wrap_mode::torus).connected());
    EXPECT_TRUE(make_hypercube(k % 10).connected());
    EXPECT_TRUE(make_ccc(2 + k % 6).connected());
    EXPECT_TRUE(make_balanced_tree(1 + k % 4, 2).connected());
}

INSTANTIATE_TEST_SUITE_P(sizes, topology_connectivity, ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace mm::net
