// Transport-contract tests: the TCP implementation against the real
// loopback stack, the sim_transport oracle against the simulator, and one
// cross-implementation script asserting the two substrates agree on
// visible behavior (the contract of transport/transport.h).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <vector>

#include "net/topologies.h"
#include "sim/simulator.h"
#include "transport/sim_transport.h"
#include "transport/tcp_transport.h"
#include "transport/wire.h"

namespace transport = mm::transport;
namespace wire = mm::transport::wire;

namespace {

wire::frame make_frame(std::uint8_t kind, mm::net::node_id from, mm::net::node_id to,
                       std::int64_t tag) {
    wire::frame f;
    f.kind = kind;
    f.port = 42;
    f.source = from;
    f.destination = to;
    f.subject_address = from;
    f.stamp = 1;
    f.tag = tag;
    f.ttl = -1;
    return f;
}

// Pumps both endpoints until `sink` collected `want` message completions
// (timers and peer_downs pass through into `sink` too) or ~5s elapsed.
void pump_until(transport::transport& a, transport::transport& b,
                std::vector<transport::completion>& sink, std::size_t want) {
    for (int round = 0; round < 500; ++round) {
        std::size_t messages = 0;
        for (const auto& c : sink)
            if (c.what == transport::completion::kind::message) ++messages;
        if (messages >= want) return;
        a.poll(sink, 5);
        b.poll(sink, 5);
    }
}

}  // namespace

TEST(TcpTransport, RoundTripAndReply) {
    transport::tcp_transport server;
    const auto port = server.listen_on(0);
    ASSERT_GT(port, 0);

    transport::tcp_transport client;
    client.add_route(0, "127.0.0.1", port);

    ASSERT_TRUE(client.send(make_frame(wire::v_query, 9, 0, 7)));

    // Server side: receive the query, answer over the inbound connection.
    std::vector<transport::completion> at_server;
    pump_until(server, client, at_server, 1);
    ASSERT_EQ(at_server.size(), 1u);
    ASSERT_EQ(at_server[0].what, transport::completion::kind::message);
    EXPECT_EQ(at_server[0].msg, make_frame(wire::v_query, 9, 0, 7));
    ASSERT_NE(at_server[0].from, 0);

    ASSERT_TRUE(server.reply(at_server[0].from, make_frame(wire::v_reply, 0, 9, 7)));

    std::vector<transport::completion> at_client;
    pump_until(client, server, at_client, 1);
    ASSERT_EQ(at_client.size(), 1u);
    EXPECT_EQ(at_client[0].msg, make_frame(wire::v_reply, 0, 9, 7));

    EXPECT_EQ(server.stat().accepts, 1);
    EXPECT_EQ(client.stat().connects, 1);
    EXPECT_EQ(client.stat().frames_sent, 1);
    EXPECT_EQ(client.stat().frames_received, 1);
}

TEST(TcpTransport, ManyFramesArriveInSendOrder) {
    transport::tcp_transport server;
    const auto port = server.listen_on(0);
    transport::tcp_transport client;
    client.add_route(0, "127.0.0.1", port);

    constexpr int n = 500;
    for (int i = 0; i < n; ++i) ASSERT_TRUE(client.send(make_frame(wire::v_post, 1, 0, i)));

    std::vector<transport::completion> got;
    pump_until(server, client, got, n);
    ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)].what, transport::completion::kind::message);
        EXPECT_EQ(got[static_cast<std::size_t>(i)].msg.tag, i) << "per-peer FIFO violated";
    }
    EXPECT_EQ(server.open_connections(), 1u) << "one endpoint = one cached connection";
}

TEST(TcpTransport, TwoListenersTalkBothWays) {
    transport::tcp_transport a;
    transport::tcp_transport b;
    const auto pa = a.listen_on(0);
    const auto pb = b.listen_on(0);
    a.add_route(1, "127.0.0.1", pb);
    b.add_route(0, "127.0.0.1", pa);

    ASSERT_TRUE(a.send(make_frame(wire::v_post, 0, 1, 1)));
    ASSERT_TRUE(b.send(make_frame(wire::v_post, 1, 0, 2)));

    // Separate sinks: pump_until merges both endpoints' completions into
    // one sink, which would mix up who received what.
    std::vector<transport::completion> at_a, at_b;
    for (int round = 0; round < 500 && (at_a.empty() || at_b.empty()); ++round) {
        a.poll(at_a, 5);
        b.poll(at_b, 5);
    }
    ASSERT_GE(at_a.size(), 1u);
    ASSERT_GE(at_b.size(), 1u);
    EXPECT_EQ(at_a[0].msg.tag, 2);
    EXPECT_EQ(at_b[0].msg.tag, 1);
}

TEST(TcpTransport, TimersFireByDeadlineThenArmOrder) {
    transport::tcp_transport t;
    t.arm_timer(30, 1);
    t.arm_timer(30, 2);  // same deadline: must fire after 1 (arm order)
    t.arm_timer(5, 3);   // earlier deadline: fires first

    std::vector<transport::completion> got;
    const auto deadline = t.now() + 2000;
    while (got.size() < 3 && t.now() < deadline) t.poll(got, 10);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].timer_id, 3);
    EXPECT_EQ(got[1].timer_id, 1);
    EXPECT_EQ(got[2].timer_id, 2);
}

TEST(TcpTransport, IdlePollAdvancesToHorizon) {
    // The run_until mirror: a poll with nothing to deliver still advances
    // now() to the horizon - quiet networks must not freeze time.
    transport::tcp_transport t;
    std::vector<transport::completion> out;
    const auto before = t.now();
    EXPECT_EQ(t.poll(out, 80), 0u);
    EXPECT_TRUE(out.empty());
    EXPECT_GE(t.now() - before, 80);
}

TEST(TcpTransport, SendWithoutRouteFails) {
    transport::tcp_transport t;
    EXPECT_FALSE(t.send(make_frame(wire::v_post, 0, 5, 1)));
    EXPECT_FALSE(t.reply(0, make_frame(wire::v_post, 0, 5, 1)));  // via-0 falls back to routing
}

TEST(TcpTransport, ReconnectAfterConnectionDrop) {
    transport::tcp_transport server;
    const auto port = server.listen_on(0);
    transport::tcp_transport client;
    client.add_route(0, "127.0.0.1", port);

    ASSERT_TRUE(client.send(make_frame(wire::v_post, 1, 0, 1)));
    std::vector<transport::completion> got;
    pump_until(server, client, got, 1);
    ASSERT_EQ(got.size(), 1u);

    // Sever the cached connection behind the client's back; the next send
    // must dial a fresh one and still deliver.
    client.drop_connections();
    EXPECT_EQ(client.open_connections(), 0u);
    ASSERT_TRUE(client.send(make_frame(wire::v_post, 1, 0, 2)));
    pump_until(server, client, got, 2);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[1].msg.tag, 2);
    EXPECT_EQ(server.stat().accepts, 2);
}

TEST(TcpTransport, ReconnectAfterServerRestartResendsQueuedFrame) {
    transport::tcp_transport client;
    std::uint16_t port = 0;
    {
        transport::tcp_transport first_server;
        port = first_server.listen_on(0);
        client.add_route(0, "127.0.0.1", port);
        ASSERT_TRUE(client.send(make_frame(wire::v_post, 1, 0, 1)));
        std::vector<transport::completion> got;
        pump_until(first_server, client, got, 1);
        ASSERT_EQ(got.size(), 1u);
    }  // server gone; the client still holds a cached (now dead) connection

    transport::tcp_transport second_server;
    ASSERT_EQ(second_server.listen_on(port), port);  // SO_REUSEADDR restart

    // The send lands on the dead cached connection; the poll loop notices
    // the failure and redials once with the queued frame intact.
    ASSERT_TRUE(client.send(make_frame(wire::v_post, 1, 0, 2)));
    std::vector<transport::completion> got;
    pump_until(second_server, client, got, 1);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].msg.tag, 2);
    EXPECT_GE(client.stat().reconnects, 1);
}

TEST(TcpTransport, GarbageBytesDropConnectionNotDaemon) {
    transport::tcp_transport server;
    const auto port = server.listen_on(0);

    // A hostile peer: raw socket, hostile length prefix, then hang up.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
    const std::uint8_t garbage[] = {0xff, 0xff, 0xff, 0xff, 0x00, 0x13, 0x37};
    ASSERT_EQ(::send(fd, garbage, sizeof garbage, 0), static_cast<ssize_t>(sizeof garbage));

    std::vector<transport::completion> out;
    for (int i = 0; i < 100 && server.stat().protocol_errors == 0; ++i) server.poll(out, 5);
    EXPECT_EQ(server.stat().protocol_errors, 1);
    ::close(fd);

    // And the server still serves well-formed peers afterwards.
    transport::tcp_transport client;
    client.add_route(0, "127.0.0.1", port);
    ASSERT_TRUE(client.send(make_frame(wire::v_post, 1, 0, 9)));
    std::vector<transport::completion> got;
    pump_until(server, client, got, 1);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].msg.tag, 9);
}

TEST(TcpTransport, MidFrameDisconnectCountsDirty) {
    transport::tcp_transport server;
    const auto port = server.listen_on(0);

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

    // Half a valid frame, then a hard close.
    std::vector<std::uint8_t> buf;
    wire::encode(make_frame(wire::v_post, 1, 0, 1), buf);
    ASSERT_EQ(::send(fd, buf.data(), buf.size() / 2, 0), static_cast<ssize_t>(buf.size() / 2));
    std::vector<transport::completion> out;
    server.poll(out, 20);
    ::close(fd);
    for (int i = 0; i < 100 && server.stat().dirty_disconnects == 0; ++i) server.poll(out, 5);
    EXPECT_EQ(server.stat().dirty_disconnects, 1);
    EXPECT_EQ(server.stat().frames_received, 0);
}

// --- the simulator-backed implementation ------------------------------------

TEST(SimTransport, DeliversAcrossSimulatedTopology) {
    const auto g = mm::net::make_complete(4);
    auto sim = mm::sim::simulator{g};
    transport::sim_transport a{sim, 0};
    transport::sim_transport b{sim, 3};

    ASSERT_TRUE(a.send(make_frame(wire::v_query, 0, 3, 5)));
    std::vector<transport::completion> at_b;
    b.poll(at_b, 10);
    ASSERT_EQ(at_b.size(), 1u);
    EXPECT_EQ(at_b[0].msg, make_frame(wire::v_query, 0, 3, 5));

    ASSERT_TRUE(b.reply(at_b[0].from, make_frame(wire::v_reply, 3, 0, 5)));
    std::vector<transport::completion> at_a;
    a.poll(at_a, 10);
    ASSERT_EQ(at_a.size(), 1u);
    EXPECT_EQ(at_a[0].msg.kind, wire::v_reply);
}

TEST(SimTransport, SendToCrashedOrInvalidNodeFails) {
    const auto g = mm::net::make_complete(3);
    auto sim = mm::sim::simulator{g};
    transport::sim_transport t{sim, 0};
    EXPECT_FALSE(t.send(make_frame(wire::v_post, 0, 99, 1)));
    sim.crash(2);
    EXPECT_FALSE(t.send(make_frame(wire::v_post, 0, 2, 1)));
}

TEST(SimTransport, IdlePollAdvancesToHorizonWithFutureEventsPending) {
    // The transport mirror of run_until's horizon semantics: now() lands on
    // the horizon even though a timer remains armed beyond it.
    const auto g = mm::net::make_complete(2);
    auto sim = mm::sim::simulator{g};
    transport::sim_transport t{sim, 0};
    t.arm_timer(1000, 1);
    std::vector<transport::completion> out;
    EXPECT_EQ(t.poll(out, 50), 0u);
    EXPECT_EQ(t.now(), 50);
    EXPECT_EQ(sim.now(), 50);

    // The armed timer still fires at its original deadline.
    t.poll(out, 2000);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].timer_id, 1);
    EXPECT_EQ(t.now(), 1000);
}

TEST(SimTransport, TimersFireByDeadlineThenArmOrder) {
    const auto g = mm::net::make_complete(2);
    auto sim = mm::sim::simulator{g};
    transport::sim_transport t{sim, 0};
    t.arm_timer(30, 1);
    t.arm_timer(30, 2);
    t.arm_timer(5, 3);
    std::vector<transport::completion> got;
    while (got.size() < 3) t.poll(got, 10);
    EXPECT_EQ(got[0].timer_id, 3);
    EXPECT_EQ(got[1].timer_id, 1);
    EXPECT_EQ(got[2].timer_id, 2);
}

// --- cross-implementation agreement -----------------------------------------

namespace {

// A miniature request/response protocol run over any transport pair:
// `client` sends queries 0..n-1 to `server_node`; the server echoes each as
// a reply; returns the tags in client-arrival order.
std::vector<std::int64_t> echo_script(transport::transport& client, transport::transport& server,
                                      mm::net::node_id client_node, mm::net::node_id server_node,
                                      int n) {
    for (int i = 0; i < n; ++i)
        EXPECT_TRUE(client.send(make_frame(wire::v_query, client_node, server_node, i)));
    std::vector<std::int64_t> order;
    std::vector<transport::completion> at_server, at_client;
    for (int round = 0; round < 500 && order.size() < static_cast<std::size_t>(n); ++round) {
        at_server.clear();
        server.poll(at_server, 5);
        for (const auto& c : at_server) {
            if (c.what != transport::completion::kind::message) continue;
            auto echo = c.msg;
            echo.kind = wire::v_reply;
            std::swap(echo.source, echo.destination);
            EXPECT_TRUE(server.reply(c.from, echo));
        }
        at_client.clear();
        client.poll(at_client, 5);
        for (const auto& c : at_client)
            if (c.what == transport::completion::kind::message) order.push_back(c.msg.tag);
    }
    return order;
}

}  // namespace

TEST(TransportContract, SimAndTcpRunTheSameScriptIdentically) {
    std::vector<std::int64_t> via_sim;
    {
        const auto g = mm::net::make_complete(2);
    auto sim = mm::sim::simulator{g};
        transport::sim_transport client{sim, 0};
        transport::sim_transport server{sim, 1};
        via_sim = echo_script(client, server, 0, 1, 32);
    }
    std::vector<std::int64_t> via_tcp;
    {
        transport::tcp_transport server;
        const auto port = server.listen_on(0);
        transport::tcp_transport client;
        client.add_route(1, "127.0.0.1", port);
        via_tcp = echo_script(client, server, 0, 1, 32);
    }
    ASSERT_EQ(via_sim.size(), 32u);
    EXPECT_EQ(via_sim, via_tcp) << "the two substrates disagreed on delivery order";
}
