// Tests for the analysis subsystem: table formatting, the UUCP degree
// table, tree-depth formulas, and Monte-Carlo verification of Section 2.2.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/montecarlo.h"
#include "analysis/table.h"
#include "analysis/uucp.h"
#include "net/random_graphs.h"
#include "strategies/random_strategy.h"

namespace mm::analysis {
namespace {

TEST(table_format, aligns_columns) {
    table t{{"name", "value"}};
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22222"});
    const auto text = t.to_string();
    // Cells are right-aligned to the widest entry per column.
    EXPECT_NE(text.find("|  name | value |"), std::string::npos);
    EXPECT_NE(text.find("| alpha |     1 |"), std::string::npos);
    EXPECT_NE(text.find("|     b | 22222 |"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(table_format, rejects_ragged_rows) {
    table t{{"a", "b"}};
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
    EXPECT_THROW(table{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(table_format, numeric_helpers) {
    EXPECT_EQ(table::num(3.14159, 2), "3.14");
    EXPECT_EQ(table::num(static_cast<std::int64_t>(42)), "42");
    EXPECT_EQ(table::num(2.0, 0), "2");
}

TEST(uucp, totals_match_the_paper) {
    // "The total number of sites of UUCPnet is 1916" and "the total number
    // of edges in UUCPnet is 3848" (so the degree sum is 7696).
    const auto& rows = uucp_degree_table();
    EXPECT_EQ(table_site_count(rows), uucp_total_sites);
    EXPECT_EQ(table_degree_sum(rows), 2 * static_cast<std::int64_t>(uucp_total_edges));
}

TEST(uucp, headline_rows_are_verbatim) {
    const auto& rows = uucp_degree_table();
    // Degree 1 (terminal sites): 840.  Degree 641: ihnp4.  Degree 0: 25.
    const auto find = [&](int degree) {
        for (const auto& r : rows)
            if (r.degree == degree) return r;
        return degree_row{};
    };
    EXPECT_EQ(find(0).sites, 25);
    EXPECT_EQ(find(1).sites, 840);
    EXPECT_EQ(find(2).sites, 384);
    EXPECT_EQ(find(45).sites, 3);
    EXPECT_EQ(find(471).sites, 1);
    EXPECT_EQ(find(641).sites, 1);
    EXPECT_FALSE(find(641).reconstructed);
    EXPECT_TRUE(find(20).reconstructed);
}

TEST(uucp, reconstructed_rows_are_marked_and_small) {
    int reconstructed_sites = 0;
    for (const auto& r : uucp_degree_table())
        if (r.reconstructed) reconstructed_sites += r.sites;
    // Only the 26 OCR-lost sites are reconstructed (1.4% of the network).
    EXPECT_EQ(reconstructed_sites, 26);
}

TEST(uucp, synthetic_network_is_heavy_tailed) {
    const auto g = make_uucp_synthetic(1916, 1916, 42);
    EXPECT_EQ(g.node_count(), 1916);
    EXPECT_TRUE(g.connected());
    const auto hist = net::degree_histogram(g);
    // Heavy tail: a hub far above the mean degree (~4).
    EXPECT_GE(g.max_degree(), 40);
    // Most sites are low-degree, as in the paper's table.
    int low = 0;
    for (int d = 1; d <= 4 && d < static_cast<int>(hist.size()); ++d)
        low += hist[static_cast<std::size_t>(d)];
    EXPECT_GT(low, g.node_count() / 2);
}

TEST(tree_depth, polynomial_profile_formula_tracks_empirical) {
    // l ~ log n / ((1+eps) loglog n): closed form within a factor ~2.5 of
    // the factorial-relation accumulation for large n.
    for (const double n : {1e4, 1e6, 1e9}) {
        const double predicted = tree_depth_polynomial_profile(n, 1.0, 0.5);
        const int empirical = tree_depth_empirical_polynomial(n, 1.0, 0.5);
        EXPECT_GT(predicted, 0.0);
        EXPECT_NEAR(predicted, static_cast<double>(empirical),
                    2.5 * static_cast<double>(empirical));
    }
}

TEST(tree_depth, exponential_profile_solves_quadratic) {
    // For d(i) = c*2^(eps*i), depth from the closed form must reproduce n.
    const double c = 2.0;
    const double eps = 1.0;
    for (const double n : {1e3, 1e6, 1e12}) {
        const double l = tree_depth_exponential_profile(n, c, eps);
        // n = c^l * 2^(eps * l(l+1)/2)  =>  log2 n recovered from l.
        const double log_n = l * std::log2(c) + eps * l * (l + 1) / 2.0;
        EXPECT_NEAR(log_n, std::log2(n), 1e-6);
    }
}

TEST(tree_depth, doubling_exponent_halves_depth) {
    // The paper: "If the exponent 1+eps ... is doubled then the depth of the
    // tree is halved for the same number of nodes."
    const double n = 1e9;
    const double shallow = tree_depth_polynomial_profile(n, 1.0, 1.0);  // 1+eps = 2
    const double deep = tree_depth_polynomial_profile(n, 1.0, 0.0);     // 1+eps = 1
    EXPECT_NEAR(shallow * 2.0, deep, deep * 0.01);
}

TEST(tree_depth, quadrupling_eps_halves_exponential_depth) {
    // "If eps is quadrupled then the depth of the tree is halved."
    const double n = 1e15;
    const double l1 = tree_depth_exponential_profile(n, 1.0, 0.1);
    const double l4 = tree_depth_exponential_profile(n, 1.0, 0.4);
    EXPECT_NEAR(l1 / l4, 2.0, 0.25);
}

TEST(tree_depth, input_validation) {
    EXPECT_THROW((void)tree_depth_polynomial_profile(1.0, 1.0, 0.5), std::invalid_argument);
    EXPECT_THROW((void)tree_depth_exponential_profile(100.0, 1.0, 0.0), std::invalid_argument);
}

TEST(montecarlo, intersection_matches_pq_over_n) {
    // E[#(P n Q)] = pq/n (Section 2.2), within sampling error.
    const strategies::random_strategy s{64, 8, 8, 5};
    const auto est = estimate_intersection(s, 4000, 17);
    EXPECT_NEAR(est.expected, 1.0, 1e-9);  // 8*8/64
    EXPECT_NEAR(est.mean, est.expected, 5.0 * std::max(0.02, est.stderr_mean));
    EXPECT_GT(est.hit_rate, 0.3);
    EXPECT_LT(est.hit_rate, 0.95);
}

TEST(montecarlo, small_sets_rarely_meet) {
    const strategies::random_strategy s{256, 2, 2, 5};
    const auto est = estimate_intersection(s, 3000, 21);
    EXPECT_NEAR(est.expected, 4.0 / 256.0, 1e-9);
    EXPECT_LT(est.hit_rate, 0.15);
}

TEST(montecarlo, sum_threshold_2_sqrt_n) {
    // p = q = sqrt(n) gives exactly one expected rendezvous.
    const strategies::random_strategy s{144, 12, 12, 9};
    const auto est = estimate_intersection(s, 4000, 33);
    EXPECT_NEAR(est.mean, 1.0, 0.2);
}

}  // namespace
}  // namespace mm::analysis
