// End-to-end integration matrix: every topology-specific strategy running
// live on its *native* graph through the simulator and name service -
// Manhattan on the grid, hypercube on the cube, CCC on the CCC, tree on
// the tree, hierarchy on the gateway graph, partition on its own graph.
// Checks that every client finds every server and that observed message
// passes stay within the routed budget.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "net/hierarchy.h"
#include "net/partition.h"
#include "net/topologies.h"
#include "runtime/name_service.h"
#include "strategies/checkerboard.h"
#include "strategies/cube.h"
#include "strategies/grid.h"
#include "strategies/hash_locate.h"
#include "strategies/hierarchical.h"
#include "strategies/partition_strategy.h"
#include "strategies/projective.h"
#include "strategies/tree_path.h"

namespace mm {
namespace {

struct native_case {
    std::string label;
    std::function<net::graph()> make_graph;
    std::function<std::unique_ptr<core::locate_strategy>()> make_strategy;
};

std::vector<native_case> native_cases() {
    std::vector<native_case> cases;
    cases.push_back({"manhattan-grid",
                     [] { return net::make_grid(4, 5); },
                     [] { return std::make_unique<strategies::manhattan_strategy>(4, 5); }});
    cases.push_back({"manhattan-torus",
                     [] { return net::make_grid(4, 5, net::wrap_mode::torus); },
                     [] { return std::make_unique<strategies::manhattan_strategy>(4, 5); }});
    cases.push_back({"mesh3d",
                     [] { return net::make_mesh(net::mesh_shape{{3, 3, 3}}); },
                     [] {
                         return std::make_unique<strategies::mesh_strategy>(
                             net::mesh_shape{{3, 3, 3}});
                     }});
    cases.push_back({"hypercube",
                     [] { return net::make_hypercube(4); },
                     [] { return std::make_unique<strategies::hypercube_strategy>(4); }});
    cases.push_back({"ccc",
                     [] { return net::make_ccc(3); },
                     [] { return std::make_unique<strategies::ccc_strategy>(3); }});
    cases.push_back({"projective-complete",
                     [] { return net::make_complete(13); },
                     [] { return std::make_unique<strategies::projective_strategy>(3); }});
    cases.push_back({"tree",
                     [] { return net::make_balanced_tree(2, 3); },
                     [] {
                         std::vector<net::node_id> parent(15);
                         parent[0] = net::invalid_node;
                         for (net::node_id v = 1; v < 15; ++v)
                             parent[static_cast<std::size_t>(v)] = (v - 1) / 2;
                         return std::make_unique<strategies::tree_path_strategy>(parent, true);
                     }});
    cases.push_back({"hierarchy",
                     [] { return net::make_hierarchical_graph(net::hierarchy{{4, 4}}); },
                     [] {
                         return std::make_unique<strategies::hierarchical_strategy>(
                             net::hierarchy{{4, 4}});
                     }});
    cases.push_back({"partition-grid",
                     [] { return net::make_grid(5, 5); },
                     [] {
                         return std::make_unique<strategies::partition_strategy>(
                             net::partition_connected(net::make_grid(5, 5)));
                     }});
    cases.push_back({"hash-complete",
                     [] { return net::make_complete(20); },
                     [] { return std::make_unique<strategies::hash_locate_strategy>(20, 2); }});
    return cases;
}

class native_integration : public ::testing::TestWithParam<native_case> {};

TEST_P(native_integration, every_pair_matches_on_native_topology) {
    const auto g = GetParam().make_graph();
    const auto strategy = GetParam().make_strategy();
    ASSERT_EQ(g.node_count(), strategy->node_count());
    sim::simulator sim{g};
    runtime::name_service ns{sim, *strategy};

    const net::node_id n = g.node_count();
    const net::node_id step = std::max<net::node_id>(1, n / 6);
    for (net::node_id server = 0; server < n; server += step) {
        const auto port = core::port_of("native" + std::to_string(server));
        ns.register_server(port, server);
        for (net::node_id client = 0; client < n; client += step) {
            const auto result = ns.locate(port, client);
            EXPECT_TRUE(result.found) << GetParam().label << ": " << server << " <- " << client;
            EXPECT_EQ(result.where, server);
        }
    }
}

TEST_P(native_integration, migration_works_on_native_topology) {
    const auto g = GetParam().make_graph();
    const auto strategy = GetParam().make_strategy();
    sim::simulator sim{g};
    runtime::name_service ns{sim, *strategy};
    const auto port = core::port_of("migrator");
    const net::node_id n = g.node_count();
    ns.register_server(port, 0);
    ASSERT_EQ(ns.locate(port, n / 2).where, 0);
    ns.migrate_server(port, 0, n - 1);
    const auto result = ns.locate(port, n / 2);
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.where, n - 1);
}

TEST_P(native_integration, message_cost_bounded_by_unicast_budget) {
    // One locate's observed hops must not exceed the sum of unicast
    // distances to the query set plus the reply path (a loose upper bound;
    // catches runaway protocols).
    const auto g = GetParam().make_graph();
    const auto strategy = GetParam().make_strategy();
    sim::simulator sim{g};
    const net::routing_table routes{g};
    runtime::name_service ns{sim, *strategy};
    const auto port = core::port_of("budget");
    const net::node_id n = g.node_count();
    ns.register_server(port, n - 1);
    const net::node_id client = 0;
    const auto result = ns.locate(port, client);
    ASSERT_TRUE(result.found);
    const auto queries = strategy->query_set(client, port);
    std::int64_t budget = routes.unicast_cost(client, queries);
    // Every queried rendezvous could reply.
    for (const net::node_id q : queries) budget += routes.distance(q, client);
    EXPECT_LE(result.message_passes, budget) << GetParam().label;
}

TEST_P(native_integration, randomized_routing_changes_nothing_functionally) {
    const auto g = GetParam().make_graph();
    const auto strategy = GetParam().make_strategy();
    sim::simulator sim{g};
    sim.set_randomized_routing(11);
    runtime::name_service ns{sim, *strategy};
    const auto port = core::port_of("rand-route");
    ns.register_server(port, 1);
    for (net::node_id client = 0; client < g.node_count();
         client += std::max<net::node_id>(1, g.node_count() / 5)) {
        const auto result = ns.locate(port, client);
        EXPECT_TRUE(result.found) << GetParam().label;
        EXPECT_EQ(result.where, 1);
    }
}

TEST(scale, thousand_node_hypercube_locates_fast) {
    // Scale sanity: 1024 nodes, 32 services, all locates resolve and the
    // whole drill stays well under the event cap.
    const int d = 10;
    const auto g = net::make_hypercube(d);
    sim::simulator sim{g};
    const strategies::hypercube_strategy strategy{d};
    runtime::name_service ns{sim, strategy};
    for (int s = 0; s < 32; ++s) {
        const auto port = core::port_of("scale" + std::to_string(s));
        const auto server = static_cast<net::node_id>(s * 31 % 1024);
        ns.register_server(port, server);
        const auto result = ns.locate(port, static_cast<net::node_id>(1023 - s));
        ASSERT_TRUE(result.found);
        ASSERT_EQ(result.where, server);
        // m = 2*sqrt(1024) = 64 addressed nodes; routed hops stay near it.
        EXPECT_LE(result.nodes_queried, 32);
    }
}

INSTANTIATE_TEST_SUITE_P(native_topologies, native_integration,
                         ::testing::ValuesIn(native_cases()),
                         [](const ::testing::TestParamInfo<native_case>& info) {
                             std::string name = info.param.label;
                             for (char& c : name)
                                 if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                             return name;
                         });

}  // namespace
}  // namespace mm
