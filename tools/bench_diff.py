#!/usr/bin/env python3
"""Diff two BENCH_*.json trajectory files (docs/BENCHMARKS.md schema).

Flattens every aggregate to ``binary/metric -> value``, prints each metric
whose relative change exceeds the threshold (plus metrics that appeared,
disappeared, or flipped to/from null/zero), and reports shape-check flips.

Exit status: 0 when nothing exceeded the threshold, 1 when something did,
2 on bad input.  Use ``--strict`` in CI to also fail on added/removed
metrics.

Usage:
    python3 tools/bench_diff.py BENCH_seed.json BENCH_new.json
    python3 tools/bench_diff.py --threshold 0.10 old.json new.json
    python3 tools/bench_diff.py --self-test
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path


def flatten_metrics(aggregate: dict,
                    units: set[str] | None = None) -> dict[str, float | None]:
    """Flattens to ``binary/metric -> value``; with ``units``, keeps only
    metrics whose ``unit`` field is in that set (the deterministic-counter
    gate passes the counter units, leaving wall-clock metrics out)."""
    out: dict[str, float | None] = {}
    for result in aggregate.get("results", []):
        report = result.get("report") or {}
        for metric in report.get("metrics", []):
            if units is not None and metric.get("unit", "") not in units:
                continue
            out[f'{result["binary"]}/{metric["name"]}'] = metric["value"]
    return out


def flatten_checks(aggregate: dict) -> dict[str, bool]:
    out: dict[str, bool] = {}
    for result in aggregate.get("results", []):
        report = result.get("report") or {}
        for check in report.get("checks", []):
            out[f'{result["binary"]}/{check["what"]}'] = bool(check["ok"])
    return out


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"bench_diff: cannot read {path}: {err}")
    if "results" not in data:
        raise SystemExit(f"bench_diff: {path} is not a BENCH_*.json aggregate (no 'results')")
    return data


def diff(old_path: str, new_path: str, threshold: float, strict: bool,
         units: set[str] | None = None) -> int:
    old_aggregate = load(old_path)
    new_aggregate = load(new_path)
    old = flatten_metrics(old_aggregate, units)
    new = flatten_metrics(new_aggregate, units)

    regressions = 0
    structural = 0
    for key in sorted(old.keys() | new.keys()):
        old_value, new_value = old.get(key), new.get(key)
        if key not in old:
            print(f"[added]   {key} = {new_value}")
            structural += 1
        elif key not in new:
            print(f"[removed] {key} (was {old_value})")
            structural += 1
        elif old_value is None or new_value is None or old_value == 0:
            # null (NaN/inf) or zero baselines cannot take a relative diff.
            if old_value != new_value:
                print(f"[changed] {key}: {old_value} -> {new_value}")
                regressions += 1
        else:
            rel = (new_value - old_value) / abs(old_value)
            if abs(rel) > threshold:
                print(f"[delta]   {key}: {old_value:.6g} -> {new_value:.6g}  ({rel:+.1%})")
                regressions += 1

    old_checks = flatten_checks(old_aggregate)
    new_checks = flatten_checks(new_aggregate)
    for key in sorted(old_checks.keys() & new_checks.keys()):
        if old_checks[key] and not new_checks[key]:
            print(f"[check]   {key}: PASS -> FAIL")
            regressions += 1

    flagged = regressions + (structural if strict else 0)
    if flagged == 0:
        scope = f" (units: {', '.join(sorted(units))})" if units else ""
        print(f"bench_diff: no metric moved more than {threshold:.0%} "
              f"({len(old.keys() | new.keys())} metrics compared){scope}")
    return 1 if flagged else 0


def self_test() -> int:
    """Round-trip smoke test over synthetic aggregates (run by CTest)."""
    base = {
        "schema": "mm-bench-v1",
        "results": [
            {
                "binary": "bench_x",
                "exit_code": 0,
                "failed": False,
                "wall_seconds": 1,
                "report": {
                    "metrics": [
                        {"name": "speed", "value": 100.0, "unit": "ops"},
                        {"name": "stable", "value": 5.0, "unit": ""},
                        {"name": "gone", "value": 1.0, "unit": ""},
                    ],
                    "checks": [{"what": "fits", "ok": True}],
                },
            }
        ],
    }
    import copy

    changed = copy.deepcopy(base)
    metrics = changed["results"][0]["report"]["metrics"]
    metrics[0]["value"] = 120.0          # +20%: must be flagged
    metrics[1]["value"] = 5.1            # +2%: inside the default threshold
    del metrics[2]                       # removed: structural, strict-only
    changed["results"][0]["report"]["checks"][0]["ok"] = False  # check flip

    with tempfile.TemporaryDirectory() as tmp:
        old_path = Path(tmp) / "old.json"
        new_path = Path(tmp) / "new.json"
        old_path.write_text(json.dumps(base))
        new_path.write_text(json.dumps(changed))

        assert diff(str(old_path), str(old_path), 0.05, strict=False) == 0, \
            "identical files must not flag"
        assert diff(str(old_path), str(new_path), 0.05, strict=False) == 1, \
            "20% delta and check flip must flag"
        assert diff(str(old_path), str(new_path), 0.50, strict=True) == 1, \
            "strict mode must flag the removed metric"
        # The unit filter scopes the diff: restricted to "ops" the +20%
        # regression is still caught, but restricted to "hops" (absent here)
        # only the check flip remains -- checks are never filtered out.
        assert diff(str(old_path), str(new_path), 0.05, strict=True,
                    units={"ops"}) == 1, \
            "unit filter must keep the ops-unit regression"
        changed["results"][0]["report"]["checks"][0]["ok"] = True
        new_path.write_text(json.dumps(changed))
        assert diff(str(old_path), str(new_path), 0.05, strict=True,
                    units={"hops"}) == 0, \
            "unit filter must drop metrics outside the named units"
        assert diff(str(old_path), str(new_path), 0.0, strict=False,
                    units={""}) == 1, \
            "zero threshold over unitless metrics must flag the 2% drift"

        bad = Path(tmp) / "bad.json"
        bad.write_text("{}")
        try:
            diff(str(old_path), str(bad), 0.05, strict=False)
        except SystemExit:
            pass
        else:
            raise AssertionError("non-aggregate input must be rejected")

    print("bench_diff self-test: OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("old", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("new", nargs="?", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="relative change that counts as a regression (default 0.05)")
    parser.add_argument("--strict", action="store_true",
                        help="also fail on added/removed metrics")
    parser.add_argument("--units", default=None,
                        help="comma-separated list of metric units to compare; "
                             "metrics with any other unit are ignored "
                             "(e.g. --units hops,operations for the "
                             "deterministic-counter gate)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in smoke test and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.old or not args.new:
        parser.error("need OLD and NEW aggregate paths (or --self-test)")
    units = None
    if args.units is not None:
        units = {unit.strip() for unit in args.units.split(",")}
    return diff(args.old, args.new, args.threshold, args.strict, units)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SystemExit as err:
        if isinstance(err.code, str):
            print(err.code, file=sys.stderr)
            sys.exit(2)
        raise
