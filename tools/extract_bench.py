#!/usr/bin/env python3
"""Slice one binary's report out of a BENCH_*.json aggregate.

The CI jobs upload per-bench artifacts (scaling sweep, parallel sweep, perf
phase timers) next to the full aggregate; this tool replaces the
copy-pasted inline-python extraction steps.  It exits non-zero when the
bench is missing from the aggregate or its run failed, so a CI step using
it goes red instead of uploading a stale or broken artifact.

Usage:
    python3 tools/extract_bench.py AGGREGATE BINARY OUTPUT
    python3 tools/extract_bench.py build/BENCH_seed.json bench_e18_parallel \
        build/BENCH_e18_parallel.json
"""

from __future__ import annotations

import json
import sys


def extract(aggregate_path: str, binary: str, output_path: str) -> int:
    try:
        with open(aggregate_path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"extract_bench: cannot read {aggregate_path}: {err}", file=sys.stderr)
        return 2
    results = data.get("results")
    if not isinstance(results, list):
        print(f"extract_bench: {aggregate_path} is not a BENCH_*.json aggregate "
              "(no 'results')", file=sys.stderr)
        return 2
    matches = [r for r in results if r.get("binary") == binary]
    if not matches:
        print(f"extract_bench: {binary} missing from {aggregate_path}", file=sys.stderr)
        return 1
    report = matches[0]
    if report.get("failed"):
        print(f"extract_bench: {binary} is marked failed in {aggregate_path}",
              file=sys.stderr)
        return 1
    try:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    except OSError as err:
        print(f"extract_bench: cannot write {output_path}: {err}", file=sys.stderr)
        return 2
    print(f"extract_bench: wrote {output_path} ({binary})")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) != 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return extract(argv[1], argv[2], argv[3])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
