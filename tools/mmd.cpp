// mmd - the match-making daemon: hosts the rendezvous nodes of a
// match-making universe and serves register / deregister / locate /
// migrate over framed TCP on loopback.
//
//   mmd [--port P] [--nodes N] [--strategy hash|broadcast|sweep|central]
//       [--replicas R] [--host-first F] [--host-count C]
//
// Prints "LISTENING <port>" on stdout once the socket is bound (the line
// scripts and tests parse to discover an ephemeral port), serves until
// SIGTERM or SIGINT, then prints a one-line stats summary and exits 0 -
// the clean-shutdown contract tools/loopback_smoke.sh asserts.
//
// Several daemons can split one universe (--host-first/--host-count) with
// clients routing each node range to its daemon; a frame for a node this
// daemon does not host is counted bad and dropped, never crashed on.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "daemon/mmd_server.h"
#include "daemon/strategy_factory.h"
#include "transport/tcp_transport.h"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

[[noreturn]] void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--port P] [--nodes N] [--strategy hash|broadcast|sweep|central]\n"
                 "          [--replicas R] [--host-first F] [--host-count C]\n",
                 argv0);
    std::exit(2);
}

long arg_value(int argc, char** argv, int& i, const char* argv0) {
    if (i + 1 >= argc) usage(argv0);
    return std::strtol(argv[++i], nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
    long port = 0;
    long nodes = 32;
    long replicas = 3;
    long host_first = 0;
    long host_count = -1;
    std::string strategy_name = "hash";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--port") == 0)
            port = arg_value(argc, argv, i, argv[0]);
        else if (std::strcmp(argv[i], "--nodes") == 0)
            nodes = arg_value(argc, argv, i, argv[0]);
        else if (std::strcmp(argv[i], "--replicas") == 0)
            replicas = arg_value(argc, argv, i, argv[0]);
        else if (std::strcmp(argv[i], "--host-first") == 0)
            host_first = arg_value(argc, argv, i, argv[0]);
        else if (std::strcmp(argv[i], "--host-count") == 0)
            host_count = arg_value(argc, argv, i, argv[0]);
        else if (std::strcmp(argv[i], "--strategy") == 0) {
            if (i + 1 >= argc) usage(argv[0]);
            strategy_name = argv[++i];
        } else {
            usage(argv[0]);
        }
    }
    if (port < 0 || port > 65535 || nodes <= 0 || replicas <= 0) usage(argv[0]);

    try {
        const auto strategy = mm::daemon::make_strategy(
            strategy_name, static_cast<mm::net::node_id>(nodes), static_cast<int>(replicas));

        mm::transport::tcp_transport net;
        const auto bound = net.listen_on(static_cast<std::uint16_t>(port));

        mm::daemon::mmd_server server{net, *strategy,
                                      static_cast<mm::net::node_id>(host_first),
                                      static_cast<mm::net::node_id>(host_count)};

        std::signal(SIGTERM, on_signal);
        std::signal(SIGINT, on_signal);
        std::signal(SIGPIPE, SIG_IGN);

        std::printf("LISTENING %u\n", static_cast<unsigned>(bound));
        std::fflush(stdout);

        server.serve(g_stop);

        const auto& s = server.stat();
        const auto& t = net.stat();
        std::printf("mmd: served posts=%lld removes=%lld queries=%lld hits=%lld misses=%lld "
                    "bad=%lld frames_in=%lld frames_out=%lld\n",
                    static_cast<long long>(s.posts), static_cast<long long>(s.removes),
                    static_cast<long long>(s.queries), static_cast<long long>(s.hits),
                    static_cast<long long>(s.misses), static_cast<long long>(s.bad_frames),
                    static_cast<long long>(t.frames_received),
                    static_cast<long long>(t.frames_sent));
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mmd: %s\n", e.what());
        return 1;
    }
}
