#!/bin/sh
# loopback_smoke.sh BUILD_DIR - the two-process daemon smoke test CI runs:
# start the real mmd on an ephemeral loopback port, run the mmd_roundtrip
# client from a second process against it, SIGTERM the daemon, and assert
# both exited cleanly (client 0; daemon 0 after a clean SIGTERM shutdown).
set -eu

build_dir=${1:?usage: loopback_smoke.sh BUILD_DIR}
mmd_bin="$build_dir/tools/mmd"
client_bin="$build_dir/examples/mmd_roundtrip"
out=$(mktemp)
trap 'rm -f "$out"; [ -n "${mmd_pid:-}" ] && kill "$mmd_pid" 2>/dev/null || true' EXIT

[ -x "$mmd_bin" ] || { echo "missing $mmd_bin (build first)"; exit 1; }
[ -x "$client_bin" ] || { echo "missing $client_bin (build first)"; exit 1; }

"$mmd_bin" --port 0 --nodes 16 --strategy hash --replicas 3 > "$out" &
mmd_pid=$!

# The first stdout line is "LISTENING <port>"; wait for it.
port=""
for _ in $(seq 1 100); do
    port=$(head -n 1 "$out" 2>/dev/null | awk '/^LISTENING/ {print $2}')
    [ -n "$port" ] && break
    kill -0 "$mmd_pid" 2>/dev/null || { echo "mmd died before listening"; cat "$out"; exit 1; }
    sleep 0.05
done
[ -n "$port" ] || { echo "mmd never announced its port"; cat "$out"; exit 1; }
echo "mmd (pid $mmd_pid) listening on $port"

# Capture both children's exit codes explicitly: under `set -e` a bare
# failing command aborts the script before `$?` can be read, which used to
# leave the daemon's SIGTERM exit status masked behind the final wait.
client_rc=0
"$client_bin" --connect "$port" || client_rc=$?
echo "client exit: $client_rc"

kill -TERM "$mmd_pid"
mmd_rc=0
wait "$mmd_pid" || mmd_rc=$?
mmd_pid=""
echo "daemon exit: $mmd_rc"
cat "$out"

[ "$client_rc" -eq 0 ] || { echo "FAIL: client round trip failed (exit $client_rc)"; exit "$client_rc"; }
[ "$mmd_rc" -eq 0 ] || { echo "FAIL: daemon shutdown was not clean (exit $mmd_rc)"; exit "$mmd_rc"; }
echo "loopback smoke OK"
