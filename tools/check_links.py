#!/usr/bin/env python3
"""Fail on broken relative links in the repo's markdown docs.

Scans README.md and docs/*.md for inline markdown links ``[text](target)``
and verifies that every relative target resolves to an existing file or
directory (anchors are stripped; absolute URLs and mailto: are skipped).
Exits non-zero listing every broken link, so CI can gate on doc rot.

usage: check_links.py [repo_root]
"""
import pathlib
import re
import sys

# Inline links, tolerating one level of nested brackets in the text (e.g.
# image-in-link).  Reference-style definitions are rare here; ignored.
LINK = re.compile(r"\[(?:[^\[\]]|\[[^\]]*\])*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(md: pathlib.Path) -> list[str]:
    errors = []
    text = md.read_text(encoding="utf-8")
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{md}:{lineno}: broken link -> {target}")
    return errors


def main() -> int:
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")
    files = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    errors = []
    checked = 0
    for md in files:
        if not md.exists():
            errors.append(f"{md}: expected markdown file is missing")
            continue
        checked += 1
        errors.extend(check_file(md))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {checked} markdown file(s), {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
