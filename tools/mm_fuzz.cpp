// mm_fuzz - seeded differential fuzz driver over the execution engines.
//
// Each seed names one random workload config (topology x strategy x policy
// x churn/crash mix; runtime/replay.h).  The config is recorded under the
// sweep's reference engine and replayed under every other - serial,
// serial-without-batching, and parallel at 2/4/8 workers - diffing the full
// delivery trace, counter digests, per-op results, and latency sets.  Any
// divergence is localized to the first bad record or field and fails the
// run, so CI can use `mm_fuzz --seeds 8` as a cheap cross-engine canary.
//
// A diverging seed can then be handed to --minimize, the greedy config
// shrinker (docs/REPLAY.md): it repeatedly halves the topology parameters,
// the operation count, and the port population, and zeroes the optional mix
// weights, keeping each shrink only while the divergence still reproduces.
// The fixpoint - typically a handful of nodes and a few operations - is
// printed as the minimal reproducer.
//
// `mm_fuzz --scenario NAME` switches the canary from random configs to the
// named catalog entry of runtime/scenario.h: each seed runs the scenario
// (Zipf skew, flash crowds, region outages, load-aware rebalancing) through
// diff_scenario_engines' two engine equality classes - the parallel sweep
// {par1, par2, par4, par8} and the serial pair {batched, hop-by-hop} - and
// any class-internal drift fails the run (docs/SCENARIOS.md).
//
// Usage: mm_fuzz [--seeds N] [--start S] [--quiet] [--scenario NAME]
//               | --minimize SEED
//   --seeds N      how many consecutive seeds to run (default 8)
//   --start S      first seed (default 1)
//   --quiet        only print failures and the final summary
//   --scenario X   diff the named scenario instead of random configs
//   --minimize S   shrink diverging seed S to a minimal reproducing config
// Exit status: 0 when every seed agreed (or the minimizer finished), 1 on
// any divergence (or when --minimize got a seed that does not diverge),
// 2 on usage.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "runtime/replay.h"
#include "runtime/scenario.h"

namespace {

using mm::runtime::replay_config;
using mm::runtime::replay_topology;

// One greedy shrink pass: each rule proposes a strictly smaller config (or
// declines by returning false when it is already at its floor).
struct shrink_rule {
    const char* what;
    std::function<bool(replay_config&)> apply;
};

template <class Int>
bool halve_int(Int& v, Int floor_value) {
    if (v / 2 < floor_value) return false;
    v /= 2;
    return true;
}

bool zero_weight(double& w) {
    if (w == 0.0) return false;
    w = 0.0;
    return true;
}

std::vector<shrink_rule> shrink_rules(const replay_config& cfg) {
    // Topology floors keep the config in each family's valid range (a 2x2
    // grid, a 1-dimensional hypercube, fanout-2 hierarchies).
    const std::int32_t p1_floor = cfg.topology == replay_topology::hypercube ? 1 : 2;
    std::vector<shrink_rule> rules;
    rules.push_back({"halve operations",
                     [](replay_config& c) { return halve_int(c.workload.operations, 1); }});
    rules.push_back({"halve p1", [p1_floor](replay_config& c) { return halve_int(c.p1, p1_floor); }});
    rules.push_back({"halve p2", [](replay_config& c) {
                         return c.topology == replay_topology::hypercube
                                    ? false  // p2 unused there
                                    : halve_int(c.p2, 2);
                     }});
    rules.push_back(
        {"halve ports", [](replay_config& c) { return halve_int(c.workload.ports, 1); }});
    rules.push_back({"halve servers per port", [](replay_config& c) {
                         return halve_int(c.workload.servers_per_port, 1);
                     }});
    rules.push_back({"drop crash mix",
                     [](replay_config& c) { return zero_weight(c.workload.crash_weight); }});
    rules.push_back({"drop churn mix", [](replay_config& c) {
                         const bool joins = zero_weight(c.workload.join_weight);
                         const bool leaves = zero_weight(c.workload.leave_weight);
                         const bool rejoins = zero_weight(c.workload.rejoin_weight);
                         return joins || leaves || rejoins;
                     }});
    rules.push_back({"drop migrate mix",
                     [](replay_config& c) { return zero_weight(c.workload.migrate_weight); }});
    rules.push_back({"drop register mix",
                     [](replay_config& c) { return zero_weight(c.workload.register_weight); }});
    return rules;
}

int minimize(std::uint64_t seed) {
    replay_config cfg = mm::runtime::random_config(seed);
    mm::runtime::diff_report report = mm::runtime::diff_engines(cfg);
    if (report.ok) {
        std::printf("seed %llu does not diverge; nothing to minimize\n",
                    static_cast<unsigned long long>(seed));
        return 1;
    }
    std::printf("seed %llu diverges:   %s\n%s\n", static_cast<unsigned long long>(seed),
                cfg.describe().c_str(), report.divergence.c_str());

    int shrinks = 0;
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (const auto& rule : shrink_rules(cfg)) {
            replay_config candidate = cfg;
            if (!rule.apply(candidate)) continue;
            const auto r = mm::runtime::diff_engines(candidate);
            if (r.ok) continue;  // shrink lost the bug; keep the bigger config
            cfg = candidate;
            report = r;
            ++shrinks;
            std::printf("  shrink %2d (%s): still diverges   %s\n", shrinks, rule.what,
                        cfg.describe().c_str());
            progressed = true;
            break;  // restart the pass from the most aggressive rule
        }
    }

    std::printf("\nminimal reproducer after %d shrinks:\n  %s\n%s\n", shrinks,
                cfg.describe().c_str(), report.divergence.c_str());
    std::printf("(nodes: %d, operations: %d)\n", static_cast<int>(cfg.node_count()),
                cfg.workload.operations);
    return 0;
}

// Seeded sweep over one named scenario: same loop shape as the random-config
// canary, but every seed reruns the same declared hostility with a fresh
// draw stream.
int fuzz_scenario(const std::string& name, std::uint64_t start, std::uint64_t seeds,
                  bool quiet) {
    const auto known = mm::runtime::scenario_names();
    if (std::find(known.begin(), known.end(), name) == known.end()) {
        std::fprintf(stderr, "mm_fuzz: unknown scenario '%s'; known:", name.c_str());
        for (const auto& n : known) std::fprintf(stderr, " %s", n.c_str());
        std::fprintf(stderr, "\n");
        return 2;
    }
    std::uint64_t failures = 0;
    for (std::uint64_t seed = start; seed < start + seeds; ++seed) {
        const auto report = mm::runtime::diff_scenario_engines(name, seed);
        if (report.ok) {
            if (!quiet)
                std::printf("seed %llu: ok   scenario %s\n",
                            static_cast<unsigned long long>(seed), name.c_str());
            continue;
        }
        ++failures;
        std::printf("seed %llu: DIVERGED   scenario %s\n%s\n",
                    static_cast<unsigned long long>(seed), name.c_str(),
                    report.divergence.c_str());
    }
    std::printf("mm_fuzz: %llu/%llu seeds agreed across all engines (scenario %s)\n",
                static_cast<unsigned long long>(seeds - failures),
                static_cast<unsigned long long>(seeds), name.c_str());
    return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t seeds = 8;
    std::uint64_t start = 1;
    bool quiet = false;
    std::string scenario;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seeds" && i + 1 < argc) {
            seeds = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--start" && i + 1 < argc) {
            start = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--minimize" && i + 1 < argc) {
            return minimize(std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--scenario" && i + 1 < argc) {
            scenario = argv[++i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr,
                         "usage: mm_fuzz [--seeds N] [--start S] [--quiet] "
                         "[--scenario NAME] | --minimize SEED\n");
            return 2;
        }
    }
    if (!scenario.empty()) return fuzz_scenario(scenario, start, seeds, quiet);

    std::uint64_t failures = 0;
    for (std::uint64_t seed = start; seed < start + seeds; ++seed) {
        const mm::runtime::replay_config cfg = mm::runtime::random_config(seed);
        const mm::runtime::diff_report report = mm::runtime::diff_engines(cfg);
        if (report.ok) {
            if (!quiet)
                std::printf("seed %llu: ok   %s\n", static_cast<unsigned long long>(seed),
                            cfg.describe().c_str());
            continue;
        }
        ++failures;
        std::printf("seed %llu: DIVERGED   %s\n%s\n",
                    static_cast<unsigned long long>(seed), cfg.describe().c_str(),
                    report.divergence.c_str());
    }
    std::printf("mm_fuzz: %llu/%llu seeds agreed across all engines\n",
                static_cast<unsigned long long>(seeds - failures),
                static_cast<unsigned long long>(seeds));
    return failures == 0 ? 0 : 1;
}
