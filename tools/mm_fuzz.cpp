// mm_fuzz - seeded differential fuzz driver over the execution engines.
//
// Each seed names one random workload config (topology x strategy x policy
// x churn/crash mix; runtime/replay.h).  The config is recorded under the
// sweep's reference engine and replayed under every other - serial,
// serial-without-batching, and parallel at 2/4/8 workers - diffing the full
// delivery trace, counter digests, per-op results, and latency sets.  Any
// divergence is localized to the first bad record or field and fails the
// run, so CI can use `mm_fuzz --seeds 8` as a cheap cross-engine canary and
// a developer can minimize a failure by re-running its seed alone.
//
// Usage: mm_fuzz [--seeds N] [--start S] [--quiet]
//   --seeds N   how many consecutive seeds to run (default 8)
//   --start S   first seed (default 1)
//   --quiet     only print failures and the final summary
// Exit status: 0 when every seed agreed, 1 on any divergence, 2 on usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runtime/replay.h"

int main(int argc, char** argv) {
    std::uint64_t seeds = 8;
    std::uint64_t start = 1;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seeds" && i + 1 < argc) {
            seeds = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--start" && i + 1 < argc) {
            start = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "usage: mm_fuzz [--seeds N] [--start S] [--quiet]\n");
            return 2;
        }
    }

    std::uint64_t failures = 0;
    for (std::uint64_t seed = start; seed < start + seeds; ++seed) {
        const mm::runtime::replay_config cfg = mm::runtime::random_config(seed);
        const mm::runtime::diff_report report = mm::runtime::diff_engines(cfg);
        if (report.ok) {
            if (!quiet)
                std::printf("seed %llu: ok   %s\n", static_cast<unsigned long long>(seed),
                            cfg.describe().c_str());
            continue;
        }
        ++failures;
        std::printf("seed %llu: DIVERGED   %s\n%s\n",
                    static_cast<unsigned long long>(seed), cfg.describe().c_str(),
                    report.divergence.c_str());
    }
    std::printf("mm_fuzz: %llu/%llu seeds agreed across all engines\n",
                static_cast<unsigned long long>(seeds - failures),
                static_cast<unsigned long long>(seeds));
    return failures == 0 ? 0 : 1;
}
