// mm_trace - record, replay, and inspect deterministic event traces.
//
// The record/replay workflow (docs/REPLAY.md): record a workload's full
// delivery trace once, commit it, and every later build - any compiler, any
// engine - must replay it bit-identically.  Trace files are self-describing
// (the workload config is embedded), so replaying needs nothing but the
// file.
//
// Usage:
//   mm_trace record <out.trace> (--golden NAME | --seed N) [--engine E]
//       Record a trace: --golden smooth|churn are the curated canary
//       configs (burst arrivals - no libm in the arrival process; "churn"
//       adds the crash + membership mix), --seed N is fuzz config N
//       (runtime/replay.h random_config).  The default engine is the
//       config's sweep reference.
//   mm_trace replay <in.trace> [--engine E]... [--dump-on-fail <path>]
//       Replay under each named engine (default: the config's full sweep,
//       runtime/replay.h engine_sweep).  On divergence, prints
//       the first bad record with context and exits 1; --dump-on-fail
//       re-records the trace under the failing engine to <path> for
//       offline diffing (the CI canary uploads it as an artifact).
//   mm_trace inspect <in.trace> [--records N]
//       Print the embedded config, entry counts, final digest, and the
//       first N delivery records (default 10).
// Engines: "serial", "serial-nobatch", "par<k>", "par-nobatch<k>".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "runtime/replay.h"

namespace {

using mm::runtime::engine_config;
using mm::runtime::replay_config;

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
    std::ifstream in{path, std::ios::binary};
    if (!in) return false;
    out.assign(std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{});
    return in.good() || in.eof();
}

bool write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return out.good();
}

std::optional<engine_config> parse_engine(const std::string& name) {
    if (name == "serial") return engine_config{.workers = 0, .batched = true};
    if (name == "serial-nobatch") return engine_config{.workers = 0, .batched = false};
    for (const auto& [prefix, batched] :
         {std::pair<std::string, bool>{"par-nobatch", false}, {"par", true}}) {
        if (name.rfind(prefix, 0) == 0 && name.size() > prefix.size()) {
            const int workers = std::atoi(name.c_str() + prefix.size());
            if (workers >= 1) return engine_config{.workers = workers, .batched = batched};
        }
    }
    return std::nullopt;
}

// The committed canary configs (tests/golden/).  Burst arrivals keep libm
// out of the arrival process (std::log is the one libc-dependent call in
// run_workload), so the recorded bytes are identical across compilers.
//
// "smooth" is the full-equality-set canary: no crashes, no churn, so the
// plain serial engine, its hop-by-hop twin, and parallel 2/4/8 all replay
// it (the hop-by-hop engine held to per-tick delivery multisets, the rest
// record-for-record; runtime/replay.h replay_order).  "churn" adds the
// crash + membership mix - the devolution and ordering machinery most
// likely to drift under a hot-path refactor - and is replayed by the
// par1..par8 batched set.
std::optional<replay_config> golden_config(const std::string& name) {
    replay_config cfg;
    cfg.topology = mm::runtime::replay_topology::grid;
    cfg.p1 = 8;
    cfg.p2 = 8;
    cfg.strategy = mm::runtime::replay_strategy::native;
    cfg.policy.entry_ttl = -1;
    cfg.policy.refresh_period = 0;
    cfg.policy.client_caching = true;
    cfg.policy.valiant_relay = false;
    auto& wl = cfg.workload;
    wl.seed = 20260807;
    wl.operations = 300;
    wl.mean_interarrival = 0;  // burst: no libm anywhere in the run
    wl.ports = 8;
    wl.servers_per_port = 2;
    if (name == "smooth") {
        wl.locate_weight = 0.80;
        wl.register_weight = 0.10;
        wl.migrate_weight = 0.10;
        wl.crash_weight = 0;  // workload_options defaults to a nonzero mix
        return cfg;
    }
    if (name == "churn") {
        wl.locate_weight = 0.70;
        wl.register_weight = 0.05;
        wl.migrate_weight = 0.05;
        wl.crash_weight = 0.04;
        wl.crash_downtime = 25;
        wl.join_weight = 0.05;
        wl.leave_weight = 0.03;
        wl.rejoin_weight = 0.02;
        wl.join_edges = 2;
        return cfg;
    }
    return std::nullopt;
}

int cmd_record(int argc, char** argv) {
    if (argc < 1) {
        std::fprintf(stderr, "mm_trace record: missing output path\n");
        return 2;
    }
    const std::string out_path = argv[0];
    std::optional<replay_config> cfg;
    std::optional<engine_config> engine;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--golden" && i + 1 < argc) {
            cfg = golden_config(argv[++i]);
            if (!cfg) {
                std::fprintf(stderr, "mm_trace record: unknown golden config\n");
                return 2;
            }
        } else if (arg == "--seed" && i + 1 < argc) {
            cfg = mm::runtime::random_config(std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--engine" && i + 1 < argc) {
            const auto e = parse_engine(argv[++i]);
            if (!e) {
                std::fprintf(stderr, "mm_trace record: unknown engine\n");
                return 2;
            }
            engine = *e;
        } else {
            std::fprintf(stderr, "mm_trace record: unknown flag %s\n", arg.c_str());
            return 2;
        }
    }
    if (!cfg) {
        std::fprintf(stderr, "mm_trace record: need --golden NAME or --seed N\n");
        return 2;
    }
    // Default to the config's sweep reference: recording a crash/churn or
    // Valiant config under the plain serial engine would produce a trace
    // the parallel engines legitimately cannot replay (runtime/replay.h).
    if (!engine) engine = mm::runtime::engine_sweep(*cfg).front();
    const mm::sim::trace t = mm::runtime::record_trace(*cfg, *engine);
    const auto bytes = mm::sim::encode_trace(t);
    if (!write_file(out_path, bytes)) {
        std::fprintf(stderr, "mm_trace record: cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::printf("recorded %s under %s: %zu records, %zu digests, %zu bytes\n",
                cfg->describe().c_str(), engine->name().c_str(), t.records.size(),
                t.digests.size(), bytes.size());
    return 0;
}

int cmd_replay(int argc, char** argv) {
    if (argc < 1) {
        std::fprintf(stderr, "mm_trace replay: missing trace path\n");
        return 2;
    }
    const std::string in_path = argv[0];
    std::vector<engine_config> engines;
    std::string dump_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--engine" && i + 1 < argc) {
            const auto e = parse_engine(argv[++i]);
            if (!e) {
                std::fprintf(stderr, "mm_trace replay: unknown engine\n");
                return 2;
            }
            engines.push_back(*e);
        } else if (arg == "--dump-on-fail" && i + 1 < argc) {
            dump_path = argv[++i];
        } else {
            std::fprintf(stderr, "mm_trace replay: unknown flag %s\n", arg.c_str());
            return 2;
        }
    }
    std::vector<std::uint8_t> bytes;
    if (!read_file(in_path, bytes)) {
        std::fprintf(stderr, "mm_trace replay: cannot read %s\n", in_path.c_str());
        return 1;
    }
    mm::sim::trace reference;
    std::string error;
    if (!mm::sim::parse_trace(bytes.data(), bytes.size(), reference, &error)) {
        std::fprintf(stderr, "mm_trace replay: %s: %s\n", in_path.c_str(), error.c_str());
        return 1;
    }
    replay_config cfg;
    if (!mm::runtime::decode_replay_config(reference.config, cfg)) {
        std::fprintf(stderr, "mm_trace replay: undecodable embedded config\n");
        return 1;
    }
    if (engines.empty()) engines = mm::runtime::engine_sweep(cfg);
    std::printf("replaying %s (%zu records, %zu digests)\n", cfg.describe().c_str(),
                reference.records.size(), reference.digests.size());
    int failures = 0;
    for (const engine_config& engine : engines) {
        const auto report = mm::runtime::replay_trace(reference, engine);
        if (report.ok) {
            std::printf("  %-16s ok\n", engine.name().c_str());
            continue;
        }
        ++failures;
        std::printf("  %-16s DIVERGED\n%s\n", engine.name().c_str(), report.failure.c_str());
        if (!dump_path.empty()) {
            const auto actual = mm::runtime::record_trace(cfg, engine);
            if (write_file(dump_path, mm::sim::encode_trace(actual)))
                std::printf("  wrote the %s engine's actual trace to %s\n",
                            engine.name().c_str(), dump_path.c_str());
        }
    }
    return failures == 0 ? 0 : 1;
}

int cmd_inspect(int argc, char** argv) {
    if (argc < 1) {
        std::fprintf(stderr, "mm_trace inspect: missing trace path\n");
        return 2;
    }
    const std::string in_path = argv[0];
    std::size_t show = 10;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--records" && i + 1 < argc) {
            show = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr, "mm_trace inspect: unknown flag %s\n", arg.c_str());
            return 2;
        }
    }
    std::vector<std::uint8_t> bytes;
    if (!read_file(in_path, bytes)) {
        std::fprintf(stderr, "mm_trace inspect: cannot read %s\n", in_path.c_str());
        return 1;
    }
    mm::sim::trace t;
    std::string error;
    if (!mm::sim::parse_trace(bytes.data(), bytes.size(), t, &error)) {
        std::fprintf(stderr, "mm_trace inspect: %s: %s\n", in_path.c_str(), error.c_str());
        return 1;
    }
    replay_config cfg;
    if (mm::runtime::decode_replay_config(t.config, cfg))
        std::printf("config:  %s\n", cfg.describe().c_str());
    else
        std::printf("config:  <undecodable, %zu bytes>\n", t.config.size());
    std::printf("entries: %zu delivery records, %zu tick digests, %zu bytes on disk\n",
                t.records.size(), t.digests.size(), bytes.size());
    const auto& s = t.summary;
    std::printf("summary: now=%lld hops=%lld sent=%lld delivered=%lld dropped=%lld "
                "membership=%lld traffic_hash=%016llx\n",
                static_cast<long long>(s.now), static_cast<long long>(s.hops),
                static_cast<long long>(s.sent), static_cast<long long>(s.delivered),
                static_cast<long long>(s.dropped),
                static_cast<long long>(s.membership_events),
                static_cast<unsigned long long>(s.traffic_hash));
    for (std::size_t i = 0; i < t.records.size() && i < show; ++i) {
        const auto& r = t.records[i];
        std::printf("  [%zu] t=%lld node=%d kind=%d port=%llu %d->%d subject=%d tag=%lld\n",
                    i, static_cast<long long>(r.at), r.node, r.kind,
                    static_cast<unsigned long long>(r.port), r.source, r.destination,
                    r.subject, static_cast<long long>(r.tag));
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: mm_trace record <out.trace> (--golden NAME | --seed N) [--engine E]\n"
                     "       mm_trace replay <in.trace> [--engine E]... [--dump-on-fail F]\n"
                     "       mm_trace inspect <in.trace> [--records N]\n");
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "record") return cmd_record(argc - 2, argv + 2);
    if (cmd == "replay") return cmd_replay(argc - 2, argv + 2);
    if (cmd == "inspect") return cmd_inspect(argc - 2, argv + 2);
    std::fprintf(stderr, "mm_trace: unknown command %s\n", cmd.c_str());
    return 2;
}
