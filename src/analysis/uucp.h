// uucp.h - the UUCPnet statistics of Section 3.6.
//
// The paper tabulates "the state of the known sites of UUCPnet at August
// 15, 1984": 1916 sites, 3848 edges (EUnet: 153 sites, 211 edges), with a
// heavy-tailed degree distribution topped by ihnp4 at degree 641.  The
// printed table is reproduced as data here; nine low-population rows
// (degrees 16-24) are illegible in the surviving scan and are reconstructed
// to match the published totals exactly (marked `reconstructed`).
//
// Also included: the paper's balanced-tree depth formulas.  For degree
// profile d(i) = c * i^(1+eps) the 'factorial' relation gives
// l ~ log n / ((1+eps) loglog n); for d(i) = c * 2^(eps*i) it gives
// l ~ sqrt((2/eps) log n) + O(1).
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"

namespace mm::analysis {

struct degree_row {
    int sites = 0;
    int degree = 0;
    bool reconstructed = false;  // row lost in the scan, rebuilt from totals
};

// The August 15, 1984 UUCPnet degree table (Section 3.6).
[[nodiscard]] const std::vector<degree_row>& uucp_degree_table();

inline constexpr int uucp_total_sites = 1916;
inline constexpr int uucp_total_edges = 3848;
inline constexpr int eunet_total_sites = 153;
inline constexpr int eunet_total_edges = 211;

// Totals over the table (for verifying against the constants above).
[[nodiscard]] int table_site_count(const std::vector<degree_row>& rows);
[[nodiscard]] std::int64_t table_degree_sum(const std::vector<degree_row>& rows);

// A synthetic UUCP-like network whose degree histogram follows the paper's
// table shape: a tree built by degree-budgeted preferential attachment plus
// `extra_edges` shortcuts.  (The paper: edges ~ 2x sites, so extra_edges
// defaults to sites.)
[[nodiscard]] net::graph make_uucp_synthetic(int sites, int extra_edges, std::uint64_t seed);

// --- balanced tree depth formulas (Section 3.6) -----------------------------

// Depth of the balanced tree with degree profile d(i) = c * i^(1+eps)
// holding n nodes: the paper's l ~ log n / ((1+eps) loglog n).
[[nodiscard]] double tree_depth_polynomial_profile(double n, double c, double eps);

// Depth for d(i) = c * 2^(eps*i): l = sqrt(2 log(n/c)/eps + ...) per the
// paper (logarithms base 2).
[[nodiscard]] double tree_depth_exponential_profile(double n, double c, double eps);

// Exact depth by accumulating the factorial relation d(l)d(l-1)...d(1) = n
// until the product reaches n; used to validate the closed forms.
[[nodiscard]] int tree_depth_empirical_polynomial(double n, double c, double eps);
[[nodiscard]] int tree_depth_empirical_exponential(double n, double c, double eps);

}  // namespace mm::analysis
