#include "analysis/uucp.h"

#include <cmath>
#include <random>
#include <stdexcept>

namespace mm::analysis {

const std::vector<degree_row>& uucp_degree_table() {
    // Left column of the paper's table (degrees 0..15), then the nine
    // reconstructed rows (degrees 16..24: 26 sites, degree sum 529, which is
    // what the published totals leave), then the right column (25..641).
    static const std::vector<degree_row> rows = {
        {25, 0, false},   {840, 1, false},  {384, 2, false}, {207, 3, false},
        {115, 4, false},  {83, 5, false},   {71, 6, false},  {32, 7, false},
        {29, 8, false},   {11, 9, false},   {17, 10, false}, {5, 11, false},
        {7, 12, false},   {14, 13, false},  {10, 14, false}, {6, 15, false},
        {2, 16, true},    {2, 17, true},    {3, 18, true},   {3, 19, true},
        {3, 20, true},    {3, 21, true},    {4, 22, true},   {3, 23, true},
        {3, 24, true},
        {3, 25, false},   {1, 27, false},   {2, 28, false},  {2, 30, false},
        {2, 32, false},   {1, 33, false},   {2, 34, false},  {1, 35, false},
        {2, 36, false},   {1, 37, false},   {1, 38, false},  {1, 39, false},
        {1, 40, false},   {1, 42, false},   {1, 43, false},  {1, 44, false},
        {3, 45, false},   {1, 46, false},   {1, 47, false},  {1, 52, false},
        {2, 63, false},   {1, 70, false},   {1, 471, false}, {1, 641, false},
    };
    return rows;
}

int table_site_count(const std::vector<degree_row>& rows) {
    int total = 0;
    for (const auto& r : rows) total += r.sites;
    return total;
}

std::int64_t table_degree_sum(const std::vector<degree_row>& rows) {
    std::int64_t total = 0;
    for (const auto& r : rows) total += static_cast<std::int64_t>(r.sites) * r.degree;
    return total;
}

net::graph make_uucp_synthetic(int sites, int extra_edges, std::uint64_t seed) {
    if (sites < 2) throw std::invalid_argument{"make_uucp_synthetic: need >= 2 sites"};
    std::mt19937_64 rng{seed};
    // Preferential attachment with a superlinear kick for the first few
    // nodes (the backbone): node v joins an existing node sampled
    // proportionally to degree^1.2 (approximated via repeated endpoint
    // sampling), yielding the heavy 471/641-style hubs of UUCPnet.
    net::graph g{sites};
    std::vector<net::node_id> endpoints{0};
    for (net::node_id v = 1; v < sites; ++v) {
        std::uniform_int_distribution<std::size_t> pick{0, endpoints.size() - 1};
        // Two samples, keep the better-connected one: biases toward hubs.
        net::node_id a = endpoints[pick(rng)];
        const net::node_id b = endpoints[pick(rng)];
        if (g.degree(b) > g.degree(a)) a = b;
        g.add_edge(v, a);
        endpoints.push_back(a);
        endpoints.push_back(v);
    }
    std::uniform_int_distribution<net::node_id> node_pick{0, sites - 1};
    int added = 0;
    int attempts = 0;
    while (added < extra_edges && attempts < 64 * (extra_edges + 1)) {
        ++attempts;
        const net::node_id a = node_pick(rng);
        const net::node_id b = node_pick(rng);
        if (a == b || g.has_edge(a, b)) continue;
        g.add_edge(a, b);
        ++added;
    }
    g.finalize();
    return g;
}

double tree_depth_polynomial_profile(double n, double c, double eps) {
    if (n < 2 || c <= 0 || eps <= -1) throw std::invalid_argument{"tree_depth: bad arguments"};
    const double log_n = std::log2(n);
    const double loglog_n = std::log2(std::max(2.0, log_n));
    return log_n / ((1.0 + eps) * loglog_n);
}

double tree_depth_exponential_profile(double n, double c, double eps) {
    if (n < 2 || c <= 0 || eps <= 0) throw std::invalid_argument{"tree_depth: bad arguments"};
    // From n = c^l * 2^(eps*l(l+1)/2): solve eps*l^2/2 + l*(eps/2 + log c) = log n.
    const double log_n = std::log2(n);
    const double log_c = std::log2(c);
    const double b = eps / 2.0 + log_c;
    return (-b + std::sqrt(b * b + 2.0 * eps * log_n)) / eps;
}

int tree_depth_empirical_polynomial(double n, double c, double eps) {
    double product = 1;
    int level = 0;
    while (product < n && level < 1 << 20) {
        ++level;
        product *= std::max(1.0, c * std::pow(static_cast<double>(level), 1.0 + eps));
    }
    return level;
}

int tree_depth_empirical_exponential(double n, double c, double eps) {
    double product = 1;
    int level = 0;
    while (product < n && level < 1 << 20) {
        ++level;
        product *= std::max(1.0, c * std::pow(2.0, eps * static_cast<double>(level)));
    }
    return level;
}

}  // namespace mm::analysis
