#include "analysis/table.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace mm::analysis {

table::table(std::vector<std::string> headers) : headers_{std::move(headers)} {
    if (headers_.empty()) throw std::invalid_argument{"table: need at least one column"};
}

void table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size())
        throw std::invalid_argument{"table: row width does not match header"};
    rows_.push_back(std::move(cells));
}

std::string table::to_string() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

    std::ostringstream out;
    const auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << "| " << std::setw(static_cast<int>(width[c])) << row[c] << ' ';
        }
        out << "|\n";
    };
    emit(headers_);
    out << '|';
    for (const std::size_t w : width) out << std::string(w + 2, '-') << '|';
    out << '\n';
    for (const auto& row : rows_) emit(row);
    return out.str();
}

std::string table::num(double v, int precision) {
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << v;
    return out.str();
}

std::string table::num(std::int64_t v) { return std::to_string(v); }

}  // namespace mm::analysis
