// table.h - column-aligned ASCII tables for experiment reports.
//
// Every bench binary prints the paper's tables/series through this one
// formatter so outputs stay uniform and greppable.
#pragma once

#include <string>
#include <vector>

namespace mm::analysis {

class table {
public:
    explicit table(std::vector<std::string> headers);

    // Adds a row; the cell count must match the header count.
    void add_row(std::vector<std::string> cells);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
    [[nodiscard]] std::string to_string() const;

    // Formatting helpers for numeric cells.
    [[nodiscard]] static std::string num(double v, int precision = 2);
    [[nodiscard]] static std::string num(std::int64_t v);

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace mm::analysis
