// montecarlo.h - empirical verification of the probabilistic analysis
// (Section 2.2).
//
// For random P(i) of size p and Q(j) of size q over n nodes, the paper
// derives E[#(P n Q)] = pq/n and the threshold p + q >= 2*sqrt(n) for one
// expected rendezvous.  These estimators measure both quantities on the
// random_strategy so the theory and the implementation can be compared row
// by row.
#pragma once

#include <cstdint>

#include "core/strategy.h"

namespace mm::analysis {

struct intersection_estimate {
    double mean = 0;          // empirical E[#(P n Q)]
    double stderr_mean = 0;   // standard error of the mean
    double hit_rate = 0;      // fraction of pairs with #(P n Q) >= 1
    double expected = 0;      // theory: p*q/n
    std::int64_t samples = 0;
};

// Samples `samples` random (server, client) pairs from the strategy and
// measures the rendezvous-set size distribution.
[[nodiscard]] intersection_estimate estimate_intersection(const core::locate_strategy& strategy,
                                                          std::int64_t samples,
                                                          std::uint64_t seed);

}  // namespace mm::analysis
