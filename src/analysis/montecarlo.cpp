#include "analysis/montecarlo.h"

#include <cmath>

#include "sim/rng.h"

namespace mm::analysis {

intersection_estimate estimate_intersection(const core::locate_strategy& strategy,
                                            std::int64_t samples, std::uint64_t seed) {
    sim::rng random{seed};
    const net::node_id n = strategy.node_count();
    intersection_estimate est;
    est.samples = samples;

    double sum = 0;
    double sum_sq = 0;
    std::int64_t hits = 0;
    double p_total = 0;
    double q_total = 0;
    for (std::int64_t s = 0; s < samples; ++s) {
        const auto i = static_cast<net::node_id>(random.uniform(0, n - 1));
        const auto j = static_cast<net::node_id>(random.uniform(0, n - 1));
        const auto p = strategy.post_set(i, 0);
        const auto q = strategy.query_set(j, 0);
        const auto both = core::intersect_sets(p, q);
        const auto size = static_cast<double>(both.size());
        sum += size;
        sum_sq += size * size;
        if (!both.empty()) ++hits;
        p_total += static_cast<double>(p.size());
        q_total += static_cast<double>(q.size());
    }
    const auto count = static_cast<double>(samples);
    est.mean = sum / count;
    const double variance = std::max(0.0, sum_sq / count - est.mean * est.mean);
    est.stderr_mean = std::sqrt(variance / count);
    est.hit_rate = static_cast<double>(hits) / count;
    est.expected = (p_total / count) * (q_total / count) / static_cast<double>(n);
    return est;
}

}  // namespace mm::analysis
