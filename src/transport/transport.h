// transport.h - the message-delivery contract the match-making runtime
// needs from its substrate, extracted from sim::simulator so the same
// strategy/rendezvous core can be driven either by the deterministic
// simulator (the oracle) or by a real network (transport/tcp_transport.h,
// the production path).
//
// The contract is deliberately tiny - send a tagged message, arm a timer,
// poll completions - because that is all the paper's protocol machinery
// consumes: posts, queries, replies and removes are fire-and-forget frames
// addressed to node ids, and every deadline the runtime relies on
// (settle windows, escalation, failure detection) is a timer.
//
// Contract points every implementation must honor:
//
//  * Addressing: frames are addressed to abstract node ids (the strategy's
//    universe U), not to sockets.  How a node id maps onto a deliverable
//    endpoint is the implementation's business (the simulator routes over
//    the topology graph; the TCP transport keeps a node -> host:port route
//    table and a per-peer connection cache).
//  * Tags ride along untouched: the frame's `tag` is the op-id wire tag of
//    the in-simulator name_service, and per-operation accounting on either
//    substrate keys off it.
//  * Per-peer FIFO: two frames sent to the same destination are delivered
//    in send order.  No ordering holds across destinations.
//  * Timers: arm_timer(delay, id) fires a timer completion once now() has
//    advanced by `delay`; timers due at the same instant fire in arm
//    order.  The clock unit is the implementation's (simulator ticks /
//    wall-clock milliseconds) - callers treat it as opaque durations.
//  * Horizon semantics, mirrored from sim::simulator::run_until (PR 2):
//    poll(out, max_wait) advances now() all the way to the horizon
//    now() + max_wait even when no completion arrives - an idle poll is
//    how soft state (TTL entries, pending deadlines) ages, so time must
//    not stall just because the network is quiet.  run_until behaves the
//    same way in the simulator even with future events pending; see
//    tests/test_run_until_horizon.cpp.
//  * Failure: best-effort datagram semantics at the frame level.  send()
//    returns false only for a destination known to be unreachable right
//    now (no route / node crashed); a true return is not a delivery
//    guarantee.  Loss is surfaced, when detectable, as a peer_down
//    completion; callers own end-to-end recovery via their deadline
//    timers, exactly like the in-simulator runtime.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "transport/wire.h"

namespace mm::transport {

// Opaque handle to the peer connection a completion arrived on; 0 = none.
// Passing it back to reply() answers over that same connection - the
// pattern a daemon needs, because the querying client is reachable through
// its own inbound connection, not through the daemon's route table.
using peer_ref = std::int64_t;

struct completion {
    enum class kind {
        message,    // a frame arrived (msg, from)
        timer,      // an armed timer fired (timer_id)
        peer_down,  // a peer became unreachable (node, when known)
    };
    kind what = kind::message;
    wire::frame msg{};
    peer_ref from = 0;
    std::int64_t timer_id = 0;
    net::node_id node = net::invalid_node;
};

class transport {
public:
    virtual ~transport() = default;

    transport() = default;
    transport(const transport&) = delete;
    transport& operator=(const transport&) = delete;

    // Sends a tagged frame toward msg.destination.  False = known
    // unreachable now (no route, node crashed); true = accepted for
    // best-effort delivery.
    virtual bool send(const wire::frame& msg) = 0;

    // Sends back over the connection `via` arrived on; via == 0 falls back
    // to destination routing (send).  Implementations without connections
    // (the simulator) always route by destination.
    virtual bool reply(peer_ref via, const wire::frame& msg) = 0;

    // Arms a one-shot timer that fires after `delay` clock units.
    virtual void arm_timer(std::int64_t delay, std::int64_t timer_id) = 0;

    // The transport's clock: simulator ticks or milliseconds since start.
    [[nodiscard]] virtual std::int64_t now() const = 0;

    // Waits up to max_wait clock units for activity, appends completions to
    // `out`, and returns how many were appended.  Advances now() to the
    // horizon even when idle (see the contract above); returns as soon as
    // at least one completion is available.
    virtual std::size_t poll(std::vector<completion>& out, std::int64_t max_wait) = 0;
};

}  // namespace mm::transport
