#include "transport/wire.h"

#include "core/codec.h"

namespace mm::transport::wire {

void encode(const frame& f, std::vector<std::uint8_t>& out) {
    core::byte_writer w{out};
    w.u32(static_cast<std::uint32_t>(payload_bytes));
    w.u8(f.kind);
    w.u64(f.port);
    w.i32(f.source);
    w.i32(f.destination);
    w.i32(f.subject_address);
    w.i64(f.stamp);
    w.i64(f.tag);
    w.i64(f.ttl);
}

decode_status decode(const std::uint8_t* data, std::size_t size, std::size_t& pos, frame& out) {
    if (size - pos < 4) return decode_status::need_more;
    core::byte_reader len_reader{data + pos, 4};
    const std::uint32_t length = len_reader.u32();
    // The protocol has exactly one frame shape, so any other length is
    // garbage: a huge prefix must not make the splitter buffer toward it,
    // and a short one must not be padded into a "valid" frame.
    if (length != payload_bytes) return decode_status::error;
    if (size - pos < 4 + static_cast<std::size_t>(length)) return decode_status::need_more;
    core::byte_reader r{data + pos + 4, payload_bytes};
    frame f;
    f.kind = r.u8();
    f.port = r.u64();
    f.source = r.i32();
    f.destination = r.i32();
    f.subject_address = r.i32();
    f.stamp = r.i64();
    f.tag = r.i64();
    f.ttl = r.i64();
    if (!r.exhausted() || !verb_valid(f.kind)) return decode_status::error;
    out = f;
    pos += 4 + payload_bytes;
    return decode_status::ok;
}

void frame_splitter::feed(const std::uint8_t* data, std::size_t n) {
    if (corrupt_ || n == 0) return;
    // Compact once the consumed prefix dominates, so a long-lived
    // connection's buffer stays O(one frame), not O(bytes ever received).
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + n);
}

decode_status frame_splitter::next(frame& out) {
    if (corrupt_) return decode_status::error;
    const decode_status status = decode(buf_.data(), buf_.size(), pos_, out);
    if (status == decode_status::error) corrupt_ = true;
    return status;
}

}  // namespace mm::transport::wire
