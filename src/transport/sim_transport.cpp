#include "transport/sim_transport.h"

namespace mm::transport {

wire::frame to_frame(const sim::message& msg) {
    wire::frame f;
    f.kind = static_cast<std::uint8_t>(msg.kind);
    f.port = msg.port;
    f.source = msg.source;
    f.destination = msg.destination;
    f.subject_address = msg.subject_address;
    f.stamp = msg.stamp;
    f.tag = msg.tag;
    f.ttl = msg.ttl;
    return f;
}

sim::message to_message(const wire::frame& f) {
    sim::message msg;
    msg.kind = f.kind;
    msg.port = f.port;
    msg.source = f.source;
    msg.destination = f.destination;
    msg.subject_address = f.subject_address;
    msg.stamp = f.stamp;
    msg.tag = f.tag;
    msg.ttl = f.ttl;
    return msg;
}

// The node handler that turns deliveries and timer fires into completions.
class sim_transport::inbox final : public sim::node_handler {
public:
    void on_message(sim::simulator& /*sim*/, const sim::message& msg) override {
        completion c;
        c.what = completion::kind::message;
        c.msg = to_frame(msg);
        pending.push_back(c);
    }
    void on_timer(sim::simulator& /*sim*/, std::int64_t timer_id) override {
        completion c;
        c.what = completion::kind::timer;
        c.timer_id = timer_id;
        pending.push_back(c);
    }
    // A crash of the endpoint's own node loses its soft state; the inbox is
    // exactly that.
    void on_crash(sim::simulator& /*sim*/) override { pending.clear(); }

    std::deque<completion> pending;
};

sim_transport::sim_transport(sim::simulator& sim, net::node_id self)
    : sim_{&sim}, self_{self}, inbox_{std::make_shared<inbox>()} {
    sim_->attach(self_, inbox_);
}

bool sim_transport::send(const wire::frame& msg) {
    if (msg.destination < 0 || msg.destination >= sim_->network().node_count()) return false;
    if (sim_->crashed(msg.destination)) return false;  // known unreachable now
    sim::message m = to_message(msg);
    m.source = self_;
    sim_->send(std::move(m));
    return true;
}

bool sim_transport::reply(peer_ref /*via*/, const wire::frame& msg) {
    // The simulator addresses by node id only; every reply routes.
    return send(msg);
}

void sim_transport::arm_timer(std::int64_t delay, std::int64_t timer_id) {
    sim_->set_timer(self_, delay, timer_id);
}

std::int64_t sim_transport::now() const { return sim_->now(); }

std::size_t sim_transport::poll(std::vector<completion>& out, std::int64_t max_wait) {
    const std::size_t before = out.size();
    const auto drain = [&] {
        while (!inbox_->pending.empty()) {
            out.push_back(inbox_->pending.front());
            inbox_->pending.pop_front();
        }
    };
    drain();
    const sim::time_point horizon = sim_->now() + max_wait;
    while (out.size() == before) {
        const auto next = sim_->next_event_time();
        if (!next || *next > horizon) break;
        if (!sim_->step()) break;
        drain();
    }
    // Mirror run_until's horizon semantics: an idle poll still advances the
    // clock, so TTL soft state ages and armed deadlines stay meaningful.
    if (out.size() == before && sim_->now() < horizon) sim_->run_until(horizon);
    return out.size() - before;
}

}  // namespace mm::transport
