// sim_transport.h - the deterministic oracle implementation of the
// transport contract: one endpoint bound to a node of a sim::simulator.
//
// Several sim_transports typically share one simulator (one per node the
// test wants to speak for); whichever endpoint polls drives the shared
// event loop, and every endpoint's inbox fills as its node receives
// messages.  Single-threaded by construction, like the simulator itself.
//
// This adapter is what makes "the simulator stays the oracle" concrete:
// the daemon/client protocol code runs unmodified over either this class
// or transport::tcp_transport, and the loopback suite cross-checks the two
// (tests/test_daemon_loopback.cpp).
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "transport/transport.h"

namespace mm::transport {

// Lossless field-for-field conversions (relay_final excepted - Valiant
// relaying is simulator routing, not wire payload).
[[nodiscard]] wire::frame to_frame(const sim::message& msg);
[[nodiscard]] sim::message to_message(const wire::frame& f);

class sim_transport final : public transport {
public:
    // Attaches an inbox handler at `self` (replacing any previous handler);
    // the simulator must outlive this object.
    sim_transport(sim::simulator& sim, net::node_id self);

    [[nodiscard]] net::node_id self() const noexcept { return self_; }

    bool send(const wire::frame& msg) override;
    bool reply(peer_ref via, const wire::frame& msg) override;
    void arm_timer(std::int64_t delay, std::int64_t timer_id) override;
    [[nodiscard]] std::int64_t now() const override;
    std::size_t poll(std::vector<completion>& out, std::int64_t max_wait) override;

private:
    class inbox;

    sim::simulator* sim_;
    net::node_id self_;
    std::shared_ptr<inbox> inbox_;
};

}  // namespace mm::transport
