// wire.h - the length-prefixed framed wire format of the match-making
// transport (docs/DAEMON.md has the byte-level specification).
//
// A frame is [u32 length][payload]; the payload is the fixed little-endian
// layout of `frame` below - the serializable form of the simulator's
// sim::message, carrying the same op-id wire tag the in-simulator
// name_service uses for per-operation accounting, plus the two daemon
// control verbs (ack, miss) a real transport needs where the simulator
// uses settle-deadline silence.
//
// Decoding is written for hostile bytes off a real socket: a length prefix
// that is not exactly payload_bytes is a protocol error (this rejects
// truncated and oversized frames alike), an unknown verb is a protocol
// error, and a partial frame is simply "need more" - the frame_splitter
// reassembles across arbitrary read boundaries and never crashes on
// garbage (tests/test_wire_format.cpp fuzzes it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mm::transport::wire {

// Frame verbs.  1..4 are exactly runtime::msg_kind (post/query/reply/
// remove); 5..6 exist only on the real transport: a daemon acknowledges
// posts and removes (the simulator's settle deadline has no wire cost) and
// answers a missed query explicitly (the simulator's rendezvous nodes stay
// silent and the client's exact deadline timer resolves the miss).
enum verb : std::uint8_t {
    v_post = 1,
    v_query = 2,
    v_reply = 3,
    v_remove = 4,
    v_ack = 5,
    v_miss = 6,
};

[[nodiscard]] constexpr bool verb_valid(std::uint8_t kind) noexcept {
    return kind >= v_post && kind <= v_miss;
}

// The serializable message: field-for-field sim::message (minus the
// simulator-internal relay_final - Valiant relaying is a simulator routing
// concern, not a wire concern).
struct frame {
    std::uint8_t kind = 0;
    std::uint64_t port = 0;
    std::int32_t source = -1;
    std::int32_t destination = -1;
    std::int32_t subject_address = -1;
    std::int64_t stamp = 0;
    std::int64_t tag = 0;  // op-id wire tag, same accounting as sim::message
    std::int64_t ttl = -1;

    bool operator==(const frame&) const = default;
};

// Payload layout: kind u8 | port u64 | source i32 | destination i32 |
// subject_address i32 | stamp i64 | tag i64 | ttl i64.
inline constexpr std::size_t payload_bytes = 1 + 8 + 3 * 4 + 3 * 8;
// Any length prefix above this is garbage, not a frame that needs more
// bytes - the splitter rejects it instead of buffering toward it.
inline constexpr std::uint32_t max_frame_bytes = 1024;

// Appends the length-prefixed encoding of `f` to `out`.
void encode(const frame& f, std::vector<std::uint8_t>& out);

enum class decode_status { ok, need_more, error };

// Decodes one length-prefixed frame from data[pos..size).  On `ok`, fills
// `out` and advances pos past the frame; on `need_more`, pos is unchanged;
// on `error`, pos is unchanged and the stream is unrecoverable (framing is
// lost - the connection must be dropped).
decode_status decode(const std::uint8_t* data, std::size_t size, std::size_t& pos, frame& out);

// Incremental stream reassembler: feed() whatever a socket read returned,
// then drain complete frames with next().  A protocol error is sticky -
// once framing is lost there is no way to resynchronize mid-stream.
class frame_splitter {
public:
    void feed(const std::uint8_t* data, std::size_t n);

    // Pops the next complete frame: `ok` fills `out`; `need_more` means the
    // buffer holds no complete frame; `error` means the stream is corrupt.
    decode_status next(frame& out);

    [[nodiscard]] bool corrupt() const noexcept { return corrupt_; }
    // Bytes buffered but not yet consumed - nonzero at connection close
    // means the peer disconnected mid-frame.
    [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }

private:
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    bool corrupt_ = false;
};

}  // namespace mm::transport::wire
