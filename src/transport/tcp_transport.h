// tcp_transport.h - the real-network implementation of the transport
// contract: non-blocking IPv4 TCP with a poll(2) event loop.
//
// Design (docs/DAEMON.md):
//  * Frames are the length-prefixed wire format of transport/wire.h; a
//    frame_splitter per connection reassembles across arbitrary read
//    boundaries and a corrupt stream drops the connection (counted in
//    stats - the daemon survives garbage, it does not parse it).
//  * Node ids map to endpoints through an explicit route table
//    (add_route); connections are cached per endpoint and shared by every
//    node id routed there - the libqi-style client socket cache.
//  * Reconnect-on-failure: a route-backed connection that dies (connect
//    refused once established before, peer reset, write error) is retried
//    once with its queued frames intact; a second failure drops the
//    frames and reports peer_down.  A connection closed cleanly by the
//    peer is simply forgotten - the next send() dials again.
//  * Timers are a min-heap over steady-clock milliseconds; poll() uses the
//    earliest deadline to bound the poll(2) timeout, and an idle poll
//    advances now() to its horizon (the run_until mirror in the transport
//    contract).
//  * Everything is single-threaded: one tcp_transport belongs to one
//    thread; cross-thread use is a data race by contract.
//
// Linux/POSIX only (the CI image); no external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "transport/transport.h"

namespace mm::transport {

class tcp_transport final : public transport {
public:
    struct stats {
        std::int64_t frames_sent = 0;
        std::int64_t frames_received = 0;
        std::int64_t accepts = 0;
        std::int64_t connects = 0;
        std::int64_t reconnects = 0;
        std::int64_t protocol_errors = 0;   // corrupt streams dropped
        std::int64_t dirty_disconnects = 0; // peer vanished mid-frame
        std::int64_t frames_dropped = 0;    // queued frames lost to a dead peer
    };

    tcp_transport();
    ~tcp_transport() override;

    // Binds and listens on 127.0.0.1:port (0 = ephemeral); returns the
    // bound port.  Throws std::runtime_error on failure.  At most one
    // listener per transport.
    std::uint16_t listen_on(std::uint16_t port);
    [[nodiscard]] std::uint16_t listen_port() const noexcept { return listen_port_; }

    // Declares where a node id is hosted.  Many nodes may share one
    // endpoint (a daemon hosting a whole node range); they share its
    // cached connection too.
    void add_route(net::node_id node, const std::string& host, std::uint16_t port);

    bool send(const wire::frame& msg) override;
    bool reply(peer_ref via, const wire::frame& msg) override;
    void arm_timer(std::int64_t delay, std::int64_t timer_id) override;
    [[nodiscard]] std::int64_t now() const override;
    std::size_t poll(std::vector<completion>& out, std::int64_t max_wait) override;

    [[nodiscard]] const stats& stat() const noexcept { return stats_; }
    [[nodiscard]] std::size_t open_connections() const noexcept { return conns_.size(); }

    // Drops every connection (cache reset; routes and the listener stay).
    // The next send() redials - the reconnect path, exercisable by tests.
    void drop_connections();

private:
    struct conn {
        int fd = -1;
        peer_ref id = 0;
        bool connecting = false;   // non-blocking connect() in progress
        bool from_accept = false;  // inbound: no route key, never redialed
        int dial_attempts = 0;     // resets on first successful traffic
        std::string route_key;     // "host:port" for outbound connections
        net::node_id route_node = net::invalid_node;  // representative node
        // Outbound queue as whole frames so a reconnect can resend from a
        // frame boundary (a torn tail write must not corrupt the stream).
        std::deque<std::vector<std::uint8_t>> outq;
        std::size_t out_pos = 0;  // bytes of outq.front() already written
        wire::frame_splitter in;
    };

    [[nodiscard]] conn* find_route_conn(const std::string& key);
    conn* dial(const std::string& key, net::node_id node);
    bool flush_writes(conn& c);
    void read_frames(conn& c, std::vector<completion>& out);
    // Terminal failure: optionally redial once (route conns with queued
    // frames), else report peer_down and forget the connection.
    void fail_conn(peer_ref id, std::vector<completion>& out, bool allow_redial);
    void forget_conn(peer_ref id);
    void fire_due_timers(std::vector<completion>& out);
    void accept_pending(std::vector<completion>& out);

    int listen_fd_ = -1;
    std::uint16_t listen_port_ = 0;
    std::map<peer_ref, conn> conns_;  // ordered: stable poll fd ordering
    std::unordered_map<std::string, peer_ref> route_conns_;
    std::unordered_map<net::node_id, std::pair<std::string, std::uint16_t>> routes_;
    peer_ref next_ref_ = 1;
    // (deadline ms, arm sequence, id): same-instant timers fire in arm order.
    using timer_rec = std::tuple<std::int64_t, std::int64_t, std::int64_t>;
    std::priority_queue<timer_rec, std::vector<timer_rec>, std::greater<>> timers_;
    std::int64_t timer_seq_ = 0;
    std::int64_t start_ms_ = 0;  // steady-clock origin of now()
    stats stats_;
};

}  // namespace mm::transport
