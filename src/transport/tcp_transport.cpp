#include "transport/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace mm::transport {

namespace {

std::int64_t mono_ms() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Non-blocking dial; returns the fd (with `connecting` saying whether the
// handshake is still in flight) or -1 on immediate failure.
int open_socket_to(const std::string& host, std::uint16_t port, bool& connecting) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
        connecting = false;
        return fd;
    }
    if (errno == EINPROGRESS) {
        connecting = true;
        return fd;
    }
    ::close(fd);
    return -1;
}

}  // namespace

tcp_transport::tcp_transport() : start_ms_{mono_ms()} {}

tcp_transport::~tcp_transport() {
    for (auto& [id, c] : conns_)
        if (c.fd >= 0) ::close(c.fd);
    if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::int64_t tcp_transport::now() const { return mono_ms() - start_ms_; }

std::uint16_t tcp_transport::listen_on(std::uint16_t port) {
    if (listen_fd_ >= 0) throw std::runtime_error{"tcp_transport: already listening"};
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) throw std::runtime_error{"tcp_transport: socket() failed"};
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 64) != 0) {
        ::close(fd);
        throw std::runtime_error{"tcp_transport: bind/listen on 127.0.0.1 failed"};
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        ::close(fd);
        throw std::runtime_error{"tcp_transport: getsockname failed"};
    }
    listen_fd_ = fd;
    listen_port_ = ntohs(addr.sin_port);
    return listen_port_;
}

void tcp_transport::add_route(net::node_id node, const std::string& host, std::uint16_t port) {
    routes_[node] = {host, port};
}

tcp_transport::conn* tcp_transport::find_route_conn(const std::string& key) {
    const auto it = route_conns_.find(key);
    if (it == route_conns_.end()) return nullptr;
    const auto cit = conns_.find(it->second);
    if (cit == conns_.end()) {
        route_conns_.erase(it);
        return nullptr;
    }
    return &cit->second;
}

tcp_transport::conn* tcp_transport::dial(const std::string& key, net::node_id node) {
    const auto sep = key.rfind(':');
    const std::string host = key.substr(0, sep);
    const auto port = static_cast<std::uint16_t>(std::stoi(key.substr(sep + 1)));
    bool connecting = false;
    const int fd = open_socket_to(host, port, connecting);
    if (fd < 0) return nullptr;
    const peer_ref id = next_ref_++;
    conn c;
    c.fd = fd;
    c.id = id;
    c.connecting = connecting;
    c.route_key = key;
    c.route_node = node;
    c.dial_attempts = 1;
    ++stats_.connects;
    auto [it, inserted] = conns_.emplace(id, std::move(c));
    route_conns_[key] = id;
    return &it->second;
}

bool tcp_transport::send(const wire::frame& msg) {
    const auto rit = routes_.find(msg.destination);
    if (rit == routes_.end()) return false;
    const std::string key = rit->second.first + ':' + std::to_string(rit->second.second);
    conn* c = find_route_conn(key);
    if (c == nullptr) c = dial(key, msg.destination);
    if (c == nullptr) return false;
    std::vector<std::uint8_t> bytes;
    wire::encode(msg, bytes);
    c->outq.push_back(std::move(bytes));
    ++stats_.frames_sent;
    return true;
}

bool tcp_transport::reply(peer_ref via, const wire::frame& msg) {
    if (via != 0) {
        const auto it = conns_.find(via);
        if (it != conns_.end()) {
            std::vector<std::uint8_t> bytes;
            wire::encode(msg, bytes);
            it->second.outq.push_back(std::move(bytes));
            ++stats_.frames_sent;
            return true;
        }
    }
    return send(msg);
}

void tcp_transport::arm_timer(std::int64_t delay, std::int64_t timer_id) {
    timers_.emplace(now() + std::max<std::int64_t>(0, delay), timer_seq_++, timer_id);
}

void tcp_transport::fire_due_timers(std::vector<completion>& out) {
    while (!timers_.empty() && std::get<0>(timers_.top()) <= now()) {
        completion c;
        c.what = completion::kind::timer;
        c.timer_id = std::get<2>(timers_.top());
        timers_.pop();
        out.push_back(c);
    }
}

bool tcp_transport::flush_writes(conn& c) {
    while (!c.outq.empty()) {
        const auto& buf = c.outq.front();
        const std::size_t left = buf.size() - c.out_pos;
        const ssize_t n = ::send(c.fd, buf.data() + c.out_pos, left, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return true;
            return false;  // hard write error
        }
        c.out_pos += static_cast<std::size_t>(n);
        if (c.out_pos == buf.size()) {
            c.outq.pop_front();
            c.out_pos = 0;
            // The peer accepted a whole frame: this dial worked, so a later
            // failure earns a fresh reconnect attempt.
            c.dial_attempts = 0;
        }
    }
    return true;
}

void tcp_transport::read_frames(conn& c, std::vector<completion>& out) {
    std::uint8_t buf[4096];
    for (;;) {
        const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
        if (n > 0) {
            c.dial_attempts = 0;
            c.in.feed(buf, static_cast<std::size_t>(n));
            wire::frame f;
            wire::decode_status status;
            while ((status = c.in.next(f)) == wire::decode_status::ok) {
                completion done;
                done.what = completion::kind::message;
                done.msg = f;
                done.from = c.id;
                out.push_back(done);
                ++stats_.frames_received;
            }
            if (status == wire::decode_status::error) {
                ++stats_.protocol_errors;
                fail_conn(c.id, out, /*allow_redial=*/false);
                return;
            }
            continue;
        }
        if (n == 0) {  // peer closed
            if (c.in.buffered() > 0) ++stats_.dirty_disconnects;
            fail_conn(c.id, out, /*allow_redial=*/true);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        fail_conn(c.id, out, /*allow_redial=*/true);
        return;
    }
}

void tcp_transport::forget_conn(peer_ref id) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) return;
    if (it->second.fd >= 0) ::close(it->second.fd);
    if (!it->second.route_key.empty()) {
        const auto rit = route_conns_.find(it->second.route_key);
        if (rit != route_conns_.end() && rit->second == id) route_conns_.erase(rit);
    }
    conns_.erase(it);
}

void tcp_transport::fail_conn(peer_ref id, std::vector<completion>& out, bool allow_redial) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) return;
    conn& c = it->second;
    ::close(c.fd);
    c.fd = -1;
    const bool redial = allow_redial && !c.from_accept && !c.route_key.empty() &&
                        !c.outq.empty() && c.dial_attempts < 2;
    if (redial) {
        bool connecting = false;
        const auto sep = c.route_key.rfind(':');
        const int fd = open_socket_to(
            c.route_key.substr(0, sep),
            static_cast<std::uint16_t>(std::stoi(c.route_key.substr(sep + 1))), connecting);
        if (fd >= 0) {
            ++stats_.reconnects;
            ++c.dial_attempts;
            c.fd = fd;
            c.connecting = connecting;
            c.out_pos = 0;  // resend the torn frame from its boundary
            c.in = {};      // fresh inbound stream
            return;
        }
    }
    stats_.frames_dropped += static_cast<std::int64_t>(c.outq.size());
    if (!c.route_key.empty()) {
        completion down;
        down.what = completion::kind::peer_down;
        down.node = c.route_node;
        down.from = id;
        out.push_back(down);
    }
    forget_conn(id);
}

void tcp_transport::accept_pending(std::vector<completion>& /*out*/) {
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) return;  // EAGAIN / EINTR / transient - retry next poll
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        const peer_ref id = next_ref_++;
        conn c;
        c.fd = fd;
        c.id = id;
        c.from_accept = true;
        conns_.emplace(id, std::move(c));
        ++stats_.accepts;
    }
}

std::size_t tcp_transport::poll(std::vector<completion>& out, std::int64_t max_wait) {
    const std::size_t before = out.size();
    const std::int64_t deadline = now() + std::max<std::int64_t>(0, max_wait);
    for (;;) {
        fire_due_timers(out);

        std::vector<pollfd> fds;
        std::vector<peer_ref> refs;  // refs[i] = 0 for the listener
        if (listen_fd_ >= 0) {
            fds.push_back({listen_fd_, POLLIN, 0});
            refs.push_back(0);
        }
        for (auto& [id, c] : conns_) {
            short events = 0;
            if (c.connecting)
                events = POLLOUT;
            else
                events = static_cast<short>(POLLIN | (c.outq.empty() ? 0 : POLLOUT));
            fds.push_back({c.fd, events, 0});
            refs.push_back(id);
        }

        std::int64_t timeout = out.size() > before ? 0 : deadline - now();
        if (!timers_.empty())
            timeout = std::min(timeout, std::get<0>(timers_.top()) - now());
        timeout = std::clamp<std::int64_t>(timeout, 0, 60'000);

        const int rc = ::poll(fds.empty() ? nullptr : fds.data(),
                              static_cast<nfds_t>(fds.size()), static_cast<int>(timeout));
        if (rc < 0 && errno != EINTR && errno != EAGAIN)
            throw std::runtime_error{"tcp_transport: poll() failed"};

        if (rc > 0) {
            for (std::size_t i = 0; i < fds.size(); ++i) {
                if (fds[i].revents == 0) continue;
                if (refs[i] == 0) {
                    accept_pending(out);
                    continue;
                }
                const auto it = conns_.find(refs[i]);
                if (it == conns_.end()) continue;  // already failed this sweep
                conn& c = it->second;
                if (c.connecting && (fds[i].revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
                    int err = 0;
                    socklen_t len = sizeof err;
                    ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
                    if (err != 0) {
                        fail_conn(c.id, out, /*allow_redial=*/true);
                        continue;
                    }
                    c.connecting = false;
                }
                // Read before write: if the peer already closed (FIN queued
                // behind POLLIN), the EOF must be seen while outq still holds
                // the unsent frames - writing first would flush them into the
                // dead socket and leave nothing for the redial to carry over.
                if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0 && !c.connecting)
                    read_frames(c, out);
                // read_frames may have failed the connection: forgotten, or
                // redialed onto a fresh fd poll(2) never reported on.  Only
                // flush the socket this sweep actually saw.
                const auto again = conns_.find(refs[i]);
                if (again == conns_.end()) continue;
                conn& cw = again->second;
                if (cw.fd != fds[i].fd || cw.connecting) continue;
                if ((fds[i].revents & POLLOUT) != 0) {
                    if (!flush_writes(cw)) fail_conn(cw.id, out, /*allow_redial=*/true);
                }
            }
        }

        fire_due_timers(out);
        if (out.size() > before) return out.size() - before;
        if (now() >= deadline) return 0;
    }
}

void tcp_transport::drop_connections() {
    for (auto& [id, c] : conns_)
        if (c.fd >= 0) ::close(c.fd);
    conns_.clear();
    route_conns_.clear();
}

}  // namespace mm::transport
