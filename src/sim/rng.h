// rng.h - deterministic random source for simulations.
//
// Every randomized component takes an explicit seed; the same seed always
// reproduces the same run, which the property tests rely on.  splitmix64 is
// used to derive independent per-entity streams from one master seed.
#pragma once

#include <cstdint>
#include <random>

namespace mm::sim {

// splitmix64 step; good avalanche, used to derive sub-seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

// Deterministic engine with convenience sampling helpers.
class rng {
public:
    explicit rng(std::uint64_t seed) : base_seed_{seed}, engine_{seed} {}

    // Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
        return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
    }

    // Uniform real in [0, 1).
    [[nodiscard]] double uniform01() {
        return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
    }

    [[nodiscard]] bool chance(double probability) { return uniform01() < probability; }

    // Derives an independent rng for sub-entity `index`.
    [[nodiscard]] rng split(std::uint64_t index) const {
        return rng{splitmix64(base_seed_ ^ splitmix64(index))};
    }

    [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

private:
    std::uint64_t base_seed_ = 0;
    std::mt19937_64 engine_;
};

}  // namespace mm::sim
