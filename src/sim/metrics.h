// metrics.h - named counters for simulation accounting.
//
// The paper measures algorithms "in terms of message passes and in terms of
// storage needed"; every component of the simulator credits its activity to
// a named counter here so experiments can report exactly those quantities.
//
// Internally the counters the simulator itself bumps on every message are
// *interned*: each known name maps to a fixed slot in a flat array, so the
// per-message bump is one add into a cache-resident slot instead of a
// string-keyed std::map walk (the pre-PR-9 representation).  Names outside
// the known set - tests and tools are free to invent counters - land in a
// small open-addressing table keyed by the name's hash.  The observable
// API is unchanged: add/get by name behave exactly as before, and
// counters() materializes the same sorted name -> value map the old
// implementation exposed, including zero-valued entries for counters that
// were touched with amount 0 and *excluding* counters never touched at all
// (test_barrier_pipeline asserts the serial engine leaves no phase-counter
// residue, not even zeros).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mm::sim {

// Counter names used by the simulator itself.
inline constexpr std::string_view counter_hops = "hops";
inline constexpr std::string_view counter_messages_sent = "messages_sent";
inline constexpr std::string_view counter_messages_delivered = "messages_delivered";
inline constexpr std::string_view counter_messages_dropped = "messages_dropped";

// Dynamic membership: one count per join()/leave()/rejoin() the simulator
// executed (deterministic - part of the serial-vs-parallel equality set).
inline constexpr std::string_view counter_membership_events = "membership_events";

// Parallel-engine phase instrumentation (the barrier pipeline of
// sim/simulator.h): how many ticks/rounds the sharded engine executed and
// the nanoseconds the coordinator observed in each pipeline phase, so the
// engine's serial residue is a measured number instead of a guess.  The
// four phase timers are disjoint: coordinator idle time at worker-pool
// barriers is subtracted from the enclosing rank/execute/flush window and
// accounted once, under barrier-wait (the load-imbalance residue).
// mailbox-flush covers all barrier data movement - the tick fill (calendar
// queues -> round lists), same-tick cascade merges, the future-mailbox
// flush, and the accumulator fold - so execute + rank + flush + wait
// decomposes a tick's coordinator wall time up to the O(shards)
// next-tick scan.  All six
// counters are monotone over a simulator's lifetime and identically zero
// while the serial engine runs (set_worker_threads never called).  The
// wall-clock phases are measurements, not part of the determinism contract
// - only the tick/round counts are bit-identical across worker counts.
// Trace instrumentation (sim/trace.h): delivery records and per-tick
// digests fed to an attached trace observer.  Deterministic - a recorded
// workload re-run under any engine feeds the observer the same stream, so
// both counters sit in the blocking bench_diff gate alongside hops.
inline constexpr std::string_view counter_trace_records = "trace_records";
inline constexpr std::string_view counter_trace_digests = "trace_digests";

inline constexpr std::string_view counter_parallel_ticks = "parallel_ticks";
inline constexpr std::string_view counter_parallel_rounds = "parallel_rounds";
inline constexpr std::string_view counter_phase_round_execute_ns = "phase_round_execute_ns";
inline constexpr std::string_view counter_phase_rank_merge_ns = "phase_rank_merge_ns";
inline constexpr std::string_view counter_phase_mailbox_flush_ns = "phase_mailbox_flush_ns";
inline constexpr std::string_view counter_phase_barrier_wait_ns = "phase_barrier_wait_ns";

class metrics {
public:
    // Interned ids of the known counters, in the order of known_names().
    // The simulator's hot sinks bump these directly (one array add); the
    // string overloads below intern on the fly and stay API-compatible.
    enum known : std::uint8_t {
        k_hops = 0,
        k_messages_sent,
        k_messages_delivered,
        k_messages_dropped,
        k_membership_events,
        k_trace_records,
        k_trace_digests,
        k_parallel_ticks,
        k_parallel_rounds,
        k_phase_round_execute_ns,
        k_phase_rank_merge_ns,
        k_phase_mailbox_flush_ns,
        k_phase_barrier_wait_ns,
        known_count
    };

    [[nodiscard]] static constexpr std::array<std::string_view, known_count> known_names() {
        return {counter_hops,
                counter_messages_sent,
                counter_messages_delivered,
                counter_messages_dropped,
                counter_membership_events,
                counter_trace_records,
                counter_trace_digests,
                counter_parallel_ticks,
                counter_parallel_rounds,
                counter_phase_round_execute_ns,
                counter_phase_rank_merge_ns,
                counter_phase_mailbox_flush_ns,
                counter_phase_barrier_wait_ns};
    }

    // The interned id for `name`, or known_count when the name is dynamic.
    [[nodiscard]] static known known_id(std::string_view name) noexcept;

    void add(known id, std::int64_t amount = 1) noexcept {
        slots_[id] += amount;
        touched_ |= std::uint32_t{1} << id;
    }
    void add(std::string_view counter, std::int64_t amount = 1);

    [[nodiscard]] std::int64_t get(known id) const noexcept { return slots_[id]; }
    [[nodiscard]] std::int64_t get(std::string_view counter) const;

    // Materialized view of every touched counter, sorted by name - the
    // exact map the pre-interning implementation stored directly.
    [[nodiscard]] std::map<std::string, std::int64_t, std::less<>> counters() const;

    void reset() {
        slots_.fill(0);
        touched_ = 0;
        dyn_.clear();
        dyn_mask_ = 0;
        dyn_live_ = 0;
    }

private:
    struct dyn_slot {
        std::string name;  // empty = slot unused (no erase, so no tombstones)
        std::uint64_t hash = 0;
        std::int64_t value = 0;
    };

    // Value slot for a dynamic name, inserted at first touch.
    std::int64_t& dyn_ref(std::string_view name);
    void dyn_grow();

    std::array<std::int64_t, known_count> slots_{};
    std::uint32_t touched_ = 0;  // bit i: slot i has been add()ed at least once
    std::vector<dyn_slot> dyn_;
    std::size_t dyn_mask_ = 0;
    std::size_t dyn_live_ = 0;
};

static_assert(metrics::known_count <= 32, "touched_ bitmask is 32 bits");

}  // namespace mm::sim
