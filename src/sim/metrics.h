// metrics.h - named counters for simulation accounting.
//
// The paper measures algorithms "in terms of message passes and in terms of
// storage needed"; every component of the simulator credits its activity to
// a named counter here so experiments can report exactly those quantities.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace mm::sim {

class metrics {
public:
    void add(std::string_view counter, std::int64_t amount = 1);
    [[nodiscard]] std::int64_t get(std::string_view counter) const;
    [[nodiscard]] const std::map<std::string, std::int64_t, std::less<>>& counters() const noexcept {
        return counters_;
    }
    void reset() { counters_.clear(); }

private:
    std::map<std::string, std::int64_t, std::less<>> counters_;
};

// Counter names used by the simulator itself.
inline constexpr std::string_view counter_hops = "hops";
inline constexpr std::string_view counter_messages_sent = "messages_sent";
inline constexpr std::string_view counter_messages_delivered = "messages_delivered";
inline constexpr std::string_view counter_messages_dropped = "messages_dropped";

// Dynamic membership: one count per join()/leave()/rejoin() the simulator
// executed (deterministic - part of the serial-vs-parallel equality set).
inline constexpr std::string_view counter_membership_events = "membership_events";

// Parallel-engine phase instrumentation (the barrier pipeline of
// sim/simulator.h): how many ticks/rounds the sharded engine executed and
// the nanoseconds the coordinator observed in each pipeline phase, so the
// engine's serial residue is a measured number instead of a guess.  The
// four phase timers are disjoint: coordinator idle time at worker-pool
// barriers is subtracted from the enclosing rank/execute/flush window and
// accounted once, under barrier-wait (the load-imbalance residue).
// mailbox-flush covers all barrier data movement - the tick fill (calendar
// queues -> round lists), same-tick cascade merges, the future-mailbox
// flush, and the accumulator fold - so execute + rank + flush + wait
// decomposes a tick's coordinator wall time up to the O(shards)
// next-tick scan.  All six
// counters are monotone over a simulator's lifetime and identically zero
// while the serial engine runs (set_worker_threads never called).  The
// wall-clock phases are measurements, not part of the determinism contract
// - only the tick/round counts are bit-identical across worker counts.
// Trace instrumentation (sim/trace.h): delivery records and per-tick
// digests fed to an attached trace observer.  Deterministic - a recorded
// workload re-run under any engine feeds the observer the same stream, so
// both counters sit in the blocking bench_diff gate alongside hops.
inline constexpr std::string_view counter_trace_records = "trace_records";
inline constexpr std::string_view counter_trace_digests = "trace_digests";

inline constexpr std::string_view counter_parallel_ticks = "parallel_ticks";
inline constexpr std::string_view counter_parallel_rounds = "parallel_rounds";
inline constexpr std::string_view counter_phase_round_execute_ns = "phase_round_execute_ns";
inline constexpr std::string_view counter_phase_rank_merge_ns = "phase_rank_merge_ns";
inline constexpr std::string_view counter_phase_mailbox_flush_ns = "phase_mailbox_flush_ns";
inline constexpr std::string_view counter_phase_barrier_wait_ns = "phase_barrier_wait_ns";

}  // namespace mm::sim
