// metrics.h - named counters for simulation accounting.
//
// The paper measures algorithms "in terms of message passes and in terms of
// storage needed"; every component of the simulator credits its activity to
// a named counter here so experiments can report exactly those quantities.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace mm::sim {

class metrics {
public:
    void add(std::string_view counter, std::int64_t amount = 1);
    [[nodiscard]] std::int64_t get(std::string_view counter) const;
    [[nodiscard]] const std::map<std::string, std::int64_t, std::less<>>& counters() const noexcept {
        return counters_;
    }
    void reset() { counters_.clear(); }

private:
    std::map<std::string, std::int64_t, std::less<>> counters_;
};

// Counter names used by the simulator itself.
inline constexpr std::string_view counter_hops = "hops";
inline constexpr std::string_view counter_messages_sent = "messages_sent";
inline constexpr std::string_view counter_messages_delivered = "messages_delivered";
inline constexpr std::string_view counter_messages_dropped = "messages_dropped";

}  // namespace mm::sim
