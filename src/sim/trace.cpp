#include "sim/trace.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <tuple>

#include "sim/simulator.h"

namespace mm::sim {

namespace {

constexpr std::uint8_t tag_record = 1;
constexpr std::uint8_t tag_tick_digest = 2;
constexpr std::uint8_t tag_final_digest = 3;

constexpr std::uint32_t trace_magic = 0x5254'4d4dU;  // "MMTR" little-endian

void encode_record(core::byte_writer& w, const trace_record& r) {
    w.u8(tag_record);
    w.i64(r.at);
    w.i32(r.node);
    w.i32(r.kind);
    w.u64(r.port);
    w.i32(r.source);
    w.i32(r.destination);
    w.i32(r.subject);
    w.i64(r.stamp);
    w.i64(r.tag);
    w.i64(r.ttl);
    w.i32(r.relay_final);
}

trace_record parse_record(core::byte_reader& r) {
    trace_record rec;
    rec.at = r.i64();
    rec.node = r.i32();
    rec.kind = r.i32();
    rec.port = r.u64();
    rec.source = r.i32();
    rec.destination = r.i32();
    rec.subject = r.i32();
    rec.stamp = r.i64();
    rec.tag = r.i64();
    rec.ttl = r.i64();
    rec.relay_final = r.i32();
    return rec;
}

void encode_tick_digest(core::byte_writer& w, const trace_tick_digest& d) {
    w.u8(tag_tick_digest);
    w.i64(d.tick);
    w.i64(d.sent);
    w.i64(d.delivered);
    w.i64(d.dropped);
}

trace_tick_digest parse_tick_digest(core::byte_reader& r) {
    trace_tick_digest d;
    d.tick = r.i64();
    d.sent = r.i64();
    d.delivered = r.i64();
    d.dropped = r.i64();
    return d;
}

void encode_final_digest(core::byte_writer& w, const trace_final_digest& d) {
    w.u8(tag_final_digest);
    w.i64(d.now);
    w.i64(d.hops);
    w.i64(d.sent);
    w.i64(d.delivered);
    w.i64(d.dropped);
    w.i64(d.membership_events);
    w.u64(d.traffic_hash);
}

trace_final_digest parse_final_digest(core::byte_reader& r) {
    trace_final_digest d;
    d.now = r.i64();
    d.hops = r.i64();
    d.sent = r.i64();
    d.delivered = r.i64();
    d.dropped = r.i64();
    d.membership_events = r.i64();
    d.traffic_hash = r.u64();
    return d;
}

bool set_error(std::string* error, const char* what) {
    if (error != nullptr) *error = what;
    return false;
}

// Total order over records for the per_tick_set multiset comparison.
auto record_key(const trace_record& r) {
    return std::tie(r.at, r.node, r.kind, r.port, r.source, r.destination, r.subject,
                    r.stamp, r.tag, r.ttl, r.relay_final);
}

bool record_less(const trace_record& a, const trace_record& b) {
    return record_key(a) < record_key(b);
}

trace_final_digest read_final_digest(const simulator& sim) {
    trace_final_digest d;
    d.now = sim.now();
    d.hops = sim.stats().get(counter_hops);
    d.sent = sim.stats().get(counter_messages_sent);
    d.delivered = sim.stats().get(counter_messages_delivered);
    d.dropped = sim.stats().get(counter_messages_dropped);
    d.membership_events = sim.stats().get(counter_membership_events);
    d.traffic_hash = trace_traffic_hash(sim);
    return d;
}

}  // namespace

std::uint64_t trace_traffic_hash(const simulator& sim) {
    core::fnv1a_hasher h;
    const net::node_id n = sim.network().node_count();
    for (net::node_id v = 0; v < n; ++v) {
        h.update_u64(static_cast<std::uint64_t>(sim.traffic(v)));
        h.update_u64(static_cast<std::uint64_t>(sim.transit_traffic(v)));
    }
    return h.digest();
}

std::vector<std::uint8_t> encode_trace(const trace& t) {
    // Body first, so the checksum in the header can cover it.
    core::byte_writer body;
    body.u32(static_cast<std::uint32_t>(t.config.size()));
    for (std::uint8_t b : t.config) body.u8(b);
    // Interleave digests at their recorded positions: every digest covers
    // the records of one tick, so it sorts after that tick's records and
    // before the next tick's (the order the observer saw them in).
    std::size_t di = 0;
    for (const trace_record& r : t.records) {
        while (di < t.digests.size() && t.digests[di].tick < r.at)
            encode_tick_digest(body, t.digests[di++]);
        encode_record(body, r);
    }
    while (di < t.digests.size()) encode_tick_digest(body, t.digests[di++]);
    encode_final_digest(body, t.summary);

    core::fnv1a_hasher checksum;
    checksum.update(body.bytes().data(), body.size());

    core::byte_writer out;
    out.u32(trace_magic);
    out.u32(trace_format_version);
    out.u64(checksum.digest());
    for (std::uint8_t b : body.bytes()) out.u8(b);
    return out.bytes();
}

bool parse_trace(const std::uint8_t* data, std::size_t size, trace& out, std::string* error) {
    core::byte_reader header{data, size};
    if (header.u32() != trace_magic) return set_error(error, "bad magic (not a trace file)");
    if (header.u32() != trace_format_version) return set_error(error, "unsupported trace version");
    const std::uint64_t stored = header.u64();
    if (!header.ok()) return set_error(error, "truncated header");

    const std::size_t body_off = 4 + 4 + 8;
    core::fnv1a_hasher checksum;
    checksum.update(data + body_off, size - body_off);
    if (checksum.digest() != stored) return set_error(error, "checksum mismatch (corrupt trace)");

    core::byte_reader r{data + body_off, size - body_off};
    trace t;
    const std::uint32_t config_size = r.u32();
    if (config_size > r.remaining()) return set_error(error, "truncated config blob");
    t.config.resize(config_size);
    for (std::uint32_t i = 0; i < config_size; ++i) t.config[i] = r.u8();

    bool saw_final = false;
    while (r.ok() && r.remaining() > 0) {
        if (saw_final) return set_error(error, "entries after the final digest");
        switch (r.u8()) {
            case tag_record: t.records.push_back(parse_record(r)); break;
            case tag_tick_digest: t.digests.push_back(parse_tick_digest(r)); break;
            case tag_final_digest:
                t.summary = parse_final_digest(r);
                saw_final = true;
                break;
            default: return set_error(error, "unknown entry tag");
        }
    }
    if (!r.exhausted()) return set_error(error, "truncated entry stream");
    if (!saw_final) return set_error(error, "missing final digest");
    out = std::move(t);
    return true;
}

void trace_recorder::finalize(const simulator& sim) { out_.summary = read_final_digest(sim); }

void trace_checker::on_delivery(const trace_record& rec) {
    // Bounded live-side context: the window before the divergence plus a
    // few records after it; a multi-million-record replay must not buffer
    // its whole delivery stream just in case it fails.
    if (!failed_) {
        if (recent_.size() >= 16) recent_.erase(recent_.begin());
        recent_.push_back(rec);
    } else if (post_fail_ < 8) {
        recent_.push_back(rec);
        ++post_fail_;
    }
    if (failed_) return;
    if (order_ == trace_order::per_tick_set) {
        // Buffer the current tick; compare as a multiset once the engine
        // moves on (next-tick record or the tick's digest, whichever first).
        if (!tick_live_.empty() && tick_live_.front().at != rec.at) flush_tick_set();
        if (failed_) return;
        if (next_record_ + tick_live_.size() >= ref_->records.size()) {
            fail("extra delivery beyond the " + std::to_string(ref_->records.size()) +
                 " recorded:\n  live: " + describe(rec));
            return;
        }
        tick_live_.push_back(rec);
        return;
    }
    if (next_record_ >= ref_->records.size()) {
        fail("extra delivery beyond the " + std::to_string(ref_->records.size()) +
             " recorded:\n  live: " + describe(rec));
        return;
    }
    const trace_record& want = ref_->records[next_record_];
    if (!(rec == want)) {
        fail("delivery record " + std::to_string(next_record_) +
             " diverged:\n  want: " + describe(want) + "\n  live: " + describe(rec));
        return;
    }
    ++next_record_;
}

void trace_checker::flush_tick_set() {
    if (failed_ || tick_live_.empty()) return;
    const std::int64_t tick = tick_live_.front().at;
    std::size_t end = next_record_;
    while (end < ref_->records.size() && ref_->records[end].at == tick) ++end;
    const std::size_t want_n = end - next_record_;
    if (want_n != tick_live_.size()) {
        fail("tick " + std::to_string(tick) + ": " + std::to_string(tick_live_.size()) +
             " live deliveries vs " + std::to_string(want_n) + " recorded");
        tick_live_.clear();
        return;
    }
    std::vector<trace_record> want(ref_->records.begin() +
                                       static_cast<std::ptrdiff_t>(next_record_),
                                   ref_->records.begin() + static_cast<std::ptrdiff_t>(end));
    std::vector<trace_record> live = tick_live_;
    std::sort(want.begin(), want.end(), record_less);
    std::sort(live.begin(), live.end(), record_less);
    for (std::size_t i = 0; i < want.size(); ++i) {
        if (!(want[i] == live[i])) {
            fail("tick " + std::to_string(tick) +
                 " delivery sets diverged (order-insensitive compare):\n  want: " +
                 describe(want[i]) + "\n  live: " + describe(live[i]));
            break;
        }
    }
    next_record_ = end;
    tick_live_.clear();
}

void trace_checker::on_tick_digest(const trace_tick_digest& digest) {
    if (failed_) return;
    if (order_ == trace_order::per_tick_set) {
        flush_tick_set();
        if (failed_) return;
    }
    if (next_digest_ >= ref_->digests.size()) {
        fail("extra tick digest beyond the " + std::to_string(ref_->digests.size()) +
             " recorded:\n  live: " + describe(digest));
        return;
    }
    const trace_tick_digest& want = ref_->digests[next_digest_];
    if (!(digest == want)) {
        fail("tick digest " + std::to_string(next_digest_) +
             " diverged:\n  want: " + describe(want) + "\n  live: " + describe(digest));
        return;
    }
    ++next_digest_;
}

void trace_checker::finalize(const simulator& sim) { finalize(read_final_digest(sim)); }

void trace_checker::finalize(const trace_final_digest& live) {
    if (order_ == trace_order::per_tick_set) flush_tick_set();
    if (failed_) return;
    if (next_record_ != ref_->records.size()) {
        fail("replay ended after " + std::to_string(next_record_) + " of " +
             std::to_string(ref_->records.size()) + " recorded deliveries");
        return;
    }
    if (next_digest_ != ref_->digests.size()) {
        fail("replay ended after " + std::to_string(next_digest_) + " of " +
             std::to_string(ref_->digests.size()) + " recorded tick digests");
        return;
    }
    if (!(live == ref_->summary)) {
        std::ostringstream os;
        os << "final digest diverged:";
        const trace_final_digest& want = ref_->summary;
        auto field = [&](const char* name, std::int64_t w, std::int64_t l) {
            if (w != l) os << "\n  " << name << ": want " << w << ", live " << l;
        };
        field("now", want.now, live.now);
        field("hops", want.hops, live.hops);
        field("sent", want.sent, live.sent);
        field("delivered", want.delivered, live.delivered);
        field("dropped", want.dropped, live.dropped);
        field("membership_events", want.membership_events, live.membership_events);
        if (want.traffic_hash != live.traffic_hash)
            os << "\n  traffic_hash: want " << want.traffic_hash << ", live "
               << live.traffic_hash;
        fail(os.str());
    }
}

void trace_checker::fail(std::string what) {
    failed_ = true;
    what_ = std::move(what);
}

std::string trace_checker::describe(const trace_record& r) {
    std::ostringstream os;
    os << "t=" << r.at << " node=" << r.node << " kind=" << r.kind << " port=" << r.port
       << " " << r.source << "->" << r.destination << " subject=" << r.subject
       << " stamp=" << r.stamp << " tag=" << r.tag << " ttl=" << r.ttl;
    if (r.relay_final >= 0) os << " relay_final=" << r.relay_final;
    return os.str();
}

std::string trace_checker::describe(const trace_tick_digest& d) {
    std::ostringstream os;
    os << "tick=" << d.tick << " sent=" << d.sent << " delivered=" << d.delivered
       << " dropped=" << d.dropped;
    return os.str();
}

std::string trace_checker::failure(int context) const {
    if (!failed_) return {};
    std::ostringstream os;
    os << what_;
    // Context window: the records around the divergence point on both sides.
    const std::size_t pivot = next_record_;
    const std::size_t lo = pivot > static_cast<std::size_t>(context)
                               ? pivot - static_cast<std::size_t>(context)
                               : 0;
    os << "\ncontext (recorded trace, records " << lo << "..):";
    for (std::size_t i = lo;
         i < ref_->records.size() && i < pivot + static_cast<std::size_t>(context) + 1; ++i)
        os << "\n  [" << i << "] " << describe(ref_->records[i]);
    if (!recent_.empty()) {
        const std::size_t n = recent_.size();
        const std::size_t start = n > static_cast<std::size_t>(2 * context + 1)
                                      ? n - static_cast<std::size_t>(2 * context + 1)
                                      : 0;
        os << "\ncontext (live run, last " << (n - start) << " deliveries):";
        for (std::size_t i = start; i < n; ++i)
            os << "\n  [" << i << "] " << describe(recent_[i]);
    }
    return os.str();
}

}  // namespace mm::sim
