// simulator.h - deterministic discrete-event store-and-forward simulator.
//
// Models the paper's network: "Each node processes messages it receives from
// its neighbors, performs local computations on messages and sends messages
// to neighbors.  All these actions take finite time.  A message pass or hop
// consists of the sending of a message from one node to one of its direct
// neighbors."  One hop takes one tick; each hop increments the global
// message-pass counter, which is the paper's complexity measure.
//
// Nodes can crash and recover; a crashed node silently drops everything
// addressed to or routed through it (fail-stop, no Byzantine behavior).
//
// --- Delivery fast path / slow path contract --------------------------------
//
// Intermediate nodes never execute handler code: forwarding is transparent
// store-and-forward, and on_message fires only at a message's destination
// (or at a Valiant relay, which *is* the destination of that leg).  So while
// no node is crashed and routing is deterministic, nothing observable can
// happen to a message between its first hop and its arrival - and the
// simulator exploits that (the "fast path"): a message's first hop is a real
// event at the send tick (anchoring the message's place in same-tick FIFO
// order exactly where a hop-by-hop run puts it), and the remaining hops
// collapse into ONE batched arrival event at send_tick + distance(source,
// destination).  The skipped hops' traffic/transit credits, the global hop
// counter, and the per-tag hop counters are computed analytically from the
// message's precomputed path when the arrival fires, so at any instant with
// no batched message in flight (in particular at quiescence, where every
// experiment reads them) all counters are bit-identical to a hop-by-hop run.
// Mid-flight, counters lag a batched message between its first hop and its
// arrival - per-hop-per-tick counter evolution is the only observable the
// fast path gives up.
//
// The slow path - one event per hop along the same precomputed path, with a
// crash check at every hop's arrival tick - is kept and used whenever
// per-hop semantics can matter:
//  * any node is crashed (messages launched or forwarded during a crash
//    window may have to die at a specific hop at a specific tick),
//  * randomized routing is enabled (the next hop is sampled per hop), or
//  * batching is disabled via set_batched_delivery(false), the equivalence-
//    testing switch.
// A message on the slow path upgrades back to a batched arrival at its next
// forwarding hop once every node has recovered.
//
// crash(v) rewrites every in-flight batched arrival into a slow-path message
// positioned at the hop it occupies at the crash tick, crediting the hops
// already made (arrival ticks <= now), so a crash window always gets exact
// hop-by-hop treatment.  For callers that crash nodes from the top level -
// between run()/run_until() calls, possibly after same-tick send()s, which
// is every caller in this repository - the rewrite reproduces the hop-by-hop
// run exactly.  Only a crash() issued from *inside* a handler can race the
// current tick's not-yet-processed hop events; such a crash takes effect for
// batched traffic from the next tick on.
//
// Routing state is bounded: the embedded routing_table keeps at most
// set_route_cache_limit() BFS rows resident (LRU), see net/routing.h.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/graph.h"
#include "net/routing.h"
#include "sim/calendar_queue.h"
#include "sim/metrics.h"

namespace mm::sim {

// Simulation time in ticks; one hop = one tick.
using time_point = std::int64_t;

// A network message.  Everything except `destination` is application
// payload; the simulator itself only routes on destination.
struct message {
    int kind = 0;
    std::uint64_t port = 0;
    net::node_id source = net::invalid_node;
    net::node_id destination = net::invalid_node;
    // Address a post or reply is talking about (e.g. a server's location).
    net::node_id subject_address = net::invalid_node;
    // Send time, used for timestamp conflict resolution in caches.
    time_point stamp = 0;
    // Request correlation id.
    std::int64_t tag = 0;
    // Relative time-to-live carried by posts (-1 = the entry never expires).
    std::int64_t ttl = -1;
    // Two-phase (Valiant) relaying: when set, `destination` is only an
    // intermediate hop and the handler there forwards to `relay_final`.
    net::node_id relay_final = net::invalid_node;
};

class simulator;

// Behavior attached to a node.  Handlers are invoked only while the node is
// up; a crash wipes whatever soft state the handler keeps (on_crash).
class node_handler {
public:
    virtual ~node_handler() = default;
    virtual void on_message(simulator& sim, const message& msg) = 0;
    virtual void on_timer(simulator& sim, std::int64_t timer_id) { (void)sim, (void)timer_id; }
    virtual void on_crash(simulator& sim) { (void)sim; }
};

class simulator {
public:
    // The graph must outlive the simulator and be connected.
    explicit simulator(const net::graph& g);

    simulator(const simulator&) = delete;
    simulator& operator=(const simulator&) = delete;

    // Attaches behavior to a node (replacing any previous handler).
    void attach(net::node_id v, std::shared_ptr<node_handler> handler);

    // Injects a message at msg.source at the current time; it travels toward
    // msg.destination along one shortest path (batched or hop-by-hop per the
    // fast/slow-path contract above).  Sending from a crashed node is a
    // silent no-op (the process died with its host).  A destination with no
    // handler attached is dropped at the send itself - counted once under
    // counter_messages_dropped, zero hops spent - identically on both paths.
    void send(message msg);

    // Schedules on_timer(timer_id) at the given node after `delay` ticks.
    void set_timer(net::node_id v, time_point delay, std::int64_t timer_id);

    // Fail-stop crash; drops in-flight deliveries at v and future traffic
    // through v until recover(v).  Demotes in-flight batched arrivals to
    // hop-by-hop (see the contract above).
    void crash(net::node_id v);
    void recover(net::node_id v);
    [[nodiscard]] bool crashed(net::node_id v) const;

    // Runs until the event queue is empty (or the safety cap is hit).
    void run();
    // Runs events with time <= t.
    void run_until(time_point t);
    // Processes the single next event regardless of its time; returns false
    // (and does nothing) when the queue is empty.  The building block for
    // callers that interleave simulation with their own completion checks
    // (name_service::run_until_complete).
    bool step();
    // True if no events remain.
    [[nodiscard]] bool idle() const noexcept { return events_.empty(); }

    [[nodiscard]] time_point now() const noexcept { return now_; }
    [[nodiscard]] metrics& stats() noexcept { return metrics_; }
    [[nodiscard]] const metrics& stats() const noexcept { return metrics_; }
    [[nodiscard]] const net::graph& network() const noexcept { return *graph_; }
    [[nodiscard]] const net::routing_table& routes() const noexcept { return routes_; }

    // Messages that visited node v (as a forwarding hop or final
    // destination); the "clogging" measure of Section 3.2's Valiant remark.
    // Exact whenever no batched message is in flight (fast-path contract).
    [[nodiscard]] std::int64_t traffic(net::node_id v) const;
    [[nodiscard]] std::int64_t max_traffic() const;
    // Messages node v only carried (injected or forwarded toward someone
    // else) - transit load, excluding deliveries to v itself.
    [[nodiscard]] std::int64_t transit_traffic(net::node_id v) const;
    [[nodiscard]] std::int64_t max_transit_traffic() const;
    void reset_traffic();

    // Per-tag hop accounting: every hop of a message with tag != 0 is also
    // credited to that tag, so concurrent operations sharing one run can be
    // costed in isolation.  The per-tag counts partition counter_hops when
    // every message carries a tag.  Unknown tags read 0.
    [[nodiscard]] std::int64_t tag_hops(std::int64_t tag) const;
    // Releases a finished tag's counter (bounded memory for long workloads).
    void drop_tag(std::int64_t tag) { tag_hops_.erase(tag); }

    // Safety cap on processed events (default 50M); run() throws
    // std::runtime_error when exceeded, which always indicates a protocol
    // loop in a handler.
    void set_event_cap(std::int64_t cap) noexcept { event_cap_ = cap; }

    // Randomized shortest-path routing: each hop picks uniformly among all
    // neighbors that lie on some shortest path, instead of the fixed path.
    // Deterministic per seed.  Fixed routing concentrates load on
    // low-numbered nodes (BFS tie-breaking); randomization spreads it - the
    // precondition for Valiant relaying to pay off (Section 3.2 remark).
    // Forces the slow path: the route is only known one hop at a time.
    void set_randomized_routing(std::uint64_t seed);

    // Equivalence-testing switch: with batching off every deterministic
    // message is simulated hop by hop.  Counters, delivery times, and
    // delivery order at quiescence are identical either way (asserted by
    // tests/test_sim_equivalence.cpp); only the event count differs.
    void set_batched_delivery(bool on) noexcept { batched_ = on; }
    [[nodiscard]] bool batched_delivery() const noexcept { return batched_; }

    // Bounds the resident BFS rows of the embedded routing table (LRU).
    void set_route_cache_limit(std::size_t rows) { routes_.set_row_cache_limit(rows); }

private:
    enum class event_kind {
        hop,      // slow path: arrival at path[hop_index] (or at `node` when
                  // routing is randomized and no path is precomputed)
        deliver,  // fast path: batched arrival at the destination
        timer,
    };

    struct event {
        time_point at = 0;
        event_kind kind = event_kind::hop;
        net::node_id node = net::invalid_node;  // where the event happens
        message msg;
        std::int64_t timer_id = 0;
        // Precomputed route (deterministic modes); shared so per-hop events
        // re-queue in O(1).
        std::shared_ptr<const std::vector<net::node_id>> path;
        std::int32_t hop_index = 0;  // position in *path for kind == hop
        std::int32_t credited = 0;   // hops already credited (kind == deliver)
        time_point sent_at = 0;      // when the message entered the network
    };

    const net::graph* graph_;
    net::routing_table routes_;
    std::vector<std::shared_ptr<node_handler>> handlers_;
    std::vector<char> crashed_;
    std::vector<std::int64_t> traffic_;
    std::vector<std::int64_t> transit_;
    calendar_queue<event> events_;
    time_point now_ = 0;
    std::int64_t processed_ = 0;
    std::int64_t event_cap_ = 50'000'000;
    std::int64_t crashed_count_ = 0;
    std::int64_t batched_in_flight_ = 0;
    bool batched_ = true;
    std::unordered_map<std::int64_t, std::int64_t> tag_hops_;
    metrics metrics_;
    bool randomized_routing_ = false;
    std::uint64_t route_rng_state_ = 0;

    void process(event e);
    // Slow path: one arrival, crash-checked; forwards one hop onward or
    // upgrades the remainder of the route to a batched arrival.
    void arrive_slow(event e);
    // Fast path: batched arrival; credits the skipped hops analytically.
    void arrive_batched(const event& e);
    // Credits hops first..last-1 of `path` (traffic + transit + global and
    // per-tag hop counters): the transit prefix a batched message skipped.
    void credit_hops(const std::vector<net::node_id>& path, std::int64_t first,
                     std::int64_t last, std::int64_t tag);
    // Rewrites pending batched arrivals as slow-path events at their current
    // position (called by crash()).
    void devolve_batched_deliveries();
    [[nodiscard]] net::node_id pick_next_hop(net::node_id at, net::node_id dest);
};

}  // namespace mm::sim
