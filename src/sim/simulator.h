// simulator.h - deterministic discrete-event store-and-forward simulator.
//
// Models the paper's network: "Each node processes messages it receives from
// its neighbors, performs local computations on messages and sends messages
// to neighbors.  All these actions take finite time.  A message pass or hop
// consists of the sending of a message from one node to one of its direct
// neighbors."  One hop takes one tick; each hop increments the global
// message-pass counter, which is the paper's complexity measure.
//
// Nodes can crash and recover; a crashed node silently drops everything
// addressed to or routed through it (fail-stop, no Byzantine behavior).
//
// --- Delivery fast path / slow path contract --------------------------------
//
// Intermediate nodes never execute handler code: forwarding is transparent
// store-and-forward, and on_message fires only at a message's destination
// (or at a Valiant relay, which *is* the destination of that leg).  So while
// no node is crashed and routing is deterministic, nothing observable can
// happen to a message between its first hop and its arrival - and the
// simulator exploits that (the "fast path"): a message's first hop is a real
// event at the send tick (anchoring the message's place in same-tick FIFO
// order exactly where a hop-by-hop run puts it), and the remaining hops
// collapse into ONE batched arrival event at send_tick + distance(source,
// destination).  The skipped hops' traffic/transit credits, the global hop
// counter, and the per-tag hop counters are computed analytically from the
// message's precomputed path when the arrival fires, so at any instant with
// no batched message in flight (in particular at quiescence, where every
// experiment reads them) all counters are bit-identical to a hop-by-hop run.
// Mid-flight, counters lag a batched message between its first hop and its
// arrival - per-hop-per-tick counter evolution is the only observable the
// fast path gives up.
//
// The slow path - one event per hop along the same precomputed path, with a
// crash check at every hop's arrival tick - is kept and used whenever
// per-hop semantics can matter:
//  * any node is crashed (messages launched or forwarded during a crash
//    window may have to die at a specific hop at a specific tick),
//  * randomized routing is enabled (the next hop is sampled per hop), or
//  * batching is disabled via set_batched_delivery(false), the equivalence-
//    testing switch.
// A message on the slow path upgrades back to a batched arrival at its next
// forwarding hop once every node has recovered.
//
// crash(v) rewrites every in-flight batched arrival into a slow-path message
// positioned at the hop it occupies at the crash tick, crediting the hops
// already made (arrival ticks <= now), so a crash window always gets exact
// hop-by-hop treatment.  For callers that crash nodes from the top level -
// between run()/run_until() calls, possibly after same-tick send()s, which
// is every caller in this repository - the rewrite reproduces the hop-by-hop
// run exactly.  Only a crash() issued from *inside* a handler can race the
// current tick's not-yet-processed hop events; such a crash takes effect for
// batched traffic from the next tick on.
//
// Routing state is bounded: the embedded routing_table keeps at most
// set_route_cache_limit() BFS rows resident (LRU), see net/routing.h.
//
// --- Parallel engine (set_worker_threads) -----------------------------------
//
// set_worker_threads(k) switches the simulator into a sharded tick-barrier
// engine: nodes are pinned to shards (net::shard_map over the paper's
// Erdos-Gerencser-Mate connected carve), every shard owns a calendar queue,
// and all events of the current tick execute shard-parallel on a worker
// pool, with cross-shard messages exchanged through mailboxes at barriers.
// Results are *bit-identical for every k* (and equal to what the k = 1
// configuration computes with today's exact serial loop) because execution
// order is canonical, not thread-dependent:
//
//  * Every queued event carries an ordering key (parent seq, child index):
//    the globally-merged processing sequence number of the event that
//    pushed it, plus the push's index within that parent.  Sorting a tick's
//    events by key reproduces exactly the serial engine's FIFO order, so
//    handler execution order - and therefore every counter, RNG draw, and
//    latency histogram - is independent of the thread count.
//  * Same-tick cascades (an event pushing another event at the current
//    tick) run as sub-rounds: all pushes of round r are collected at a
//    barrier, key-merged, and executed as round r+1; a tick ends when a
//    round produces no same-tick work.  This is precisely the serial
//    queue's generation order.
//  * Shared counters (hops, traffic, per-tag) are commutative sums,
//    accumulated per shard or with relaxed atomics and merged at barriers.
//  * No merge work funnels through the coordinator (the barrier pipeline):
//    each shard fills its own round 0 from its own calendar queue;
//    per-round sequence numbers are k-way merge *ranks* each shard computes
//    for its own (already key-sorted) round with two-pointer walks over the
//    other shards' rounds; same-tick and future cross-shard mailboxes are
//    key-merged by the shard that owns the destination queue; and the
//    per-shard counter accumulators fold pairwise (sums commute, so the
//    fold tree's shape cannot change totals).  Per-tick phase timers
//    (round-execute, rank-merge, mailbox-flush, barrier-wait; see
//    sim/metrics.h) measure what serial residue remains.
//  * Each shard owns a routing table in source-rooted-paths mode
//    (net::routing_table::set_source_rooted_paths), which makes path(a, b)
//    a pure function of the endpoints - so routes, and hence crash
//    outcomes, cannot depend on which shard's cache answers.
//
// In parallel mode the scheduling quantum is one tick: step() executes all
// events of the earliest pending tick (run_until and run are unchanged
// callers of it).  The clock still advances to the horizon of run_until
// even when some - or all - shards have no pending events.  Randomized
// routing draws per-hop from one sequential stream, so it forces the rounds
// of a parallel run to execute single-threaded (still canonically ordered
// and deterministic).  crash()/recover()/attach() and the begin_*/poll API
// of the runtime layer remain top-level calls: invoking them from inside a
// handler while a parallel round is executing throws.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/arena.h"
#include "core/flat_map.h"
#include "net/graph.h"
#include "net/routing.h"
#include "net/shard_map.h"
#include "sim/calendar_queue.h"
#include "sim/metrics.h"

namespace mm::sim {

// Simulation time in ticks; one hop = one tick.
using time_point = std::int64_t;

// A network message.  Everything except `destination` is application
// payload; the simulator itself only routes on destination.
struct message {
    int kind = 0;
    std::uint64_t port = 0;
    net::node_id source = net::invalid_node;
    net::node_id destination = net::invalid_node;
    // Address a post or reply is talking about (e.g. a server's location).
    net::node_id subject_address = net::invalid_node;
    // Send time, used for timestamp conflict resolution in caches.
    time_point stamp = 0;
    // Request correlation id.
    std::int64_t tag = 0;
    // Relative time-to-live carried by posts (-1 = the entry never expires).
    std::int64_t ttl = -1;
    // Two-phase (Valiant) relaying: when set, `destination` is only an
    // intermediate hop and the handler there forwards to `relay_final`.
    net::node_id relay_final = net::invalid_node;
};

class simulator;
class trace_observer;  // sim/trace.h

// Behavior attached to a node.  Handlers are invoked only while the node is
// up; a crash wipes whatever soft state the handler keeps (on_crash).
// Under the parallel engine a handler runs on the worker that owns its
// node's shard; handlers may freely touch their own node's state and call
// send()/set_timer(), but cross-node shared state they reach must be
// commutative or synchronized (see the runtime layer for the pattern).
class node_handler {
public:
    virtual ~node_handler() = default;
    virtual void on_message(simulator& sim, const message& msg) = 0;
    virtual void on_timer(simulator& sim, std::int64_t timer_id) { (void)sim, (void)timer_id; }
    virtual void on_crash(simulator& sim) { (void)sim; }
};

class simulator {
public:
    // The graph must outlive the simulator and be connected.
    explicit simulator(const net::graph& g);
    // Mutable-graph overload: same engine, but additionally enables the
    // dynamic-membership API (join/leave/rejoin below), which mutates the
    // graph through this reference.  The graph must not be mutated behind
    // the simulator's back once handed over.
    explicit simulator(net::graph& g);
    ~simulator();

    simulator(const simulator&) = delete;
    simulator& operator=(const simulator&) = delete;

    // Attaches behavior to a node (replacing any previous handler).
    void attach(net::node_id v, std::shared_ptr<node_handler> handler);

    // Injects a message at msg.source at the current time; it travels toward
    // msg.destination along one shortest path (batched or hop-by-hop per the
    // fast/slow-path contract above).  Sending from a crashed node is a
    // silent no-op (the process died with its host).  A destination with no
    // handler attached is dropped at the send itself - counted once under
    // counter_messages_dropped, zero hops spent - identically on both paths.
    void send(message msg);

    // Schedules on_timer(timer_id) at the given node after `delay` ticks.
    void set_timer(net::node_id v, time_point delay, std::int64_t timer_id);

    // Fail-stop crash; drops in-flight deliveries at v and future traffic
    // through v until recover(v).  Demotes in-flight batched arrivals to
    // hop-by-hop (see the contract above).  Top-level only in parallel mode
    // (throws from inside a round).
    void crash(net::node_id v);
    void recover(net::node_id v);
    // True when v is crashed OR departed: both states drop traffic at v.
    [[nodiscard]] bool crashed(net::node_id v) const;

    // --- dynamic membership -------------------------------------------------
    // Available only with the mutable-graph constructor (topology_mutable());
    // all three are top-level calls like crash()/recover().  Membership
    // events are ordered against in-flight batched deliveries exactly the
    // way crash() is: leave() demotes pending batched arrivals to hop-by-hop
    // so a message crossing the leaving node dies at that hop at the right
    // tick, and a message still in flight keeps following its launch-time
    // route (store-and-forward does not reroute mid-flight).
    //
    // join(attach) adds a fresh node connected to the present nodes in
    // `attach` (at least one; duplicates throw) and returns its id.
    // leave(v) removes a present node: in-flight traffic through it is
    // demoted and dropped at its hop, its handler gets on_crash and is
    // detached, and its edges are removed from the graph (routing tables
    // repair incrementally off the graph's change log).
    // rejoin(v, attach) restores a departed id with new attachment edges;
    // the caller re-attaches a handler afterwards.
    [[nodiscard]] net::node_id join(std::span<const net::node_id> attach);
    void leave(net::node_id v);
    void rejoin(net::node_id v, std::span<const net::node_id> attach);
    [[nodiscard]] bool departed(net::node_id v) const;
    [[nodiscard]] bool topology_mutable() const noexcept { return graph_m_ != nullptr; }

    // Runs until the event queue is empty (or the safety cap is hit).
    void run();
    // Runs events with time <= t, then advances the clock to the horizon t
    // itself - even when future events remain pending and even when the
    // queue is empty (PR-2 semantics, asserted by
    // tests/test_run_until_horizon.cpp).  Without this, an armed periodic
    // timer would stall simulated time and TTL soft state could never age
    // out between runs.  transport::transport::poll mirrors exactly this
    // contract in real time: an idle poll still advances now() by max_wait.
    void run_until(time_point t);
    // Serial engine: processes the single next event regardless of its time.
    // Parallel engine: processes every event of the earliest pending tick
    // (the scheduling quantum is a tick).  Returns false (and does nothing)
    // when no events remain.  The building block for callers that
    // interleave simulation with their own completion checks
    // (name_service::run_until_complete).
    bool step();
    // True if no events remain.
    [[nodiscard]] bool idle() const noexcept;
    // Tick of the earliest pending event, if any (either engine).  A peek
    // for pollers - e.g. transport::sim_transport - that must not process
    // events beyond a horizon.  Non-const because the serial calendar queue
    // advances its cursor past empty buckets lazily.
    [[nodiscard]] std::optional<time_point> next_event_time();

    [[nodiscard]] time_point now() const noexcept { return now_; }
    [[nodiscard]] metrics& stats() noexcept { return metrics_; }
    [[nodiscard]] const metrics& stats() const noexcept { return metrics_; }
    [[nodiscard]] const net::graph& network() const noexcept { return *graph_; }
    // The routing view of the calling context: inside a parallel round this
    // is the executing shard's table (source-rooted, so path answers are
    // identical everywhere); at top level it is the simulator's own table.
    [[nodiscard]] const net::routing_table& routes() const;

    // --- parallel execution -------------------------------------------------
    // Switches to the sharded tick-barrier engine with `threads` workers and
    // one shard per worker (node -> shard via net::make_shard_map; the
    // overload takes an explicit map, e.g. region hints from a hierarchy).
    // Callable at top level at any time; pending events are re-distributed.
    // threads = 1 runs the same canonical tick order single-threaded, and
    // any two thread counts produce bit-identical results (see the engine
    // contract above).  Also flips every routing view into source-rooted-
    // paths mode, the purity requirement of that contract.
    void set_worker_threads(int threads);
    void set_worker_threads(int threads, net::shard_map map);
    // 0 when the serial engine is active (set_worker_threads never called).
    [[nodiscard]] int worker_threads() const noexcept;
    [[nodiscard]] bool parallel() const noexcept { return par_ != nullptr; }
    // True while a parallel round is executing handler code (used by the
    // runtime layer to reject re-entrant top-level-only calls).
    [[nodiscard]] bool in_parallel_round() const noexcept;
    // The node -> shard assignment (parallel mode only; throws otherwise).
    [[nodiscard]] const net::shard_map& shard_assignment() const;

    // Messages that visited node v (as a forwarding hop or final
    // destination); the "clogging" measure of Section 3.2's Valiant remark.
    // Exact whenever no batched message is in flight (fast-path contract).
    [[nodiscard]] std::int64_t traffic(net::node_id v) const;
    [[nodiscard]] std::int64_t max_traffic() const;
    // Messages node v only carried (injected or forwarded toward someone
    // else) - transit load, excluding deliveries to v itself.
    [[nodiscard]] std::int64_t transit_traffic(net::node_id v) const;
    [[nodiscard]] std::int64_t max_transit_traffic() const;
    void reset_traffic();

    // Per-tag hop accounting: every hop of a message with tag != 0 is also
    // credited to that tag, so concurrent operations sharing one run can be
    // costed in isolation.  The per-tag counts partition counter_hops when
    // every message carries a tag.  Unknown tags read 0.
    [[nodiscard]] std::int64_t tag_hops(std::int64_t tag) const;
    // Releases a finished tag's counter (bounded memory for long workloads).
    void drop_tag(std::int64_t tag) { tag_hops_.erase(tag); }

    // --- trace recording ----------------------------------------------------
    // Arms (nullptr disarms) an observer over the delivery stream
    // (sim/trace.h): one trace_record per on_message invocation, in
    // canonical delivery order, plus one sent/delivered/dropped digest per
    // tick that delivered.  Digests flush lazily - when the engine first
    // moves past the tick - because a tick can be re-entered by top-level
    // same-tick sends; call flush_trace() at quiescence to emit the last
    // one.  Identical streams under every engine (the record/replay
    // contract); top-level only.  Swapping observers flushes the pending
    // digest to the old one first.
    void set_trace_observer(trace_observer* obs);
    // Emits the pending tick digest, if any, to the armed observer.
    void flush_trace();

    // Forces source-rooted (canonical) paths on the serial engine's routing
    // table, making path(a, b) a pure function of the endpoints.  The serial
    // engine's default tie-breaks depend on row-cache residency, which is
    // why it sits outside the cross-engine equality set under crashes/churn
    // (see tests/test_churn.cpp); with this on, a serial run is comparable
    // to any parallel run.  Parallel mode already forces it (turning it off
    // there throws).
    void set_canonical_paths(bool on);

    // Safety cap on processed events (default 50M); run() throws
    // std::runtime_error when exceeded, which always indicates a protocol
    // loop in a handler.  The parallel engine checks the cap per round.
    void set_event_cap(std::int64_t cap) noexcept { event_cap_ = cap; }

    // Randomized shortest-path routing: each hop picks uniformly among all
    // neighbors that lie on some shortest path, instead of the fixed path.
    // Deterministic per seed.  Fixed routing concentrates load on
    // low-numbered nodes (BFS tie-breaking); randomization spreads it - the
    // precondition for Valiant relaying to pay off (Section 3.2 remark).
    // Forces the slow path: the route is only known one hop at a time.  In
    // parallel mode it also forces rounds to execute single-threaded (the
    // per-hop draws are one sequential stream).
    void set_randomized_routing(std::uint64_t seed);

    // Equivalence-testing switch: with batching off every deterministic
    // message is simulated hop by hop.  Counters, delivery times, and
    // delivery order at quiescence are identical either way (asserted by
    // tests/test_sim_equivalence.cpp); only the event count differs.
    void set_batched_delivery(bool on) noexcept { batched_ = on; }
    [[nodiscard]] bool batched_delivery() const noexcept { return batched_; }

    // Bounds the resident BFS rows of the routing views (LRU).  In parallel
    // mode the budget is divided evenly over the simulator's own table plus
    // every shard table, each view keeping at least 4 rows.
    void set_route_cache_limit(std::size_t rows);

    // Below this many items a barrier-pipeline merge runs inline on the
    // coordinator instead of waking the worker pool (waking costs
    // microseconds, so tiny merges would pay more in wakeups than they
    // save).  Results are identical for any value - the threshold only picks
    // which threads do commutative, data-parallel work - so it is exposed as
    // a runtime tuning knob (bench_e18_parallel reads
    // MM_MERGE_PARALLEL_THRESHOLD and records the value in its report).
    void set_merge_parallel_threshold(std::int64_t items);
    [[nodiscard]] std::int64_t merge_parallel_threshold() const noexcept {
        return merge_par_threshold_;
    }

private:
    enum class event_kind {
        hop,      // slow path: arrival at path[hop_index] (or at `node` when
                  // routing is randomized and no path is precomputed)
        deliver,  // fast path: batched arrival at the destination
        timer,
    };

    struct event {
        time_point at = 0;
        event_kind kind = event_kind::hop;
        net::node_id node = net::invalid_node;  // where the event happens
        message msg;
        std::int64_t timer_id = 0;
        // Precomputed route (deterministic modes); shared so per-hop events
        // re-queue in O(1).
        std::shared_ptr<const std::vector<net::node_id>> path;
        std::int32_t hop_index = 0;  // position in *path for kind == hop
        std::int32_t credited = 0;   // hops already credited (kind == deliver)
        time_point sent_at = 0;      // when the message entered the network
        // Canonical ordering key: the processing sequence number of the
        // event (or top-level call) that pushed this one, plus the push's
        // index within that parent.  Key order == the serial engine's FIFO
        // order; the parallel engine sorts and merges by it.
        std::int64_t key_seq = 0;
        std::int32_t key_idx = 0;
        // This event's own globally-merged processing sequence number,
        // assigned just before it executes (children inherit it as key_seq).
        std::int64_t seq = 0;
    };

    // --- serial engine event storage (structure-of-arrays) ------------------
    // The serial calendar queue carries 24-byte ordering slots; each slot's
    // payload lives in a soa_arena split by access pattern - the message
    // row, the shared route row, and the small aux row.  A timer event
    // never touches the message/route rows at all (store and take skip
    // them), and recycled slots keep their capacity, so steady-state
    // push/pop moves a cache line through the buckets instead of the whole
    // ~160-byte event.  The parallel engine keeps full events: its shard
    // queues are drained wholesale at tick barriers where the AoS layout is
    // what the k-way merges want.
    using path_ptr = std::shared_ptr<const std::vector<net::node_id>>;
    struct event_aux {
        time_point sent_at = 0;
        std::int64_t timer_id = 0;
        std::int32_t hop_index = 0;
        std::int32_t credited = 0;
        net::node_id node = net::invalid_node;
        event_kind kind = event_kind::hop;
    };
    using event_store = core::soa_arena<message, path_ptr, event_aux>;
    struct event_slot {
        time_point at = 0;
        std::int64_t key_seq = 0;
        std::int32_t key_idx = 0;
        event_store::handle payload = 0;
    };

    struct hot_counters {
        std::int64_t hops = 0;
        std::int64_t sent = 0;
        std::int64_t delivered = 0;
        std::int64_t dropped = 0;
    };

    struct parallel_state;

    const net::graph* graph_;
    net::graph* graph_m_ = nullptr;  // set by the mutable-graph constructor
    net::routing_table routes_;
    std::vector<std::shared_ptr<node_handler>> handlers_;
    std::vector<char> crashed_;
    std::vector<char> departed_;
    // Relaxed atomics: increments are commutative, so parallel rounds can
    // credit path prefixes that cross shard boundaries lock-free and the
    // totals still match the serial run bit for bit.  Deques, not vectors:
    // join() grows them in place and std::atomic cannot be relocated.
    std::deque<std::atomic<std::int64_t>> traffic_;
    std::deque<std::atomic<std::int64_t>> transit_;
    calendar_queue<event_slot> events_;  // serial engine's queue (unused once parallel)
    event_store arena_;                  // payload rows behind events_'s slots
    time_point now_ = 0;
    std::int64_t processed_ = 0;
    std::int64_t event_cap_ = 50'000'000;
    std::int64_t crashed_count_ = 0;
    std::int64_t departed_count_ = 0;
    // Default confirmed by the 64/256/1024/4096 sweep (docs/BENCHMARKS.md
    // "Tuning the merge cutover"): rank-merge stays <= 3% of run time at
    // every point, so 256 holds until the CI perf job's multi-core
    // BENCH_e18_threshold_* artifacts say otherwise.
    std::int64_t merge_par_threshold_ = 256;
    std::atomic<std::int64_t> batched_in_flight_{0};
    bool batched_ = true;
    core::flat_map<std::int64_t> tag_hops_;
    metrics metrics_;
    bool randomized_routing_ = false;
    std::uint64_t route_rng_state_ = 0;
    std::int64_t seq_counter_ = 0;  // feeds event keys (serial and parallel)
    // Trace state (see set_trace_observer): the tick whose deliveries are
    // accumulated but not yet digested, and the counter totals as of the
    // last digest (so a digest is the delta since the previous one).
    trace_observer* trace_obs_ = nullptr;
    bool trace_pending_ = false;
    time_point trace_tick_ = 0;
    hot_counters trace_base_;
    // The caller's total routing-row budget; in parallel mode it is divided
    // evenly over the simulator's table plus every shard table (min 4 each).
    std::size_t route_rows_total_ = 0;
    std::unique_ptr<parallel_state> par_;

    void process(event e);
    // Slow path: one arrival, crash-checked; forwards one hop onward or
    // upgrades the remainder of the route to a batched arrival.
    void arrive_slow(event e);
    // Fast path: batched arrival; credits the skipped hops analytically.
    void arrive_batched(const event& e);
    // Credits hops first..last-1 of `path` (traffic + transit + global and
    // per-tag hop counters): the transit prefix a batched message skipped.
    void credit_hops(const std::vector<net::node_id>& path, std::int64_t first,
                     std::int64_t last, std::int64_t tag);
    // Rewrites pending batched arrivals as slow-path events at their current
    // position (called by crash()), preserving global FIFO order.
    void devolve_batched_deliveries();
    [[nodiscard]] net::node_id pick_next_hop(net::node_id at, net::node_id dest);
    // True when any of path[from..] is a departed node (a pre-leave route
    // still in flight); such a remainder must stay hop-by-hop so the message
    // dies at the departed hop at the right tick.
    [[nodiscard]] bool crosses_departed(const std::vector<net::node_id>& path,
                                        std::int64_t from) const;
    // Grows the per-node state arrays to the graph's node count (join()).
    void grow_node_state();
    void require_membership_call(const char* what) const;

    // Stamps the canonical key and routes the event to the right queue or
    // mailbox for the calling context.
    void push_event(event e);
    // Serial queue entry/exit: splits an event into a slot + arena rows and
    // back.  push_serial preserves the event's existing ordering key
    // (devolve re-pushes depend on that); take_slot releases the payload.
    void push_serial(event e);
    [[nodiscard]] event take_slot(const event_slot& s);
    // Counter sinks that dispatch to the executing shard's accumulator
    // inside a parallel round and to the global metrics otherwise.
    void note_hops(std::int64_t n);
    void note_sent();
    void note_delivered();
    void note_dropped();
    void credit_tag(std::int64_t tag, std::int64_t n);
    [[nodiscard]] bool in_this_sims_round() const noexcept;
    // Trace sink for one on_message invocation: feeds the observer directly
    // on the serial engine, buffers (seq, record) per shard inside a
    // parallel round (fed in merged seq order at the tick barrier).
    void note_delivery(const message& msg);
    // Emits the digest of trace_tick_ (pre: observer armed, digest pending).
    void flush_trace_tick();
    // Tick barrier: merges the shards' buffered records into canonical
    // order and feeds the observer.
    void feed_parallel_trace();

    // Parallel engine internals (defined with parallel_state in the .cpp).
    bool run_parallel_tick(time_point horizon);
    // Assigns the current round's global sequence numbers as shard-parallel
    // k-way merge ranks (each shard ranks its own key-sorted round against
    // the others; no coordinator-side sort).  Returns how many shards have
    // a non-empty round (the execution step's parallelism gate).
    int assign_round_seqs();
    // Tick barrier: every destination shard key-merges its own inbound
    // future mailboxes into its calendar queue.
    void flush_future_mailboxes();
    // Pairwise parallel fold of the per-shard counter/tag accumulators into
    // the global metrics (commutative, so bit-identical for any fold shape).
    void merge_shard_accumulators();
    [[nodiscard]] std::vector<event> drain_all_pending();
};

}  // namespace mm::sim
