// simulator.h - deterministic discrete-event store-and-forward simulator.
//
// Models the paper's network: "Each node processes messages it receives from
// its neighbors, performs local computations on messages and sends messages
// to neighbors.  All these actions take finite time.  A message pass or hop
// consists of the sending of a message from one node to one of its direct
// neighbors."  One hop takes one tick; each hop increments the global
// message-pass counter, which is the paper's complexity measure.
//
// Nodes can crash and recover; a crashed node silently drops everything
// addressed to or routed through it (fail-stop, no Byzantine behavior).
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "net/graph.h"
#include "net/routing.h"
#include "sim/metrics.h"

namespace mm::sim {

// Simulation time in ticks; one hop = one tick.
using time_point = std::int64_t;

// A network message.  Everything except `destination` is application
// payload; the simulator itself only routes on destination.
struct message {
    int kind = 0;
    std::uint64_t port = 0;
    net::node_id source = net::invalid_node;
    net::node_id destination = net::invalid_node;
    // Address a post or reply is talking about (e.g. a server's location).
    net::node_id subject_address = net::invalid_node;
    // Send time, used for timestamp conflict resolution in caches.
    time_point stamp = 0;
    // Request correlation id.
    std::int64_t tag = 0;
    // Relative time-to-live carried by posts (-1 = the entry never expires).
    std::int64_t ttl = -1;
    // Two-phase (Valiant) relaying: when set, `destination` is only an
    // intermediate hop and the handler there forwards to `relay_final`.
    net::node_id relay_final = net::invalid_node;
};

class simulator;

// Behavior attached to a node.  Handlers are invoked only while the node is
// up; a crash wipes whatever soft state the handler keeps (on_crash).
class node_handler {
public:
    virtual ~node_handler() = default;
    virtual void on_message(simulator& sim, const message& msg) = 0;
    virtual void on_timer(simulator& sim, std::int64_t timer_id) { (void)sim, (void)timer_id; }
    virtual void on_crash(simulator& sim) { (void)sim; }
};

class simulator {
public:
    // The graph must outlive the simulator and be connected.
    explicit simulator(const net::graph& g);

    simulator(const simulator&) = delete;
    simulator& operator=(const simulator&) = delete;

    // Attaches behavior to a node (replacing any previous handler).
    void attach(net::node_id v, std::shared_ptr<node_handler> handler);

    // Injects a message at msg.source at the current time; it is routed
    // hop-by-hop toward msg.destination.  Sending from a crashed node is a
    // silent no-op (the process died with its host).
    void send(message msg);

    // Schedules on_timer(timer_id) at the given node after `delay` ticks.
    void set_timer(net::node_id v, time_point delay, std::int64_t timer_id);

    // Fail-stop crash; drops in-flight deliveries at v and future traffic
    // through v until recover(v).
    void crash(net::node_id v);
    void recover(net::node_id v);
    [[nodiscard]] bool crashed(net::node_id v) const;

    // Runs until the event queue is empty (or the safety cap is hit).
    void run();
    // Runs events with time <= t.
    void run_until(time_point t);
    // Processes the single next event regardless of its time; returns false
    // (and does nothing) when the queue is empty.  The building block for
    // callers that interleave simulation with their own completion checks
    // (name_service::run_until_complete).
    bool step();
    // True if no events remain.
    [[nodiscard]] bool idle() const noexcept { return events_.empty(); }

    [[nodiscard]] time_point now() const noexcept { return now_; }
    [[nodiscard]] metrics& stats() noexcept { return metrics_; }
    [[nodiscard]] const metrics& stats() const noexcept { return metrics_; }
    [[nodiscard]] const net::graph& network() const noexcept { return *graph_; }
    [[nodiscard]] const net::routing_table& routes() const noexcept { return routes_; }

    // Messages that visited node v (as a forwarding hop or final
    // destination); the "clogging" measure of Section 3.2's Valiant remark.
    [[nodiscard]] std::int64_t traffic(net::node_id v) const;
    [[nodiscard]] std::int64_t max_traffic() const;
    // Messages node v only carried (injected or forwarded toward someone
    // else) - transit load, excluding deliveries to v itself.
    [[nodiscard]] std::int64_t transit_traffic(net::node_id v) const;
    [[nodiscard]] std::int64_t max_transit_traffic() const;
    void reset_traffic();

    // Per-tag hop accounting: every hop of a message with tag != 0 is also
    // credited to that tag, so concurrent operations sharing one run can be
    // costed in isolation.  The per-tag counts partition counter_hops when
    // every message carries a tag.  Unknown tags read 0.
    [[nodiscard]] std::int64_t tag_hops(std::int64_t tag) const;
    // Releases a finished tag's counter (bounded memory for long workloads).
    void drop_tag(std::int64_t tag) { tag_hops_.erase(tag); }

    // Safety cap on processed events (default 50M); run() throws
    // std::runtime_error when exceeded, which always indicates a protocol
    // loop in a handler.
    void set_event_cap(std::int64_t cap) noexcept { event_cap_ = cap; }

    // Randomized shortest-path routing: each hop picks uniformly among all
    // neighbors that lie on some shortest path, instead of the fixed BFS
    // parent.  Deterministic per seed.  Fixed routing concentrates load on
    // low-numbered nodes (BFS tie-breaking); randomization spreads it - the
    // precondition for Valiant relaying to pay off (Section 3.2 remark).
    void set_randomized_routing(std::uint64_t seed);

private:
    enum class event_kind { hop, timer };

    struct event {
        time_point at = 0;
        std::int64_t seq = 0;  // tie-breaker for determinism
        event_kind kind = event_kind::hop;
        net::node_id node = net::invalid_node;  // where the event happens
        message msg;
        std::int64_t timer_id = 0;
    };

    struct event_later {
        bool operator()(const event& a, const event& b) const noexcept {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    const net::graph* graph_;
    net::routing_table routes_;
    std::vector<std::shared_ptr<node_handler>> handlers_;
    std::vector<char> crashed_;
    std::vector<std::int64_t> traffic_;
    std::vector<std::int64_t> transit_;
    std::priority_queue<event, std::vector<event>, event_later> events_;
    time_point now_ = 0;
    std::int64_t next_seq_ = 0;
    std::int64_t processed_ = 0;
    std::int64_t event_cap_ = 50'000'000;
    std::unordered_map<std::int64_t, std::int64_t> tag_hops_;
    metrics metrics_;
    bool randomized_routing_ = false;
    std::uint64_t route_rng_state_ = 0;

    void push(event e);
    void process(const event& e);
    void arrive(net::node_id at, const message& msg);
    [[nodiscard]] net::node_id pick_next_hop(net::node_id at, net::node_id dest);
};

}  // namespace mm::sim
