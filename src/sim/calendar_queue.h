// calendar_queue.h - bucketed event scheduler keyed on integer ticks.
//
// The simulator's event queue is special: every event is scheduled at a
// whole tick >= the current time, ties are broken by insertion order, and
// almost all events land within a short horizon of "now" (one hop = one
// tick; only settle-deadline and refresh timers reach further out).  A
// calendar queue exploits that shape: a ring of FIFO buckets covers the
// window [base, base + bucket_count) one tick per bucket, giving O(1)
// push/pop for near events, while a sorted overflow map holds the sparse
// far-future tail and is drained lap by lap.  This replaces the former
// std::priority_queue, whose per-event heap reshuffling dominated large
// runs.
//
// Ordering contract: events are popped in nondecreasing `at` order, FIFO
// within a tick (insertion order == the simulator's former seq tiebreak).
// Pushing an event earlier than the scan cursor (possible after run_until
// peeked past a gap) rewinds the cursor, so no event is ever skipped.
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

namespace mm::sim {

// Event must expose a public `std::int64_t at` (the scheduled tick, >= 0).
template <class Event>
class calendar_queue {
public:
    using time_point = std::int64_t;

    // bucket_count must be a power of two; it fixes the ring window width in
    // ticks, not a capacity (buckets grow, far events overflow to a map).
    explicit calendar_queue(std::size_t bucket_count = 1024)
        : buckets_(bucket_count), mask_(bucket_count - 1) {
        assert(bucket_count > 0 && (bucket_count & mask_) == 0);
    }

    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return count_; }

    void push(Event e) {
        assert(e.at >= 0);
        if (e.at < cursor_) {
            if (e.at >= base_) {
                // The target tick is inside the window but behind the scan
                // cursor (its bucket was already drained): rewind.  Drop the
                // consumed prefix of the cursor's bucket first so the reset
                // position index cannot replay popped events.
                auto& current = bucket(cursor_);
                current.erase(current.begin(),
                              current.begin() + static_cast<std::ptrdiff_t>(pos_));
                pos_ = 0;
                cursor_ = e.at;
            } else {
                rebase(e.at);
            }
            bucket(e.at).push_back(std::move(e));
        } else if (e.at < window_end()) {
            bucket(e.at).push_back(std::move(e));
        } else {
            far_[e.at].push_back(std::move(e));
        }
        ++count_;
    }

    // Tick of the earliest pending event (advances the internal cursor past
    // empty buckets; amortized O(1) per processed tick).
    [[nodiscard]] std::optional<time_point> next_time() {
        if (!advance()) return std::nullopt;
        return cursor_;
    }

    // Pops the earliest event (FIFO within its tick).  Precondition: !empty().
    Event pop() {
        const bool ok = advance();
        assert(ok);
        (void)ok;
        Event e = std::move(bucket(cursor_)[pos_++]);
        --count_;
        return e;
    }

    // Removes every pending event, earliest first (used by the simulator to
    // rewrite in-flight batched deliveries when a node crashes).
    [[nodiscard]] std::vector<Event> drain_in_order() {
        std::vector<Event> out;
        out.reserve(count_);
        while (!empty()) out.push_back(pop());
        return out;
    }

private:
    std::vector<std::vector<Event>> buckets_;
    std::map<time_point, std::vector<Event>> far_;  // at >= window_end()
    std::size_t mask_;
    time_point base_ = 0;    // ring window is [base_, base_ + bucket_count)
    time_point cursor_ = 0;  // next tick to scan; base_ <= cursor_
    std::size_t pos_ = 0;    // consumed prefix of the cursor's bucket
    std::size_t count_ = 0;

    [[nodiscard]] time_point window_end() const noexcept {
        return base_ + static_cast<time_point>(buckets_.size());
    }

    [[nodiscard]] std::vector<Event>& bucket(time_point t) noexcept {
        return buckets_[static_cast<std::size_t>(t) & mask_];
    }

    // Positions cursor_ on the earliest nonempty tick; false when empty.
    bool advance() {
        if (count_ == 0) return false;
        for (;;) {
            while (cursor_ < window_end()) {
                auto& b = bucket(cursor_);
                if (pos_ < b.size()) return true;
                b.clear();
                pos_ = 0;
                ++cursor_;
            }
            // Ring exhausted; jump the window to the next far tick.
            assert(!far_.empty());
            base_ = far_.begin()->first;
            cursor_ = base_;
            pos_ = 0;
            drain_far_into_window();
        }
    }

    void drain_far_into_window() {
        while (!far_.empty() && far_.begin()->first < window_end()) {
            auto node = far_.extract(far_.begin());
            auto& b = bucket(node.key());
            if (b.empty()) {
                b = std::move(node.mapped());
            } else {
                for (auto& e : node.mapped()) b.push_back(std::move(e));
            }
        }
    }

    // Push target below the window: spill the ring back into the overflow
    // map, re-anchor the window at `at`, and re-drain.  Only reachable when
    // user code schedules behind a window that already jumped far ahead -
    // rare enough that the O(bucket_count + pending) cost never shows up.
    void rebase(time_point at) {
        auto& current = bucket(cursor_);
        current.erase(current.begin(), current.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
        for (auto& b : buckets_) {
            for (auto& e : b) far_[e.at].push_back(std::move(e));
            b.clear();
        }
        base_ = at;
        cursor_ = at;
        drain_far_into_window();
    }
};

}  // namespace mm::sim
