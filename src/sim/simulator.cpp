#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/rng.h"

namespace mm::sim {

simulator::simulator(const net::graph& g)
    : graph_{&g},
      routes_{g},
      handlers_(static_cast<std::size_t>(g.node_count())),
      crashed_(static_cast<std::size_t>(g.node_count()), 0),
      traffic_(static_cast<std::size_t>(g.node_count()), 0),
      transit_(static_cast<std::size_t>(g.node_count()), 0) {}

std::int64_t simulator::traffic(net::node_id v) const {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::traffic: bad node"};
    return traffic_[static_cast<std::size_t>(v)];
}

std::int64_t simulator::max_traffic() const {
    std::int64_t best = 0;
    for (const auto t : traffic_) best = std::max(best, t);
    return best;
}

std::int64_t simulator::transit_traffic(net::node_id v) const {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::transit_traffic: bad node"};
    return transit_[static_cast<std::size_t>(v)];
}

std::int64_t simulator::max_transit_traffic() const {
    std::int64_t best = 0;
    for (const auto t : transit_) best = std::max(best, t);
    return best;
}

void simulator::reset_traffic() {
    traffic_.assign(traffic_.size(), 0);
    transit_.assign(transit_.size(), 0);
}

std::int64_t simulator::tag_hops(std::int64_t tag) const {
    const auto it = tag_hops_.find(tag);
    return it == tag_hops_.end() ? 0 : it->second;
}

void simulator::attach(net::node_id v, std::shared_ptr<node_handler> handler) {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::attach: bad node"};
    handlers_[static_cast<std::size_t>(v)] = std::move(handler);
}

void simulator::send(message msg) {
    if (!graph_->valid_node(msg.source) || !graph_->valid_node(msg.destination))
        throw std::out_of_range{"simulator::send: bad endpoint"};
    if (crashed(msg.source)) return;
    metrics_.add(counter_messages_sent);
    // A destination nobody listens at can only ever be dropped; short-circuit
    // at the send instead of walking the full path first.  Both delivery
    // paths share this check, so the accounting is identical either way.
    if (!handlers_[static_cast<std::size_t>(msg.destination)]) {
        metrics_.add(counter_messages_dropped);
        return;
    }
    event e;
    e.at = now_;
    e.kind = event_kind::hop;
    e.sent_at = now_;
    e.node = msg.source;
    if (!randomized_routing_) {
        // Deterministic route, fixed for the whole flight; the first hop is
        // a real event (anchoring same-tick FIFO order) and arrive_slow
        // decides there whether the rest of the flight batches.
        e.path = std::make_shared<const std::vector<net::node_id>>(
            routes_.path(msg.source, msg.destination));
    }
    e.msg = std::move(msg);
    events_.push(std::move(e));
}

void simulator::set_timer(net::node_id v, time_point delay, std::int64_t timer_id) {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::set_timer: bad node"};
    if (delay < 0) throw std::invalid_argument{"simulator::set_timer: negative delay"};
    event e;
    e.at = now_ + delay;
    e.kind = event_kind::timer;
    e.node = v;
    e.timer_id = timer_id;
    events_.push(std::move(e));
}

void simulator::crash(net::node_id v) {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::crash: bad node"};
    if (crashed_[static_cast<std::size_t>(v)]) return;
    crashed_[static_cast<std::size_t>(v)] = 1;
    ++crashed_count_;
    // From here on every hop needs its crash check at its own tick: demote
    // in-flight batched arrivals to hop-by-hop at their current position.
    if (batched_in_flight_ > 0) devolve_batched_deliveries();
    if (auto& h = handlers_[static_cast<std::size_t>(v)]) h->on_crash(*this);
}

void simulator::recover(net::node_id v) {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::recover: bad node"};
    if (crashed_[static_cast<std::size_t>(v)]) {
        crashed_[static_cast<std::size_t>(v)] = 0;
        --crashed_count_;
    }
}

bool simulator::crashed(net::node_id v) const {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::crashed: bad node"};
    return crashed_[static_cast<std::size_t>(v)] != 0;
}

void simulator::credit_hops(const std::vector<net::node_id>& path, std::int64_t first,
                            std::int64_t last, std::int64_t tag) {
    for (std::int64_t k = first; k < last; ++k) {
        const auto v = static_cast<std::size_t>(path[static_cast<std::size_t>(k)]);
        ++traffic_[v];
        ++transit_[v];
    }
    if (last > first) {
        metrics_.add(counter_hops, last - first);
        if (tag != 0) tag_hops_[tag] += last - first;
    }
}

void simulator::devolve_batched_deliveries() {
    // Drain-and-rebuild costs O(pending events) per crash.  That is the
    // deliberate trade: crashes are rare, the pending set is bounded by
    // in-flight work (not by n), and a side index of batched arrivals would
    // have to replicate the queue's delivery-tick FIFO anchoring.
    auto pending = events_.drain_in_order();
    for (auto& e : pending) {
        if (e.kind != event_kind::deliver) {
            events_.push(std::move(e));
            continue;
        }
        --batched_in_flight_;
        const auto len = static_cast<std::int64_t>(e.path->size()) - 1;
        // Hop k's arrival happens at tick sent_at + k; arrivals up to the
        // crash tick have happened (for top-level crash() callers the queue
        // is drained that far - see the header contract).  The final arrival
        // (k == len) is this pending event itself, never part of the prefix.
        const std::int64_t hops_made = std::min(now_ - e.sent_at + 1, len);
        credit_hops(*e.path, e.credited, hops_made, e.msg.tag);
        e.kind = event_kind::hop;
        e.hop_index = static_cast<std::int32_t>(hops_made);
        e.at = e.sent_at + hops_made;
        e.node = (*e.path)[static_cast<std::size_t>(hops_made)];
        events_.push(std::move(e));
    }
}

void simulator::arrive_batched(const event& e) {
    const auto& path = *e.path;
    const auto len = static_cast<std::int64_t>(path.size()) - 1;
    const auto dest = static_cast<std::size_t>(path[static_cast<std::size_t>(len)]);
    // The transit prefix was spent whether or not the delivery lands.
    credit_hops(path, e.credited, len, e.msg.tag);
    // crash() devolves pending batched arrivals before returning, so this
    // mirror of the slow path's destination crash check is only reachable
    // through a crash() from inside a handler racing this very tick.
    if (crashed_[dest]) {
        metrics_.add(counter_messages_dropped);
        return;
    }
    ++traffic_[dest];
    metrics_.add(counter_messages_delivered);
    if (auto& h = handlers_[dest]) h->on_message(*this, e.msg);
}

void simulator::arrive_slow(event e) {
    const net::node_id at =
        e.path ? (*e.path)[static_cast<std::size_t>(e.hop_index)] : e.node;
    if (crashed(at)) {
        metrics_.add(counter_messages_dropped);
        return;
    }
    ++traffic_[static_cast<std::size_t>(at)];
    if (at == e.msg.destination) {
        metrics_.add(counter_messages_delivered);
        if (auto& h = handlers_[static_cast<std::size_t>(at)]) h->on_message(*this, e.msg);
        return;
    }
    // Forward one hop toward the destination; the hop lands one tick later.
    ++transit_[static_cast<std::size_t>(at)];
    metrics_.add(counter_hops);
    if (e.msg.tag != 0) ++tag_hops_[e.msg.tag];
    if (e.path && batched_ && crashed_count_ == 0) {
        // Fast path: nothing observable can happen until the destination, so
        // the rest of the flight is one batched arrival event.
        event arrival;
        arrival.kind = event_kind::deliver;
        arrival.sent_at = e.sent_at;
        arrival.path = std::move(e.path);
        arrival.at = e.sent_at + static_cast<time_point>(arrival.path->size()) - 1;
        arrival.node = e.msg.destination;
        arrival.credited = e.hop_index + 1;
        arrival.msg = std::move(e.msg);
        ++batched_in_flight_;
        events_.push(std::move(arrival));
        return;
    }
    event next;
    next.at = now_ + 1;
    next.kind = event_kind::hop;
    next.sent_at = e.sent_at;
    if (e.path) {
        next.path = std::move(e.path);
        next.hop_index = e.hop_index + 1;
        next.node = (*next.path)[static_cast<std::size_t>(next.hop_index)];
    } else {
        next.node = pick_next_hop(at, e.msg.destination);
    }
    next.msg = std::move(e.msg);
    events_.push(std::move(next));
}

void simulator::process(event e) {
    now_ = e.at;
    switch (e.kind) {
        case event_kind::hop:
            arrive_slow(std::move(e));
            break;
        case event_kind::deliver:
            --batched_in_flight_;
            arrive_batched(e);
            break;
        case event_kind::timer:
            if (!crashed(e.node)) {
                if (auto& h = handlers_[static_cast<std::size_t>(e.node)])
                    h->on_timer(*this, e.timer_id);
            }
            break;
    }
}

void simulator::set_randomized_routing(std::uint64_t seed) {
    randomized_routing_ = true;
    route_rng_state_ = seed | 1;
}

net::node_id simulator::pick_next_hop(net::node_id at, net::node_id dest) {
    // next_hop first: it materializes (and LRU-pins) the destination-rooted
    // row, so the per-neighbor distance probes below are O(1) lookups.
    const net::node_id fallback = routes_.next_hop(at, dest);
    const int here = routes_.distance(at, dest);
    // Reservoir-sample uniformly among neighbors one hop closer.
    net::node_id chosen = net::invalid_node;
    int seen = 0;
    for (const net::node_id w : graph_->neighbors(at)) {
        if (routes_.distance(w, dest) != here - 1) continue;
        ++seen;
        route_rng_state_ = splitmix64(route_rng_state_);
        if (chosen == net::invalid_node ||
            route_rng_state_ % static_cast<std::uint64_t>(seen) == 0)
            chosen = w;
    }
    return chosen == net::invalid_node ? fallback : chosen;
}

void simulator::run() { run_until(std::numeric_limits<time_point>::max()); }

bool simulator::step() {
    if (events_.empty()) return false;
    if (++processed_ > event_cap_)
        throw std::runtime_error{"simulator: event cap exceeded (protocol loop?)"};
    process(events_.pop());
    return true;
}

void simulator::run_until(time_point t) {
    for (auto next = events_.next_time(); next && *next <= t; next = events_.next_time()) step();
    // Advance the clock to the horizon even when future events remain
    // (otherwise an armed periodic timer would stall simulated time and
    // TTL-based soft state could never age out between runs).
    if (t != std::numeric_limits<time_point>::max()) now_ = std::max(now_, t);
}

}  // namespace mm::sim
