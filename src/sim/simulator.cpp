#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <iterator>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "sim/rng.h"
#include "sim/trace.h"

namespace mm::sim {

namespace {

// Canonical event order: key order == the serial engine's FIFO order (keys
// are unique, so these comparators induce a strict total order).
template <class Event>
bool key_less(const Event& a, const Event& b) {
    return a.key_seq != b.key_seq ? a.key_seq < b.key_seq : a.key_idx < b.key_idx;
}

template <class Event>
bool at_key_less(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return key_less(a, b);
}

std::int64_t ns_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
}

// Traffic/transit bump.  Inside a parallel round workers credit path
// prefixes crossing shard boundaries concurrently, so the add must be a
// real RMW; everywhere else (the serial engine, and top-level calls while
// the pool idles at its barrier) the counter is single-writer and a plain
// load/store pair avoids the lock prefix - on the serial hot path that is
// the difference between ~1ns and ~10ns per hop credited.  The object
// stays a std::atomic either way, so readers never race.
inline void bump_relaxed(std::atomic<std::int64_t>& c, bool concurrent, std::int64_t n = 1) {
    if (concurrent)
        c.fetch_add(n, std::memory_order_relaxed);
    else
        c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

}  // namespace

// --- parallel engine state ---------------------------------------------------

struct simulator::parallel_state {
    struct shard {
        calendar_queue<event> queue;
        std::vector<event> round;  // events of the current round, key-sorted
        std::vector<std::vector<event>> out_now;     // same-tick pushes, per dest shard
        std::vector<std::vector<event>> out_future;  // later-tick pushes, per dest shard
        hot_counters counters;
        core::flat_map<std::int64_t> tags;
        std::unique_ptr<net::routing_table> routes;  // lazy, source-rooted
        std::exception_ptr error;
        // Reused merge scratch (capacity survives across rounds/ticks, so
        // the barrier pipeline allocates nothing in steady state).
        std::vector<std::int64_t> ranks;
        std::vector<std::size_t> merge_cursors;
        // Deliveries this shard executed this tick, keyed by event seq;
        // feed_parallel_trace merges them into canonical order at the
        // barrier.  Empty unless a trace observer is armed.
        std::vector<std::pair<std::int64_t, trace_record>> trace_buf;
    };

    net::shard_map map;
    std::vector<shard> shards;
    int workers = 1;
    std::size_t row_limit_share = 0;  // per-shard routing row budget
    bool in_round = false;            // toggled by the coordinator
    // Coordinator idle time inside for_shards barriers this tick (the
    // load-imbalance component of the phase timers).
    std::int64_t barrier_wait_ns = 0;

    // Worker pool: `workers - 1` threads plus the coordinating caller.
    std::vector<std::thread> threads;
    std::mutex mu;
    std::condition_variable cv_work;
    std::condition_variable cv_done;
    std::uint64_t generation = 0;
    int active = 0;
    bool stopping = false;
    std::function<void(int)> job;

    // Execution context of the current thread (which shard it is running,
    // and for which simulator - handlers could in principle drive a second,
    // serial simulator from inside a round).
    static thread_local shard* tl_shard;
    static thread_local const simulator* tl_sim;
    static thread_local std::int64_t tl_seq;    // seq of the executing event
    static thread_local std::int32_t tl_child;  // its next push index

    ~parallel_state() {
        {
            const std::lock_guard lk{mu};
            stopping = true;
        }
        cv_work.notify_all();
        for (auto& t : threads) t.join();
    }

    void worker_main(int w) {
        std::unique_lock lk{mu};
        std::uint64_t seen = 0;
        for (;;) {
            cv_work.wait(lk, [&] { return stopping || generation != seen; });
            if (stopping) return;
            seen = generation;
            const auto fn = job;
            lk.unlock();
            fn(w);
            lk.lock();
            if (--active == 0) cv_done.notify_one();
        }
    }

    // Runs fn(shard_index) over every shard: striped across the pool when
    // `parallel_ok`, inline on the caller otherwise.  Barrier semantics -
    // returns only after every shard finished.
    template <class Fn>
    void for_shards(bool parallel_ok, Fn&& fn) {
        const int count = static_cast<int>(shards.size());
        if (!parallel_ok || threads.empty()) {
            for (int s = 0; s < count; ++s) fn(s);
            return;
        }
        const int stride = workers;
        {
            const std::lock_guard lk{mu};
            job = [&fn, count, stride](int w) {
                for (int s = w; s < count; s += stride) fn(s);
            };
            ++generation;
            active = static_cast<int>(threads.size());
        }
        cv_work.notify_all();
        for (int s = 0; s < count; s += stride) fn(s);  // coordinator = worker 0
        const auto wait_start = std::chrono::steady_clock::now();
        std::unique_lock lk{mu};
        cv_done.wait(lk, [&] { return active == 0; });
        barrier_wait_ns += ns_since(wait_start);
        job = nullptr;
    }
};

thread_local simulator::parallel_state::shard* simulator::parallel_state::tl_shard = nullptr;
thread_local const simulator* simulator::parallel_state::tl_sim = nullptr;
thread_local std::int64_t simulator::parallel_state::tl_seq = 0;
thread_local std::int32_t simulator::parallel_state::tl_child = 0;

// --- construction ------------------------------------------------------------

simulator::simulator(const net::graph& g)
    : graph_{&g},
      routes_{g},
      handlers_(static_cast<std::size_t>(g.node_count())),
      crashed_(static_cast<std::size_t>(g.node_count()), 0),
      departed_(static_cast<std::size_t>(g.node_count()), 0),
      traffic_(static_cast<std::size_t>(g.node_count())),
      transit_(static_cast<std::size_t>(g.node_count())) {
    route_rows_total_ = routes_.row_cache_limit();
}

simulator::simulator(net::graph& g) : simulator{std::as_const(g)} { graph_m_ = &g; }

simulator::~simulator() = default;

// --- counter sinks -----------------------------------------------------------

bool simulator::in_this_sims_round() const noexcept {
    return parallel_state::tl_shard != nullptr && parallel_state::tl_sim == this;
}

void simulator::note_hops(std::int64_t n) {
    if (in_this_sims_round())
        parallel_state::tl_shard->counters.hops += n;
    else
        metrics_.add(metrics::k_hops, n);
}

void simulator::note_sent() {
    if (in_this_sims_round())
        ++parallel_state::tl_shard->counters.sent;
    else
        metrics_.add(metrics::k_messages_sent);
}

void simulator::note_delivered() {
    if (in_this_sims_round())
        ++parallel_state::tl_shard->counters.delivered;
    else
        metrics_.add(metrics::k_messages_delivered);
}

void simulator::note_dropped() {
    if (in_this_sims_round())
        ++parallel_state::tl_shard->counters.dropped;
    else
        metrics_.add(metrics::k_messages_dropped);
}

void simulator::credit_tag(std::int64_t tag, std::int64_t n) {
    if (in_this_sims_round())
        parallel_state::tl_shard->tags.ref(tag) += n;
    else
        tag_hops_.ref(tag) += n;
}

// --- trace recording ---------------------------------------------------------

void simulator::note_delivery(const message& msg) {
    if (trace_obs_ == nullptr) return;
    trace_record rec;
    rec.at = now_;
    rec.node = msg.destination;
    rec.kind = msg.kind;
    rec.port = msg.port;
    rec.source = msg.source;
    rec.destination = msg.destination;
    rec.subject = msg.subject_address;
    rec.stamp = msg.stamp;
    rec.tag = msg.tag;
    rec.ttl = msg.ttl;
    rec.relay_final = msg.relay_final;
    if (in_this_sims_round()) {
        parallel_state::tl_shard->trace_buf.emplace_back(parallel_state::tl_seq, rec);
        return;
    }
    // Serial engine: feed in processing order.  step() already flushed the
    // previous tick's digest before advancing now_ past it.
    trace_pending_ = true;
    trace_tick_ = now_;
    metrics_.add(metrics::k_trace_records);
    trace_obs_->on_delivery(rec);
}

void simulator::feed_parallel_trace() {
    auto& st = *par_;
    std::size_t total = 0;
    for (const auto& sh : st.shards) total += sh.trace_buf.size();
    if (total == 0) return;
    // Gather into one list and sort by seq: the globally-merged processing
    // order, i.e. exactly the order the serial engine would have fed.
    std::vector<std::pair<std::int64_t, trace_record>> merged;
    merged.reserve(total);
    for (auto& sh : st.shards) {
        merged.insert(merged.end(), sh.trace_buf.begin(), sh.trace_buf.end());
        sh.trace_buf.clear();
    }
    std::sort(merged.begin(), merged.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    trace_pending_ = true;
    trace_tick_ = now_;
    metrics_.add(metrics::k_trace_records, static_cast<std::int64_t>(total));
    for (const auto& [seq, rec] : merged) trace_obs_->on_delivery(rec);
}

void simulator::flush_trace_tick() {
    trace_tick_digest d;
    d.tick = trace_tick_;
    const std::int64_t sent = metrics_.get(metrics::k_messages_sent);
    const std::int64_t delivered = metrics_.get(metrics::k_messages_delivered);
    const std::int64_t dropped = metrics_.get(metrics::k_messages_dropped);
    d.sent = sent - trace_base_.sent;
    d.delivered = delivered - trace_base_.delivered;
    d.dropped = dropped - trace_base_.dropped;
    trace_base_.sent = sent;
    trace_base_.delivered = delivered;
    trace_base_.dropped = dropped;
    trace_pending_ = false;
    metrics_.add(metrics::k_trace_digests);
    trace_obs_->on_tick_digest(d);
}

void simulator::flush_trace() {
    if (trace_obs_ != nullptr && trace_pending_) flush_trace_tick();
}

void simulator::set_trace_observer(trace_observer* obs) {
    if (in_parallel_round())
        throw std::logic_error{
            "simulator::set_trace_observer: top-level only while the parallel engine runs"};
    flush_trace();
    trace_obs_ = obs;
    trace_pending_ = false;
    trace_base_.sent = metrics_.get(metrics::k_messages_sent);
    trace_base_.delivered = metrics_.get(metrics::k_messages_delivered);
    trace_base_.dropped = metrics_.get(metrics::k_messages_dropped);
}

void simulator::set_canonical_paths(bool on) {
    if (in_parallel_round())
        throw std::logic_error{
            "simulator::set_canonical_paths: top-level only while the parallel engine runs"};
    if (par_ != nullptr && !on)
        throw std::logic_error{
            "simulator::set_canonical_paths: the parallel engine requires canonical paths"};
    routes_.set_source_rooted_paths(on);
}

// --- accounting reads --------------------------------------------------------

std::int64_t simulator::traffic(net::node_id v) const {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::traffic: bad node"};
    return traffic_[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
}

std::int64_t simulator::max_traffic() const {
    std::int64_t best = 0;
    for (const auto& t : traffic_) best = std::max(best, t.load(std::memory_order_relaxed));
    return best;
}

std::int64_t simulator::transit_traffic(net::node_id v) const {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::transit_traffic: bad node"};
    return transit_[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
}

std::int64_t simulator::max_transit_traffic() const {
    std::int64_t best = 0;
    for (const auto& t : transit_) best = std::max(best, t.load(std::memory_order_relaxed));
    return best;
}

void simulator::reset_traffic() {
    for (auto& t : traffic_) t.store(0, std::memory_order_relaxed);
    for (auto& t : transit_) t.store(0, std::memory_order_relaxed);
}

std::int64_t simulator::tag_hops(std::int64_t tag) const { return tag_hops_.get(tag); }

// --- topology / routing views ------------------------------------------------

const net::routing_table& simulator::routes() const {
    auto* sh = parallel_state::tl_shard;
    if (sh != nullptr && parallel_state::tl_sim == this) {
        if (!sh->routes) {
            sh->routes = std::make_unique<net::routing_table>(*graph_);
            sh->routes->set_source_rooted_paths(true);
            sh->routes->set_row_cache_limit(par_->row_limit_share);
        }
        return *sh->routes;
    }
    return routes_;
}

void simulator::set_route_cache_limit(std::size_t rows) {
    route_rows_total_ = rows;
    if (!par_) {
        routes_.set_row_cache_limit(rows);
        return;
    }
    // One budget over every routing view: the simulator's own table (used
    // by top-level sends) plus the shard tables split it evenly, floored
    // at 4 rows per view so no view thrashes on a single flight.
    const auto views = static_cast<std::size_t>(par_->map.shard_count()) + 1;
    par_->row_limit_share = rows == 0 ? 0 : std::max<std::size_t>(4, rows / views);
    routes_.set_row_cache_limit(par_->row_limit_share);
    for (auto& sh : par_->shards)
        if (sh.routes) sh.routes->set_row_cache_limit(par_->row_limit_share);
}

void simulator::attach(net::node_id v, std::shared_ptr<node_handler> handler) {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::attach: bad node"};
    if (in_parallel_round())
        throw std::logic_error{"simulator::attach: top-level only while the parallel engine runs"};
    handlers_[static_cast<std::size_t>(v)] = std::move(handler);
}

// --- event intake ------------------------------------------------------------

void simulator::push_event(event e) {
    if (in_this_sims_round()) {
        // Children inherit the executing event's merged seq; the push index
        // breaks ties exactly like the serial queue's append order.
        e.key_seq = parallel_state::tl_seq;
        e.key_idx = parallel_state::tl_child++;
        auto& sh = *parallel_state::tl_shard;
        const auto dest = static_cast<std::size_t>(par_->map.shard_of(e.node));
        auto& box = e.at == now_ ? sh.out_now : sh.out_future;
        box[dest].push_back(std::move(e));
        return;
    }
    // Top-level (or serial-engine) push: stamp a fresh point in the global
    // order.  Keys stay monotone in push order, so per-tick bucket FIFO
    // order and key order coincide.
    e.key_seq = seq_counter_++;
    e.key_idx = 0;
    if (par_) {
        par_->shards[static_cast<std::size_t>(par_->map.shard_of(e.node))].queue.push(
            std::move(e));
        return;
    }
    push_serial(std::move(e));
}

void simulator::push_serial(event e) {
    const event_store::handle h = arena_.alloc();
    auto& aux = arena_.row<2>(h);
    aux.sent_at = e.sent_at;
    aux.timer_id = e.timer_id;
    aux.hop_index = e.hop_index;
    aux.credited = e.credited;
    aux.node = e.node;
    aux.kind = e.kind;
    if (e.kind != event_kind::timer) {
        arena_.row<0>(h) = std::move(e.msg);
        arena_.row<1>(h) = std::move(e.path);
    }
    events_.push(event_slot{e.at, e.key_seq, e.key_idx, h});
}

simulator::event simulator::take_slot(const event_slot& s) {
    event e;
    e.at = s.at;
    e.key_seq = s.key_seq;
    e.key_idx = s.key_idx;
    const auto& aux = arena_.row<2>(s.payload);
    e.sent_at = aux.sent_at;
    e.timer_id = aux.timer_id;
    e.hop_index = aux.hop_index;
    e.credited = aux.credited;
    e.node = aux.node;
    e.kind = aux.kind;
    if (e.kind != event_kind::timer) {
        e.msg = std::move(arena_.row<0>(s.payload));
        // Moving the route out nulls the recycled slot's shared_ptr, so a
        // released row never pins a path alive.
        e.path = std::move(arena_.row<1>(s.payload));
    }
    arena_.release(s.payload);
    return e;
}

void simulator::send(message msg) {
    if (!graph_->valid_node(msg.source) || !graph_->valid_node(msg.destination))
        throw std::out_of_range{"simulator::send: bad endpoint"};
    if (crashed(msg.source)) return;
    note_sent();
    // A destination nobody listens at can only ever be dropped; short-circuit
    // at the send instead of walking the full path first.  Both delivery
    // paths share this check, so the accounting is identical either way.
    if (!handlers_[static_cast<std::size_t>(msg.destination)]) {
        note_dropped();
        return;
    }
    event e;
    e.at = now_;
    e.kind = event_kind::hop;
    e.sent_at = now_;
    e.node = msg.source;
    if (!randomized_routing_) {
        // Deterministic route, fixed for the whole flight; the first hop is
        // a real event (anchoring same-tick FIFO order) and arrive_slow
        // decides there whether the rest of the flight batches.
        e.path = std::make_shared<const std::vector<net::node_id>>(
            routes().path(msg.source, msg.destination));
    }
    e.msg = std::move(msg);
    push_event(std::move(e));
}

void simulator::set_timer(net::node_id v, time_point delay, std::int64_t timer_id) {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::set_timer: bad node"};
    if (delay < 0) throw std::invalid_argument{"simulator::set_timer: negative delay"};
    event e;
    e.at = now_ + delay;
    e.kind = event_kind::timer;
    e.node = v;
    e.timer_id = timer_id;
    push_event(std::move(e));
}

// --- crash / recover ---------------------------------------------------------

void simulator::crash(net::node_id v) {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::crash: bad node"};
    if (in_parallel_round())
        throw std::logic_error{"simulator::crash: top-level only while the parallel engine runs"};
    if (departed_[static_cast<std::size_t>(v)]) return;  // already out of the network
    if (crashed_[static_cast<std::size_t>(v)]) return;
    crashed_[static_cast<std::size_t>(v)] = 1;
    ++crashed_count_;
    // From here on every hop needs its crash check at its own tick: demote
    // in-flight batched arrivals to hop-by-hop at their current position.
    if (batched_in_flight_.load(std::memory_order_relaxed) > 0) devolve_batched_deliveries();
    if (auto& h = handlers_[static_cast<std::size_t>(v)]) h->on_crash(*this);
}

void simulator::recover(net::node_id v) {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::recover: bad node"};
    if (in_parallel_round())
        throw std::logic_error{"simulator::recover: top-level only while the parallel engine runs"};
    if (crashed_[static_cast<std::size_t>(v)]) {
        crashed_[static_cast<std::size_t>(v)] = 0;
        --crashed_count_;
    }
}

bool simulator::crashed(net::node_id v) const {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::crashed: bad node"};
    return crashed_[static_cast<std::size_t>(v)] != 0 ||
           departed_[static_cast<std::size_t>(v)] != 0;
}

bool simulator::departed(net::node_id v) const {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::departed: bad node"};
    return departed_[static_cast<std::size_t>(v)] != 0;
}

// --- dynamic membership ------------------------------------------------------

void simulator::require_membership_call(const char* what) const {
    if (graph_m_ == nullptr)
        throw std::logic_error{std::string{what} +
                               ": needs the mutable-graph constructor (topology_mutable())"};
    if (in_parallel_round())
        throw std::logic_error{std::string{what} +
                               ": top-level only while the parallel engine runs"};
}

bool simulator::crosses_departed(const std::vector<net::node_id>& path,
                                 std::int64_t from) const {
    for (auto k = static_cast<std::size_t>(from); k < path.size(); ++k)
        if (departed_[static_cast<std::size_t>(path[k])]) return true;
    return false;
}

void simulator::grow_node_state() {
    const auto n = static_cast<std::size_t>(graph_->node_count());
    handlers_.resize(n);
    crashed_.resize(n, 0);
    departed_.resize(n, 0);
    while (traffic_.size() < n) traffic_.emplace_back(0);
    while (transit_.size() < n) transit_.emplace_back(0);
}

net::node_id simulator::join(std::span<const net::node_id> attach) {
    require_membership_call("simulator::join");
    if (attach.empty())
        throw std::invalid_argument{"simulator::join: need at least one attachment point"};
    for (const net::node_id w : attach)
        if (!graph_m_->present(w))
            throw std::invalid_argument{"simulator::join: attachment point not present"};
    const net::node_id v = graph_m_->add_node();
    for (const net::node_id w : attach) graph_m_->add_edge(v, w);
    graph_m_->finalize();
    grow_node_state();
    if (par_) par_->map.absorb(*graph_, v);
    metrics_.add(metrics::k_membership_events);
    return v;
}

void simulator::leave(net::node_id v) {
    require_membership_call("simulator::leave");
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::leave: bad node"};
    if (departed_[static_cast<std::size_t>(v)]) return;
    // A leave subsumes a crash: the node is gone, not just down.
    if (crashed_[static_cast<std::size_t>(v)]) {
        crashed_[static_cast<std::size_t>(v)] = 0;
        --crashed_count_;
    }
    departed_[static_cast<std::size_t>(v)] = 1;
    ++departed_count_;
    // In-flight batched arrivals crossing v must die at v's hop at the right
    // tick: demote them to hop-by-hop, exactly as crash() does.
    if (batched_in_flight_.load(std::memory_order_relaxed) > 0) devolve_batched_deliveries();
    if (auto& h = handlers_[static_cast<std::size_t>(v)]) h->on_crash(*this);
    handlers_[static_cast<std::size_t>(v)].reset();
    graph_m_->remove_node(v);
    graph_m_->finalize();
    if (par_) par_->map.release(v);
    metrics_.add(metrics::k_membership_events);
}

void simulator::rejoin(net::node_id v, std::span<const net::node_id> attach) {
    require_membership_call("simulator::rejoin");
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::rejoin: bad node"};
    if (!departed_[static_cast<std::size_t>(v)])
        throw std::invalid_argument{"simulator::rejoin: node never left"};
    if (attach.empty())
        throw std::invalid_argument{"simulator::rejoin: need at least one attachment point"};
    for (const net::node_id w : attach)
        if (!graph_m_->present(w))
            throw std::invalid_argument{"simulator::rejoin: attachment point not present"};
    graph_m_->add_node(v);
    for (const net::node_id w : attach) graph_m_->add_edge(v, w);
    graph_m_->finalize();
    departed_[static_cast<std::size_t>(v)] = 0;
    --departed_count_;
    if (par_) par_->map.absorb(*graph_, v);
    metrics_.add(metrics::k_membership_events);
}

// --- delivery ----------------------------------------------------------------

void simulator::credit_hops(const std::vector<net::node_id>& path, std::int64_t first,
                            std::int64_t last, std::int64_t tag) {
    const bool concurrent = in_this_sims_round();
    for (std::int64_t k = first; k < last; ++k) {
        const auto v = static_cast<std::size_t>(path[static_cast<std::size_t>(k)]);
        bump_relaxed(traffic_[v], concurrent);
        bump_relaxed(transit_[v], concurrent);
    }
    if (last > first) {
        note_hops(last - first);
        if (tag != 0) credit_tag(tag, last - first);
    }
}

std::vector<simulator::event> simulator::drain_all_pending() {
    std::vector<event> out;
    if (par_) {
        for (auto& sh : par_->shards) {
            auto drained = sh.queue.drain_in_order();
            out.insert(out.end(), std::make_move_iterator(drained.begin()),
                       std::make_move_iterator(drained.end()));
        }
        // Per-shard streams are (at, key)-sorted; the global serial order is
        // the key-merge of them.
        std::sort(out.begin(), out.end(), at_key_less<event>);
    } else {
        auto slots = events_.drain_in_order();
        out.reserve(slots.size());
        for (const event_slot& s : slots) out.push_back(take_slot(s));
    }
    return out;
}

void simulator::devolve_batched_deliveries() {
    // Drain-and-rebuild costs O(pending events) per crash.  That is the
    // deliberate trade: crashes are rare, the pending set is bounded by
    // in-flight work (not by n), and a side index of batched arrivals would
    // have to replicate the queue's delivery-tick FIFO anchoring.
    auto pending = drain_all_pending();
    for (auto& e : pending) {
        if (e.kind == event_kind::deliver) {
            batched_in_flight_.fetch_sub(1, std::memory_order_relaxed);
            const auto len = static_cast<std::int64_t>(e.path->size()) - 1;
            // Hop k's arrival happens at tick sent_at + k; arrivals up to the
            // crash tick have happened (for top-level crash() callers the queue
            // is drained that far - see the header contract).  The final arrival
            // (k == len) is this pending event itself, never part of the prefix.
            const std::int64_t hops_made = std::min(now_ - e.sent_at + 1, len);
            credit_hops(*e.path, e.credited, hops_made, e.msg.tag);
            e.kind = event_kind::hop;
            e.hop_index = static_cast<std::int32_t>(hops_made);
            e.at = e.sent_at + hops_made;
            e.node = (*e.path)[static_cast<std::size_t>(hops_made)];
        }
        if (par_) {
            // Re-keyed in drain order: rewritten arrivals take their place
            // *after* everything already queued at their new tick, exactly
            // where the serial engine's drain-and-push puts them.
            e.key_seq = seq_counter_++;
            e.key_idx = 0;
            par_->shards[static_cast<std::size_t>(par_->map.shard_of(e.node))].queue.push(
                std::move(e));
        } else {
            // Keys survive the drain untouched: a devolved arrival keeps its
            // place in the global order (push_serial never re-stamps).
            push_serial(std::move(e));
        }
    }
}

void simulator::arrive_batched(const event& e) {
    const auto& path = *e.path;
    const auto len = static_cast<std::int64_t>(path.size()) - 1;
    const auto dest = static_cast<std::size_t>(path[static_cast<std::size_t>(len)]);
    // The transit prefix was spent whether or not the delivery lands.
    credit_hops(path, e.credited, len, e.msg.tag);
    // crash()/leave() devolve pending batched arrivals before returning, so
    // this mirror of the slow path's destination crash check is only
    // reachable through a crash() from inside a handler racing this very
    // tick.
    if (crashed_[dest] || departed_[dest]) {
        note_dropped();
        return;
    }
    bump_relaxed(traffic_[dest], in_this_sims_round());
    note_delivered();
    note_delivery(e.msg);
    if (auto& h = handlers_[dest]) h->on_message(*this, e.msg);
}

void simulator::arrive_slow(event e) {
    const net::node_id at =
        e.path ? (*e.path)[static_cast<std::size_t>(e.hop_index)] : e.node;
    if (crashed(at)) {
        note_dropped();
        return;
    }
    const bool concurrent = in_this_sims_round();
    bump_relaxed(traffic_[static_cast<std::size_t>(at)], concurrent);
    if (at == e.msg.destination) {
        note_delivered();
        note_delivery(e.msg);
        if (auto& h = handlers_[static_cast<std::size_t>(at)]) h->on_message(*this, e.msg);
        return;
    }
    // Forward one hop toward the destination; the hop lands one tick later.
    bump_relaxed(transit_[static_cast<std::size_t>(at)], concurrent);
    note_hops(1);
    if (e.msg.tag != 0) credit_tag(e.msg.tag, 1);
    if (e.path && batched_ && crashed_count_ == 0 &&
        (departed_count_ == 0 || !crosses_departed(*e.path, e.hop_index + 1))) {
        // Fast path: nothing observable can happen until the destination, so
        // the rest of the flight is one batched arrival event.  A departed
        // node elsewhere does not force the slow path (unlike a crash, a
        // leave strips the node's edges, so no *new* route crosses it); only
        // a pre-leave route whose own remainder crosses a departed node must
        // stay hop-by-hop to die at that hop.
        event arrival;
        arrival.kind = event_kind::deliver;
        arrival.sent_at = e.sent_at;
        arrival.path = std::move(e.path);
        arrival.at = e.sent_at + static_cast<time_point>(arrival.path->size()) - 1;
        arrival.node = e.msg.destination;
        arrival.credited = e.hop_index + 1;
        arrival.msg = std::move(e.msg);
        batched_in_flight_.fetch_add(1, std::memory_order_relaxed);
        push_event(std::move(arrival));
        return;
    }
    event next;
    next.at = now_ + 1;
    next.kind = event_kind::hop;
    next.sent_at = e.sent_at;
    if (e.path) {
        next.path = std::move(e.path);
        next.hop_index = e.hop_index + 1;
        next.node = (*next.path)[static_cast<std::size_t>(next.hop_index)];
    } else {
        next.node = pick_next_hop(at, e.msg.destination);
    }
    next.msg = std::move(e.msg);
    push_event(std::move(next));
}

void simulator::process(event e) {
    switch (e.kind) {
        case event_kind::hop:
            arrive_slow(std::move(e));
            break;
        case event_kind::deliver:
            batched_in_flight_.fetch_sub(1, std::memory_order_relaxed);
            arrive_batched(e);
            break;
        case event_kind::timer:
            if (!crashed(e.node)) {
                if (auto& h = handlers_[static_cast<std::size_t>(e.node)])
                    h->on_timer(*this, e.timer_id);
            }
            break;
    }
}

void simulator::set_merge_parallel_threshold(std::int64_t items) {
    if (items < 0) throw std::invalid_argument{"simulator::set_merge_parallel_threshold: < 0"};
    merge_par_threshold_ = items;
}

void simulator::set_randomized_routing(std::uint64_t seed) {
    randomized_routing_ = true;
    route_rng_state_ = seed | 1;
}

net::node_id simulator::pick_next_hop(net::node_id at, net::node_id dest) {
    const auto& table = routes();
    // next_hop first: it materializes (and LRU-pins) the destination-rooted
    // row, so the per-neighbor distance probes below are O(1) lookups.
    const net::node_id fallback = table.next_hop(at, dest);
    const int here = table.distance(at, dest);
    // Reservoir-sample uniformly among neighbors one hop closer.
    net::node_id chosen = net::invalid_node;
    int seen = 0;
    for (const net::node_id w : graph_->neighbors(at)) {
        if (table.distance(w, dest) != here - 1) continue;
        ++seen;
        route_rng_state_ = splitmix64(route_rng_state_);
        if (chosen == net::invalid_node ||
            route_rng_state_ % static_cast<std::uint64_t>(seen) == 0)
            chosen = w;
    }
    return chosen == net::invalid_node ? fallback : chosen;
}

// --- serial engine -----------------------------------------------------------

void simulator::run() { run_until(std::numeric_limits<time_point>::max()); }

bool simulator::step() {
    if (par_) return run_parallel_tick(std::numeric_limits<time_point>::max());
    if (events_.empty()) return false;
    if (++processed_ > event_cap_)
        throw std::runtime_error{"simulator: event cap exceeded (protocol loop?)"};
    const event_slot s = events_.pop();
    // Lazy digest flush: the engine is about to move past trace_tick_, so
    // that tick can see no further deliveries (now_ is monotone).
    if (trace_pending_ && s.at > trace_tick_) flush_trace_tick();
    now_ = s.at;
    process(take_slot(s));
    return true;
}

void simulator::run_until(time_point t) {
    if (par_) {
        while (run_parallel_tick(t)) {
        }
    } else {
        for (auto next = events_.next_time(); next && *next <= t; next = events_.next_time())
            step();
    }
    // Advance the clock to the horizon even when future events remain, or
    // when some (or all) shards have nothing pending (otherwise an armed
    // periodic timer would stall simulated time and TTL-based soft state
    // could never age out between runs).
    if (t != std::numeric_limits<time_point>::max()) {
        now_ = std::max(now_, t);
        // Same lazy-flush rule as step(): the horizon advance moved the
        // clock past the digested tick, so it is closed under every engine
        // at this same point.
        if (trace_pending_ && now_ > trace_tick_) flush_trace_tick();
    }
}

std::optional<time_point> simulator::next_event_time() {
    if (par_) {
        std::optional<time_point> best;
        for (auto& sh : par_->shards) {
            const auto t = sh.queue.next_time();
            if (t && (!best || *t < *best)) best = t;
        }
        return best;
    }
    return events_.next_time();
}

bool simulator::idle() const noexcept {
    if (par_) {
        for (const auto& sh : par_->shards)
            if (!sh.queue.empty()) return false;
        return true;
    }
    return events_.empty();
}

// --- parallel engine ---------------------------------------------------------

int simulator::worker_threads() const noexcept { return par_ ? par_->workers : 0; }

bool simulator::in_parallel_round() const noexcept { return par_ && par_->in_round; }

const net::shard_map& simulator::shard_assignment() const {
    if (!par_) throw std::logic_error{"simulator::shard_assignment: serial engine active"};
    return par_->map;
}

void simulator::set_worker_threads(int threads) {
    set_worker_threads(threads, net::make_shard_map(*graph_, std::max(1, threads)));
}

void simulator::set_worker_threads(int threads, net::shard_map map) {
    if (threads < 1) throw std::invalid_argument{"simulator::set_worker_threads: threads < 1"};
    if (in_parallel_round())
        throw std::logic_error{"simulator::set_worker_threads: top-level only"};
    if (map.node_count() != graph_->node_count())
        throw std::invalid_argument{"simulator::set_worker_threads: shard map node count"};

    // Gather what is pending in global serial order, then rebuild.
    auto pending = drain_all_pending();
    par_.reset();  // joins any previous pool

    auto st = std::make_unique<parallel_state>();
    st->map = std::move(map);
    const int shard_count = st->map.shard_count();
    st->workers = std::min(threads, shard_count);
    st->shards.resize(static_cast<std::size_t>(shard_count));
    for (auto& sh : st->shards) {
        sh.out_now.resize(static_cast<std::size_t>(shard_count));
        sh.out_future.resize(static_cast<std::size_t>(shard_count));
    }
    st->row_limit_share =
        route_rows_total_ == 0
            ? 0
            : std::max<std::size_t>(
                  4, route_rows_total_ / (static_cast<std::size_t>(shard_count) + 1));
    routes_.set_row_cache_limit(st->row_limit_share);
    // Purity requirement of the determinism contract: every routing view
    // must answer path() identically, so tie-breaks may not depend on cache
    // residency anywhere.
    routes_.set_source_rooted_paths(true);

    for (auto& e : pending) {
        e.key_seq = seq_counter_++;  // re-key in serial order
        e.key_idx = 0;
        st->shards[static_cast<std::size_t>(st->map.shard_of(e.node))].queue.push(std::move(e));
    }

    if (st->workers > 1) {
        st->threads.reserve(static_cast<std::size_t>(st->workers - 1));
        for (int w = 1; w < st->workers; ++w)
            st->threads.emplace_back([ps = st.get(), w] { ps->worker_main(w); });
    }
    par_ = std::move(st);
}

int simulator::assign_round_seqs() {
    auto& st = *par_;
    std::int64_t total = 0;
    int busy = 0;
    for (const auto& sh : st.shards) {
        total += static_cast<std::int64_t>(sh.round.size());
        busy += sh.round.empty() ? 0 : 1;
    }
    const std::int64_t base = seq_counter_;
    seq_counter_ += total;
    // Every shard's round is already key-sorted (queue buckets and cascade
    // merges both maintain key order), so the round's global sequence
    // numbers are k-way merge ranks: each shard counts, with two-pointer
    // walks, how many events of every other shard's round precede each of
    // its own.  Same permutation the old coordinator-side global sort
    // assigned, computed shard-parallel with no serial residue.
    const std::size_t runs = st.shards.size();
    st.for_shards(busy > 1 && total >= merge_par_threshold_, [&st, base, runs](int s) {
        auto& sh = st.shards[static_cast<std::size_t>(s)];
        if (sh.round.empty()) return;
        net::kway_merge_ranks(
            runs,
            [&st](std::size_t r) -> const std::vector<event>& { return st.shards[r].round; },
            static_cast<std::size_t>(s),
            [](const event& a, const event& b) { return key_less(a, b); }, sh.ranks);
        for (std::size_t i = 0; i < sh.round.size(); ++i) sh.round[i].seq = base + sh.ranks[i];
    });
    return busy;
}

void simulator::flush_future_mailboxes() {
    auto& st = *par_;
    const std::size_t count = st.shards.size();
    std::int64_t total = 0;
    for (const auto& src : st.shards)
        for (const auto& box : src.out_future) total += static_cast<std::int64_t>(box.size());
    if (total == 0) return;
    // Each destination shard key-merges its own inbound boxes (each box is
    // key-sorted: a source shard executes in ascending seq order and seqs
    // grow across rounds) and pushes into its own calendar queue.  Pushing
    // a key-sorted stream appends to every tick bucket in key order, which
    // is exactly the per-bucket FIFO the next round 0 reads - the global
    // (at, key) sort the coordinator used to run is unnecessary, and no two
    // shards touch the same queue or box.
    st.for_shards(total >= merge_par_threshold_, [&st, count](int d) {
        auto& dst = st.shards[static_cast<std::size_t>(d)];
        net::kway_merge(
            count,
            [&st, d](std::size_t s) -> std::vector<event>& {
                return st.shards[s].out_future[static_cast<std::size_t>(d)];
            },
            [](const event& a, const event& b) { return key_less(a, b); },
            [&dst](event&& e) { dst.queue.push(std::move(e)); }, dst.merge_cursors);
        for (auto& src : st.shards) src.out_future[static_cast<std::size_t>(d)].clear();
    });
}

void simulator::merge_shard_accumulators() {
    auto& st = *par_;
    const std::size_t count = st.shards.size();
    std::size_t entries = 0;
    for (const auto& sh : st.shards) entries += sh.tags.size();
    // Pairwise tree fold: shard s absorbs shard s + gap level by level.
    // Counter sums and tag-map merges are commutative and associative over
    // int64, so the fold shape cannot change any total - parallelism here
    // is free of determinism risk, and the maps' buckets are reused.
    for (std::size_t gap = 1; gap < count; gap *= 2) {
        const bool wide = count > 2 * gap;  // more than one fold at this level
        st.for_shards(wide && entries >= static_cast<std::size_t>(merge_par_threshold_),
                      [&st, gap, count](int idx) {
                          const auto s = static_cast<std::size_t>(idx);
                          if (s % (2 * gap) != 0 || s + gap >= count) return;
                          auto& dst = st.shards[s];
                          auto& src = st.shards[s + gap];
                          dst.counters.hops += src.counters.hops;
                          dst.counters.sent += src.counters.sent;
                          dst.counters.delivered += src.counters.delivered;
                          dst.counters.dropped += src.counters.dropped;
                          src.counters = hot_counters{};
                          if (src.tags.empty()) return;
                          if (dst.tags.empty()) {
                              std::swap(dst.tags, src.tags);
                          } else {
                              src.tags.for_each([&dst](std::int64_t tag, std::int64_t n) {
                                  dst.tags.ref(tag) += n;
                              });
                              src.tags.clear();
                          }
                      });
    }
    auto& root = st.shards.front();
    auto& c = root.counters;
    if (c.hops != 0) metrics_.add(metrics::k_hops, c.hops);
    if (c.sent != 0) metrics_.add(metrics::k_messages_sent, c.sent);
    if (c.delivered != 0) metrics_.add(metrics::k_messages_delivered, c.delivered);
    if (c.dropped != 0) metrics_.add(metrics::k_messages_dropped, c.dropped);
    c = hot_counters{};
    root.tags.for_each(
        [this](std::int64_t tag, std::int64_t n) { tag_hops_.ref(tag) += n; });
    root.tags.clear();
}

bool simulator::run_parallel_tick(time_point horizon) {
    auto& st = *par_;
    std::optional<time_point> t;
    for (auto& sh : st.shards) {
        const auto nt = sh.queue.next_time();
        if (nt && (!t || *nt < *t)) t = nt;
    }
    if (!t || *t > horizon) return false;
    // Mirror of the serial engine's lazy digest flush in step(): emit the
    // previous tick's digest before any of this tick's records.
    if (trace_pending_ && *t > trace_tick_) flush_trace_tick();
    now_ = *t;

    // Randomized routing draws per-hop from one sequential stream; keep the
    // canonical order but execute it single-threaded.
    const bool threads_ok = !randomized_routing_;

    // Phase timers: wall-clock the coordinator observes per pipeline phase,
    // accumulated over the tick's rounds and flushed into metrics_ at the
    // barrier (see sim/metrics.h).  Coordinator idle time at for_shards
    // barriers is subtracted out of the enclosing window, so the four
    // timers are disjoint: barrier-wait alone carries the imbalance
    // residue instead of being double-booked inside rank/execute/flush.
    st.barrier_wait_ns = 0;
    std::int64_t rank_ns = 0;
    std::int64_t execute_ns = 0;
    std::int64_t flush_ns = 0;
    std::int64_t rounds = 0;
    const auto phase_ns = [&st](std::chrono::steady_clock::time_point start,
                                std::int64_t wait_before) {
        return ns_since(start) - (st.barrier_wait_ns - wait_before);
    };

    // Round 0: each shard drains its own queue's current-tick events into
    // its round list (bucket FIFO == key order), shard-parallel when the
    // tick looks big enough to pay for waking the pool - total queue size
    // is the cheap proxy, since the exact event count of the tick is only
    // known once the buckets drain.
    const auto fill_start = std::chrono::steady_clock::now();
    const auto fill_wait = st.barrier_wait_ns;
    const time_point tick = *t;
    int busy_queues = 0;
    std::int64_t pending = 0;
    for (auto& sh : st.shards) {
        const auto nt = sh.queue.next_time();
        if (nt && *nt == tick) {
            ++busy_queues;
            pending += static_cast<std::int64_t>(sh.queue.size());
        }
    }
    st.for_shards(busy_queues > 1 && pending >= merge_par_threshold_, [&st, tick](int s) {
        auto& sh = st.shards[static_cast<std::size_t>(s)];
        for (auto nt = sh.queue.next_time(); nt && *nt == tick; nt = sh.queue.next_time())
            sh.round.push_back(sh.queue.pop());
    });
    std::int64_t round_events = 0;
    for (const auto& sh : st.shards) round_events += static_cast<std::int64_t>(sh.round.size());
    flush_ns += phase_ns(fill_start, fill_wait);

    while (round_events > 0) {
        ++rounds;
        processed_ += round_events;
        if (processed_ > event_cap_) {
            for (auto& sh : st.shards) {
                sh.round.clear();
                sh.trace_buf.clear();
                for (auto& box : sh.out_now) box.clear();
                for (auto& box : sh.out_future) box.clear();
            }
            merge_shard_accumulators();
            throw std::runtime_error{"simulator: event cap exceeded (protocol loop?)"};
        }
        const auto rank_start = std::chrono::steady_clock::now();
        const auto rank_wait = st.barrier_wait_ns;
        const int busy = assign_round_seqs();
        rank_ns += phase_ns(rank_start, rank_wait);
        st.in_round = true;
        const auto execute_start = std::chrono::steady_clock::now();
        const auto execute_wait = st.barrier_wait_ns;
        if (!threads_ok) {
            // Sequential RNG streams (randomized routing) must draw in the
            // serial engine's exact order, which interleaves shards by key -
            // so execute the whole round single-threaded in merged seq
            // order, not shard-major.
            std::vector<std::pair<event*, parallel_state::shard*>> order;
            for (auto& sh : st.shards)
                for (auto& e : sh.round) order.emplace_back(&e, &sh);
            std::sort(order.begin(), order.end(),
                      [](const auto& a, const auto& b) { return a.first->seq < b.first->seq; });
            parallel_state::tl_sim = this;
            try {
                for (auto& [e, sh] : order) {
                    parallel_state::tl_shard = sh;
                    parallel_state::tl_seq = e->seq;
                    parallel_state::tl_child = 0;
                    process(std::move(*e));
                }
            } catch (...) {
                st.shards.front().error = std::current_exception();
            }
            parallel_state::tl_shard = nullptr;
            parallel_state::tl_sim = nullptr;
            for (auto& sh : st.shards) sh.round.clear();
        } else {
            st.for_shards(busy > 1, [this, &st](int s) {
                auto& sh = st.shards[static_cast<std::size_t>(s)];
                if (sh.round.empty()) return;
                parallel_state::tl_shard = &sh;
                parallel_state::tl_sim = this;
                try {
                    for (auto& e : sh.round) {
                        parallel_state::tl_seq = e.seq;
                        parallel_state::tl_child = 0;
                        process(std::move(e));
                    }
                } catch (...) {
                    sh.error = std::current_exception();
                }
                parallel_state::tl_shard = nullptr;
                parallel_state::tl_sim = nullptr;
                sh.round.clear();
            });
        }
        execute_ns += phase_ns(execute_start, execute_wait);
        st.in_round = false;
        for (auto& sh : st.shards) {
            if (!sh.error) continue;
            const auto err = sh.error;
            sh.error = nullptr;
            for (auto& other : st.shards) {
                other.round.clear();
                other.trace_buf.clear();
                for (auto& box : other.out_now) box.clear();
                for (auto& box : other.out_future) box.clear();
            }
            merge_shard_accumulators();
            std::rethrow_exception(err);
        }
        // Same-tick cascades become the next round: each destination shard
        // key-merges its own inbound out_now boxes (each key-sorted, as in
        // flush_future_mailboxes) straight into its round list - the serial
        // engine's FIFO appends them in exactly this generation order.
        const auto cascade_start = std::chrono::steady_clock::now();
        const auto cascade_wait = st.barrier_wait_ns;
        std::int64_t cascade_events = 0;
        for (const auto& src : st.shards)
            for (const auto& box : src.out_now)
                cascade_events += static_cast<std::int64_t>(box.size());
        if (cascade_events > 0) {
            const std::size_t count = st.shards.size();
            st.for_shards(cascade_events >= merge_par_threshold_, [&st, count](int d) {
                auto& dst = st.shards[static_cast<std::size_t>(d)];
                net::kway_merge(
                    count,
                    [&st, d](std::size_t s) -> std::vector<event>& {
                        return st.shards[s].out_now[static_cast<std::size_t>(d)];
                    },
                    [](const event& a, const event& b) { return key_less(a, b); },
                    [&dst](event&& e) { dst.round.push_back(std::move(e)); },
                    dst.merge_cursors);
                for (auto& src : st.shards) src.out_now[static_cast<std::size_t>(d)].clear();
            });
        }
        round_events = cascade_events;
        flush_ns += phase_ns(cascade_start, cascade_wait);
    }

    // Tick barrier: every destination shard drains its own inbound future
    // mailboxes into its queue, then the per-shard accumulators fold into
    // the global counters - both shard-parallel, nothing serial left but
    // the fold root.
    const auto flush_start = std::chrono::steady_clock::now();
    const auto flush_wait = st.barrier_wait_ns;
    flush_future_mailboxes();
    merge_shard_accumulators();
    if (trace_obs_ != nullptr) feed_parallel_trace();
    flush_ns += phase_ns(flush_start, flush_wait);
    metrics_.add(metrics::k_parallel_ticks);
    metrics_.add(metrics::k_parallel_rounds, rounds);
    if (rank_ns > 0) metrics_.add(metrics::k_phase_rank_merge_ns, rank_ns);
    if (execute_ns > 0) metrics_.add(metrics::k_phase_round_execute_ns, execute_ns);
    if (flush_ns > 0) metrics_.add(metrics::k_phase_mailbox_flush_ns, flush_ns);
    if (st.barrier_wait_ns > 0)
        metrics_.add(metrics::k_phase_barrier_wait_ns, st.barrier_wait_ns);
    return true;
}

}  // namespace mm::sim
