#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/rng.h"

namespace mm::sim {

simulator::simulator(const net::graph& g)
    : graph_{&g},
      routes_{g},
      handlers_(static_cast<std::size_t>(g.node_count())),
      crashed_(static_cast<std::size_t>(g.node_count()), 0),
      traffic_(static_cast<std::size_t>(g.node_count()), 0),
      transit_(static_cast<std::size_t>(g.node_count()), 0) {}

std::int64_t simulator::traffic(net::node_id v) const {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::traffic: bad node"};
    return traffic_[static_cast<std::size_t>(v)];
}

std::int64_t simulator::max_traffic() const {
    std::int64_t best = 0;
    for (const auto t : traffic_) best = std::max(best, t);
    return best;
}

std::int64_t simulator::transit_traffic(net::node_id v) const {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::transit_traffic: bad node"};
    return transit_[static_cast<std::size_t>(v)];
}

std::int64_t simulator::max_transit_traffic() const {
    std::int64_t best = 0;
    for (const auto t : transit_) best = std::max(best, t);
    return best;
}

void simulator::reset_traffic() {
    traffic_.assign(traffic_.size(), 0);
    transit_.assign(transit_.size(), 0);
}

std::int64_t simulator::tag_hops(std::int64_t tag) const {
    const auto it = tag_hops_.find(tag);
    return it == tag_hops_.end() ? 0 : it->second;
}

void simulator::attach(net::node_id v, std::shared_ptr<node_handler> handler) {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::attach: bad node"};
    handlers_[static_cast<std::size_t>(v)] = std::move(handler);
}

void simulator::push(event e) {
    e.seq = next_seq_++;
    events_.push(std::move(e));
}

void simulator::send(message msg) {
    if (!graph_->valid_node(msg.source) || !graph_->valid_node(msg.destination))
        throw std::out_of_range{"simulator::send: bad endpoint"};
    if (crashed(msg.source)) return;
    metrics_.add(counter_messages_sent);
    event e;
    e.at = now_;
    e.kind = event_kind::hop;
    e.node = msg.source;
    e.msg = std::move(msg);
    push(std::move(e));
}

void simulator::set_timer(net::node_id v, time_point delay, std::int64_t timer_id) {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::set_timer: bad node"};
    if (delay < 0) throw std::invalid_argument{"simulator::set_timer: negative delay"};
    event e;
    e.at = now_ + delay;
    e.kind = event_kind::timer;
    e.node = v;
    e.timer_id = timer_id;
    push(std::move(e));
}

void simulator::crash(net::node_id v) {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::crash: bad node"};
    if (crashed_[static_cast<std::size_t>(v)]) return;
    crashed_[static_cast<std::size_t>(v)] = 1;
    if (auto& h = handlers_[static_cast<std::size_t>(v)]) h->on_crash(*this);
}

void simulator::recover(net::node_id v) {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::recover: bad node"};
    crashed_[static_cast<std::size_t>(v)] = 0;
}

bool simulator::crashed(net::node_id v) const {
    if (!graph_->valid_node(v)) throw std::out_of_range{"simulator::crashed: bad node"};
    return crashed_[static_cast<std::size_t>(v)] != 0;
}

void simulator::arrive(net::node_id at, const message& msg) {
    if (crashed(at)) {
        metrics_.add(counter_messages_dropped);
        return;
    }
    ++traffic_[static_cast<std::size_t>(at)];
    if (at == msg.destination) {
        metrics_.add(counter_messages_delivered);
        if (auto& h = handlers_[static_cast<std::size_t>(at)]) h->on_message(*this, msg);
        return;
    }
    // Forward one hop toward the destination; the hop lands one tick later.
    ++transit_[static_cast<std::size_t>(at)];
    metrics_.add(counter_hops);
    if (msg.tag != 0) ++tag_hops_[msg.tag];
    event e;
    e.at = now_ + 1;
    e.kind = event_kind::hop;
    e.node = pick_next_hop(at, msg.destination);
    e.msg = msg;
    push(std::move(e));
}

void simulator::process(const event& e) {
    now_ = e.at;
    switch (e.kind) {
        case event_kind::hop:
            arrive(e.node, e.msg);
            break;
        case event_kind::timer:
            if (!crashed(e.node)) {
                if (auto& h = handlers_[static_cast<std::size_t>(e.node)])
                    h->on_timer(*this, e.timer_id);
            }
            break;
    }
}

void simulator::set_randomized_routing(std::uint64_t seed) {
    randomized_routing_ = true;
    route_rng_state_ = seed | 1;
}

net::node_id simulator::pick_next_hop(net::node_id at, net::node_id dest) {
    if (!randomized_routing_) return routes_.next_hop(at, dest);
    const int here = routes_.distance(at, dest);
    // Reservoir-sample uniformly among neighbors one hop closer.
    net::node_id chosen = net::invalid_node;
    int seen = 0;
    for (const net::node_id w : graph_->neighbors(at)) {
        if (routes_.distance(w, dest) != here - 1) continue;
        ++seen;
        route_rng_state_ = splitmix64(route_rng_state_);
        if (chosen == net::invalid_node ||
            route_rng_state_ % static_cast<std::uint64_t>(seen) == 0)
            chosen = w;
    }
    return chosen == net::invalid_node ? routes_.next_hop(at, dest) : chosen;
}

void simulator::run() { run_until(std::numeric_limits<time_point>::max()); }

bool simulator::step() {
    if (events_.empty()) return false;
    if (++processed_ > event_cap_)
        throw std::runtime_error{"simulator: event cap exceeded (protocol loop?)"};
    // priority_queue::top is const; the element is dead after pop, so moving
    // out of it is safe and saves copying the message payload.
    const event e = std::move(const_cast<event&>(events_.top()));
    events_.pop();
    process(e);
    return true;
}

void simulator::run_until(time_point t) {
    while (!events_.empty() && events_.top().at <= t) step();
    // Advance the clock to the horizon even when future events remain
    // (otherwise an armed periodic timer would stall simulated time and
    // TTL-based soft state could never age out between runs).
    if (t != std::numeric_limits<time_point>::max()) now_ = std::max(now_, t);
}

}  // namespace mm::sim
