// trace.h - deterministic event-trace recording and replay checking.
//
// The simulator's four execution engines (serial, sharded-parallel at any
// worker count, batched and hop-by-hop delivery) are claimed bit-identical.
// This module turns that claim into an artifact: a `trace` is the full
// sequence of *deliveries* a workload produced - every on_message invocation
// with its tick, endpoints, and payload header - plus per-tick counter
// digests and a final summary, serialized through core/codec into a
// versioned, checksummed byte format.  Record a workload once under any
// engine, and every other engine (and every future build) must replay it
// exactly; the checker reports the first divergent record with a context
// window instead of a bare "mismatch".
//
// What is recorded - and what deliberately is not:
//  * Deliveries only.  A delivery record is emitted for each on_message
//    call (final destinations and Valiant relay legs).  Timer firings and
//    drops are NOT records: their intra-tick interleaving against
//    deliveries differs legitimately between the batched and hop-by-hop
//    engines (a batched arrival's ordering key is assigned at the send
//    tick; a hop chain's final event is keyed at the previous hop), while
//    the delivery subsequence is invariant across the batched engines at
//    every worker count.  Across the batched/hop-by-hop divide the
//    invariant is one level coarser: same-tick arrivals from flights sent
//    at different ticks carry batched keys assigned at their send tick but
//    hop-by-hop keys re-assigned at the last hop, so intra-tick ORDER can
//    differ while each tick's record multiset - the property
//    tests/test_sim_equivalence.cpp has always asserted, as per-tick
//    (tick, kind) sequences - stays exact.  trace_order::per_tick_set is
//    the comparison level for that pairing; everything else is
//    record-for-record.
//  * Per-tick digests carry sent/delivered/dropped only.  The global hop
//    counter lags batched messages mid-flight (fast-path contract in
//    simulator.h), so hops - and the per-node traffic hash - appear only in
//    the final digest, where quiescence makes them exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/codec.h"
#include "sim/metrics.h"

namespace mm::sim {

class simulator;
struct message;
using time_point = std::int64_t;

// One on_message invocation: where/when plus the full message header.
struct trace_record {
    std::int64_t at = 0;      // delivery tick
    std::int32_t node = -1;   // handler's node (== msg.destination)
    std::int32_t kind = 0;
    std::uint64_t port = 0;
    std::int32_t source = -1;
    std::int32_t destination = -1;
    std::int32_t subject = -1;
    std::int64_t stamp = 0;
    std::int64_t tag = 0;
    std::int64_t ttl = -1;
    std::int32_t relay_final = -1;

    friend bool operator==(const trace_record&, const trace_record&) = default;
};

// Counter deltas of one tick that saw at least one delivery.
struct trace_tick_digest {
    std::int64_t tick = 0;
    std::int64_t sent = 0;
    std::int64_t delivered = 0;
    std::int64_t dropped = 0;

    friend bool operator==(const trace_tick_digest&, const trace_tick_digest&) = default;
};

// End-of-run totals; exact under every engine because the run is quiescent.
struct trace_final_digest {
    std::int64_t now = 0;
    std::int64_t hops = 0;
    std::int64_t sent = 0;
    std::int64_t delivered = 0;
    std::int64_t dropped = 0;
    std::int64_t membership_events = 0;
    std::uint64_t traffic_hash = 0;  // FNV over per-node traffic/transit

    friend bool operator==(const trace_final_digest&, const trace_final_digest&) = default;
};

// FNV-1a over every node's (traffic, transit) pair in node order: one u64
// standing in for the whole per-node load vector.  Call only at quiescence.
[[nodiscard]] std::uint64_t trace_traffic_hash(const simulator& sim);

// A recorded run: an opaque config blob (the runtime layer owns its
// encoding; the simulator layer just round-trips the bytes), the
// interleaved record/digest stream, and the final summary.
struct trace {
    std::vector<std::uint8_t> config;
    std::vector<trace_record> records;
    std::vector<trace_tick_digest> digests;
    trace_final_digest summary;

    friend bool operator==(const trace&, const trace&) = default;
};

// Serialized layout (little-endian via core/codec):
//   magic "MMTR" | u32 version | u64 fnv1a(checksum of everything after
//   this field) | u32 config size | config bytes | tagged entry stream
// Entries: u8 tag 1 = trace_record, 2 = trace_tick_digest, 3 = the final
// digest (must be last).  parse returns false - never throws - on bad
// magic/version/checksum, truncation, trailing bytes, or a misplaced tag.
[[nodiscard]] std::vector<std::uint8_t> encode_trace(const trace& t);
[[nodiscard]] bool parse_trace(const std::uint8_t* data, std::size_t size, trace& out,
                               std::string* error = nullptr);

inline constexpr std::uint32_t trace_format_version = 1;

// Receives the delivery stream from an armed simulator (simulator::
// set_trace_observer).  The simulator guarantees: records arrive in
// canonical delivery order; a tick's digest arrives after all that tick's
// records and before any later tick's (lazy flush - see simulator.h).
class trace_observer {
public:
    virtual ~trace_observer() = default;
    virtual void on_delivery(const trace_record& rec) = 0;
    virtual void on_tick_digest(const trace_tick_digest& digest) = 0;
};

// Record mode: accumulates the stream into a trace.  finalize() stamps the
// final digest from the (quiescent) simulator.
class trace_recorder final : public trace_observer {
public:
    void on_delivery(const trace_record& rec) override { out_.records.push_back(rec); }
    void on_tick_digest(const trace_tick_digest& digest) override {
        out_.digests.push_back(digest);
    }
    // Reads totals + traffic hash from the simulator; call at quiescence,
    // after simulator::flush_trace().
    void finalize(const simulator& sim);

    [[nodiscard]] trace& result() noexcept { return out_; }
    [[nodiscard]] const trace& result() const noexcept { return out_; }

private:
    trace out_;
};

// How strictly a replay's delivery stream is held to the reference.
//  * ordered: record-for-record identity - the default, and the right level
//    for every same-delivery-mode engine pairing.
//  * per_tick_set: each tick's records must match as a multiset, plus all
//    digests exactly.  This is the level for a hop-by-hop engine replaying
//    a batched recording: ordering keys are assigned at the send tick on
//    the batched path but at the last hop on the slow path, so intra-tick
//    ORDER differs legitimately - the per-tick sets, counters, and results
//    do not (see the file comment).
enum class trace_order : std::uint8_t { ordered, per_tick_set };

// Replay mode: consumes the live stream against a reference trace and
// latches the FIRST divergence (it never throws from handler context - the
// run continues, the verdict is read at the end).  failure() formats the
// mismatch with `context` records/digests on each side of it.
class trace_checker final : public trace_observer {
public:
    explicit trace_checker(const trace& reference,
                           trace_order order = trace_order::ordered)
        : ref_{&reference}, order_{order} {}

    void on_delivery(const trace_record& rec) override;
    void on_tick_digest(const trace_tick_digest& digest) override;
    // Verifies the final digest and that the reference was fully consumed;
    // call at quiescence, after simulator::flush_trace().  The overload
    // taking a digest serves callers that computed the live summary
    // themselves (e.g. after the simulator is gone).
    void finalize(const simulator& sim);
    void finalize(const trace_final_digest& live);

    [[nodiscard]] bool ok() const noexcept { return !failed_; }
    // Human-readable report of the first divergence (empty when ok()).
    [[nodiscard]] std::string failure(int context = 3) const;

private:
    void fail(std::string what);
    // per_tick_set mode: compares the buffered tick's live records against
    // the reference slice as sorted multisets, then advances next_record_.
    void flush_tick_set();
    [[nodiscard]] static std::string describe(const trace_record& r);
    [[nodiscard]] static std::string describe(const trace_tick_digest& d);

    const trace* ref_;
    trace_order order_ = trace_order::ordered;
    std::size_t next_record_ = 0;
    std::size_t next_digest_ = 0;
    // per_tick_set mode: the current tick's live records, not yet compared.
    std::vector<trace_record> tick_live_;
    bool failed_ = false;
    std::string what_;
    // The live side of the context window (reference side comes from ref_);
    // bounded: last few records before the divergence, a few after it.
    std::vector<trace_record> recent_;
    int post_fail_ = 0;
};

}  // namespace mm::sim
