#include "sim/metrics.h"

namespace mm::sim {

namespace {

// FNV-1a; the table stores the full name, so a collision only costs an
// extra compare, never a wrong counter.
std::uint64_t hash_name(std::string_view name) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

}  // namespace

metrics::known metrics::known_id(std::string_view name) noexcept {
    constexpr auto names = known_names();
    for (std::size_t i = 0; i < names.size(); ++i)
        if (names[i] == name) return static_cast<known>(i);
    return known_count;
}

void metrics::add(std::string_view counter, std::int64_t amount) {
    const known id = known_id(counter);
    if (id != known_count) {
        add(id, amount);
        return;
    }
    dyn_ref(counter) += amount;
}

std::int64_t metrics::get(std::string_view counter) const {
    const known id = known_id(counter);
    if (id != known_count) return slots_[id];
    if (dyn_live_ == 0) return 0;
    const std::uint64_t h = hash_name(counter);
    std::size_t i = static_cast<std::size_t>(h) & dyn_mask_;
    for (;;) {
        const dyn_slot& s = dyn_[i];
        if (s.name.empty()) return 0;
        if (s.hash == h && s.name == counter) return s.value;
        i = (i + 1) & dyn_mask_;
    }
}

std::int64_t& metrics::dyn_ref(std::string_view name) {
    if (dyn_live_ + 1 > (dyn_.size() * 7) / 10) dyn_grow();
    const std::uint64_t h = hash_name(name);
    std::size_t i = static_cast<std::size_t>(h) & dyn_mask_;
    for (;;) {
        dyn_slot& s = dyn_[i];
        if (s.name.empty()) {
            s.name.assign(name);
            s.hash = h;
            s.value = 0;
            ++dyn_live_;
            return s.value;
        }
        if (s.hash == h && s.name == name) return s.value;
        i = (i + 1) & dyn_mask_;
    }
}

void metrics::dyn_grow() {
    const std::size_t new_cap = dyn_.empty() ? 16 : dyn_.size() * 2;
    std::vector<dyn_slot> old = std::move(dyn_);
    dyn_.assign(new_cap, dyn_slot{});
    dyn_mask_ = new_cap - 1;
    for (dyn_slot& s : old) {
        if (s.name.empty()) continue;
        std::size_t i = static_cast<std::size_t>(s.hash) & dyn_mask_;
        while (!dyn_[i].name.empty()) i = (i + 1) & dyn_mask_;
        dyn_[i] = std::move(s);
    }
}

std::map<std::string, std::int64_t, std::less<>> metrics::counters() const {
    std::map<std::string, std::int64_t, std::less<>> out;
    constexpr auto names = known_names();
    for (std::size_t i = 0; i < names.size(); ++i)
        if ((touched_ >> i) & 1u) out.emplace(std::string{names[i]}, slots_[i]);
    for (const dyn_slot& s : dyn_)
        if (!s.name.empty()) out.emplace(s.name, s.value);
    return out;
}

}  // namespace mm::sim
