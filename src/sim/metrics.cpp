#include "sim/metrics.h"

namespace mm::sim {

void metrics::add(std::string_view counter, std::int64_t amount) {
    auto it = counters_.find(counter);
    if (it == counters_.end()) {
        counters_.emplace(std::string{counter}, amount);
    } else {
        it->second += amount;
    }
}

std::int64_t metrics::get(std::string_view counter) const {
    const auto it = counters_.find(counter);
    return it == counters_.end() ? 0 : it->second;
}

}  // namespace mm::sim
