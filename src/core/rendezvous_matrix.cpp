#include "core/rendezvous_matrix.h"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace mm::core {

std::size_t rendezvous_matrix::flat(net::node_id i, net::node_id j) const {
    if (i < 0 || i >= n_ || j < 0 || j >= n_)
        throw std::out_of_range{"rendezvous_matrix: index out of range"};
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(j);
}

rendezvous_matrix rendezvous_matrix::from_strategy(const locate_strategy& strategy,
                                                   port_id port) {
    rendezvous_matrix r;
    r.n_ = strategy.node_count();
    const auto n = static_cast<std::size_t>(r.n_);
    r.post_sets_.reserve(n);
    r.query_sets_.reserve(n);
    for (net::node_id v = 0; v < r.n_; ++v) {
        r.post_sets_.push_back(strategy.post_set(v, port));
        r.query_sets_.push_back(strategy.query_set(v, port));
    }
    r.entries_.resize(n * n);
    for (net::node_id i = 0; i < r.n_; ++i)
        for (net::node_id j = 0; j < r.n_; ++j)
            r.entries_[r.flat(i, j)] = intersect_sets(r.post_sets_[static_cast<std::size_t>(i)],
                                                      r.query_sets_[static_cast<std::size_t>(j)]);
    return r;
}

rendezvous_matrix rendezvous_matrix::from_entries(net::node_id n,
                                                  std::vector<node_set> entries) {
    if (entries.size() != static_cast<std::size_t>(n) * static_cast<std::size_t>(n))
        throw std::invalid_argument{"rendezvous_matrix::from_entries: wrong entry count"};
    rendezvous_matrix r;
    r.n_ = n;
    r.entries_ = std::move(entries);
    // Recover P(i) and Q(j) as row / column unions ((M1) with equality).
    r.post_sets_.assign(static_cast<std::size_t>(n), {});
    r.query_sets_.assign(static_cast<std::size_t>(n), {});
    for (net::node_id i = 0; i < n; ++i) {
        for (net::node_id j = 0; j < n; ++j) {
            const auto& e = r.entries_[r.flat(i, j)];
            auto& p = r.post_sets_[static_cast<std::size_t>(i)];
            auto& q = r.query_sets_[static_cast<std::size_t>(j)];
            p.insert(p.end(), e.begin(), e.end());
            q.insert(q.end(), e.begin(), e.end());
        }
    }
    for (auto& p : r.post_sets_) normalize_set(p);
    for (auto& q : r.query_sets_) normalize_set(q);
    return r;
}

const node_set& rendezvous_matrix::entry(net::node_id i, net::node_id j) const {
    return entries_[flat(i, j)];
}

const node_set& rendezvous_matrix::post_set(net::node_id i) const {
    if (i < 0 || i >= n_) throw std::out_of_range{"rendezvous_matrix::post_set"};
    return post_sets_[static_cast<std::size_t>(i)];
}

const node_set& rendezvous_matrix::query_set(net::node_id j) const {
    if (j < 0 || j >= n_) throw std::out_of_range{"rendezvous_matrix::query_set"};
    return query_sets_[static_cast<std::size_t>(j)];
}

bool rendezvous_matrix::total() const {
    for (const auto& e : entries_)
        if (e.empty()) return false;
    return true;
}

bool rendezvous_matrix::singleton() const {
    for (const auto& e : entries_)
        if (e.size() != 1) return false;
    return true;
}

std::vector<std::int64_t> rendezvous_matrix::multiplicities() const {
    std::vector<std::int64_t> k(static_cast<std::size_t>(n_), 0);
    for (const auto& e : entries_)
        for (net::node_id v : e) ++k[static_cast<std::size_t>(v)];
    return k;
}

rendezvous_matrix::row_col_counts rendezvous_matrix::occurrence_spans() const {
    row_col_counts out;
    const auto n = static_cast<std::size_t>(n_);
    out.rows.assign(n, 0);
    out.columns.assign(n, 0);
    std::vector<char> in_row(n), in_col(n);
    for (net::node_id i = 0; i < n_; ++i) {
        std::fill(in_row.begin(), in_row.end(), 0);
        for (net::node_id j = 0; j < n_; ++j)
            for (const net::node_id v : entries_[flat(i, j)])
                in_row[static_cast<std::size_t>(v)] = 1;
        for (std::size_t v = 0; v < n; ++v) out.rows[v] += in_row[v];
    }
    for (net::node_id j = 0; j < n_; ++j) {
        std::fill(in_col.begin(), in_col.end(), 0);
        for (net::node_id i = 0; i < n_; ++i)
            for (const net::node_id v : entries_[flat(i, j)])
                in_col[static_cast<std::size_t>(v)] = 1;
        for (std::size_t v = 0; v < n; ++v) out.columns[v] += in_col[v];
    }
    return out;
}

std::int64_t rendezvous_matrix::message_passes(net::node_id i, net::node_id j) const {
    return static_cast<std::int64_t>(post_set(i).size()) +
           static_cast<std::int64_t>(query_set(j).size());
}

double rendezvous_matrix::average_message_passes() const {
    // m(n) = (1/n^2) * sum_ij (#P(i) + #Q(j)) = (1/n) * sum_v (#P(v) + #Q(v)).
    std::int64_t total = 0;
    for (net::node_id v = 0; v < n_; ++v)
        total += static_cast<std::int64_t>(post_sets_[static_cast<std::size_t>(v)].size()) +
                 static_cast<std::int64_t>(query_sets_[static_cast<std::size_t>(v)].size());
    return n_ == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(n_);
}

std::int64_t rendezvous_matrix::min_message_passes() const {
    std::int64_t min_p = std::numeric_limits<std::int64_t>::max();
    std::int64_t min_q = min_p;
    for (net::node_id v = 0; v < n_; ++v) {
        min_p = std::min<std::int64_t>(min_p,
                                       static_cast<std::int64_t>(post_sets_[static_cast<std::size_t>(v)].size()));
        min_q = std::min<std::int64_t>(min_q,
                                       static_cast<std::int64_t>(query_sets_[static_cast<std::size_t>(v)].size()));
    }
    return n_ == 0 ? 0 : min_p + min_q;
}

std::int64_t rendezvous_matrix::max_message_passes() const {
    std::int64_t max_p = 0;
    std::int64_t max_q = 0;
    for (net::node_id v = 0; v < n_; ++v) {
        max_p = std::max<std::int64_t>(max_p,
                                       static_cast<std::int64_t>(post_sets_[static_cast<std::size_t>(v)].size()));
        max_q = std::max<std::int64_t>(max_q,
                                       static_cast<std::int64_t>(query_sets_[static_cast<std::size_t>(v)].size()));
    }
    return max_p + max_q;
}

double rendezvous_matrix::average_weighted_message_passes(double alpha) const {
    double total = 0;
    for (net::node_id v = 0; v < n_; ++v)
        total += static_cast<double>(post_sets_[static_cast<std::size_t>(v)].size()) +
                 alpha * static_cast<double>(query_sets_[static_cast<std::size_t>(v)].size());
    return n_ == 0 ? 0.0 : total / static_cast<double>(n_);
}

double rendezvous_matrix::product_sum() const {
    // sum_ij #P(i) * #Q(j) = (sum_i #P(i)) * (sum_j #Q(j)).
    double p = 0;
    double q = 0;
    for (net::node_id v = 0; v < n_; ++v) {
        p += static_cast<double>(post_sets_[static_cast<std::size_t>(v)].size());
        q += static_cast<double>(query_sets_[static_cast<std::size_t>(v)].size());
    }
    return p * q;
}

double average_message_passes(const locate_strategy& strategy, port_id port) {
    const net::node_id n = strategy.node_count();
    std::int64_t total = 0;
    for (net::node_id v = 0; v < n; ++v)
        total += static_cast<std::int64_t>(strategy.post_set(v, port).size()) +
                 static_cast<std::int64_t>(strategy.query_set(v, port).size());
    return n == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(n);
}

double average_weighted_message_passes(const locate_strategy& strategy, double alpha,
                                       port_id port) {
    const net::node_id n = strategy.node_count();
    double total = 0;
    for (net::node_id v = 0; v < n; ++v)
        total += static_cast<double>(strategy.post_set(v, port).size()) +
                 alpha * static_cast<double>(strategy.query_set(v, port).size());
    return n == 0 ? 0.0 : total / static_cast<double>(n);
}

std::string rendezvous_matrix::to_string() const {
    std::ostringstream out;
    // Column width from the largest printed token.
    std::size_t width = 1;
    const auto token = [](const node_set& e) {
        if (e.empty()) return std::string{"-"};
        if (e.size() == 1) return std::to_string(e.front() + 1);  // paper is 1-based
        std::string s{"{"};
        for (std::size_t i = 0; i < e.size(); ++i) {
            if (i) s += ',';
            s += std::to_string(e[i] + 1);
        }
        s += '}';
        return s;
    };
    for (const auto& e : entries_) width = std::max(width, token(e).size());
    for (net::node_id i = 0; i < n_; ++i) {
        for (net::node_id j = 0; j < n_; ++j) {
            std::string t = token(entries_[flat(i, j)]);
            t.insert(0, width - t.size(), ' ');
            out << t << (j + 1 == n_ ? "" : " ");
        }
        out << '\n';
    }
    return out.str();
}

}  // namespace mm::core
