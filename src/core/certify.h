// certify.h - one-call audit of a match-making strategy.
//
// Gathers, for a concrete strategy, every property the paper reasons
// about: totality (deterministic success), singleton-ness (no wasted
// rendezvous), the cost m(n) against the Proposition 2 bound, the
// rendezvous-load statistics of the k_i, the worst-case set sizes (cache
// and burst cost), and the Section 2.4 redundancy level
// f = min #(P n Q) - 1, the number of in-place faults every pair survives.
#pragma once

#include <cstdint>
#include <string>

#include "core/lower_bound.h"
#include "core/rendezvous_matrix.h"

namespace mm::core {

struct strategy_certificate {
    std::string name;
    net::node_id nodes = 0;

    bool total = false;       // every pair rendezvouses
    bool singleton = false;   // every entry is exactly one node

    // Section 2.4: every pair survives `fault_tolerance` rendezvous crashes.
    std::int64_t min_overlap = 0;  // min #(P(i) n Q(j))
    [[nodiscard]] std::int64_t fault_tolerance() const noexcept {
        return min_overlap > 0 ? min_overlap - 1 : -1;
    }

    // Costs (complete-network message passes).
    double average_messages = 0;
    double message_bound = 0;  // (2/n) sum sqrt(k_i)
    [[nodiscard]] double optimality_ratio() const noexcept {
        return message_bound > 0 ? average_messages / message_bound : 0.0;
    }
    std::int64_t max_post_size = 0;   // burst a registration causes
    std::int64_t max_query_size = 0;  // burst a locate causes

    // Rendezvous-load balance over the k_i.
    std::int64_t load_min = 0;
    std::int64_t load_max = 0;
    double load_mean = 0;

    // One-line human summary.
    [[nodiscard]] std::string to_string() const;
};

// Builds the full certificate.  O(n^2) set intersections; intended for the
// analysis path, not the data path.
[[nodiscard]] strategy_certificate certify(const locate_strategy& strategy, port_id port = 0);

}  // namespace mm::core
