// rendezvous_matrix.h - the central object of the paper's theory (§2.3).
//
// "The n x n matrix R, with entries r_ij, is the rendez-vous matrix.  Each
// entry r_ij represents the set of rendez-vous nodes where the client at
// node j can find the location and port of the server at node i."
//
// The matrix is built either from a strategy (entries = P(i) n Q(j)) or
// directly from entries (used by the Proposition 4 lifting); in the latter
// case P and Q are recovered as row and column unions, the equality form of
// constraint (M1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/strategy.h"

namespace mm::core {

class rendezvous_matrix {
public:
    // Builds R from a strategy: r_ij = P(i) n Q(j) for the given port.
    [[nodiscard]] static rendezvous_matrix from_strategy(const locate_strategy& strategy,
                                                         port_id port = 0);

    // Builds R from explicit entries (entries[i*n + j]); P(i) and Q(j) are
    // the row/column unions.
    [[nodiscard]] static rendezvous_matrix from_entries(net::node_id n,
                                                        std::vector<node_set> entries);

    [[nodiscard]] net::node_id size() const noexcept { return n_; }

    // The rendezvous set r_ij (sorted).
    [[nodiscard]] const node_set& entry(net::node_id i, net::node_id j) const;

    [[nodiscard]] const node_set& post_set(net::node_id i) const;   // P(i)
    [[nodiscard]] const node_set& query_set(net::node_id j) const;  // Q(j)

    // True iff every pair of nodes has at least one rendezvous node: the
    // correctness condition for deterministic match-making.
    [[nodiscard]] bool total() const;

    // True iff every entry is a single node, the paper's "optimal shotgun
    // method has exactly one element in each r_ij".
    [[nodiscard]] bool singleton() const;

    // k_v = number of matrix entries containing node v; sum over v of k_v
    // equals n^2 for total singleton matrices (constraint (M2)).
    [[nodiscard]] std::vector<std::int64_t> multiplicities() const;

    // R_v = number of distinct rows whose entries contain node v, and
    // C_v = distinct columns.  The Proposition 1 proof hinges on
    // R_v * C_v >= k_v for every v (a node used k times must span enough
    // rows and columns).
    struct row_col_counts {
        std::vector<std::int64_t> rows;     // R_v
        std::vector<std::int64_t> columns;  // C_v
    };
    [[nodiscard]] row_col_counts occurrence_spans() const;

    // m(i,j) = #P(i) + #Q(j), the message passes of one match-making
    // instance in a complete network (M3).
    [[nodiscard]] std::int64_t message_passes(net::node_id i, net::node_id j) const;

    // m(n): the average of m(i,j) over all n^2 pairs (M4).
    [[nodiscard]] double average_message_passes() const;
    [[nodiscard]] std::int64_t min_message_passes() const;
    [[nodiscard]] std::int64_t max_message_passes() const;

    // Weighted average with m(i,j) = #P(i) + alpha * #Q(j) (M3'), modelling
    // clients locating `alpha` times more often than servers post.
    [[nodiscard]] double average_weighted_message_passes(double alpha) const;

    // Sum over i,j of #P(i) * #Q(j) (the left side of Proposition 1).
    [[nodiscard]] double product_sum() const;

    // Paper-style grid of entries, one row per server node; singleton
    // entries print as the node (1-based, like the paper's examples), larger
    // sets print in braces.
    [[nodiscard]] std::string to_string() const;

private:
    net::node_id n_ = 0;
    std::vector<node_set> entries_;      // n*n, row-major
    std::vector<node_set> post_sets_;    // P(i)
    std::vector<node_set> query_sets_;   // Q(j)

    [[nodiscard]] std::size_t flat(net::node_id i, net::node_id j) const;
};

// m(n) computed from set sizes only, without materializing the n^2 matrix;
// use for large-n parameter sweeps.
[[nodiscard]] double average_message_passes(const locate_strategy& strategy, port_id port = 0);

// Average weighted cost #P + alpha*#Q, matrix-free (M3').
[[nodiscard]] double average_weighted_message_passes(const locate_strategy& strategy,
                                                     double alpha, port_id port = 0);

}  // namespace mm::core
