// lower_bound.h - Propositions 1 and 2 of the paper (§2.3.2-2.3.3).
//
// Proposition 1:  sum_ij #P(i)#Q(j)  >=  ( sum_i sqrt(k_i) )^2
// Proposition 2:  m(n)               >=  (2/n) * sum_i sqrt(k_i)
//
// with k_i the number of occurrences of node i in the rendezvous matrix.
// Corollaries: the truly distributed case (all k_i = n) gives
// m(n) >= 2*sqrt(n); the centralized case (one k = n^2) gives m(n) >= 2.
#pragma once

#include <cstdint>
#include <span>

#include "core/rendezvous_matrix.h"

namespace mm::core {

struct bound_report {
    // Proposition 1, both sides:  sum_ij #P#Q  >=  (sum sqrt(k_i))^2.
    double product_sum = 0;         // left side
    double product_sum_bound = 0;   // right side
    // Proposition 2, both sides:  m(n) >= (2/n) sum sqrt(k_i).
    double average_messages = 0;    // m(n)
    double message_bound = 0;       // (2/n) sum sqrt(k_i)
    bool proposition1_holds = false;
    bool proposition2_holds = false;

    [[nodiscard]] bool all_hold() const noexcept {
        return proposition1_holds && proposition2_holds;
    }
    // m(n) / bound: 1.0 means the strategy is optimal for its load profile.
    [[nodiscard]] double optimality_ratio() const noexcept {
        return message_bound > 0 ? average_messages / message_bound : 0.0;
    }
};

// The Proposition 2 right-hand side for given multiplicities.
[[nodiscard]] double message_bound_for(std::span<const std::int64_t> multiplicities,
                                       net::node_id n);

// Evaluates both propositions for a concrete rendezvous matrix.
[[nodiscard]] bound_report check_bounds(const rendezvous_matrix& r);

// The truly distributed lower bound 2*sqrt(n) (all k_i = n).
[[nodiscard]] double truly_distributed_bound(net::node_id n);

}  // namespace mm::core
