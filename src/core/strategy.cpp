#include "core/strategy.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace mm::core {

// --- intersection fast paths -------------------------------------------------
//
// Rendezvous is set intersection: every locate resolves to
// intersect_sets(P(u), Q(v)) (Section 2's |P(u) ∩ Q(v)| >= 1 invariant), so
// the matrix/tree/montecarlo strategies and the verification sweeps all
// funnel through here.  The scalar two-pointer merge is optimal only when
// the inputs are balanced, overlapping, and sparse; the dispatch below picks
// a cheaper shape whenever the inputs say so:
//
//  1. window trim - binary-search each set down to the other's value range.
//     Disjoint ranges exit before any merge; clustered rendezvous sets
//     (grid rows vs columns) shrink to the overlap window.
//  2. galloping merge - when one side is >= 32x the other, walk the small
//     side and exponential-search the large one: O(small * log(large))
//     beats O(small + large) exactly in this regime.
//  3. bitmap - when the overlap window is dense enough that direct
//     addressing costs no more than the merge, mark the small side and
//     probe with the large one: two linear passes with single-cycle inner
//     steps and a branchless emit.  Small windows (<= 1 MiB) use an
//     epoch-stamped byte array - no clearing between calls, no
//     read-modify-write dependency chains; larger windows that are still
//     dense (words <= |a| + |b|) fall back to a 64-bit-word bitmap whose
//     clear cost is bounded by the merge the caller avoided.
//  4. SSE2 block merge - balanced sparse inputs compare 4x4 lane blocks
//     (cmpeq against the 4 rotations of the other block), emitting matched
//     lanes and advancing the block with the smaller max; the scalar merge
//     only runs as the < 4-lane tail.
//
// Every path produces exactly the sorted unique output of
// std::set_intersection (tests/test_hotpath.cpp drives all four regimes
// against that reference).
namespace {

// Galloping merge: `a` must be the small side.  Appends matches to out.
void intersect_gallop(const net::node_id* a, std::size_t asz, const net::node_id* b,
                      std::size_t bsz, node_set& out) {
    std::size_t lo = 0;
    for (std::size_t i = 0; i < asz && lo < bsz; ++i) {
        const net::node_id x = a[i];
        std::size_t bound = 1;
        while (lo + bound < bsz && b[lo + bound] < x) bound <<= 1;
        const net::node_id* first = b + lo + bound / 2;
        const net::node_id* last = b + std::min(lo + bound + 1, bsz);
        lo = static_cast<std::size_t>(std::lower_bound(first, last, x) - b);
        if (lo < bsz && b[lo] == x) {
            out.push_back(x);
            ++lo;
        }
    }
}

// True as soon as any element of small `a` appears in `b`.
bool gallop_any(const net::node_id* a, std::size_t asz, const net::node_id* b,
                std::size_t bsz) {
    std::size_t lo = 0;
    for (std::size_t i = 0; i < asz && lo < bsz; ++i) {
        const net::node_id x = a[i];
        std::size_t bound = 1;
        while (lo + bound < bsz && b[lo + bound] < x) bound <<= 1;
        const net::node_id* first = b + lo + bound / 2;
        const net::node_id* last = b + std::min(lo + bound + 1, bsz);
        lo = static_cast<std::size_t>(std::lower_bound(first, last, x) - b);
        if (lo < bsz && b[lo] == x) return true;
    }
    return false;
}

// Epoch-stamped byte array over the window [base, base + range): stamp the
// small side, probe with the large side.  The epoch trick makes the array
// reusable without clearing (a full memset only every 255 calls, when the
// 8-bit epoch wraps), the stamp stores carry no load dependency, and the
// emit is branchless - probe order == output order, so the result is
// sorted with no extra pass.
void intersect_stamp(const net::node_id* a, std::size_t asz, const net::node_id* b,
                     std::size_t bsz, net::node_id base, std::size_t range,
                     node_set& out) {
    thread_local std::vector<std::uint8_t> stamp;
    thread_local std::uint8_t epoch = 0;
    if (stamp.size() < range) {
        stamp.assign(range, 0);
        epoch = 0;
    }
    if (++epoch == 0) {
        std::fill(stamp.begin(), stamp.end(), std::uint8_t{0});
        epoch = 1;
    }
    const std::uint8_t e = epoch;
    for (std::size_t i = 0; i < asz; ++i) stamp[static_cast<std::size_t>(a[i] - base)] = e;
    // Emit through a persistent scratch row: writing through resize(bsz)
    // directly into `out` would value-initialize bsz lanes per call just to
    // overwrite them.
    thread_local std::vector<net::node_id> hits;
    if (hits.size() < bsz) hits.resize(bsz);
    net::node_id* dst = hits.data();
    std::size_t n = 0;
    for (std::size_t j = 0; j < bsz; ++j) {
        dst[n] = b[j];
        n += static_cast<std::size_t>(stamp[static_cast<std::size_t>(b[j] - base)] == e);
    }
    out.assign(dst, dst + n);
}

// 64-bit-word bitmap over the window [base, base + words * 64): the dense
// path for windows too large for the byte stamp to stay cache-resident.
void intersect_bitmap(const net::node_id* a, std::size_t asz, const net::node_id* b,
                      std::size_t bsz, net::node_id base, std::size_t words,
                      node_set& out) {
    thread_local std::vector<std::uint64_t> bits;
    bits.assign(words, 0);
    for (std::size_t i = 0; i < asz; ++i) {
        const auto off = static_cast<std::uint64_t>(a[i] - base);
        bits[off >> 6] |= std::uint64_t{1} << (off & 63);
    }
    for (std::size_t j = 0; j < bsz; ++j) {
        const auto off = static_cast<std::uint64_t>(b[j] - base);
        if ((bits[off >> 6] >> (off & 63)) & 1u) out.push_back(b[j]);
    }
}

// Scalar two-pointer merge tail.
void intersect_scalar(const net::node_id* a, std::size_t asz, const net::node_id* b,
                      std::size_t bsz, node_set& out) {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < asz && j < bsz) {
        if (a[i] == b[j]) {
            out.push_back(a[i]);
            ++i;
            ++j;
        } else if (a[i] < b[j]) {
            ++i;
        } else {
            ++j;
        }
    }
}

#if defined(__SSE2__)
// 4x4 block merge: matched a-lanes are exactly the intersection elements of
// the two blocks (inputs are sorted unique, so each value matches at most
// once and a matched pair's blocks never realign after an advance).
void intersect_blocks(const net::node_id* a, std::size_t asz, const net::node_id* b,
                      std::size_t bsz, node_set& out) {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i + 4 <= asz && j + 4 <= bsz) {
        const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
        const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
        __m128i eq = _mm_cmpeq_epi32(va, vb);
        eq = _mm_or_si128(eq,
                          _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
        eq = _mm_or_si128(eq,
                          _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
        eq = _mm_or_si128(eq,
                          _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
        unsigned mask = static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
        while (mask != 0) {
            const unsigned lane = static_cast<unsigned>(std::countr_zero(mask));
            out.push_back(a[i + lane]);
            mask &= mask - 1;
        }
        const net::node_id amax = a[i + 3];
        const net::node_id bmax = b[j + 3];
        if (amax <= bmax) i += 4;
        if (bmax <= amax) j += 4;
    }
    intersect_scalar(a + i, asz - i, b + j, bsz - j, out);
}

// Boolean variant: early-exits on the first matching block.
bool blocks_any(const net::node_id* a, std::size_t asz, const net::node_id* b,
                std::size_t bsz) {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i + 4 <= asz && j + 4 <= bsz) {
        const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
        const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
        __m128i eq = _mm_cmpeq_epi32(va, vb);
        eq = _mm_or_si128(eq,
                          _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
        eq = _mm_or_si128(eq,
                          _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
        eq = _mm_or_si128(eq,
                          _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
        if (_mm_movemask_ps(_mm_castsi128_ps(eq)) != 0) return true;
        const net::node_id amax = a[i + 3];
        const net::node_id bmax = b[j + 3];
        if (amax <= bmax) i += 4;
        if (bmax <= amax) j += 4;
    }
    while (i < asz && j < bsz) {
        if (a[i] == b[j]) return true;
        if (a[i] < b[j])
            ++i;
        else
            ++j;
    }
    return false;
}
#endif  // __SSE2__

// Binary-searches both spans down to each other's value range.  Returns
// false when the trimmed overlap is empty.
bool trim_windows(const net::node_id*& a, std::size_t& asz, const net::node_id*& b,
                  std::size_t& bsz) {
    if (asz == 0 || bsz == 0) return false;
    const net::node_id* blo = std::lower_bound(b, b + bsz, a[0]);
    const net::node_id* bhi = std::upper_bound(blo, b + bsz, a[asz - 1]);
    b = blo;
    bsz = static_cast<std::size_t>(bhi - blo);
    if (bsz == 0) return false;
    const net::node_id* alo = std::lower_bound(a, a + asz, b[0]);
    const net::node_id* ahi = std::upper_bound(alo, a + asz, b[bsz - 1]);
    a = alo;
    asz = static_cast<std::size_t>(ahi - alo);
    return asz != 0;
}

constexpr std::size_t gallop_ratio = 32;

}  // namespace

void normalize_set(node_set& nodes) {
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
}

node_set intersect_sets(const node_set& a_in, const node_set& b_in) {
    const net::node_id* a = a_in.data();
    std::size_t asz = a_in.size();
    const net::node_id* b = b_in.data();
    std::size_t bsz = b_in.size();
    if (asz > bsz) {
        std::swap(a, b);
        std::swap(asz, bsz);
    }
    node_set out;
    if (asz == 0) return out;
    if (asz + bsz <= 96) {  // small inputs: dispatch costs more than the merge
        out.reserve(asz);
        intersect_scalar(a, asz, b, bsz, out);
        return out;
    }
    if (a[asz - 1] < b[0] || b[bsz - 1] < a[0]) return out;  // disjoint ranges
    if (bsz >= asz * gallop_ratio) {
        out.reserve(asz);
        intersect_gallop(a, asz, b, bsz, out);
        return out;
    }
    // Dense raw window: go straight to the stamp - the binary-search trim
    // below costs more than the slack it would shave off the window.
    const net::node_id raw_base = std::min(a[0], b[0]);
    const net::node_id raw_top = std::max(a[asz - 1], b[bsz - 1]);
    const auto raw_range = static_cast<std::uint64_t>(raw_top) -
                           static_cast<std::uint64_t>(raw_base) + 1;
    if (asz + bsz >= 128 && raw_range <= 16 * (asz + bsz) &&
        raw_range <= (std::uint64_t{1} << 20)) {
        intersect_stamp(a, asz, b, bsz, raw_base, static_cast<std::size_t>(raw_range), out);
        return out;
    }
    // Sparse or clustered: trim to the overlap window and re-dispatch (a
    // partially-overlapping pair can become dense - or empty - once cut).
    if (!trim_windows(a, asz, b, bsz)) return out;
    if (asz > bsz) {  // trimming can flip which side is smaller
        std::swap(a, b);
        std::swap(asz, bsz);
    }
    if (bsz >= asz * gallop_ratio) {
        out.reserve(asz);
        intersect_gallop(a, asz, b, bsz, out);
        return out;
    }
    const net::node_id base = std::min(a[0], b[0]);
    const net::node_id top = std::max(a[asz - 1], b[bsz - 1]);
    const auto range =
        static_cast<std::uint64_t>(top) - static_cast<std::uint64_t>(base) + 1;
    if (asz + bsz >= 128 && range <= 16 * (asz + bsz) &&
        range <= (std::uint64_t{1} << 20)) {
        intersect_stamp(a, asz, b, bsz, base, static_cast<std::size_t>(range), out);
        return out;
    }
    out.reserve(asz);
    const std::uint64_t words = (range - 1) / 64 + 1;
    if (words <= asz + bsz) {
        intersect_bitmap(a, asz, b, bsz, base, static_cast<std::size_t>(words), out);
        return out;
    }
#if defined(__SSE2__)
    intersect_blocks(a, asz, b, bsz, out);
#else
    intersect_scalar(a, asz, b, bsz, out);
#endif
    return out;
}

bool sets_intersect(const node_set& a_in, const node_set& b_in) {
    const net::node_id* a = a_in.data();
    std::size_t asz = a_in.size();
    const net::node_id* b = b_in.data();
    std::size_t bsz = b_in.size();
    if (asz > bsz) {
        std::swap(a, b);
        std::swap(asz, bsz);
    }
    if (asz + bsz <= 16) {
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < asz && j < bsz) {
            if (a[i] == b[j]) return true;
            if (a[i] < b[j])
                ++i;
            else
                ++j;
        }
        return false;
    }
    if (!trim_windows(a, asz, b, bsz)) return false;
    if (asz > bsz) {
        std::swap(a, b);
        std::swap(asz, bsz);
    }
    if (bsz >= asz * gallop_ratio) return gallop_any(a, asz, b, bsz);
#if defined(__SSE2__)
    return blocks_any(a, asz, b, bsz);
#else
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < asz && j < bsz) {
        if (a[i] == b[j]) return true;
        if (a[i] < b[j])
            ++i;
        else
            ++j;
    }
    return false;
#endif
}

node_set all_nodes(net::node_id n) {
    node_set out(static_cast<std::size_t>(n));
    for (net::node_id v = 0; v < n; ++v) out[static_cast<std::size_t>(v)] = v;
    return out;
}

}  // namespace mm::core
