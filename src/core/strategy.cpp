#include "core/strategy.h"

namespace mm::core {

void normalize_set(node_set& nodes) {
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
}

node_set intersect_sets(const node_set& a, const node_set& b) {
    node_set out;
    out.reserve(std::min(a.size(), b.size()));
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
    return out;
}

bool sets_intersect(const node_set& a, const node_set& b) {
    auto i = a.begin();
    auto j = b.begin();
    while (i != a.end() && j != b.end()) {
        if (*i == *j) return true;
        if (*i < *j) {
            ++i;
        } else {
            ++j;
        }
    }
    return false;
}

node_set all_nodes(net::node_id n) {
    node_set out(static_cast<std::size_t>(n));
    for (net::node_id v = 0; v < n; ++v) out[static_cast<std::size_t>(v)] = v;
    return out;
}

}  // namespace mm::core
