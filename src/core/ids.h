// ids.h - identifiers of the service model (Section 1.3).
//
// "A service is identified by its port.  A port uniquely names a service...
// Ports give no clue about the physical location of a server process."
#pragma once

#include <cstdint>
#include <string_view>

#include "net/graph.h"

namespace mm::core {

// A port: the location-independent name of a service.
using port_id = std::uint64_t;

// Stable hash of a human-readable service name to a port (FNV-1a).  The
// same name always maps to the same port, across runs and platforms.
[[nodiscard]] constexpr port_id port_of(std::string_view service_name) noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : service_name) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 1099511628211ULL;
    }
    return h;
}

// A network address: in this model, the node a process currently resides at.
using address = net::node_id;

}  // namespace mm::core
