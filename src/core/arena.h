// arena.h - structure-of-arrays slab arena with handle-based allocation.
//
// The simulator's serial calendar queue stores ~24-byte ordering slots and
// parks each event's payload here; the name service parks per-operation
// transient state the same way.  The arena is a set of parallel value
// arrays (one per field group) sharing a single u32 handle space and free
// list, so:
//   * allocation is a pop from the free list (no malloc on the hot path
//     once the slab has warmed to the in-flight high-water mark);
//   * a consumer touches only the rows its event kind needs (a timer pop
//     never loads the 64-byte message row - the SoA payoff);
//   * recycled rows keep their heap capacity (a node_set that grew once
//     never reallocates for later occupants of the slot).
//
// Contract: release() does not destroy row values - it only returns the
// handle to the free list.  Callers move heavy fields out (or reset them)
// before releasing when leaving them alive would pin memory; POD rows are
// simply overwritten by the next occupant.
#pragma once

#include <cstdint>
#include <tuple>
#include <vector>

namespace mm::core {

template <class... Rows>
class soa_arena {
public:
    using handle = std::uint32_t;

    // A slot whose rows are default-constructed on first use and recycled
    // (with whatever capacity they grew) afterwards.
    handle alloc() {
        if (!free_.empty()) {
            const handle h = free_.back();
            free_.pop_back();
            ++live_;
            return h;
        }
        const auto h = static_cast<handle>(size_);
        std::apply([](auto&... row) { (row.emplace_back(), ...); }, rows_);
        ++size_;
        ++live_;
        return h;
    }

    void release(handle h) {
        free_.push_back(h);
        --live_;
    }

    template <std::size_t I>
    [[nodiscard]] auto& row(handle h) {
        return std::get<I>(rows_)[h];
    }
    template <std::size_t I>
    [[nodiscard]] const auto& row(handle h) const {
        return std::get<I>(rows_)[h];
    }

    [[nodiscard]] std::size_t live() const noexcept { return live_; }
    [[nodiscard]] std::size_t capacity() const noexcept { return size_; }

    void clear() {
        std::apply([](auto&... row) { (row.clear(), ...); }, rows_);
        free_.clear();
        size_ = 0;
        live_ = 0;
    }

private:
    std::tuple<std::vector<Rows>...> rows_;
    std::vector<handle> free_;
    std::size_t size_ = 0;
    std::size_t live_ = 0;
};

}  // namespace mm::core
