#include "core/certify.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace mm::core {

strategy_certificate certify(const locate_strategy& strategy, port_id port) {
    strategy_certificate cert;
    cert.name = strategy.name();
    cert.nodes = strategy.node_count();

    const auto r = rendezvous_matrix::from_strategy(strategy, port);
    cert.total = r.total();
    cert.singleton = r.singleton();

    cert.min_overlap = std::numeric_limits<std::int64_t>::max();
    for (net::node_id i = 0; i < r.size(); ++i)
        for (net::node_id j = 0; j < r.size(); ++j)
            cert.min_overlap = std::min<std::int64_t>(
                cert.min_overlap, static_cast<std::int64_t>(r.entry(i, j).size()));

    const auto report = check_bounds(r);
    cert.average_messages = report.average_messages;
    cert.message_bound = report.message_bound;

    for (net::node_id v = 0; v < r.size(); ++v) {
        cert.max_post_size = std::max<std::int64_t>(
            cert.max_post_size, static_cast<std::int64_t>(r.post_set(v).size()));
        cert.max_query_size = std::max<std::int64_t>(
            cert.max_query_size, static_cast<std::int64_t>(r.query_set(v).size()));
    }

    const auto k = r.multiplicities();
    cert.load_min = std::numeric_limits<std::int64_t>::max();
    std::int64_t total_load = 0;
    for (const auto ki : k) {
        cert.load_min = std::min(cert.load_min, ki);
        cert.load_max = std::max(cert.load_max, ki);
        total_load += ki;
    }
    cert.load_mean = k.empty() ? 0.0 : static_cast<double>(total_load) / static_cast<double>(k.size());
    return cert;
}

std::string strategy_certificate::to_string() const {
    std::ostringstream out;
    out << name << " on " << nodes << " nodes: " << (total ? "total" : "NOT TOTAL")
        << (singleton ? ", singleton" : "") << ", m(n) = " << average_messages << " (bound "
        << message_bound << ", ratio " << optimality_ratio() << "), survives f = "
        << fault_tolerance() << " in-place faults, max #P = " << max_post_size
        << ", max #Q = " << max_query_size << ", rendezvous load [" << load_min << ", "
        << load_max << "] mean " << load_mean;
    return out.str();
}

}  // namespace mm::core
