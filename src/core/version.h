// version.h - the library's build contract: version and feature macros.
//
// tests/test_build_sanity.cpp asserts these stay coherent (the numeric
// triple must match MM_VERSION_STRING, and every subsystem flag must be
// present); bump the triple when the public surface changes and keep the
// CMake project(VERSION ...) in sync.
#pragma once

#include <string_view>

#define MM_VERSION_MAJOR 0
#define MM_VERSION_MINOR 1
#define MM_VERSION_PATCH 0
#define MM_VERSION_STRING "0.1.0"

// Subsystems compiled into libmm, one flag per src/ directory.
#define MM_HAS_CORE 1
#define MM_HAS_NET 1
#define MM_HAS_SIM 1
#define MM_HAS_STRATEGIES 1
#define MM_HAS_LIGHTHOUSE 1
#define MM_HAS_ANALYSIS 1
#define MM_HAS_RUNTIME 1

namespace mm {

[[nodiscard]] constexpr std::string_view version() noexcept { return MM_VERSION_STRING; }

}  // namespace mm
