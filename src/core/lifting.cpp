#include "core/lifting.h"

#include <stdexcept>

namespace mm::core {

rendezvous_matrix lift(const rendezvous_matrix& r) {
    const net::node_id n = r.size();
    if (n <= 0) throw std::invalid_argument{"lift: empty matrix"};
    const net::node_id big = 4 * n;
    std::vector<node_set> entries(static_cast<std::size_t>(big) * static_cast<std::size_t>(big));

    // M is the 2n x 2n matrix with M[x][y] = r[x/2][y/2]; quadrant (a,b) of
    // R' holds the copy of M shifted by (2a + b) * n.
    for (net::node_id i = 0; i < big; ++i) {
        const int quad_row = static_cast<int>(i / (2 * n));
        const net::node_id mi = i % (2 * n);
        for (net::node_id j = 0; j < big; ++j) {
            const int quad_col = static_cast<int>(j / (2 * n));
            const net::node_id mj = j % (2 * n);
            const net::node_id offset = static_cast<net::node_id>(2 * quad_row + quad_col) * n;
            node_set e = r.entry(mi / 2, mj / 2);
            for (auto& v : e) v += offset;
            entries[static_cast<std::size_t>(i) * static_cast<std::size_t>(big) +
                    static_cast<std::size_t>(j)] = std::move(e);
        }
    }
    return rendezvous_matrix::from_entries(big, std::move(entries));
}

rendezvous_matrix lift(const rendezvous_matrix& r, int steps) {
    if (steps < 0) throw std::invalid_argument{"lift: negative step count"};
    rendezvous_matrix out = r;
    for (int s = 0; s < steps; ++s) out = lift(out);
    return out;
}

}  // namespace mm::core
