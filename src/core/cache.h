// cache.h - the (port, address) caches kept at rendezvous nodes.
//
// Section 2.1(3): "all nodes j have a cache ... Entries are made or updated
// whenever a message is received from a server process with its address ...
// We can timestamp the messages to determine which addresses are out of
// date in case of a conflict."
//
// Two variants:
//  * port_cache            - unbounded, as assumed by Shotgun Locate;
//  * bounded_port_cache    - LRU-evicting, the "too-small caches [that] can
//                            discard (port, address) pairs" of Lighthouse
//                            Locate and of the UUCP tree scheme.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/ids.h"

namespace mm::core {

// One advertised (port, address) binding.
struct port_entry {
    port_id port = 0;
    address where = net::invalid_node;
    std::int64_t stamp = 0;        // post time; newer wins on conflict
    std::int64_t expires_at = -1;  // -1 = never
};

// Unbounded timestamped cache.  A post only replaces an existing entry for
// the same port if it is at least as recent (out-of-order stale posts lose).
class port_cache {
public:
    // Returns true if the entry was stored (i.e. was not stale).
    bool post(const port_entry& entry);

    // Removes the binding for `port` if it maps to `where` (used by explicit
    // de-registration); returns true if something was removed.
    bool remove(port_id port, address where);

    // Current binding, if any and not expired at time `now`.
    [[nodiscard]] std::optional<port_entry> lookup(port_id port, std::int64_t now = 0) const;

    // Drops entries with expires_at <= now; returns how many were dropped.
    std::size_t expire(std::int64_t now);

    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
    [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
    void clear() { entries_.clear(); }

    // Peak number of simultaneously cached entries, the paper's storage cost.
    [[nodiscard]] std::size_t high_water_mark() const noexcept { return high_water_; }

private:
    std::unordered_map<port_id, port_entry> entries_;
    std::size_t high_water_ = 0;
};

// Fixed-capacity cache with least-recently-used eviction; lookups refresh
// recency.  Capacity 0 means "never stores anything".
class bounded_port_cache {
public:
    explicit bounded_port_cache(std::size_t capacity);

    bool post(const port_entry& entry);
    [[nodiscard]] std::optional<port_entry> lookup(port_id port, std::int64_t now = 0);
    std::size_t expire(std::int64_t now);

    [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::int64_t evictions() const noexcept { return evictions_; }
    void clear();

private:
    using lru_list = std::list<port_entry>;
    std::size_t capacity_;
    lru_list order_;  // front = most recent
    std::unordered_map<port_id, lru_list::iterator> map_;
    std::int64_t evictions_ = 0;

    void touch(lru_list::iterator it);
};

}  // namespace mm::core
