// lifting.h - Proposition 4: lifting an n-node strategy to 4n nodes.
//
// "Replace each entry r_ij of R by a 2x2 submatrix consisting of 4 copies of
// r_ij.  The resulting 2n x 2n matrix is M.  Let R_i (i = 1..4) be four,
// pairwise element disjoint, isomorphic copies of M.  Consider the 4n x 4n
// matrix R' = [R1 R2; R3 R4]."  Node v of copy t becomes node v + t*n.
// Result: k'_i = 4*k_{i mod n} and m'(4n) = 2*m(n), giving an inductive way
// to scale any good small strategy to arbitrarily large networks.
#pragma once

#include "core/rendezvous_matrix.h"

namespace mm::core {

// One lifting step: R (n x n) -> R' (4n x 4n).
[[nodiscard]] rendezvous_matrix lift(const rendezvous_matrix& r);

// `steps` liftings: n -> 4^steps * n.
[[nodiscard]] rendezvous_matrix lift(const rendezvous_matrix& r, int steps);

}  // namespace mm::core
