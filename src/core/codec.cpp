#include "core/codec.h"

namespace mm::core {

void byte_writer::u8(std::uint8_t v) { out_->push_back(v); }

void byte_writer::u16(std::uint16_t v) {
    out_->push_back(static_cast<std::uint8_t>(v));
    out_->push_back(static_cast<std::uint8_t>(v >> 8));
}

void byte_writer::u32(std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8)
        out_->push_back(static_cast<std::uint8_t>(v >> shift));
}

void byte_writer::u64(std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8)
        out_->push_back(static_cast<std::uint8_t>(v >> shift));
}

bool byte_reader::take(std::size_t n) noexcept {
    if (!ok_ || size_ - pos_ < n) {
        ok_ = false;
        return false;
    }
    return true;
}

std::uint8_t byte_reader::u8() {
    if (!take(1)) return 0;
    return data_[pos_++];
}

std::uint16_t byte_reader::u16() {
    if (!take(2)) return 0;
    std::uint16_t v = 0;
    for (int shift = 0; shift < 16; shift += 8)
        v = static_cast<std::uint16_t>(v | static_cast<std::uint16_t>(data_[pos_++]) << shift);
    return v;
}

std::uint32_t byte_reader::u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8)
        v |= static_cast<std::uint32_t>(data_[pos_++]) << shift;
    return v;
}

std::uint64_t byte_reader::u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8)
        v |= static_cast<std::uint64_t>(data_[pos_++]) << shift;
    return v;
}

}  // namespace mm::core
