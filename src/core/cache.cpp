#include "core/cache.h"

#include <algorithm>

namespace mm::core {

bool port_cache::post(const port_entry& entry) {
    auto it = entries_.find(entry.port);
    if (it == entries_.end()) {
        entries_.emplace(entry.port, entry);
        high_water_ = std::max(high_water_, entries_.size());
        return true;
    }
    if (entry.stamp < it->second.stamp) return false;  // stale post loses
    it->second = entry;
    return true;
}

bool port_cache::remove(port_id port, address where) {
    auto it = entries_.find(port);
    if (it == entries_.end() || it->second.where != where) return false;
    entries_.erase(it);
    return true;
}

std::optional<port_entry> port_cache::lookup(port_id port, std::int64_t now) const {
    const auto it = entries_.find(port);
    if (it == entries_.end()) return std::nullopt;
    if (it->second.expires_at >= 0 && it->second.expires_at <= now) return std::nullopt;
    return it->second;
}

std::size_t port_cache::expire(std::int64_t now) {
    std::size_t dropped = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second.expires_at >= 0 && it->second.expires_at <= now) {
            it = entries_.erase(it);
            ++dropped;
        } else {
            ++it;
        }
    }
    return dropped;
}

bounded_port_cache::bounded_port_cache(std::size_t capacity) : capacity_{capacity} {}

void bounded_port_cache::touch(lru_list::iterator it) {
    order_.splice(order_.begin(), order_, it);
}

bool bounded_port_cache::post(const port_entry& entry) {
    if (capacity_ == 0) return false;
    auto it = map_.find(entry.port);
    if (it != map_.end()) {
        if (entry.stamp < it->second->stamp) return false;
        *it->second = entry;
        touch(it->second);
        return true;
    }
    if (map_.size() >= capacity_) {
        // Evict the least recently used entry.
        const auto victim = std::prev(order_.end());
        map_.erase(victim->port);
        order_.erase(victim);
        ++evictions_;
    }
    order_.push_front(entry);
    map_.emplace(entry.port, order_.begin());
    return true;
}

std::optional<port_entry> bounded_port_cache::lookup(port_id port, std::int64_t now) {
    auto it = map_.find(port);
    if (it == map_.end()) return std::nullopt;
    if (it->second->expires_at >= 0 && it->second->expires_at <= now) {
        order_.erase(it->second);
        map_.erase(it);
        return std::nullopt;
    }
    touch(it->second);
    return *it->second;
}

std::size_t bounded_port_cache::expire(std::int64_t now) {
    std::size_t dropped = 0;
    for (auto it = order_.begin(); it != order_.end();) {
        if (it->expires_at >= 0 && it->expires_at <= now) {
            map_.erase(it->port);
            it = order_.erase(it);
            ++dropped;
        } else {
            ++it;
        }
    }
    return dropped;
}

void bounded_port_cache::clear() {
    order_.clear();
    map_.clear();
}

}  // namespace mm::core
