// flat_map.h - open-addressing hash map for the engine's hot dynamic keys.
//
// The simulator's per-tag hop accounting and the name service's op index
// both map a positive 64-bit id to a small value, bump it on nearly every
// message, and erase it when the operation retires.  A node-based
// std::unordered_map pays a heap allocation plus two dependent loads per
// touch; this map is one flat power-of-two slot array probed linearly, so
// the common bump is a single cache line.  Not a general-purpose container:
// keys are int64 and must be > 0 (0 marks an empty slot, -1 a tombstone),
// which both users guarantee - tags and op ids start at 1.
//
// Erase uses tombstones; the table rehashes when live+dead slots pass the
// 70% load bound, which also garbage-collects the tombstones.  Iteration
// order is the probe order - unspecified, so callers must only fold
// commutatively over it (the counter merges do) or sort afterwards.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace mm::core {

template <class Value>
class flat_map {
public:
    flat_map() = default;

    [[nodiscard]] std::size_t size() const noexcept { return live_; }
    [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

    void clear() {
        slots_.clear();
        mask_ = 0;
        live_ = 0;
        used_ = 0;
    }

    // Value for `key`, default-constructed and inserted when absent.
    Value& ref(std::int64_t key) {
        assert(key > 0);
        if (used_ + 1 > capacity_limit()) grow();
        std::size_t i = probe_start(key);
        std::size_t first_tomb = npos;
        for (;;) {
            slot& s = slots_[i];
            if (s.key == key) return s.value;
            if (s.key == empty_key) {
                if (first_tomb != npos) {
                    slot& t = slots_[first_tomb];
                    t.key = key;
                    t.value = Value{};
                    ++live_;  // reusing a tombstone: used_ stays put
                    return t.value;
                }
                s.key = key;
                s.value = Value{};
                ++live_;
                ++used_;
                return s.value;
            }
            if (s.key == tomb_key && first_tomb == npos) first_tomb = i;
            i = (i + 1) & mask_;
        }
    }

    // Value for `key`, or Value{} when absent (matches tag_hops semantics:
    // unknown tags read 0).
    [[nodiscard]] Value get(std::int64_t key) const {
        const slot* s = find_slot(key);
        return s == nullptr ? Value{} : s->value;
    }

    [[nodiscard]] bool contains(std::int64_t key) const { return find_slot(key) != nullptr; }

    // Pointer to the value, or nullptr when absent; stable until the next
    // insert (which may rehash).
    [[nodiscard]] Value* find(std::int64_t key) {
        const slot* s = find_slot(key);
        return s == nullptr ? nullptr : const_cast<Value*>(&s->value);
    }
    [[nodiscard]] const Value* find(std::int64_t key) const {
        const slot* s = find_slot(key);
        return s == nullptr ? nullptr : &s->value;
    }

    // Removes `key`; returns true when something was erased.
    bool erase(std::int64_t key) {
        assert(key > 0);
        if (slots_.empty()) return false;
        std::size_t i = probe_start(key);
        for (;;) {
            slot& s = slots_[i];
            if (s.key == key) {
                s.key = tomb_key;
                s.value = Value{};
                --live_;
                return true;
            }
            if (s.key == empty_key) return false;
            i = (i + 1) & mask_;
        }
    }

    // Applies fn(key, value) to every live entry, in unspecified order.
    template <class Fn>
    void for_each(Fn&& fn) const {
        for (const slot& s : slots_)
            if (s.key > 0) fn(s.key, s.value);
    }

private:
    static constexpr std::int64_t empty_key = 0;
    static constexpr std::int64_t tomb_key = -1;
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    struct slot {
        std::int64_t key = empty_key;
        Value value{};
    };

    [[nodiscard]] static std::uint64_t hash(std::int64_t key) {
        // splitmix64 finalizer: sequential ids must not cluster into runs.
        auto z = static_cast<std::uint64_t>(key);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    [[nodiscard]] std::size_t probe_start(std::int64_t key) const {
        return static_cast<std::size_t>(hash(key)) & mask_;
    }

    [[nodiscard]] std::size_t capacity_limit() const {
        return slots_.empty() ? 0 : (slots_.size() * 7) / 10;
    }

    [[nodiscard]] const slot* find_slot(std::int64_t key) const {
        assert(key > 0);
        if (slots_.empty()) return nullptr;
        std::size_t i = probe_start(key);
        for (;;) {
            const slot& s = slots_[i];
            if (s.key == key) return &s;
            if (s.key == empty_key) return nullptr;
            i = (i + 1) & mask_;
        }
    }

    void grow() {
        const std::size_t new_cap = slots_.empty() ? 16 : slots_.size() * 2;
        std::vector<slot> old = std::move(slots_);
        slots_.assign(new_cap, slot{});
        mask_ = new_cap - 1;
        used_ = 0;
        live_ = 0;
        for (slot& s : old) {
            if (s.key <= 0) continue;
            // Fresh table has no tombstones; plain linear insert.
            std::size_t i = probe_start(s.key);
            while (slots_[i].key != empty_key) i = (i + 1) & mask_;
            slots_[i].key = s.key;
            slots_[i].value = std::move(s.value);
            ++live_;
            ++used_;
        }
    }

    std::vector<slot> slots_;
    std::size_t mask_ = 0;
    std::size_t live_ = 0;  // live entries
    std::size_t used_ = 0;  // live + tombstoned slots (rehash trigger)
};

}  // namespace mm::core
