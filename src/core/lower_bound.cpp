#include "core/lower_bound.h"

#include <cmath>

namespace mm::core {

double message_bound_for(std::span<const std::int64_t> multiplicities, net::node_id n) {
    double sum_sqrt = 0;
    for (const std::int64_t k : multiplicities) sum_sqrt += std::sqrt(static_cast<double>(k));
    return n > 0 ? 2.0 * sum_sqrt / static_cast<double>(n) : 0.0;
}

bound_report check_bounds(const rendezvous_matrix& r) {
    bound_report report;
    const auto k = r.multiplicities();
    double sum_sqrt = 0;
    for (const std::int64_t ki : k) sum_sqrt += std::sqrt(static_cast<double>(ki));

    report.product_sum = r.product_sum();
    report.product_sum_bound = sum_sqrt * sum_sqrt;
    report.average_messages = r.average_message_passes();
    report.message_bound = message_bound_for(k, r.size());

    // Tolerate floating-point rounding at the boundary.
    constexpr double eps = 1e-9;
    report.proposition1_holds = report.product_sum + eps >= report.product_sum_bound;
    report.proposition2_holds = report.average_messages + eps >= report.message_bound;
    return report;
}

double truly_distributed_bound(net::node_id n) {
    return 2.0 * std::sqrt(static_cast<double>(n));
}

}  // namespace mm::core
