// codec.h - bounds-checked little-endian byte (de)serialization primitives.
//
// The transport layer's wire format (transport/wire.h) and any future
// persistent trace format build on these two classes instead of casting
// struct memory: explicit byte composition is endian-portable, alignment-
// safe, and - crucially for frames arriving off a real socket - impossible
// to read out of bounds.  A byte_reader never throws on malformed input; it
// latches a failure flag and returns zeros, so decoders can run a whole
// fixed layout and check ok() once at the end.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace mm::core {

// FNV-1a over a byte stream; the checksum the trace format (sim/trace.h)
// uses to reject bit-flipped files.  Incremental so writers can hash while
// composing and readers while consuming, without a second pass.
class fnv1a_hasher {
public:
    void update(const std::uint8_t* data, std::size_t size) noexcept {
        for (std::size_t i = 0; i < size; ++i) {
            state_ ^= data[i];
            state_ *= 0x100000001b3ULL;
        }
    }
    void update_u64(std::uint64_t v) noexcept {
        std::uint8_t bytes[8];
        for (int i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
        update(bytes, sizeof bytes);
    }
    [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

private:
    std::uint64_t state_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

// Appends fixed-width little-endian values to a growable byte buffer.
class byte_writer {
public:
    byte_writer() = default;
    // Appends into an existing buffer (e.g. a connection's output queue).
    explicit byte_writer(std::vector<std::uint8_t>& out) : out_{&out} {}

    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    // IEEE-754 bit pattern through u64: exact round-trip, including the
    // workload weight doubles a replay config must reproduce verbatim.
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return *out_; }
    [[nodiscard]] std::size_t size() const noexcept { return out_->size(); }

private:
    std::vector<std::uint8_t> own_;
    std::vector<std::uint8_t>* out_ = &own_;
};

// Consumes fixed-width little-endian values from a byte span.  A read past
// the end clears ok() and yields 0; subsequent reads keep yielding 0, so a
// decoder can parse a full layout unconditionally and test ok() once.
class byte_reader {
public:
    byte_reader(const std::uint8_t* data, std::size_t size) : data_{data}, size_{size} {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64() { return std::bit_cast<double>(u64()); }

    [[nodiscard]] bool ok() const noexcept { return ok_; }
    [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
    // True when the reader consumed the span exactly and never ran short.
    [[nodiscard]] bool exhausted() const noexcept { return ok_ && pos_ == size_; }

private:
    [[nodiscard]] bool take(std::size_t n) noexcept;

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

}  // namespace mm::core
