// strategy.h - the P/Q framework of Shotgun Locate (Section 2.1).
//
// "For each network G = (U,E) and associated match-making algorithm, there
// are total functions P, Q: U -> 2^U.  Any server residing at node i starts
// its stay there by posting its (port, address) pair at each node in P(i).
// Any client residing at node j queries each node in Q(j) for each service
// (port) it requires."
//
// The base interface is port-aware (P, Q: U x Pi -> 2^U, Section 5's
// generalization); pure Shotgun strategies ignore the port.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "core/ids.h"
#include "net/graph.h"

namespace mm::core {

// A set of nodes, kept sorted and duplicate-free (see normalize_set).
using node_set = std::vector<net::node_id>;

// Sorts and deduplicates in place.
void normalize_set(node_set& nodes);

// Sorted intersection of two normalized sets.
[[nodiscard]] node_set intersect_sets(const node_set& a, const node_set& b);

// True if the normalized sets share at least one element.
[[nodiscard]] bool sets_intersect(const node_set& a, const node_set& b);

// The generalized locate strategy: P and Q may depend on the port
// (Section 5, "Hash Locate and beyond").
class locate_strategy {
public:
    virtual ~locate_strategy() = default;

    // Human-readable strategy name for reports.
    [[nodiscard]] virtual std::string name() const = 0;

    // Number of nodes n = #U in the universe the strategy is defined on.
    [[nodiscard]] virtual net::node_id node_count() const = 0;

    // P(i, port): where a server at node i posts.  Normalized.
    [[nodiscard]] virtual node_set post_set(net::node_id server, port_id port) const = 0;

    // Q(j, port): where a client at node j queries.  Normalized.
    [[nodiscard]] virtual node_set query_set(net::node_id client, port_id port) const = 0;

    // --- capabilities ------------------------------------------------------
    // Optional behaviors a runtime can discover without downcasting to a
    // concrete strategy type.
    //
    // Staging (Section 3.5): a staged locate escalates level by level,
    // querying staged_query_set(client, 1), then level 2, ... up to
    // staged_levels().  The default is a single stage equal to the plain
    // query set, so every strategy supports staged locates trivially.
    [[nodiscard]] virtual int staged_levels() const { return 1; }
    [[nodiscard]] virtual node_set staged_query_set(net::node_id client, int level,
                                                    port_id port) const {
        return level == 1 ? query_set(client, port) : node_set{};
    }

    // Rehashing (Section 5): backup strategies to try, in order, after the
    // primary rendezvous fails.  The pointed-to strategies live as long as
    // this strategy.  Empty by default (no fallback capability).
    [[nodiscard]] virtual std::vector<const locate_strategy*> fallback_chain() const {
        return {};
    }
};

// A Shotgun strategy: P and Q depend on the node only.  Derived classes
// implement the port-free overloads.
class shotgun_strategy : public locate_strategy {
public:
    [[nodiscard]] virtual node_set post_set(net::node_id server) const = 0;
    [[nodiscard]] virtual node_set query_set(net::node_id client) const = 0;

    [[nodiscard]] node_set post_set(net::node_id server, port_id /*port*/) const final {
        return post_set(server);
    }
    [[nodiscard]] node_set query_set(net::node_id client, port_id /*port*/) const final {
        return query_set(client);
    }
};

// All nodes 0..n-1, the universe U.
[[nodiscard]] node_set all_nodes(net::node_id n);

}  // namespace mm::core
