// strategy_factory.h - name -> core::locate_strategy construction shared
// by the mmd binary, the loopback smoke example, and the daemon bench, so
// "--strategy hash" means the same P/Q sets on every side of the wire.
//
// The daemon and its clients never exchange rendezvous sets: both derive
// them from (strategy name, n, replicas), the match-making analogue of
// agreeing on a hash function instead of shipping a membership list.
#pragma once

#include <memory>
#include <string>

#include "core/strategy.h"

namespace mm::daemon {

// "hash" (the paper's distributed match-maker; `replicas` rendezvous nodes
// per port), "broadcast", "sweep", or "central" (node 0 is the center).
// Throws std::invalid_argument for an unknown name.
[[nodiscard]] std::unique_ptr<core::locate_strategy> make_strategy(const std::string& name,
                                                                   net::node_id n,
                                                                   int replicas = 3);

}  // namespace mm::daemon
