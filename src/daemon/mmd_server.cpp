#include "daemon/mmd_server.h"

#include <stdexcept>

#include "runtime/rendezvous_core.h"
#include "transport/wire.h"

namespace mm::daemon {

namespace wire = transport::wire;

mmd_server::mmd_server(transport::transport& net, const core::locate_strategy& strategy,
                       net::node_id first_node, net::node_id node_count)
    : net_{net}, strategy_{strategy}, first_{first_node} {
    count_ = node_count < 0 ? strategy.node_count() - first_node : node_count;
    if (first_ < 0 || count_ <= 0 || first_ + count_ > strategy.node_count())
        throw std::invalid_argument{"mmd_server: hosted range outside the strategy universe"};
    directories_.resize(static_cast<std::size_t>(count_));
}

void mmd_server::handle(const transport::completion& c) {
    switch (c.what) {
        case transport::completion::kind::message:
            on_frame(c);
            break;
        case transport::completion::kind::timer:
            // The daemon arms no timers today; TTL expiry happens lazily at
            // lookup time (core::port_cache::lookup respects expires_at).
            break;
        case transport::completion::kind::peer_down:
            // Rendezvous state is soft: a vanished client costs nothing, and
            // its entries age out by TTL exactly as in the simulator.
            break;
    }
}

void mmd_server::on_frame(const transport::completion& c) {
    const wire::frame& f = c.msg;
    if (!hosts(f.destination)) {
        ++stats_.bad_frames;
        return;
    }
    switch (f.kind) {
        case wire::v_post: {
            ++stats_.posts;
            runtime::rendezvous::apply_post(dir(f.destination), f.port, f.subject_address,
                                            f.stamp, f.ttl, net_.now());
            wire::frame ack;
            ack.kind = wire::v_ack;
            ack.port = f.port;
            ack.source = f.destination;
            ack.destination = f.source;
            ack.subject_address = f.subject_address;
            ack.stamp = f.stamp;
            ack.tag = f.tag;
            net_.reply(c.from, ack);
            break;
        }
        case wire::v_remove: {
            ++stats_.removes;
            runtime::rendezvous::apply_remove(dir(f.destination), f.port, f.subject_address);
            wire::frame ack;
            ack.kind = wire::v_ack;
            ack.port = f.port;
            ack.source = f.destination;
            ack.destination = f.source;
            ack.subject_address = f.subject_address;
            ack.stamp = f.stamp;
            ack.tag = f.tag;
            net_.reply(c.from, ack);
            break;
        }
        case wire::v_query: {
            ++stats_.queries;
            const auto hit =
                runtime::rendezvous::answer_query(dir(f.destination), f.port, net_.now());
            wire::frame answer;
            answer.port = f.port;
            answer.source = f.destination;
            answer.destination = f.source;
            answer.tag = f.tag;
            if (hit) {
                ++stats_.hits;
                answer.kind = wire::v_reply;
                answer.subject_address = hit->where;
                answer.stamp = hit->stamp;
            } else {
                ++stats_.misses;
                answer.kind = wire::v_miss;
            }
            net_.reply(c.from, answer);
            break;
        }
        default:
            // v_reply / v_ack / v_miss are client-bound verbs; a daemon
            // receiving one is talking to a confused peer.
            ++stats_.bad_frames;
            break;
    }
}

std::size_t mmd_server::pump(std::int64_t max_wait) {
    std::vector<transport::completion> batch;
    net_.poll(batch, max_wait);
    for (const auto& c : batch) handle(c);
    return batch.size();
}

void mmd_server::serve(const std::atomic<bool>& stop, std::int64_t tick_ms) {
    while (!stop.load(std::memory_order_relaxed)) pump(tick_ms);
}

}  // namespace mm::daemon
