#include "daemon/strategy_factory.h"

#include <stdexcept>

#include "strategies/basic.h"
#include "strategies/hash_locate.h"

namespace mm::daemon {

std::unique_ptr<core::locate_strategy> make_strategy(const std::string& name, net::node_id n,
                                                     int replicas) {
    if (name == "hash") return std::make_unique<strategies::hash_locate_strategy>(n, replicas);
    if (name == "broadcast") return std::make_unique<strategies::broadcast_strategy>(n);
    if (name == "sweep") return std::make_unique<strategies::sweep_strategy>(n);
    if (name == "central") return std::make_unique<strategies::central_strategy>(n, 0);
    throw std::invalid_argument{"unknown strategy '" + name +
                                "' (expected hash | broadcast | sweep | central)"};
}

}  // namespace mm::daemon
