// mm_client.h - the client side of the match-making daemon: the same
// op-handle API as runtime::name_service (begin_* returning an op id,
// poll, run_until_complete, forget, plus the blocking wrappers), but
// executed over a transport::transport against mmd instead of inside the
// simulator.
//
// Semantics are held to the simulator's, visible-result for visible-result
// (tests/test_daemon_loopback.cpp runs identical scripts through both):
//  * register/deregister complete found = true, where = the host, once
//    every rendezvous node acked; nodes_queried = |P(host)|.
//  * migrate posts P(to) under a fresh stamp, and only after *all* those
//    acks withdraws P(from); completes found = true, where = to,
//    nodes_queried = |P(to)| - the same two-leg ordering (and the same
//    accounting) as name_service::begin_migrate.
//  * locate completes at the first v_reply (found = true, where = the
//    replied address) or once every queried node answered v_miss
//    (found = false); nodes_queried = |Q(client)|.  With client_caching
//    on, a fresh local hint answers instantly with nodes_queried = 0, and
//    every successful locate deposits a hint - the paper's cache-as-hint
//    discipline, stale answers included.
//  * Where the simulator computes exact settle deadlines, the client arms
//    a coarse op_timeout timer: an operation that cannot finish (daemon
//    gone, frames lost) fails with found = false instead of hanging.
//
// Stamps are a logical counter, not wall-clock: determinism for the oracle
// comparison, and exactly enough order for newest-post-wins.
//
// Single-threaded like the transport it drives; one mm_client per thread.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>

#include "core/cache.h"
#include "core/strategy.h"
#include "runtime/name_service.h"
#include "transport/transport.h"

namespace mm::daemon {

struct client_options {
    bool client_caching = false;
    // TTL carried on every post and on deposited hints (-1 = never).
    std::int64_t entry_ttl = -1;
    // Clock units (transport ticks / ms) before an operation that has
    // not completed fails with found = false.
    std::int64_t op_timeout = 5000;
};

class mm_client {
public:
    mm_client(transport::transport& net, const core::locate_strategy& strategy,
              client_options opts = {});

    // --- op-handle API (mirrors runtime::name_service) ----------------------
    runtime::op_id begin_register(core::port_id port, net::node_id at);
    runtime::op_id begin_deregister(core::port_id port, net::node_id at);
    runtime::op_id begin_migrate(core::port_id port, net::node_id from, net::node_id to);
    runtime::op_id begin_locate(core::port_id port, net::node_id client);
    runtime::op_id begin_locate_fresh(core::port_id port, net::node_id client);

    [[nodiscard]] std::optional<runtime::locate_result> poll(runtime::op_id op) const;
    void run_until_complete(std::span<const runtime::op_id> ops);
    void run_until_complete(std::initializer_list<runtime::op_id> ops) {
        run_until_complete(std::span<const runtime::op_id>{ops.begin(), ops.size()});
    }
    void forget(runtime::op_id op);

    // --- blocking wrappers --------------------------------------------------
    void register_server(core::port_id port, net::node_id at);
    void deregister_server(core::port_id port, net::node_id at);
    void migrate_server(core::port_id port, net::node_id from, net::node_id to);
    [[nodiscard]] runtime::locate_result locate(core::port_id port, net::node_id client);
    [[nodiscard]] runtime::locate_result locate_fresh(core::port_id port, net::node_id client);

    // One poll-and-dispatch round (exposed so callers can interleave client
    // progress with their own work); returns completions handled.
    std::size_t pump(std::int64_t max_wait);

    [[nodiscard]] std::size_t pending_ops() const noexcept { return incomplete_; }

private:
    enum class op_kind { post, remove, migrate, locate };

    struct operation {
        op_kind kind = op_kind::locate;
        core::port_id port = 0;
        net::node_id actor = net::invalid_node;
        net::node_id migrate_from = net::invalid_node;
        int stage = 1;          // migrate: 1 = posting P(to), 2 = removing P(from)
        int pending = 0;        // outstanding acks / answers this stage
        int timer_gen = 0;      // invalidates stale op-timeout timers
        bool complete = false;
        runtime::locate_result result;
    };

    runtime::op_id new_op(op_kind kind, core::port_id port, net::node_id actor);
    // Fans one verb out to `targets` (subject riding along); returns how
    // many sends the transport accepted.
    int fan_out(std::uint8_t verb, core::port_id port, net::node_id from,
                const core::node_set& targets, net::node_id subject, std::int64_t stamp,
                std::int64_t ttl, runtime::op_id tag);
    void arm_op_timeout(runtime::op_id id, operation& op);
    void complete_op(operation& op, bool found, core::address where);
    void handle(const transport::completion& c);
    void on_ack(const transport::wire::frame& f);
    void on_reply(const transport::wire::frame& f);
    void on_miss(const transport::wire::frame& f);
    void on_timeout(std::int64_t timer_id);
    [[nodiscard]] core::port_cache& hints(net::node_id client) { return hints_[client]; }

    transport::transport& net_;
    const core::locate_strategy& strategy_;
    client_options opts_;
    std::unordered_map<runtime::op_id, operation> ops_;
    std::unordered_map<net::node_id, core::port_cache> hints_;  // per-client hint caches
    runtime::op_id next_op_ = 1;
    std::int64_t next_stamp_ = 1;
    std::size_t incomplete_ = 0;
};

}  // namespace mm::daemon
