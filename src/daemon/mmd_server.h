// mmd_server.h - the match-making daemon's serving core: a set of hosted
// rendezvous nodes (one core::port_cache each) driven by completions from
// any transport::transport.
//
// The daemon is deliberately thin.  All rendezvous semantics live in
// runtime::rendezvous_core - the same code path runtime::service_node runs
// inside the simulator - so the daemon cannot drift from the oracle: it
// only parses frames, indexes the hosted directory, and writes replies.
// Where the simulator resolves posts and removes by settle-deadline
// silence, a real wire needs explicit outcomes, so the daemon answers
// every post/remove with v_ack and every missed query with v_miss; the
// client library maps those back onto the exact op-handle semantics of
// runtime::name_service (tests/test_daemon_loopback.cpp holds the two
// substrates to identical visible results).
//
// mmd_server is transport-agnostic and single-threaded: construct it over
// a tcp_transport for the real daemon (tools/mmd.cpp) or over any other
// transport implementation in tests; drive it with pump()/serve() from the
// owning thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/cache.h"
#include "core/strategy.h"
#include "transport/transport.h"

namespace mm::daemon {

class mmd_server {
public:
    struct stats {
        std::int64_t posts = 0;
        std::int64_t removes = 0;
        std::int64_t queries = 0;
        std::int64_t hits = 0;    // queries answered with v_reply
        std::int64_t misses = 0;  // queries answered with v_miss
        std::int64_t bad_frames = 0;  // unknown verb / destination not hosted
    };

    // Serves rendezvous nodes [first_node, first_node + node_count) of the
    // strategy's universe; node_count < 0 hosts the whole universe.
    mmd_server(transport::transport& net, const core::locate_strategy& strategy,
               net::node_id first_node = 0, net::node_id node_count = -1);

    // Handles one transport completion (a frame, a timer tick, or a peer
    // loss).  Exposed so tests can drive the daemon completion-by-completion.
    void handle(const transport::completion& c);

    // One poll-and-dispatch round: waits up to max_wait clock units and
    // handles everything that arrived.  Returns how many completions ran.
    std::size_t pump(std::int64_t max_wait);

    // Serves until *stop becomes true, pumping in tick_ms slices.  The flag
    // is how tools/mmd.cpp wires SIGTERM into a clean shutdown.
    void serve(const std::atomic<bool>& stop, std::int64_t tick_ms = 50);

    [[nodiscard]] bool hosts(net::node_id node) const noexcept {
        return node >= first_ && node < first_ + count_;
    }
    [[nodiscard]] const core::port_cache& directory(net::node_id node) const {
        return directories_.at(static_cast<std::size_t>(node - first_));
    }
    [[nodiscard]] const stats& stat() const noexcept { return stats_; }

private:
    [[nodiscard]] core::port_cache& dir(net::node_id node) {
        return directories_[static_cast<std::size_t>(node - first_)];
    }
    void on_frame(const transport::completion& c);

    transport::transport& net_;
    const core::locate_strategy& strategy_;
    net::node_id first_ = 0;
    net::node_id count_ = 0;
    std::vector<core::port_cache> directories_;
    stats stats_;
};

}  // namespace mm::daemon
