#include "daemon/mm_client.h"

#include <stdexcept>

namespace mm::daemon {

namespace wire = transport::wire;

namespace {
// Op-timeout timers encode (op id, generation): a stale generation firing
// after its stage already advanced must not fail the operation.
constexpr int timer_gen_bits = 8;
constexpr std::int64_t timer_gen_mask = (1 << timer_gen_bits) - 1;
}  // namespace

mm_client::mm_client(transport::transport& net, const core::locate_strategy& strategy,
                     client_options opts)
    : net_{net}, strategy_{strategy}, opts_{opts} {}

runtime::op_id mm_client::new_op(op_kind kind, core::port_id port, net::node_id actor) {
    const runtime::op_id id = next_op_++;
    operation op;
    op.kind = kind;
    op.port = port;
    op.actor = actor;
    op.result.issued_at = net_.now();
    ops_.emplace(id, op);
    ++incomplete_;
    return id;
}

int mm_client::fan_out(std::uint8_t verb, core::port_id port, net::node_id from,
                       const core::node_set& targets, net::node_id subject, std::int64_t stamp,
                       std::int64_t ttl, runtime::op_id tag) {
    int sent = 0;
    for (const auto target : targets) {
        wire::frame f;
        f.kind = verb;
        f.port = port;
        f.source = from;
        f.destination = target;
        f.subject_address = subject;
        f.stamp = stamp;
        f.tag = tag;
        f.ttl = ttl;
        if (net_.send(f)) ++sent;
    }
    return sent;
}

void mm_client::arm_op_timeout(runtime::op_id id, operation& op) {
    ++op.timer_gen;
    net_.arm_timer(opts_.op_timeout, (id << timer_gen_bits) | (op.timer_gen & timer_gen_mask));
}

void mm_client::complete_op(operation& op, bool found, core::address where) {
    op.complete = true;
    op.result.found = found;
    op.result.completed_at = net_.now();
    if (found) {
        op.result.where = where;
        op.result.latency = op.result.completed_at - op.result.issued_at;
    }
    --incomplete_;
}

runtime::op_id mm_client::begin_register(core::port_id port, net::node_id at) {
    const auto id = new_op(op_kind::post, port, at);
    auto& op = ops_.at(id);
    const auto targets = strategy_.post_set(at, port);
    op.result.nodes_queried = static_cast<int>(targets.size());
    op.pending = fan_out(wire::v_post, port, at, targets, at, next_stamp_++, opts_.entry_ttl, id);
    op.result.message_passes += op.pending;
    // Unreachable rendezvous nodes mirror the simulator's best-effort posts:
    // the operation still settles found = true at its host.
    if (op.pending == 0)
        complete_op(op, true, at);
    else
        arm_op_timeout(id, op);
    return id;
}

runtime::op_id mm_client::begin_deregister(core::port_id port, net::node_id at) {
    const auto id = new_op(op_kind::remove, port, at);
    auto& op = ops_.at(id);
    const auto targets = strategy_.post_set(at, port);
    op.result.nodes_queried = static_cast<int>(targets.size());
    op.pending = fan_out(wire::v_remove, port, at, targets, at, next_stamp_++, -1, id);
    op.result.message_passes += op.pending;
    if (op.pending == 0)
        complete_op(op, true, at);
    else
        arm_op_timeout(id, op);
    return id;
}

runtime::op_id mm_client::begin_migrate(core::port_id port, net::node_id from, net::node_id to) {
    const auto id = new_op(op_kind::migrate, port, to);
    auto& op = ops_.at(id);
    op.migrate_from = from;
    const auto targets = strategy_.post_set(to, port);
    op.result.nodes_queried = static_cast<int>(targets.size());
    // Leg 1: post the new address under a fresh stamp (stale caches lose).
    op.pending = fan_out(wire::v_post, port, to, targets, to, next_stamp_++, opts_.entry_ttl, id);
    op.result.message_passes += op.pending;
    if (op.pending == 0) {
        op.stage = 2;
        const auto old = strategy_.post_set(from, port);
        op.pending = fan_out(wire::v_remove, port, from, old, from, next_stamp_++, -1, id);
        op.result.message_passes += op.pending;
        if (op.pending == 0) {
            complete_op(op, true, to);
            return id;
        }
    }
    arm_op_timeout(id, op);
    return id;
}

runtime::op_id mm_client::begin_locate(core::port_id port, net::node_id client) {
    if (opts_.client_caching) {
        if (const auto hint = hints(client).lookup(port, net_.now())) {
            // Answered from the local cache: zero messages, zero latency.
            const auto id = new_op(op_kind::locate, port, client);
            auto& op = ops_.at(id);
            op.result.nodes_queried = 0;
            complete_op(op, true, hint->where);
            return id;
        }
    }
    return begin_locate_fresh(port, client);
}

runtime::op_id mm_client::begin_locate_fresh(core::port_id port, net::node_id client) {
    const auto id = new_op(op_kind::locate, port, client);
    auto& op = ops_.at(id);
    const auto targets = strategy_.query_set(client, port);
    op.result.nodes_queried = static_cast<int>(targets.size());
    op.pending = fan_out(wire::v_query, port, client, targets, client, net_.now(), -1, id);
    op.result.message_passes += op.pending;
    if (op.pending == 0)
        complete_op(op, false, net::invalid_node);
    else
        arm_op_timeout(id, op);
    return id;
}

void mm_client::handle(const transport::completion& c) {
    switch (c.what) {
        case transport::completion::kind::message:
            switch (c.msg.kind) {
                case wire::v_ack:
                    on_ack(c.msg);
                    break;
                case wire::v_reply:
                    on_reply(c.msg);
                    break;
                case wire::v_miss:
                    on_miss(c.msg);
                    break;
                default:
                    break;  // daemon-bound verbs; not ours to answer
            }
            break;
        case transport::completion::kind::timer:
            on_timeout(c.timer_id);
            break;
        case transport::completion::kind::peer_down:
            // The op-timeout timer resolves any operation stranded by a dead
            // peer - same recovery discipline as the simulator's deadlines.
            break;
    }
}

void mm_client::on_ack(const wire::frame& f) {
    const auto it = ops_.find(f.tag);
    if (it == ops_.end() || it->second.complete) return;
    auto& op = it->second;
    if (op.kind == op_kind::locate) return;  // acks never answer a locate
    ++op.result.message_passes;
    if (--op.pending > 0) return;
    if (op.kind == op_kind::migrate && op.stage == 1) {
        // New posts acked everywhere: now withdraw the old host's bindings.
        op.stage = 2;
        const auto old = strategy_.post_set(op.migrate_from, op.port);
        op.pending = fan_out(wire::v_remove, op.port, op.migrate_from, old, op.migrate_from,
                             next_stamp_++, -1, f.tag);
        op.result.message_passes += op.pending;
        if (op.pending == 0)
            complete_op(op, true, op.actor);
        else
            arm_op_timeout(f.tag, op);
        return;
    }
    complete_op(op, true, op.actor);
}

void mm_client::on_reply(const wire::frame& f) {
    const auto it = ops_.find(f.tag);
    if (it == ops_.end() || it->second.complete) return;
    auto& op = it->second;
    if (op.kind != op_kind::locate) return;
    ++op.result.message_passes;
    // First reply wins, exactly like the simulator's handle_reply; later
    // answers land on a completed op and are dropped above.
    complete_op(op, true, f.subject_address);
    if (opts_.client_caching) {
        core::port_entry hint;
        hint.port = op.port;
        hint.where = f.subject_address;
        hint.stamp = net_.now();
        hint.expires_at = opts_.entry_ttl >= 0 ? net_.now() + opts_.entry_ttl : -1;
        hints(op.actor).post(hint);
    }
}

void mm_client::on_miss(const wire::frame& f) {
    const auto it = ops_.find(f.tag);
    if (it == ops_.end() || it->second.complete) return;
    auto& op = it->second;
    if (op.kind != op_kind::locate) return;
    ++op.result.message_passes;
    if (--op.pending == 0) complete_op(op, false, net::invalid_node);
}

void mm_client::on_timeout(std::int64_t timer_id) {
    const auto id = timer_id >> timer_gen_bits;
    const auto gen = timer_id & timer_gen_mask;
    const auto it = ops_.find(id);
    if (it == ops_.end() || it->second.complete) return;
    if ((it->second.timer_gen & timer_gen_mask) != gen) return;  // stale stage timer
    complete_op(it->second, false, net::invalid_node);
}

std::size_t mm_client::pump(std::int64_t max_wait) {
    std::vector<transport::completion> batch;
    net_.poll(batch, max_wait);
    for (const auto& c : batch) handle(c);
    return batch.size();
}

std::optional<runtime::locate_result> mm_client::poll(runtime::op_id op) const {
    const auto it = ops_.find(op);
    if (it == ops_.end()) throw std::out_of_range{"mm_client::poll: unknown op"};
    if (!it->second.complete) return std::nullopt;
    return it->second.result;
}

void mm_client::run_until_complete(std::span<const runtime::op_id> ops) {
    const auto all_done = [&] {
        for (const auto id : ops)
            if (!ops_.at(id).complete) return false;
        return true;
    };
    while (!all_done()) pump(20);
}

void mm_client::forget(runtime::op_id op) {
    const auto it = ops_.find(op);
    if (it == ops_.end()) throw std::out_of_range{"mm_client::forget: unknown op"};
    if (!it->second.complete)
        throw std::logic_error{"mm_client::forget: operation still in flight"};
    ops_.erase(it);
}

void mm_client::register_server(core::port_id port, net::node_id at) {
    const auto id = begin_register(port, at);
    run_until_complete({id});
    forget(id);
}

void mm_client::deregister_server(core::port_id port, net::node_id at) {
    const auto id = begin_deregister(port, at);
    run_until_complete({id});
    forget(id);
}

void mm_client::migrate_server(core::port_id port, net::node_id from, net::node_id to) {
    const auto id = begin_migrate(port, from, to);
    run_until_complete({id});
    forget(id);
}

runtime::locate_result mm_client::locate(core::port_id port, net::node_id client) {
    const auto id = begin_locate(port, client);
    run_until_complete({id});
    auto result = *poll(id);
    forget(id);
    return result;
}

runtime::locate_result mm_client::locate_fresh(core::port_id port, net::node_id client) {
    const auto id = begin_locate_fresh(port, client);
    run_until_complete({id});
    auto result = *poll(id);
    forget(id);
    return result;
}

}  // namespace mm::daemon
