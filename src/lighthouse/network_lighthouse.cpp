#include "lighthouse/network_lighthouse.h"

#include <stdexcept>

#include "lighthouse/network_beam.h"
#include "lighthouse/ruler.h"
#include "sim/rng.h"

namespace mm::lighthouse {

network_lighthouse_result run_network_lighthouse(const net::graph& g,
                                                 const net::routing_table& routes,
                                                 const network_lighthouse_params& params) {
    if (!g.valid_node(params.client))
        throw std::invalid_argument{"network_lighthouse: bad client"};
    for (const net::node_id s : params.servers)
        if (!g.valid_node(s)) throw std::invalid_argument{"network_lighthouse: bad server"};

    sim::rng random{params.seed};
    const core::port_id port = core::port_of("network-lighthouse");
    std::vector<core::bounded_port_cache> caches;
    caches.reserve(static_cast<std::size_t>(g.node_count()));
    for (net::node_id v = 0; v < g.node_count(); ++v)
        caches.emplace_back(params.cache_capacity);
    network_lighthouse_result result;

    const auto deposit = [&](net::node_id at, net::node_id who, std::int64_t now) {
        core::port_entry entry;
        // One distinct port per server so small caches feel real pressure.
        entry.port = port ^ static_cast<core::port_id>(who);
        entry.where = who;
        entry.stamp = now;
        entry.expires_at = now + params.trail_lifetime;
        caches[static_cast<std::size_t>(at)].post(entry);
    };
    const auto probe = [&](net::node_id at, std::int64_t now) -> net::node_id {
        auto& cache = caches[static_cast<std::size_t>(at)];
        for (const net::node_id s : params.servers) {
            const auto hit = cache.lookup(port ^ static_cast<core::port_id>(s), now);
            if (hit) return hit->where;
        }
        return net::invalid_node;
    };

    // Client schedule state.
    std::int64_t next_trial = params.client_period;
    std::int64_t period = params.client_period;
    int beam_length = params.client_base_length;
    int failures = 0;
    ruler_schedule ruler;

    for (std::int64_t now = 0; now <= params.max_time; ++now) {
        for (std::size_t i = 0; i < params.servers.size(); ++i) {
            if ((now + static_cast<std::int64_t>(i)) % params.server_period != 0) continue;
            const net::node_id s = params.servers[i];
            const auto trail = network_beam(g, routes, s, params.server_beam_length, random);
            result.server_messages += static_cast<std::int64_t>(trail.size());
            deposit(s, s, now);
            for (const net::node_id v : trail) deposit(v, s, now);
        }

        if (now != next_trial) continue;
        ++result.client_trials;
        int length = beam_length;
        if (params.schedule == client_schedule::ruler)
            length = ruler.next() * params.client_base_length;

        const auto path = network_beam(g, routes, params.client, length, random);
        result.client_messages += static_cast<std::int64_t>(path.size());
        net::node_id hit = probe(params.client, now);
        for (const net::node_id v : path) {
            if (hit != net::invalid_node) break;
            hit = probe(v, now);
        }
        if (hit != net::invalid_node) {
            result.located = true;
            result.found_address = hit;
            result.time_to_locate = now;
            break;
        }
        if (params.schedule == client_schedule::doubling &&
            ++failures >= params.escalate_after) {
            failures = 0;
            beam_length *= 2;
            period *= 2;
        }
        next_trial = now + period;
    }
    if (!result.located) result.time_to_locate = params.max_time;
    for (const auto& cache : caches) result.cache_evictions += cache.evictions();
    return result;
}

}  // namespace mm::lighthouse
