#include "lighthouse/network_beam.h"

namespace mm::lighthouse {

std::vector<net::node_id> network_beam(const net::graph& g, const net::routing_table& routes,
                                       net::node_id origin, int length, sim::rng& random) {
    std::vector<net::node_id> visited;
    if (length <= 0) return visited;
    const auto first_neighbors = g.neighbors(origin);
    if (first_neighbors.empty()) return visited;

    // Hop 1: a random outgoing arc.
    net::node_id current =
        first_neighbors[static_cast<std::size_t>(random.uniform(0, static_cast<std::int64_t>(first_neighbors.size()) - 1))];
    visited.push_back(current);

    for (int hop = 2; hop <= length; ++hop) {
        // Choose any arc (current, w) that w would use to route to the
        // origin: next_hop(w -> origin) == current.
        std::vector<net::node_id> candidates;
        for (net::node_id w : g.neighbors(current)) {
            if (w == origin) continue;
            if (routes.next_hop(w, origin) == current) candidates.push_back(w);
        }
        if (candidates.empty()) break;  // the "line" ran off the network
        current = candidates[static_cast<std::size_t>(
            random.uniform(0, static_cast<std::int64_t>(candidates.size()) - 1))];
        visited.push_back(current);
    }
    return visited;
}

beam_trace trace_network_beam(const net::graph& g, const net::routing_table& routes,
                              net::node_id origin, int length, sim::rng& random) {
    beam_trace trace;
    trace.nodes = network_beam(g, routes, origin, length, random);
    int previous = 0;
    for (net::node_id v : trace.nodes) {
        const int d = routes.distance(origin, v);
        if (d <= previous) trace.monotone_away = false;
        previous = d;
    }
    return trace;
}

}  // namespace mm::lighthouse
