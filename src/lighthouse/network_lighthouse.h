// network_lighthouse.h - Lighthouse Locate on a point-to-point network.
//
// The end of Section 4: "Before the locate method for the euclidean plane
// can be converted into a practical algorithm for locating services it is
// necessary to find ways of mapping point-to-point networks onto the
// euclidean plane...  We can use these [routing] tables back-to-front to
// simulate sending messages along 'a straight line' of certain length."
//
// Servers cast reverse-routing beams depositing (port, address) trails in
// per-node bounded LRU caches ("too-small caches can discard (port,
// address) pairs"); a client casts probe beams under the doubling or ruler
// schedule and succeeds the moment a probe touches a node holding a live
// trail.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cache.h"
#include "lighthouse/lighthouse_sim.h"  // client_schedule
#include "net/graph.h"
#include "net/routing.h"

namespace mm::lighthouse {

struct network_lighthouse_params {
    std::vector<net::node_id> servers;  // server hosts
    net::node_id client = 0;
    int server_beam_length = 8;
    std::int64_t server_period = 8;
    std::int64_t trail_lifetime = 32;
    int client_base_length = 1;
    std::int64_t client_period = 8;
    int escalate_after = 2;
    client_schedule schedule = client_schedule::doubling;
    std::size_t cache_capacity = 16;  // per-node LRU capacity
    std::int64_t max_time = 1 << 16;
    std::uint64_t seed = 1;
};

struct network_lighthouse_result {
    bool located = false;
    net::node_id found_address = net::invalid_node;
    std::int64_t time_to_locate = 0;
    std::int64_t client_trials = 0;
    std::int64_t client_messages = 0;  // probe beam hops
    std::int64_t server_messages = 0;  // trail beam hops
    std::int64_t cache_evictions = 0;  // trails lost to small caches
};

// Runs one client locate against beaming servers on the given graph.  The
// routing table must belong to g; both must outlive the call.
[[nodiscard]] network_lighthouse_result run_network_lighthouse(
    const net::graph& g, const net::routing_table& routes,
    const network_lighthouse_params& params);

}  // namespace mm::lighthouse
