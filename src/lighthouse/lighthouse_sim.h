// lighthouse_sim.h - the full Lighthouse Locate simulation (Section 4).
//
// Servers: "Each server sends out a random direction beam of length l every
// delta time units.  Each trail left by such a beam disappears after d time
// units."  Clients: "To locate a server, the client beams a request in a
// random direction at regular intervals.  Originally, the length of the
// beam is 1 [unit] and the intervals are delta.  After e unsuccessful
// trials, the client increases its effort by doubling the length of the
// inquiry beam and the intervals between them", or follows the ruler
// schedule (beam length i*l on trial t with ruler value i), which locates
// servers that drift near the client with less time-loss.
#pragma once

#include <cstdint>
#include <vector>

#include "lighthouse/plane.h"
#include "lighthouse/ruler.h"
#include "sim/rng.h"

namespace mm::lighthouse {

enum class client_schedule {
    doubling,  // l <- 2l and delta <- 2*delta after e failures
    ruler      // length = ruler(t) * l, fixed interval
};

struct lighthouse_params {
    int width = 256;
    int height = 256;
    double server_density = 0.001;  // expected servers per cell ("s")
    int server_beam_length = 16;    // l for servers
    std::int64_t server_period = 8;     // delta for servers
    std::int64_t trail_lifetime = 32;   // d
    int client_base_length = 1;         // initial/base beam length
    std::int64_t client_period = 8;     // initial delta for the client
    int escalate_after = 2;             // e: failures before doubling
    client_schedule schedule = client_schedule::doubling;
    // Per-tick probability that a server steps to an adjacent cell.  The
    // paper's mobile-server scenario: "the servers which drift nearer to
    // the client are located with less time-loss" under the ruler schedule.
    double server_drift = 0.0;
    std::int64_t max_time = 1 << 20;    // give up after this many ticks
    std::uint64_t seed = 1;
};

struct lighthouse_result {
    bool located = false;
    std::int64_t time_to_locate = 0;    // ticks until the successful trial
    std::int64_t client_trials = 0;
    std::int64_t client_messages = 0;   // cells touched by client beams
    std::int64_t server_messages = 0;   // cells touched by server beams
    int server_count = 0;
};

// Runs one client locate against a population of beaming servers.
[[nodiscard]] lighthouse_result run_lighthouse(const lighthouse_params& params);

}  // namespace mm::lighthouse
