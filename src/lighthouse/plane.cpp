#include "lighthouse/plane.h"

#include <cmath>
#include <stdexcept>

namespace mm::lighthouse {

std::vector<cell> rasterize_beam(int width, int height, cell from, double angle, int length) {
    if (width < 1 || height < 1) throw std::invalid_argument{"rasterize_beam: bad world"};
    if (length < 0) throw std::invalid_argument{"rasterize_beam: negative length"};
    const double dx = std::cos(angle);
    const double dy = std::sin(angle);
    std::vector<cell> out;
    out.reserve(static_cast<std::size_t>(length));
    cell prev = from;
    for (int step = 1; step <= length; ++step) {
        const auto wrap = [](int v, int extent) {
            const int m = v % extent;
            return m < 0 ? m + extent : m;
        };
        const cell c{wrap(from.x + static_cast<int>(std::lround(dx * step)), width),
                     wrap(from.y + static_cast<int>(std::lround(dy * step)), height)};
        if (c == prev) continue;  // shallow angles revisit the same cell
        out.push_back(c);
        prev = c;
    }
    return out;
}

trail_map::trail_map(int width, int height) : width_{width}, height_{height} {
    if (width < 1 || height < 1) throw std::invalid_argument{"trail_map: bad world"};
}

std::int64_t trail_map::key(cell c) const {
    return static_cast<std::int64_t>(c.y) * width_ + c.x;
}

void trail_map::deposit(cell at, core::port_id port, core::address who,
                        std::int64_t expires_at) {
    core::port_entry entry;
    entry.port = port;
    entry.where = who;
    entry.stamp = expires_at;  // a fresher beam always has a later expiry
    entry.expires_at = expires_at;
    cells_[key(at)].post(entry);
}

std::optional<core::port_entry> trail_map::live_trail(cell at, core::port_id port,
                                                      std::int64_t now) {
    const auto it = cells_.find(key(at));
    if (it == cells_.end()) return std::nullopt;
    return it->second.lookup(port, now);
}

std::size_t trail_map::live_entries(std::int64_t now) {
    std::size_t live = 0;
    for (auto it = cells_.begin(); it != cells_.end();) {
        it->second.expire(now);
        live += it->second.size();
        if (it->second.empty()) {
            it = cells_.erase(it);
        } else {
            ++it;
        }
    }
    return live;
}

}  // namespace mm::lighthouse
