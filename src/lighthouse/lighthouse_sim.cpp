#include "lighthouse/lighthouse_sim.h"

#include <random>

namespace mm::lighthouse {

namespace {

constexpr double two_pi = 6.283185307179586;

struct server {
    cell at;
    std::int64_t phase = 0;  // beam when (t + phase) % period == 0
    core::address address = 0;
};

}  // namespace

lighthouse_result run_lighthouse(const lighthouse_params& params) {
    sim::rng random{params.seed};
    lighthouse_result result;

    // Server population: Poisson with mean density * area, like the paper's
    // "number of servers in an n-element region has expected value s*n".
    const double area = static_cast<double>(params.width) * params.height;
    std::poisson_distribution<int> population{params.server_density * area};
    const int server_count = population(random.engine());
    result.server_count = server_count;

    std::vector<server> servers;
    servers.reserve(static_cast<std::size_t>(server_count));
    for (int i = 0; i < server_count; ++i) {
        server s;
        s.at = cell{static_cast<int>(random.uniform(0, params.width - 1)),
                    static_cast<int>(random.uniform(0, params.height - 1))};
        s.phase = random.uniform(0, params.server_period - 1);
        s.address = static_cast<core::address>(i);
        servers.push_back(s);
    }

    const core::port_id port = core::port_of("lighthouse-service");
    trail_map trails{params.width, params.height};
    const cell client{params.width / 2, params.height / 2};

    // Client schedule state.
    std::int64_t next_trial = params.client_period;
    std::int64_t period = params.client_period;
    int beam_length = params.client_base_length;
    int failures_at_length = 0;
    ruler_schedule ruler;

    for (std::int64_t now = 0; now <= params.max_time; ++now) {
        // Mobile servers drift one cell at a time.
        if (params.server_drift > 0) {
            for (auto& s : servers) {
                if (!random.chance(params.server_drift)) continue;
                const int dir = static_cast<int>(random.uniform(0, 3));
                const int dx[4] = {1, -1, 0, 0};
                const int dy[4] = {0, 0, 1, -1};
                s.at.x = (s.at.x + dx[dir] + params.width) % params.width;
                s.at.y = (s.at.y + dy[dir] + params.height) % params.height;
            }
        }
        // Servers beam on their own periods.
        for (const auto& s : servers) {
            if ((now + s.phase) % params.server_period != 0) continue;
            const double angle = random.uniform01() * two_pi;
            const auto cells = rasterize_beam(params.width, params.height, s.at, angle,
                                              params.server_beam_length);
            result.server_messages += static_cast<std::int64_t>(cells.size());
            for (const cell& c : cells)
                trails.deposit(c, port, s.address, now + params.trail_lifetime);
            // The server's own cell always carries a fresh trail too.
            trails.deposit(s.at, port, s.address, now + params.trail_lifetime);
        }

        if (now != next_trial) continue;

        // One client trial.
        ++result.client_trials;
        int length = beam_length;
        if (params.schedule == client_schedule::ruler)
            length = ruler.next() * params.client_base_length;
        const double angle = random.uniform01() * two_pi;
        const auto cells = rasterize_beam(params.width, params.height, client, angle, length);
        result.client_messages += static_cast<std::int64_t>(cells.size());
        bool hit = trails.live_trail(client, port, now).has_value();
        for (const cell& c : cells) {
            if (hit) break;
            hit = trails.live_trail(c, port, now).has_value();
        }
        if (hit) {
            result.located = true;
            result.time_to_locate = now;
            return result;
        }

        if (params.schedule == client_schedule::doubling &&
            ++failures_at_length >= params.escalate_after) {
            failures_at_length = 0;
            beam_length *= 2;
            period *= 2;
        }
        next_trial = now + period;
    }
    result.time_to_locate = params.max_time;
    return result;
}

}  // namespace mm::lighthouse
