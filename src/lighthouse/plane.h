// plane.h - the Euclidean-plane world of Lighthouse Locate (Section 4).
//
// "We imagine the processors as discrete coordinate points in the
// 2-dimensional Euclidean plane grid."  The world is a width x height
// integer grid with torus wrap-around (the paper's plane is unbounded; the
// torus avoids boundary artifacts).  A beam is a straight ray of given
// length cast in a random direction; every grid cell it passes through
// counts as one message pass and can hold (port, address) trails that
// expire after a fixed number of ticks.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/cache.h"
#include "core/ids.h"

namespace mm::lighthouse {

struct cell {
    int x = 0;
    int y = 0;
    friend bool operator==(const cell&, const cell&) = default;
};

// The grid cells a beam of `length` cells visits from (x, y) at `angle`
// radians (start cell excluded), deduplicated, in visiting order, wrapped
// onto a width x height torus.
[[nodiscard]] std::vector<cell> rasterize_beam(int width, int height, cell from, double angle,
                                               int length);

// Trail storage: per-cell (port, address, expiry) entries.
class trail_map {
public:
    trail_map(int width, int height);

    // Deposits a trail at a cell; `expires_at` is an absolute tick.
    void deposit(cell at, core::port_id port, core::address who, std::int64_t expires_at);

    // A live trail for `port` at `at`, if any (expired entries are pruned).
    [[nodiscard]] std::optional<core::port_entry> live_trail(cell at, core::port_id port,
                                                             std::int64_t now);

    // Total live entries (after pruning against `now`).
    [[nodiscard]] std::size_t live_entries(std::int64_t now);

    [[nodiscard]] int width() const noexcept { return width_; }
    [[nodiscard]] int height() const noexcept { return height_; }

private:
    int width_;
    int height_;
    std::unordered_map<std::int64_t, core::port_cache> cells_;

    [[nodiscard]] std::int64_t key(cell c) const;
};

}  // namespace mm::lighthouse
