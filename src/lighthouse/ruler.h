// ruler.h - the beam-length schedule 1,2,1,3,1,2,1,4,... (Section 4).
//
// "Another possibility is to govern the length of the locate beam by the
// sequence 121312141213121512131214...  Here the length of the locate beam
// is i*l once in each interval of 2^i trials.  The schedule can conveniently
// be maintained by a binary counter: the position i of the most significant
// bit changed by the current unit increment indicates the current beam
// length i*l."  (Sequence 51 in Sloane's 1973 catalogue, the ruler
// function.)  In a run of 2^k trials there are 2^(k-i) trials of length i*l.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace mm::lighthouse {

// i(t) for trial t >= 1: one plus the number of trailing zero bits of t;
// equivalently the position (1-based) of the most significant bit flipped
// when incrementing the binary counter from t-1 to t.
[[nodiscard]] constexpr int ruler_value(std::uint64_t trial) {
    if (trial == 0) throw std::invalid_argument{"ruler_value: trials are numbered from 1"};
    int i = 1;
    while ((trial & 1) == 0) {
        trial >>= 1;
        ++i;
    }
    return i;
}

// Incremental binary-counter form, convenient for simulations.
class ruler_schedule {
public:
    // Advances to the next trial and returns its ruler value.
    int next() { return ruler_value(++counter_); }
    [[nodiscard]] std::uint64_t trials_so_far() const noexcept { return counter_; }
    void reset() noexcept { counter_ = 0; }

private:
    std::uint64_t counter_ = 0;
};

}  // namespace mm::lighthouse
