// network_beam.h - mapping plane beams onto point-to-point networks.
//
// Section 4, closing: "A client (or server) wishing to send a beam of
// length k chooses a random outgoing arc and sends the message along it to
// its neighbor.  This neighbor, upon reception of such a message decreases
// the hop count by 1, and sends the message on any one outgoing arc that is
// used to send messages from the node at the other end of the arc to the
// original client (or server) where the beam started from" - i.e. the
// routing tables are used back-to-front (after Dalal & Metcalfe's reverse
// path forwarding) to push the message along "a straight line" away from
// its origin.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "net/routing.h"
#include "sim/rng.h"

namespace mm::lighthouse {

// The nodes visited by a beam of `length` hops from `origin` (origin
// excluded), following reverse shortest-path arcs; stops early only if no
// neighbor routes back through the current node.  Randomness (initial arc,
// tie-breaks) comes from `random`.
[[nodiscard]] std::vector<net::node_id> network_beam(const net::graph& g,
                                                     const net::routing_table& routes,
                                                     net::node_id origin, int length,
                                                     sim::rng& random);

// Statistics of the beams a node would cast: used to verify that beams move
// strictly away from the origin (distance increases every hop until blocked).
struct beam_trace {
    std::vector<net::node_id> nodes;
    bool monotone_away = true;  // distance from origin strictly increased
};

[[nodiscard]] beam_trace trace_network_beam(const net::graph& g,
                                            const net::routing_table& routes,
                                            net::node_id origin, int length, sim::rng& random);

}  // namespace mm::lighthouse
