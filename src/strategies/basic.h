// basic.h - the three borderline strategies of Section 2.3.1.
//
// Broadcasting (example 1): "the server stays put and the client looks
// everywhere"; sweeping (example 2): "the client stays put and the server
// looks for work"; centralized name server (example 3): "all services post
// at node c and all clients query for services at node c".
#pragma once

#include "core/strategy.h"

namespace mm::strategies {

// P(i) = {i}, Q(j) = U.  m(i,j) = n + 1.
class broadcast_strategy final : public core::shotgun_strategy {
public:
    explicit broadcast_strategy(net::node_id n);
    [[nodiscard]] std::string name() const override { return "broadcast"; }
    [[nodiscard]] net::node_id node_count() const override { return n_; }
    [[nodiscard]] core::node_set post_set(net::node_id server) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client) const override;

private:
    net::node_id n_;
};

// P(i) = U, Q(j) = {j}.  m(i,j) = n + 1.
class sweep_strategy final : public core::shotgun_strategy {
public:
    explicit sweep_strategy(net::node_id n);
    [[nodiscard]] std::string name() const override { return "sweep"; }
    [[nodiscard]] net::node_id node_count() const override { return n_; }
    [[nodiscard]] core::node_set post_set(net::node_id server) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client) const override;

private:
    net::node_id n_;
};

// P(i) = Q(j) = {center}.  m(i,j) = 2, but the center is a single point of
// failure: "if the YP company crashes ... society grinds to a halt".
class central_strategy final : public core::shotgun_strategy {
public:
    central_strategy(net::node_id n, net::node_id center);
    [[nodiscard]] std::string name() const override { return "central"; }
    [[nodiscard]] net::node_id node_count() const override { return n_; }
    [[nodiscard]] net::node_id center() const noexcept { return center_; }
    [[nodiscard]] core::node_set post_set(net::node_id server) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client) const override;

private:
    net::node_id n_;
    net::node_id center_;
};

// The most inefficient strategy: P(i) = Q(j) = U, m(n) = 2n (end of
// Section 2.3.4).  Useful as a robustness ceiling: #(P n Q) = n.
class flood_strategy final : public core::shotgun_strategy {
public:
    explicit flood_strategy(net::node_id n);
    [[nodiscard]] std::string name() const override { return "flood"; }
    [[nodiscard]] net::node_id node_count() const override { return n_; }
    [[nodiscard]] core::node_set post_set(net::node_id server) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client) const override;

private:
    net::node_id n_;
};

}  // namespace mm::strategies
