// tree_path.h - path-to-root match-making in trees (Example 5, Section 3.6).
//
// "The strategy in such trees can be simple: all services advertise at the
// path leading to the root of the tree, and similarly the clients request
// services on the path to the root."  m(n) = O(l) for tree depth l; the
// cache at a node grows with the subtree it dominates, which mirrors the
// UUCPnet observation that core sites dedicate more memory to the network.
//
// Example 5's matrix arises from the strict-ancestor variant (a node's path
// excludes itself; the root posts at itself), where the effective rendezvous
// for (i, j) is the lowest common ancestor of i and j.
#pragma once

#include <vector>

#include "core/strategy.h"

namespace mm::strategies {

class tree_path_strategy final : public core::shotgun_strategy {
public:
    // parent[v] is v's parent; exactly one root with parent == invalid_node.
    // include_self: posts/queries start at the node itself (practical
    // variant) instead of at its parent (Example 5's variant).
    explicit tree_path_strategy(std::vector<net::node_id> parent, bool include_self = false);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] net::node_id node_count() const override {
        return static_cast<net::node_id>(parent_.size());
    }
    [[nodiscard]] core::node_set post_set(net::node_id server) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client) const override;

    // The first node where the client's query meets the server's posts when
    // both walk upward: the LCA (in the strict variant, the LCA unless it is
    // one of the endpoints, in which case its parent chain entry point).
    [[nodiscard]] net::node_id effective_rendezvous(net::node_id server,
                                                    net::node_id client) const;

    [[nodiscard]] net::node_id root() const noexcept { return root_; }
    [[nodiscard]] int depth_of(net::node_id v) const;

private:
    std::vector<net::node_id> parent_;
    std::vector<int> depth_;
    net::node_id root_ = net::invalid_node;
    bool include_self_;

    [[nodiscard]] core::node_set path_up(net::node_id v) const;
};

}  // namespace mm::strategies
