// hash_locate.h - Hash Locate (Section 5).
//
// "In Hash Locate we construct hash functions that map service names onto
// network addresses.  That is, P, Q: Pi -> 2^U and P = Q. ... clients and
// servers need only use one network node each in every match-making."  The
// price is fragility: "if all rendez-vous nodes for a particular service
// crash then this takes out completely that particular service from the
// entire network."  Both mitigations of the paper are implemented:
// replication (hash onto r addresses) and rehashing (attempt index shifts
// the hash to a backup rendezvous node when the primary is down).
#pragma once

#include <memory>
#include <vector>

#include "core/strategy.h"

namespace mm::strategies {

class hash_locate_strategy final : public core::locate_strategy {
public:
    // replicas: how many distinct nodes each port hashes onto (>= 1).
    // rehash_attempt: shifts the whole hash sequence; attempt a uses hash
    // indices [a, a + replicas).
    // rehash_fallbacks: how many backup strategies (attempts rehash_attempt+1,
    // +2, ...) this strategy owns and exposes through fallback_chain(), for
    // the runtime's rehash-recovery locate.
    explicit hash_locate_strategy(net::node_id n, int replicas = 1, int rehash_attempt = 0,
                                  int rehash_fallbacks = 0);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] net::node_id node_count() const override { return n_; }
    [[nodiscard]] core::node_set post_set(net::node_id server, core::port_id port) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client, core::port_id port) const override;

    // Fallback capability: the owned backup strategies, nearest attempt first.
    [[nodiscard]] std::vector<const core::locate_strategy*> fallback_chain() const override;

    // The h-th rendezvous node for a port (h = 0, 1, ...): a deterministic,
    // well-spread sequence with no two equal consecutive values for n > 1.
    [[nodiscard]] net::node_id rendezvous_node(core::port_id port, int h) const;

    [[nodiscard]] int replicas() const noexcept { return replicas_; }
    [[nodiscard]] int rehash_attempt() const noexcept { return rehash_attempt_; }

private:
    net::node_id n_;
    int replicas_;
    int rehash_attempt_;
    std::vector<std::unique_ptr<hash_locate_strategy>> fallbacks_;
};

}  // namespace mm::strategies
