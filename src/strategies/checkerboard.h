// checkerboard.h - the truly distributed strategy (Example 4, Proposition 3)
// and its weighted generalization (M3').
//
// The n x n rendezvous matrix is tiled with blocks, each filled with one
// node; every node carries (nearly) the same rendezvous load, and
// m(n) ~ 2*sqrt(n) matches the truly distributed lower bound.  The weighted
// variant skews the block shape: if clients locate `alpha` times more often
// than servers post, the optimal split is #P ~ sqrt(n*alpha),
// #Q ~ sqrt(n/alpha), minimizing #P + alpha * #Q subject to #P * #Q >= n.
#pragma once

#include "core/strategy.h"

namespace mm::strategies {

class checkerboard_strategy final : public core::shotgun_strategy {
public:
    // width = #P (block width); 0 picks the balanced ceil(sqrt(n)).
    // redundancy = number of adjacent block-rows a server posts to and
    // block-columns a client queries (Section 2.4: choosing P and Q with
    // #(P n Q) >= f+1 tolerates f rendezvous crashes in place).
    explicit checkerboard_strategy(net::node_id n, int width = 0, int redundancy = 1);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] net::node_id node_count() const override { return n_; }
    [[nodiscard]] core::node_set post_set(net::node_id server) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client) const override;

    [[nodiscard]] int width() const noexcept { return width_; }
    [[nodiscard]] int redundancy() const noexcept { return redundancy_; }

private:
    net::node_id n_;
    int width_;
    int redundancy_;
    core::node_set pool_;  // identity pool 0..n-1
};

// The optimal block width for weighted cost #P + alpha * #Q (M3').
[[nodiscard]] int weighted_checker_width(net::node_id n, double alpha);

// Checkerboard tuned to a client/server frequency ratio alpha.
[[nodiscard]] checkerboard_strategy make_weighted_checkerboard(net::node_id n, double alpha);

}  // namespace mm::strategies
