#include "strategies/partition_strategy.h"

#include <stdexcept>

namespace mm::strategies {

partition_strategy::partition_strategy(net::graph_partition partition)
    : partition_{std::move(partition)} {
    if (partition_.label_count < 1)
        throw std::invalid_argument{"partition_strategy: empty partition"};
    by_label_.reserve(static_cast<std::size_t>(partition_.label_count));
    for (int label = 0; label < partition_.label_count; ++label)
        by_label_.push_back(partition_.nodes_with_label(label));  // sorted covering nodes
}

std::string partition_strategy::name() const {
    return "partition(parts=" + std::to_string(partition_.part_count()) + ")";
}

core::node_set partition_strategy::post_set(net::node_id server) const {
    if (server < 0 || server >= node_count())
        throw std::out_of_range{"partition_strategy: bad server"};
    return by_label_[static_cast<std::size_t>(
        partition_.label_of[static_cast<std::size_t>(server)])];
}

core::node_set partition_strategy::query_set(net::node_id client) const {
    if (client < 0 || client >= node_count())
        throw std::out_of_range{"partition_strategy: bad client"};
    return partition_.parts[static_cast<std::size_t>(
        partition_.part_of[static_cast<std::size_t>(client)])];
}

}  // namespace mm::strategies
