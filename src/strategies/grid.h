// grid.h - Manhattan networks (Section 3.1) and d-dimensional meshes.
//
// "Post availability of a service along its row and request a service along
// the column the client is on."  The rendezvous node for server (r, .) and
// client (., c) is grid point (r, c).  The obvious generalization to
// d-dimensional meshes posts on the hyperplane fixing the server's first
// coordinate and queries on the hyperplane fixing the client's second
// coordinate, giving m(n) = 2 * n^((d-1)/d) message passes; for d > 2 the
// rendezvous sets are whole (d-2)-dimensional subgrids, which is exactly the
// redundancy Section 2.4 asks for.
#pragma once

#include "core/strategy.h"
#include "net/topologies.h"

namespace mm::strategies {

// Rows x cols Manhattan grid: P = the server's row, Q = the client's column.
class manhattan_strategy final : public core::shotgun_strategy {
public:
    manhattan_strategy(net::node_id rows, net::node_id cols);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] net::node_id node_count() const override { return rows_ * cols_; }
    [[nodiscard]] core::node_set post_set(net::node_id server) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client) const override;

    [[nodiscard]] net::node_id rendezvous_of(net::node_id server, net::node_id client) const;

private:
    net::node_id rows_;
    net::node_id cols_;
};

// d-dimensional mesh: P fixes coordinate `post_axis` (default 0) at the
// server's value, Q fixes coordinate `query_axis` (default 1, or 0 for 1-d)
// at the client's value.
class mesh_strategy final : public core::shotgun_strategy {
public:
    explicit mesh_strategy(net::mesh_shape shape, int post_axis = 0, int query_axis = 1);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] net::node_id node_count() const override { return shape_.node_count(); }
    [[nodiscard]] core::node_set post_set(net::node_id server) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client) const override;

private:
    net::mesh_shape shape_;
    int post_axis_;
    int query_axis_;

    [[nodiscard]] core::node_set hyperplane(int axis, net::node_id fixed_value) const;
};

}  // namespace mm::strategies
