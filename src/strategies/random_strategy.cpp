#include "strategies/random_strategy.h"

#include <numeric>
#include <random>
#include <stdexcept>

#include "sim/rng.h"

namespace mm::strategies {

random_strategy::random_strategy(net::node_id n, int post_size, int query_size,
                                 std::uint64_t seed)
    : n_{n}, post_size_{post_size}, query_size_{query_size}, seed_{seed} {
    if (n < 1) throw std::invalid_argument{"random_strategy: need n >= 1"};
    if (post_size < 0 || post_size > n || query_size < 0 || query_size > n)
        throw std::invalid_argument{"random_strategy: set sizes must be in [0, n]"};
}

std::string random_strategy::name() const {
    return "random(p=" + std::to_string(post_size_) + ",q=" + std::to_string(query_size_) + ")";
}

core::node_set random_strategy::sample(std::uint64_t stream, int count) const {
    // Partial Fisher-Yates over 0..n-1, deterministic per (seed, stream).
    std::mt19937_64 rng{sim::splitmix64(seed_ ^ sim::splitmix64(stream))};
    std::vector<net::node_id> pool(static_cast<std::size_t>(n_));
    std::iota(pool.begin(), pool.end(), net::node_id{0});
    core::node_set out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        std::uniform_int_distribution<net::node_id> pick{static_cast<net::node_id>(i), n_ - 1};
        std::swap(pool[static_cast<std::size_t>(i)], pool[static_cast<std::size_t>(pick(rng))]);
        out.push_back(pool[static_cast<std::size_t>(i)]);
    }
    core::normalize_set(out);
    return out;
}

core::node_set random_strategy::post_set(net::node_id server) const {
    if (server < 0 || server >= n_) throw std::out_of_range{"random_strategy: bad server"};
    return sample(static_cast<std::uint64_t>(server) * 2 + 0, post_size_);
}

core::node_set random_strategy::query_set(net::node_id client) const {
    if (client < 0 || client >= n_) throw std::out_of_range{"random_strategy: bad client"};
    return sample(static_cast<std::uint64_t>(client) * 2 + 1, query_size_);
}

}  // namespace mm::strategies
