#include "strategies/load_aware.h"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.h"

namespace mm::strategies {

load_aware_strategy::load_aware_strategy(const core::locate_strategy& parent)
    : load_aware_strategy(parent, options{}) {}

load_aware_strategy::load_aware_strategy(const core::locate_strategy& parent, options opt)
    : parent_{&parent}, opt_{opt} {
    if (opt_.replicas < 1)
        throw std::invalid_argument{"load_aware_strategy: replicas < 1"};
    if (opt_.cool_threshold > opt_.hot_threshold)
        throw std::invalid_argument{
            "load_aware_strategy: cool_threshold > hot_threshold (hysteresis "
            "band inverted - hot ports would thrash)"};
}

std::string load_aware_strategy::name() const {
    return "load-aware(" + parent_->name() + ")";
}

net::node_id load_aware_strategy::node_count() const { return parent_->node_count(); }

void load_aware_strategy::set_regions(const net::graph_partition& carve) {
    if (static_cast<net::node_id>(carve.part_of.size()) != parent_->node_count())
        throw std::invalid_argument{
            "load_aware_strategy: carve covers a different node count"};
    region_of_ = carve.part_of;
    region_nodes_ = carve.parts;
}

namespace {

// The representative of `port` inside one region: a port-and-region hashed
// pick, so different hot ports spread over different nodes of the region.
net::node_id region_home(const std::vector<net::node_id>& region, core::port_id port,
                         std::size_t region_index) {
    const std::uint64_t h = sim::splitmix64(sim::splitmix64(port) ^ region_index);
    return region[static_cast<std::size_t>(h % region.size())];
}

}  // namespace

core::node_set load_aware_strategy::homes(core::port_id port) const {
    core::node_set homes;
    if (!region_nodes_.empty()) {
        homes.reserve(region_nodes_.size());
        for (std::size_t r = 0; r < region_nodes_.size(); ++r)
            homes.push_back(region_home(region_nodes_[r], port, r));
        core::normalize_set(homes);
        return homes;
    }
    const auto n = static_cast<std::uint64_t>(parent_->node_count());
    const int replicas = std::min<int>(opt_.replicas, static_cast<int>(n));
    // Generic fallback without a carve: evenly strided from a port-hashed
    // start - posts rendezvous with queries, but with no locality claim.
    const std::uint64_t start = sim::splitmix64(port) % n;
    const std::uint64_t step = std::max<std::uint64_t>(1, n / static_cast<std::uint64_t>(replicas));
    homes.reserve(static_cast<std::size_t>(replicas));
    for (int r = 0; r < replicas; ++r)
        homes.push_back(static_cast<net::node_id>((start + static_cast<std::uint64_t>(r) * step) % n));
    core::normalize_set(homes);
    return homes;
}

net::node_id load_aware_strategy::home_for(core::port_id port, net::node_id client) const {
    if (region_of_.empty()) return net::invalid_node;
    const auto r = static_cast<std::size_t>(region_of_[static_cast<std::size_t>(client)]);
    return region_home(region_nodes_[r], port, r);
}

bool load_aware_strategy::hot(core::port_id port) const {
    return std::binary_search(hot_.begin(), hot_.end(), port);
}

core::node_set load_aware_strategy::post_set(net::node_id server, core::port_id port) const {
    auto set = parent_->post_set(server, port);
    if (hot(port)) {
        const auto extra = homes(port);
        set.insert(set.end(), extra.begin(), extra.end());
        core::normalize_set(set);
    }
    return set;
}

core::node_set load_aware_strategy::query_set(net::node_id client, core::port_id port) const {
    if (!hot(port)) return parent_->query_set(client, port);
    if (!region_of_.empty()) {
        // Hot with locality: one short-range message to the client's own
        // region's home (guaranteed rendezvous - the hot post set covers
        // every region's home).
        return core::node_set{home_for(port, client)};
    }
    // Hot without a carve: rendezvous at the replica homes, plus the
    // parent's stage-1 (local) set so nearby servers still answer.
    auto set = homes(port);
    const auto local = parent_->staged_query_set(client, 1, port);
    set.insert(set.end(), local.begin(), local.end());
    core::normalize_set(set);
    return set;
}

int load_aware_strategy::staged_levels() const { return parent_->staged_levels(); }

core::node_set load_aware_strategy::staged_query_set(net::node_id client, int level,
                                                     core::port_id port) const {
    auto set = parent_->staged_query_set(client, level, port);
    if (level == 1 && hot(port)) {
        // Stage 1 gains the rendezvous guarantee: the local region home
        // with a carve installed, the full replica spread without.
        const auto extra =
            region_of_.empty() ? homes(port) : core::node_set{home_for(port, client)};
        set.insert(set.end(), extra.begin(), extra.end());
        core::normalize_set(set);
    }
    return set;
}

std::vector<const core::locate_strategy*> load_aware_strategy::fallback_chain() const {
    return parent_->fallback_chain();
}

void load_aware_strategy::observe(core::port_id port, std::int64_t draws) {
    if (draws <= 0) return;
    for (auto& [p, count] : window_) {
        if (p == port) {
            count += draws;
            return;
        }
    }
    window_.emplace_back(port, draws);
}

load_aware_strategy::rebalance_result load_aware_strategy::rebalance() {
    rebalance_result result;
    // Demote first: hot ports whose window count fell to the cool threshold
    // (ports with no observations at all count as zero).
    for (const core::port_id p : hot_) {
        std::int64_t count = 0;
        for (const auto& [q, c] : window_)
            if (q == p) count = c;
        if (count <= opt_.cool_threshold) result.demoted.push_back(p);
    }
    for (const core::port_id p : result.demoted)
        hot_.erase(std::remove(hot_.begin(), hot_.end(), p), hot_.end());
    // Promote in first-seen window order, so the schedule is a
    // deterministic function of the observation stream.
    for (const auto& [p, count] : window_) {
        if (count >= opt_.hot_threshold && !hot(p)) {
            result.promoted.push_back(p);
            hot_.push_back(p);
            std::sort(hot_.begin(), hot_.end());
        }
    }
    window_.clear();
    return result;
}

}  // namespace mm::strategies
