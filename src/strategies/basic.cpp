#include "strategies/basic.h"

#include <stdexcept>

namespace mm::strategies {

namespace {

void check_node(net::node_id v, net::node_id n, const char* who) {
    if (v < 0 || v >= n) throw std::out_of_range{std::string{who} + ": node out of range"};
}

}  // namespace

broadcast_strategy::broadcast_strategy(net::node_id n) : n_{n} {
    if (n < 1) throw std::invalid_argument{"broadcast_strategy: need n >= 1"};
}

core::node_set broadcast_strategy::post_set(net::node_id server) const {
    check_node(server, n_, "broadcast");
    return {server};
}

core::node_set broadcast_strategy::query_set(net::node_id client) const {
    check_node(client, n_, "broadcast");
    return core::all_nodes(n_);
}

sweep_strategy::sweep_strategy(net::node_id n) : n_{n} {
    if (n < 1) throw std::invalid_argument{"sweep_strategy: need n >= 1"};
}

core::node_set sweep_strategy::post_set(net::node_id server) const {
    check_node(server, n_, "sweep");
    return core::all_nodes(n_);
}

core::node_set sweep_strategy::query_set(net::node_id client) const {
    check_node(client, n_, "sweep");
    return {client};
}

central_strategy::central_strategy(net::node_id n, net::node_id center)
    : n_{n}, center_{center} {
    if (n < 1) throw std::invalid_argument{"central_strategy: need n >= 1"};
    check_node(center, n, "central");
}

core::node_set central_strategy::post_set(net::node_id server) const {
    check_node(server, n_, "central");
    return {center_};
}

core::node_set central_strategy::query_set(net::node_id client) const {
    check_node(client, n_, "central");
    return {center_};
}

flood_strategy::flood_strategy(net::node_id n) : n_{n} {
    if (n < 1) throw std::invalid_argument{"flood_strategy: need n >= 1"};
}

core::node_set flood_strategy::post_set(net::node_id server) const {
    check_node(server, n_, "flood");
    return core::all_nodes(n_);
}

core::node_set flood_strategy::query_set(net::node_id client) const {
    check_node(client, n_, "flood");
    return core::all_nodes(n_);
}

}  // namespace mm::strategies
