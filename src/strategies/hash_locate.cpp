#include "strategies/hash_locate.h"

#include <stdexcept>

#include "sim/rng.h"

namespace mm::strategies {

hash_locate_strategy::hash_locate_strategy(net::node_id n, int replicas, int rehash_attempt,
                                           int rehash_fallbacks)
    : n_{n}, replicas_{replicas}, rehash_attempt_{rehash_attempt} {
    if (n < 1) throw std::invalid_argument{"hash_locate_strategy: need n >= 1"};
    if (replicas < 1 || replicas > n)
        throw std::invalid_argument{"hash_locate_strategy: need 1 <= replicas <= n"};
    if (rehash_attempt < 0) throw std::invalid_argument{"hash_locate_strategy: bad attempt"};
    if (rehash_fallbacks < 0)
        throw std::invalid_argument{"hash_locate_strategy: bad fallback count"};
    fallbacks_.reserve(static_cast<std::size_t>(rehash_fallbacks));
    for (int k = 1; k <= rehash_fallbacks; ++k)
        fallbacks_.push_back(
            std::make_unique<hash_locate_strategy>(n, replicas, rehash_attempt + k));
}

std::vector<const core::locate_strategy*> hash_locate_strategy::fallback_chain() const {
    std::vector<const core::locate_strategy*> chain;
    chain.reserve(fallbacks_.size());
    for (const auto& f : fallbacks_) chain.push_back(f.get());
    return chain;
}

std::string hash_locate_strategy::name() const {
    return "hash(r=" + std::to_string(replicas_) + ")";
}

net::node_id hash_locate_strategy::rendezvous_node(core::port_id port, int h) const {
    // Distinct hash indices map a port to a pseudorandom permutation-like
    // sequence; double hashing keeps consecutive values distinct for n > 1.
    const std::uint64_t base = sim::splitmix64(port);
    const std::uint64_t step = sim::splitmix64(port ^ 0xabcdef1234567890ULL) %
                                   static_cast<std::uint64_t>(n_ > 1 ? n_ - 1 : 1) +
                               1;
    return static_cast<net::node_id>((base + static_cast<std::uint64_t>(h) * step) %
                                     static_cast<std::uint64_t>(n_));
}

core::node_set hash_locate_strategy::post_set(net::node_id server, core::port_id port) const {
    if (server < 0 || server >= n_) throw std::out_of_range{"hash_locate: bad server"};
    core::node_set out;
    out.reserve(static_cast<std::size_t>(replicas_));
    for (int h = 0; h < replicas_; ++h)
        out.push_back(rendezvous_node(port, rehash_attempt_ + h));
    core::normalize_set(out);
    return out;
}

core::node_set hash_locate_strategy::query_set(net::node_id client, core::port_id port) const {
    if (client < 0 || client >= n_) throw std::out_of_range{"hash_locate: bad client"};
    // P = Q by construction (Section 5).
    core::node_set out;
    out.reserve(static_cast<std::size_t>(replicas_));
    for (int h = 0; h < replicas_; ++h)
        out.push_back(rendezvous_node(port, rehash_attempt_ + h));
    core::normalize_set(out);
    return out;
}

}  // namespace mm::strategies
