// random_strategy.h - randomly chosen P and Q sets (Section 2.2).
//
// "If the elements of P(i) and Q(j) are randomly chosen then ... the
// expected size of P(i) n Q(j) is pq/n.  Therefore, to expect one full node
// in P(i) n Q(j), we must have p + q >= 2*sqrt(n)."  This strategy draws,
// deterministically from a seed, a fixed random p-subset per server node and
// q-subset per client node; it is the experimental subject of the paper's
// probabilistic analysis and the baseline the deterministic constructions
// beat (they succeed always, not just in expectation).
#pragma once

#include <cstdint>

#include "core/strategy.h"

namespace mm::strategies {

class random_strategy final : public core::shotgun_strategy {
public:
    random_strategy(net::node_id n, int post_size, int query_size, std::uint64_t seed);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] net::node_id node_count() const override { return n_; }
    [[nodiscard]] core::node_set post_set(net::node_id server) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client) const override;

private:
    net::node_id n_;
    int post_size_;
    int query_size_;
    std::uint64_t seed_;

    [[nodiscard]] core::node_set sample(std::uint64_t stream, int count) const;
};

}  // namespace mm::strategies
