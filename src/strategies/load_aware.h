// load_aware.h - observed-load adaptive match-making (ROADMAP scenario
// tentpole; the paper's weighted match-making of Section 4 / e15
// generalized from *configured* weights to *measured* traffic).
//
// Wraps any parent strategy and maintains a small set of HOT ports.  A cold
// port behaves exactly like the parent.  A hot port is re-homed: its posts
// additionally land at a handful of well-known replica homes spread evenly
// over the node space, and its queries shrink to those homes plus the
// parent's stage-1 (local) set - so the busiest traffic stops multicasting
// across the whole parent query set and rendezvous at the replicas instead.
// Rendezvous stays guaranteed while hot: hot post set ⊇ homes(port) and hot
// query set ⊇ homes(port).  When traffic cools the port is demoted and the
// parent's sets apply again (the parent's entries were maintained the whole
// time, because the hot post set is a superset of the parent's).
//
// Determinism contract: the hot set is mutated ONLY at top level (observe/
// rebalance between operations, never inside a simulator round), while
// post_set/query_set are pure reads - so the parallel engine's worker
// threads see a stable snapshot and results stay bit-identical at any
// worker count.  Feed observe() from deterministic counters (the scenario
// driver uses sim::metrics port draw counters) and the promote/demote
// schedule is itself bit-deterministic.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/strategy.h"
#include "net/partition.h"

namespace mm::strategies {

class load_aware_strategy final : public core::locate_strategy {
public:
    struct options {
        // Window draw counts at/above which a port is promoted to hot, and
        // at/below which a hot port is demoted back to the parent's sets.
        std::int64_t hot_threshold = 24;
        std::int64_t cool_threshold = 6;
        // Well-known replica homes per hot port, spread evenly over nodes.
        int replicas = 4;
    };

    // The parent must outlive this strategy.
    explicit load_aware_strategy(const core::locate_strategy& parent);
    load_aware_strategy(const core::locate_strategy& parent, options opt);

    // Locality carve (setup-time, before any operation runs): with regions
    // installed, a hot port keeps ONE replica home per connected region and
    // a client queries only its own region's home - a single short-range
    // message instead of the parent's full multicast, which is where the
    // hot-port hop and tail-latency wins come from.  Without regions the
    // generic fallback spreads `replicas` homes over the node space (the
    // posts still rendezvous, but queries don't get cheaper - fine for
    // correctness tests, wrong for performance).  The carve is the paper's
    // own sqrt-partition, so locality comes from the same machinery the
    // region outage scheduler uses.
    void set_regions(const net::graph_partition& carve);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] net::node_id node_count() const override;
    [[nodiscard]] core::node_set post_set(net::node_id server, core::port_id port) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client, core::port_id port) const override;
    [[nodiscard]] int staged_levels() const override;
    [[nodiscard]] core::node_set staged_query_set(net::node_id client, int level,
                                                  core::port_id port) const override;
    [[nodiscard]] std::vector<const core::locate_strategy*> fallback_chain() const override;

    // --- load feedback (top-level only; never call inside a round) ---------
    // Accumulates `draws` observed queries for `port` into the current
    // window.  First-seen order is preserved, so rebalance decisions are
    // deterministic functions of the observation stream.
    void observe(core::port_id port, std::int64_t draws);

    struct rebalance_result {
        std::vector<core::port_id> promoted;
        std::vector<core::port_id> demoted;
    };
    // Applies the thresholds to the accumulated window, updates the hot
    // set, and clears the window.  Newly promoted ports need their binding
    // re-posted by the caller (the homes hold no entries yet).
    rebalance_result rebalance();

    [[nodiscard]] bool hot(core::port_id port) const;
    [[nodiscard]] std::size_t hot_count() const noexcept { return hot_.size(); }
    // The port's replica homes (normalized; same whether hot or cold):
    // one per region when a carve is installed, `replicas` strided nodes
    // otherwise.
    [[nodiscard]] core::node_set homes(core::port_id port) const;
    // The home a client in `client`'s region queries (regions installed).
    [[nodiscard]] net::node_id home_for(core::port_id port, net::node_id client) const;
    [[nodiscard]] const options& opts() const noexcept { return opt_; }
    [[nodiscard]] const core::locate_strategy& parent() const noexcept { return *parent_; }

private:
    const core::locate_strategy* parent_;
    options opt_;
    // Locality carve (empty = generic strided homes).
    std::vector<int> region_of_;
    std::vector<std::vector<net::node_id>> region_nodes_;
    // Current observation window, in first-seen port order.
    std::vector<std::pair<core::port_id, std::int64_t>> window_;
    std::vector<core::port_id> hot_;  // sorted
};

}  // namespace mm::strategies
