#include "strategies/checker_util.h"

#include <cmath>
#include <stdexcept>

namespace mm::strategies {

namespace {

void check_args(std::span<const net::node_id> pool, int index, int width) {
    if (pool.empty()) throw std::invalid_argument{"checker: empty pool"};
    if (width < 1 || width > static_cast<int>(pool.size()))
        throw std::invalid_argument{"checker: bad width"};
    if (index < 0 || index >= static_cast<int>(pool.size()))
        throw std::out_of_range{"checker: bad index"};
}

}  // namespace

int balanced_checker_width(int size) {
    if (size < 1) throw std::invalid_argument{"balanced_checker_width: empty pool"};
    return static_cast<int>(std::ceil(std::sqrt(static_cast<double>(size))));
}

core::node_set checker_post(std::span<const net::node_id> pool, int index, int width) {
    check_args(pool, index, width);
    const int size = static_cast<int>(pool.size());
    const int row = index / width;
    core::node_set out;
    out.reserve(static_cast<std::size_t>(width));
    for (int c = 0; c < width; ++c)
        out.push_back(pool[static_cast<std::size_t>((row * width + c) % size)]);
    core::normalize_set(out);
    return out;
}

core::node_set checker_query(std::span<const net::node_id> pool, int index, int width) {
    check_args(pool, index, width);
    const int size = static_cast<int>(pool.size());
    const int rows = (size + width - 1) / width;
    // Blocked column assignment (index / rows), matching the paper's
    // Example 4 layout where consecutive clients share a block column.
    const int col = index / rows;
    core::node_set out;
    out.reserve(static_cast<std::size_t>(rows));
    for (int r = 0; r < rows; ++r)
        out.push_back(pool[static_cast<std::size_t>((r * width + col) % size)]);
    core::normalize_set(out);
    return out;
}

net::node_id checker_rendezvous(std::span<const net::node_id> pool, int post_index,
                                int query_index, int width) {
    check_args(pool, post_index, width);
    check_args(pool, query_index, width);
    const int size = static_cast<int>(pool.size());
    const int rows = (size + width - 1) / width;
    const int row = post_index / width;
    const int col = query_index / rows;
    return pool[static_cast<std::size_t>((row * width + col) % size)];
}

}  // namespace mm::strategies
