#include "strategies/grid.h"

#include <stdexcept>

namespace mm::strategies {

manhattan_strategy::manhattan_strategy(net::node_id rows, net::node_id cols)
    : rows_{rows}, cols_{cols} {
    if (rows < 1 || cols < 1) throw std::invalid_argument{"manhattan_strategy: bad shape"};
}

std::string manhattan_strategy::name() const {
    return "manhattan(" + std::to_string(rows_) + "x" + std::to_string(cols_) + ")";
}

core::node_set manhattan_strategy::post_set(net::node_id server) const {
    if (server < 0 || server >= node_count()) throw std::out_of_range{"manhattan: bad server"};
    const net::node_id row = server / cols_;
    core::node_set out;
    out.reserve(static_cast<std::size_t>(cols_));
    for (net::node_id c = 0; c < cols_; ++c) out.push_back(row * cols_ + c);
    return out;  // already sorted
}

core::node_set manhattan_strategy::query_set(net::node_id client) const {
    if (client < 0 || client >= node_count()) throw std::out_of_range{"manhattan: bad client"};
    const net::node_id col = client % cols_;
    core::node_set out;
    out.reserve(static_cast<std::size_t>(rows_));
    for (net::node_id r = 0; r < rows_; ++r) out.push_back(r * cols_ + col);
    return out;
}

net::node_id manhattan_strategy::rendezvous_of(net::node_id server, net::node_id client) const {
    return (server / cols_) * cols_ + client % cols_;
}

mesh_strategy::mesh_strategy(net::mesh_shape shape, int post_axis, int query_axis)
    : shape_{std::move(shape)}, post_axis_{post_axis}, query_axis_{query_axis} {
    if (shape_.dimensions() == 1) query_axis_ = 0;
    if (post_axis_ < 0 || post_axis_ >= shape_.dimensions() || query_axis_ < 0 ||
        query_axis_ >= shape_.dimensions())
        throw std::invalid_argument{"mesh_strategy: bad axis"};
    if (shape_.dimensions() > 1 && post_axis_ == query_axis_)
        throw std::invalid_argument{"mesh_strategy: post and query axes must differ"};
}

std::string mesh_strategy::name() const {
    return "mesh(d=" + std::to_string(shape_.dimensions()) + ")";
}

core::node_set mesh_strategy::hyperplane(int axis, net::node_id fixed_value) const {
    core::node_set out;
    for (net::node_id v = 0; v < shape_.node_count(); ++v)
        if (shape_.coords(v)[static_cast<std::size_t>(axis)] == fixed_value) out.push_back(v);
    return out;  // ascending by construction
}

core::node_set mesh_strategy::post_set(net::node_id server) const {
    const auto c = shape_.coords(server);
    return hyperplane(post_axis_, c[static_cast<std::size_t>(post_axis_)]);
}

core::node_set mesh_strategy::query_set(net::node_id client) const {
    const auto c = shape_.coords(client);
    return hyperplane(query_axis_, c[static_cast<std::size_t>(query_axis_)]);
}

}  // namespace mm::strategies
