// partition_strategy.h - the generic scheme for arbitrary connected
// networks (Section 3, opening).
//
// "A server at the node labelled i in one of the subgraphs communicates its
// (port, address) to all nodes i in the remaining O(sqrt(n)) subgraphs ...
// A client broadcasts for a service (along a spanning tree) in the subgraph
// where it resides."  Every part covers every label (small parts wrap
// labels around - the paper's "divide the excess numbers over the nodes"),
// so the client's own part always contains a covering node for the
// server's label.  Posting costs O(n) routed message passes, querying at
// most ~2*sqrt(n) (parts are size-capped), and caches stay near
// O(sqrt(n)), inflated only on wrap-around nodes of small parts.
#pragma once

#include "core/strategy.h"
#include "net/partition.h"

namespace mm::strategies {

class partition_strategy final : public core::shotgun_strategy {
public:
    // The partition must come from partition_connected() (or satisfy its
    // invariants: connected parts, complete label sets).
    explicit partition_strategy(net::graph_partition partition);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] net::node_id node_count() const override {
        return static_cast<net::node_id>(partition_.part_of.size());
    }
    // The covering node of the server's label in every part (own part
    // included, which only helps locality).
    [[nodiscard]] core::node_set post_set(net::node_id server) const override;
    // The client's whole part.
    [[nodiscard]] core::node_set query_set(net::node_id client) const override;

    [[nodiscard]] const net::graph_partition& partition() const noexcept { return partition_; }

private:
    net::graph_partition partition_;
    std::vector<core::node_set> by_label_;  // label -> sorted nodes
};

}  // namespace mm::strategies
