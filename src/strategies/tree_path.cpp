#include "strategies/tree_path.h"

#include <stdexcept>

#include "net/topologies.h"

namespace mm::strategies {

tree_path_strategy::tree_path_strategy(std::vector<net::node_id> parent, bool include_self)
    : parent_{std::move(parent)}, include_self_{include_self} {
    if (parent_.empty()) throw std::invalid_argument{"tree_path_strategy: empty tree"};
    for (net::node_id v = 0; v < node_count(); ++v) {
        if (parent_[static_cast<std::size_t>(v)] == net::invalid_node) {
            if (root_ != net::invalid_node)
                throw std::invalid_argument{"tree_path_strategy: multiple roots"};
            root_ = v;
        }
    }
    if (root_ == net::invalid_node) throw std::invalid_argument{"tree_path_strategy: no root"};
    depth_ = net::tree_depths(parent_);
}

std::string tree_path_strategy::name() const {
    return include_self_ ? "tree-path(self)" : "tree-path(strict)";
}

int tree_path_strategy::depth_of(net::node_id v) const {
    if (v < 0 || v >= node_count()) throw std::out_of_range{"tree_path_strategy::depth_of"};
    return depth_[static_cast<std::size_t>(v)];
}

core::node_set tree_path_strategy::path_up(net::node_id v) const {
    if (v < 0 || v >= node_count()) throw std::out_of_range{"tree_path_strategy: bad node"};
    core::node_set out;
    net::node_id u = include_self_ ? v : parent_[static_cast<std::size_t>(v)];
    while (u != net::invalid_node) {
        out.push_back(u);
        u = parent_[static_cast<std::size_t>(u)];
    }
    if (out.empty()) out.push_back(v);  // strict variant: the root posts at itself
    core::normalize_set(out);
    return out;
}

core::node_set tree_path_strategy::post_set(net::node_id server) const { return path_up(server); }

core::node_set tree_path_strategy::query_set(net::node_id client) const { return path_up(client); }

net::node_id tree_path_strategy::effective_rendezvous(net::node_id server,
                                                      net::node_id client) const {
    const auto p = post_set(server);
    const auto q = query_set(client);
    // Deepest node on both upward paths.
    net::node_id best = net::invalid_node;
    int best_depth = -1;
    for (net::node_id v : core::intersect_sets(p, q)) {
        if (depth_[static_cast<std::size_t>(v)] > best_depth) {
            best_depth = depth_[static_cast<std::size_t>(v)];
            best = v;
        }
    }
    if (best == net::invalid_node)
        throw std::logic_error{"tree_path_strategy: no rendezvous (impossible in a tree)"};
    return best;
}

}  // namespace mm::strategies
