// projective.h - match-making on projective plane topologies (Section 3.4).
//
// "A server s posts its (port, address) to all nodes on an arbitrary line
// incident on its host node.  A client c queries all nodes on an arbitrary
// line incident on its own host node.  The common node of the two lines is
// the rendez-vous node."  m(n) = 2(k+1) ~ 2*sqrt(n) for n = k^2 + k + 1,
// and the scheme is "resistant to failures of lines, provided no point has
// all lines passing through it removed" - the line selectors below rotate
// to implement exactly that.
#pragma once

#include <memory>

#include "core/strategy.h"
#include "net/projective_plane.h"

namespace mm::strategies {

class projective_strategy final : public core::shotgun_strategy {
public:
    // order must be a prime power; line selectors pick which of the k+1
    // incident lines a node uses (rotated on retry for fault tolerance).
    // line_redundancy makes servers post on - and clients query - that many
    // consecutive incident lines, giving #(P n Q) >= redundancy^2 shared
    // points (Section 2.4's #(P n Q) >= f+1 criterion).
    explicit projective_strategy(int order, int post_line_selector = 0,
                                 int query_line_selector = 0, int line_redundancy = 1);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] net::node_id node_count() const override { return plane_->point_count(); }
    [[nodiscard]] core::node_set post_set(net::node_id server) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client) const override;

    [[nodiscard]] const net::projective_plane& plane() const noexcept { return *plane_; }

    // The line index a given node would use.
    [[nodiscard]] int post_line(net::node_id server) const;
    [[nodiscard]] int query_line(net::node_id client) const;

    [[nodiscard]] int line_redundancy() const noexcept { return redundancy_; }

private:
    std::shared_ptr<const net::projective_plane> plane_;
    int post_selector_;
    int query_selector_;
    int redundancy_;

    [[nodiscard]] core::node_set lines_union(net::node_id node, int first_selector) const;
};

}  // namespace mm::strategies
