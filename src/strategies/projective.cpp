#include "strategies/projective.h"

#include <stdexcept>

namespace mm::strategies {

projective_strategy::projective_strategy(int order, int post_line_selector,
                                         int query_line_selector, int line_redundancy)
    : plane_{std::make_shared<net::projective_plane>(order)},
      post_selector_{post_line_selector},
      query_selector_{query_line_selector},
      redundancy_{line_redundancy} {
    if (redundancy_ < 1 || redundancy_ > order + 1)
        throw std::invalid_argument{"projective_strategy: bad line redundancy"};
}

std::string projective_strategy::name() const {
    std::string s = "projective(k=" + std::to_string(plane_->order());
    if (redundancy_ > 1) s += ",r=" + std::to_string(redundancy_);
    return s + ")";
}

int projective_strategy::post_line(net::node_id server) const {
    const auto lines = plane_->lines_through_point(server);
    return lines[static_cast<std::size_t>(post_selector_) % lines.size()];
}

int projective_strategy::query_line(net::node_id client) const {
    const auto lines = plane_->lines_through_point(client);
    return lines[static_cast<std::size_t>(query_selector_) % lines.size()];
}

core::node_set projective_strategy::lines_union(net::node_id node, int first_selector) const {
    const auto lines = plane_->lines_through_point(node);
    core::node_set out;
    for (int k = 0; k < redundancy_; ++k) {
        const int line = lines[static_cast<std::size_t>(first_selector + k) % lines.size()];
        const auto points = plane_->points_on_line(line);
        out.insert(out.end(), points.begin(), points.end());
    }
    core::normalize_set(out);
    return out;
}

core::node_set projective_strategy::post_set(net::node_id server) const {
    return lines_union(server, post_selector_);
}

core::node_set projective_strategy::query_set(net::node_id client) const {
    return lines_union(client, query_selector_);
}

}  // namespace mm::strategies
