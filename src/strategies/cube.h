// cube.h - binary d-cubes (Example 6, Section 3.2) and cube-connected
// cycles (Section 3.3).
//
// Hypercube: a server at address s posts in the subcube that varies the low
// `post_varies` bits and keeps the high bits of s; a client at c queries the
// subcube that keeps the low bits of c and varies the rest.  The unique
// rendezvous is (high bits of s | low bits of c).  With post_varies = d/2
// both sets have sqrt(n) nodes and m(n) = 2*sqrt(n).  Other splits give the
// paper's "relative immobility of servers" trade-off (epsilon*d split).
//
// CCC(d): the same corner-splitting idea, with posts and queries fanned out
// over all d cycle positions of each selected corner.  Rendezvous sets are
// whole d-cycles, so a match survives d-1 faults per corner; addressed nodes
// total d*(2^h + 2^(d-h)) >= 2*sqrt(n*log n) for n = d*2^d.
#pragma once

#include "core/strategy.h"

namespace mm::strategies {

class hypercube_strategy final : public core::shotgun_strategy {
public:
    // post_varies = number of low bits P varies; -1 picks d/2 (rounded up).
    explicit hypercube_strategy(int d, int post_varies = -1);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] net::node_id node_count() const override { return net::node_id{1} << d_; }
    [[nodiscard]] core::node_set post_set(net::node_id server) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client) const override;

    [[nodiscard]] net::node_id rendezvous_of(net::node_id server, net::node_id client) const;
    [[nodiscard]] int dimension() const noexcept { return d_; }
    [[nodiscard]] int post_varies() const noexcept { return post_varies_; }

private:
    int d_;
    int post_varies_;
};

class ccc_strategy final : public core::shotgun_strategy {
public:
    // corner_varies = low corner bits P varies; -1 minimizes addressed nodes.
    explicit ccc_strategy(int d, int corner_varies = -1);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] net::node_id node_count() const override {
        return static_cast<net::node_id>(d_) * (net::node_id{1} << d_);
    }
    [[nodiscard]] core::node_set post_set(net::node_id server) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client) const override;

    [[nodiscard]] int dimension() const noexcept { return d_; }
    [[nodiscard]] int corner_varies() const noexcept { return corner_varies_; }

private:
    int d_;
    int corner_varies_;

    [[nodiscard]] core::node_set corners_fanned(std::uint32_t base, int varied_low_bits,
                                                bool vary_low) const;
};

}  // namespace mm::strategies
