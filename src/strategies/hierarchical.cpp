#include "strategies/hierarchical.h"

#include <stdexcept>

#include "strategies/checker_util.h"

namespace mm::strategies {

hierarchical_strategy::hierarchical_strategy(net::hierarchy h) : hierarchy_{std::move(h)} {}

std::string hierarchical_strategy::name() const {
    return "hierarchical(k=" + std::to_string(hierarchy_.levels()) + ")";
}

core::node_set hierarchical_strategy::level_post_set(net::node_id server, int level) const {
    if (level < 1 || level > hierarchy_.levels())
        throw std::out_of_range{"hierarchical_strategy: bad level"};
    const int cluster = hierarchy_.cluster_of(level, server);
    const auto pool = hierarchy_.gateways(level, cluster);
    const int width = balanced_checker_width(static_cast<int>(pool.size()));
    return checker_post(pool, hierarchy_.child_index(level, server), width);
}

core::node_set hierarchical_strategy::level_query_set(net::node_id client, int level) const {
    if (level < 1 || level > hierarchy_.levels())
        throw std::out_of_range{"hierarchical_strategy: bad level"};
    const int cluster = hierarchy_.cluster_of(level, client);
    const auto pool = hierarchy_.gateways(level, cluster);
    const int width = balanced_checker_width(static_cast<int>(pool.size()));
    return checker_query(pool, hierarchy_.child_index(level, client), width);
}

core::node_set hierarchical_strategy::post_set(net::node_id server) const {
    core::node_set out;
    for (int level = 1; level <= hierarchy_.levels(); ++level) {
        const auto level_set = level_post_set(server, level);
        out.insert(out.end(), level_set.begin(), level_set.end());
    }
    core::normalize_set(out);
    return out;
}

core::node_set hierarchical_strategy::query_set(net::node_id client) const {
    core::node_set out;
    for (int level = 1; level <= hierarchy_.levels(); ++level) {
        const auto level_set = level_query_set(client, level);
        out.insert(out.end(), level_set.begin(), level_set.end());
    }
    core::normalize_set(out);
    return out;
}

int hierarchical_strategy::meeting_level(net::node_id a, net::node_id b) const {
    for (int level = 1; level <= hierarchy_.levels(); ++level)
        if (hierarchy_.cluster_of(level, a) == hierarchy_.cluster_of(level, b)) return level;
    throw std::logic_error{"hierarchical_strategy: nodes share no cluster"};
}

}  // namespace mm::strategies
