#include "strategies/checkerboard.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "strategies/checker_util.h"

namespace mm::strategies {

checkerboard_strategy::checkerboard_strategy(net::node_id n, int width, int redundancy)
    : n_{n}, width_{width}, redundancy_{redundancy}, pool_{core::all_nodes(n)} {
    if (n < 1) throw std::invalid_argument{"checkerboard_strategy: need n >= 1"};
    if (width_ == 0) width_ = balanced_checker_width(static_cast<int>(n));
    if (width_ < 1 || width_ > n) throw std::invalid_argument{"checkerboard_strategy: bad width"};
    const int rows = (static_cast<int>(n) + width_ - 1) / width_;
    if (redundancy_ < 1 || redundancy_ > std::min(rows, width_))
        throw std::invalid_argument{"checkerboard_strategy: bad redundancy"};
}

std::string checkerboard_strategy::name() const {
    std::string s = "checkerboard(w=" + std::to_string(width_);
    if (redundancy_ > 1) s += ",r=" + std::to_string(redundancy_);
    return s + ")";
}

core::node_set checkerboard_strategy::post_set(net::node_id server) const {
    if (redundancy_ == 1) return checker_post(pool_, static_cast<int>(server), width_);
    // Post to `redundancy` consecutive block-rows (wrapping), so the
    // overlap with any redundant query set has ~r^2 nodes.
    const int size = static_cast<int>(n_);
    const int rows = (size + width_ - 1) / width_;
    const int base_row = static_cast<int>(server) / width_;
    core::node_set out;
    for (int k = 0; k < redundancy_; ++k) {
        const int row = (base_row + k) % rows;
        for (int c = 0; c < width_; ++c)
            out.push_back(pool_[static_cast<std::size_t>((row * width_ + c) % size)]);
    }
    core::normalize_set(out);
    return out;
}

core::node_set checkerboard_strategy::query_set(net::node_id client) const {
    if (redundancy_ == 1) return checker_query(pool_, static_cast<int>(client), width_);
    const int size = static_cast<int>(n_);
    const int rows = (size + width_ - 1) / width_;
    const int base_col = static_cast<int>(client) / rows;
    core::node_set out;
    for (int k = 0; k < redundancy_; ++k) {
        const int col = (base_col + k) % width_;
        for (int r = 0; r < rows; ++r)
            out.push_back(pool_[static_cast<std::size_t>((r * width_ + col) % size)]);
    }
    core::normalize_set(out);
    return out;
}

int weighted_checker_width(net::node_id n, double alpha) {
    if (n < 1) throw std::invalid_argument{"weighted_checker_width: need n >= 1"};
    if (alpha <= 0) throw std::invalid_argument{"weighted_checker_width: need alpha > 0"};
    // Minimize w + alpha * ceil(n/w); the continuous optimum is
    // w = sqrt(n * alpha), searched locally for the integer optimum.
    const auto cost = [&](int w) {
        return static_cast<double>(w) +
               alpha * std::ceil(static_cast<double>(n) / static_cast<double>(w));
    };
    const int center = std::max(1, std::min<int>(static_cast<int>(n),
                                                 static_cast<int>(std::lround(std::sqrt(
                                                     static_cast<double>(n) * alpha)))));
    int best = center;
    for (int w = std::max(1, center / 2); w <= std::min<int>(static_cast<int>(n), center * 2 + 1);
         ++w)
        if (cost(w) < cost(best)) best = w;
    return best;
}

checkerboard_strategy make_weighted_checkerboard(net::node_id n, double alpha) {
    return checkerboard_strategy{n, weighted_checker_width(n, alpha)};
}

}  // namespace mm::strategies
