// scoped_hash.h - locality-scoped Hash Locate (Section 5, opening, and the
// Amoeba discussion of Section 3.5).
//
// "If we are dealing with a very large network, where it is advantageous to
// have servers and clients look for nearby matches, we can hash a service
// onto nodes in neighborhoods.  A neighborhood can be a local network, but
// also the network connecting the local networks, and so on...  such
// functions can be used to implement the idea of certain services being
// local and others being more global, thus balancing the processing load
// more evenly over the hosts at each level of the network hierarchy."
//
// Each port carries a *scope level*: level-1 services hash onto a node
// inside the caller's own lowest-level cluster (the per-host "Operating
// System Service" of Amoeba), level-k services onto a node of the whole
// network.  Clients outside a service's scope cluster cannot see it - by
// design, that is the access restriction Amoeba wanted.
#pragma once

#include <functional>

#include "core/strategy.h"
#include "net/hierarchy.h"

namespace mm::strategies {

class scoped_hash_strategy final : public core::locate_strategy {
public:
    // scope_of maps a port to its visibility level in [1, h.levels()];
    // default_scope is used when scope_of is empty.  replicas = number of
    // rendezvous nodes per (cluster, port).
    scoped_hash_strategy(net::hierarchy h, int default_scope = 0,
                         std::function<int(core::port_id)> scope_of = {}, int replicas = 1);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] net::node_id node_count() const override { return hierarchy_.node_count(); }
    [[nodiscard]] core::node_set post_set(net::node_id server, core::port_id port) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client, core::port_id port) const override;

    // The scope level used for a port.
    [[nodiscard]] int scope(core::port_id port) const;

    // The rendezvous nodes for `port` as seen from `from`: `replicas`
    // hash-chosen nodes inside from's scope-level cluster.
    [[nodiscard]] core::node_set rendezvous_nodes(net::node_id from, core::port_id port) const;

private:
    net::hierarchy hierarchy_;
    int default_scope_;
    std::function<int(core::port_id)> scope_of_;
    int replicas_;
};

}  // namespace mm::strategies
