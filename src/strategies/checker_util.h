// checker_util.h - the checkerboard row/column trick shared by several
// strategies.
//
// Proposition 3 arranges the rendezvous matrix "as a checker board
// consisting of (as near as possible) sqrt(n) x sqrt(n) squares"; the same
// row-of-blocks / column-of-blocks structure reappears inside every gateway
// network of the hierarchical scheme (Section 3.5).  Given an ordered pool
// of nodes and an index into it, these helpers return the pool's block-row
// (for posting) and block-column (for querying); for any pair of indices the
// two sets share pool[(row(a)*width + col(b)) mod size], so match-making
// always succeeds.
#pragma once

#include <span>

#include "core/strategy.h"

namespace mm::strategies {

// Width that balances #post and #query: ceil(sqrt(size)).
[[nodiscard]] int balanced_checker_width(int size);

// Block-row of the element at `index`: { pool[(row*width + c) % size] }.
[[nodiscard]] core::node_set checker_post(std::span<const net::node_id> pool, int index,
                                          int width);

// Block-column: { pool[(r*width + col) % size] : r < ceil(size/width) }.
[[nodiscard]] core::node_set checker_query(std::span<const net::node_id> pool, int index,
                                           int width);

// The guaranteed common element of checker_post(pool, a, w) and
// checker_query(pool, b, w).
[[nodiscard]] net::node_id checker_rendezvous(std::span<const net::node_id> pool, int post_index,
                                              int query_index, int width);

}  // namespace mm::strategies
