#include "strategies/scoped_hash.h"

#include <stdexcept>

#include "sim/rng.h"

namespace mm::strategies {

scoped_hash_strategy::scoped_hash_strategy(net::hierarchy h, int default_scope,
                                           std::function<int(core::port_id)> scope_of,
                                           int replicas)
    : hierarchy_{std::move(h)},
      default_scope_{default_scope},
      scope_of_{std::move(scope_of)},
      replicas_{replicas} {
    if (default_scope_ == 0) default_scope_ = hierarchy_.levels();
    if (default_scope_ < 1 || default_scope_ > hierarchy_.levels())
        throw std::invalid_argument{"scoped_hash_strategy: bad default scope"};
    if (replicas_ < 1) throw std::invalid_argument{"scoped_hash_strategy: bad replicas"};
}

std::string scoped_hash_strategy::name() const {
    return "scoped-hash(levels=" + std::to_string(hierarchy_.levels()) + ")";
}

int scoped_hash_strategy::scope(core::port_id port) const {
    int level = default_scope_;
    if (scope_of_) level = scope_of_(port);
    if (level < 1 || level > hierarchy_.levels())
        throw std::out_of_range{"scoped_hash_strategy: port scope out of range"};
    return level;
}

core::node_set scoped_hash_strategy::rendezvous_nodes(net::node_id from,
                                                      core::port_id port) const {
    const int level = scope(port);
    const int cluster = hierarchy_.cluster_of(level, from);
    const net::node_id size = hierarchy_.cluster_size(level);
    const net::node_id base = static_cast<net::node_id>(cluster) * size;
    core::node_set out;
    out.reserve(static_cast<std::size_t>(replicas_));
    // Double hashing within the cluster, like hash_locate_strategy.
    const std::uint64_t h0 = sim::splitmix64(port);
    const std::uint64_t step =
        sim::splitmix64(port ^ 0xabcdef1234567890ULL) %
            static_cast<std::uint64_t>(size > 1 ? size - 1 : 1) +
        1;
    for (int k = 0; k < replicas_; ++k)
        out.push_back(base + static_cast<net::node_id>(
                                 (h0 + static_cast<std::uint64_t>(k) * step) %
                                 static_cast<std::uint64_t>(size)));
    core::normalize_set(out);
    return out;
}

core::node_set scoped_hash_strategy::post_set(net::node_id server, core::port_id port) const {
    if (server < 0 || server >= node_count())
        throw std::out_of_range{"scoped_hash_strategy: bad server"};
    return rendezvous_nodes(server, port);
}

core::node_set scoped_hash_strategy::query_set(net::node_id client, core::port_id port) const {
    if (client < 0 || client >= node_count())
        throw std::out_of_range{"scoped_hash_strategy: bad client"};
    return rendezvous_nodes(client, port);
}

}  // namespace mm::strategies
