#include "strategies/cube.h"

#include <stdexcept>

#include "net/topologies.h"

namespace mm::strategies {

hypercube_strategy::hypercube_strategy(int d, int post_varies)
    : d_{d}, post_varies_{post_varies} {
    if (d < 1 || d > 24) throw std::invalid_argument{"hypercube_strategy: need 1 <= d <= 24"};
    if (post_varies_ < 0) post_varies_ = (d + 1) / 2;
    if (post_varies_ > d) throw std::invalid_argument{"hypercube_strategy: bad split"};
}

std::string hypercube_strategy::name() const {
    return "hypercube(d=" + std::to_string(d_) + ",h=" + std::to_string(post_varies_) + ")";
}

core::node_set hypercube_strategy::post_set(net::node_id server) const {
    if (server < 0 || server >= node_count()) throw std::out_of_range{"hypercube: bad server"};
    // Keep the high d-h bits of the server, vary the low h bits.
    const net::node_id high = server & ~((net::node_id{1} << post_varies_) - 1);
    core::node_set out;
    out.reserve(std::size_t{1} << post_varies_);
    for (net::node_id low = 0; low < (net::node_id{1} << post_varies_); ++low)
        out.push_back(high | low);
    return out;  // ascending by construction
}

core::node_set hypercube_strategy::query_set(net::node_id client) const {
    if (client < 0 || client >= node_count()) throw std::out_of_range{"hypercube: bad client"};
    // Keep the low h bits of the client, vary the high d-h bits.
    const net::node_id low = client & ((net::node_id{1} << post_varies_) - 1);
    const int high_bits = d_ - post_varies_;
    core::node_set out;
    out.reserve(std::size_t{1} << high_bits);
    for (net::node_id high = 0; high < (net::node_id{1} << high_bits); ++high)
        out.push_back((high << post_varies_) | low);
    return out;
}

net::node_id hypercube_strategy::rendezvous_of(net::node_id server, net::node_id client) const {
    const net::node_id low_mask = (net::node_id{1} << post_varies_) - 1;
    return (server & ~low_mask) | (client & low_mask);
}

ccc_strategy::ccc_strategy(int d, int corner_varies) : d_{d}, corner_varies_{corner_varies} {
    if (d < 2 || d > 20) throw std::invalid_argument{"ccc_strategy: need 2 <= d <= 20"};
    if (corner_varies_ < 0) {
        // Minimize d * (2^h + 2^(d-h)) over h; symmetric, optimum at d/2.
        corner_varies_ = (d + 1) / 2;
    }
    if (corner_varies_ > d) throw std::invalid_argument{"ccc_strategy: bad split"};
}

std::string ccc_strategy::name() const {
    return "ccc(d=" + std::to_string(d_) + ",h=" + std::to_string(corner_varies_) + ")";
}

core::node_set ccc_strategy::corners_fanned(std::uint32_t base, int low_bits,
                                            bool vary_low) const {
    // Enumerate corners that agree with `base` outside the varied range and
    // include every cycle position of each such corner.  The corner address
    // is split into `low_bits` low bits and d - low_bits high bits; posts
    // vary the low part, queries vary the high part.
    const std::uint32_t low_mask = (std::uint32_t{1} << low_bits) - 1;
    const int varied = vary_low ? low_bits : d_ - low_bits;
    core::node_set out;
    out.reserve((std::size_t{1} << varied) * static_cast<std::size_t>(d_));
    for (std::uint32_t w = 0; w < (std::uint32_t{1} << varied); ++w) {
        const std::uint32_t corner = vary_low ? ((base & ~low_mask) | w)
                                              : ((w << low_bits) | (base & low_mask));
        for (int p = 0; p < d_; ++p) out.push_back(net::ccc_index(d_, p, corner));
    }
    core::normalize_set(out);
    return out;
}

core::node_set ccc_strategy::post_set(net::node_id server) const {
    if (server < 0 || server >= node_count()) throw std::out_of_range{"ccc: bad server"};
    const std::uint32_t corner = net::ccc_corner(d_, server);
    return corners_fanned(corner, corner_varies_, /*vary_low=*/true);
}

core::node_set ccc_strategy::query_set(net::node_id client) const {
    if (client < 0 || client >= node_count()) throw std::out_of_range{"ccc: bad client"};
    const std::uint32_t corner = net::ccc_corner(d_, client);
    return corners_fanned(corner, corner_varies_, /*vary_low=*/false);
}

}  // namespace mm::strategies
