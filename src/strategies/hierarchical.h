// hierarchical.h - match-making in network hierarchies (Section 3.5).
//
// "A server posts its (port, address) by selecting sqrt(n_i) gateways,
// connecting level i-1 networks in a level i network, at each level i of
// the hierarchy, on a path from its host node to the highest level network."
// Clients do the same with queries; the rendezvous happens (at least) in the
// lowest cluster containing both, so m(n) = O(sum_i sqrt(n_i)).  With k
// levels of fanout a (n = a^k) this is O(k*sqrt(a)) = O(k * n^(1/2k)),
// minimized at k = (1/2)*log n where m(n) = O(log n).
//
// Gateway selection within one level's gateway pool reuses the checkerboard
// row/column trick, so a level rendezvous is guaranteed, not just expected.
#pragma once

#include "core/strategy.h"
#include "net/hierarchy.h"

namespace mm::strategies {

class hierarchical_strategy final : public core::shotgun_strategy {
public:
    explicit hierarchical_strategy(net::hierarchy h);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] net::node_id node_count() const override { return hierarchy_.node_count(); }
    [[nodiscard]] core::node_set post_set(net::node_id server) const override;
    [[nodiscard]] core::node_set query_set(net::node_id client) const override;

    // Per-level sets, for the staged "local locate first" of Section 3.5:
    // the runtime queries level 1, then level 2, ... until a hit.
    [[nodiscard]] core::node_set level_post_set(net::node_id server, int level) const;
    [[nodiscard]] core::node_set level_query_set(net::node_id client, int level) const;

    // Staging capability: the runtime escalates through the hierarchy levels
    // without ever naming this concrete type.
    [[nodiscard]] int staged_levels() const override { return hierarchy_.levels(); }
    [[nodiscard]] core::node_set staged_query_set(net::node_id client, int level,
                                                  core::port_id /*port*/) const override {
        return level_query_set(client, level);
    }

    // The level at which server and client first share a cluster (1-based).
    [[nodiscard]] int meeting_level(net::node_id a, net::node_id b) const;

    [[nodiscard]] const net::hierarchy& structure() const noexcept { return hierarchy_; }

private:
    net::hierarchy hierarchy_;
};

}  // namespace mm::strategies
