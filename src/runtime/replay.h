// replay.h - recorded workload configs, engine sweeps, and differential runs.
//
// The simulator layer's trace (sim/trace.h) knows how to record and check a
// delivery stream but treats the workload that produced it as an opaque
// config blob.  This layer owns that blob: a replay_config names a complete
// reproducible run - topology x strategy x name-service policy x workload
// mix - codec-serialized into the trace file, so a committed golden trace
// is self-describing and `mm_trace replay golden.trace` needs no other
// input.  On top of it sit the engine sweep (run the same config under
// serial / parallel / batched-off engines) and the differential driver
// mm_fuzz uses: record under the reference engine, replay under every
// other, and diff the full counter/result/latency sets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/workload.h"
#include "sim/trace.h"

namespace mm::runtime {

// Topology families the config codec can rebuild from two integer
// parameters.  Kept deliberately small: a golden trace must rebuild
// bit-identically forever, so every family here is frozen API.
enum class replay_topology : std::uint8_t {
    grid = 0,       // p1 rows x p2 cols Manhattan grid
    torus = 1,      // same, both dimensions wrapped
    hypercube = 2,  // dimension p1 (p2 unused)
    hierarchical = 3,  // two-level hierarchy, fanouts {p1, p2}
};

// Strategy families over those topologies.
enum class replay_strategy : std::uint8_t {
    native = 0,  // the topology's own: manhattan / hypercube / hierarchical
                 // (grid+torus use manhattan; Proposition-2-style row/column)
    hash = 1,    // hash_locate_strategy(n, 2): topology-independent
};

// A complete reproducible run.  encode/decode round-trip every field
// exactly (doubles travel as IEEE bit patterns via byte_writer::f64).
struct replay_config {
    replay_topology topology = replay_topology::grid;
    std::int32_t p1 = 8;
    std::int32_t p2 = 8;
    replay_strategy strategy = replay_strategy::native;
    name_service::options policy;
    workload_options workload;

    [[nodiscard]] net::node_id node_count() const;
    // One-line human description ("grid 8x8 | manhattan | 200 ops seed 7 ...").
    [[nodiscard]] std::string describe() const;
};

[[nodiscard]] std::vector<std::uint8_t> encode_replay_config(const replay_config& cfg);
[[nodiscard]] bool decode_replay_config(const std::vector<std::uint8_t>& bytes,
                                        replay_config& out);

// One execution engine: workers == 0 is the plain serial engine (with
// canonical source-rooted paths forced, so its route tie-breaks match the
// parallel engines - see simulator::set_canonical_paths), workers >= 1 the
// sharded tick-barrier engine.
struct engine_config {
    int workers = 0;
    bool batched = true;

    [[nodiscard]] std::string name() const;  // "serial", "serial-nobatch", "par4", ...
};

// The sweep a config is checked across: a single-threaded pair (batched +
// hop-by-hop) and parallel at 2/4/8 workers (the ISSUE-8 canary set).  The
// single-threaded pair is the plain serial engine when the config admits
// it, else par1: two policy features select a different *protocol regime*
// under the serial engine (name_service.h), putting it legitimately
// outside those configs' equality sets.  Valiant relaying draws hops from
// per-node streams in the parallel regime but one shared stream in the
// serial one; and crash/churn interacts with the parallel regime's
// deferred fan-out timers (an operation begun at a host that is down when
// its zero-delay start timer would fire never fans out, where the serial
// regime's inline fan-out already happened), shifting which ticks sends
// and drops land on.  Churn configs additionally drop the hop-by-hop
// engine (the why lives on the engine_sweep definition).
[[nodiscard]] std::vector<engine_config> engine_sweep(const replay_config& cfg);

// The record-comparison level for `engine` replaying a trace of `cfg`
// (recorded under the sweep's reference engine, which is always batched):
// hop-by-hop engines compare per-tick delivery multisets - same-tick
// arrivals from flights sent at different ticks interleave differently
// under the two delivery modes (sim/trace.h), while the per-tick sets are
// the invariant tests/test_sim_equivalence.cpp has always asserted - and
// batched engines compare record-for-record.
[[nodiscard]] sim::trace_order replay_order(const replay_config& cfg,
                                            const engine_config& engine);

// Everything a differential run compares.
struct run_result {
    workload_stats stats;
    std::int64_t hops = 0;
    std::int64_t sent = 0;
    std::int64_t delivered = 0;
    std::int64_t dropped = 0;
    std::int64_t membership_events = 0;
    std::int64_t trace_records = 0;
    std::int64_t trace_digests = 0;
    sim::time_point now = 0;
    std::uint64_t traffic_hash = 0;
    net::node_id live_nodes = 0;
};

// Builds the config's network and name service under the given engine,
// runs the workload (with the observer armed over the whole run, when
// given), and collects the comparison set.  Fresh state per call.
run_result run_config(const replay_config& cfg, const engine_config& engine,
                      sim::trace_observer* observer = nullptr);

// Records the config's full trace under `engine` (the config blob is
// embedded, so the result is self-describing).  When the config runs
// periodic refresh, the final digest's hops and traffic hash are zeroed:
// refresh timers keep the run from quiescing, and mid-flight batched
// refresh posts make those two quantities instant-dependent (fast-path
// contract) - every other field stays exact.  replay_trace applies the
// same rule, so recorded and live summaries stay comparable.
[[nodiscard]] sim::trace record_trace(const replay_config& cfg, const engine_config& engine);

struct replay_report {
    bool ok = false;
    std::string failure;  // first divergence, with context (empty when ok)
};

// Re-runs the trace's embedded config under `engine`, checking the live
// delivery stream against the recorded one.
[[nodiscard]] replay_report replay_trace(const sim::trace& reference,
                                         const engine_config& engine);

// The differential check mm_fuzz runs per seed: record under the sweep's
// first engine, replay under every other, and additionally diff the full
// workload stats (per-op results, latency percentiles, counters) pairwise.
// Reports the first divergence, localized to engine + field / record.
struct diff_report {
    bool ok = false;
    std::string divergence;  // "<engine>: <first divergent field or record>"
};

[[nodiscard]] diff_report diff_engines(const replay_config& cfg);

// Seeded fuzz-config generator: small topologies, mixed strategies,
// policies (TTL / refresh / caching / Valiant), and workload mixes
// including crash and churn regimes.  Same seed, same config - forever.
[[nodiscard]] replay_config random_config(std::uint64_t seed);

}  // namespace mm::runtime
