#include "runtime/name_service.h"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.h"

namespace mm::runtime {

void service_node::on_message(sim::simulator& sim, const sim::message& msg) {
    // Second leg of a two-phase (Valiant) relay: forward to the true
    // destination and do not process locally.
    if (msg.relay_final != net::invalid_node && msg.relay_final != self_) {
        sim::message onward = msg;
        onward.source = self_;
        onward.destination = msg.relay_final;
        onward.relay_final = net::invalid_node;
        sim.send(onward);
        return;
    }
    switch (msg.kind) {
        case msg_post: {
            core::port_entry entry;
            entry.port = msg.port;
            entry.where = msg.subject_address;
            entry.stamp = msg.stamp;
            entry.expires_at = msg.ttl >= 0 ? sim.now() + msg.ttl : -1;
            directory_.post(entry);
            break;
        }
        case msg_remove:
            directory_.remove(msg.port, msg.subject_address);
            break;
        case msg_query: {
            const auto hit = directory_.lookup(msg.port, sim.now());
            if (hit) {
                sim::message reply;
                reply.kind = msg_reply;
                reply.port = msg.port;
                reply.source = self_;
                // Reply to the querying client, which relayed queries carry
                // in subject_address (msg.source is just the last hop).
                reply.destination = msg.subject_address != net::invalid_node
                                        ? msg.subject_address
                                        : msg.source;
                reply.subject_address = hit->where;
                reply.stamp = hit->stamp;
                reply.tag = msg.tag;
                sim.send(reply);
            }
            break;
        }
        case msg_reply: {
            // Keep the freshest binding if several rendezvous nodes answer.
            auto it = replies_.find(msg.tag);
            if (it == replies_.end() || msg.stamp > it->second.stamp) {
                core::port_entry entry;
                entry.port = msg.port;
                entry.where = msg.subject_address;
                entry.stamp = msg.stamp;
                replies_[msg.tag] = entry;
            }
            break;
        }
        default:
            throw std::logic_error{"service_node: unknown message kind"};
    }
}

void service_node::on_timer(sim::simulator& sim, std::int64_t timer_id) {
    if (timer_hook_) timer_hook_(sim, self_, timer_id);
}

void service_node::on_crash(sim::simulator& /*sim*/) {
    directory_.clear();
    replies_.clear();
}

bool service_node::has_reply(std::int64_t tag) const { return replies_.contains(tag); }

core::port_entry service_node::reply(std::int64_t tag) const {
    const auto it = replies_.find(tag);
    if (it == replies_.end()) throw std::out_of_range{"service_node::reply: no reply"};
    return it->second;
}

name_service::name_service(sim::simulator& sim, const core::locate_strategy& strategy)
    : sim_{&sim}, strategy_{&strategy} {
    const net::node_id n = sim.network().node_count();
    nodes_.reserve(static_cast<std::size_t>(n));
    refresh_armed_.assign(static_cast<std::size_t>(n), 0);
    for (net::node_id v = 0; v < n; ++v) {
        auto handler = std::make_shared<service_node>(v);
        handler->set_timer_hook([this](sim::simulator& s, net::node_id at, std::int64_t id) {
            handle_timer(s, at, id);
        });
        nodes_.push_back(handler);
        sim.attach(v, handler);
    }
}

void name_service::drain() {
    if (refresh_period_ <= 0) {
        sim_->run();
    } else {
        // Refresh timers re-arm forever; bound the wait by the worst-case
        // round trip (two legs of at most the node count, doubled for
        // relaying) instead of draining the queue.
        sim_->run_until(sim_->now() + 4 * sim_->network().node_count() + 8);
    }
}

net::node_id name_service::random_relay(net::node_id source, net::node_id destination) {
    valiant_state_ = sim::splitmix64(valiant_state_);
    auto relay = static_cast<net::node_id>(valiant_state_ %
                                           static_cast<std::uint64_t>(sim_->network().node_count()));
    // A relay equal to either endpoint degenerates to direct delivery.
    (void)source, (void)destination;
    return relay;
}

void name_service::send_application(sim::message msg) {
    if (valiant_ && msg.destination != msg.source) {
        const net::node_id relay = random_relay(msg.source, msg.destination);
        if (relay != msg.destination && relay != msg.source) {
            msg.relay_final = msg.destination;
            msg.destination = relay;
        }
    }
    sim_->send(msg);
}

void name_service::enable_auto_refresh(sim::time_point period) {
    if (period <= 0) throw std::invalid_argument{"enable_auto_refresh: period must be positive"};
    refresh_period_ = period;
    for (const auto& [port, at] : registrations_) arm_refresh(at);
}

void name_service::enable_valiant_relay(std::uint64_t seed) {
    valiant_ = true;
    valiant_state_ = seed | 1;
}

void name_service::run_for(sim::time_point duration) { sim_->run_until(sim_->now() + duration); }

void name_service::arm_refresh(net::node_id at) {
    if (refresh_period_ <= 0 || refresh_armed_[static_cast<std::size_t>(at)]) return;
    refresh_armed_[static_cast<std::size_t>(at)] = 1;
    sim_->set_timer(at, refresh_period_, refresh_timer_id);
}

void name_service::handle_timer(sim::simulator& sim, net::node_id at, std::int64_t timer_id) {
    if (timer_id != refresh_timer_id) return;
    refresh_armed_[static_cast<std::size_t>(at)] = 0;
    node(at).directory().expire(sim.now());
    bool hosting = false;
    for (const auto& [port, host] : registrations_) {
        if (host != at) continue;
        hosting = true;
        for (const net::node_id target : strategy_->post_set(at, port)) {
            sim::message msg;
            msg.kind = msg_post;
            msg.port = port;
            msg.source = at;
            msg.destination = target;
            msg.subject_address = at;
            msg.stamp = sim.now();
            msg.ttl = entry_ttl_;
            send_application(msg);
        }
    }
    if (hosting) arm_refresh(at);  // keep refreshing while still a host
}

service_node& name_service::node(net::node_id v) {
    if (v < 0 || v >= static_cast<net::node_id>(nodes_.size()))
        throw std::out_of_range{"name_service::node"};
    return *nodes_[static_cast<std::size_t>(v)];
}

void name_service::post_to(core::port_id port, net::node_id at, const core::node_set& where) {
    for (const net::node_id target : where) {
        sim::message msg;
        msg.kind = msg_post;
        msg.port = port;
        msg.source = at;
        msg.destination = target;
        msg.subject_address = at;
        msg.stamp = sim_->now();
        msg.ttl = entry_ttl_;
        send_application(msg);
    }
    drain();
}

void name_service::register_server(core::port_id port, net::node_id at) {
    // Record and arm the refresh timer *before* draining the posts, so the
    // first refresh lands one period after the posts, not one period after
    // the drain window (entries with TTL < window would otherwise die
    // before their first renewal).
    registrations_.emplace_back(port, at);
    arm_refresh(at);
    post_to(port, at, strategy_->post_set(at, port));
}

void name_service::deregister_server(core::port_id port, net::node_id at) {
    for (const net::node_id target : strategy_->post_set(at, port)) {
        sim::message msg;
        msg.kind = msg_remove;
        msg.port = port;
        msg.source = at;
        msg.destination = target;
        msg.subject_address = at;
        msg.stamp = sim_->now();
        send_application(msg);
    }
    drain();
    std::erase(registrations_, std::pair{port, at});
}

void name_service::migrate_server(core::port_id port, net::node_id from, net::node_id to) {
    // Order matters: post the new address first (it carries a fresher stamp
    // and wins conflicts), then withdraw the old posts.
    register_server(port, to);
    deregister_server(port, from);
}

void name_service::repost_all() {
    const auto live = registrations_;
    for (const auto& [port, at] : live) {
        if (sim_->crashed(at)) continue;
        post_to(port, at, strategy_->post_set(at, port));
        arm_refresh(at);
    }
}

locate_result name_service::query_and_wait(core::port_id port, net::node_id client,
                                           const core::node_set& where) {
    const std::int64_t tag = next_tag_++;
    const auto hops_before = sim_->stats().get(sim::counter_hops);
    const auto started = sim_->now();
    for (const net::node_id target : where) {
        sim::message msg;
        msg.kind = msg_query;
        msg.port = port;
        msg.source = client;
        msg.destination = target;
        msg.subject_address = client;  // reply-to, stable across relaying
        msg.stamp = started;
        msg.tag = tag;
        send_application(msg);
    }
    drain();

    locate_result result;
    result.nodes_queried = static_cast<int>(where.size());
    result.message_passes = sim_->stats().get(sim::counter_hops) - hops_before;
    auto& me = node(client);
    if (me.has_reply(tag)) {
        result.found = true;
        result.where = me.reply(tag).where;
        result.latency = sim_->now() - started;
    }
    return result;
}

locate_result name_service::locate(core::port_id port, net::node_id client) {
    if (client_caching_ && !sim_->crashed(client)) {
        const auto hint = node(client).directory().lookup(port, sim_->now());
        if (hint) {
            locate_result cached;
            cached.found = true;
            cached.where = hint->where;
            return cached;  // zero messages, zero latency: the cached hint
        }
    }
    auto result = query_and_wait(port, client, strategy_->query_set(client, port));
    if (client_caching_ && result.found && !sim_->crashed(client)) {
        core::port_entry entry;
        entry.port = port;
        entry.where = result.where;
        entry.stamp = sim_->now();
        entry.expires_at = entry_ttl_ >= 0 ? sim_->now() + entry_ttl_ : -1;
        node(client).directory().post(entry);
    }
    return result;
}

locate_result name_service::locate_fresh(core::port_id port, net::node_id client) {
    return query_and_wait(port, client, strategy_->query_set(client, port));
}

locate_result name_service::locate_staged(core::port_id port, net::node_id client,
                                          const strategies::hierarchical_strategy& h) {
    locate_result total;
    core::node_set queried;
    for (int level = 1; level <= h.structure().levels(); ++level) {
        // Only the not-yet-queried gateways of this level cost messages.
        core::node_set stage = h.level_query_set(client, level);
        core::node_set fresh;
        std::set_difference(stage.begin(), stage.end(), queried.begin(), queried.end(),
                            std::back_inserter(fresh));
        queried.insert(queried.end(), fresh.begin(), fresh.end());
        core::normalize_set(queried);

        const auto stage_result = query_and_wait(port, client, fresh);
        total.nodes_queried += stage_result.nodes_queried;
        total.message_passes += stage_result.message_passes;
        total.latency += stage_result.latency;
        total.stages = level;
        if (stage_result.found) {
            total.found = true;
            total.where = stage_result.where;
            return total;
        }
    }
    return total;
}

locate_result name_service::locate_with_fallback(
    core::port_id port, net::node_id client,
    const std::vector<const core::locate_strategy*>& fallbacks) {
    locate_result total = locate(port, client);
    if (total.found) return total;
    int stage = 1;
    for (const core::locate_strategy* fallback : fallbacks) {
        ++stage;
        // Servers follow the same fallback policy: re-post at the fallback
        // strategy's rendezvous nodes ("services regularly poll their
        // rendez-vous nodes to see if they are still alive").
        const auto live = registrations_;
        for (const auto& [p, at] : live) {
            if (p != port || sim_->crashed(at)) continue;
            post_to(p, at, fallback->post_set(at, p));
        }
        const auto attempt = query_and_wait(port, client, fallback->query_set(client, port));
        total.nodes_queried += attempt.nodes_queried;
        total.message_passes += attempt.message_passes;
        total.latency += attempt.latency;
        total.stages = stage;
        if (attempt.found) {
            total.found = true;
            total.where = attempt.where;
            return total;
        }
    }
    return total;
}

void name_service::crash_node(net::node_id v) {
    sim_->crash(v);
    std::erase_if(registrations_, [&](const auto& reg) { return reg.second == v; });
    // A pending refresh timer is silently skipped while the node is down;
    // clear the armed flag so a later repost_all can re-arm the host.
    refresh_armed_[static_cast<std::size_t>(v)] = 0;
}

void name_service::recover_node(net::node_id v) { sim_->recover(v); }

void name_service::purge_binding(core::port_id port, net::node_id dead_address) {
    for (const net::node_id target : strategy_->post_set(dead_address, port)) {
        if (sim_->crashed(target)) continue;
        sim::message msg;
        msg.kind = msg_remove;
        msg.port = port;
        msg.source = target;  // issued by the surviving rendezvous node itself
        msg.destination = target;
        msg.subject_address = dead_address;
        msg.stamp = sim_->now();
        sim_->send(msg);  // self-addressed; no relay needed
    }
    drain();
}

std::size_t name_service::total_cache_entries() const {
    std::size_t total = 0;
    for (const auto& n : nodes_) total += n->directory().size();
    return total;
}

std::size_t name_service::max_cache_entries() const {
    std::size_t best = 0;
    for (const auto& n : nodes_) best = std::max(best, n->directory().size());
    return best;
}

}  // namespace mm::runtime
